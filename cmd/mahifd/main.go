// Command mahifd serves historical what-if queries over HTTP: it loads
// CSV snapshots and a SQL history like cmd/mahif — or recovers a
// durable data directory — then answers queries through a pool of
// long-lived engine sessions, so consecutive requests over the same
// history reuse time-travel snapshots, solver memos, and compiled
// reenactment programs. With -data the history is durable: appends
// through POST /v1/history commit to a segmented write-ahead log
// before they are acknowledged, periodic checkpoints bound recovery
// time, and a restarted (even killed) server recovers the exact
// committed history and serves identical answers.
//
// Usage:
//
//	# in-memory (rebuilt from files on every start)
//	mahifd -addr :8080 -csv orders=orders.csv -history history.sql
//
//	# durable: first start ingests, later starts recover
//	mahifd -addr :8080 -data /var/lib/mahif -csv orders=orders.csv -history history.sql
//	mahifd -addr :8080 -data /var/lib/mahif
//
// API (v1; see internal/service for the wire types):
//
//	POST /v1/whatif   {"modifications": [{"op": "replace", "pos": 1,
//	                   "statement": "UPDATE orders SET fee = 0 WHERE price >= 60"}],
//	                   "variant": "R+PS+DS", "stats": true, "timeout_ms": 500}
//	POST /v1/batch    {"scenarios": [{"label": "fee60", "modifications": [...]}],
//	                   "workers": 4, "stats": true}
//	GET  /v1/history  the transactional history
//	POST /v1/history  {"statements": ["UPDATE orders SET fee = 1 WHERE id = 7"]}
//	GET  /metrics     Prometheus text exposition (sessions, WAL, recovery)
//	GET  /healthz     liveness
//
// Every request is evaluated under a deadline (the smaller of -timeout
// and the request's timeout_ms); a request that exceeds it gets a 504
// and, thanks to the engine's context plumbing, stops consuming CPU
// within milliseconds. SIGINT/SIGTERM drain in-flight requests before
// exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/mahif/mahif/internal/core"
	"github.com/mahif/mahif/internal/persist"
	"github.com/mahif/mahif/internal/service"
)

type csvFlags []string

func (d *csvFlags) String() string { return strings.Join(*d, ",") }

func (d *csvFlags) Set(v string) error {
	*d = append(*d, v)
	return nil
}

func main() {
	var csvs csvFlags
	flag.Var(&csvs, "csv", "relation=file.csv (repeatable; base state for first ingest or in-memory serving)")
	dataDir := flag.String("data", "", "durable data directory (WAL + checkpoints); empty serves in-memory")
	historyPath := flag.String("history", "", "SQL script with the transactional history (first ingest / in-memory)")
	addr := flag.String("addr", ":8080", "listen address")
	sessions := flag.Int("sessions", 1, "session pool size")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request evaluation budget")
	drain := flag.Duration("drain", 10*time.Second, "shutdown grace period for in-flight requests")
	checkpointEvery := flag.Int("checkpoint-every", 1000, "auto checkpoint every N appended statements (0 = manual)")
	flag.Parse()

	if err := run(csvs, *dataDir, *historyPath, *addr, *sessions, *timeout, *drain, *checkpointEvery); err != nil {
		fmt.Fprintln(os.Stderr, "mahifd:", err)
		os.Exit(1)
	}
}

// loadEngine resolves the three start modes: recover a durable store,
// initialize one from CSVs, or serve in-memory.
func loadEngine(csvs []string, dataDir, historyPath string, checkpointEvery int) (*core.Engine, *persist.Store, error) {
	if dataDir == "" {
		if len(csvs) == 0 || historyPath == "" {
			flag.Usage()
			os.Exit(2)
		}
		engine, err := service.LoadEngine(csvs, historyPath)
		return engine, nil, err
	}
	opts := persist.Options{CheckpointEvery: checkpointEvery, Logf: log.Printf}
	if persist.Detect(dataDir) {
		if len(csvs) > 0 || historyPath != "" {
			return nil, nil, fmt.Errorf("-data %s already holds a store; drop -csv/-history (append via POST /v1/history or `mahif ingest`)", dataDir)
		}
		engine, store, err := service.OpenStore(dataDir, opts)
		if err != nil {
			return nil, nil, err
		}
		ri := store.RecoveryInfo()
		log.Printf("mahifd: recovered %d statements from %s in %v (checkpoint@%d, replayed %d, truncated %d records)",
			ri.Statements, dataDir, ri.Duration, ri.CheckpointVersion, ri.ReplayedStatements, ri.TruncatedRecords)
		return engine, store, nil
	}
	if len(csvs) == 0 {
		return nil, nil, fmt.Errorf("-data %s holds no store yet; pass -csv relation=file.csv (and optionally -history) to ingest", dataDir)
	}
	engine, store, err := service.InitStore(dataDir, csvs, historyPath, opts)
	if err != nil {
		return nil, nil, err
	}
	log.Printf("mahifd: initialized durable store in %s (%d statements ingested)", dataDir, store.Version())
	return engine, store, nil
}

func run(csvs []string, dataDir, historyPath, addr string, sessions int, timeout, drain time.Duration, checkpointEvery int) error {
	engine, store, err := loadEngine(csvs, dataDir, historyPath, checkpointEvery)
	if err != nil {
		return err
	}
	if store != nil {
		defer store.Close()
	}
	srv := service.New(engine, service.Options{Sessions: sessions, Timeout: timeout, Store: store})

	httpSrv := &http.Server{
		Addr:    addr,
		Handler: srv.Handler(),
		// Read/write limits shield the evaluation budget from slow
		// clients; WriteTimeout leaves headroom over the evaluation
		// deadline so a just-in-time result still gets written.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      timeout + 10*time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		mode := "in-memory"
		if store != nil {
			mode = "durable:" + store.Dir()
		}
		log.Printf("mahifd: serving %d-statement history on %s (%s, sessions=%d, timeout=%v)",
			engine.Version(), addr, mode, sessions, timeout)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Printf("mahifd: shutting down, draining for up to %v", drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	for i, st := range srv.SessionStats() {
		log.Printf("mahifd: session %d: calls=%d advances=%d snapshots(hit/miss)=%d/%d memo(hit/miss)=%d/%d queries(hit/miss)=%d/%d",
			i, st.Calls, st.Advances, st.SnapshotHits, st.SnapshotMisses, st.MemoHits, st.MemoMisses, st.QueryHits, st.QueryMisses)
	}
	return nil
}
