// Command mahifd serves historical what-if queries over HTTP: it loads
// CSV snapshots and a SQL history like cmd/mahif — or recovers a
// durable data directory — then answers queries through a pool of
// long-lived engine sessions, so consecutive requests over the same
// history reuse time-travel snapshots, solver memos, and compiled
// reenactment programs. With -data the history is durable: appends
// through POST /v1/history commit to a segmented write-ahead log
// before they are acknowledged, periodic checkpoints bound recovery
// time, and a restarted (even killed) server recovers the exact
// committed history and serves identical answers.
//
// -role picks the process's place in a replicated topology:
//
//   - single (default): one process, reads and writes.
//   - leader: a durable single that also ships its WAL to followers
//     over GET /v1/wal and its checkpoint images over GET /v1/checkpoint.
//   - replica: bootstraps from -leader's checkpoints, applies its live
//     WAL stream, and serves reads only; POST /v1/history gets a 403.
//     Reads may carry min_version for read-your-writes.
//   - router: no engine at all — health-checks -leader and -backends,
//     spreads reads over the replicas already at the requested
//     min_version, and forwards appends to the leader.
//
// Usage:
//
//	# in-memory (rebuilt from files on every start)
//	mahifd -addr :8080 -csv orders=orders.csv -history history.sql
//
//	# durable: first start ingests, later starts recover
//	mahifd -addr :8080 -data /var/lib/mahif -csv orders=orders.csv -history history.sql
//	mahifd -addr :8080 -data /var/lib/mahif
//
//	# replicated: leader, two replicas, one router
//	mahifd -addr :8080 -role leader -data /var/lib/mahif
//	mahifd -addr :8081 -role replica -leader http://localhost:8080
//	mahifd -addr :8082 -role replica -leader http://localhost:8080
//	mahifd -addr :8090 -role router -leader http://localhost:8080 \
//	       -backends http://localhost:8081,http://localhost:8082
//
// API (v1; see internal/service for the wire types):
//
//	POST /v1/whatif   {"modifications": [{"op": "replace", "pos": 1,
//	                   "statement": "UPDATE orders SET fee = 0 WHERE price >= 60"}],
//	                   "variant": "R+PS+DS", "stats": true, "timeout_ms": 500,
//	                   "min_version": 42}
//	POST /v1/batch    {"scenarios": [{"label": "fee60", "modifications": [...]}],
//	                   "workers": 4, "stats": true}
//	POST /v1/template {"modifications": [{"op": "replace", "pos": 1,
//	                   "statement": "UPDATE orders SET fee = 0 WHERE price >= $cut"}]}
//	                  → compiles the $-parameterized scenario once, returns its id
//	POST /v1/template/{id}/eval  {"binding": {"cut": 60}} — or a sweep:
//	                  {"bindings": [{"cut": 55}, {"cut": 60}], "workers": 4}
//	GET  /v1/history  the transactional history (paged: ?since=N&limit=M)
//	POST /v1/history  {"statements": ["UPDATE orders SET fee = 1 WHERE id = 7"]}
//	GET  /v1/status   role, version, replication position
//	GET  /v1/wal      committed WAL record stream (store-backed only)
//	GET  /v1/checkpoint  checkpoint image (store-backed only)
//	GET  /metrics     Prometheus text exposition (sessions, WAL, replication)
//	GET  /healthz     liveness
//
// Every request is evaluated under a deadline (the smaller of -timeout
// and the request's timeout_ms); a request that exceeds it gets a 504
// and, thanks to the engine's context plumbing, stops consuming CPU
// within milliseconds. SIGINT/SIGTERM drain in-flight requests before
// exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/mahif/mahif/internal/core"
	"github.com/mahif/mahif/internal/persist"
	"github.com/mahif/mahif/internal/replica"
	"github.com/mahif/mahif/internal/service"
)

type csvFlags []string

func (d *csvFlags) String() string { return strings.Join(*d, ",") }

func (d *csvFlags) Set(v string) error {
	*d = append(*d, v)
	return nil
}

type config struct {
	csvs            csvFlags
	dataDir         string
	historyPath     string
	addr            string
	sessions        int
	timeout         time.Duration
	drain           time.Duration
	checkpointEvery int
	role            string
	leaderURL       string
	backends        string
}

func main() {
	var cfg config
	flag.Var(&cfg.csvs, "csv", "relation=file.csv (repeatable; base state for first ingest or in-memory serving)")
	flag.StringVar(&cfg.dataDir, "data", "", "durable data directory (WAL + checkpoints); empty serves in-memory")
	flag.StringVar(&cfg.historyPath, "history", "", "SQL script with the transactional history (first ingest / in-memory)")
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.IntVar(&cfg.sessions, "sessions", 1, "session pool size")
	flag.DurationVar(&cfg.timeout, "timeout", 30*time.Second, "per-request evaluation budget")
	flag.DurationVar(&cfg.drain, "drain", 10*time.Second, "shutdown grace period for in-flight requests")
	flag.IntVar(&cfg.checkpointEvery, "checkpoint-every", 1000, "auto checkpoint every N appended statements (0 = manual)")
	flag.StringVar(&cfg.role, "role", "single", "topology role: single, leader, replica, or router")
	flag.StringVar(&cfg.leaderURL, "leader", "", "leader base URL (roles replica and router)")
	flag.StringVar(&cfg.backends, "backends", "", "comma-separated replica base URLs (role router)")
	flag.Parse()

	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "mahifd:", err)
		os.Exit(1)
	}
}

// loadEngine resolves the three start modes: recover a durable store,
// initialize one from CSVs, or serve in-memory.
func loadEngine(cfg config) (*core.Engine, *persist.Store, error) {
	if cfg.dataDir == "" {
		if len(cfg.csvs) == 0 || cfg.historyPath == "" {
			flag.Usage()
			os.Exit(2)
		}
		engine, err := service.LoadEngine(cfg.csvs, cfg.historyPath)
		return engine, nil, err
	}
	opts := persist.Options{CheckpointEvery: cfg.checkpointEvery, Logf: log.Printf}
	if persist.Detect(cfg.dataDir) {
		if len(cfg.csvs) > 0 || cfg.historyPath != "" {
			return nil, nil, fmt.Errorf("-data %s already holds a store; drop -csv/-history (append via POST /v1/history or `mahif ingest`)", cfg.dataDir)
		}
		engine, store, err := service.OpenStore(cfg.dataDir, opts)
		if err != nil {
			return nil, nil, err
		}
		ri := store.RecoveryInfo()
		log.Printf("mahifd: recovered %d statements from %s in %v (checkpoint@%d, replayed %d, truncated %d records)",
			ri.Statements, cfg.dataDir, ri.Duration, ri.CheckpointVersion, ri.ReplayedStatements, ri.TruncatedRecords)
		return engine, store, nil
	}
	if len(cfg.csvs) == 0 {
		return nil, nil, fmt.Errorf("-data %s holds no store yet; pass -csv relation=file.csv (and optionally -history) to ingest", cfg.dataDir)
	}
	engine, store, err := service.InitStore(cfg.dataDir, cfg.csvs, cfg.historyPath, opts)
	if err != nil {
		return nil, nil, err
	}
	log.Printf("mahifd: initialized durable store in %s (%d statements ingested)", cfg.dataDir, store.Version())
	return engine, store, nil
}

// roleServer is one role's wiring: the handler that serves, the
// callback Shutdown fires (ends open WAL streams so drain can finish),
// the cleanup that runs after drain, and a log line describing it.
type roleServer struct {
	handler    http.Handler
	onShutdown func()
	cleanup    func()
	desc       string
}

// buildHandler wires the role: which handler serves, whether a store
// backs it, and what runs in the background (stream follower, health
// poller).
func buildHandler(ctx context.Context, cfg config) (roleServer, error) {
	noop := func() {}
	rs := roleServer{onShutdown: noop, cleanup: noop}
	switch cfg.role {
	case "single", "leader":
		engine, store, err := loadEngine(cfg)
		if err != nil {
			return rs, err
		}
		if cfg.role == "leader" && store == nil {
			return rs, fmt.Errorf("-role leader needs -data: followers stream the WAL")
		}
		srv := service.New(engine, service.Options{
			Sessions: cfg.sessions, Timeout: cfg.timeout, Store: store, Role: cfg.role,
		})
		rs.handler = srv.Handler()
		rs.onShutdown = srv.StopStreams
		mode := "in-memory"
		if store != nil {
			mode = "durable:" + store.Dir()
			rs.cleanup = func() { store.Close() }
		}
		rs.desc = fmt.Sprintf("%s, %s, %d-statement history", cfg.role, mode, engine.Version())
		return rs, nil

	case "replica":
		if cfg.leaderURL == "" {
			return rs, fmt.Errorf("-role replica needs -leader")
		}
		rep, err := bootstrapWithRetry(ctx, replica.Options{LeaderURL: cfg.leaderURL, Logf: log.Printf})
		if err != nil {
			return rs, err
		}
		go rep.Run(ctx)
		srv := service.New(rep.Engine(), service.Options{
			Sessions: cfg.sessions, Timeout: cfg.timeout,
			Role: "replica", ReadOnly: true, Replication: rep,
		})
		rs.handler = srv.Handler()
		rs.desc = fmt.Sprintf("replica of %s, bootstrapped at version %d", cfg.leaderURL, rep.Engine().Version())
		return rs, nil

	case "router":
		if cfg.leaderURL == "" {
			return rs, fmt.Errorf("-role router needs -leader")
		}
		var backends []string
		for _, b := range strings.Split(cfg.backends, ",") {
			if b = strings.TrimSpace(b); b != "" {
				backends = append(backends, b)
			}
		}
		router, err := replica.NewRouter(replica.RouterOptions{
			LeaderURL: cfg.leaderURL, Backends: backends, Logf: log.Printf,
		})
		if err != nil {
			return rs, err
		}
		go router.Run(ctx)
		rs.handler = router.Handler()
		rs.desc = fmt.Sprintf("router over leader %s + %d replicas", cfg.leaderURL, len(backends))
		return rs, nil
	}
	return rs, fmt.Errorf("unknown -role %q (want single, leader, replica, or router)", cfg.role)
}

// bootstrapWithRetry tolerates a leader that is still starting (the
// normal cluster bring-up order is racy on purpose).
func bootstrapWithRetry(ctx context.Context, opts replica.Options) (*replica.Replica, error) {
	var lastErr error
	for attempt := 0; attempt < 30; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(time.Second):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		rep, err := replica.Bootstrap(ctx, opts)
		if err == nil {
			return rep, nil
		}
		lastErr = err
		log.Printf("mahifd: bootstrap attempt %d: %v", attempt+1, err)
	}
	return nil, fmt.Errorf("bootstrapping from %s: %w", opts.LeaderURL, lastErr)
}

func run(cfg config) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rs, err := buildHandler(ctx, cfg)
	if err != nil {
		return err
	}
	defer rs.cleanup()

	httpSrv := &http.Server{
		Addr:    cfg.addr,
		Handler: rs.handler,
		// Read/write limits shield the evaluation budget from slow
		// clients; WriteTimeout leaves headroom over the evaluation
		// deadline so a just-in-time result still gets written. The WAL
		// stream handler lifts its own write deadline — followers hold
		// their stream open indefinitely.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      cfg.timeout + 10*time.Second,
	}
	httpSrv.RegisterOnShutdown(rs.onShutdown)

	errCh := make(chan error, 1)
	go func() {
		log.Printf("mahifd: serving on %s (%s, sessions=%d, timeout=%v)",
			cfg.addr, rs.desc, cfg.sessions, cfg.timeout)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Printf("mahifd: shutting down, draining for up to %v", cfg.drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), cfg.drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
