// Command mahifd serves historical what-if queries over HTTP: it loads
// CSV snapshots and a SQL history like cmd/mahif, then answers queries
// through a pool of long-lived engine sessions, so consecutive
// requests over the same history reuse time-travel snapshots, solver
// memos, and compiled reenactment programs.
//
// Usage:
//
//	mahifd -addr :8080 -data orders=orders.csv -history history.sql \
//	       [-sessions 1] [-timeout 30s]
//
// API (v1; see internal/service for the wire types):
//
//	POST /v1/whatif   {"modifications": [{"op": "replace", "pos": 1,
//	                   "statement": "UPDATE orders SET fee = 0 WHERE price >= 60"}],
//	                   "variant": "R+PS+DS", "stats": true, "timeout_ms": 500}
//	POST /v1/batch    {"scenarios": [{"label": "fee60", "modifications": [...]}],
//	                   "workers": 4, "stats": true}
//	GET  /v1/history  the loaded transactional history
//	GET  /healthz     liveness
//
// Every request is evaluated under a deadline (the smaller of -timeout
// and the request's timeout_ms); a request that exceeds it gets a 504
// and, thanks to the engine's context plumbing, stops consuming CPU
// within milliseconds. SIGINT/SIGTERM drain in-flight requests before
// exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/mahif/mahif/internal/service"
)

type dataFlags []string

func (d *dataFlags) String() string { return strings.Join(*d, ",") }

func (d *dataFlags) Set(v string) error {
	*d = append(*d, v)
	return nil
}

func main() {
	var data dataFlags
	flag.Var(&data, "data", "relation=file.csv (repeatable)")
	historyPath := flag.String("history", "", "SQL script with the transactional history")
	addr := flag.String("addr", ":8080", "listen address")
	sessions := flag.Int("sessions", 1, "session pool size")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request evaluation budget")
	drain := flag.Duration("drain", 10*time.Second, "shutdown grace period for in-flight requests")
	flag.Parse()

	if len(data) == 0 || *historyPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(data, *historyPath, *addr, *sessions, *timeout, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "mahifd:", err)
		os.Exit(1)
	}
}

func run(data []string, historyPath, addr string, sessions int, timeout, drain time.Duration) error {
	engine, err := service.LoadEngine(data, historyPath)
	if err != nil {
		return err
	}
	h, err := engine.History()
	if err != nil {
		return err
	}
	srv := service.New(engine, service.Options{Sessions: sessions, Timeout: timeout})

	httpSrv := &http.Server{
		Addr:    addr,
		Handler: srv.Handler(),
		// Read/write limits shield the evaluation budget from slow
		// clients; WriteTimeout leaves headroom over the evaluation
		// deadline so a just-in-time result still gets written.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      timeout + 10*time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("mahifd: serving %d-statement history on %s (sessions=%d, timeout=%v)",
			len(h), addr, sessions, timeout)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Printf("mahifd: shutting down, draining for up to %v", drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	for i, st := range srv.SessionStats() {
		log.Printf("mahifd: session %d: calls=%d snapshots(hit/miss)=%d/%d memo(hit/miss)=%d/%d queries(hit/miss)=%d/%d",
			i, st.Calls, st.SnapshotHits, st.SnapshotMisses, st.MemoHits, st.MemoMisses, st.QueryHits, st.QueryMisses)
	}
	return nil
}
