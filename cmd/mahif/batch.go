package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/mahif/mahif"
	"github.com/mahif/mahif/internal/service"
)

// runBatchCmd is the `mahif batch` subcommand: evaluate a family of
// what-if scenarios from a JSON file concurrently over one history.
func runBatchCmd(args []string) {
	fs := flag.NewFlagSet("mahif batch", flag.ExitOnError)
	var data dataFlags
	fs.Var(&data, "data", "relation=file.csv (repeatable)")
	historyPath := fs.String("history", "", "SQL script with the transactional history")
	scenariosPath := fs.String("scenarios", "", "JSON file with the scenario batch")
	variant := fs.String("variant", "R+PS+DS", "algorithm variant: R, R+PS, R+DS, R+PS+DS")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	showStats := fs.Bool("stats", false, "print per-scenario and batch statistics")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), `Usage: mahif batch -data rel=file.csv -history h.sql -scenarios s.json [-variant R+PS+DS] [-workers N] [-stats]

The scenarios file is a JSON array:

  [
    {"label": "fee60", "modifications": [
        {"op": "replace", "pos": 1, "statement": "UPDATE orders SET fee = 0 WHERE price >= 60"},
        {"op": "insert",  "pos": 2, "statement": "UPDATE orders SET fee = 1 WHERE country = 'US'"},
        {"op": "delete",  "pos": 3}
    ]}
  ]

Positions are 1-based, matching the single-query modification script.`)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if len(data) == 0 || *historyPath == "" || *scenariosPath == "" {
		fs.Usage()
		os.Exit(2)
	}
	if err := runBatch(data, *historyPath, *scenariosPath, *variant, *workers, *showStats); err != nil {
		fmt.Fprintln(os.Stderr, "mahif batch:", err)
		os.Exit(1)
	}
}

func runBatch(data []string, historyPath, scenariosPath, variant string, workers int, showStats bool) error {
	engine, err := service.LoadEngine(data, historyPath)
	if err != nil {
		return err
	}
	scenarios, err := loadScenarios(scenariosPath)
	if err != nil {
		return err
	}
	results, bstats, err := engine.WhatIfBatch(scenarios, mahif.BatchOptions{
		Options: mahif.OptionsFor(mahif.Variant(variant)),
		Workers: workers,
	})
	if err != nil {
		return err
	}
	for _, r := range results {
		label := r.Label
		if label == "" {
			label = fmt.Sprintf("scenario %d", r.Scenario+1)
		}
		fmt.Printf("== %s ==\n", label)
		if r.Err != nil {
			fmt.Printf("error: %v\n", r.Err)
			continue
		}
		fmt.Print(r.Delta)
		if showStats {
			fmt.Printf("total=%v time-travel=%v ps=%v ds=%v execute=%v delta=%v reenacted=%d/%d\n",
				r.Stats.Total, r.Stats.TimeTravel, r.Stats.ProgramSlicing, r.Stats.DataSlicing,
				r.Stats.Execute, r.Stats.Delta, r.Stats.KeptStatements, r.Stats.TotalStatements)
		}
	}
	if showStats {
		fmt.Printf("batch: scenarios=%d failed=%d workers=%d total=%v snapshots(hit/miss)=%d/%d memo(hit/miss)=%d/%d queries(hit/miss)=%d/%d\n",
			bstats.Scenarios, bstats.Failed, bstats.Workers, bstats.Total,
			bstats.SnapshotHits, bstats.SnapshotMisses, bstats.MemoHits, bstats.MemoMisses,
			bstats.QueryHits, bstats.QueryMisses)
	}
	if bstats.Failed > 0 {
		return fmt.Errorf("%d of %d scenarios failed", bstats.Failed, bstats.Scenarios)
	}
	return nil
}

// loadScenarios reads the -scenarios file: a JSON array in the same
// wire format the mahifd batch endpoint accepts (internal/service).
func loadScenarios(path string) ([]mahif.Scenario, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var parsed []service.Scenario
	if err := json.Unmarshal(raw, &parsed); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out, err := service.DecodeScenarios(parsed)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}
