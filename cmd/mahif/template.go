package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/mahif/mahif"
	"github.com/mahif/mahif/internal/service"
)

// runTemplateCmd is the `mahif template` subcommand: compile a
// parameterized what-if scenario once and answer a file of bindings.
func runTemplateCmd(args []string) {
	fs := flag.NewFlagSet("mahif template", flag.ExitOnError)
	var data dataFlags
	fs.Var(&data, "data", "relation=file.csv (repeatable)")
	historyPath := fs.String("history", "", "SQL script with the transactional history")
	whatifPath := fs.String("whatif", "", "modification script with $name parameter slots")
	bindingsPath := fs.String("bindings", "", "JSON array of parameter bindings")
	variant := fs.String("variant", "R+PS+DS", "algorithm variant: R, R+PS, R+DS, R+PS+DS")
	workers := fs.Int("workers", 0, "eval worker pool size (0 = GOMAXPROCS)")
	showStats := fs.Bool("stats", false, "print compile and eval statistics")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), `Usage: mahif template -data rel=file.csv -history h.sql -whatif changes.txt -bindings b.json [-variant R+PS+DS] [-workers N] [-stats]

The modification script is the single-query format with $name slots in
the statements:

  replace 1: UPDATE orders SET fee = 0 WHERE price >= $cut

The bindings file is a JSON array of objects, one delta per entry:

  [ {"cut": 55}, {"cut": 60}, {"cut": 65.5} ]

The scenario is compiled once (alignment, time travel, program slicing
with the slots symbolic); each binding then costs only the retained
modified-side evaluation.`)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if len(data) == 0 || *historyPath == "" || *whatifPath == "" || *bindingsPath == "" {
		fs.Usage()
		os.Exit(2)
	}
	if err := runTemplate(data, *historyPath, *whatifPath, *bindingsPath, *variant, *workers, *showStats); err != nil {
		fmt.Fprintln(os.Stderr, "mahif template:", err)
		os.Exit(1)
	}
}

func runTemplate(data []string, historyPath, whatifPath, bindingsPath, variant string, workers int, showStats bool) error {
	engine, err := service.LoadEngine(data, historyPath)
	if err != nil {
		return err
	}
	mods, err := loadModifications(whatifPath)
	if err != nil {
		return err
	}
	bindings, err := loadBindings(bindingsPath)
	if err != nil {
		return err
	}
	tpl, err := engine.CompileTemplate(mods, mahif.OptionsFor(mahif.Variant(variant)))
	if err != nil {
		return err
	}
	if showStats {
		st := tpl.Stats()
		fmt.Printf("template: params=%v compile=%v reenacted=%d/%d (binding-independent=%d dependent=%d)\n",
			tpl.Params(), st.CompileTime, st.KeptStatements, st.TotalStatements,
			st.BindingIndependent, st.BindingDependent)
	}
	results, err := tpl.EvalBatch(bindings, workers)
	if err != nil {
		return err
	}
	failed := 0
	for i, r := range results {
		fmt.Printf("== binding %d %s ==\n", i+1, bindingLabel(bindings[i]))
		if r.Err != nil {
			fmt.Printf("error: %v\n", r.Err)
			failed++
			continue
		}
		fmt.Print(r.Delta)
	}
	if showStats {
		st := tpl.Stats()
		fmt.Printf("template: bindings=%d failed=%d evals=%d recompiles=%d\n",
			len(bindings), failed, st.Evals, st.Recompiles)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d bindings failed", failed, len(bindings))
	}
	return nil
}

// loadBindings reads the -bindings file: a JSON array of name→value
// objects in the engine's value encoding (the same shape the mahifd
// template eval endpoint accepts).
func loadBindings(path string) ([]map[string]mahif.Value, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []map[string]mahif.Value
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no bindings", path)
	}
	return out, nil
}

// bindingLabel renders a binding compactly for the per-result header.
func bindingLabel(b map[string]mahif.Value) string {
	raw, err := json.Marshal(b)
	if err != nil {
		return ""
	}
	return string(raw)
}
