package main

import (
	"strings"
	"testing"
)

// TestRunHowtoEndToEnd drives the howto CLI path: two orders sit under
// the price-40 line, so the SUM(shippingfee) delta of replacing the +1
// surcharge with +$x is 2x − 2, and reaching +10 needs x = 6. runHowto
// fails the run when the certificate does not pass, so a nil error
// also pins certification.
func TestRunHowtoEndToEnd(t *testing.T) {
	dir := t.TempDir()
	csv := writeFile(t, dir, "orders.csv", ordersCSV)
	hist := writeFile(t, dir, "history.sql", `
		UPDATE orders SET shippingfee = 0 WHERE price >= 50;
		UPDATE orders SET shippingfee = shippingfee + 1 WHERE price < 40;
	`)
	whatif := writeFile(t, dir, "changes.txt",
		"replace 2: UPDATE orders SET shippingfee = shippingfee + $x WHERE price < 40\n")
	target := writeFile(t, dir, "target.json", `{
		"query":  "SELECT SUM(shippingfee) AS s FROM orders",
		"column": "s",
		"op":     "==",
		"value":  10,
		"bounds": {"x": {"lo": -100, "hi": 100}}
	}`)
	if err := runHowto([]string{"orders=" + csv}, hist, whatif, target, "R+PS+DS"); err != nil {
		t.Fatal(err)
	}

	// An unreachable target surfaces as a search error.
	bad := writeFile(t, dir, "bad.json", `{
		"query":  "SELECT SUM(shippingfee) AS s FROM orders",
		"column": "s",
		"op":     ">=",
		"value":  1000000,
		"bounds": {"x": {"lo": -10, "hi": 10}}
	}`)
	err := runHowto([]string{"orders=" + csv}, hist, whatif, bad, "R+PS+DS")
	if err == nil || !strings.Contains(err.Error(), "no satisfying binding") {
		t.Fatalf("want no-satisfying-binding error, got %v", err)
	}
}
