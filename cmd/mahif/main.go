// Command mahif answers a historical what-if query from files: a CSV
// snapshot of each relation (the state before the history ran), a SQL
// script with the transactional history, and a modification script
// describing the hypothetical change. It prints the annotated delta.
//
// Usage:
//
//	mahif -data orders=orders.csv -history history.sql -whatif changes.txt [-variant R+PS+DS] [-stats]
//	mahif batch -data orders=orders.csv -history history.sql -scenarios scenarios.json [-workers N] [-stats]
//
// The modification script has one modification per line:
//
//	replace <n>: <statement>     # replace the n-th statement (1-based)
//	insert <n>: <statement>      # insert before the n-th statement
//	delete <n>                   # remove the n-th statement
//
// The batch subcommand evaluates a family of scenarios concurrently
// over the same history; its -scenarios file is a JSON array (see
// `mahif batch -h` for the schema).
//
// CSV files need a header row; column types are inferred from the first
// data row (int, float, bool, then string).
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/mahif/mahif"
)

type dataFlags []string

func (d *dataFlags) String() string { return strings.Join(*d, ",") }

func (d *dataFlags) Set(v string) error {
	*d = append(*d, v)
	return nil
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "batch" {
		runBatchCmd(os.Args[2:])
		return
	}
	var data dataFlags
	flag.Var(&data, "data", "relation=file.csv (repeatable)")
	historyPath := flag.String("history", "", "SQL script with the transactional history")
	whatifPath := flag.String("whatif", "", "modification script (replace/insert/delete lines)")
	variant := flag.String("variant", "R+PS+DS", "algorithm variant: N, R, R+PS, R+DS, R+PS+DS")
	showStats := flag.Bool("stats", false, "print per-phase statistics")
	flag.Parse()

	if len(data) == 0 || *historyPath == "" || *whatifPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(data, *historyPath, *whatifPath, *variant, *showStats); err != nil {
		fmt.Fprintln(os.Stderr, "mahif:", err)
		os.Exit(1)
	}
}

func run(data []string, historyPath, whatifPath, variant string, showStats bool) error {
	db := mahif.NewDatabase()
	for _, spec := range data {
		name, file, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("bad -data %q (want relation=file.csv)", spec)
		}
		rel, err := loadCSV(name, file)
		if err != nil {
			return err
		}
		db.AddRelation(rel)
	}

	historySQL, err := os.ReadFile(historyPath)
	if err != nil {
		return err
	}
	hist, err := mahif.ParseStatements(string(historySQL))
	if err != nil {
		return err
	}
	vdb := mahif.NewVersioned(db)
	for _, st := range hist {
		if err := vdb.Apply(st); err != nil {
			return fmt.Errorf("executing history: %w", err)
		}
	}

	mods, err := loadModifications(whatifPath)
	if err != nil {
		return err
	}

	engine := mahif.NewEngine(vdb)
	if variant == "N" {
		delta, stats, err := engine.Naive(mods)
		if err != nil {
			return err
		}
		fmt.Print(delta)
		if showStats {
			fmt.Printf("naive: total=%v copy=%v execute=%v delta=%v\n",
				stats.Total, stats.Creation, stats.Execute, stats.Delta)
		}
		return nil
	}
	delta, stats, err := engine.WhatIf(mods, mahif.OptionsFor(mahif.Variant(variant)))
	if err != nil {
		return err
	}
	fmt.Print(delta)
	if showStats {
		fmt.Printf("%s: total=%v time-travel=%v ps=%v ds=%v execute=%v delta=%v reenacted=%d/%d\n",
			variant, stats.Total, stats.TimeTravel, stats.ProgramSlicing, stats.DataSlicing,
			stats.Execute, stats.Delta, stats.KeptStatements, stats.TotalStatements)
	}
	return nil
}

func loadCSV(relName, file string) (*mahif.Relation, error) {
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", file, err)
	}
	if len(rows) < 1 {
		return nil, fmt.Errorf("%s: empty CSV", file)
	}
	header := rows[0]
	var cols []mahif.Column
	if len(rows) == 1 {
		for _, h := range header {
			cols = append(cols, mahif.Col(h, mahif.KindString))
		}
	} else {
		for ci, h := range header {
			cols = append(cols, mahif.Col(h, inferKind(rows[1:], ci)))
		}
	}
	rel := mahif.NewRelation(mahif.NewSchema(relName, cols...))
	for _, row := range rows[1:] {
		if len(row) != len(header) {
			return nil, fmt.Errorf("%s: row with %d fields, header has %d", file, len(row), len(header))
		}
		t := make(mahif.Tuple, len(row))
		for ci, cell := range row {
			t[ci] = parseCell(cell, cols[ci].Type)
		}
		rel.Add(t)
	}
	return rel, nil
}

func inferKind(rows [][]string, ci int) mahif.Kind {
	kind := mahif.KindInt
	for _, row := range rows {
		cell := row[ci]
		if cell == "" {
			continue
		}
		switch kind {
		case mahif.KindInt:
			if _, err := strconv.ParseInt(cell, 10, 64); err == nil {
				continue
			}
			kind = mahif.KindFloat
			fallthrough
		case mahif.KindFloat:
			if _, err := strconv.ParseFloat(cell, 64); err == nil {
				continue
			}
			kind = mahif.KindBool
			fallthrough
		case mahif.KindBool:
			if cell == "true" || cell == "false" {
				continue
			}
			return mahif.KindString
		}
	}
	return kind
}

func parseCell(cell string, kind mahif.Kind) mahif.Value {
	if cell == "" {
		return mahif.Null()
	}
	switch kind {
	case mahif.KindInt:
		if v, err := strconv.ParseInt(cell, 10, 64); err == nil {
			return mahif.Int(v)
		}
	case mahif.KindFloat:
		if v, err := strconv.ParseFloat(cell, 64); err == nil {
			return mahif.Float(v)
		}
	case mahif.KindBool:
		if cell == "true" {
			return mahif.Bool(true)
		}
		if cell == "false" {
			return mahif.Bool(false)
		}
	}
	return mahif.Str(cell)
}

func loadModifications(path string) ([]mahif.Modification, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var mods []mahif.Modification
	for ln, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "--") {
			continue
		}
		verb, rest, _ := strings.Cut(line, " ")
		switch strings.ToLower(verb) {
		case "replace", "insert":
			numStr, stmt, ok := strings.Cut(rest, ":")
			if !ok {
				return nil, fmt.Errorf("%s:%d: want %q", path, ln+1, verb+" <n>: <statement>")
			}
			n, err := strconv.Atoi(strings.TrimSpace(numStr))
			if err != nil || n < 1 {
				return nil, fmt.Errorf("%s:%d: bad position %q", path, ln+1, numStr)
			}
			parsed, err := mahif.ParseStatement(strings.TrimSpace(stmt))
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %w", path, ln+1, err)
			}
			if strings.ToLower(verb) == "replace" {
				mods = append(mods, mahif.Replace{Pos: n - 1, Stmt: parsed})
			} else {
				mods = append(mods, mahif.InsertStmt{Pos: n - 1, Stmt: parsed})
			}
		case "delete":
			n, err := strconv.Atoi(strings.TrimSpace(rest))
			if err != nil || n < 1 {
				return nil, fmt.Errorf("%s:%d: bad position %q", path, ln+1, rest)
			}
			mods = append(mods, mahif.DeleteAt(n-1))
		default:
			return nil, fmt.Errorf("%s:%d: unknown modification %q", path, ln+1, verb)
		}
	}
	if len(mods) == 0 {
		return nil, fmt.Errorf("%s: no modifications", path)
	}
	return mods, nil
}
