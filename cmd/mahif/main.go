// Command mahif answers a historical what-if query from files: a CSV
// snapshot of each relation (the state before the history ran), a SQL
// script with the transactional history, and a modification script
// describing the hypothetical change. It prints the annotated delta.
//
// Usage:
//
//	mahif -data orders=orders.csv -history history.sql -whatif changes.txt [-variant R+PS+DS] [-stats]
//	mahif batch -data orders=orders.csv -history history.sql -scenarios scenarios.json [-workers N] [-stats]
//	mahif template -data orders=orders.csv -history history.sql -whatif changes.txt -bindings bindings.json [-workers N] [-stats]
//	mahif howto -data orders=orders.csv -history history.sql -whatif changes.txt -target target.json
//	mahif ingest -data DIR [-csv rel=file.csv ...] [-history h.sql]
//	mahif checkpoint -data DIR
//
// The ingest and checkpoint subcommands manage a durable store
// directory (segmented WAL + snapshot checkpoints, the same layout
// mahifd's -data flag serves); there -data names the directory, not a
// CSV. The modification script has one modification per line:
//
//	replace <n>: <statement>     # replace the n-th statement (1-based)
//	insert <n>: <statement>      # insert before the n-th statement
//	delete <n>                   # remove the n-th statement
//
// The batch subcommand evaluates a family of scenarios concurrently
// over the same history; its -scenarios file is a JSON array (see
// `mahif batch -h` for the schema). The template subcommand compiles a
// modification script whose statements carry $name parameter slots
// once, then answers a JSON file of bindings against the compiled
// artifact (see `mahif template -h`). The howto subcommand inverts the
// question: it searches the $slot binding space for the
// minimal-magnitude values achieving a target condition over an
// aggregate delta (see `mahif howto -h`).
//
// CSV files need a header row; column types are inferred from the first
// data row (int, float, bool, then string).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/mahif/mahif"
	"github.com/mahif/mahif/internal/service"
)

type dataFlags []string

func (d *dataFlags) String() string { return strings.Join(*d, ",") }

func (d *dataFlags) Set(v string) error {
	*d = append(*d, v)
	return nil
}

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "batch":
			runBatchCmd(os.Args[2:])
			return
		case "template":
			runTemplateCmd(os.Args[2:])
			return
		case "howto":
			runHowtoCmd(os.Args[2:])
			return
		case "ingest":
			runIngestCmd(os.Args[2:])
			return
		case "checkpoint":
			runCheckpointCmd(os.Args[2:])
			return
		}
	}
	var data dataFlags
	flag.Var(&data, "data", "relation=file.csv (repeatable)")
	historyPath := flag.String("history", "", "SQL script with the transactional history")
	whatifPath := flag.String("whatif", "", "modification script (replace/insert/delete lines)")
	variant := flag.String("variant", "R+PS+DS", "algorithm variant: N, R, R+PS, R+DS, R+PS+DS")
	showStats := flag.Bool("stats", false, "print per-phase statistics")
	flag.Parse()

	if len(data) == 0 || *historyPath == "" || *whatifPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(data, *historyPath, *whatifPath, *variant, *showStats); err != nil {
		fmt.Fprintln(os.Stderr, "mahif:", err)
		os.Exit(1)
	}
}

func run(data []string, historyPath, whatifPath, variant string, showStats bool) error {
	engine, err := service.LoadEngine(data, historyPath)
	if err != nil {
		return err
	}
	mods, err := loadModifications(whatifPath)
	if err != nil {
		return err
	}
	if variant == "N" {
		delta, stats, err := engine.Naive(mods)
		if err != nil {
			return err
		}
		fmt.Print(delta)
		if showStats {
			fmt.Printf("naive: total=%v copy=%v execute=%v delta=%v\n",
				stats.Total, stats.Creation, stats.Execute, stats.Delta)
		}
		return nil
	}
	delta, stats, err := engine.WhatIf(mods, mahif.OptionsFor(mahif.Variant(variant)))
	if err != nil {
		return err
	}
	fmt.Print(delta)
	if showStats {
		fmt.Printf("%s: total=%v time-travel=%v ps=%v ds=%v execute=%v delta=%v reenacted=%d/%d\n",
			variant, stats.Total, stats.TimeTravel, stats.ProgramSlicing, stats.DataSlicing,
			stats.Execute, stats.Delta, stats.KeptStatements, stats.TotalStatements)
	}
	return nil
}

func loadModifications(path string) ([]mahif.Modification, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var mods []mahif.Modification
	for ln, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "--") {
			continue
		}
		verb, rest, _ := strings.Cut(line, " ")
		switch strings.ToLower(verb) {
		case "replace", "insert":
			numStr, stmt, ok := strings.Cut(rest, ":")
			if !ok {
				return nil, fmt.Errorf("%s:%d: want %q", path, ln+1, verb+" <n>: <statement>")
			}
			n, err := strconv.Atoi(strings.TrimSpace(numStr))
			if err != nil || n < 1 {
				return nil, fmt.Errorf("%s:%d: bad position %q", path, ln+1, numStr)
			}
			parsed, err := mahif.ParseStatement(strings.TrimSpace(stmt))
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %w", path, ln+1, err)
			}
			if strings.ToLower(verb) == "replace" {
				mods = append(mods, mahif.Replace{Pos: n - 1, Stmt: parsed})
			} else {
				mods = append(mods, mahif.InsertStmt{Pos: n - 1, Stmt: parsed})
			}
		case "delete":
			n, err := strconv.Atoi(strings.TrimSpace(rest))
			if err != nil || n < 1 {
				return nil, fmt.Errorf("%s:%d: bad position %q", path, ln+1, rest)
			}
			mods = append(mods, mahif.DeleteAt(n-1))
		default:
			return nil, fmt.Errorf("%s:%d: unknown modification %q", path, ln+1, verb)
		}
	}
	if len(mods) == 0 {
		return nil, fmt.Errorf("%s: no modifications", path)
	}
	return mods, nil
}
