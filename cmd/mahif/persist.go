package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"github.com/mahif/mahif/internal/persist"
	"github.com/mahif/mahif/internal/service"
)

// runIngestCmd is the `mahif ingest` subcommand: create a durable
// store from CSV snapshots, or append a SQL script to an existing one
// — the offline counterpart of mahifd's POST /v1/history.
func runIngestCmd(args []string) {
	fs := flag.NewFlagSet("mahif ingest", flag.ExitOnError)
	dataDir := fs.String("data", "", "durable data directory (WAL + checkpoints)")
	var csvs dataFlags
	fs.Var(&csvs, "csv", "relation=file.csv (repeatable; base state, first ingest only)")
	historyPath := fs.String("history", "", "SQL script to commit through the WAL")
	checkpointEvery := fs.Int("checkpoint-every", 1000, "auto checkpoint every N appended statements (0 = manual)")
	nosync := fs.Bool("nosync", false, "skip fsync (bulk ingest; a crash can lose acknowledged statements)")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), `Usage: mahif ingest -data DIR [-csv rel=file.csv ...] [-history h.sql] [-checkpoint-every N] [-nosync]

First run (DIR holds no store): -csv is required; the CSVs become the
base state (checkpoint 0) and the optional -history script is
committed statement by statement through the write-ahead log.

Later runs (DIR holds a store): -csv is rejected; the -history script
is appended to the recovered history.`)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if *dataDir == "" {
		fs.Usage()
		os.Exit(2)
	}
	if err := runIngest(*dataDir, csvs, *historyPath, *checkpointEvery, *nosync); err != nil {
		fmt.Fprintln(os.Stderr, "mahif ingest:", err)
		os.Exit(1)
	}
}

func runIngest(dataDir string, csvs []string, historyPath string, checkpointEvery int, nosync bool) error {
	opts := persist.Options{CheckpointEvery: checkpointEvery, NoSync: nosync, Logf: logfStderr}
	if !persist.Detect(dataDir) {
		_, store, err := service.InitStore(dataDir, csvs, historyPath, opts)
		if err != nil {
			return err
		}
		defer store.Close()
		st := store.Stats()
		fmt.Printf("initialized %s: base %d relations, %d statements committed, %d WAL bytes\n",
			dataDir, len(store.Database().Base().RelationNames()), st.Version, st.WALBytesWritten)
		return nil
	}
	if len(csvs) > 0 {
		return fmt.Errorf("%s already holds a store; -csv is only for first ingest", dataDir)
	}
	if historyPath == "" {
		return fmt.Errorf("%s already holds a store; pass -history with statements to append", dataDir)
	}
	_, store, err := service.OpenStore(dataDir, opts)
	if err != nil {
		return err
	}
	defer store.Close()
	before := store.Version()
	hist, err := service.LoadHistory(historyPath)
	if err != nil {
		return err
	}
	if len(hist) == 0 {
		return fmt.Errorf("%s: no statements", historyPath)
	}
	ver, err := store.Append(context.Background(), hist)
	if err != nil {
		return fmt.Errorf("after committing %d statements: %w", ver-before, err)
	}
	fmt.Printf("appended %d statements to %s (version %d → %d)\n", ver-before, dataDir, before, ver)
	return nil
}

// runCheckpointCmd is the `mahif checkpoint` subcommand: force a
// snapshot checkpoint so the next recovery replays only statements
// after it.
func runCheckpointCmd(args []string) {
	fs := flag.NewFlagSet("mahif checkpoint", flag.ExitOnError)
	dataDir := fs.String("data", "", "durable data directory")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "Usage: mahif checkpoint -data DIR")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if *dataDir == "" {
		fs.Usage()
		os.Exit(2)
	}
	if err := runCheckpoint(*dataDir); err != nil {
		fmt.Fprintln(os.Stderr, "mahif checkpoint:", err)
		os.Exit(1)
	}
}

func runCheckpoint(dataDir string) error {
	_, store, err := service.OpenStore(dataDir, persist.Options{Logf: logfStderr})
	if err != nil {
		return err
	}
	defer store.Close()
	ri := store.RecoveryInfo()
	info, err := store.Checkpoint()
	if err != nil {
		return err
	}
	fmt.Printf("checkpoint@%d: %d bytes in %v (recovery had replayed %d statements from checkpoint@%d)\n",
		info.Version, info.Bytes, info.Duration, ri.ReplayedStatements, ri.CheckpointVersion)
	return nil
}

func logfStderr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}
