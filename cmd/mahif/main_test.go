package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/mahif/mahif"
	"github.com/mahif/mahif/internal/service"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const ordersCSV = `id,customer,country,price,shippingfee
11,Susan,UK,20,5
12,Alex,UK,50,5
13,Jack,US,60,3
14,Mark,US,30,4
`

func TestLoadCSVInference(t *testing.T) {
	dir := t.TempDir()
	path := writeFile(t, dir, "orders.csv", ordersCSV)
	rel, err := service.LoadCSV("orders", path)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 4 {
		t.Fatalf("rows = %d", rel.Len())
	}
	s := rel.Schema
	wantKinds := map[string]mahif.Kind{
		"id": mahif.KindInt, "customer": mahif.KindString,
		"country": mahif.KindString, "price": mahif.KindInt,
		"shippingfee": mahif.KindInt,
	}
	for col, kind := range wantKinds {
		idx := s.ColIndex(col)
		if idx < 0 {
			t.Fatalf("column %q missing", col)
		}
		if s.Columns[idx].Type != kind {
			t.Errorf("column %q inferred as %v, want %v", col, s.Columns[idx].Type, kind)
		}
	}
}

func TestLoadCSVMixedAndEmptyCells(t *testing.T) {
	dir := t.TempDir()
	path := writeFile(t, dir, "m.csv", "a,b,c,d\n1,1.5,true,\n2,x,false,y\n")
	rel, err := service.LoadCSV("m", path)
	if err != nil {
		t.Fatal(err)
	}
	s := rel.Schema
	if s.Columns[0].Type != mahif.KindInt {
		t.Errorf("a = %v", s.Columns[0].Type)
	}
	// 1.5 then x → string.
	if s.Columns[1].Type != mahif.KindString {
		t.Errorf("b = %v", s.Columns[1].Type)
	}
	if s.Columns[2].Type != mahif.KindBool {
		t.Errorf("c = %v", s.Columns[2].Type)
	}
	// Empty first cell is skipped during inference; NULL at load.
	if !rel.Tuples[0][3].IsNull() {
		t.Errorf("empty cell = %v, want NULL", rel.Tuples[0][3])
	}
}

func TestLoadCSVErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := service.LoadCSV("x", filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("missing file accepted")
	}
	bad := writeFile(t, dir, "bad.csv", "a,b\n1\n")
	if _, err := service.LoadCSV("x", bad); err == nil {
		t.Error("ragged row accepted")
	}
	empty := writeFile(t, dir, "empty.csv", "")
	if _, err := service.LoadCSV("x", empty); err == nil {
		t.Error("empty file accepted")
	}
}

func TestLoadModifications(t *testing.T) {
	dir := t.TempDir()
	path := writeFile(t, dir, "mods.txt", `
# comment
replace 1: UPDATE orders SET shippingfee = 0 WHERE price >= 60
insert 2: UPDATE orders SET shippingfee = 1 WHERE country = 'US'
delete 3
`)
	mods, err := loadModifications(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(mods) != 3 {
		t.Fatalf("mods = %d", len(mods))
	}
	if r, ok := mods[0].(mahif.Replace); !ok || r.Pos != 0 {
		t.Errorf("first mod = %#v", mods[0])
	}
	if ins, ok := mods[1].(mahif.InsertStmt); !ok || ins.Pos != 1 {
		t.Errorf("second mod = %#v", mods[1])
	}
	if del, ok := mods[2].(mahif.DeleteStmt); !ok || del.Pos != 2 {
		t.Errorf("third mod = %#v", mods[2])
	}
}

func TestLoadModificationsErrors(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"verb":     "frobnicate 1: UPDATE t SET a = 1",
		"position": "replace zero: UPDATE t SET a = 1",
		"colon":    "replace 1 UPDATE t SET a = 1",
		"sql":      "replace 1: UPDATE SET",
		"empty":    "# nothing here\n",
	}
	for name, content := range cases {
		path := writeFile(t, dir, name+".txt", content)
		if _, err := loadModifications(path); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

// TestRunEndToEnd drives the whole CLI path (CSV → history → what-if)
// for every variant, reproducing the paper's running example.
func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	csv := writeFile(t, dir, "orders.csv", ordersCSV)
	hist := writeFile(t, dir, "history.sql", `
		UPDATE orders SET shippingfee = 0 WHERE price >= 50;
		UPDATE orders SET shippingfee = shippingfee + 5 WHERE country = 'UK' AND price <= 100;
		UPDATE orders SET shippingfee = shippingfee - 2 WHERE price <= 30 AND shippingfee >= 10;
	`)
	mods := writeFile(t, dir, "mods.txt",
		"replace 1: UPDATE orders SET shippingfee = 0 WHERE price >= 60\n")

	for _, variant := range []string{"N", "R", "R+PS", "R+DS", "R+PS+DS"} {
		if err := run([]string{"orders=" + csv}, hist, mods, variant, true); err != nil {
			t.Errorf("variant %s: %v", variant, err)
		}
	}
	if err := run([]string{"bad-spec"}, hist, mods, "R", false); err == nil {
		t.Error("malformed -data accepted")
	}
}
