package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/mahif/mahif"
	"github.com/mahif/mahif/internal/howto"
	"github.com/mahif/mahif/internal/service"
)

// runHowtoCmd is the `mahif howto` subcommand: invert a what-if —
// given a parameterized modification script and a target condition
// over an aggregate delta, search for the minimal-magnitude binding
// that achieves it and print the certified answer.
func runHowtoCmd(args []string) {
	fs := flag.NewFlagSet("mahif howto", flag.ExitOnError)
	var data dataFlags
	fs.Var(&data, "data", "relation=file.csv (repeatable)")
	historyPath := fs.String("history", "", "SQL script with the transactional history")
	whatifPath := fs.String("whatif", "", "modification script with $name parameter slots")
	targetPath := fs.String("target", "", "JSON how-to target (query, column, op, value, optional group/bounds)")
	variant := fs.String("variant", "R+PS+DS", "algorithm variant: R, R+PS, R+DS, R+PS+DS")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), `Usage: mahif howto -data rel=file.csv -history h.sql -whatif changes.txt -target target.json [-variant R+PS+DS]

The modification script is the single-query format with $name slots:

  replace 2: UPDATE orders SET fee = fee + $x WHERE price < 40

The target file describes the desired aggregate-delta effect and the
search bounds:

  {
    "query":  "SELECT region, SUM(amount) AS s FROM orders GROUP BY region",
    "group":  ["east"],
    "column": "s",
    "op":     "<=",
    "value":  -20,
    "bounds": {"x": {"lo": -100, "hi": 100}}
  }

The answer is the minimal-magnitude satisfying binding, with a
differential certificate: the claimed delta is reproduced by a fresh
what-if over the substituted constants.`)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if len(data) == 0 || *historyPath == "" || *whatifPath == "" || *targetPath == "" {
		fs.Usage()
		os.Exit(2)
	}
	if err := runHowto(data, *historyPath, *whatifPath, *targetPath, *variant); err != nil {
		fmt.Fprintln(os.Stderr, "mahif howto:", err)
		os.Exit(1)
	}
}

// howtoTarget is the -target file: a howto.Target plus search bounds.
type howtoTarget struct {
	howto.Target
	Bounds map[string]howto.Range `json:"bounds,omitempty"`
}

func runHowto(data []string, historyPath, whatifPath, targetPath, variant string) error {
	engine, err := service.LoadEngine(data, historyPath)
	if err != nil {
		return err
	}
	mods, err := loadModifications(whatifPath)
	if err != nil {
		return err
	}
	raw, err := os.ReadFile(targetPath)
	if err != nil {
		return err
	}
	var target howtoTarget
	if err := json.Unmarshal(raw, &target); err != nil {
		return fmt.Errorf("%s: %w", targetPath, err)
	}
	opts := mahif.OptionsFor(mahif.Variant(variant))
	res, err := howto.Search(context.Background(), engine, mods, target.Target, howto.Options{
		Bounds: target.Bounds,
		Engine: &opts,
	})
	if err != nil {
		return err
	}
	out, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	if !res.Certificate.Certified {
		return fmt.Errorf("answer failed certification (claimed %v, reproduced %v)",
			res.Certificate.Claimed, res.Certificate.Reproduced)
	}
	return nil
}
