package main

import (
	"testing"

	"github.com/mahif/mahif"
)

const scenariosJSON = `[
  {"label": "fee60", "modifications": [
    {"op": "replace", "pos": 1, "statement": "UPDATE orders SET shippingfee = 0 WHERE price >= 60"}
  ]},
  {"label": "fee40-and-us", "modifications": [
    {"op": "replace", "pos": 1, "statement": "UPDATE orders SET shippingfee = 0 WHERE price >= 40"},
    {"op": "insert",  "pos": 2, "statement": "UPDATE orders SET shippingfee = 1 WHERE country = 'US'"}
  ]},
  {"label": "drop-third", "modifications": [
    {"op": "delete", "pos": 3}
  ]}
]`

func TestLoadScenarios(t *testing.T) {
	dir := t.TempDir()
	path := writeFile(t, dir, "scenarios.json", scenariosJSON)
	scenarios, err := loadScenarios(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) != 3 {
		t.Fatalf("scenarios = %d", len(scenarios))
	}
	if scenarios[0].Label != "fee60" || len(scenarios[0].Mods) != 1 {
		t.Errorf("first scenario = %+v", scenarios[0])
	}
	if r, ok := scenarios[0].Mods[0].(mahif.Replace); !ok || r.Pos != 0 {
		t.Errorf("first mod = %#v", scenarios[0].Mods[0])
	}
	if ins, ok := scenarios[1].Mods[1].(mahif.InsertStmt); !ok || ins.Pos != 1 {
		t.Errorf("insert mod = %#v", scenarios[1].Mods[1])
	}
	if del, ok := scenarios[2].Mods[0].(mahif.DeleteStmt); !ok || del.Pos != 2 {
		t.Errorf("delete mod = %#v", scenarios[2].Mods[0])
	}
}

func TestLoadScenariosErrors(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"syntax":      `[{"label": "x"`,
		"empty":       `[]`,
		"no-mods":     `[{"label": "x", "modifications": []}]`,
		"bad-op":      `[{"modifications": [{"op": "frob", "pos": 1, "statement": "UPDATE t SET a = 1"}]}]`,
		"zero-pos":    `[{"modifications": [{"op": "delete", "pos": 0}]}]`,
		"bad-sql":     `[{"modifications": [{"op": "replace", "pos": 1, "statement": "UPDATE SET"}]}]`,
		"delete-stmt": `[{"modifications": [{"op": "delete", "pos": 1, "statement": "UPDATE t SET a = 1"}]}]`,
	}
	for name, content := range cases {
		path := writeFile(t, dir, name+".json", content)
		if _, err := loadScenarios(path); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

// TestRunBatchEndToEnd drives the batch CLI path over the running
// example: the per-scenario deltas must match single-query runs.
func TestRunBatchEndToEnd(t *testing.T) {
	dir := t.TempDir()
	csv := writeFile(t, dir, "orders.csv", ordersCSV)
	hist := writeFile(t, dir, "history.sql", `
		UPDATE orders SET shippingfee = 0 WHERE price >= 50;
		UPDATE orders SET shippingfee = shippingfee + 5 WHERE country = 'UK' AND price <= 100;
		UPDATE orders SET shippingfee = shippingfee - 2 WHERE price <= 30 AND shippingfee >= 10;
	`)
	scenarios := writeFile(t, dir, "scenarios.json", scenariosJSON)

	for _, variant := range []string{"R", "R+PS+DS"} {
		for _, workers := range []int{0, 1, 2} {
			if err := runBatch([]string{"orders=" + csv}, hist, scenarios, variant, workers, true); err != nil {
				t.Errorf("variant %s workers %d: %v", variant, workers, err)
			}
		}
	}

	// A scenario with an out-of-range position must fail the run but
	// still evaluate its siblings (exit error, no panic).
	bad := writeFile(t, dir, "bad.json",
		`[{"label": "ok", "modifications": [{"op": "delete", "pos": 1}]},
		  {"label": "oob", "modifications": [{"op": "delete", "pos": 99}]}]`)
	if err := runBatch([]string{"orders=" + csv}, hist, bad, "R+PS+DS", 2, false); err == nil {
		t.Error("batch with failing scenario reported success")
	}
}
