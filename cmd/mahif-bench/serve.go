package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/mahif/mahif/internal/core"
	"github.com/mahif/mahif/internal/history"
	"github.com/mahif/mahif/internal/service"
	"github.com/mahif/mahif/internal/workload"
)

// serveOut is the output path of the serve experiment (flag -serveout).
var serveOut = "BENCH_serve.json"

// serveResult is one concurrency level of the load sweep.
type serveResult struct {
	Clients  int   `json:"clients"`
	Requests int   `json:"requests"`
	Errors   int   `json:"errors"`
	P50Us    int64 `json:"p50_us"`
	P95Us    int64 `json:"p95_us"`
	P99Us    int64 `json:"p99_us"`
	MaxUs    int64 `json:"max_us"`
	// ThroughputRps is completed requests per second of wall time.
	ThroughputRps float64 `json:"throughput_rps"`
}

// serveReport is the BENCH_serve.json document.
type serveReport struct {
	Description string        `json:"description"`
	Rows        int           `json:"rows"`
	Updates     int           `json:"updates"`
	Scenarios   int           `json:"distinct_scenarios"`
	Seed        int64         `json:"seed"`
	GoMaxProcs  int           `json:"gomaxprocs"`
	Results     []serveResult `json:"results"`
	// Session reports the cache effectiveness accumulated across the
	// whole sweep (the service answers everything through one session).
	Session struct {
		Calls          int   `json:"calls"`
		SnapshotHits   int   `json:"snapshot_hits"`
		SnapshotMisses int   `json:"snapshot_misses"`
		MemoHits       int64 `json:"memo_hits"`
		MemoMisses     int64 `json:"memo_misses"`
		QueryHits      int   `json:"query_hits"`
		QueryMisses    int   `json:"query_misses"`
	} `json:"session"`
}

// wireBody renders a scenario's modifications as a /v1/whatif request
// body (statement renderings round-trip through the SQL parser, which
// the sql package's own round-trip tests pin).
func wireBody(mods []history.Modification) []byte {
	req := service.WhatIfRequest{}
	for _, m := range mods {
		switch x := m.(type) {
		case history.Replace:
			req.Modifications = append(req.Modifications,
				service.Modification{Op: "replace", Pos: x.Pos + 1, Statement: x.Stmt.String()})
		case history.InsertStmt:
			req.Modifications = append(req.Modifications,
				service.Modification{Op: "insert", Pos: x.Pos + 1, Statement: x.Stmt.String()})
		case history.DeleteStmt:
			req.Modifications = append(req.Modifications,
				service.Modification{Op: "delete", Pos: x.Pos + 1})
		}
	}
	raw, err := json.Marshal(req)
	if err != nil {
		panic(err)
	}
	return raw
}

// serveExp benchmarks the HTTP service end to end: a mahifd handler
// over a real loopback listener, a family of related what-if scenarios
// as the request mix (the shape of one analyst iterating thresholds),
// and a sweep of client concurrency levels. Reports p50/p95/p99
// latency and throughput per level, plus the session-cache hit rates
// that the request mix achieved, to BENCH_serve.json.
func (h *harness) serveExp() {
	const updates = 50
	ds := workload.Taxi(h.rows, h.seed)
	w := h.gen(ds, workload.Config{Updates: updates})
	vdb, err := w.Load()
	if err != nil {
		panic(err)
	}
	engine := core.New(vdb)
	srv := service.New(engine, service.Options{Sessions: 1, Timeout: 30 * time.Second})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	specs := w.ScenarioFamily(32)
	bodies := make([][]byte, len(specs))
	for i, sp := range specs {
		bodies[i] = wireBody(sp.Mods)
	}

	report := &serveReport{
		Description: "mahifd /v1/whatif over loopback HTTP: latency percentiles by client concurrency, warm session caches (Taxi workload, threshold-sweep request family)",
		Rows:        h.rows,
		Updates:     updates,
		Scenarios:   len(specs),
		Seed:        h.seed,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
	}

	// Warm-up: one pass over the distinct scenarios, so the sweep
	// measures the steady state a long-lived service reaches.
	client := ts.Client()
	for _, b := range bodies {
		if _, err := doWhatIf(client, ts.URL, b); err != nil {
			panic(err)
		}
	}

	header("Serve: /v1/whatif latency — Taxi", "reqs", "errors", "p50", "p95", "p99", "req/s")
	perClient := 60
	for _, clients := range []int{1, 4, runtime.GOMAXPROCS(0) * 2} {
		total := clients * perClient
		lats := make([]time.Duration, total)
		errs := 0
		var mu sync.Mutex
		var wg sync.WaitGroup
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := 0; i < perClient; i++ {
					body := bodies[(c*perClient+i)%len(bodies)]
					t0 := time.Now()
					_, err := doWhatIf(client, ts.URL, body)
					lat := time.Since(t0)
					mu.Lock()
					lats[c*perClient+i] = lat
					if err != nil {
						errs++
					}
					mu.Unlock()
				}
			}(c)
		}
		wg.Wait()
		wall := time.Since(start)
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		pct := func(p float64) time.Duration { return lats[int(p*float64(len(lats)-1))] }
		res := serveResult{
			Clients:       clients,
			Requests:      total,
			Errors:        errs,
			P50Us:         pct(0.50).Microseconds(),
			P95Us:         pct(0.95).Microseconds(),
			P99Us:         pct(0.99).Microseconds(),
			MaxUs:         lats[len(lats)-1].Microseconds(),
			ThroughputRps: float64(total-errs) / wall.Seconds(),
		}
		report.Results = append(report.Results, res)
		fmt.Printf("%-10d %12d %12d %12s %12s %12s %12.0f\n",
			clients, total, errs, ms(pct(0.50)), ms(pct(0.95)), ms(pct(0.99)), res.ThroughputRps)
	}

	st := srv.SessionStats()[0]
	report.Session.Calls = st.Calls
	report.Session.SnapshotHits, report.Session.SnapshotMisses = st.SnapshotHits, st.SnapshotMisses
	report.Session.MemoHits, report.Session.MemoMisses = st.MemoHits, st.MemoMisses
	report.Session.QueryHits, report.Session.QueryMisses = st.QueryHits, st.QueryMisses

	raw, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		panic(err)
	}
	if err := os.WriteFile(serveOut, append(raw, '\n'), 0o644); err != nil {
		panic(err)
	}
	fmt.Printf("\nwrote %s (session: calls=%d snapshots %d/%d, memo %d/%d, queries %d/%d)\n",
		serveOut, st.Calls, st.SnapshotHits, st.SnapshotMisses,
		st.MemoHits, st.MemoMisses, st.QueryHits, st.QueryMisses)
}

// doWhatIf posts one what-if request and drains the response.
func doWhatIf(client *http.Client, base string, body []byte) (int, error) {
	resp, err := client.Post(base+"/v1/whatif", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return resp.StatusCode, err
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, fmt.Errorf("status %d: %s", resp.StatusCode, buf.String())
	}
	return resp.StatusCode, nil
}
