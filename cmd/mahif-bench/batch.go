package main

import (
	"fmt"
	"runtime"
	"time"

	"github.com/mahif/mahif/internal/core"
	"github.com/mahif/mahif/internal/workload"
)

// batch sweeps the batch what-if engine: a family of related scenarios
// answered (a) by the pre-batch sequential per-scenario WhatIf loop,
// (b) by WhatIfBatch with one worker (sharing only), and (c) by
// WhatIfBatch over growing worker pools (sharing + parallelism). One
// row per scenario count.
func (h *harness) batch() {
	ds := h.dataset(dsTaxiS)
	w := h.gen(ds, workload.Config{Updates: 50})
	vdb, err := w.Load()
	if err != nil {
		panic(err)
	}
	engine := core.New(vdb)
	opts := core.DefaultOptions()

	// Warm up (JIT-free, but page-in data and stabilize the allocator).
	if _, _, err := engine.WhatIf(w.Mods, opts); err != nil {
		panic(err)
	}

	workerGrid := []int{1, 2, 4}
	maxProcs := runtime.GOMAXPROCS(0)
	if maxProcs > 4 {
		workerGrid = append(workerGrid, maxProcs)
	}
	cols := []string{"seq-loop"}
	for _, wk := range workerGrid {
		cols = append(cols, fmt.Sprintf("batch-w%d", wk))
	}
	fmt.Printf("\n== Batch sweep: scenarios × workers — %s (U=50) ==\n", dsTaxiS)
	fmt.Printf("%-10s", "K")
	for _, c := range cols {
		fmt.Printf(" %12s", c)
	}
	fmt.Println(" (ms)")

	for _, k := range []int{4, 16, 64} {
		specs := w.ScenarioFamily(k)
		scenarios := make([]core.Scenario, len(specs))
		for i, s := range specs {
			scenarios[i] = core.Scenario{Label: s.Label, Mods: s.Mods}
		}

		fmt.Printf("%-10d", k)
		start := time.Now()
		for _, sc := range scenarios {
			if _, _, err := engine.WhatIf(sc.Mods, opts); err != nil {
				panic(err)
			}
		}
		fmt.Printf(" %12s", ms(time.Since(start)))

		for _, wk := range workerGrid {
			results, bs, err := engine.WhatIfBatch(scenarios, core.BatchOptions{Options: opts, Workers: wk})
			if err != nil {
				panic(err)
			}
			for _, r := range results {
				if r.Err != nil {
					panic(r.Err)
				}
			}
			fmt.Printf(" %12s", ms(bs.Total))
		}
		fmt.Println()
	}

	// Sharing ablation at a fixed scenario count: what do the shared
	// snapshot and the solver memo each buy, on top of parallelism?
	fmt.Printf("\n== Batch sharing ablation — %s (U=50, K=16, workers=%d) ==\n", dsTaxiS, maxProcs)
	specs := w.ScenarioFamily(16)
	scenarios := make([]core.Scenario, len(specs))
	for i, s := range specs {
		scenarios[i] = core.Scenario{Label: s.Label, Mods: s.Mods}
	}
	for _, cfg := range []struct {
		name string
		opts core.BatchOptions
	}{
		{"none", core.BatchOptions{Options: opts, NoSnapshotSharing: true, NoCompileMemo: true, NoQueryCache: true}},
		{"no-snapshot", core.BatchOptions{Options: opts, NoSnapshotSharing: true}},
		{"no-memo", core.BatchOptions{Options: opts, NoCompileMemo: true}},
		{"no-querycache", core.BatchOptions{Options: opts, NoQueryCache: true}},
		{"shared", core.BatchOptions{Options: opts}},
	} {
		_, bs, err := engine.WhatIfBatch(scenarios, cfg.opts)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-14s %12s   snapshots(hit/miss)=%d/%d memo(hit/miss)=%d/%d queries(hit/miss)=%d/%d\n",
			cfg.name, ms(bs.Total), bs.SnapshotHits, bs.SnapshotMisses,
			bs.MemoHits, bs.MemoMisses, bs.QueryHits, bs.QueryMisses)
	}
}
