package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"github.com/mahif/mahif/internal/history"
	"github.com/mahif/mahif/internal/persist"
	"github.com/mahif/mahif/internal/storage"
	"github.com/mahif/mahif/internal/workload"
)

// persistOut is the output path of the persist experiment (flag
// -persistout).
var persistOut = "BENCH_persist.json"

// appendResult is one cell of the append-throughput sweep.
type appendResult struct {
	BatchSize   int     `json:"batch_size"`
	Sync        bool    `json:"sync"`
	Indexed     bool    `json:"indexed"`
	Statements  int     `json:"statements"`
	Seconds     float64 `json:"seconds"`
	StmtsPerSec float64 `json:"stmts_per_sec"`
	WALBytes    int64   `json:"wal_bytes"`
	MBPerSec    float64 `json:"mb_per_sec"`
	// Concurrency is the number of goroutines appending at once (group
	// commit cells; omitted for the serial sweep). GroupCommits counts
	// fsyncs led, SyncsCoalesced the appends that rode another caller's
	// fsync instead of paying their own.
	Concurrency    int   `json:"concurrency,omitempty"`
	GroupCommits   int64 `json:"group_commits,omitempty"`
	SyncsCoalesced int64 `json:"syncs_coalesced,omitempty"`
}

// checkpointResult measures one snapshot checkpoint.
type checkpointResult struct {
	Version     int     `json:"version"`
	TotalTuples int     `json:"total_tuples"`
	Bytes       int64   `json:"bytes"`
	Seconds     float64 `json:"seconds"`
}

// recoveryResult measures one cold open.
type recoveryResult struct {
	Statements        int     `json:"statements"`
	CheckpointEvery   int     `json:"checkpoint_every"`
	RecoverySeconds   float64 `json:"recovery_seconds"`
	CheckpointVersion int     `json:"checkpoint_version"`
	Replayed          int     `json:"replayed_statements"`
}

// persistReport is the BENCH_persist.json document: the durability
// layer's perf baseline (append throughput, checkpoint cost, cold
// recovery time vs history length).
type persistReport struct {
	Description string             `json:"description"`
	Rows        int                `json:"rows_flag"`
	Seed        int64              `json:"seed"`
	GoMaxProcs  int                `json:"gomaxprocs"`
	Append      []appendResult     `json:"append"`
	Checkpoint  []checkpointResult `json:"checkpoint"`
	Recovery    []recoveryResult   `json:"recovery"`
}

// persistStatements generates a realistic n-statement history over the
// Taxi dataset (updates, inserts, deletes) plus its base database.
func (h *harness) persistStatements(n int) ([]history.Statement, *storage.Database) {
	ds := workload.Taxi(h.rows, h.seed)
	w := h.gen(ds, workload.Config{
		Updates: n, Mods: 1, DependentPct: 30, AffectedPct: 10,
		InsertPct: 10, DeletePct: 5,
	})
	return []history.Statement(w.History), ds.Database()
}

// persistExp measures the durable history store and writes
// BENCH_persist.json.
func (h *harness) persistExp() {
	report := &persistReport{
		Description: "internal/persist: WAL append throughput (batch × fsync), checkpoint cost, cold recovery vs history length and checkpoint cadence",
		Rows:        h.rows,
		Seed:        h.seed,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
	}
	tmp, err := os.MkdirTemp("", "mahif-bench-persist-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(tmp)
	ctx := context.Background()

	// Append throughput: WAL write + fsync + in-memory apply, which is
	// what a live POST /v1/history pays. One extra cell disables the
	// tip's maintained indexes — the ablation isolating how much of the
	// append rate the indexed incremental application contributes.
	appendN := 2000
	if h.quick {
		appendN = 200
	}
	stmts, base := h.persistStatements(appendN)
	type appendCfg struct {
		sync, indexed bool
		batch         int
	}
	var cfgs []appendCfg
	for _, sync := range []bool{true, false} {
		for _, batch := range []int{1, 16, 128} {
			cfgs = append(cfgs, appendCfg{sync: sync, indexed: true, batch: batch})
		}
	}
	cfgs = append(cfgs, appendCfg{sync: false, indexed: false, batch: 16})
	header("Persist: append throughput — Taxi",
		"batch", "sync", "indexed", "stmts", "sec", "stmts/s", "MB/s")
	for _, cfg := range cfgs {
		dir := filepath.Join(tmp, fmt.Sprintf("append-%d-%v-%v", cfg.batch, cfg.sync, cfg.indexed))
		store, err := persist.Create(dir, base, persist.Options{NoSync: !cfg.sync})
		if err != nil {
			panic(err)
		}
		store.Database().SetTipIndexing(cfg.indexed)
		start := time.Now()
		for i := 0; i < len(stmts); i += cfg.batch {
			end := min(i+cfg.batch, len(stmts))
			if _, err := store.Append(ctx, stmts[i:end]); err != nil {
				panic(err)
			}
		}
		sec := time.Since(start).Seconds()
		st := store.Stats()
		store.Close()
		res := appendResult{
			BatchSize:   cfg.batch,
			Sync:        cfg.sync,
			Indexed:     cfg.indexed,
			Statements:  len(stmts),
			Seconds:     sec,
			StmtsPerSec: float64(len(stmts)) / sec,
			WALBytes:    st.WALBytesWritten,
			MBPerSec:    float64(st.WALBytesWritten) / sec / (1 << 20),
		}
		report.Append = append(report.Append, res)
		fmt.Printf("%-10d %12v %12v %12d %12.2f %12.0f %12.2f\n",
			cfg.batch, cfg.sync, cfg.indexed, res.Statements, res.Seconds, res.StmtsPerSec, res.MBPerSec)
	}

	// Group commit: concurrent single-statement appenders share one
	// fsync. The fsync-per-statement cell above is the disk-bound floor;
	// these cells show concurrency recovering throughput without giving
	// up per-append durability, with the coalescing counters proving the
	// mechanism (appends ≫ fsyncs led).
	header("Persist: group commit (sync, batch=1) — Taxi",
		"workers", "stmts", "sec", "stmts/s", "led", "coalesced")
	for _, workers := range []int{1, 4, 16} {
		dir := filepath.Join(tmp, fmt.Sprintf("group-%d", workers))
		store, err := persist.Create(dir, base, persist.Options{})
		if err != nil {
			panic(err)
		}
		var wg sync.WaitGroup
		start := time.Now()
		for wkr := 0; wkr < workers; wkr++ {
			wg.Add(1)
			go func(wkr int) {
				defer wg.Done()
				for i := wkr; i < len(stmts); i += workers {
					if _, err := store.Append(ctx, stmts[i:i+1]); err != nil {
						panic(err)
					}
				}
			}(wkr)
		}
		wg.Wait()
		sec := time.Since(start).Seconds()
		st := store.Stats()
		store.Close()
		res := appendResult{
			BatchSize:      1,
			Sync:           true,
			Indexed:        true,
			Statements:     len(stmts),
			Seconds:        sec,
			StmtsPerSec:    float64(len(stmts)) / sec,
			WALBytes:       st.WALBytesWritten,
			MBPerSec:       float64(st.WALBytesWritten) / sec / (1 << 20),
			Concurrency:    workers,
			GroupCommits:   st.GroupCommits,
			SyncsCoalesced: st.SyncsCoalesced,
		}
		report.Append = append(report.Append, res)
		fmt.Printf("%-10d %12d %12.2f %12.0f %12d %12d\n",
			workers, res.Statements, res.Seconds, res.StmtsPerSec, res.GroupCommits, res.SyncsCoalesced)
	}

	// Checkpoint cost as the materialized state grows.
	header("Persist: checkpoint cost", "version", "tuples", "bytes", "sec")
	{
		dir := filepath.Join(tmp, "checkpoint")
		store, err := persist.Create(dir, base, persist.Options{NoSync: true})
		if err != nil {
			panic(err)
		}
		marks := []int{len(stmts) / 4, len(stmts) / 2, len(stmts)}
		next := 0
		for i, st := range stmts {
			if _, err := store.Append(ctx, []history.Statement{st}); err != nil {
				panic(err)
			}
			if next < len(marks) && i+1 == marks[next] {
				info, err := store.Checkpoint()
				if err != nil {
					panic(err)
				}
				_, db := store.Database().TipSnapshot()
				res := checkpointResult{
					Version:     info.Version,
					TotalTuples: db.TotalTuples(),
					Bytes:       info.Bytes,
					Seconds:     info.Duration.Seconds(),
				}
				report.Checkpoint = append(report.Checkpoint, res)
				fmt.Printf("%-10d %12d %12d %12.3f\n", res.Version, res.TotalTuples, res.Bytes, res.Seconds)
				next++
			}
		}
		store.Close()
	}

	// Cold recovery: open time vs history length, with and without
	// checkpoints (0 = replay everything from the base).
	header("Persist: cold recovery", "stmts", "ckpt-every", "sec", "replayed")
	recoverNs := []int{500, 2000, 8000}
	every := []int{0, 1000}
	if h.quick {
		recoverNs = []int{200}
		every = []int{0, 100}
	}
	for _, n := range recoverNs {
		stmts, base := h.persistStatements(n)
		for _, every := range every {
			dir := filepath.Join(tmp, fmt.Sprintf("recover-%d-%d", n, every))
			store, err := persist.Create(dir, base, persist.Options{NoSync: true, CheckpointEvery: every})
			if err != nil {
				panic(err)
			}
			for i := 0; i < len(stmts); i += 256 {
				if _, err := store.Append(ctx, stmts[i:min(i+256, len(stmts))]); err != nil {
					panic(err)
				}
			}
			store.Close()

			start := time.Now()
			re, err := persist.Open(dir, persist.Options{})
			if err != nil {
				panic(err)
			}
			sec := time.Since(start).Seconds()
			ri := re.RecoveryInfo()
			re.Close()
			res := recoveryResult{
				Statements:        n,
				CheckpointEvery:   every,
				RecoverySeconds:   sec,
				CheckpointVersion: ri.CheckpointVersion,
				Replayed:          ri.ReplayedStatements,
			}
			report.Recovery = append(report.Recovery, res)
			fmt.Printf("%-10d %12d %12.3f %12d\n", n, every, sec, res.Replayed)
		}
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		panic(err)
	}
	if err := os.WriteFile(persistOut, append(out, '\n'), 0o644); err != nil {
		panic(err)
	}
	fmt.Printf("\nwrote %s\n", persistOut)
}
