package main

import (
	"fmt"
	"time"

	"github.com/mahif/mahif/internal/core"
	"github.com/mahif/mahif/internal/symbolic"
	"github.com/mahif/mahif/internal/workload"
)

// harness holds the sweep configuration and provides measurement
// helpers shared by all experiments.
type harness struct {
	rows    int
	large   int
	seed    int64
	updates []int
	quick   bool // smoke-run scale: shrink histories and sweeps
}

// dataset ids used across the sweeps, mirroring §13.1.
const (
	dsTaxiS = "Taxi(S)"
	dsTaxiL = "Taxi(L)"
	dsTPCC  = "TPCC"
	dsYCSB  = "YCSB"
)

func (h *harness) dataset(id string) *workload.Dataset {
	switch id {
	case dsTaxiS:
		return workload.Taxi(h.rows, h.seed)
	case dsTaxiL:
		return workload.Taxi(h.rows*h.large, h.seed)
	case dsTPCC:
		return workload.TPCC(h.rows, h.seed)
	case dsYCSB:
		return workload.YCSB(h.rows, h.seed)
	}
	panic("unknown dataset " + id)
}

// measurement is one answered query with full statistics.
type measurement struct {
	total time.Duration
	stats *core.Stats
	naive *core.NaiveStats
}

// run loads the workload and answers it once under the variant.
func (h *harness) run(w *workload.Workload, v core.Variant) measurement {
	vdb, err := w.Load()
	if err != nil {
		panic(err)
	}
	engine := core.New(vdb)
	if v == core.VariantNaive {
		start := time.Now()
		_, stats, err := engine.Naive(w.Mods)
		if err != nil {
			panic(err)
		}
		return measurement{total: time.Since(start), naive: stats}
	}
	opts := core.OptionsFor(v)
	start := time.Now()
	_, stats, err := engine.WhatIf(w.Mods, opts)
	if err != nil {
		panic(err)
	}
	return measurement{total: time.Since(start), stats: stats}
}

// gen builds a workload with defaults matching §13.2 (T10, D10, one
// modification of the first update) unless overridden.
func (h *harness) gen(ds *workload.Dataset, cfg workload.Config) *workload.Workload {
	if cfg.DependentPct == 0 {
		cfg.DependentPct = 10
	}
	if cfg.AffectedPct == 0 {
		cfg.AffectedPct = 10
	}
	if cfg.Seed == 0 {
		cfg.Seed = h.seed + int64(cfg.Updates)
	}
	w, err := workload.Generate(ds, cfg)
	if err != nil {
		panic(err)
	}
	return w
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%8.1f", float64(d.Microseconds())/1000)
}

func header(title string, cols ...string) {
	fmt.Printf("\n== %s ==\n", title)
	fmt.Printf("%-10s", "U")
	for _, c := range cols {
		fmt.Printf(" %12s", c)
	}
	fmt.Println(" (ms)")
}

// sweep runs the U-sweep for one dataset over the given variants and
// prints one row per history length.
func (h *harness) sweep(title string, dsID string, cfg workload.Config, variants ...core.Variant) {
	cols := make([]string, len(variants))
	for i, v := range variants {
		cols[i] = string(v)
	}
	header(fmt.Sprintf("%s — %s", title, dsID), cols...)
	ds := h.dataset(dsID)
	for _, u := range h.updates {
		c := cfg
		c.Updates = u
		w := h.gen(ds, c)
		fmt.Printf("%-10d", u)
		for _, v := range variants {
			m := h.run(w, v)
			fmt.Printf(" %12s", ms(m.total))
		}
		fmt.Println()
	}
}

// Experiments ----------------------------------------------------------------

// fig14: naive vs the fully optimized Mahif across datasets.
func (h *harness) fig14() {
	for _, ds := range []string{dsTaxiS, dsTaxiL, dsTPCC, dsYCSB} {
		h.sweep("Fig 14: Naive vs Mahif", ds, workload.Config{},
			core.VariantNaive, core.VariantRFull)
	}
}

// fig15: cost breakdown of the naive algorithm.
func (h *harness) fig15() {
	for _, dsID := range []string{dsTaxiS, dsTaxiL} {
		header("Fig 15: Naive breakdown — "+dsID, "Creation", "Exe", "Delta")
		ds := h.dataset(dsID)
		for _, u := range h.updates {
			w := h.gen(ds, workload.Config{Updates: u})
			m := h.run(w, core.VariantNaive)
			fmt.Printf("%-10d %12s %12s %12s\n", u,
				ms(m.naive.Creation), ms(m.naive.Execute), ms(m.naive.Delta))
		}
	}
}

// fig16: cost breakdown of Mahif (PS vs execution) against plain R.
func (h *harness) fig16() {
	for _, dsID := range []string{dsTaxiS, dsTaxiL} {
		header("Fig 16: Mahif breakdown — "+dsID, "PS", "Exe", "R+PS+DS", "R")
		ds := h.dataset(dsID)
		for _, u := range h.updates {
			w := h.gen(ds, workload.Config{Updates: u})
			full := h.run(w, core.VariantRFull)
			r := h.run(w, core.VariantR)
			exe := full.total - full.stats.ProgramSlicing
			fmt.Printf("%-10d %12s %12s %12s %12s\n", u,
				ms(full.stats.ProgramSlicing), ms(exe), ms(full.total), ms(r.total))
		}
	}
}

// fig17: multiple modifications.
func (h *harness) fig17() {
	header("Fig 17: multiple modifications — "+dsTaxiS+" (U=100)",
		"R", "R+PS", "R+DS", "R+PS+DS")
	ds := h.dataset(dsTaxiS)
	for _, m := range []int{1, 5, 10, 20} {
		w := h.gen(ds, workload.Config{Updates: 100, Mods: m})
		fmt.Printf("%-10d", m)
		for _, v := range []core.Variant{core.VariantR, core.VariantRPS, core.VariantRDS, core.VariantRFull} {
			fmt.Printf(" %12s", ms(h.run(w, v).total))
		}
		fmt.Println()
	}
}

// fig18: reenactment alone vs fully optimized.
func (h *harness) fig18() {
	for _, ds := range []string{dsTaxiS, dsTaxiL, dsTPCC, dsYCSB} {
		h.sweep("Fig 18: R vs R+PS+DS", ds, workload.Config{},
			core.VariantR, core.VariantRFull)
	}
}

// fig19: varying the percentage of dependent updates.
func (h *harness) fig19() {
	header("Fig 19: dependent updates — "+dsTaxiS+" (U=100, T10)", "R+PS", "R+PS+DS")
	ds := h.dataset(dsTaxiS)
	for _, d := range []int{1, 10, 25, 50, 75, 100} {
		w := h.gen(ds, workload.Config{Updates: 100, DependentPct: d})
		fmt.Printf("%-10d %12s %12s\n", d,
			ms(h.run(w, core.VariantRPS).total), ms(h.run(w, core.VariantRFull).total))
	}
}

// fig20: varying the fraction of affected data.
func (h *harness) fig20() {
	header("Fig 20: affected data — "+dsTaxiS+" (U=100, D1)",
		"R", "R+PS", "R+DS", "R+PS+DS")
	ds := h.dataset(dsTaxiS)
	for _, t := range []float64{3, 12, 38, 68, 80} {
		w := h.gen(ds, workload.Config{Updates: 100, DependentPct: 1, AffectedPct: t})
		fmt.Printf("%-10.0f", t)
		for _, v := range []core.Variant{core.VariantR, core.VariantRPS, core.VariantRDS, core.VariantRFull} {
			fmt.Printf(" %12s", ms(h.run(w, v).total))
		}
		fmt.Println()
	}
}

// figDatasets implements Figs. 21–23: the optimization variants across
// all datasets at one affected-data setting.
func (h *harness) figDatasets(fig string, t float64) {
	for _, ds := range []string{dsTaxiS, dsTaxiL, dsTPCC, dsYCSB} {
		h.sweep(fig, ds, workload.Config{AffectedPct: t},
			core.VariantRPS, core.VariantRDS, core.VariantRFull)
	}
}

func (h *harness) fig21() { h.figDatasets("Fig 21: datasets at T0", 0.5) }
func (h *harness) fig22() { h.figDatasets("Fig 22: datasets at T10", 10) }
func (h *harness) fig23() { h.figDatasets("Fig 23: datasets at T25", 25) }

// fig24: insert-heavy workloads.
func (h *harness) fig24() {
	for _, ds := range []string{dsTaxiS, dsTaxiL} {
		h.sweep("Fig 24: inserts I10 T10", ds, workload.Config{InsertPct: 10},
			core.VariantRPS, core.VariantRDS, core.VariantRFull)
	}
}

// fig25: mixed workloads.
func (h *harness) fig25() {
	for _, ds := range []string{dsTaxiS, dsTaxiL} {
		h.sweep("Fig 25: mixed I10 X10 T10", ds,
			workload.Config{InsertPct: 10, DeletePct: 10},
			core.VariantRPS, core.VariantRDS, core.VariantRFull)
	}
}

// ablations: design choices not in the paper's figures.
func (h *harness) ablations() {
	ds := h.dataset(dsTaxiS)

	header("Ablation: compression groups (U=50, D10 T10)", "groups=1", "groups=2", "groups=4", "groups=8")
	w := h.gen(ds, workload.Config{Updates: 50})
	fmt.Printf("%-10d", 50)
	for _, g := range []int{1, 2, 4, 8} {
		vdb, err := w.Load()
		if err != nil {
			panic(err)
		}
		engine := core.New(vdb)
		opts := core.DefaultOptions()
		opts.Compress = symbolic.CompressOptions{Groups: g}
		start := time.Now()
		if _, _, err := engine.WhatIf(w.Mods, opts); err != nil {
			panic(err)
		}
		fmt.Printf(" %12s", ms(time.Since(start)))
	}
	fmt.Println()

	header("Ablation: insert split on/off (U=50, I20)", "split", "no-split")
	w = h.gen(ds, workload.Config{Updates: 50, InsertPct: 20})
	for _, split := range []bool{true, false} {
		vdb, err := w.Load()
		if err != nil {
			panic(err)
		}
		engine := core.New(vdb)
		opts := core.OptionsFor(core.VariantRDS)
		opts.InsertSplit = split
		start := time.Now()
		if _, _, err := engine.WhatIf(w.Mods, opts); err != nil {
			panic(err)
		}
		if split {
			fmt.Printf("%-10d %12s", 50, ms(time.Since(start)))
		} else {
			fmt.Printf(" %12s\n", ms(time.Since(start)))
		}
	}

	header("Ablation: greedy vs dependency slicing (U=50, D10)", "greedy", "dependency")
	w = h.gen(ds, workload.Config{Updates: 50})
	fmt.Printf("%-10d", 50)
	for _, dep := range []bool{false, true} {
		vdb, err := w.Load()
		if err != nil {
			panic(err)
		}
		engine := core.New(vdb)
		opts := core.OptionsFor(core.VariantRPS)
		opts.UseDependency = dep
		start := time.Now()
		if _, _, err := engine.WhatIf(w.Mods, opts); err != nil {
			panic(err)
		}
		fmt.Printf(" %12s", ms(time.Since(start)))
	}
	fmt.Println()
}
