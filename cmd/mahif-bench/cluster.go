package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/mahif/mahif/internal/core"
	"github.com/mahif/mahif/internal/history"
	"github.com/mahif/mahif/internal/persist"
	"github.com/mahif/mahif/internal/replica"
	"github.com/mahif/mahif/internal/service"
	"github.com/mahif/mahif/internal/workload"
)

// clusterOut is the output path of the cluster experiment (flag
// -clusterout).
var clusterOut = "BENCH_cluster.json"

// clusterSweep is the load sweep at one replica count.
type clusterSweep struct {
	// Replicas behind the router; 0 means reads go straight to the
	// leader (the single-node baseline).
	Replicas int           `json:"replicas"`
	Results  []serveResult `json:"results"`
}

// clusterReport is the BENCH_cluster.json document.
type clusterReport struct {
	Description string `json:"description"`
	Rows        int    `json:"rows"`
	Updates     int    `json:"updates"`
	Scenarios   int    `json:"distinct_scenarios"`
	Seed        int64  `json:"seed"`
	GoMaxProcs  int    `json:"gomaxprocs"`
	HostCPUs    int    `json:"host_cpus"`
	// Note records the measurement caveat: every node shares this
	// host's cores, so routed throughput is bounded by HostCPUs — the
	// replica counts only pay off on cores the host actually has.
	Note        string         `json:"note"`
	Sweeps      []clusterSweep `json:"sweeps"`
	KillRestart struct {
		// AppendedWhileDown is how far the history advanced while one
		// replica was killed.
		AppendedWhileDown int `json:"appended_while_down"`
		// CaughtUpVersion is the restarted replica's version after
		// re-bootstrap + streaming (== the leader's).
		CaughtUpVersion int `json:"caught_up_version"`
		// Identical is true when leader and every replica returned
		// byte-identical /v1/whatif bodies after the catch-up.
		Identical bool `json:"identical_responses"`
	} `json:"kill_restart"`
}

// clusterNode is one replica: its follower, serving frontend, and the
// cancel that kills it.
type clusterNode struct {
	rep    *replica.Replica
	ts     *httptest.Server
	cancel context.CancelFunc
}

func startReplica(leaderURL string) (*clusterNode, error) {
	ctx, cancel := context.WithCancel(context.Background())
	rep, err := replica.Bootstrap(ctx, replica.Options{LeaderURL: leaderURL})
	if err != nil {
		cancel()
		return nil, err
	}
	go rep.Run(ctx)
	srv := service.New(rep.Engine(), service.Options{
		Sessions: 1, Timeout: 30 * time.Second,
		Role: "replica", ReadOnly: true, Replication: rep,
	})
	return &clusterNode{rep: rep, ts: httptest.NewServer(srv.Handler()), cancel: cancel}, nil
}

func (n *clusterNode) stop() {
	n.cancel()
	n.ts.CloseClientConnections()
	n.ts.Close()
}

func waitVersion(engine *core.Engine, v int) {
	deadline := time.Now().Add(30 * time.Second)
	for engine.Version() < v {
		if time.Now().After(deadline) {
			panic(fmt.Sprintf("cluster: replica stuck at version %d, want %d", engine.Version(), v))
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// clusterExp benchmarks the replicated topology end to end: a durable
// leader, read replicas following its WAL stream, and the router
// spreading a what-if load over them — all real loopback HTTP. Sweeps
// client concurrency at replicas=0 (the single-node baseline) and
// replicas=3, then kills one replica, advances the history, restarts
// it, and checks the restarted follower catches up and answers
// byte-identically to the leader. Reports to BENCH_cluster.json.
func (h *harness) clusterExp() {
	const updates = 50
	ds := workload.Taxi(h.rows, h.seed)
	w := h.gen(ds, workload.Config{Updates: updates})

	dir, err := os.MkdirTemp("", "mahif-cluster-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	store, err := persist.Create(dir, ds.Database(), persist.Options{
		NoSync: true, CheckpointEvery: updates / 2,
	})
	if err != nil {
		panic(err)
	}
	defer store.Close()
	engine := core.NewDurable(store)
	if _, err := engine.AppendCtx(context.Background(), []history.Statement(w.History)); err != nil {
		panic(err)
	}
	leaderSrv := service.New(engine, service.Options{Sessions: 1, Timeout: 30 * time.Second, Store: store, Role: "leader"})
	leaderTS := httptest.NewServer(leaderSrv.Handler())
	defer leaderTS.Close()

	specs := w.ScenarioFamily(32)
	bodies := make([][]byte, len(specs))
	for i, sp := range specs {
		bodies[i] = wireBody(sp.Mods)
	}

	report := &clusterReport{
		Description: "replicated topology over loopback HTTP: /v1/whatif throughput through the router by replica count, plus kill/restart catch-up (Taxi workload, threshold-sweep request family)",
		Rows:        h.rows,
		Updates:     updates,
		Scenarios:   len(specs),
		Seed:        h.seed,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		HostCPUs:    runtime.NumCPU(),
		Note:        "all nodes share one host: aggregate routed throughput is CPU-bound at host_cpus, so replica scaling shows up only when the host has idle cores",
	}

	perClient := 40
	levels := []int{1, 4, 8}
	if h.quick {
		perClient = 10
		levels = []int{1, 4}
	}

	// Baseline: replicas=0, reads straight at the leader (matches the
	// serve experiment's shape).
	warm := func(url string) {
		for _, b := range bodies {
			if _, err := doWhatIf(leaderTS.Client(), url, b); err != nil {
				panic(err)
			}
		}
	}
	warm(leaderTS.URL)
	header("Cluster: baseline (replicas=0, leader only)", "reqs", "errors", "p50", "p95", "p99", "req/s")
	report.Sweeps = append(report.Sweeps, clusterSweep{Replicas: 0, Results: h.clusterSweepAt(leaderTS.URL, bodies, levels, perClient)})

	// Replicated: 3 followers behind the router.
	const replicas = 3
	nodes := make([]*clusterNode, 0, replicas)
	backends := make([]string, 0, replicas)
	for i := 0; i < replicas; i++ {
		n, err := startReplica(leaderTS.URL)
		if err != nil {
			panic(err)
		}
		defer n.stop()
		nodes = append(nodes, n)
		backends = append(backends, n.ts.URL)
	}
	for _, n := range nodes {
		waitVersion(n.rep.Engine(), engine.Version())
	}
	router, err := replica.NewRouter(replica.RouterOptions{
		LeaderURL: leaderTS.URL, Backends: backends, HealthEvery: 50 * time.Millisecond,
	})
	if err != nil {
		panic(err)
	}
	rctx, rcancel := context.WithCancel(context.Background())
	defer rcancel()
	go router.Run(rctx)
	routerTS := httptest.NewServer(router.Handler())
	defer routerTS.Close()
	time.Sleep(200 * time.Millisecond) // let the health poll see everyone
	warm(routerTS.URL)
	header(fmt.Sprintf("Cluster: routed (replicas=%d)", replicas), "reqs", "errors", "p50", "p95", "p99", "req/s")
	report.Sweeps = append(report.Sweeps, clusterSweep{Replicas: replicas, Results: h.clusterSweepAt(routerTS.URL, bodies, levels, perClient)})

	// Kill one replica, advance the history, restart it, and require
	// catch-up plus byte-identical answers everywhere.
	nodes[0].stop()
	nodes = nodes[1:]
	extra := w.History[:5]
	if _, err := engine.AppendCtx(context.Background(), []history.Statement(extra)); err != nil {
		panic(err)
	}
	report.KillRestart.AppendedWhileDown = len(extra)
	restarted, err := startReplica(leaderTS.URL)
	if err != nil {
		panic(err)
	}
	defer restarted.stop()
	nodes = append(nodes, restarted)
	tip := engine.Version()
	for _, n := range nodes {
		waitVersion(n.rep.Engine(), tip)
	}
	report.KillRestart.CaughtUpVersion = restarted.rep.Engine().Version()

	report.KillRestart.Identical = true
	for _, b := range bodies[:4] {
		bound := withMinVersion(b, tip)
		want, err := readWhatIf(leaderTS.URL, bound)
		if err != nil {
			panic(err)
		}
		for _, n := range nodes {
			got, err := readWhatIf(n.ts.URL, bound)
			if err != nil {
				panic(err)
			}
			if !bytes.Equal(want, got) {
				report.KillRestart.Identical = false
			}
		}
	}
	fmt.Printf("kill/restart: appended %d while down, restarted replica caught up to %d, identical=%v\n",
		report.KillRestart.AppendedWhileDown, report.KillRestart.CaughtUpVersion, report.KillRestart.Identical)

	raw, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		panic(err)
	}
	if err := os.WriteFile(clusterOut, append(raw, '\n'), 0o644); err != nil {
		panic(err)
	}
	fmt.Printf("\nwrote %s\n", clusterOut)
}

// clusterSweepAt runs the concurrency sweep against one base URL.
func (h *harness) clusterSweepAt(url string, bodies [][]byte, levels []int, perClient int) []serveResult {
	client := &http.Client{Timeout: 60 * time.Second}
	var out []serveResult
	for _, clients := range levels {
		total := clients * perClient
		lats := make([]time.Duration, total)
		errs := 0
		var mu sync.Mutex
		var wg sync.WaitGroup
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := 0; i < perClient; i++ {
					body := bodies[(c*perClient+i)%len(bodies)]
					t0 := time.Now()
					_, err := doWhatIf(client, url, body)
					lat := time.Since(t0)
					mu.Lock()
					lats[c*perClient+i] = lat
					if err != nil {
						errs++
					}
					mu.Unlock()
				}
			}(c)
		}
		wg.Wait()
		wall := time.Since(start)
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		pct := func(p float64) time.Duration { return lats[int(p*float64(len(lats)-1))] }
		res := serveResult{
			Clients:       clients,
			Requests:      total,
			Errors:        errs,
			P50Us:         pct(0.50).Microseconds(),
			P95Us:         pct(0.95).Microseconds(),
			P99Us:         pct(0.99).Microseconds(),
			MaxUs:         lats[len(lats)-1].Microseconds(),
			ThroughputRps: float64(total-errs) / wall.Seconds(),
		}
		out = append(out, res)
		fmt.Printf("%-10d %12d %12d %12s %12s %12s %12.0f\n",
			clients, total, errs, ms(pct(0.50)), ms(pct(0.95)), ms(pct(0.99)), res.ThroughputRps)
	}
	return out
}

// withMinVersion stamps a read-your-writes bound onto a rendered
// /v1/whatif body.
func withMinVersion(body []byte, v int) []byte {
	var req service.WhatIfRequest
	if err := json.Unmarshal(body, &req); err != nil {
		panic(err)
	}
	req.MinVersion = v
	out, err := json.Marshal(req)
	if err != nil {
		panic(err)
	}
	return out
}

// readWhatIf posts one what-if request and returns the response body.
func readWhatIf(base string, body []byte) ([]byte, error) {
	resp, err := http.Post(base+"/v1/whatif", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, buf.String())
	}
	return buf.Bytes(), nil
}
