package main

import (
	"testing"

	"github.com/mahif/mahif/internal/core"
	"github.com/mahif/mahif/internal/workload"
)

func TestParseInts(t *testing.T) {
	got, err := parseInts("10, 20,50")
	if err != nil || len(got) != 3 || got[0] != 10 || got[2] != 50 {
		t.Errorf("parseInts = %v, %v", got, err)
	}
	if _, err := parseInts("10,x"); err == nil {
		t.Error("bad entry accepted")
	}
}

func TestHarnessDatasets(t *testing.T) {
	h := &harness{rows: 100, large: 2, seed: 1, updates: []int{5}}
	for _, id := range []string{dsTaxiS, dsTaxiL, dsTPCC, dsYCSB} {
		ds := h.dataset(id)
		want := 100
		if id == dsTaxiL {
			want = 200
		}
		if ds.Rel.Len() != want {
			t.Errorf("%s: %d rows, want %d", id, ds.Rel.Len(), want)
		}
	}
}

func TestHarnessRunVariants(t *testing.T) {
	h := &harness{rows: 300, large: 2, seed: 1, updates: []int{5}}
	ds := h.dataset(dsTPCC)
	w := h.gen(ds, workload.Config{Updates: 5})
	for _, v := range []core.Variant{core.VariantNaive, core.VariantR, core.VariantRFull} {
		m := h.run(w, v)
		if m.total <= 0 {
			t.Errorf("%s: non-positive runtime", v)
		}
		if v == core.VariantNaive && m.naive == nil {
			t.Errorf("naive stats missing")
		}
		if v != core.VariantNaive && m.stats == nil {
			t.Errorf("%s stats missing", v)
		}
	}
}

// TestExperimentsSmoke runs every experiment at tiny scale to ensure
// none of them panics or degenerates.
func TestExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test is slow")
	}
	h := &harness{rows: 400, large: 2, seed: 1, updates: []int{5}}
	for name, run := range map[string]func(){
		"fig14": h.fig14, "fig15": h.fig15, "fig16": h.fig16,
		"fig18": h.fig18, "fig24": h.fig24, "fig25": h.fig25,
	} {
		t.Run(name, func(t *testing.T) { run() })
	}
}
