package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"github.com/mahif/mahif/internal/core"
	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/history"
	"github.com/mahif/mahif/internal/howto"
	"github.com/mahif/mahif/internal/sql"
	"github.com/mahif/mahif/internal/types"
	"github.com/mahif/mahif/internal/workload"
)

// howtoOut is the output path of the howto experiment (flag -howtoout).
var howtoOut = "BENCH_howto.json"

// howtoResult is one cell of the how-to sweep.
type howtoResult struct {
	Shape   string `json:"shape"`
	Updates int    `json:"updates"`
	Rows    int    `json:"rows"`
	// Target restates the cell's condition over the SUM(payload) delta.
	TargetOp    string  `json:"target_op"`
	TargetValue float64 `json:"target_value"`
	// Method is the search path taken: "milp" (linear response) or
	// "grid" (bounded sweep + bisection).
	Method string `json:"method"`
	// Evals counts template evaluations the search spent.
	Evals int `json:"evals"`
	// Binding is the answer; Magnitude its Σ|x|; Delta the achieved
	// target-cell value.
	Binding   map[string]types.Value `json:"binding"`
	Magnitude float64                `json:"magnitude"`
	Delta     types.Value            `json:"delta"`
	// Certified reports the differential certificate: the claimed delta
	// was reproduced by a fresh what-if at the answer binding and the
	// target condition holds on it. Every row must say true.
	Certified bool    `json:"certified"`
	SearchMs  float64 `json:"search_ms"`
}

// howtoReport is the BENCH_howto.json document.
type howtoReport struct {
	Description string        `json:"description"`
	Rows        int           `json:"rows_flag"`
	Seed        int64         `json:"seed"`
	Results     []howtoResult `json:"results"`
}

// howtoExp sweeps how-to searches over the Taxi workload, one cell per
// (shape, history length):
//
//   - set-slot: the scenario writes payload + $v under the modified
//     update's concrete condition, so the SUM(payload) delta responds
//     linearly to $v and the search solves one MILP.
//   - cond-slot: the scenario's threshold is the slot (sel >= $cut), so
//     the delta is a data-dependent step function of $cut and the
//     search falls back to the grid+bisection path.
//
// Each cell's target is derived from a probe at the middle of the
// search box (so it is reachable by construction at every scale), and
// every answer must carry a passing differential certificate — the CI
// smoke run gates on certified:true.
func (h *harness) howtoExp() {
	rows := h.rows / 40
	if rows < 200 {
		rows = 200
	}
	type cell struct {
		shape   string
		updates int
	}
	cells := []cell{
		{"set-slot", 50}, {"set-slot", 100}, {"set-slot", 200},
		{"cond-slot", 50}, {"cond-slot", 100},
	}
	if h.quick {
		rows = 400
		cells = []cell{{"set-slot", 10}, {"cond-slot", 10}}
	}
	report := &howtoReport{
		Description: "How-to search: minimal-magnitude scenario parameters achieving a target SUM(payload) delta, MILP on linear responses and grid+bisection otherwise, every answer re-proven by a fresh what-if (certified)",
		Rows:        rows,
		Seed:        h.seed,
	}

	header(fmt.Sprintf("Howto: target search over Taxi rows=%d", rows),
		"shape", "method", "evals", "magnitude", "certified", "search")
	ds := workload.Taxi(rows, h.seed)
	for _, c := range cells {
		w := h.gen(ds, workload.Config{Updates: c.updates, DependentPct: 25})
		vdb, err := w.Load()
		if err != nil {
			panic(err)
		}
		engine := core.New(vdb)

		base := w.Mods[0].(history.Replace)
		upd := base.Stmt.(*history.Update)
		payload := w.Dataset.Payload[0]
		var mods []history.Modification
		var param string
		var bounds howto.Range
		switch c.shape {
		case "set-slot":
			param, bounds = "v", howto.Range{Lo: 0, Hi: 100}
			mods = []history.Modification{history.Replace{Pos: base.Pos, Stmt: &history.Update{
				Rel: upd.Rel,
				Set: []history.SetClause{{
					Col: payload,
					E:   expr.Add(expr.Column(payload), expr.Parameter(param)),
				}},
				Where: upd.Where,
			}}}
		case "cond-slot":
			param, bounds = "cut", howto.Range{Lo: 0, Hi: workload.SelRange}
			mods = []history.Modification{history.Replace{Pos: base.Pos, Stmt: &history.Update{
				Rel:   upd.Rel,
				Set:   upd.Set,
				Where: expr.Ge(expr.Column(w.Dataset.SelAttr), expr.Parameter(param)),
			}}}
		}

		// Derive a reachable target: probe the delta at the middle of
		// the search box and aim the condition there.
		src := fmt.Sprintf("SELECT SUM(%s) AS s FROM %s", payload, upd.Rel)
		q, err := sql.ParseQuery(src)
		if err != nil {
			panic(err)
		}
		aq, err := core.NewAggregateQuery(src, q)
		if err != nil {
			panic(err)
		}
		tpl, err := engine.CompileTemplate(mods, core.DefaultOptions())
		if err != nil {
			panic(err)
		}
		mid := (bounds.Lo + bounds.Hi) / 2
		_, probe, err := tpl.EvalAggregates(
			map[string]types.Value{param: types.Float(mid)}, []core.AggregateQuery{aq})
		if err != nil {
			panic(err)
		}
		fmid := probe[0].Rows[0].Delta[0].AsFloat()

		start := time.Now()
		res, err := howto.Search(context.Background(), engine, mods, howto.Target{
			Query:  src,
			Column: "s",
			Op:     "==",
			Value:  fmid,
		}, howto.Options{Bounds: map[string]howto.Range{param: bounds}})
		if err != nil {
			panic(fmt.Sprintf("%s U=%d: %v", c.shape, c.updates, err))
		}
		searchT := time.Since(start)
		if !res.Certificate.Certified {
			panic(fmt.Sprintf("%s U=%d: answer failed certification: %+v",
				c.shape, c.updates, res.Certificate))
		}

		report.Results = append(report.Results, howtoResult{
			Shape: c.shape, Updates: c.updates, Rows: rows,
			TargetOp: "==", TargetValue: fmid,
			Method: res.Method, Evals: res.Evals,
			Binding: res.Binding, Magnitude: res.Magnitude, Delta: res.Delta,
			Certified: res.Certificate.Certified,
			SearchMs:  float64(searchT.Microseconds()) / 1000,
		})
		fmt.Printf("%-10d %12s %12s %12d %12.2f %11t %12s\n",
			c.updates, c.shape, res.Method, res.Evals, res.Magnitude,
			res.Certificate.Certified, ms(searchT))
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		panic(err)
	}
	if err := os.WriteFile(howtoOut, append(out, '\n'), 0o644); err != nil {
		panic(err)
	}
	fmt.Printf("\nwrote %s\n", howtoOut)
}
