// Command mahif-bench regenerates the tables and figures of the
// paper's evaluation (§13) over the synthetic workload generators. Row
// counts are scaled for a single machine (flag -rows; the "large"
// dataset is -large times bigger), so absolute numbers differ from the
// paper, but the comparisons — who wins, by what factor, where the
// crossovers fall — are the reproduction target (see EXPERIMENTS.md).
//
// Usage:
//
//	mahif-bench -exp fig14        # one experiment
//	mahif-bench -exp all          # everything (takes a while)
//	mahif-bench -exp fig22 -rows 50000 -updates 10,20,50
//	mahif-bench -exp batch        # batch engine: scenarios × workers sweep
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	exp := flag.String("exp", "", "experiment id: fig14–fig25, ablation, batch, all")
	rows := flag.Int("rows", 20000, "row count of the small datasets (stand-in for the paper's 5M)")
	large := flag.Int("large", 4, "multiplier for the large taxi dataset (stand-in for 50M)")
	seed := flag.Int64("seed", 1, "workload seed")
	updates := flag.String("updates", "10,20,50,100,200", "history lengths (U) for the sweeps")
	flag.Parse()

	us, err := parseInts(*updates)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mahif-bench:", err)
		os.Exit(2)
	}
	h := &harness{rows: *rows, large: *large, seed: *seed, updates: us}

	experiments := map[string]func(){
		"fig14": h.fig14, "fig15": h.fig15, "fig16": h.fig16, "fig17": h.fig17,
		"fig18": h.fig18, "fig19": h.fig19, "fig20": h.fig20, "fig21": h.fig21,
		"fig22": h.fig22, "fig23": h.fig23, "fig24": h.fig24, "fig25": h.fig25,
		"ablation": h.ablations, "batch": h.batch,
	}
	switch *exp {
	case "all":
		names := make([]string, 0, len(experiments))
		for n := range experiments {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			experiments[n]()
		}
	case "":
		fmt.Fprintln(os.Stderr, "mahif-bench: -exp required (fig14–fig25, ablation, batch, all)")
		os.Exit(2)
	default:
		run, ok := experiments[*exp]
		if !ok {
			fmt.Fprintf(os.Stderr, "mahif-bench: unknown experiment %q\n", *exp)
			os.Exit(2)
		}
		run()
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad -updates entry %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
