// Command mahif-bench regenerates the tables and figures of the
// paper's evaluation (§13) over the synthetic workload generators. Row
// counts are scaled for a single machine (flag -rows; the "large"
// dataset is -large times bigger), so absolute numbers differ from the
// paper, but the comparisons — who wins, by what factor, where the
// crossovers fall — are the reproduction target (see EXPERIMENTS.md).
//
// Usage:
//
//	mahif-bench -exp fig14        # one experiment
//	mahif-bench -exp all          # everything (takes a while)
//	mahif-bench -exp fig22 -rows 50000 -updates 10,20,50
//	mahif-bench -exp batch        # batch engine: scenarios × workers sweep
//	mahif-bench -exp exec         # interpreter vs compiled executor → BENCH_exec.json
//	mahif-bench -exp exec -cpuprofile cpu.out -memprofile mem.out
//	mahif-bench -exp serve        # mahifd HTTP service load test → BENCH_serve.json
//	mahif-bench -exp template     # scenario templates vs WhatIfBatch → BENCH_template.json
//	mahif-bench -exp howto        # certified how-to target search → BENCH_howto.json
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
)

func main() {
	exp := flag.String("exp", "", "experiment id: fig14–fig25, ablation, batch, exec, serve, persist, cluster, template, howto, all")
	rows := flag.Int("rows", 20000, "row count of the small datasets (stand-in for the paper's 5M)")
	large := flag.Int("large", 4, "multiplier for the large taxi dataset (stand-in for 50M)")
	seed := flag.Int64("seed", 1, "workload seed")
	updates := flag.String("updates", "10,20,50,100,200", "history lengths (U) for the sweeps")
	quick := flag.Bool("quick", false, "shrink experiment scale for smoke runs (CI)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the experiment to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (after the experiment) to this file")
	flag.StringVar(&execOut, "execout", execOut, "output path for the exec experiment's JSON report")
	flag.StringVar(&serveOut, "serveout", serveOut, "output path for the serve experiment's JSON report")
	flag.StringVar(&persistOut, "persistout", persistOut, "output path for the persist experiment's JSON report")
	flag.StringVar(&clusterOut, "clusterout", clusterOut, "output path for the cluster experiment's JSON report")
	flag.StringVar(&templateOut, "templateout", templateOut, "output path for the template experiment's JSON report")
	flag.StringVar(&howtoOut, "howtoout", howtoOut, "output path for the howto experiment's JSON report")
	flag.Parse()

	us, err := parseInts(*updates)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mahif-bench:", err)
		os.Exit(2)
	}
	h := &harness{rows: *rows, large: *large, seed: *seed, updates: us, quick: *quick}

	experiments := map[string]func(){
		"fig14": h.fig14, "fig15": h.fig15, "fig16": h.fig16, "fig17": h.fig17,
		"fig18": h.fig18, "fig19": h.fig19, "fig20": h.fig20, "fig21": h.fig21,
		"fig22": h.fig22, "fig23": h.fig23, "fig24": h.fig24, "fig25": h.fig25,
		"ablation": h.ablations, "batch": h.batch, "exec": h.execExp,
		"serve": h.serveExp, "persist": h.persistExp, "cluster": h.clusterExp,
		"template": h.templateExp, "howto": h.howtoExp,
	}
	var runs []func()
	switch *exp {
	case "all":
		names := make([]string, 0, len(experiments))
		for n := range experiments {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			runs = append(runs, experiments[n])
		}
	case "":
		fmt.Fprintln(os.Stderr, "mahif-bench: -exp required (fig14–fig25, ablation, batch, exec, serve, all)")
		os.Exit(2)
	default:
		run, ok := experiments[*exp]
		if !ok {
			fmt.Fprintf(os.Stderr, "mahif-bench: unknown experiment %q\n", *exp)
			os.Exit(2)
		}
		runs = append(runs, run)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mahif-bench:", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "mahif-bench:", err)
			os.Exit(2)
		}
		defer pprof.StopCPUProfile()
	}
	for _, run := range runs {
		run()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mahif-bench:", err)
			os.Exit(2)
		}
		defer f.Close()
		runtime.GC() // surface live heap, not transient garbage
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "mahif-bench:", err)
			os.Exit(2)
		}
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad -updates entry %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
