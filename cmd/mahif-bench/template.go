package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/mahif/mahif/internal/core"
	"github.com/mahif/mahif/internal/delta"
	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/history"
	"github.com/mahif/mahif/internal/types"
	"github.com/mahif/mahif/internal/workload"
)

// templateOut is the output path of the template experiment (flag
// -templateout).
var templateOut = "BENCH_template.json"

// templateResult is one cell of the template sweep. Each (shape,
// updates) pair appears twice: templates:true for the compiled-template
// path (one CompileTemplate + a binding sweep over EvalBatch) and
// templates:false for the ablation answering the same bindings as
// independent scenarios through WhatIfBatch. Bindings is the count the
// row actually answered — the ablation measures a stride sample of the
// sweep (answering all 10k through per-scenario compile+solve would
// take the better part of an hour), so the rows compare on
// ns_per_binding, not total.
type templateResult struct {
	Shape    string `json:"shape"`
	Updates  int    `json:"updates"`
	Rows     int    `json:"rows"`
	Bindings int    `json:"bindings"`
	// Templates distinguishes the template path from the WhatIfBatch
	// ablation over the same bindings.
	Templates bool `json:"templates"`
	// CompileMs is the one-time template compilation the sweep
	// amortizes (template rows only; included in TotalMs).
	CompileMs float64 `json:"compile_ms,omitempty"`
	TotalMs   float64 `json:"total_ms"`
	// NsPerBinding is TotalMs spread over the row's bindings — the
	// steady-state cost of one more what-if answer (compile included
	// and amortized for the template rows).
	NsPerBinding int64 `json:"ns_per_binding"`
	// Slicing outcome of the template artifact (template rows only).
	// DataSlicing reports the SET-only fast path: slots confined to SET
	// position leave the slicing filters binding-invariant, so data
	// slicing survives compilation (set-slot cells say true).
	TotalStatements    int  `json:"total_statements,omitempty"`
	KeptStatements     int  `json:"kept_statements,omitempty"`
	BindingIndependent int  `json:"binding_independent,omitempty"`
	BindingDependent   int  `json:"binding_dependent,omitempty"`
	DataSlicing        bool `json:"data_slicing,omitempty"`
	// SpeedupVsBatch is the template row's per-binding gain over its
	// ablation twin (batch ns_per_binding / template ns_per_binding).
	SpeedupVsBatch float64 `json:"speedup_vs_batch,omitempty"`
	// IdenticalResults reports the per-binding differential check: every
	// template delta equals the WhatIfBatch delta for the same binding.
	IdenticalResults *bool `json:"identical_results,omitempty"`
}

// templateReport is the BENCH_template.json document.
type templateReport struct {
	Description string           `json:"description"`
	Rows        int              `json:"rows_flag"`
	Seed        int64            `json:"seed"`
	Bindings    int              `json:"bindings"`
	Workers     int              `json:"workers"`
	GoMaxProcs  int              `json:"gomaxprocs"`
	Results     []templateResult `json:"results"`
}

// templateExp sweeps a 10k-binding parameter sweep through a compiled
// scenario template and through the equivalent WhatIfBatch (one
// scenario per binding, full compile+solve each), over two template
// shapes:
//
//   - cond-slot: the modified update's threshold is the slot
//     (UPDATE ... WHERE sel >= $cut). The slicing keep-set must stay
//     conservative (a symbolic threshold overlaps every statement's
//     region for some binding), so the win is purely the amortized
//     per-binding compile+solve.
//   - set-slot: the written value is the slot (SET payload = payload +
//     $v) under a concrete condition, so the template slices like a
//     constant scenario and the sweep also skips the re-evaluation of
//     sliced-away statements.
//
// The relation is kept small (rows_flag/40) on purpose: the template's
// per-binding cost is evaluation over the relation, the batch's is
// compile+solve over the history, so this is the regime the subsystem
// exists for — many bindings against a long history. The ablation
// answers a stride sample of the sweep (the full 10k through
// per-scenario compile+solve would run ~an hour); every sampled binding
// is checked differentially against its template twin and the report
// records identical_results per template cell.
func (h *harness) templateExp() {
	bindings := 10000
	sample := 300
	rows := h.rows / 40
	if rows < 200 {
		rows = 200
	}
	type cell struct {
		shape   string
		updates int
	}
	cells := []cell{
		{"cond-slot", 50}, {"cond-slot", 100}, {"cond-slot", 200},
		{"set-slot", 100},
	}
	if h.quick {
		// Smoke scale: enough bindings to exercise the worker pool and
		// the differential check, without benchmark-grade sweeps.
		bindings, sample, rows = 40, 10, 400
		cells = []cell{{"cond-slot", 10}, {"set-slot", 10}}
	}
	workers := runtime.GOMAXPROCS(0)
	report := &templateReport{
		Description: "Scenario templates: CompileTemplate once + a binding sweep over EvalBatch vs the equivalent WhatIfBatch (one scenario per binding, per-scenario compile+solve, measured over a stride sample of the sweep), with a per-binding differential check over the sample",
		Rows:        rows,
		Seed:        h.seed,
		Bindings:    bindings,
		Workers:     workers,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
	}

	type shapeCfg struct {
		param string
		mods  func(w *workload.Workload) []history.Modification
	}
	shapes := map[string]shapeCfg{
		"cond-slot": {
			param: "cut",
			mods: func(w *workload.Workload) []history.Modification {
				base := w.Mods[0].(history.Replace)
				upd := base.Stmt.(*history.Update)
				return []history.Modification{history.Replace{Pos: base.Pos, Stmt: &history.Update{
					Rel:   upd.Rel,
					Set:   upd.Set,
					Where: expr.Ge(expr.Column(w.Dataset.SelAttr), expr.Parameter("cut")),
				}}}
			},
		},
		"set-slot": {
			param: "v",
			mods: func(w *workload.Workload) []history.Modification {
				base := w.Mods[0].(history.Replace)
				upd := base.Stmt.(*history.Update)
				payload := w.Dataset.Payload[0]
				return []history.Modification{history.Replace{Pos: base.Pos, Stmt: &history.Update{
					Rel: upd.Rel,
					Set: []history.SetClause{{
						Col: payload,
						E:   expr.Add(expr.Column(payload), expr.Parameter("v")),
					}},
					Where: upd.Where,
				}}}
			},
		},
	}

	header(fmt.Sprintf("Template: %d-binding sweep vs WhatIfBatch (sample=%d) — Taxi rows=%d (workers=%d)",
		bindings, sample, rows, workers),
		"shape", "compile", "tpl/b", "batch/b", "speedup", "identical")
	ds := workload.Taxi(rows, h.seed)
	for _, c := range cells {
		shape := shapes[c.shape]
		u := c.updates
		w := h.gen(ds, workload.Config{Updates: u, DependentPct: 25})
		vdb, err := w.Load()
		if err != nil {
			panic(err)
		}
		engine := core.New(vdb)
		mods := shape.mods(w)

		// Bindings sweep the full selection range so the parameter
		// region (and the affected tuple count) varies per binding.
		bvals := make([]map[string]types.Value, bindings)
		for i := range bvals {
			v := float64(i%(2*workload.SelRange)) + 0.5
			bvals[i] = map[string]types.Value{shape.param: types.Float(v)}
		}

		start := time.Now()
		tpl, err := engine.CompileTemplate(mods, core.DefaultOptions())
		if err != nil {
			panic(err)
		}
		compileT := time.Since(start)
		results, err := tpl.EvalBatch(bvals, workers)
		if err != nil {
			panic(err)
		}
		templateT := time.Since(start)
		for _, r := range results {
			if r.Err != nil {
				panic(r.Err)
			}
		}

		// The ablation: every sample-th binding as its own scenario
		// through WhatIfBatch. Sharing (snapshot, memo, query cache)
		// stays on — this is the strongest constant-scenario baseline —
		// but each distinct constant still pays compile+solve.
		stride := bindings / sample
		if stride < 1 {
			stride = 1
		}
		var picked []int
		for i := 0; i < bindings; i += stride {
			picked = append(picked, i)
		}
		scenarios := make([]core.Scenario, len(picked))
		for j, i := range picked {
			scenarios[j] = core.Scenario{
				Label: fmt.Sprintf("b%d", i),
				Mods:  tpl.SubstitutedMods(bvals[i]),
			}
		}
		batchResults, bs, err := engine.WhatIfBatch(scenarios, core.BatchOptions{
			Options: core.DefaultOptions(), Workers: workers,
		})
		if err != nil {
			panic(err)
		}

		identical := true
		for j, br := range batchResults {
			if br.Err != nil {
				panic(br.Err)
			}
			if !deltasEqual(results[picked[j]].Delta, br.Delta) {
				identical = false
				fmt.Printf("  DIFF at binding %d (%s)\n", picked[j], c.shape)
			}
		}

		st := tpl.Stats()
		tplPerB := templateT.Nanoseconds() / int64(bindings)
		batchPerB := bs.Total.Nanoseconds() / int64(len(picked))
		speedup := float64(batchPerB) / float64(tplPerB)
		id := identical
		report.Results = append(report.Results,
			templateResult{
				Shape: c.shape, Updates: u, Rows: rows, Bindings: bindings,
				Templates:          true,
				CompileMs:          float64(compileT.Microseconds()) / 1000,
				TotalMs:            float64(templateT.Microseconds()) / 1000,
				NsPerBinding:       tplPerB,
				TotalStatements:    st.TotalStatements,
				KeptStatements:     st.KeptStatements,
				BindingIndependent: st.BindingIndependent,
				BindingDependent:   st.BindingDependent,
				DataSlicing:        st.DataSlicing,
				SpeedupVsBatch:     speedup,
				IdenticalResults:   &id,
			},
			templateResult{
				Shape: c.shape, Updates: u, Rows: rows, Bindings: len(picked),
				Templates:    false,
				TotalMs:      float64(bs.Total.Microseconds()) / 1000,
				NsPerBinding: batchPerB,
			},
		)
		fmt.Printf("%-10d %12s %12s %12.2f %12.2f %11.2fx %12t\n",
			u, c.shape, ms(compileT), float64(tplPerB)/1e6, float64(batchPerB)/1e6,
			speedup, identical)
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		panic(err)
	}
	if err := os.WriteFile(templateOut, append(out, '\n'), 0o644); err != nil {
		panic(err)
	}
	fmt.Printf("\nwrote %s\n", templateOut)
}

// deltasEqual compares two delta sets relation by relation, treating a
// missing relation and an empty one as equal.
func deltasEqual(a, b delta.Set) bool {
	for rel, ra := range a {
		rb, ok := b[rel]
		if !ok {
			if !ra.Empty() {
				return false
			}
			continue
		}
		if !ra.Equal(rb) {
			return false
		}
	}
	for rel, rb := range b {
		if _, ok := a[rel]; !ok && !rb.Empty() {
			return false
		}
	}
	return true
}
