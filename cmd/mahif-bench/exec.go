package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"github.com/mahif/mahif/internal/core"
	"github.com/mahif/mahif/internal/workload"
)

// execOut is the output path of the exec experiment (flag -execout).
var execOut = "BENCH_exec.json"

// execResult is one cell of the executor sweep, with the allocation
// profile testing.B collects (allocs/op is the early-warning signal
// for executor regressions — time alone hides allocator luck).
type execResult struct {
	Updates     int    `json:"updates"`
	Rows        int    `json:"rows"`
	Executor    string `json:"executor"`
	// Columnar is reported for the vectorized cells: true for the typed
	// column-vector lanes, false for the boxed-Value ablation
	// (Vec.NoColumnar) that preserves the pre-typed-lane numbers.
	Columnar    *bool   `json:"columnar,omitempty"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Speedup     float64 `json:"speedup_vs_interpreter,omitempty"`
	// SpeedupVsCompiled is reported for the vectorized executor: its
	// gain over the tuple-at-a-time compiled path (the PR-over-PR
	// trajectory metric).
	SpeedupVsCompiled float64 `json:"speedup_vs_compiled,omitempty"`
	// SpeedupVsBoxed is reported for the typed-lane vectorized cell:
	// its gain over the boxed-Value vectorized ablation (the isolated
	// contribution of the typed column vectors).
	SpeedupVsBoxed float64 `json:"speedup_vs_boxed,omitempty"`
}

// execReport is the BENCH_exec.json document: the perf trajectory
// baseline for the executors.
type execReport struct {
	Description string       `json:"description"`
	Rows        int          `json:"rows_flag"`
	Seed        int64        `json:"seed"`
	Updates     []int        `json:"updates"`
	GoMaxProcs  int          `json:"gomaxprocs"`
	Results     []execResult `json:"results"`
}

// execExp sweeps history length × relation size × executor
// (interpreter vs compiled vs vectorized) over the whole-history
// reenactment path (variant R — the executor-bound configuration) and
// writes BENCH_exec.json.
func (h *harness) execExp() {
	sizes := []int{h.rows / 10, h.rows / 2, h.rows}
	updates := h.updates
	if h.quick {
		// Smoke scale: one small relation, two history lengths — enough
		// to exercise every executor cell (including the typed-lane and
		// boxed ablation vectorized paths) without benchmark-grade reps.
		sizes = []int{h.rows / 10}
		if len(updates) > 2 {
			updates = updates[:2]
		}
	}
	report := &execReport{
		Description: "WhatIf (variant R) reenactment: tree-walking interpreter vs compiled (tuple-at-a-time) vs vectorized executor (internal/exec; typed columnar lanes plus the boxed-Value columnar:false ablation)",
		Rows:        h.rows,
		Seed:        h.seed,
		Updates:     updates,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
	}

	// The four measured cells: the three executors, plus the vectorized
	// executor with the typed column lanes disabled (boxed-Value
	// batches) — the ablation isolating what the columnar
	// representation contributes over vectorization alone.
	type cellCfg struct {
		name       string
		ex         core.ExecutorKind
		noColumnar bool
	}
	cfgs := []cellCfg{
		{name: "interpreter", ex: core.ExecInterpreter},
		{name: "vectorized-boxed", ex: core.ExecVectorized, noColumnar: true},
		{name: "compiled", ex: core.ExecCompiled},
		{name: "vectorized", ex: core.ExecVectorized},
	}
	header("Exec: interpreter vs compiled vs vectorized (typed/boxed) — Taxi",
		"rows", "interp", "compiled", "vec-boxed", "vector", "vec/comp", "typed/boxed", "allocs-v")
	for _, rows := range sizes {
		ds := workload.Taxi(rows, h.seed)
		for _, u := range updates {
			w := h.gen(ds, workload.Config{Updates: u})
			vdb, err := w.Load()
			if err != nil {
				panic(err)
			}
			engine := core.New(vdb)

			cells := map[string]testing.BenchmarkResult{}
			for _, cfg := range cfgs {
				opts := core.OptionsFor(core.VariantR)
				opts.Executor = cfg.ex
				opts.Vec.NoColumnar = cfg.noColumnar
				// Warm once so page-in and snapshot construction do not
				// land inside the measurement.
				if _, _, err := engine.WhatIf(w.Mods, opts); err != nil {
					panic(err)
				}
				cells[cfg.name] = testing.Benchmark(func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if _, _, err := engine.WhatIf(w.Mods, opts); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
			interp := cells["interpreter"]
			compiled := cells["compiled"]
			boxed := cells["vectorized-boxed"]
			vec := cells["vectorized"]
			vecVsComp := float64(compiled.NsPerOp()) / float64(vec.NsPerOp())
			typedVsBoxed := float64(boxed.NsPerOp()) / float64(vec.NsPerOp())
			yes, no := true, false
			report.Results = append(report.Results,
				execResult{Updates: u, Rows: rows, Executor: "interpreter",
					NsPerOp: interp.NsPerOp(), AllocsPerOp: interp.AllocsPerOp(), BytesPerOp: interp.AllocedBytesPerOp()},
				execResult{Updates: u, Rows: rows, Executor: "compiled",
					NsPerOp: compiled.NsPerOp(), AllocsPerOp: compiled.AllocsPerOp(), BytesPerOp: compiled.AllocedBytesPerOp(),
					Speedup: float64(interp.NsPerOp()) / float64(compiled.NsPerOp())},
				execResult{Updates: u, Rows: rows, Executor: "vectorized", Columnar: &no,
					NsPerOp: boxed.NsPerOp(), AllocsPerOp: boxed.AllocsPerOp(), BytesPerOp: boxed.AllocedBytesPerOp(),
					Speedup:           float64(interp.NsPerOp()) / float64(boxed.NsPerOp()),
					SpeedupVsCompiled: float64(compiled.NsPerOp()) / float64(boxed.NsPerOp())},
				execResult{Updates: u, Rows: rows, Executor: "vectorized", Columnar: &yes,
					NsPerOp: vec.NsPerOp(), AllocsPerOp: vec.AllocsPerOp(), BytesPerOp: vec.AllocedBytesPerOp(),
					Speedup:           float64(interp.NsPerOp()) / float64(vec.NsPerOp()),
					SpeedupVsCompiled: vecVsComp,
					SpeedupVsBoxed:    typedVsBoxed},
			)
			fmt.Printf("%-10d %12d %12.1f %12.1f %12.1f %12.1f %11.2fx %12.2fx %12d\n",
				u, rows,
				float64(interp.NsPerOp())/1e6, float64(compiled.NsPerOp())/1e6,
				float64(boxed.NsPerOp())/1e6, float64(vec.NsPerOp())/1e6,
				vecVsComp, typedVsBoxed, vec.AllocsPerOp())
		}
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		panic(err)
	}
	if err := os.WriteFile(execOut, append(out, '\n'), 0o644); err != nil {
		panic(err)
	}
	fmt.Printf("\nwrote %s\n", execOut)
}
