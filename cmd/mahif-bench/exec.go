package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"github.com/mahif/mahif/internal/core"
	"github.com/mahif/mahif/internal/workload"
)

// execOut is the output path of the exec experiment (flag -execout).
var execOut = "BENCH_exec.json"

// execResult is one cell of the executor sweep, with the allocation
// profile testing.B collects (allocs/op is the early-warning signal
// for executor regressions — time alone hides allocator luck).
type execResult struct {
	Updates     int     `json:"updates"`
	Rows        int     `json:"rows"`
	Executor    string  `json:"executor"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Speedup     float64 `json:"speedup_vs_interpreter,omitempty"`
	// SpeedupVsCompiled is reported for the vectorized executor: its
	// gain over the tuple-at-a-time compiled path (the PR-over-PR
	// trajectory metric).
	SpeedupVsCompiled float64 `json:"speedup_vs_compiled,omitempty"`
}

// execReport is the BENCH_exec.json document: the perf trajectory
// baseline for the executors.
type execReport struct {
	Description string       `json:"description"`
	Rows        int          `json:"rows_flag"`
	Seed        int64        `json:"seed"`
	Updates     []int        `json:"updates"`
	GoMaxProcs  int          `json:"gomaxprocs"`
	Results     []execResult `json:"results"`
}

// execExp sweeps history length × relation size × executor
// (interpreter vs compiled vs vectorized) over the whole-history
// reenactment path (variant R — the executor-bound configuration) and
// writes BENCH_exec.json.
func (h *harness) execExp() {
	sizes := []int{h.rows / 10, h.rows / 2, h.rows}
	report := &execReport{
		Description: "WhatIf (variant R) reenactment: tree-walking interpreter vs compiled (tuple-at-a-time) vs vectorized executor (internal/exec)",
		Rows:        h.rows,
		Seed:        h.seed,
		Updates:     h.updates,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
	}

	executors := []core.ExecutorKind{core.ExecInterpreter, core.ExecCompiled, core.ExecVectorized}
	header("Exec: interpreter vs compiled vs vectorized — Taxi",
		"rows", "interp", "compiled", "vector", "vec/comp", "allocs-c", "allocs-v")
	for _, rows := range sizes {
		ds := workload.Taxi(rows, h.seed)
		for _, u := range h.updates {
			w := h.gen(ds, workload.Config{Updates: u})
			vdb, err := w.Load()
			if err != nil {
				panic(err)
			}
			engine := core.New(vdb)

			cells := map[core.ExecutorKind]testing.BenchmarkResult{}
			for _, ex := range executors {
				opts := core.OptionsFor(core.VariantR)
				opts.Executor = ex
				// Warm once so page-in and snapshot construction do not
				// land inside the measurement.
				if _, _, err := engine.WhatIf(w.Mods, opts); err != nil {
					panic(err)
				}
				cells[ex] = testing.Benchmark(func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if _, _, err := engine.WhatIf(w.Mods, opts); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
			interp := cells[core.ExecInterpreter]
			compiled := cells[core.ExecCompiled]
			vec := cells[core.ExecVectorized]
			vecVsComp := float64(compiled.NsPerOp()) / float64(vec.NsPerOp())
			report.Results = append(report.Results,
				execResult{Updates: u, Rows: rows, Executor: "interpreter",
					NsPerOp: interp.NsPerOp(), AllocsPerOp: interp.AllocsPerOp(), BytesPerOp: interp.AllocedBytesPerOp()},
				execResult{Updates: u, Rows: rows, Executor: "compiled",
					NsPerOp: compiled.NsPerOp(), AllocsPerOp: compiled.AllocsPerOp(), BytesPerOp: compiled.AllocedBytesPerOp(),
					Speedup: float64(interp.NsPerOp()) / float64(compiled.NsPerOp())},
				execResult{Updates: u, Rows: rows, Executor: "vectorized",
					NsPerOp: vec.NsPerOp(), AllocsPerOp: vec.AllocsPerOp(), BytesPerOp: vec.AllocedBytesPerOp(),
					Speedup:           float64(interp.NsPerOp()) / float64(vec.NsPerOp()),
					SpeedupVsCompiled: vecVsComp},
			)
			fmt.Printf("%-10d %12d %12.1f %12.1f %12.1f %11.2fx %12d %12d\n",
				u, rows,
				float64(interp.NsPerOp())/1e6, float64(compiled.NsPerOp())/1e6, float64(vec.NsPerOp())/1e6,
				vecVsComp, compiled.AllocsPerOp(), vec.AllocsPerOp())
		}
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		panic(err)
	}
	if err := os.WriteFile(execOut, append(out, '\n'), 0o644); err != nil {
		panic(err)
	}
	fmt.Printf("\nwrote %s\n", execOut)
}
