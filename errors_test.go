package mahif_test

import (
	"errors"
	"testing"

	"github.com/mahif/mahif"
)

// TestModificationPositionErrors pins the typed sentinel errors for
// invalid modification positions, as returned from both WhatIf and
// Naive, for every modification kind at -1, len, and len+1. Insert at
// len is legal (append), so it is exercised as the success case.
func TestModificationPositionErrors(t *testing.T) {
	vdb := paperExample(t) // 3-statement history
	engine := mahif.NewEngine(vdb)
	n := vdb.NumVersions()
	if n != 3 {
		t.Fatalf("example history has %d statements, want 3", n)
	}
	stmt := `UPDATE orders SET shippingfee = 0 WHERE price >= 60`

	cases := []struct {
		name string
		mod  mahif.Modification
		ok   bool
	}{
		{"replace -1", mahif.ReplaceSQL(-1, stmt), false},
		{"replace len", mahif.ReplaceSQL(n, stmt), false},
		{"replace len+1", mahif.ReplaceSQL(n+1, stmt), false},
		{"insert -1", mahif.InsertSQL(-1, stmt), false},
		{"insert len", mahif.InsertSQL(n, stmt), true}, // append is legal
		{"insert len+1", mahif.InsertSQL(n+1, stmt), false},
		{"delete -1", mahif.DeleteAt(-1), false},
		{"delete len", mahif.DeleteAt(n), false},
		{"delete len+1", mahif.DeleteAt(n + 1), false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, _, err := engine.WhatIf([]mahif.Modification{c.mod}, mahif.DefaultOptions())
			if c.ok {
				if err != nil {
					t.Fatalf("WhatIf: unexpected error: %v", err)
				}
				return
			}
			if !errors.Is(err, mahif.ErrPosOutOfRange) {
				t.Errorf("WhatIf error = %v, want ErrPosOutOfRange", err)
			}
			if _, _, nerr := engine.Naive([]mahif.Modification{c.mod}); !errors.Is(nerr, mahif.ErrPosOutOfRange) {
				t.Errorf("Naive error = %v, want ErrPosOutOfRange", nerr)
			}
		})
	}
}

// TestEmptyHistoryErrors: replacing or deleting in an empty history is
// ErrEmptyHistory (and also out of range only in the degenerate
// sense); inserting into an empty history is legal.
func TestEmptyHistoryErrors(t *testing.T) {
	db := mahif.NewDatabase()
	rel := mahif.NewRelation(mahif.NewSchema("orders",
		mahif.Col("id", mahif.KindInt),
		mahif.Col("price", mahif.KindFloat),
		mahif.Col("fee", mahif.KindFloat),
	))
	rel.Add(mahif.NewTuple(mahif.Int(1), mahif.Float(55), mahif.Float(5)))
	db.AddRelation(rel)
	engine := mahif.NewEngine(mahif.NewVersioned(db))

	stmt := `UPDATE orders SET fee = 0 WHERE price >= 60`
	for _, c := range []struct {
		name string
		mod  mahif.Modification
	}{
		{"replace", mahif.ReplaceSQL(0, stmt)},
		{"delete", mahif.DeleteAt(0)},
	} {
		if _, _, err := engine.WhatIf([]mahif.Modification{c.mod}, mahif.DefaultOptions()); !errors.Is(err, mahif.ErrEmptyHistory) {
			t.Errorf("%s on empty history: WhatIf error = %v, want ErrEmptyHistory", c.name, err)
		}
		if _, _, err := engine.Naive([]mahif.Modification{c.mod}); !errors.Is(err, mahif.ErrEmptyHistory) {
			t.Errorf("%s on empty history: Naive error = %v, want ErrEmptyHistory", c.name, err)
		}
	}

	// Insert into an empty history is a valid what-if query.
	if _, _, err := engine.WhatIf([]mahif.Modification{mahif.InsertSQL(0, stmt)}, mahif.DefaultOptions()); err != nil {
		t.Errorf("insert into empty history: %v", err)
	}
}
