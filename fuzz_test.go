package mahif_test

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/mahif/mahif"
	"github.com/mahif/mahif/internal/algebra"
	"github.com/mahif/mahif/internal/exec"
	"github.com/mahif/mahif/internal/sql"
	"github.com/mahif/mahif/internal/storage"
)

// TestRandomizedCrossValidation is the repository's highest-level
// correctness net: random two-relation databases, random histories
// (updates, deletes, constant inserts, INSERT…SELECT across relations),
// and random modifications of every kind, answered by every variant and
// compared against the naive algorithm.
func TestRandomizedCrossValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	trials := 60
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		vdb, hist := randomScenario(t, rng)
		mod := randomModificationFor(rng, hist)
		engine := mahif.NewEngine(vdb)

		want, _, err := engine.Naive([]mahif.Modification{mod})
		if err != nil {
			t.Fatalf("trial %d: naive: %v\nhistory:\n%s\nmod: %s", trial, err, hist, mod)
		}
		for _, v := range []mahif.Variant{mahif.VariantR, mahif.VariantRPS, mahif.VariantRDS, mahif.VariantRFull} {
			got, _, err := engine.WhatIf([]mahif.Modification{mod}, mahif.OptionsFor(v))
			if err != nil {
				t.Fatalf("trial %d %s: %v\nhistory:\n%s\nmod: %s", trial, v, err, hist, mod)
			}
			for rel, wd := range want {
				gd := got[rel]
				if gd == nil {
					if wd.Empty() {
						continue
					}
					t.Fatalf("trial %d %s: missing delta for %s\nhistory:\n%s\nmod: %s\nwant:\n%s",
						trial, v, rel, hist, mod, wd)
				}
				if !gd.Equal(wd) {
					t.Fatalf("trial %d %s: delta mismatch for %s\nhistory:\n%s\nmod: %s\nnaive:\n%s\ngot:\n%s",
						trial, v, rel, hist, mod, wd, gd)
				}
			}
		}
	}
}

// randomScenario builds a fresh versioned database with relations r and
// w (same schema, w initially empty) and applies a random history. The
// size of r is drawn from a distribution that includes the vectorized
// executor's batch boundaries (0, 1, ~1023–1025 rows) alongside the
// small fast sizes, so the end-to-end differential also crosses batch
// edges, not only the unit tests.
//
// A quarter of scenarios run in "wide" mode, which stresses the typed
// columnar lanes specifically: NULL-heavy columns (typed lanes with
// null bitmaps), all-NULL columns, float cells inside the int-declared
// k/v columns (per-cell kind deviation drops the column to the boxed
// fallback lane), and integers around the 2^53 float-precision
// boundary and the int64 extremes (where the executor's integer
// comparison plans diverge from a float round-trip).
func randomScenario(t *testing.T, rng *rand.Rand) (*mahif.VersionedDatabase, mahif.History) {
	t.Helper()
	cols := []mahif.Column{
		mahif.Col("k", mahif.KindInt),
		mahif.Col("v", mahif.KindInt),
		mahif.Col("g", mahif.KindString),
	}
	db := mahif.NewDatabase()
	r := mahif.NewRelation(mahif.NewSchema("r", cols...))
	groups := []string{"a", "b", "c"}
	wide := rng.Intn(4) == 0
	allNull := wide && rng.Intn(6) == 0
	intCell := func() mahif.Value {
		if allNull {
			return mahif.Null()
		}
		if !wide {
			return mahif.Int(int64(rng.Intn(50)))
		}
		switch rng.Intn(12) {
		case 0, 1:
			return mahif.Null()
		case 2:
			return mahif.Int(1 << 53) // first float64 rounding plateau
		case 3:
			return mahif.Int(1<<53 + 1)
		case 4:
			return mahif.Int(-(1<<53 + 1))
		case 5:
			return mahif.Int(9223372036854775807)
		case 6:
			return mahif.Float(float64(rng.Intn(50)) + 0.5) // kind deviation → boxed lane
		default:
			return mahif.Int(int64(rng.Intn(50)))
		}
	}
	strCell := func() mahif.Value {
		if allNull || (wide && rng.Intn(5) == 0) {
			return mahif.Null()
		}
		return mahif.Str(groups[rng.Intn(len(groups))])
	}
	var rows int
	switch rng.Intn(8) {
	case 0:
		rows = rng.Intn(2) // empty and single-row relations
	case 1:
		rows = 1023 + rng.Intn(3) // straddle one batch
	default:
		rows = 30 + rng.Intn(30)
	}
	for i := 0; i < rows; i++ {
		r.Add(mahif.NewTuple(intCell(), intCell(), strCell()))
	}
	db.AddRelation(r)
	db.AddRelation(mahif.NewRelation(mahif.NewSchema("w", cols...)))
	vdb := mahif.NewVersioned(db)

	var hist mahif.History
	n := 1 + rng.Intn(6)
	for i := 0; i < n; i++ {
		st := randomStatement(rng, i)
		if err := vdb.Apply(st); err != nil {
			t.Fatalf("applying %s: %v", st, err)
		}
		hist = append(hist, st)
	}
	return vdb, hist
}

// randomCondConst draws a comparison constant: usually small (so
// conditions select something), occasionally at the 2^53 boundary or
// negative-huge, where an integer column compared through float64
// could misorder if the executor's comparison plan were built from a
// lossy round-trip.
func randomCondConst(rng *rand.Rand) string {
	switch rng.Intn(16) {
	case 0:
		return "9007199254740992" // 2^53
	case 1:
		return "9007199254740993"
	case 2:
		return "-9007199254740993"
	case 3:
		return "9223372036854775807"
	default:
		return fmt.Sprint(rng.Intn(50))
	}
}

func randomCondSQL(rng *rand.Rand) string {
	col := []string{"k", "v"}[rng.Intn(2)]
	op := []string{">=", "<", "="}[rng.Intn(3)]
	base := fmt.Sprintf("%s %s %s", col, op, randomCondConst(rng))
	switch rng.Intn(3) {
	case 0:
		return base + fmt.Sprintf(" AND g = '%s'", []string{"a", "b", "c"}[rng.Intn(3)])
	case 1:
		return base + fmt.Sprintf(" OR v < %d", rng.Intn(20))
	}
	return base
}

func randomStatement(rng *rand.Rand, i int) mahif.Statement {
	rel := "r"
	if rng.Intn(4) == 0 {
		rel = "w"
	}
	switch rng.Intn(8) {
	case 0:
		return mahif.MustParseStatement(fmt.Sprintf(
			`DELETE FROM %s WHERE %s`, rel, randomCondSQL(rng)))
	case 1:
		v1 := fmt.Sprint(rng.Intn(50))
		if rng.Intn(8) == 0 {
			v1 = "NULL" // NULL through the full INSERT → reenact → delta path
		}
		return mahif.MustParseStatement(fmt.Sprintf(
			`INSERT INTO %s VALUES (%d, %s, 'a'), (%d, %d, 'b')`,
			rel, 100+i, v1, 200+i, rng.Intn(50)))
	case 2:
		// Cross-relation INSERT…SELECT (w fed from r or vice versa).
		src := "r"
		if rel == "r" {
			src = "w"
		}
		return mahif.MustParseStatement(fmt.Sprintf(
			`INSERT INTO %s SELECT k, v, g FROM %s WHERE %s`, rel, src, randomCondSQL(rng)))
	default:
		set := fmt.Sprintf("v = v + %d", 1+rng.Intn(5))
		if rng.Intn(3) == 0 {
			set = fmt.Sprintf("v = %d, k = k + 1", rng.Intn(30))
		}
		return mahif.MustParseStatement(fmt.Sprintf(
			`UPDATE %s SET %s WHERE %s`, rel, set, randomCondSQL(rng)))
	}
}

func randomModificationFor(rng *rand.Rand, hist mahif.History) mahif.Modification {
	pos := rng.Intn(len(hist))
	switch rng.Intn(4) {
	case 0:
		return mahif.DeleteAt(pos)
	case 1:
		return mahif.InsertStmt{Pos: pos, Stmt: randomStatement(rng, 50)}
	default:
		return mahif.Replace{Pos: pos, Stmt: randomStatement(rng, 60)}
	}
}

// differentialTrial answers one random scenario with the tuple-at-a-
// time compiled executor, the vectorized executor, and the tree-walking
// interpreter under every variant and requires all three to produce
// identical deltas (interpreter ≡ compiled ≡ vectorized). Deltas are
// sorted and multiset-aware (delta.Compute sorts by canonical key;
// Result.Equal compares the annotated multisets position-wise), so this
// is an exact equivalence check of the executors end to end —
// reenactment, slicing, filters, joins, difference, everything.
func differentialTrial(t *testing.T, rng *rand.Rand) {
	t.Helper()
	vdb, hist := randomScenario(t, rng)
	mod := randomModificationFor(rng, hist)
	engine := mahif.NewEngine(vdb)
	aggregateDifferentialTrial(t, rng, vdb)
	for _, v := range []mahif.Variant{mahif.VariantR, mahif.VariantRPS, mahif.VariantRDS, mahif.VariantRFull} {
		optsI := mahif.OptionsFor(v)
		optsI.Executor = mahif.ExecInterpreter
		want, _, errI := engine.WhatIf([]mahif.Modification{mod}, optsI)

		for _, ex := range []mahif.ExecutorKind{mahif.ExecCompiled, mahif.ExecVectorized} {
			opts := mahif.OptionsFor(v)
			opts.Executor = ex
			got, _, errX := engine.WhatIf([]mahif.Modification{mod}, opts)
			if (errI == nil) != (errX == nil) {
				t.Fatalf("%s/%s: error divergence: interpreter=%v %s=%v\nhistory:\n%s\nmod: %s",
					v, ex, errI, ex, errX, hist, mod)
			}
			if errI != nil {
				continue
			}
			rels := map[string]bool{}
			for rel := range want {
				rels[rel] = true
			}
			for rel := range got {
				rels[rel] = true
			}
			for rel := range rels {
				wd, gd := want[rel], got[rel]
				switch {
				case wd == nil && gd == nil:
				case wd == nil:
					if !gd.Empty() {
						t.Fatalf("%s/%s: extra delta for %s\nhistory:\n%s\nmod: %s\ngot:\n%s",
							v, ex, rel, hist, mod, gd)
					}
				case gd == nil:
					if !wd.Empty() {
						t.Fatalf("%s/%s: missing delta for %s\nhistory:\n%s\nmod: %s\nwant:\n%s",
							v, ex, rel, hist, mod, wd)
					}
				case !gd.Equal(wd):
					t.Fatalf("%s/%s: executor divergence for %s\nhistory:\n%s\nmod: %s\ninterpreter:\n%s\n%s:\n%s",
						v, ex, rel, hist, mod, wd, ex, gd)
				}
			}
		}
	}
}

// randomAggregateSQL draws a grouped or global aggregate query over r:
// 0–2 grouping columns (including computed keys, so NULL groups and
// cross-kind numeric keys arise from the wide generator), 1–3 aggregate
// calls over every function, an optional WHERE, and occasionally a
// deliberately ill-typed SUM over the string column so error behavior
// is differentially checked too.
func randomAggregateSQL(rng *rand.Rand) string {
	groupPool := []string{"g", "k", "v", "k + 1"}
	var groups []string
	for _, g := range groupPool {
		if rng.Intn(4) == 0 && len(groups) < 2 {
			groups = append(groups, g)
		}
	}
	aggPool := []string{"COUNT(*)", "COUNT(v)", "SUM(v)", "AVG(v)", "MIN(v)", "MAX(k)", "SUM(k + v)", "MIN(g)", "MAX(g)"}
	if rng.Intn(10) == 0 {
		aggPool = append(aggPool, "SUM(g)") // ill-typed: all executors must error alike
	}
	n := 1 + rng.Intn(3)
	var items []string
	for i, g := range groups {
		item := g
		if g == "k + 1" {
			item = fmt.Sprintf("%s AS gk%d", g, i)
		}
		items = append(items, item)
	}
	for i := 0; i < n; i++ {
		items = append(items, fmt.Sprintf("%s AS a%d", aggPool[rng.Intn(len(aggPool))], i))
	}
	q := "SELECT "
	for i, it := range items {
		if i > 0 {
			q += ", "
		}
		q += it
	}
	q += " FROM r"
	if rng.Intn(2) == 0 {
		q += " WHERE " + randomCondSQL(rng)
	}
	if len(groups) > 0 {
		q += " GROUP BY "
		for i, g := range groups {
			if i > 0 {
				q += ", "
			}
			q += g
		}
	}
	return q
}

// aggregateDifferentialTrial evaluates random aggregate plans over the
// scenario's tip state with all three executors and requires identical
// materialized relations — same schema, same tuples, same order (group
// first-appearance order is part of the contract) — or that all three
// fail together.
func aggregateDifferentialTrial(t *testing.T, rng *rand.Rand, vdb *mahif.VersionedDatabase) {
	t.Helper()
	_, db := vdb.TipSnapshot()
	for i := 0; i < 2; i++ {
		src := randomAggregateSQL(rng)
		q, err := sql.ParseQuery(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		want, errI := algebra.Eval(q, db)
		for name, evalFn := range map[string]func(algebra.Query, *storage.Database) (*storage.Relation, error){
			"compiled": exec.Eval, "vectorized": exec.EvalVec,
		} {
			got, errX := evalFn(q, db)
			if (errI == nil) != (errX == nil) {
				t.Fatalf("%s: aggregate error divergence on %q: interpreter=%v got=%v", name, src, errI, errX)
			}
			if errI != nil {
				continue
			}
			if !want.Schema.Equal(got.Schema) {
				t.Fatalf("%s: aggregate schema divergence on %q: %s vs %s", name, src, want.Schema, got.Schema)
			}
			if len(want.Tuples) != len(got.Tuples) {
				t.Fatalf("%s: aggregate row-count divergence on %q: %d vs %d", name, src, len(want.Tuples), len(got.Tuples))
			}
			for j := range want.Tuples {
				if !want.Tuples[j].Equal(got.Tuples[j]) {
					t.Fatalf("%s: aggregate row divergence on %q at %d: %s vs %s", name, src, j, want.Tuples[j], got.Tuples[j])
				}
			}
		}
	}
}

// TestDifferentialExecutor cross-validates the compiled and vectorized
// executors against the interpreter oracle over random histories and
// modifications.
func TestDifferentialExecutor(t *testing.T) {
	rng := rand.New(rand.NewSource(4321))
	trials := 40
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		differentialTrial(t, rng)
	}
}

// FuzzDifferentialExecutor is the native-fuzzing entry point for the
// same three-way property; the seed corpus runs on every plain
// `go test` (including -short in CI), and
// `go test -fuzz=FuzzDifferentialExecutor` explores further. The seeds
// past 987654321 were added with the vectorized executor: under the
// enlarged size distribution they cover batch-boundary relations
// (0/1/1023–1025 rows), all-filtered histories, INSERT…SELECT-heavy
// logs, and every modification kind. The third group was added with
// the typed columnar lanes and lands in the generator's wide mode:
// NULL-heavy and all-NULL columns, kind-deviant cells forcing the
// boxed fallback lane, 2^53-boundary and int64-extreme values, and
// comparison constants at the same boundaries.
func FuzzDifferentialExecutor(f *testing.F) {
	// The fourth group was added with the aggregate operators: each
	// trial now also runs grouped/global aggregate plans through all
	// three executors, and these seeds land on NULL groups, empty
	// inputs, ill-typed aggregate arguments, and batch-boundary group
	// cardinalities.
	for _, seed := range []int64{1, 2, 3, 42, 1234, 987654321,
		7, 99, 2024, 31337, 55555, 424242, 8675309, 1 << 40,
		11, 13, 31, 47, 1415, 2021, 4096, 271828,
		17, 23, 61, 101, 733, 3141, 16384, 650000} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		differentialTrial(t, rand.New(rand.NewSource(seed)))
	})
}
