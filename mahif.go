// Package mahif is a middleware for answering historical what-if
// queries, reproducing the system of "Efficient Answering of Historical
// What-if Queries" (SIGMOD 2022).
//
// A historical what-if query asks how the current database state would
// differ had the transactional history been different: a statement
// replaced, inserted, or deleted. Mahif answers such queries without
// copying the database, by reenacting the original and the hypothetical
// history as queries over the time-travel state before the first
// modified statement and diffing the two results. Two optimizations —
// program slicing (proving statements irrelevant with symbolic
// execution and an MILP solver) and data slicing (filtering tuples that
// provably cannot appear in the answer) — keep that cheap.
//
// # Quick start
//
//	db := mahif.NewDatabase()
//	db.AddRelation(ordersRelation)
//	vdb := mahif.NewVersioned(db)
//	vdb.Apply(mahif.MustParseStatement(
//	    `UPDATE orders SET fee = 0 WHERE price >= 50`))
//	// ... more history ...
//	engine := mahif.NewEngine(vdb)
//	delta, stats, err := engine.WhatIf([]mahif.Modification{
//	    mahif.ReplaceSQL(0, `UPDATE orders SET fee = 0 WHERE price >= 60`),
//	}, mahif.DefaultOptions())
//
// The result is the symmetric difference between the actual current
// state and the hypothetical one, annotated − (only in the actual
// state) and + (only in the hypothetical state).
//
// # Batch evaluation
//
// Analysts rarely ask one hypothetical: they sweep a family of related
// scenarios over the same history. Engine.WhatIfBatch answers N
// independent modification sets concurrently over a worker pool,
// sharing the work that is common to the family — the time-travel
// state before each distinct first-modified statement is materialized
// once and used read-only by all workers, and program-slicing solver
// runs whose formulas coincide across scenarios are answered once from
// a memo. Results arrive in submission order with per-scenario deltas,
// stats, and errors (no fail-fast):
//
//	results, bstats, err := engine.WhatIfBatch([]mahif.Scenario{
//	    {Label: "fee55", Mods: []mahif.Modification{mahif.ReplaceSQL(0,
//	        `UPDATE orders SET fee = 0 WHERE price >= 55`)}},
//	    {Label: "fee60", Mods: []mahif.Modification{mahif.ReplaceSQL(0,
//	        `UPDATE orders SET fee = 0 WHERE price >= 60`)}},
//	}, mahif.BatchOptions{Options: mahif.DefaultOptions()})
//
// The same capability is exposed as the `batch` subcommand of
// cmd/mahif, which reads scenarios from a JSON file.
//
// # Contexts and cancellation
//
// Every evaluation entry point has a ctx-threaded form — WhatIfCtx,
// NaiveCtx, WhatIfBatchCtx, ProveEquivalentCtx — and the plain forms
// are wrappers over context.Background(). Cancellation and deadlines
// are observed deep inside the long-running phases: at every branch &
// bound node of the MILP solver, between the per-statement
// satisfiability tests of program slicing, every few thousand tuples
// of compiled query execution, and between statements of time-travel
// replay. A cancelled query therefore stops doing work within
// milliseconds and returns ctx.Err():
//
//	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
//	defer cancel()
//	delta, stats, err := engine.WhatIfCtx(ctx, mods, mahif.DefaultOptions())
//
// Invalid modification positions are reported with the sentinel errors
// ErrPosOutOfRange and ErrEmptyHistory (test with errors.Is).
//
// # Sessions
//
// A Session pins the engine's current history version and keeps the
// caches that a single batch call builds and discards — time-travel
// snapshots, solver memo, compiled reenactment programs — alive across
// calls, so iterating related hypotheticals reuses almost all work:
//
//	sess := engine.NewSession()
//	d1, _, _ := sess.WhatIfCtx(ctx, modsFee55, opts)
//	d2, _, _ := sess.WhatIfCtx(ctx, modsFee56, opts) // warm snapshots & programs
//	fmt.Println(sess.Stats().SnapshotHits)
//
// Sessions are safe for concurrent use and invalidate themselves when
// the underlying history advances. cmd/mahifd serves the engine over
// HTTP through a session pool; DeltaSet, Stats, and BatchStats carry a
// stable JSON wire format (MarshalJSON/UnmarshalJSON, pinned by golden
// tests) for that boundary.
//
// # Scenario templates
//
// When the family of hypotheticals shares one shape and differs only
// in constants — "what if the threshold had been X?" for 10k values of
// X — compile the shape once and bind per question. A template's
// statements carry $name parameter slots (SQL: `... WHERE price >=
// $cut`); CompileTemplate runs history alignment, time travel, and
// program slicing once, with the slots as free solver variables (sound
// for every later binding), and Template.Eval answers each binding by
// evaluating only the retained modified-side query:
//
//	tpl, err := engine.CompileTemplate([]mahif.Modification{
//	    mahif.ReplaceSQL(0, `UPDATE orders SET fee = 0 WHERE price >= $cut`),
//	}, mahif.DefaultOptions())
//	d55, err := tpl.Eval(map[string]mahif.Value{"cut": mahif.Int(55)})
//	d60, err := tpl.Eval(map[string]mahif.Value{"cut": mahif.Int(60)})
//
// Every Eval returns exactly what a fresh WhatIf over the substituted
// modifications would (pinned by differential tests). Templates
// recompile transparently when the history advances; sessions cache
// compiled templates by constant-abstracted shape (see
// Session.CompileTemplate), and cmd/mahifd exposes the subsystem as
// POST /v1/template and POST /v1/template/{id}/eval.
package mahif

import (
	"context"

	"github.com/mahif/mahif/internal/compile"
	"github.com/mahif/mahif/internal/core"
	"github.com/mahif/mahif/internal/delta"
	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/history"
	"github.com/mahif/mahif/internal/progslice"
	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/sql"
	"github.com/mahif/mahif/internal/storage"
	"github.com/mahif/mahif/internal/types"
)

// Re-exported core types. The implementation lives in internal
// packages; these aliases are the supported public surface.
type (
	// Value is an attribute value (int, float, string, bool, or NULL).
	Value = types.Value
	// Kind enumerates value types.
	Kind = types.Kind
	// Schema describes a relation's columns.
	Schema = schema.Schema
	// Column is one schema column.
	Column = schema.Column
	// Tuple is one row.
	Tuple = schema.Tuple
	// Relation is a bag of tuples with a schema.
	Relation = storage.Relation
	// Database is a set of named relations.
	Database = storage.Database
	// VersionedDatabase adds statement-granularity time travel.
	VersionedDatabase = storage.VersionedDatabase
	// Statement is one history element (UPDATE/DELETE/INSERT).
	Statement = history.Statement
	// History is a sequence of statements.
	History = history.History
	// Modification hypothetically alters a history (see Replace,
	// InsertStmt, DeleteStmt).
	Modification = history.Modification
	// Replace substitutes the statement at a position.
	Replace = history.Replace
	// InsertStmt inserts a new statement at a position.
	InsertStmt = history.InsertStmt
	// DeleteStmt removes the statement at a position.
	DeleteStmt = history.DeleteStmt
	// Engine answers historical what-if queries.
	Engine = core.Engine
	// Options selects optimizations and tuning knobs.
	Options = core.Options
	// ExecutorKind selects the query evaluation backend.
	ExecutorKind = core.ExecutorKind
	// Variant names a paper evaluation configuration (N, R, R+PS, …).
	Variant = core.Variant
	// Stats is the per-phase breakdown for the reenactment algorithm.
	Stats = core.Stats
	// NaiveStats is the breakdown for the naive algorithm.
	NaiveStats = core.NaiveStats
	// Scenario is one modification set in a batch what-if query.
	Scenario = core.Scenario
	// BatchOptions tunes Engine.WhatIfBatch (parallelism, sharing).
	BatchOptions = core.BatchOptions
	// BatchResult is the per-scenario outcome of a batch query.
	BatchResult = core.BatchResult
	// BatchStats aggregates batch timing and work sharing.
	BatchStats = core.BatchStats
	// Session is a long-lived evaluation context that reuses
	// time-travel snapshots, solver memos, and compiled reenactment
	// programs across calls (see Engine.NewSession).
	Session = core.Session
	// SessionStats reports a session's cache effectiveness.
	SessionStats = core.SessionStats
	// Template is a compiled parameterized what-if scenario: compile
	// once with $name slots, answer many bindings fast (see
	// Engine.CompileTemplate and Session.CompileTemplate).
	Template = core.Template
	// TemplateStats profiles a template's one-time compilation and
	// lifetime eval/recompile counters.
	TemplateStats = core.TemplateStats
	// TemplateEvalResult is one binding's outcome in Template.EvalBatch.
	TemplateEvalResult = core.TemplateEvalResult
	// AggregateQuery is a validated GROUP BY/aggregate query attached
	// to a what-if (see Engine.WhatIfAggregates and
	// Template.EvalAggregates).
	AggregateQuery = core.AggregateQuery
	// AggregateReport is one attached query's per-group
	// historical/hypothetical/delta rows.
	AggregateReport = core.AggregateReport
	// AggregateRow is one group's values in an AggregateReport.
	AggregateRow = core.AggregateRow
	// Delta is the annotated symmetric difference for one relation.
	Delta = delta.Result
	// DeltaSet maps relation names to their deltas.
	DeltaSet = delta.Set
	// Expr is a scalar expression or condition.
	Expr = expr.Expr
)

// Value kind constants.
const (
	KindNull   = types.KindNull
	KindInt    = types.KindInt
	KindFloat  = types.KindFloat
	KindString = types.KindString
	KindBool   = types.KindBool
)

// Query evaluation backends: the vectorized batch executor (the
// default), the tuple-at-a-time compiled executor, and the
// tree-walking interpreter kept as reference oracle.
const (
	ExecVectorized  = core.ExecVectorized
	ExecCompiled    = core.ExecCompiled
	ExecInterpreter = core.ExecInterpreter
)

// Evaluation variants of §13.3.
const (
	VariantNaive = core.VariantNaive
	VariantR     = core.VariantR
	VariantRPS   = core.VariantRPS
	VariantRDS   = core.VariantRDS
	VariantRFull = core.VariantRFull
)

// Value constructors.
var (
	// Int builds an integer value.
	Int = types.Int
	// Float builds a float value.
	Float = types.Float
	// Str builds a string value.
	Str = types.String
	// Bool builds a boolean value.
	Bool = types.Bool
	// Null builds the NULL value.
	Null = types.Null
)

// NewDatabase returns an empty database.
func NewDatabase() *Database { return storage.NewDatabase() }

// NewRelation returns an empty relation with the given schema.
func NewRelation(s *Schema) *Relation { return storage.NewRelation(s) }

// NewSchema builds a schema for relation rel.
func NewSchema(rel string, cols ...Column) *Schema { return schema.New(rel, cols...) }

// Col builds a schema column.
func Col(name string, t Kind) Column { return schema.Col(name, t) }

// NewTuple builds a tuple from values.
func NewTuple(vs ...Value) Tuple { return schema.NewTuple(vs...) }

// NewVersioned starts time-travel tracking from an initial state.
func NewVersioned(initial *Database) *VersionedDatabase { return storage.NewVersioned(initial) }

// NewEngine builds a what-if engine over a versioned database whose
// redo log is the transactional history.
func NewEngine(vdb *VersionedDatabase) *Engine { return core.New(vdb) }

// NewDurableEngine builds an engine over a durable history store
// (internal/persist via cmd/mahifd, or any core.DurableStore): appends
// commit to the store's write-ahead log before they become visible,
// so a restarted process recovers the exact acknowledged history.
func NewDurableEngine(store core.DurableStore) *Engine { return core.NewDurable(store) }

// Sentinel errors for invalid what-if queries, returned (wrapped) by
// WhatIf/Naive and the other evaluation entry points; test with
// errors.Is.
var (
	// ErrPosOutOfRange reports a modification position outside the
	// history.
	ErrPosOutOfRange = history.ErrPosOutOfRange
	// ErrEmptyHistory reports a replace or delete against an empty
	// history.
	ErrEmptyHistory = history.ErrEmptyHistory
)

// DefaultOptions enables all optimizations (R+PS+DS).
func DefaultOptions() Options { return core.DefaultOptions() }

// OptionsFor maps an evaluation variant to options.
func OptionsFor(v Variant) Options { return core.OptionsFor(v) }

// ParseStatement parses one SQL UPDATE/DELETE/INSERT statement.
func ParseStatement(src string) (Statement, error) { return sql.ParseStatement(src) }

// MustParseStatement is ParseStatement panicking on error.
func MustParseStatement(src string) Statement { return sql.MustParseStatement(src) }

// ParseStatements parses a ';'-separated script into a history.
func ParseStatements(src string) (History, error) { return sql.ParseStatements(src) }

// ParseCondition parses a standalone SQL condition.
func ParseCondition(src string) (Expr, error) { return sql.ParseCondition(src) }

// ParseAggregateQuery parses and validates a SQL aggregate query
// (SELECT [group cols,] aggs FROM rel [WHERE …] [GROUP BY cols]) for
// attachment to a what-if.
func ParseAggregateQuery(src string) (AggregateQuery, error) {
	q, err := sql.ParseQuery(src)
	if err != nil {
		return AggregateQuery{}, err
	}
	return core.NewAggregateQuery(src, q)
}

// ReplaceSQL builds a Replace modification from SQL (zero-based
// position).
func ReplaceSQL(pos int, src string) Modification {
	return history.Replace{Pos: pos, Stmt: sql.MustParseStatement(src)}
}

// InsertSQL builds an InsertStmt modification from SQL (zero-based
// position).
func InsertSQL(pos int, src string) Modification {
	return history.InsertStmt{Pos: pos, Stmt: sql.MustParseStatement(src)}
}

// DeleteAt builds a DeleteStmt modification (zero-based position).
func DeleteAt(pos int) Modification { return history.DeleteStmt{Pos: pos} }

// Parameter builds a $name template parameter slot for use in
// statement expressions (SQL spells it `$name`). Statements carrying
// slots compile into reusable templates via Engine.CompileTemplate;
// they cannot be appended to a history or answered by plain WhatIf
// until every slot is bound.
func Parameter(name string) Expr { return expr.Parameter(name) }

// EquivalenceResult reports a history equivalence proof (see
// ProveEquivalent).
type EquivalenceResult = progslice.EquivalenceResult

// ProveEquivalent checks whether two histories of updates and deletes
// over the relation described by s produce the same final state for
// every possible input — the application of the symbolic evaluation
// machinery that the paper proposes as future work (§14). A nil
// constraint checks all databases; pass a condition over variables
// x0_<column> to restrict the claim (e.g. to the value ranges of an
// actual instance).
//
// The verdict is conservative: Definitive=false means "not proven
// within budget", never a wrong answer.
func ProveEquivalent(h1, h2 History, s *Schema, constraint Expr) (*EquivalenceResult, error) {
	return progslice.ProveEquivalent(h1, h2, s, constraint, compile.Options{})
}

// ProveEquivalentCtx is ProveEquivalent under a context: the solver
// search observes cancellation at every branch & bound node.
func ProveEquivalentCtx(ctx context.Context, h1, h2 History, s *Schema, constraint Expr) (*EquivalenceResult, error) {
	return progslice.ProveEquivalentCtx(ctx, h1, h2, s, constraint, compile.Options{})
}
