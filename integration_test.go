package mahif_test

import (
	"strings"
	"testing"

	"github.com/mahif/mahif"
)

// buildInventory creates a two-relation database: stock plus an empty
// audit relation fed by INSERT…SELECT.
func buildInventory(t *testing.T) *mahif.VersionedDatabase {
	t.Helper()
	stockSchema := mahif.NewSchema("stock",
		mahif.Col("sku", mahif.KindInt),
		mahif.Col("qty", mahif.KindInt),
		mahif.Col("price", mahif.KindFloat),
	)
	stock := mahif.NewRelation(stockSchema)
	for i := int64(0); i < 200; i++ {
		stock.Add(mahif.NewTuple(mahif.Int(i), mahif.Int(i%50), mahif.Float(float64(i%90)+0.5)))
	}
	auditSchema := mahif.NewSchema("audit",
		mahif.Col("sku", mahif.KindInt),
		mahif.Col("qty", mahif.KindInt),
		mahif.Col("price", mahif.KindFloat),
	)
	db := mahif.NewDatabase()
	db.AddRelation(stock)
	db.AddRelation(mahif.NewRelation(auditSchema))
	return mahif.NewVersioned(db)
}

func applyAll(t *testing.T, vdb *mahif.VersionedDatabase, stmts ...string) {
	t.Helper()
	for _, s := range stmts {
		if err := vdb.Apply(mahif.MustParseStatement(s)); err != nil {
			t.Fatalf("applying %q: %v", s, err)
		}
	}
}

// assertAgreesWithNaive runs a modification under every variant and
// compares each against the naive answer over all relations.
func assertAgreesWithNaive(t *testing.T, vdb *mahif.VersionedDatabase, mods []mahif.Modification) mahif.DeltaSet {
	t.Helper()
	engine := mahif.NewEngine(vdb)
	want, _, err := engine.Naive(mods)
	if err != nil {
		t.Fatalf("naive: %v", err)
	}
	for _, v := range []mahif.Variant{mahif.VariantR, mahif.VariantRPS, mahif.VariantRDS, mahif.VariantRFull} {
		got, _, err := engine.WhatIf(mods, mahif.OptionsFor(v))
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		for rel, wd := range want {
			gd, ok := got[rel]
			if !ok {
				if !wd.Empty() {
					t.Fatalf("%s: missing delta for %s (naive has %d tuples)", v, rel, wd.Size())
				}
				continue
			}
			if !gd.Equal(wd) {
				t.Fatalf("%s: delta for %s differs\nnaive:\n%s\ngot:\n%s", v, rel, wd, gd)
			}
		}
	}
	return want
}

// TestMultiRelationInsertSelect: a modification on stock must propagate
// into the audit relation through INSERT…SELECT, across all variants.
func TestMultiRelationInsertSelect(t *testing.T) {
	vdb := buildInventory(t)
	applyAll(t, vdb,
		`UPDATE stock SET qty = qty + 10 WHERE price >= 60`,
		`INSERT INTO audit SELECT * FROM stock WHERE qty >= 55`,
		`UPDATE audit SET qty = 0 WHERE price < 70`,
	)
	mods := []mahif.Modification{
		mahif.ReplaceSQL(0, `UPDATE stock SET qty = qty + 20 WHERE price >= 60`),
	}
	want := assertAgreesWithNaive(t, vdb, mods)
	if want["audit"] == nil || want["audit"].Empty() {
		t.Fatal("expected the modification to reach the audit relation")
	}
}

// TestDeleteStatementModification: a what-if that removes a delete.
func TestDeleteStatementModification(t *testing.T) {
	vdb := buildInventory(t)
	applyAll(t, vdb,
		`DELETE FROM stock WHERE qty < 5`,
		`UPDATE stock SET price = price + 1 WHERE qty >= 40`,
	)
	d := assertAgreesWithNaive(t, vdb, []mahif.Modification{mahif.DeleteAt(0)})
	// Without the delete, the removed rows reappear: plus-only delta.
	if len(d["stock"].Minus) != 0 || len(d["stock"].Plus) == 0 {
		t.Errorf("expected plus-only delta, got %s", d["stock"])
	}
}

// TestInsertStatementModification: a what-if that adds a new statement.
func TestInsertStatementModification(t *testing.T) {
	vdb := buildInventory(t)
	applyAll(t, vdb,
		`UPDATE stock SET qty = qty + 1 WHERE price >= 50`,
		`UPDATE stock SET price = price * 2 WHERE qty >= 45`,
	)
	mods := []mahif.Modification{
		mahif.InsertSQL(1, `UPDATE stock SET qty = 0 WHERE price >= 80`),
	}
	d := assertAgreesWithNaive(t, vdb, mods)
	if d["stock"].Empty() {
		t.Error("inserting a zeroing update must change the state")
	}
}

// TestCrossClassReplacement: replacing an update with a delete.
func TestCrossClassReplacement(t *testing.T) {
	vdb := buildInventory(t)
	applyAll(t, vdb,
		`UPDATE stock SET qty = 0 WHERE price >= 85`,
		`UPDATE stock SET qty = qty + 1 WHERE qty <= 1`,
	)
	mods := []mahif.Modification{
		mahif.ReplaceSQL(0, `DELETE FROM stock WHERE price >= 85`),
	}
	d := assertAgreesWithNaive(t, vdb, mods)
	if len(d["stock"].Minus) == 0 {
		t.Error("turning the update into a delete must remove rows")
	}
}

// TestRelationChangeReplacement: the replacement statement targets a
// different relation than the original.
func TestRelationChangeReplacement(t *testing.T) {
	vdb := buildInventory(t)
	applyAll(t, vdb,
		`INSERT INTO audit SELECT * FROM stock WHERE price >= 80`,
		`UPDATE stock SET qty = 1 WHERE price >= 89`,
	)
	mods := []mahif.Modification{
		mahif.ReplaceSQL(1, `UPDATE audit SET qty = 1 WHERE price >= 89`),
	}
	d := assertAgreesWithNaive(t, vdb, mods)
	if d["stock"].Empty() || d["audit"].Empty() {
		t.Errorf("both relations must change: stock %d, audit %d tuples",
			d["stock"].Size(), d["audit"].Size())
	}
}

// TestModificationOfLaterStatement: the shared prefix before the first
// modification must be skipped via time travel, not reenacted.
func TestModificationOfLaterStatement(t *testing.T) {
	vdb := buildInventory(t)
	applyAll(t, vdb,
		`UPDATE stock SET qty = qty + 1 WHERE qty < 10`,
		`UPDATE stock SET qty = qty + 1 WHERE qty < 20`,
		`UPDATE stock SET price = 0 WHERE qty >= 45`,
	)
	engine := mahif.NewEngine(vdb)
	mods := []mahif.Modification{
		mahif.ReplaceSQL(2, `UPDATE stock SET price = 0 WHERE qty >= 48`),
	}
	d, stats, err := engine.WhatIf(mods, mahif.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalStatements != 1 {
		t.Errorf("suffix statements = %d, want 1 (prefix handled by time travel)", stats.TotalStatements)
	}
	naive, _, err := engine.Naive(mods)
	if err != nil {
		t.Fatal(err)
	}
	if !naive["stock"].Equal(d["stock"]) {
		t.Errorf("naive and optimized disagree:\n%s\nvs\n%s", naive["stock"], d["stock"])
	}
}

// TestEmptyDelta: a modification that provably changes nothing.
func TestEmptyDelta(t *testing.T) {
	vdb := buildInventory(t)
	applyAll(t, vdb, `UPDATE stock SET qty = 7 WHERE price >= 89`)
	// The replacement has a different condition but selects the same
	// rows (price is at most 89.5 and prices end in .5).
	mods := []mahif.Modification{
		mahif.ReplaceSQL(0, `UPDATE stock SET qty = 7 WHERE price > 88.6`),
	}
	d := assertAgreesWithNaive(t, vdb, mods)
	if !d["stock"].Empty() {
		t.Errorf("expected empty delta, got %s", d["stock"])
	}
}

// TestProveEquivalentFacade exercises the public equivalence API.
func TestProveEquivalentFacade(t *testing.T) {
	s := mahif.NewSchema("stock",
		mahif.Col("sku", mahif.KindInt),
		mahif.Col("qty", mahif.KindInt),
		mahif.Col("price", mahif.KindFloat),
	)
	h1, err := mahif.ParseStatements(`
		UPDATE stock SET qty = 0 WHERE price >= 50;
		UPDATE stock SET qty = qty + 1 WHERE price < 40;
	`)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := mahif.ParseStatements(`
		UPDATE stock SET qty = qty + 1 WHERE price < 40;
		UPDATE stock SET qty = 0 WHERE price >= 50;
	`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mahif.ProveEquivalent(h1, h2, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Definitive || !res.Equivalent {
		t.Errorf("commuting histories not proven equivalent: %+v", res)
	}
}

// TestStatsPlausibility sanity-checks the reported statistics.
func TestStatsPlausibility(t *testing.T) {
	vdb := buildInventory(t)
	applyAll(t, vdb,
		`UPDATE stock SET qty = qty + 1 WHERE price >= 70`,
		`UPDATE stock SET qty = qty + 2 WHERE price < 20`,
		`UPDATE stock SET qty = qty + 3 WHERE price >= 70`,
	)
	engine := mahif.NewEngine(vdb)
	mods := []mahif.Modification{
		mahif.ReplaceSQL(0, `UPDATE stock SET qty = qty + 1 WHERE price >= 75`),
	}
	_, stats, err := engine.WhatIf(mods, mahif.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalStatements != 3 {
		t.Errorf("TotalStatements = %d", stats.TotalStatements)
	}
	// The price<20 update is independent; the price>=70 one dependent.
	if stats.KeptStatements != 2 {
		t.Errorf("KeptStatements = %d, want 2 (slices: %+v)", stats.KeptStatements, stats.Slices)
	}
	if stats.Total <= 0 || stats.SolverTests == 0 {
		t.Errorf("implausible stats: %+v", stats)
	}
	naive, nstats, err := engine.Naive(mods)
	if err != nil {
		t.Fatal(err)
	}
	if nstats.Total <= 0 || nstats.Creation <= 0 {
		t.Errorf("implausible naive stats: %+v", nstats)
	}
	_ = naive
}

// TestDeltaRendering checks the human-readable output format.
func TestDeltaRendering(t *testing.T) {
	vdb := buildInventory(t)
	applyAll(t, vdb, `UPDATE stock SET qty = 99 WHERE sku = 3`)
	engine := mahif.NewEngine(vdb)
	d, _, err := engine.WhatIf([]mahif.Modification{
		mahif.ReplaceSQL(0, `UPDATE stock SET qty = 98 WHERE sku = 3`),
	}, mahif.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	out := d.String()
	if !strings.Contains(out, "- (3, 99") || !strings.Contains(out, "+ (3, 98") {
		t.Errorf("rendering missing annotations:\n%s", out)
	}
}
