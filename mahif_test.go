package mahif_test

import (
	"testing"

	"github.com/mahif/mahif"
)

// paperExample builds the running example of the paper (Fig. 1–2): the
// Order relation and the three-update shipping fee history.
func paperExample(t *testing.T) *mahif.VersionedDatabase {
	t.Helper()
	s := mahif.NewSchema("orders",
		mahif.Col("id", mahif.KindInt),
		mahif.Col("customer", mahif.KindString),
		mahif.Col("country", mahif.KindString),
		mahif.Col("price", mahif.KindInt),
		mahif.Col("shippingfee", mahif.KindInt),
	)
	rel := mahif.NewRelation(s)
	rel.Add(
		mahif.NewTuple(mahif.Int(11), mahif.Str("Susan"), mahif.Str("UK"), mahif.Int(20), mahif.Int(5)),
		mahif.NewTuple(mahif.Int(12), mahif.Str("Alex"), mahif.Str("UK"), mahif.Int(50), mahif.Int(5)),
		mahif.NewTuple(mahif.Int(13), mahif.Str("Jack"), mahif.Str("US"), mahif.Int(60), mahif.Int(3)),
		mahif.NewTuple(mahif.Int(14), mahif.Str("Mark"), mahif.Str("US"), mahif.Int(30), mahif.Int(4)),
	)
	db := mahif.NewDatabase()
	db.AddRelation(rel)
	vdb := mahif.NewVersioned(db)
	for _, stmt := range []string{
		`UPDATE orders SET shippingfee = 0 WHERE price >= 50`,
		`UPDATE orders SET shippingfee = shippingfee + 5 WHERE country = 'UK' AND price <= 100`,
		`UPDATE orders SET shippingfee = shippingfee - 2 WHERE price <= 30 AND shippingfee >= 10`,
	} {
		if err := vdb.Apply(mahif.MustParseStatement(stmt)); err != nil {
			t.Fatalf("applying %q: %v", stmt, err)
		}
	}
	return vdb
}

// TestPaperRunningExample reproduces Example 2: replacing u1 with u1'
// (price threshold 50 → 60) must yield Δ = {−(12,…,5), +(12,…,10)}.
func TestPaperRunningExample(t *testing.T) {
	mods := []mahif.Modification{
		mahif.ReplaceSQL(0, `UPDATE orders SET shippingfee = 0 WHERE price >= 60`),
	}

	for _, variant := range []mahif.Variant{
		mahif.VariantR, mahif.VariantRPS, mahif.VariantRDS, mahif.VariantRFull,
	} {
		t.Run(string(variant), func(t *testing.T) {
			vdb := paperExample(t)
			engine := mahif.NewEngine(vdb)
			d, _, err := engine.WhatIf(mods, mahif.OptionsFor(variant))
			if err != nil {
				t.Fatalf("WhatIf: %v", err)
			}
			res := d["orders"]
			if res == nil {
				t.Fatalf("no delta for orders; got %v", d)
			}
			if len(res.Minus) != 1 || len(res.Plus) != 1 {
				t.Fatalf("want 1 minus / 1 plus tuple, got %d/%d:\n%s",
					len(res.Minus), len(res.Plus), res)
			}
			wantMinus := mahif.NewTuple(mahif.Int(12), mahif.Str("Alex"), mahif.Str("UK"), mahif.Int(50), mahif.Int(5))
			wantPlus := mahif.NewTuple(mahif.Int(12), mahif.Str("Alex"), mahif.Str("UK"), mahif.Int(50), mahif.Int(10))
			if !res.Minus[0].Equal(wantMinus) {
				t.Errorf("minus tuple = %s, want %s", res.Minus[0], wantMinus)
			}
			if !res.Plus[0].Equal(wantPlus) {
				t.Errorf("plus tuple = %s, want %s", res.Plus[0], wantPlus)
			}
		})
	}
}

// TestNaiveMatchesReenactment checks Alg. 1 and Alg. 2 agree on the
// running example.
func TestNaiveMatchesReenactment(t *testing.T) {
	mods := []mahif.Modification{
		mahif.ReplaceSQL(0, `UPDATE orders SET shippingfee = 0 WHERE price >= 60`),
	}
	vdb := paperExample(t)
	engine := mahif.NewEngine(vdb)
	naive, _, err := engine.Naive(mods)
	if err != nil {
		t.Fatalf("Naive: %v", err)
	}
	fast, _, err := engine.WhatIf(mods, mahif.DefaultOptions())
	if err != nil {
		t.Fatalf("WhatIf: %v", err)
	}
	if !naive["orders"].Equal(fast["orders"]) {
		t.Fatalf("naive delta:\n%s\nreenactment delta:\n%s", naive["orders"], fast["orders"])
	}
}
