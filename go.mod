module github.com/mahif/mahif

go 1.22
