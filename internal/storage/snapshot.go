package storage

import (
	"fmt"
	"sync"
)

// SnapshotCache serves shared, read-only time-travel snapshots of one
// versioned database. A batch of what-if scenarios over the same history
// time-travels to a handful of distinct versions — usually just one, the
// state before the earliest modified statement — so the cache computes
// each requested version once and hands the same *Database to every
// caller instead of replaying the redo log per scenario.
//
// Reconstruction is prefix-aware: a missing version is built from the
// nearest earlier materialized state (a cached snapshot, a store
// checkpoint, or the base), so scenarios whose first-modified positions
// are close share almost all replay work.
//
// Contract: databases returned by Snapshot are shared and MUST be
// treated as read-only. The reenactment path of the engine only reads
// them (Alg. 2 evaluates queries over D and materializes fresh results);
// anything that needs to mutate the state must Clone first, which is the
// copy-on-write boundary. The cache also assumes the underlying store is
// quiescent — no concurrent Apply — for its lifetime.
type SnapshotCache struct {
	vdb *VersionedDatabase

	mu      sync.Mutex
	entries map[int]*snapshotEntry
	ready   map[int]*Database // completed snapshots, for prefix reuse
	hits    int
	misses  int
}

// snapshotEntry builds one version exactly once; concurrent requesters
// block on the same Once and share the result.
type snapshotEntry struct {
	once sync.Once
	db   *Database
	err  error
}

// NewSnapshotCache builds a cache over vdb.
func NewSnapshotCache(vdb *VersionedDatabase) *SnapshotCache {
	return &SnapshotCache{
		vdb:     vdb,
		entries: map[int]*snapshotEntry{},
		ready:   map[int]*Database{},
	}
}

// Snapshot returns the shared read-only state after the first i
// statements (Version semantics). Safe for concurrent use.
func (c *SnapshotCache) Snapshot(i int) (*Database, error) {
	if i < 0 || i > len(c.vdb.log) {
		return nil, fmt.Errorf("storage: snapshot %d out of range [0,%d]", i, len(c.vdb.log))
	}
	c.mu.Lock()
	e, ok := c.entries[i]
	if !ok {
		e = &snapshotEntry{}
		c.entries[i] = e
		c.misses++
	} else {
		c.hits++
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.db, e.err = c.build(i)
		if e.err == nil {
			c.mu.Lock()
			c.ready[i] = e.db
			c.mu.Unlock()
		}
	})
	return e.db, e.err
}

// build reconstructs version i from the nearest earlier materialized
// state. Base, checkpoints, and completed snapshots are all immutable
// once created, so when one lands exactly on i it is returned without
// copying; otherwise it is cloned and the log replayed forward.
func (c *SnapshotCache) build(i int) (*Database, error) {
	v := c.vdb
	if i == len(v.log) {
		// The requested version is the live current state; freeze a
		// private copy once so the shared snapshot cannot alias it.
		return v.current.Clone(), nil
	}
	start, db := v.nearestCheckpoint(i)
	c.mu.Lock()
	for at, snap := range c.ready {
		if at <= i && at > start {
			start, db = at, snap
		}
	}
	c.mu.Unlock()
	if start == i {
		return db, nil
	}
	return v.replay(start, db, i)
}

// Stats reports how many Snapshot calls were served from the cache
// versus computed. A call that joins an in-flight computation counts as
// a hit: it shares the result.
func (c *SnapshotCache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
