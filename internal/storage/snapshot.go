package storage

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// SnapshotCache serves shared, read-only time-travel snapshots of one
// versioned database. A batch of what-if scenarios over the same history
// time-travels to a handful of distinct versions — usually just one, the
// state before the earliest modified statement — so the cache computes
// each requested version once and hands the same *Database to every
// caller instead of replaying the redo log per scenario.
//
// Reconstruction is prefix-aware: a missing version is built from the
// nearest earlier materialized state (a cached snapshot, a store
// checkpoint, or the base), so scenarios whose first-modified positions
// are close share almost all replay work.
//
// Contract: databases returned by Snapshot are shared and MUST be
// treated as read-only. The reenactment path of the engine only reads
// them (Alg. 2 evaluates queries over D and materializes fresh results);
// anything that needs to mutate the state must Clone first, which is the
// copy-on-write boundary. The underlying store may advance concurrently
// (live append): the history is append-only, so every cached snapshot —
// including one taken at what was then the tip — remains the correct
// state after its first i statements forever.
// Retention is bounded: completed snapshots beyond the limit are
// evicted least-recently-used. Without a bound, a session that issues
// a naive query after every append pins a fresh tip clone per version
// forever (each version is touched exactly once, so no amount of reuse
// saves it). Eviction only ever drops completed entries — in-flight
// builds and their waiters are untouched — and an evicted version is
// simply rebuilt on next demand, so the bound trades replay time for
// memory, never correctness.
type SnapshotCache struct {
	vdb *VersionedDatabase

	mu         sync.Mutex
	limit      int // max completed snapshots retained; 0 = unbounded
	entries    map[int]*snapshotEntry
	ready      map[int]*Database // completed snapshots, for prefix reuse
	lastUse    map[int]int64     // version → tick of last touch (LRU order)
	tips       map[int]bool      // versions frozen from the live tip (private full copies)
	tick       int64
	hits       int
	misses     int
	evicted    int
	tipEvicted int
}

// snapshotEntry builds one version exactly once: the caller that
// creates the entry runs the build and closes done; concurrent
// requesters wait on done — or give up when their own context dies —
// and share the result.
type snapshotEntry struct {
	done chan struct{}
	db   *Database
	err  error
}

// DefaultSnapshotCacheLimit bounds a new cache's resident completed
// snapshots. Batches touch a handful of versions, so the default is
// generous for them while keeping long-lived append+query sessions
// from growing without bound.
const DefaultSnapshotCacheLimit = 64

// NewSnapshotCache builds a cache over vdb with the default retention
// bound. Use SetLimit to tune or disable it.
func NewSnapshotCache(vdb *VersionedDatabase) *SnapshotCache {
	return &SnapshotCache{
		vdb:     vdb,
		limit:   DefaultSnapshotCacheLimit,
		entries: map[int]*snapshotEntry{},
		ready:   map[int]*Database{},
		lastUse: map[int]int64{},
		tips:    map[int]bool{},
	}
}

// SetLimit changes the maximum number of completed snapshots retained
// (0 = unbounded), evicting immediately if the cache is over the new
// bound.
func (c *SnapshotCache) SetLimit(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.limit = n
	c.evictLocked()
}

// touchLocked records a use of version i for LRU ordering.
func (c *SnapshotCache) touchLocked(i int) {
	c.tick++
	c.lastUse[i] = c.tick
}

// evictLocked drops least-recently-used completed snapshots until the
// cache is within its bound.
func (c *SnapshotCache) evictLocked() {
	if c.limit <= 0 {
		return
	}
	for len(c.ready) > c.limit {
		victim, oldest := -1, int64(0)
		for v := range c.ready {
			if u := c.lastUse[v]; victim < 0 || u < oldest {
				victim, oldest = v, u
			}
		}
		delete(c.ready, victim)
		delete(c.lastUse, victim)
		delete(c.entries, victim)
		delete(c.tips, victim)
		c.evicted++
	}
}

// evictTipsLocked eagerly drops tip-pinned snapshots superseded by a
// newer tip build. Tip snapshots are private full copies of the live
// state — the most expensive entries the cache holds — and an
// append+query session touches each tip version exactly once, so LRU
// recency never retires them before the bound fills with dead weight.
// A superseded tip that is requested again is simply rebuilt by
// replay. Entries not yet installed in ready (a concurrent build
// between marking and installing) keep their marker and are reaped by
// the next tip build.
func (c *SnapshotCache) evictTipsLocked(latest int) {
	for v := range c.tips {
		if v >= latest {
			continue
		}
		if _, ok := c.ready[v]; !ok {
			continue
		}
		delete(c.ready, v)
		delete(c.lastUse, v)
		delete(c.entries, v)
		delete(c.tips, v)
		c.tipEvicted++
	}
}

// Snapshot returns the shared read-only state after the first i
// statements (Version semantics). Safe for concurrent use.
func (c *SnapshotCache) Snapshot(i int) (*Database, error) {
	return c.SnapshotCtx(context.Background(), i)
}

// SnapshotCtx is Snapshot under a context. The replay that builds a
// missing version observes cancellation between statements; a build
// abandoned by cancellation is evicted rather than cached, so the
// cache stays consistent. Joining callers honor their own contexts:
// a waiter whose deadline expires returns ctx.Err() immediately
// (the builder keeps going for everyone else), and a waiter that
// outlives a cancelled build restarts it instead of inheriting the
// foreign failure — one client disconnecting never surfaces as an
// error to an innocent concurrent client. Hit/miss counters record
// completed shares and builds only, never abandoned attempts.
func (c *SnapshotCache) SnapshotCtx(ctx context.Context, i int) (*Database, error) {
	if n := c.vdb.NumVersions(); i < 0 || i > n {
		return nil, fmt.Errorf("storage: snapshot %d out of range [0,%d]", i, n)
	}
	for {
		c.mu.Lock()
		e, ok := c.entries[i]
		if !ok {
			e = &snapshotEntry{done: make(chan struct{})}
			c.entries[i] = e
		}
		c.mu.Unlock()
		if !ok {
			// We created the entry: we build, under our context.
			e.db, e.err = c.build(ctx, i)
			if e.err == nil {
				c.mu.Lock()
				c.ready[i] = e.db
				c.misses++
				c.touchLocked(i)
				c.evictLocked()
				c.mu.Unlock()
			}
			close(e.done)
		} else {
			select {
			case <-e.done:
			case <-ctx.Done():
				return nil, ctx.Err() // our deadline; don't wait out the build
			}
		}
		if e.err == nil || (!errors.Is(e.err, context.Canceled) && !errors.Is(e.err, context.DeadlineExceeded)) {
			if ok && e.err == nil {
				c.mu.Lock()
				c.hits++
				c.touchLocked(i)
				c.mu.Unlock()
			}
			return e.db, e.err
		}
		// The build was abandoned by its builder's context. Evict the
		// entry so the version can be rebuilt.
		c.mu.Lock()
		if c.entries[i] == e {
			delete(c.entries, i)
		}
		c.mu.Unlock()
		if err := ctx.Err(); err != nil {
			return nil, err // it was our context; report our own error
		}
		// A joined builder's context died but ours is alive: retry.
	}
}

// build reconstructs version i from the nearest earlier materialized
// state. Base, checkpoints, and completed snapshots are all immutable
// once created, so when one lands exactly on i it is returned without
// copying; otherwise it is cloned and the log replayed forward.
func (c *SnapshotCache) build(ctx context.Context, i int) (*Database, error) {
	start, db, log, private, err := c.vdb.replayPlan(i)
	if err != nil {
		return nil, err
	}
	if private {
		// The requested version was the tip: replayPlan froze a private
		// copy of the live state, so the shared snapshot cannot alias it.
		// Mark it so a later tip build evicts it eagerly once the history
		// has moved past it.
		c.mu.Lock()
		c.tips[i] = true
		c.evictTipsLocked(i)
		c.mu.Unlock()
		return db, nil
	}
	c.mu.Lock()
	for at, snap := range c.ready {
		if at <= i && at > start {
			start, db = at, snap
		}
	}
	if start > 0 {
		if _, ok := c.ready[start]; ok {
			c.touchLocked(start) // keep hot replay bases resident
		}
	}
	c.mu.Unlock()
	if start == i {
		return db, nil
	}
	return replayCtx(ctx, log, start, db, i)
}

// Stats reports how many Snapshot calls were served from the cache
// versus computed. A call that joins an in-flight computation counts as
// a hit: it shares the result.
func (c *SnapshotCache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Evictions reports how many completed snapshots the retention bound
// has dropped.
func (c *SnapshotCache) Evictions() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evicted
}

// Resident reports how many completed snapshots are currently held.
func (c *SnapshotCache) Resident() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.ready)
}

// TipEvictions reports how many superseded tip-pinned snapshots were
// eagerly dropped (distinct from the LRU bound's Evictions).
func (c *SnapshotCache) TipEvictions() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tipEvicted
}

// TipResident reports how many tip-pinned snapshots (private full
// copies of a then-live state) are currently held. Under eager
// eviction this stays at most 1 plus any in-flight builds.
func (c *SnapshotCache) TipResident() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for v := range c.tips {
		if _, ok := c.ready[v]; ok {
			n++
		}
	}
	return n
}
