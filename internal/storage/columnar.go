package storage

import (
	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/types"
)

// ColVec is one column of rows in columnar form: a single-kind typed
// lane (8-byte ints or floats, or a string slice) plus a null mask, or
// the boxed fallback lane of tagged types.Value cells when the column
// mixes kinds at runtime. The vectorized executor flows batches of
// ColVecs so its hot kernels (comparisons, SET arithmetic, hashing)
// run branch-free over machine types instead of paying a 48-byte
// tagged-union load and a kind branch per cell; the binary checkpoint
// codec writes the same representation as typed pages.
//
// Exactly one lane is active, selected by Kind:
//
//	KindInt    → Ints   (Nulls marks NULL cells; their payload is garbage)
//	KindFloat  → Floats (likewise)
//	KindString → Strs   (likewise)
//	KindNull   → Vals   (boxed fallback: every cell carries its own kind)
//
// A nil Nulls mask means the typed lane holds no NULLs — the common
// case, and the one the tight loops specialize on. Bool columns and
// mixed-kind columns always take the boxed lane: single-kind bools are
// too rare to earn a lane.
type ColVec struct {
	Kind   types.Kind
	Ints   []int64
	Floats []float64
	Strs   []string
	Nulls  []bool
	Vals   []types.Value
}

// Len returns the number of cells in the active lane.
func (c *ColVec) Len() int {
	switch c.Kind {
	case types.KindInt:
		return len(c.Ints)
	case types.KindFloat:
		return len(c.Floats)
	case types.KindString:
		return len(c.Strs)
	}
	return len(c.Vals)
}

// IsNull reports whether cell r is NULL.
func (c *ColVec) IsNull(r int) bool {
	if c.Kind == types.KindNull {
		return c.Vals[r].IsNull()
	}
	return c.Nulls != nil && c.Nulls[r]
}

// Value boxes cell r. It is the typed-to-boxed boundary for code
// outside the specialized kernels (generic expression fallbacks, join
// output assembly, candidate verification).
func (c *ColVec) Value(r int) types.Value {
	switch c.Kind {
	case types.KindInt:
		if c.Nulls != nil && c.Nulls[r] {
			return types.Null()
		}
		return types.Int(c.Ints[r])
	case types.KindFloat:
		if c.Nulls != nil && c.Nulls[r] {
			return types.Null()
		}
		return types.Float(c.Floats[r])
	case types.KindString:
		if c.Nulls != nil && c.Nulls[r] {
			return types.Null()
		}
		return types.String(c.Strs[r])
	}
	return c.Vals[r]
}

// BoxInto writes the boxed view of the live cells into out (sel nil →
// cells 0..n-1, else the listed rows). Positions outside the selection
// are left untouched, matching the executor's batch contract.
func (c *ColVec) BoxInto(out []types.Value, sel []int, n int) {
	switch c.Kind {
	case types.KindInt:
		if sel == nil {
			for r := 0; r < n; r++ {
				out[r] = types.Int(c.Ints[r])
			}
		} else {
			for _, r := range sel {
				out[r] = types.Int(c.Ints[r])
			}
		}
	case types.KindFloat:
		if sel == nil {
			for r := 0; r < n; r++ {
				out[r] = types.Float(c.Floats[r])
			}
		} else {
			for _, r := range sel {
				out[r] = types.Float(c.Floats[r])
			}
		}
	case types.KindString:
		if sel == nil {
			for r := 0; r < n; r++ {
				out[r] = types.String(c.Strs[r])
			}
		} else {
			for _, r := range sel {
				out[r] = types.String(c.Strs[r])
			}
		}
	default:
		if sel == nil {
			copy(out[:n], c.Vals[:n])
		} else {
			for _, r := range sel {
				out[r] = c.Vals[r]
			}
		}
		return
	}
	if c.Nulls != nil {
		if sel == nil {
			for r := 0; r < n; r++ {
				if c.Nulls[r] {
					out[r] = types.Null()
				}
			}
		} else {
			for _, r := range sel {
				if c.Nulls[r] {
					out[r] = types.Null()
				}
			}
		}
	}
}

// FoldHash folds every live cell into its row's FNV-1a accumulator
// (the per-column step of a row-wise typed tuple hash, equal to
// chaining schema.HashValue over boxed cells).
func (c *ColVec) FoldHash(hs []uint64, sel []int, n int) {
	switch c.Kind {
	case types.KindInt:
		if sel == nil {
			for r := 0; r < n; r++ {
				if c.Nulls != nil && c.Nulls[r] {
					hs[r] = schema.HashNull(hs[r])
					continue
				}
				hs[r] = schema.HashNumeric(hs[r], float64(c.Ints[r]))
			}
		} else {
			for _, r := range sel {
				if c.Nulls != nil && c.Nulls[r] {
					hs[r] = schema.HashNull(hs[r])
					continue
				}
				hs[r] = schema.HashNumeric(hs[r], float64(c.Ints[r]))
			}
		}
	case types.KindFloat:
		if sel == nil {
			for r := 0; r < n; r++ {
				if c.Nulls != nil && c.Nulls[r] {
					hs[r] = schema.HashNull(hs[r])
					continue
				}
				hs[r] = schema.HashNumeric(hs[r], c.Floats[r])
			}
		} else {
			for _, r := range sel {
				if c.Nulls != nil && c.Nulls[r] {
					hs[r] = schema.HashNull(hs[r])
					continue
				}
				hs[r] = schema.HashNumeric(hs[r], c.Floats[r])
			}
		}
	case types.KindString:
		if sel == nil {
			for r := 0; r < n; r++ {
				if c.Nulls != nil && c.Nulls[r] {
					hs[r] = schema.HashNull(hs[r])
					continue
				}
				hs[r] = schema.HashString(hs[r], c.Strs[r])
			}
		} else {
			for _, r := range sel {
				if c.Nulls != nil && c.Nulls[r] {
					hs[r] = schema.HashNull(hs[r])
					continue
				}
				hs[r] = schema.HashString(hs[r], c.Strs[r])
			}
		}
	default:
		if sel == nil {
			for r := 0; r < n; r++ {
				hs[r] = schema.HashValue(hs[r], c.Vals[r])
			}
		} else {
			for _, r := range sel {
				hs[r] = schema.HashValue(hs[r], c.Vals[r])
			}
		}
	}
}

// HashCell folds cell r into h; ok is false for a NULL cell (the
// join-key contract: NULL keys never match, so callers skip the row).
func (c *ColVec) HashCell(h uint64, r int) (uint64, bool) {
	switch c.Kind {
	case types.KindInt:
		if c.Nulls != nil && c.Nulls[r] {
			return 0, false
		}
		return schema.HashNumeric(h, float64(c.Ints[r])), true
	case types.KindFloat:
		if c.Nulls != nil && c.Nulls[r] {
			return 0, false
		}
		return schema.HashNumeric(h, c.Floats[r]), true
	case types.KindString:
		if c.Nulls != nil && c.Nulls[r] {
			return 0, false
		}
		return schema.HashString(h, c.Strs[r]), true
	}
	v := c.Vals[r]
	if v.IsNull() {
		return 0, false
	}
	return schema.HashValue(h, v), true
}

// grow returns s resized to n cells, reusing the backing array when it
// is large enough (cell contents are unspecified either way).
func grow[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// FillFromTuples transposes column col of rows into c, attempting the
// typed lane want (a schema column kind) and falling back to the boxed
// lane on the first cell whose runtime kind is neither want nor NULL —
// so a mixed-kind column costs one partial pass, never wrong data.
// Backing arrays are reused across fills; the null mask is rebuilt
// (nil when the window holds no NULLs). Rows must have at least col+1
// cells.
func (c *ColVec) FillFromTuples(rows []schema.Tuple, col int, want types.Kind) {
	n := len(rows)
	c.Nulls = nil
	switch want {
	case types.KindInt:
		c.Ints = grow(c.Ints, n)
		for i, t := range rows {
			v := t[col]
			switch v.Kind() {
			case types.KindInt:
				c.Ints[i] = v.AsInt()
			case types.KindNull:
				c.Ints[i] = 0
				c.setNull(i, n)
			default:
				c.fillBoxed(rows, col)
				return
			}
		}
		c.Kind = types.KindInt
	case types.KindFloat:
		c.Floats = grow(c.Floats, n)
		for i, t := range rows {
			v := t[col]
			switch v.Kind() {
			case types.KindFloat:
				c.Floats[i] = v.AsFloat()
			case types.KindNull:
				c.Floats[i] = 0
				c.setNull(i, n)
			default:
				c.fillBoxed(rows, col)
				return
			}
		}
		c.Kind = types.KindFloat
	case types.KindString:
		c.Strs = grow(c.Strs, n)
		for i, t := range rows {
			v := t[col]
			switch v.Kind() {
			case types.KindString:
				c.Strs[i] = v.AsString()
			case types.KindNull:
				c.Strs[i] = ""
				c.setNull(i, n)
			default:
				c.fillBoxed(rows, col)
				return
			}
		}
		c.Kind = types.KindString
	default:
		c.fillBoxed(rows, col)
	}
}

// setNull marks cell i NULL, allocating the n-cell mask on first use.
func (c *ColVec) setNull(i, n int) {
	if c.Nulls == nil {
		c.Nulls = make([]bool, n)
	}
	c.Nulls[i] = true
}

// SetCellNull marks cell r of a typed lane NULL (its payload is left as
// garbage), allocating the n-cell mask on first use. Kernels that
// overwrite individual cells of a lane use it to maintain the mask.
func (c *ColVec) SetCellNull(r, n int) { c.setNull(r, n) }

// ClearCellNull clears cell r's NULL flag if a mask exists.
func (c *ColVec) ClearCellNull(r int) {
	if c.Nulls != nil {
		c.Nulls[r] = false
	}
}

// fillBoxed is the mixed-kind fallback of FillFromTuples.
func (c *ColVec) fillBoxed(rows []schema.Tuple, col int) {
	c.Kind = types.KindNull
	c.Nulls = nil
	c.Vals = grow(c.Vals, len(rows))
	for i, t := range rows {
		c.Vals[i] = t[col]
	}
}

// CompactFrom gathers the live cells of src (sel nil → the first n
// cells) into c as a dense lane of the same kind, reusing c's backing
// arrays. It is the freeze step of the parallel scan merge.
func (c *ColVec) CompactFrom(src *ColVec, sel []int, n int) {
	live := n
	if sel != nil {
		live = len(sel)
	}
	c.Kind = src.Kind
	c.Nulls = nil
	if src.Nulls != nil {
		c.Nulls = grow(c.Nulls, live)
		if sel == nil {
			copy(c.Nulls, src.Nulls[:live])
		} else {
			for i, r := range sel {
				c.Nulls[i] = src.Nulls[r]
			}
		}
	}
	switch src.Kind {
	case types.KindInt:
		c.Ints = grow(c.Ints, live)
		if sel == nil {
			copy(c.Ints, src.Ints[:live])
		} else {
			for i, r := range sel {
				c.Ints[i] = src.Ints[r]
			}
		}
	case types.KindFloat:
		c.Floats = grow(c.Floats, live)
		if sel == nil {
			copy(c.Floats, src.Floats[:live])
		} else {
			for i, r := range sel {
				c.Floats[i] = src.Floats[r]
			}
		}
	case types.KindString:
		c.Strs = grow(c.Strs, live)
		if sel == nil {
			copy(c.Strs, src.Strs[:live])
		} else {
			for i, r := range sel {
				c.Strs[i] = src.Strs[r]
			}
		}
	default:
		c.Vals = grow(c.Vals, live)
		if sel == nil {
			copy(c.Vals, src.Vals[:live])
		} else {
			for i, r := range sel {
				c.Vals[i] = src.Vals[r]
			}
		}
	}
}

// ColumnarView is a point-in-time columnar transpose of a relation:
// one ColVec per schema column, typed wherever the column is
// single-kind at that instant. It shares no storage with the relation
// and does not track later mutation — build it from a stable snapshot
// (the same quiescence contract as reading Relation.Tuples).
type ColumnarView struct {
	Schema *schema.Schema
	Rows   int
	Cols   []ColVec
}

// BuildColumnar transposes r into a columnar view, inferring each
// column's lane from the schema kind with per-cell verification (a
// column whose runtime cells deviate from the declared kind takes the
// boxed lane, so the view is always faithful).
func BuildColumnar(r *Relation) *ColumnarView {
	v := &ColumnarView{Schema: r.Schema, Rows: len(r.Tuples), Cols: make([]ColVec, r.Schema.Arity())}
	for c := range v.Cols {
		v.Cols[c].FillFromTuples(r.Tuples, c, r.Schema.Columns[c].Type)
	}
	return v
}

// Columnar builds the columnar view of the relation's current tuples.
func (r *Relation) Columnar() *ColumnarView { return BuildColumnar(r) }

// Relation materializes the view back into row-major tuples (one flat
// value arena for the whole relation). It is the read path of the
// columnar checkpoint codec.
func (v *ColumnarView) Relation() *Relation {
	out := NewRelation(v.Schema)
	if v.Rows == 0 {
		return out
	}
	arity := len(v.Cols)
	flat := make([]types.Value, v.Rows*arity)
	out.Tuples = make([]schema.Tuple, v.Rows)
	for i := range out.Tuples {
		out.Tuples[i] = schema.Tuple(flat[i*arity : (i+1)*arity : (i+1)*arity])
	}
	for c := range v.Cols {
		col := &v.Cols[c]
		for r := 0; r < v.Rows; r++ {
			flat[r*arity+c] = col.Value(r)
		}
	}
	return out
}
