package storage

import (
	"math"
	"math/rand"
	"testing"

	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/types"
)

func TestTupleIndexMultiset(t *testing.T) {
	r := intRel("t", 1, 2, 2, 3, 3, 3)
	ix := r.Index()
	if ix.Len() != 6 || ix.Distinct() != 3 {
		t.Fatalf("Len=%d Distinct=%d, want 6/3", ix.Len(), ix.Distinct())
	}
	two := schema.Tuple{types.Int(2)}
	if ix.Count(two) != 2 {
		t.Fatalf("Count(2) = %d", ix.Count(two))
	}
	if !ix.Remove(two) || ix.Count(two) != 1 || ix.Len() != 5 {
		t.Fatal("Remove did not decrement")
	}
	if !ix.Remove(two) || ix.Remove(two) {
		t.Fatal("Remove past zero succeeded")
	}
	if ix.Count(schema.Tuple{types.Int(9)}) != 0 {
		t.Fatal("absent tuple has nonzero count")
	}
	// Range skips exhausted entries.
	seen := 0
	ix.Range(func(tp schema.Tuple, count int) { seen += count })
	if seen != 4 {
		t.Fatalf("Range total = %d, want 4", seen)
	}
}

// TestTupleIndexCrossKindNumeric pins the Key-compatible equivalence:
// 1 (int) and 1.0 (float) are one multiset element, '1' (string) is
// not.
func TestTupleIndexCrossKindNumeric(t *testing.T) {
	ix := NewTupleIndex(0)
	ix.Add(schema.Tuple{types.Int(1)})
	ix.Add(schema.Tuple{types.Float(1.0)})
	ix.Add(schema.Tuple{types.String("1")})
	if got := ix.Count(schema.Tuple{types.Int(1)}); got != 2 {
		t.Fatalf("Count(1) = %d, want 2 (int+float)", got)
	}
	if got := ix.Count(schema.Tuple{types.String("1")}); got != 1 {
		t.Fatalf("Count('1') = %d, want 1", got)
	}
	if ix.Distinct() != 2 {
		t.Fatalf("Distinct = %d, want 2", ix.Distinct())
	}
}

// TestTupleIndexNegativeZero pins the −0.0 canonicalization: the two
// zeros compare equal (types.Value.Equal, the = operator), so they
// must land in one index entry — a hash that split them would make the
// compiled hash join and bag difference disagree with the interpreter.
func TestTupleIndexNegativeZero(t *testing.T) {
	pos := schema.Tuple{types.Float(0.0)}
	neg := schema.Tuple{types.Float(math.Copysign(0, -1))}
	if !pos.Equal(neg) {
		t.Fatal("0.0 and -0.0 must compare equal")
	}
	if pos.Hash() != neg.Hash() {
		t.Fatal("0.0 and -0.0 hash differently")
	}
	ix := NewTupleIndex(0)
	ix.Add(pos)
	if ix.Count(neg) != 1 || !ix.Remove(neg) {
		t.Fatal("-0.0 does not find +0.0 in the index")
	}
}

// TestHashAgreesWithKey cross-checks the two canonical encodings over
// random tuples: equal keys must imply equal hashes (the index relies
// on it), and Equal must imply both.
func TestHashAgreesWithKey(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	randVal := func() types.Value {
		switch rng.Intn(5) {
		case 0:
			return types.Null()
		case 1:
			return types.Int(int64(rng.Intn(4)))
		case 2:
			return types.Float(float64(rng.Intn(4)))
		case 3:
			return types.String([]string{"0", "1", "x"}[rng.Intn(3)])
		default:
			return types.Bool(rng.Intn(2) == 0)
		}
	}
	tuples := make([]schema.Tuple, 300)
	for i := range tuples {
		tuples[i] = schema.Tuple{randVal(), randVal()}
	}
	for _, a := range tuples {
		for _, b := range tuples {
			if a.Key() == b.Key() && a.Hash() != b.Hash() {
				t.Fatalf("equal keys, different hashes: %s vs %s", a, b)
			}
			if a.Equal(b) && a.Hash() != b.Hash() {
				t.Fatalf("Equal tuples with different hashes: %s vs %s", a, b)
			}
		}
	}
}

func TestEqualMultiset(t *testing.T) {
	a := intRel("t", 1, 2, 2).Index()
	b := intRel("t", 2, 1, 2).Index()
	if !a.EqualMultiset(b) {
		t.Fatal("order must not matter")
	}
	c := intRel("t", 1, 2, 3).Index()
	if a.EqualMultiset(c) {
		t.Fatal("different multisets compare equal")
	}
}
