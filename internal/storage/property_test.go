package storage

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/types"
)

// TestVersionedReplayProperty: for a random mutator sequence, every
// historical version must equal the state obtained by replaying the
// prefix over the base — with and without checkpoints — and
// reconstructing a version must never disturb the current state.
func TestVersionedReplayProperty(t *testing.T) {
	f := func(deltas []int8, checkpointEvery uint8) bool {
		if len(deltas) > 24 {
			deltas = deltas[:24]
		}
		db := NewDatabase()
		db.AddRelation(intRel("t", 100))
		v := NewVersioned(db)
		v.SetCheckpointEvery(int(checkpointEvery % 5))
		expect := []int64{100}
		cur := int64(100)
		for _, d := range deltas {
			if err := v.Apply(bump{rel: "t", by: int64(d)}); err != nil {
				return false
			}
			cur += int64(d)
			expect = append(expect, cur)
		}
		for ver := 0; ver <= len(deltas); ver++ {
			snap, err := v.Version(ver)
			if err != nil {
				return false
			}
			rel, err := snap.Relation("t")
			if err != nil || rel.Tuples[0][0].AsInt() != expect[ver] {
				return false
			}
		}
		now, err := v.Current().Relation("t")
		return err == nil && now.Tuples[0][0].AsInt() == cur
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestCloneIsolationProperty: clones never alias the original; mutating
// one side must not leak into the other, whatever the contents.
func TestCloneIsolationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 100; trial++ {
		db := NewDatabase()
		nRel := 1 + rng.Intn(3)
		for r := 0; r < nRel; r++ {
			rel := NewRelation(schema.New(
				string(rune('a'+r)),
				schema.Col("x", types.KindInt),
				schema.Col("s", types.KindString),
			))
			for i := 0; i < rng.Intn(10); i++ {
				rel.Add(schema.Tuple{
					types.Int(int64(rng.Intn(100))),
					types.String(string(rune('p' + rng.Intn(5)))),
				})
			}
			db.AddRelation(rel)
		}
		clone := db.Clone()
		// Mutate the clone thoroughly.
		for _, name := range clone.RelationNames() {
			rel, _ := clone.Relation(name)
			for i := range rel.Tuples {
				rel.Tuples[i][0] = types.Int(-1)
			}
			rel.Add(schema.Tuple{types.Int(-2), types.String("zz")})
		}
		// The original must be untouched.
		for _, name := range db.RelationNames() {
			orig, _ := db.Relation(name)
			for _, tup := range orig.Tuples {
				if tup[0].AsInt() < 0 {
					t.Fatalf("trial %d: clone mutation leaked into original", trial)
				}
			}
		}
	}
}
