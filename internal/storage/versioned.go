package storage

import (
	"context"
	"fmt"
)

// Mutator is anything that transforms a database in place — in practice
// the update/delete/insert statements of package history. Keeping the
// interface here avoids an import cycle while letting the versioned
// store replay arbitrary statements.
type Mutator interface {
	// Apply executes the mutation against db.
	Apply(db *Database) error
	// String renders the mutation (for logs and errors).
	String() string
}

// VersionedDatabase is an in-memory stand-in for a DBMS with time
// travel: it retains the base snapshot D0 (the state before the first
// statement of the history), a redo log of applied statements, optional
// periodic checkpoints, and the maintained current state.
//
// Version i denotes the state after the first i statements, so
// Version(0) == D0 and Version(len(log)) == Current().
type VersionedDatabase struct {
	base    *Database
	current *Database
	log     []Mutator

	// checkpointEvery > 0 stores a full snapshot every that many
	// statements, trading memory for faster Version() reconstruction.
	checkpointEvery int
	checkpoints     map[int]*Database
}

// NewVersioned starts version tracking from the given initial state.
// The initial database is snapshotted; the caller must not mutate it
// afterwards.
func NewVersioned(initial *Database) *VersionedDatabase {
	return &VersionedDatabase{
		base:        initial.Clone(),
		current:     initial.Clone(),
		checkpoints: map[int]*Database{},
	}
}

// SetCheckpointEvery enables snapshot checkpoints every n statements
// (0 disables). It affects only future Apply calls.
func (v *VersionedDatabase) SetCheckpointEvery(n int) { v.checkpointEvery = n }

// Apply executes m against the current state and appends it to the log.
func (v *VersionedDatabase) Apply(m Mutator) error {
	if err := m.Apply(v.current); err != nil {
		return fmt.Errorf("storage: applying %s: %w", m, err)
	}
	v.log = append(v.log, m)
	if v.checkpointEvery > 0 && len(v.log)%v.checkpointEvery == 0 {
		v.checkpoints[len(v.log)] = v.current.Clone()
	}
	return nil
}

// ApplyAll executes a sequence of mutations.
func (v *VersionedDatabase) ApplyAll(ms ...Mutator) error {
	for _, m := range ms {
		if err := v.Apply(m); err != nil {
			return err
		}
	}
	return nil
}

// NumVersions returns the number of applied statements.
func (v *VersionedDatabase) NumVersions() int { return len(v.log) }

// Current returns the live current state (not a copy).
func (v *VersionedDatabase) Current() *Database { return v.current }

// Base returns the snapshot before any statement ran (not a copy).
func (v *VersionedDatabase) Base() *Database { return v.base }

// Log returns the applied statements in order.
func (v *VersionedDatabase) Log() []Mutator {
	out := make([]Mutator, len(v.log))
	copy(out, v.log)
	return out
}

// Version reconstructs the database state after the first i statements
// by replaying the redo log from the nearest earlier snapshot. The
// returned database is a private copy the caller may mutate.
func (v *VersionedDatabase) Version(i int) (*Database, error) {
	return v.VersionCtx(context.Background(), i)
}

// VersionCtx is Version under a context: redo-log replay observes
// cancellation between statements, so reconstructing a deep version can
// be abandoned promptly.
func (v *VersionedDatabase) VersionCtx(ctx context.Context, i int) (*Database, error) {
	if i < 0 || i > len(v.log) {
		return nil, fmt.Errorf("storage: version %d out of range [0,%d]", i, len(v.log))
	}
	if i == len(v.log) {
		return v.current.Clone(), nil
	}
	start, db := v.nearestCheckpoint(i)
	return v.replayCtx(ctx, start, db, i)
}

// nearestCheckpoint returns the latest materialized state at or before
// version i: the base, or a snapshot checkpoint.
func (v *VersionedDatabase) nearestCheckpoint(i int) (int, *Database) {
	start, db := 0, v.base
	for at, snap := range v.checkpoints {
		if at <= i && at > start {
			start, db = at, snap
		}
	}
	return start, db
}

// replayCtx clones db — the state after the first `start` statements —
// and applies log entries start..i to reach version i, checking ctx
// between statements.
func (v *VersionedDatabase) replayCtx(ctx context.Context, start int, db *Database, i int) (*Database, error) {
	out := db.Clone()
	for j := start; j < i; j++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := v.log[j].Apply(out); err != nil {
			return nil, fmt.Errorf("storage: replaying statement %d (%s): %w", j, v.log[j], err)
		}
	}
	return out, nil
}
