package storage

import (
	"context"
	"fmt"
	"sync"
)

// Mutator is anything that transforms a database in place — in practice
// the update/delete/insert statements of package history. Keeping the
// interface here avoids an import cycle while letting the versioned
// store replay arbitrary statements.
type Mutator interface {
	// Apply executes the mutation against db.
	Apply(db *Database) error
	// String renders the mutation (for logs and errors).
	String() string
}

// IndexedMutator is a Mutator that can apply itself incrementally
// through the secondary indexes of an IndexSet, touching only the rows
// its predicate selects and maintaining the indexes delta-wise, instead
// of scanning and rematerializing the whole relation.
type IndexedMutator interface {
	Mutator
	// ApplyIndexed executes the mutation against db using (and
	// maintaining) ix. It must be observationally identical to Apply.
	// It may mutate db's resident tuples in place, so it requires the
	// ownership contract documented on ApplyMutator.
	ApplyIndexed(db *Database, ix *IndexSet) error
}

// ApplyMutator routes m through its indexed-application path when both
// the mutator and the index set support it. A mutator outside the
// indexed subset applies plainly, after which ix can no longer vouch
// for any position, so it is invalidated wholesale.
//
// Ownership contract: the indexed path may rewrite db's resident
// tuples in place, so db's tuples must be privately owned by the
// caller — no other goroutine or retained reference may read them
// concurrently or expect them to stay stable. Every caller in this
// package satisfies that by construction: the live tip is only shared
// through deep clones (TipSnapshot, Version, checkpoints, replayPlan's
// tip freeze), replay states are private clones until returned, and
// recovery replays into a private clone of the restart state. Current()
// documents the same quiescence requirement for external readers.
func ApplyMutator(m Mutator, db *Database, ix *IndexSet) error {
	if ix != nil {
		if im, ok := m.(IndexedMutator); ok {
			return im.ApplyIndexed(db, ix)
		}
		ix.InvalidateAll()
	}
	return m.Apply(db)
}

// VersionedDatabase is an in-memory stand-in for a DBMS with time
// travel: it retains the base snapshot D0 (the state before the first
// statement of the history), a redo log of applied statements, optional
// periodic checkpoints, and the maintained current state.
//
// Version i denotes the state after the first i statements, so
// Version(0) == D0 and Version(len(log)) == Current().
//
// The store is safe for concurrent use with one writer: Apply may run
// while other goroutines reconstruct versions or read the log. The
// history is strictly append-only — versions ≤ an observed NumVersions
// are immutable forever — which is what lets snapshot caches and
// sessions keep serving warm state across live appends.
type VersionedDatabase struct {
	mu      sync.RWMutex
	base    *Database
	current *Database
	log     []Mutator

	// checkpointEvery > 0 stores a full snapshot every that many
	// statements, trading memory for faster Version() reconstruction.
	checkpointEvery int
	checkpoints     map[int]*Database

	// tipIx holds the maintained secondary indexes of the current
	// state, guarded by mu like the state itself (readers never touch
	// it). nil disables tip indexing (ablation knob).
	tipIx *IndexSet

	// advCh is closed and replaced every time the history advances, so
	// waiters (version-bounded reads, WAL followers) can block on the
	// next append without polling. Guarded by mu.
	advCh chan struct{}
}

// NewVersioned starts version tracking from the given initial state.
// The initial database is snapshotted; the caller must not mutate it
// afterwards.
func NewVersioned(initial *Database) *VersionedDatabase {
	return &VersionedDatabase{
		base:        initial.Clone(),
		current:     initial.Clone(),
		checkpoints: map[int]*Database{},
		tipIx:       NewIndexSet(),
		advCh:       make(chan struct{}),
	}
}

// RestoreVersioned reconstructs a versioned database from recovered
// parts — the durable store's crash-recovery constructor. Unlike
// NewVersioned it takes ownership of its arguments without cloning:
// base must be the state before log[0], every checkpoints[i] the state
// after the first i statements, and current the state after the whole
// log. The caller must not retain references that it later mutates.
func RestoreVersioned(base *Database, log []Mutator, checkpoints map[int]*Database, current *Database) *VersionedDatabase {
	if checkpoints == nil {
		checkpoints = map[int]*Database{}
	}
	return &VersionedDatabase{
		base:        base,
		current:     current,
		log:         log,
		checkpoints: checkpoints,
		tipIx:       NewIndexSet(),
		advCh:       make(chan struct{}),
	}
}

// SetTipIndexing enables or disables maintained secondary indexes on
// the current state (on by default; the off switch is the benchmark
// ablation knob). Disabling drops any built indexes.
func (v *VersionedDatabase) SetTipIndexing(on bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if on {
		if v.tipIx == nil {
			v.tipIx = NewIndexSet()
		}
	} else {
		v.tipIx = nil
	}
}

// SetCheckpointEvery enables snapshot checkpoints every n statements
// (0 disables). It affects only future Apply calls.
func (v *VersionedDatabase) SetCheckpointEvery(n int) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.checkpointEvery = n
}

// Apply executes m against the current state and appends it to the log.
func (v *VersionedDatabase) Apply(m Mutator) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.applyLocked(m)
}

func (v *VersionedDatabase) applyLocked(m Mutator) error {
	if err := ApplyMutator(m, v.current, v.tipIx); err != nil {
		return fmt.Errorf("storage: applying %s: %w", m, err)
	}
	v.log = append(v.log, m)
	if v.checkpointEvery > 0 && len(v.log)%v.checkpointEvery == 0 {
		v.checkpoints[len(v.log)] = v.current.Clone()
	}
	// Wake version waiters: the closed channel is the broadcast, the
	// fresh one arms the next advance.
	close(v.advCh)
	v.advCh = make(chan struct{})
	return nil
}

// WaitChan returns the current version together with a channel that is
// closed at the next advance. The idiom for blocking until version t:
// loop fetching (cur, ch); return once cur >= t; otherwise select on ch
// and the caller's context.
func (v *VersionedDatabase) WaitChan() (int, <-chan struct{}) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.log), v.advCh
}

// ApplyAll executes a sequence of mutations atomically with respect to
// concurrent readers: no version between the first and last statement
// becomes the observable tip.
func (v *VersionedDatabase) ApplyAll(ms ...Mutator) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, m := range ms {
		if err := v.applyLocked(m); err != nil {
			return err
		}
	}
	return nil
}

// AddCheckpoint registers db as the materialized state after the first
// i statements, accelerating later Version reconstructions. The caller
// asserts the invariant (db really is version i) and hands over
// ownership — the store never mutates checkpoints, and neither may the
// caller afterwards. Used by the durable store when it writes or loads
// snapshot checkpoints.
func (v *VersionedDatabase) AddCheckpoint(i int, db *Database) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if i < 0 || i > len(v.log) {
		return fmt.Errorf("storage: checkpoint %d out of range [0,%d]", i, len(v.log))
	}
	v.checkpoints[i] = db
	return nil
}

// NumVersions returns the number of applied statements.
func (v *VersionedDatabase) NumVersions() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.log)
}

// Current returns the live current state (not a copy). The returned
// database is mutated in place by Apply, so callers must either
// guarantee quiescence (no concurrent appends) or use TipSnapshot /
// Version for a stable view.
func (v *VersionedDatabase) Current() *Database { return v.current }

// TipSnapshot atomically returns the current version number and a
// private copy of the state at that version — the consistent read a
// concurrent reader needs while appends are in flight.
func (v *VersionedDatabase) TipSnapshot() (int, *Database) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.log), v.current.Clone()
}

// Base returns the snapshot before any statement ran (not a copy; the
// base is immutable).
func (v *VersionedDatabase) Base() *Database { return v.base }

// Log returns the applied statements in order.
func (v *VersionedDatabase) Log() []Mutator {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]Mutator, len(v.log))
	copy(out, v.log)
	return out
}

// LogRange returns the statements after the first `since` (up to limit
// of them; limit <= 0 means all) together with the total history
// length — the paged view behind GET /v1/history and replica catch-up.
func (v *VersionedDatabase) LogRange(since, limit int) ([]Mutator, int) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	total := len(v.log)
	if since < 0 {
		since = 0
	}
	if since >= total {
		return nil, total
	}
	end := total
	if limit > 0 && since+limit < end {
		end = since + limit
	}
	out := make([]Mutator, end-since)
	copy(out, v.log[since:end])
	return out, total
}

// Version reconstructs the database state after the first i statements
// by replaying the redo log from the nearest earlier snapshot. The
// returned database is a private copy the caller may mutate.
func (v *VersionedDatabase) Version(i int) (*Database, error) {
	return v.VersionCtx(context.Background(), i)
}

// VersionCtx is Version under a context: redo-log replay observes
// cancellation between statements, so reconstructing a deep version can
// be abandoned promptly.
func (v *VersionedDatabase) VersionCtx(ctx context.Context, i int) (*Database, error) {
	start, db, log, private, err := v.replayPlan(i)
	if err != nil {
		return nil, err
	}
	if private {
		return db, nil // already a private tip clone
	}
	// replayCtx clones db even when start == i, preserving the
	// private-copy contract for exact checkpoint hits.
	return replayCtx(ctx, log, start, db, i)
}

// replayPlan resolves, under the read lock, everything a replay to
// version i needs: the nearest materialized state at or before i and a
// stable view of the log. When i is the tip it returns a private clone
// directly (private == true); otherwise db is shared and immutable
// (the base or a checkpoint). The log slice header captured here stays
// valid under concurrent appends — the history is append-only and
// append never mutates the occupied prefix of the backing array.
func (v *VersionedDatabase) replayPlan(i int) (start int, db *Database, log []Mutator, private bool, err error) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	if i < 0 || i > len(v.log) {
		return 0, nil, nil, false, fmt.Errorf("storage: version %d out of range [0,%d]", i, len(v.log))
	}
	if i == len(v.log) {
		return i, v.current.Clone(), nil, true, nil
	}
	start, db = v.nearestCheckpointLocked(i)
	return start, db, v.log, false, nil
}

// nearestCheckpointLocked returns the latest materialized state at or
// before version i: the base, or a snapshot checkpoint. Caller holds at
// least the read lock. The returned database is shared and immutable.
func (v *VersionedDatabase) nearestCheckpointLocked(i int) (int, *Database) {
	start, db := 0, v.base
	for at, snap := range v.checkpoints {
		if at <= i && at > start {
			start, db = at, snap
		}
	}
	return start, db
}

// replayCtx clones db — the state after the first `start` statements —
// and applies log entries start..i to reach version i, checking ctx
// between statements.
func replayCtx(ctx context.Context, log []Mutator, start int, db *Database, i int) (*Database, error) {
	out := db.Clone()
	// A replay-private index set accelerates the statement loop the
	// same way the tip's maintained indexes accelerate Apply; it is
	// discarded with the replay, so it never outlives its state.
	ix := NewIndexSet()
	for j := start; j < i; j++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := ApplyMutator(log[j], out, ix); err != nil {
			return nil, fmt.Errorf("storage: replaying statement %d (%s): %w", j, log[j], err)
		}
	}
	return out, nil
}
