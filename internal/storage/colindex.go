// Per-column secondary indexes for incremental statement application.
//
// A ColumnIndex maps the values of one column of one relation to the
// row positions holding them, in one of two shapes: ordered (a sorted
// run plus a small unsorted delta, answering range and equality
// probes) or hashed (value-keyed buckets, answering equality probes
// only but tolerating mixed value kinds). An IndexSet owns the lazily
// built indexes of one database state and is maintained delta-wise by
// the indexed statement-application path of package history: appends
// register new rows, in-place row rewrites move individual entries,
// and deletes renumber positions in one pass. This is what turns
// UPDATE/DELETE application from a full scan + rematerialization of
// the relation into O(affected rows) work.
//
// Key representation is chosen to agree exactly with the engine's
// comparison semantics (types.Value.Compare / Equal): numeric values
// of either kind are keyed by their float64 widening, so cross-kind
// equality (1 == 1.0) and ordering — including any float precision
// loss — match the per-tuple oracle; booleans are keyed 0/1 (false <
// true); strings by themselves. NULLs are kept on a separate position
// list because no comparison matches them. NaN/±Inf are excluded from
// the value domain by types.Arith, so float keys always have a total
// order.
//
// Concurrency: an IndexSet has no internal locking. It must only be
// touched under the same exclusive access as the database state it
// indexes — the VersionedDatabase write lock for the tip, or private
// ownership for replay-local sets. Concurrent snapshot readers never
// see an IndexSet.
package storage

import (
	"slices"
	"sort"

	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/types"
)

// IndexClass buckets value kinds into comparability classes: ordered
// comparisons are only error-free within one class, which is what the
// planner must certify before letting an index skip rows.
type IndexClass uint8

// The comparability classes.
const (
	IndexNone    IndexClass = iota // no non-NULL values observed
	IndexNumeric                   // int and float (one class: Compare widens)
	IndexString
	IndexBool
	IndexMixed // several classes present; ordered probes unanswerable
)

// ClassOf returns the comparability class of a single non-NULL value
// (IndexNone for NULL).
func ClassOf(v types.Value) IndexClass {
	switch v.Kind() {
	case types.KindInt, types.KindFloat:
		return IndexNumeric
	case types.KindString:
		return IndexString
	case types.KindBool:
		return IndexBool
	}
	return IndexNone
}

// MinIndexRows is the relation size below which IndexSet declines to
// build an index: scanning a few hundred tuples is cheaper than
// maintaining index structures for them. Var, not const, so tests can
// exercise index paths on small relations.
var MinIndexRows = 256

// maxIndexRows caps indexable relations at int32 positions.
const maxIndexRows = 1<<31 - 1

// Bound is one end of a key interval. V must be non-NULL.
type Bound struct {
	V    types.Value
	Open bool // strict (<, >) rather than inclusive
}

// ordered index core -------------------------------------------------------

type ordKey interface{ ~float64 | ~string }

type ordEntry[K ordKey] struct {
	key K
	pos int32
}

// ordCore is the ordered index shape: a key-sorted run with tombstones
// (pos == -1) plus a small unsorted delta of recent insertions. Probes
// binary-search the run and linearly scan the delta; the delta merges
// into the run when it outgrows a fraction of it, so maintenance stays
// O(1) amortized per touched row instead of O(n log n) per statement.
type ordCore[K ordKey] struct {
	sorted []ordEntry[K]
	dead   int // tombstones in sorted
	delta  []ordEntry[K]
}

func (c *ordCore[K]) add(k K, pos int32) {
	c.delta = append(c.delta, ordEntry[K]{key: k, pos: pos})
	if len(c.delta) > 64 && len(c.delta) > len(c.sorted)/8 {
		c.merge()
	}
}

// remove drops the entry (k, pos), reporting false when it is absent
// (an invariant violation: the caller then discards the whole index).
func (c *ordCore[K]) remove(k K, pos int32) bool {
	i := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i].key >= k })
	for ; i < len(c.sorted) && c.sorted[i].key == k; i++ {
		if c.sorted[i].pos == pos {
			c.sorted[i].pos = -1
			c.dead++
			if c.dead > 64 && c.dead*2 > len(c.sorted) {
				c.merge()
			}
			return true
		}
	}
	for j := range c.delta {
		if c.delta[j].pos == pos && c.delta[j].key == k {
			last := len(c.delta) - 1
			c.delta[j] = c.delta[last]
			c.delta = c.delta[:last]
			return true
		}
	}
	return false
}

// sortEntries key-orders a run without sort.Slice's reflection-based
// swapper (the sorts here sit on the probe and build hot paths).
func sortEntries[K ordKey](s []ordEntry[K]) {
	slices.SortFunc(s, func(a, b ordEntry[K]) int {
		switch {
		case a.key < b.key:
			return -1
		case a.key > b.key:
			return 1
		}
		return 0
	})
}

// merge folds the delta into the sorted run and compacts tombstones.
func (c *ordCore[K]) merge() {
	sortEntries(c.delta)
	out := make([]ordEntry[K], 0, len(c.sorted)-c.dead+len(c.delta))
	i, j := 0, 0
	for i < len(c.sorted) || j < len(c.delta) {
		switch {
		case i < len(c.sorted) && c.sorted[i].pos < 0:
			i++
		case j >= len(c.delta) || (i < len(c.sorted) && c.sorted[i].key <= c.delta[j].key):
			out = append(out, c.sorted[i])
			i++
		default:
			out = append(out, c.delta[j])
			j++
		}
	}
	c.sorted, c.delta, c.dead = out, nil, 0
}

// inRange tests k against the (optionally open/absent) bounds.
func inRange[K ordKey](k K, haveLo bool, lo K, loOpen bool, haveHi bool, hi K, hiOpen bool) bool {
	if haveLo && (k < lo || (loOpen && k == lo)) {
		return false
	}
	if haveHi && (k > hi || (hiOpen && k == hi)) {
		return false
	}
	return true
}

// scan emits the positions of all live entries within the bounds.
func (c *ordCore[K]) scan(haveLo bool, lo K, loOpen bool, haveHi bool, hi K, hiOpen bool, emit func(int32)) {
	start := 0
	if haveLo {
		if loOpen {
			start = sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i].key > lo })
		} else {
			start = sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i].key >= lo })
		}
	}
	for i := start; i < len(c.sorted); i++ {
		e := c.sorted[i]
		if haveHi && (e.key > hi || (hiOpen && e.key == hi)) {
			break
		}
		if e.pos >= 0 {
			emit(e.pos)
		}
	}
	for _, e := range c.delta {
		if inRange(e.key, haveLo, lo, loOpen, haveHi, hi, hiOpen) {
			emit(e.pos)
		}
	}
}

// estimate counts entries within the bounds without emitting them.
// Tombstones inside the range are overcounted — fine for selectivity
// ranking.
func (c *ordCore[K]) estimate(haveLo bool, lo K, loOpen bool, haveHi bool, hi K, hiOpen bool) int {
	start, end := 0, len(c.sorted)
	if haveLo {
		if loOpen {
			start = sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i].key > lo })
		} else {
			start = sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i].key >= lo })
		}
	}
	if haveHi {
		if hiOpen {
			end = sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i].key >= hi })
		} else {
			end = sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i].key > hi })
		}
	}
	n := end - start
	if n < 0 {
		n = 0
	}
	for _, e := range c.delta {
		if inRange(e.key, haveLo, lo, loOpen, haveHi, hi, hiOpen) {
			n++
		}
	}
	return n
}

// renumber rewrites positions after the rows at the given ascending
// positions were removed from the relation, compacting tombstones and
// dropping entries of deleted rows in the same pass.
func (c *ordCore[K]) renumber(deleted []int32) {
	out := c.sorted[:0]
	for _, e := range c.sorted {
		if e.pos < 0 {
			continue
		}
		if np := shiftPos(e.pos, deleted); np >= 0 {
			out = append(out, ordEntry[K]{key: e.key, pos: np})
		}
	}
	c.sorted, c.dead = out, 0
	dOut := c.delta[:0]
	for _, e := range c.delta {
		if np := shiftPos(e.pos, deleted); np >= 0 {
			dOut = append(dOut, ordEntry[K]{key: e.key, pos: np})
		}
	}
	c.delta = dOut
}

// shiftPos maps a pre-delete position to its post-delete position, or
// -1 when the position itself was deleted. deleted is sorted ascending.
func shiftPos(pos int32, deleted []int32) int32 {
	i := sort.Search(len(deleted), func(i int) bool { return deleted[i] >= pos })
	if i < len(deleted) && deleted[i] == pos {
		return -1
	}
	return pos - int32(i)
}

// hashed index core --------------------------------------------------------

// hashKey keys hashed buckets so that bucket equality coincides with
// types.Value.Equal: numerics fold to their float64 widening (1 and
// 1.0 share a bucket), booleans and strings stay in their own class.
type hashKey struct {
	class IndexClass
	f     float64
	s     string
}

func hashKeyOf(v types.Value) hashKey {
	switch v.Kind() {
	case types.KindInt, types.KindFloat:
		f := v.AsFloat()
		if f == 0 {
			f = 0 // fold -0.0 into +0.0 (they compare equal)
		}
		return hashKey{class: IndexNumeric, f: f}
	case types.KindString:
		return hashKey{class: IndexString, s: v.AsString()}
	case types.KindBool:
		var f float64
		if v.AsBool() {
			f = 1
		}
		return hashKey{class: IndexBool, f: f}
	}
	panic("storage: hashKeyOf on NULL")
}

// ColumnIndex --------------------------------------------------------------

type indexKind uint8

const (
	kindOrdered indexKind = iota
	kindHashed
)

// ColumnIndex maps the values of one column to row positions. Ordered
// indexes answer range and equality probes but require all non-NULL
// values of the column to share one comparability class; hashed
// indexes answer equality probes only and tolerate mixed classes.
type ColumnIndex struct {
	col   int
	kind  indexKind
	class IndexClass
	nulls []int32

	// ordered cores (at most one non-nil; both nil while class is
	// IndexNone — the first typed insert decides):
	num *ordCore[float64] // numeric and bool columns (bool keyed 0/1)
	str *ordCore[string]

	// hashed buckets:
	hash map[hashKey][]int32
}

// Class returns the comparability class of the indexed column's
// non-NULL values.
func (x *ColumnIndex) Class() IndexClass { return x.class }

// IsOrdered reports whether the index answers range probes.
func (x *ColumnIndex) IsOrdered() bool { return x.kind == kindOrdered }

// numKey converts a numeric or boolean value to its float64 key.
func numKey(v types.Value) float64 {
	if v.Kind() == types.KindBool {
		if v.AsBool() {
			return 1
		}
		return 0
	}
	f := v.AsFloat()
	if f == 0 {
		f = 0
	}
	return f
}

// insert registers value v at position pos, reporting false when the
// index cannot represent it (class departure on an ordered index);
// the caller must then drop the index.
func (x *ColumnIndex) insert(v types.Value, pos int32) bool {
	if v.IsNull() {
		x.nulls = append(x.nulls, pos)
		return true
	}
	c := ClassOf(v)
	if x.kind == kindHashed {
		if x.class == IndexNone {
			x.class = c
		} else if x.class != c {
			x.class = IndexMixed
		}
		k := hashKeyOf(v)
		x.hash[k] = append(x.hash[k], pos)
		return true
	}
	if x.class == IndexNone {
		x.class = c
	}
	if x.class != c {
		return false
	}
	if x.class == IndexString {
		if x.str == nil {
			x.str = &ordCore[string]{}
		}
		x.str.add(v.AsString(), pos)
	} else {
		if x.num == nil {
			x.num = &ordCore[float64]{}
		}
		x.num.add(numKey(v), pos)
	}
	return true
}

// delete drops the entry for value v at position pos, reporting false
// when it is absent (invariant violation; the caller drops the index).
func (x *ColumnIndex) delete(v types.Value, pos int32) bool {
	if v.IsNull() {
		for i, p := range x.nulls {
			if p == pos {
				last := len(x.nulls) - 1
				x.nulls[i] = x.nulls[last]
				x.nulls = x.nulls[:last]
				return true
			}
		}
		return false
	}
	if x.kind == kindHashed {
		k := hashKeyOf(v)
		b := x.hash[k]
		for i, p := range b {
			if p == pos {
				last := len(b) - 1
				b[i] = b[last]
				if last == 0 {
					delete(x.hash, k)
				} else {
					x.hash[k] = b[:last]
				}
				return true
			}
		}
		return false
	}
	switch {
	case x.str != nil && ClassOf(v) == x.class && x.class == IndexString:
		return x.str.remove(v.AsString(), pos)
	case x.num != nil && ClassOf(v) == x.class:
		return x.num.remove(numKey(v), pos)
	}
	return false
}

// renumber rewrites all positions after a batch delete at the given
// ascending positions.
func (x *ColumnIndex) renumber(deleted []int32) {
	if len(deleted) == 0 {
		return
	}
	nOut := x.nulls[:0]
	for _, p := range x.nulls {
		if np := shiftPos(p, deleted); np >= 0 {
			nOut = append(nOut, np)
		}
	}
	x.nulls = nOut
	if x.num != nil {
		x.num.renumber(deleted)
	}
	if x.str != nil {
		x.str.renumber(deleted)
	}
	if x.hash != nil {
		for k, b := range x.hash {
			out := b[:0]
			for _, p := range b {
				if np := shiftPos(p, deleted); np >= 0 {
					out = append(out, np)
				}
			}
			if len(out) == 0 {
				delete(x.hash, k)
			} else {
				x.hash[k] = out
			}
		}
	}
}

// Eq appends to buf the positions whose column value equals v under
// types.Value.Equal, plus the NULL positions when withNulls. Equality
// never errors, so class mismatches simply match nothing; ok is false
// only when the index shape cannot answer at all.
func (x *ColumnIndex) Eq(v types.Value, withNulls bool, buf []int32) (_ []int32, ok bool) {
	if v.IsNull() {
		// No value equals NULL; only the explicit null positions.
		if withNulls {
			buf = append(buf, x.nulls...)
		}
		return buf, true
	}
	if withNulls {
		buf = append(buf, x.nulls...)
	}
	if x.kind == kindHashed {
		buf = append(buf, x.hash[hashKeyOf(v)]...)
		return buf, true
	}
	if ClassOf(v) != x.class {
		return buf, true // cross-class equality is false, not an error
	}
	emit := func(p int32) { buf = append(buf, p) }
	if x.class == IndexString {
		if x.str != nil {
			k := v.AsString()
			x.str.scan(true, k, false, true, k, false, emit)
		}
	} else if x.num != nil {
		k := numKey(v)
		x.num.scan(true, k, false, true, k, false, emit)
	}
	return buf, true
}

// EstimateEq bounds the number of positions Eq would return.
func (x *ColumnIndex) EstimateEq(v types.Value, withNulls bool) int {
	n := 0
	if withNulls {
		n = len(x.nulls)
	}
	if v.IsNull() {
		return n
	}
	if x.kind == kindHashed {
		return n + len(x.hash[hashKeyOf(v)])
	}
	if ClassOf(v) != x.class {
		return n
	}
	if x.class == IndexString {
		if x.str != nil {
			k := v.AsString()
			n += x.str.estimate(true, k, false, true, k, false)
		}
	} else if x.num != nil {
		k := numKey(v)
		n += x.num.estimate(true, k, false, true, k, false)
	}
	return n
}

// rangeArgs converts bounds to core keys. ok is false when a bound's
// class is incompatible with the column (the ordered comparison could
// error row-wise, so the index must not answer).
func (x *ColumnIndex) rangeArgs(lo, hi *Bound) (haveLo bool, loF float64, loS string, loOpen, haveHi bool, hiF float64, hiS string, hiOpen, ok bool) {
	conv := func(b *Bound) (float64, string, bool) {
		c := ClassOf(b.V)
		switch x.class {
		case IndexString:
			if c != IndexString {
				return 0, "", false
			}
			return 0, b.V.AsString(), true
		case IndexNumeric:
			if c != IndexNumeric {
				return 0, "", false
			}
			return numKey(b.V), "", true
		case IndexBool:
			if c != IndexBool {
				return 0, "", false
			}
			return numKey(b.V), "", true
		case IndexNone:
			// Column has no non-NULL values: any well-formed bound
			// matches nothing, which the empty cores already express.
			return 0, "", true
		}
		return 0, "", false
	}
	if lo != nil {
		loF, loS, ok = conv(lo)
		if !ok {
			return
		}
		haveLo, loOpen = true, lo.Open
	}
	if hi != nil {
		hiF, hiS, ok = conv(hi)
		if !ok {
			return
		}
		haveHi, hiOpen = true, hi.Open
	}
	return haveLo, loF, loS, loOpen, haveHi, hiF, hiS, hiOpen, true
}

// Range appends to buf the positions whose column value lies within
// the bounds (nil = unbounded), plus the NULL positions when
// withNulls. ok is false when the index cannot answer the probe
// (hashed shape, mixed classes, or class-incompatible bounds).
func (x *ColumnIndex) Range(lo, hi *Bound, withNulls bool, buf []int32) (_ []int32, ok bool) {
	if x.kind != kindOrdered || x.class == IndexMixed {
		return buf, false
	}
	haveLo, loF, loS, loOpen, haveHi, hiF, hiS, hiOpen, ok := x.rangeArgs(lo, hi)
	if !ok {
		return buf, false
	}
	if withNulls {
		buf = append(buf, x.nulls...)
	}
	emit := func(p int32) { buf = append(buf, p) }
	if x.class == IndexString {
		if x.str != nil {
			x.str.scan(haveLo, loS, loOpen, haveHi, hiS, hiOpen, emit)
		}
	} else if x.num != nil {
		x.num.scan(haveLo, loF, loOpen, haveHi, hiF, hiOpen, emit)
	}
	return buf, true
}

// Estimate bounds the number of positions Range would return; ok as in
// Range.
func (x *ColumnIndex) Estimate(lo, hi *Bound, withNulls bool) (int, bool) {
	if x.kind != kindOrdered || x.class == IndexMixed {
		return 0, false
	}
	haveLo, loF, loS, loOpen, haveHi, hiF, hiS, hiOpen, ok := x.rangeArgs(lo, hi)
	if !ok {
		return 0, false
	}
	n := 0
	if withNulls {
		n = len(x.nulls)
	}
	if x.class == IndexString {
		if x.str != nil {
			n += x.str.estimate(haveLo, loS, loOpen, haveHi, hiS, hiOpen)
		}
	} else if x.num != nil {
		n += x.num.estimate(haveLo, loF, loOpen, haveHi, hiF, hiOpen)
	}
	return n, true
}

// buildColumnIndex scans the column once and builds the index, or
// returns nil when an ordered shape was requested but the column mixes
// comparability classes.
func buildColumnIndex(rel *Relation, col int, ordered bool) *ColumnIndex {
	class := IndexNone
	for _, t := range rel.Tuples {
		v := t[col]
		if v.IsNull() {
			continue
		}
		c := ClassOf(v)
		if class == IndexNone {
			class = c
		} else if class != c {
			class = IndexMixed
			break
		}
	}
	if ordered && class == IndexMixed {
		return nil
	}
	x := &ColumnIndex{col: col, class: class}
	if ordered {
		x.kind = kindOrdered
		switch class {
		case IndexString:
			core := &ordCore[string]{sorted: make([]ordEntry[string], 0, len(rel.Tuples))}
			for pos, t := range rel.Tuples {
				if v := t[col]; v.IsNull() {
					x.nulls = append(x.nulls, int32(pos))
				} else {
					core.sorted = append(core.sorted, ordEntry[string]{key: v.AsString(), pos: int32(pos)})
				}
			}
			sortEntries(core.sorted)
			x.str = core
		case IndexNone:
			for pos, t := range rel.Tuples {
				if t[col].IsNull() {
					x.nulls = append(x.nulls, int32(pos))
				}
			}
		default:
			core := &ordCore[float64]{sorted: make([]ordEntry[float64], 0, len(rel.Tuples))}
			for pos, t := range rel.Tuples {
				if v := t[col]; v.IsNull() {
					x.nulls = append(x.nulls, int32(pos))
				} else {
					core.sorted = append(core.sorted, ordEntry[float64]{key: numKey(v), pos: int32(pos)})
				}
			}
			sortEntries(core.sorted)
			x.num = core
		}
		return x
	}
	x.kind = kindHashed
	x.hash = make(map[hashKey][]int32, len(rel.Tuples))
	for pos, t := range rel.Tuples {
		if v := t[col]; v.IsNull() {
			x.nulls = append(x.nulls, int32(pos))
		} else {
			k := hashKeyOf(v)
			x.hash[k] = append(x.hash[k], int32(pos))
		}
	}
	return x
}

// IndexSet -----------------------------------------------------------------

// relIndexes holds the built indexes of one relation.
type relIndexes struct {
	cols map[int]*ColumnIndex
	bad  map[int]bool // columns whose ordered build failed (mixed classes)
}

// IndexSet owns the secondary indexes of one database state: built
// lazily on first predicate demand, maintained delta-wise by the
// indexed apply path, and invalidated when a statement mutates a
// relation outside that path. Epoch increments on every change to
// index availability (build, drop, invalidate), which is what cached
// apply plans key on — a plan bound under one epoch must rebind when
// the set of usable indexes changes.
type IndexSet struct {
	epoch   uint64
	rels    map[string]*relIndexes
	scratch *ApplyScratch
}

// ApplyScratch is reusable per-set working memory for the indexed
// apply path: probe position buffers, candidate bitmaps, and SET value
// staging. It lives on the IndexSet because the set is exclusively
// owned by one state's apply stream, so reuse across statements is
// race-free by the same contract that lets the indexes themselves go
// unlocked. Nothing in here survives a statement: values staged in
// Vals are copied into fresh rows before commit, and Pos/bitmap
// contents are consumed within the apply that produced them.
type ApplyScratch struct {
	Pos  []int32
	Vals []types.Value
	bits []uint64
}

// Bitmap returns a zeroed bitmap of the given word count, reusing the
// scratch allocation when it is large enough.
func (sc *ApplyScratch) Bitmap(words int) []uint64 {
	if cap(sc.bits) < words {
		sc.bits = make([]uint64, words)
	} else {
		sc.bits = sc.bits[:words]
		clear(sc.bits)
	}
	return sc.bits
}

// Scratch returns the set's apply scratch, allocating it on first use.
func (s *IndexSet) Scratch() *ApplyScratch {
	if s.scratch == nil {
		s.scratch = &ApplyScratch{}
	}
	return s.scratch
}

// NewIndexSet returns an empty index set.
func NewIndexSet() *IndexSet {
	return &IndexSet{rels: map[string]*relIndexes{}}
}

// Epoch returns the availability epoch (see type doc).
func (s *IndexSet) Epoch() uint64 { return s.epoch }

func (s *IndexSet) relFor(k string) *relIndexes {
	r := s.rels[k]
	if r == nil {
		r = &relIndexes{cols: map[int]*ColumnIndex{}, bad: map[int]bool{}}
		s.rels[k] = r
	}
	return r
}

// Invalidate drops all indexes of the named relation (called when its
// tuples were mutated outside the maintained path).
func (s *IndexSet) Invalidate(name string) {
	k := key(name)
	if _, ok := s.rels[k]; ok {
		delete(s.rels, k)
		s.epoch++
	}
}

// InvalidateAll drops every index.
func (s *IndexSet) InvalidateAll() {
	if len(s.rels) > 0 {
		s.rels = map[string]*relIndexes{}
		s.epoch++
	}
}

// dropCol discards one column index after an invariant violation or a
// class departure.
func (s *IndexSet) dropCol(k string, col int) {
	if r := s.rels[k]; r != nil {
		if _, ok := r.cols[col]; ok {
			delete(r.cols, col)
			s.epoch++
		}
	}
}

// Ordered returns an ordered (range-capable) index on rel's column
// col, building or upgrading one as needed, or nil when the column
// cannot support it (mixed classes, or the relation is too small to be
// worth indexing).
func (s *IndexSet) Ordered(name string, rel *Relation, col int) *ColumnIndex {
	k := key(name)
	r := s.rels[k]
	if r != nil {
		if x := r.cols[col]; x != nil && x.kind == kindOrdered {
			return x
		}
		if r.bad[col] {
			return nil
		}
	}
	if len(rel.Tuples) < MinIndexRows || len(rel.Tuples) > maxIndexRows {
		return nil
	}
	x := buildColumnIndex(rel, col, true)
	if x == nil {
		s.relFor(k).bad[col] = true
		return nil
	}
	s.relFor(k).cols[col] = x
	s.epoch++
	return x
}

// Hashed returns an equality-capable index on rel's column col — an
// already-built ordered index doubles as one — building a hashed index
// as needed, or nil when the relation is too small to be worth
// indexing.
func (s *IndexSet) Hashed(name string, rel *Relation, col int) *ColumnIndex {
	k := key(name)
	if r := s.rels[k]; r != nil {
		if x := r.cols[col]; x != nil {
			return x
		}
	}
	if len(rel.Tuples) < MinIndexRows || len(rel.Tuples) > maxIndexRows {
		return nil
	}
	x := buildColumnIndex(rel, col, false)
	s.relFor(k).cols[col] = x
	s.epoch++
	return x
}

// NoteAppend maintains the indexes of name after rows [first, len)
// were appended to rel. Like all maintenance hooks it must run under
// the same exclusive access as the mutation itself.
func (s *IndexSet) NoteAppend(name string, rel *Relation, first int) {
	k := key(name)
	r := s.rels[k]
	if r == nil {
		return
	}
	if len(rel.Tuples) > maxIndexRows {
		s.Invalidate(name)
		return
	}
	for col, x := range r.cols {
		ok := true
		for pos := first; pos < len(rel.Tuples) && ok; pos++ {
			t := rel.Tuples[pos]
			if col >= len(t) {
				ok = false
				break
			}
			ok = x.insert(t[col], int32(pos))
		}
		if !ok {
			s.dropCol(k, col)
		}
	}
}

// NoteReplace maintains the indexes of name after rel's row at pos was
// rewritten in place from old to new.
func (s *IndexSet) NoteReplace(name string, pos int, old, new schema.Tuple) {
	r := s.rels[key(name)]
	if r == nil {
		return
	}
	for col, x := range r.cols {
		if col >= len(old) || col >= len(new) {
			s.dropCol(key(name), col)
			continue
		}
		ov, nv := old[col], new[col]
		if ov.Equal(nv) {
			continue // same key either way (numerics fold cross-kind)
		}
		if !x.delete(ov, int32(pos)) || !x.insert(nv, int32(pos)) {
			s.dropCol(key(name), col)
		}
	}
}

// HasIndexOnAny reports whether any currently-built index of name sits
// on one of the given column ordinals. The indexed UPDATE path uses it
// to prove at bind time that its rewrites cannot move an indexed key —
// every indexed column's value is copied verbatim into the replacement
// row — and skip per-row replace maintenance entirely. The proof is
// keyed to the bind epoch: building an index on one of these columns
// later bumps the epoch, which forces a rebind and a fresh proof.
func (s *IndexSet) HasIndexOnAny(name string, cols []int) bool {
	r := s.rels[key(name)]
	if r == nil {
		return false
	}
	for _, c := range cols {
		if r.cols[c] != nil {
			return true
		}
	}
	return false
}

// NoteDelete renumbers the indexes of name after the rows at the given
// ascending positions were removed.
func (s *IndexSet) NoteDelete(name string, deleted []int32) {
	if len(deleted) == 0 {
		return
	}
	r := s.rels[key(name)]
	if r == nil {
		return
	}
	for _, x := range r.cols {
		x.renumber(deleted)
	}
}
