// Package storage provides the in-memory relational storage substrate:
// relations, databases, and a multi-versioned database supporting
// statement-granularity time travel. The paper's methods assume a DBMS
// with time travel (Oracle, SQL Server, DB2) to access the state D of
// the database before the first modified statement; VersionedDatabase
// plays that role here.
package storage

import (
	"fmt"
	"sort"
	"strings"

	"github.com/mahif/mahif/internal/schema"
)

// Relation is a bag of tuples with a schema.
type Relation struct {
	Schema *schema.Schema
	Tuples []schema.Tuple
}

// NewRelation builds an empty relation with the given schema.
func NewRelation(s *schema.Schema) *Relation {
	return &Relation{Schema: s}
}

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.Tuples) }

// Add appends tuples to the relation. Tuples must match the schema's
// arity; Add panics otherwise since this indicates a programming error
// upstream (parsing and statement validation check arity already).
func (r *Relation) Add(ts ...schema.Tuple) {
	for _, t := range ts {
		if len(t) != r.Schema.Arity() {
			panic(fmt.Sprintf("storage: tuple arity %d does not match schema %s", len(t), r.Schema))
		}
		r.Tuples = append(r.Tuples, t)
	}
}

// Clone returns a deep copy of the relation. Tuples are copied
// shallowly per-row (values are immutable).
func (r *Relation) Clone() *Relation {
	out := &Relation{Schema: r.Schema.Clone()}
	out.Tuples = make([]schema.Tuple, len(r.Tuples))
	for i, t := range r.Tuples {
		out.Tuples[i] = t.Clone()
	}
	return out
}

// Index builds the hash-based multiset index of the relation (the fast
// path for bag difference, delta computation, and bag equality).
func (r *Relation) Index() *TupleIndex { return IndexOf(r) }

// PartitionTuples splits a tuple slice into at most parts contiguous,
// non-empty chunks of near-equal size (no copying — chunks alias the
// input). Concatenating the chunks in order reproduces the input
// exactly, which is what lets the executor's parallel partitioned scans
// merge per-partition output back in sequential order.
func PartitionTuples(tuples []schema.Tuple, parts int) [][]schema.Tuple {
	if parts < 1 {
		parts = 1
	}
	if parts > len(tuples) {
		parts = len(tuples)
	}
	if parts == 0 {
		return nil
	}
	out := make([][]schema.Tuple, 0, parts)
	chunk := (len(tuples) + parts - 1) / parts
	for start := 0; start < len(tuples); start += chunk {
		out = append(out, tuples[start:min(start+chunk, len(tuples))])
	}
	return out
}

// Counts returns a string-keyed multiset view of the relation: tuple
// key → count, plus a representative tuple per key. It is a
// compatibility view built from the hash index; hot paths use Index
// directly and skip the string keys.
func (r *Relation) Counts() (map[string]int, map[string]schema.Tuple) {
	ix := r.Index()
	counts := make(map[string]int, ix.Distinct())
	repr := make(map[string]schema.Tuple, ix.Distinct())
	ix.Range(func(t schema.Tuple, count int) {
		k := t.Key()
		counts[k] += count
		if _, ok := repr[k]; !ok {
			repr[k] = t
		}
	})
	return counts, repr
}

// EqualAsBag reports whether two relations contain the same multiset of
// tuples.
func (r *Relation) EqualAsBag(o *Relation) bool {
	if len(r.Tuples) != len(o.Tuples) {
		return false
	}
	return r.Index().EqualMultiset(o.Index())
}

// String renders the relation (sorted by tuple key, for stable output).
func (r *Relation) String() string {
	var b strings.Builder
	b.WriteString(r.Schema.String())
	b.WriteByte('\n')
	rows := make([]string, len(r.Tuples))
	for i, t := range r.Tuples {
		rows[i] = t.String()
	}
	sort.Strings(rows)
	for _, row := range rows {
		b.WriteString("  ")
		b.WriteString(row)
		b.WriteByte('\n')
	}
	return b.String()
}

// Database is a set of named relations.
type Database struct {
	rels  map[string]*Relation
	order []string // insertion order, for deterministic iteration
}

// NewDatabase builds an empty database.
func NewDatabase() *Database {
	return &Database{rels: map[string]*Relation{}}
}

func key(name string) string { return strings.ToLower(name) }

// AddRelation registers a relation under its schema's relation name.
// An existing relation of the same name is replaced.
func (d *Database) AddRelation(r *Relation) {
	k := key(r.Schema.Relation)
	if _, ok := d.rels[k]; !ok {
		d.order = append(d.order, k)
	}
	d.rels[k] = r
}

// Relation returns the named relation or an error.
func (d *Database) Relation(name string) (*Relation, error) {
	r, ok := d.rels[key(name)]
	if !ok {
		return nil, fmt.Errorf("storage: no relation %q in database", name)
	}
	return r, nil
}

// SetRelation replaces the tuples of the named relation.
func (d *Database) SetRelation(name string, r *Relation) {
	k := key(name)
	if _, ok := d.rels[k]; !ok {
		d.order = append(d.order, k)
	}
	d.rels[k] = r
}

// RelationNames returns the relation names in registration order.
func (d *Database) RelationNames() []string {
	out := make([]string, len(d.order))
	copy(out, d.order)
	return out
}

// Clone deep-copies the database. This is the "Copy(D)" of the naive
// algorithm (Alg. 1) and is deliberately an O(data) operation so the
// naive method pays the copy cost the paper describes.
func (d *Database) Clone() *Database {
	out := NewDatabase()
	for _, k := range d.order {
		out.AddRelation(d.rels[k].Clone())
	}
	return out
}

// TotalTuples returns the number of tuples across all relations.
func (d *Database) TotalTuples() int {
	n := 0
	for _, r := range d.rels {
		n += len(r.Tuples)
	}
	return n
}

// String renders all relations.
func (d *Database) String() string {
	var b strings.Builder
	for _, k := range d.order {
		b.WriteString(d.rels[k].String())
	}
	return b.String()
}
