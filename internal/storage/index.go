package storage

import (
	"github.com/mahif/mahif/internal/schema"
)

// TupleIndex is a hash-based multiset of tuples: the typed FNV hash of
// each tuple (schema.Tuple.Hash) buckets entries, and value-level
// equality (schema.Tuple.Equal) resolves collisions. It replaces the
// string-keyed maps built from schema.Tuple.Key on the multiset hot
// paths — bag difference, delta computation, and bag equality — which
// paid an fmt.Fprintf-built string per tuple per operation.
type TupleIndex struct {
	buckets map[uint64][]indexEntry
	size    int // total multiplicity across entries
}

type indexEntry struct {
	tuple schema.Tuple
	count int
}

// NewTupleIndex returns an empty index with capacity for about n
// distinct tuples.
func NewTupleIndex(n int) *TupleIndex {
	return &TupleIndex{buckets: make(map[uint64][]indexEntry, n)}
}

// IndexOf builds the multiset index of a relation.
func IndexOf(r *Relation) *TupleIndex {
	ix := NewTupleIndex(len(r.Tuples))
	for _, t := range r.Tuples {
		ix.Add(t)
	}
	return ix
}

// Add increments the multiplicity of t, registering it if absent.
func (ix *TupleIndex) Add(t schema.Tuple) {
	h := t.Hash()
	bucket := ix.buckets[h]
	for i := range bucket {
		if bucket[i].tuple.Equal(t) {
			bucket[i].count++
			ix.size++
			return
		}
	}
	ix.buckets[h] = append(bucket, indexEntry{tuple: t, count: 1})
	ix.size++
}

// Remove decrements the multiplicity of t if it is present with a
// positive count and reports whether it did. An entry whose count
// reaches zero is compacted away (and its bucket deleted when it was
// the last entry), so add/remove churn — the steady state of
// incremental index maintenance — cannot accumulate tombstones that
// degrade probe cost and Distinct accounting.
func (ix *TupleIndex) Remove(t schema.Tuple) bool {
	h := t.Hash()
	bucket := ix.buckets[h]
	for i := range bucket {
		if bucket[i].count > 0 && bucket[i].tuple.Equal(t) {
			bucket[i].count--
			ix.size--
			if bucket[i].count == 0 {
				ix.compact(h, bucket, i)
			}
			return true
		}
	}
	return false
}

// compact swap-deletes the emptied entry at index i of bucket h.
func (ix *TupleIndex) compact(h uint64, bucket []indexEntry, i int) {
	last := len(bucket) - 1
	bucket[i] = bucket[last]
	bucket[last] = indexEntry{} // release the tuple reference
	if last == 0 {
		delete(ix.buckets, h)
	} else {
		ix.buckets[h] = bucket[:last]
	}
}

// RemoveRow is the batch-probe form of Remove for the vectorized
// executor: the candidate row lives spread across the column vectors
// cols at index row, and its typed tuple hash h (the same fold as
// schema.Tuple.Hash) was precomputed lane-wise. No row-major tuple is
// materialized; candidate verification boxes cells only on hash hits.
func (ix *TupleIndex) RemoveRow(cols []ColVec, row int, h uint64) bool {
	bucket := ix.buckets[h]
	for i := range bucket {
		if bucket[i].count > 0 && tupleEqualsRow(bucket[i].tuple, cols, row) {
			bucket[i].count--
			ix.size--
			if bucket[i].count == 0 {
				ix.compact(h, bucket, i)
			}
			return true
		}
	}
	return false
}

// tupleEqualsRow compares a stored tuple against one row of a
// column-vector block value-wise.
func tupleEqualsRow(t schema.Tuple, cols []ColVec, row int) bool {
	if len(t) != len(cols) {
		return false
	}
	for c := range t {
		if !t[c].Equal(cols[c].Value(row)) {
			return false
		}
	}
	return true
}

// Count returns the multiplicity of t.
func (ix *TupleIndex) Count(t schema.Tuple) int {
	bucket := ix.buckets[t.Hash()]
	for i := range bucket {
		if bucket[i].tuple.Equal(t) {
			return bucket[i].count
		}
	}
	return 0
}

// Len returns the total multiplicity (number of tuples counting
// duplicates).
func (ix *TupleIndex) Len() int { return ix.size }

// Distinct returns the number of distinct tuples. Remove compacts
// emptied entries, so every resident entry has positive count and the
// bucket sizes are the exact distinct count.
func (ix *TupleIndex) Distinct() int {
	n := 0
	for _, bucket := range ix.buckets {
		n += len(bucket)
	}
	return n
}

// Range visits every distinct tuple with its current multiplicity, in
// unspecified order. Entries whose count dropped to zero via Remove are
// skipped.
func (ix *TupleIndex) Range(visit func(t schema.Tuple, count int)) {
	for _, bucket := range ix.buckets {
		for i := range bucket {
			if bucket[i].count > 0 {
				visit(bucket[i].tuple, bucket[i].count)
			}
		}
	}
}

// Diff visits every tuple whose multiplicity in ix exceeds its
// multiplicity in o, with the (positive) difference. Buckets are
// aligned by their shared hash, so no tuple is re-hashed and the other
// index is probed once per bucket instead of once per distinct tuple —
// the bag-difference inner loop of delta computation.
func (ix *TupleIndex) Diff(o *TupleIndex, visit func(t schema.Tuple, d int)) {
	for h, bucket := range ix.buckets {
		other := o.buckets[h]
		for i := range bucket {
			if bucket[i].count <= 0 {
				continue
			}
			on := 0
			for j := range other {
				if other[j].tuple.Equal(bucket[i].tuple) {
					on = other[j].count
					break
				}
			}
			if d := bucket[i].count - on; d > 0 {
				visit(bucket[i].tuple, d)
			}
		}
	}
}

// EqualMultiset reports whether two indexes contain the same multiset.
func (ix *TupleIndex) EqualMultiset(o *TupleIndex) bool {
	if ix.size != o.size {
		return false
	}
	equal := true
	ix.Range(func(t schema.Tuple, count int) {
		if !equal || o.Count(t) != count {
			equal = false
		}
	})
	return equal
}
