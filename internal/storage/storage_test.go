package storage

import (
	"fmt"
	"testing"

	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/types"
)

func intRel(name string, vals ...int64) *Relation {
	r := NewRelation(schema.New(name, schema.Col("a", types.KindInt)))
	for _, v := range vals {
		r.Add(schema.Tuple{types.Int(v)})
	}
	return r
}

func TestRelationAddAndLen(t *testing.T) {
	r := intRel("t", 1, 2, 3)
	if r.Len() != 3 {
		t.Errorf("Len = %d", r.Len())
	}
}

func TestRelationAddArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on arity mismatch")
		}
	}()
	intRel("t").Add(schema.Tuple{types.Int(1), types.Int(2)})
}

func TestRelationClone(t *testing.T) {
	r := intRel("t", 1, 2)
	c := r.Clone()
	c.Tuples[0][0] = types.Int(99)
	c.Add(schema.Tuple{types.Int(3)})
	if r.Len() != 2 || r.Tuples[0][0].AsInt() != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestRelationCounts(t *testing.T) {
	r := intRel("t", 1, 2, 2, 3, 3, 3)
	counts, repr := r.Counts()
	if len(counts) != 3 {
		t.Errorf("distinct = %d", len(counts))
	}
	for k, c := range counts {
		want := repr[k][0].AsInt()
		if int64(c) != want {
			t.Errorf("count[%v] = %d, want %d", repr[k], c, want)
		}
	}
}

func TestEqualAsBag(t *testing.T) {
	a := intRel("t", 1, 2, 2)
	b := intRel("t", 2, 1, 2)
	if !a.EqualAsBag(b) {
		t.Error("order must not matter")
	}
	c := intRel("t", 1, 2)
	if a.EqualAsBag(c) {
		t.Error("multiplicity must matter")
	}
	d := intRel("t", 1, 2, 3)
	if a.EqualAsBag(d) {
		t.Error("different values compared equal")
	}
}

func TestDatabaseRelations(t *testing.T) {
	db := NewDatabase()
	db.AddRelation(intRel("A", 1))
	db.AddRelation(intRel("B", 2))
	if _, err := db.Relation("a"); err != nil {
		t.Errorf("case-insensitive lookup failed: %v", err)
	}
	if _, err := db.Relation("missing"); err == nil {
		t.Error("missing relation must error")
	}
	names := db.RelationNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("RelationNames = %v", names)
	}
	if db.TotalTuples() != 2 {
		t.Errorf("TotalTuples = %d", db.TotalTuples())
	}
}

func TestDatabaseClone(t *testing.T) {
	db := NewDatabase()
	db.AddRelation(intRel("A", 1))
	c := db.Clone()
	rel, _ := c.Relation("A")
	rel.Add(schema.Tuple{types.Int(2)})
	orig, _ := db.Relation("A")
	if orig.Len() != 1 {
		t.Error("Clone shares relations")
	}
}

// bump is a test mutator adding a constant to every tuple.
type bump struct {
	rel string
	by  int64
}

func (b bump) Apply(db *Database) error {
	r, err := db.Relation(b.rel)
	if err != nil {
		return err
	}
	for i, tup := range r.Tuples {
		r.Tuples[i] = schema.Tuple{types.Int(tup[0].AsInt() + b.by)}
	}
	return nil
}

func (b bump) String() string { return fmt.Sprintf("bump %s by %d", b.rel, b.by) }

func TestVersionedTimeTravel(t *testing.T) {
	db := NewDatabase()
	db.AddRelation(intRel("t", 10))
	v := NewVersioned(db)
	for i := 0; i < 5; i++ {
		if err := v.Apply(bump{rel: "t", by: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if v.NumVersions() != 5 {
		t.Errorf("NumVersions = %d", v.NumVersions())
	}
	for ver := 0; ver <= 5; ver++ {
		snap, err := v.Version(ver)
		if err != nil {
			t.Fatal(err)
		}
		rel, _ := snap.Relation("t")
		if got := rel.Tuples[0][0].AsInt(); got != int64(10+ver) {
			t.Errorf("Version(%d) = %d, want %d", ver, got, 10+ver)
		}
	}
	cur, _ := v.Current().Relation("t")
	if cur.Tuples[0][0].AsInt() != 15 {
		t.Errorf("current = %v", cur.Tuples[0])
	}
}

func TestVersionedVersionIsCopy(t *testing.T) {
	db := NewDatabase()
	db.AddRelation(intRel("t", 1))
	v := NewVersioned(db)
	if err := v.Apply(bump{rel: "t", by: 1}); err != nil {
		t.Fatal(err)
	}
	snap, _ := v.Version(0)
	rel, _ := snap.Relation("t")
	rel.Tuples[0][0] = types.Int(999)
	again, _ := v.Version(0)
	rel2, _ := again.Relation("t")
	if rel2.Tuples[0][0].AsInt() != 1 {
		t.Error("Version returned a shared copy")
	}
}

func TestVersionedCheckpoints(t *testing.T) {
	db := NewDatabase()
	db.AddRelation(intRel("t", 0))
	v := NewVersioned(db)
	v.SetCheckpointEvery(2)
	for i := 0; i < 7; i++ {
		if err := v.Apply(bump{rel: "t", by: 1}); err != nil {
			t.Fatal(err)
		}
	}
	for ver := 0; ver <= 7; ver++ {
		snap, err := v.Version(ver)
		if err != nil {
			t.Fatal(err)
		}
		rel, _ := snap.Relation("t")
		if got := rel.Tuples[0][0].AsInt(); got != int64(ver) {
			t.Errorf("Version(%d) = %d with checkpoints", ver, got)
		}
	}
}

func TestVersionedOutOfRange(t *testing.T) {
	v := NewVersioned(NewDatabase())
	if _, err := v.Version(1); err == nil {
		t.Error("Version beyond log must error")
	}
	if _, err := v.Version(-1); err == nil {
		t.Error("negative version must error")
	}
}

func TestVersionedLogCopy(t *testing.T) {
	db := NewDatabase()
	db.AddRelation(intRel("t", 0))
	v := NewVersioned(db)
	if err := v.Apply(bump{rel: "t", by: 1}); err != nil {
		t.Fatal(err)
	}
	log := v.Log()
	if len(log) != 1 {
		t.Fatalf("log length %d", len(log))
	}
	log[0] = nil // must not affect internal state
	if v.Log()[0] == nil {
		t.Error("Log returned internal slice")
	}
}
