package storage

import (
	"fmt"
	"sync"
	"testing"
)

func newBumpStore(t *testing.T, statements int) *VersionedDatabase {
	t.Helper()
	db := NewDatabase()
	db.AddRelation(intRel("t", 100))
	v := NewVersioned(db)
	for i := 0; i < statements; i++ {
		if err := v.Apply(bump{rel: "t", by: 1}); err != nil {
			t.Fatal(err)
		}
	}
	return v
}

func TestSnapshotMatchesVersion(t *testing.T) {
	v := newBumpStore(t, 8)
	c := NewSnapshotCache(v)
	for i := 0; i <= 8; i++ {
		want, err := v.Version(i)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Snapshot(i)
		if err != nil {
			t.Fatal(err)
		}
		wr, _ := want.Relation("t")
		gr, _ := got.Relation("t")
		if !wr.EqualAsBag(gr) {
			t.Errorf("Snapshot(%d) differs from Version(%d)", i, i)
		}
	}
}

func TestSnapshotIsShared(t *testing.T) {
	v := newBumpStore(t, 4)
	c := NewSnapshotCache(v)
	a, err := c.Snapshot(2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Snapshot(2)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("repeated Snapshot(2) returned distinct databases")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("Stats() = %d hits, %d misses, want 1, 1", hits, misses)
	}
}

// TestSnapshotPrefixReuse: building a later version after an earlier one
// must replay from the cached earlier snapshot, not from the base. The
// observable contract is correctness plus cache accounting; replay
// depth is covered indirectly by TestSnapshotMatchesVersion over a
// store whose mutators are order-sensitive (each bump compounds).
func TestSnapshotPrefixReuse(t *testing.T) {
	v := newBumpStore(t, 10)
	c := NewSnapshotCache(v)
	early, err := c.Snapshot(4)
	if err != nil {
		t.Fatal(err)
	}
	late, err := c.Snapshot(9)
	if err != nil {
		t.Fatal(err)
	}
	er, _ := early.Relation("t")
	lr, _ := late.Relation("t")
	if er.Tuples[0][0].AsInt() != 104 || lr.Tuples[0][0].AsInt() != 109 {
		t.Errorf("snapshots = %v, %v, want 104, 109", er.Tuples[0][0], lr.Tuples[0][0])
	}
	// The later build cloned the earlier snapshot; the earlier one must
	// be unaffected.
	if er.Tuples[0][0].AsInt() != 104 {
		t.Error("building Snapshot(9) mutated the shared Snapshot(4)")
	}
}

func TestSnapshotWithCheckpoints(t *testing.T) {
	db := NewDatabase()
	db.AddRelation(intRel("t", 0))
	v := NewVersioned(db)
	v.SetCheckpointEvery(3)
	for i := 0; i < 10; i++ {
		if err := v.Apply(bump{rel: "t", by: 1}); err != nil {
			t.Fatal(err)
		}
	}
	c := NewSnapshotCache(v)
	for _, i := range []int{10, 7, 3, 0, 5} {
		got, err := c.Snapshot(i)
		if err != nil {
			t.Fatal(err)
		}
		r, _ := got.Relation("t")
		if r.Tuples[0][0].AsInt() != int64(i) {
			t.Errorf("Snapshot(%d) = %v", i, r.Tuples[0][0])
		}
	}
}

func TestSnapshotOutOfRange(t *testing.T) {
	c := NewSnapshotCache(newBumpStore(t, 3))
	if _, err := c.Snapshot(-1); err == nil {
		t.Error("Snapshot(-1) succeeded")
	}
	if _, err := c.Snapshot(4); err == nil {
		t.Error("Snapshot(4) succeeded beyond the log")
	}
}

// TestSnapshotConcurrent hammers the cache from many goroutines asking
// for overlapping versions; run under -race this is the shared-state
// safety test for the cache itself.
func TestSnapshotConcurrent(t *testing.T) {
	v := newBumpStore(t, 12)
	c := NewSnapshotCache(v)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i <= 12; i++ {
				ver := (g + i) % 13
				db, err := c.Snapshot(ver)
				if err != nil {
					errs <- err
					return
				}
				r, _ := db.Relation("t")
				if got := r.Tuples[0][0].AsInt(); got != int64(100+ver) {
					errs <- fmt.Errorf("Snapshot(%d) = %d, want %d", ver, got, 100+ver)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	hits, misses := c.Stats()
	if misses != 13 {
		t.Errorf("misses = %d, want 13 (one per distinct version)", misses)
	}
	if hits+misses != 16*13 {
		t.Errorf("hits+misses = %d, want %d", hits+misses, 16*13)
	}
}

// TestSnapshotEvictionBound drives the append-then-query pattern that
// motivated retention: each version is touched once, so nothing is ever
// reused and an unbounded cache would pin one clone per version
// forever. The bound must hold throughout, evicted versions must
// rebuild correctly on re-demand, and recently used versions must
// survive over stale ones.
// TestSnapshotTipEviction pins the append+query loop: each round
// appends one statement and snapshots the new tip. Tip snapshots are
// private full copies of the live state, touched exactly once each, so
// without eager eviction they would pile up to the LRU bound as dead
// weight; with it, at most one stays resident and superseded ones are
// rebuilt by replay if ever re-demanded.
func TestSnapshotTipEviction(t *testing.T) {
	v := newBumpStore(t, 1)
	c := NewSnapshotCache(v)
	const rounds = 10
	for i := 0; i < rounds; i++ {
		if _, err := c.Snapshot(v.NumVersions()); err != nil {
			t.Fatal(err)
		}
		if got := c.TipResident(); got > 1 {
			t.Fatalf("round %d: TipResident = %d, want at most 1", i, got)
		}
		if err := v.Apply(bump{rel: "t", by: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.TipEvictions(); got != rounds-1 {
		t.Errorf("TipEvictions = %d, want %d", got, rounds-1)
	}
	// A superseded tip re-demanded is rebuilt by replay, correctly.
	db, err := c.Snapshot(3)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := db.Relation("t")
	if got := r.Tuples[0][0].AsInt(); got != 103 {
		t.Errorf("rebuilt superseded tip Snapshot(3) = %d, want 103", got)
	}
}

func TestSnapshotEvictionBound(t *testing.T) {
	v := newBumpStore(t, 20)
	c := NewSnapshotCache(v)
	c.SetLimit(4)
	for i := 0; i <= 20; i++ {
		if _, err := c.Snapshot(i); err != nil {
			t.Fatal(err)
		}
		if got := c.Resident(); got > 4 {
			t.Fatalf("after Snapshot(%d): Resident = %d exceeds limit 4", i, got)
		}
	}
	if got := c.Evictions(); got != 17 {
		t.Errorf("Evictions = %d, want 17 (21 builds over a 4-slot bound)", got)
	}
	// Version 0 was evicted long ago: re-demand rebuilds it correctly
	// and counts as a miss, not a hit.
	_, missesBefore := c.Stats()
	db, err := c.Snapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := db.Relation("t")
	if got := r.Tuples[0][0].AsInt(); got != 100 {
		t.Errorf("rebuilt Snapshot(0) = %d, want 100", got)
	}
	if _, misses := c.Stats(); misses != missesBefore+1 {
		t.Errorf("rebuild after eviction counted as a hit")
	}
	// LRU order: touch 18, then build a fresh version; 18 must survive
	// the eviction that admits it.
	if _, err := c.Snapshot(18); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Snapshot(5); err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	_, has18 := c.ready[18]
	c.mu.Unlock()
	if !has18 {
		t.Error("recently touched version 18 was evicted ahead of staler residents")
	}
	// Tightening the limit evicts immediately.
	c.SetLimit(1)
	if got := c.Resident(); got != 1 {
		t.Errorf("after SetLimit(1): Resident = %d", got)
	}
	// Unbounded (0) stops evicting.
	c.SetLimit(0)
	evicted := c.Evictions()
	for i := 0; i <= 20; i++ {
		if _, err := c.Snapshot(i); err != nil {
			t.Fatal(err)
		}
	}
	if c.Resident() != 21 || c.Evictions() != evicted {
		t.Errorf("unbounded cache evicted: Resident=%d Evictions=%d (was %d)",
			c.Resident(), c.Evictions(), evicted)
	}
}
