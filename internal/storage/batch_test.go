package storage

import (
	"math/rand"
	"testing"

	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/types"
)

// TestPartitionTuples pins the contract the parallel scan merge relies
// on: chunks are contiguous, non-empty, at most the requested count,
// and concatenate back to the input exactly.
func TestPartitionTuples(t *testing.T) {
	mk := func(n int) []schema.Tuple {
		out := make([]schema.Tuple, n)
		for i := range out {
			out[i] = schema.NewTuple(types.Int(int64(i)))
		}
		return out
	}
	for _, tc := range []struct{ n, parts int }{
		{0, 4}, {1, 4}, {3, 4}, {4, 4}, {5, 4}, {1024, 4}, {1025, 4},
		{10, 1}, {10, 0}, {10, -3}, {7, 100},
	} {
		tuples := mk(tc.n)
		parts := PartitionTuples(tuples, tc.parts)
		if tc.parts > 0 && len(parts) > tc.parts {
			t.Fatalf("n=%d parts=%d: got %d chunks", tc.n, tc.parts, len(parts))
		}
		var total int
		for pi, p := range parts {
			if len(p) == 0 {
				t.Fatalf("n=%d parts=%d: empty chunk %d", tc.n, tc.parts, pi)
			}
			for _, tp := range p {
				if tp[0].AsInt() != int64(total) {
					t.Fatalf("n=%d parts=%d: order broken at global row %d", tc.n, tc.parts, total)
				}
				total++
			}
		}
		if total != tc.n {
			t.Fatalf("n=%d parts=%d: chunks cover %d rows", tc.n, tc.parts, total)
		}
	}
}

// TestTupleIndexRemoveRow cross-validates the column-major batch probe
// against the row-major Remove on random multisets: both views of the
// same removal sequence must agree step by step.
func TestTupleIndexRemoveRow(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(40)
		rows := make([]schema.Tuple, n)
		for i := range rows {
			v := types.Value(types.Int(int64(rng.Intn(4))))
			if rng.Intn(8) == 0 {
				v = types.Null()
			}
			rows[i] = schema.NewTuple(v, types.String([]string{"a", "b"}[rng.Intn(2)]))
		}
		build := func() *TupleIndex {
			ix := NewTupleIndex(0)
			for _, r := range rows[:n/2] {
				ix.Add(r)
			}
			return ix
		}
		ixRow, ixCol := build(), build()

		// Column-major view of the probe rows (boxed lane).
		cols := make([]ColVec, 2)
		for c := range cols {
			cols[c].Vals = make([]types.Value, n)
			for i, r := range rows {
				cols[c].Vals[i] = r[c]
			}
		}
		for i, r := range rows {
			wantRemoved := ixRow.Remove(r)
			gotRemoved := ixCol.RemoveRow(cols, i, r.Hash())
			if wantRemoved != gotRemoved {
				t.Fatalf("trial %d row %d (%s): Remove=%v RemoveRow=%v", trial, i, r, wantRemoved, gotRemoved)
			}
			if ixRow.Len() != ixCol.Len() {
				t.Fatalf("trial %d row %d: sizes diverged %d vs %d", trial, i, ixRow.Len(), ixCol.Len())
			}
		}
	}
}

// TestTupleIndexRemoveRowArityMismatch: a row narrower or wider than
// the indexed tuples never matches.
func TestTupleIndexRemoveRowArityMismatch(t *testing.T) {
	ix := NewTupleIndex(0)
	tp := schema.NewTuple(types.Int(1), types.Int(2))
	ix.Add(tp)
	narrow := []ColVec{{Vals: []types.Value{types.Int(1)}}}
	if ix.RemoveRow(narrow, 0, schema.Tuple{types.Int(1)}.Hash()) {
		t.Fatal("narrow row removed a wider tuple")
	}
	if ix.Count(tp) != 1 {
		t.Fatal("count changed")
	}
}
