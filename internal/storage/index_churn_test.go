package storage

import (
	"math/rand"
	"testing"

	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/types"
)

// checkNoTombstones asserts the structural invariant Remove/RemoveRow
// compaction maintains: no resident entry has a zero count, no bucket
// is empty, and the entry total matches Distinct.
func checkNoTombstones(t *testing.T, ix *TupleIndex) {
	t.Helper()
	entries := 0
	for h, bucket := range ix.buckets {
		if len(bucket) == 0 {
			t.Fatalf("bucket %d is resident but empty", h)
		}
		for _, e := range bucket {
			if e.count <= 0 {
				t.Fatalf("bucket %d holds tombstone %v (count %d)", h, e.tuple, e.count)
			}
			entries++
		}
	}
	if entries != ix.Distinct() {
		t.Fatalf("entry total %d != Distinct %d", entries, ix.Distinct())
	}
}

// TestTupleIndexChurnCompaction drives random add/remove churn — the
// steady state of incremental index maintenance — against a multiset
// oracle and asserts compaction keeps the index tombstone-free
// throughout. Before Remove compacted zero-count entries, this churn
// accumulated dead entries that degraded probe cost and inflated
// Distinct.
func TestTupleIndexChurnCompaction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ix := NewTupleIndex(0)
	oracle := map[int64]int{}
	size := 0
	tup := func(v int64) schema.Tuple { return schema.Tuple{types.Int(v)} }
	for step := 0; step < 20000; step++ {
		v := int64(rng.Intn(40)) // small domain forces heavy churn per key
		if rng.Intn(2) == 0 {
			ix.Add(tup(v))
			oracle[v]++
			size++
		} else {
			removed := ix.Remove(tup(v))
			if removed != (oracle[v] > 0) {
				t.Fatalf("step %d: Remove(%d) = %v with oracle count %d", step, v, removed, oracle[v])
			}
			if removed {
				oracle[v]--
				if oracle[v] == 0 {
					delete(oracle, v)
				}
				size--
			}
		}
		if ix.Len() != size || ix.Distinct() != len(oracle) {
			t.Fatalf("step %d: Len=%d Distinct=%d, want %d/%d", step, ix.Len(), ix.Distinct(), size, len(oracle))
		}
	}
	checkNoTombstones(t, ix)
	for v, n := range oracle {
		if got := ix.Count(tup(v)); got != n {
			t.Fatalf("Count(%d) = %d, want %d", v, got, n)
		}
	}
	// Drain completely: every bucket must be deleted, not left empty.
	for v, n := range oracle {
		for i := 0; i < n; i++ {
			if !ix.Remove(tup(v)) {
				t.Fatalf("drain: Remove(%d) failed with %d copies left", v, n-i)
			}
		}
	}
	if ix.Len() != 0 || ix.Distinct() != 0 || len(ix.buckets) != 0 {
		t.Fatalf("drained index retains state: Len=%d Distinct=%d buckets=%d",
			ix.Len(), ix.Distinct(), len(ix.buckets))
	}
}

// TestTupleIndexCompactSwapDelete pins the swap-delete mechanics on a
// multi-entry bucket (a genuine hash collision is impractical to
// construct, so the bucket is assembled directly): the emptied entry is
// replaced by the last, the vacated slot is zeroed so the tuple
// reference is released, and the bucket shrinks by one.
func TestTupleIndexCompactSwapDelete(t *testing.T) {
	a, b, c := schema.Tuple{types.Int(1)}, schema.Tuple{types.Int(2)}, schema.Tuple{types.Int(3)}
	ix := NewTupleIndex(0)
	const h = uint64(42)
	backing := []indexEntry{{tuple: a, count: 0}, {tuple: b, count: 1}, {tuple: c, count: 2}}
	ix.buckets[h] = backing
	ix.size = 3

	ix.compact(h, backing, 0)
	bucket := ix.buckets[h]
	if len(bucket) != 2 {
		t.Fatalf("bucket length = %d, want 2", len(bucket))
	}
	if !bucket[0].tuple.Equal(c) || bucket[0].count != 2 {
		t.Fatalf("slot 0 = %v×%d, want last entry swapped in", bucket[0].tuple, bucket[0].count)
	}
	if backing[2].tuple != nil || backing[2].count != 0 {
		t.Fatalf("vacated slot not zeroed: %v×%d", backing[2].tuple, backing[2].count)
	}

	// Emptying the final entries must delete the bucket outright.
	ix.compact(h, bucket, 1)
	ix.compact(h, ix.buckets[h], 0)
	if _, ok := ix.buckets[h]; ok {
		t.Fatal("bucket survives after its last entry was compacted")
	}
}

// TestTupleIndexRemoveRowCompacts covers the vectorized removal path's
// compaction: draining a key through RemoveRow leaves no tombstone.
func TestTupleIndexRemoveRowCompacts(t *testing.T) {
	ix := NewTupleIndex(0)
	tup := schema.Tuple{types.Int(5), types.String("x")}
	ix.Add(tup)
	ix.Add(tup)
	cols := []ColVec{{Vals: []types.Value{types.Int(5)}}, {Vals: []types.Value{types.String("x")}}}
	h := tup.Hash()
	if !ix.RemoveRow(cols, 0, h) || !ix.RemoveRow(cols, 0, h) {
		t.Fatal("RemoveRow failed on present tuple")
	}
	if ix.RemoveRow(cols, 0, h) {
		t.Fatal("RemoveRow past zero succeeded")
	}
	if ix.Len() != 0 || ix.Distinct() != 0 || len(ix.buckets) != 0 {
		t.Fatalf("drained index retains state: Len=%d Distinct=%d buckets=%d",
			ix.Len(), ix.Distinct(), len(ix.buckets))
	}
	checkNoTombstones(t, ix)
}
