package types

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "null", KindInt: "int", KindFloat: "float",
		KindString: "string", KindBool: "bool",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if v := Int(42); v.Kind() != KindInt || v.AsInt() != 42 {
		t.Errorf("Int(42) = %v", v)
	}
	if v := Float(2.5); v.Kind() != KindFloat || v.AsFloat() != 2.5 {
		t.Errorf("Float(2.5) = %v", v)
	}
	if v := String("hi"); v.Kind() != KindString || v.AsString() != "hi" {
		t.Errorf("String = %v", v)
	}
	if v := Bool(true); v.Kind() != KindBool || !v.AsBool() {
		t.Errorf("Bool(true) = %v", v)
	}
	if !Null().IsNull() {
		t.Error("Null() not null")
	}
	var zero Value
	if !zero.IsNull() {
		t.Error("zero Value must be NULL")
	}
}

func TestAsFloatWidensInt(t *testing.T) {
	if got := Int(7).AsFloat(); got != 7.0 {
		t.Errorf("Int(7).AsFloat() = %v", got)
	}
}

func TestAccessorPanics(t *testing.T) {
	cases := []func(){
		func() { Null().AsInt() },
		func() { String("x").AsFloat() },
		func() { Int(1).AsString() },
		func() { Float(1).AsBool() },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestIsTrue(t *testing.T) {
	if !Bool(true).IsTrue() {
		t.Error("Bool(true) must be true")
	}
	for _, v := range []Value{Bool(false), Null(), Int(1), String("true")} {
		if v.IsTrue() {
			t.Errorf("%v must not be true", v)
		}
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "NULL"},
		{Int(-3), "-3"},
		{Float(2.5), "2.5"},
		{String("a"), "'a'"},
		{Bool(true), "true"},
		{Bool(false), "false"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{Int(1), Int(1), true},
		{Int(1), Int(2), false},
		{Int(1), Float(1), true}, // numeric cross-kind
		{Float(1.5), Float(1.5), true},
		{String("a"), String("a"), true},
		{String("a"), String("b"), false},
		{Bool(true), Bool(true), true},
		{Null(), Null(), true},
		{Null(), Int(0), false},
		{String("1"), Int(1), false},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("%v.Equal(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Equal(c.a); got != c.want {
			t.Errorf("Equal not symmetric for %v, %v", c.a, c.b)
		}
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(1), 1},
		{Int(2), Float(2), 0},
		{Float(1.5), Int(2), -1},
		{String("a"), String("b"), -1},
		{String("b"), String("a"), 1},
		{Bool(false), Bool(true), -1},
		{Bool(true), Bool(true), 0},
	}
	for _, c := range cases {
		got, err := c.a.Compare(c.b)
		if err != nil {
			t.Errorf("Compare(%v,%v): %v", c.a, c.b, err)
			continue
		}
		if got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareErrors(t *testing.T) {
	bad := [][2]Value{
		{Null(), Int(1)},
		{Int(1), Null()},
		{Int(1), String("1")},
		{Bool(true), Int(1)},
	}
	for _, pair := range bad {
		if _, err := pair[0].Compare(pair[1]); err == nil {
			t.Errorf("Compare(%v,%v): expected error", pair[0], pair[1])
		}
	}
}

func TestArithInts(t *testing.T) {
	cases := []struct {
		op   Op
		a, b int64
		want Value
	}{
		{OpAdd, 2, 3, Int(5)},
		{OpSub, 2, 3, Int(-1)},
		{OpMul, 4, 3, Int(12)},
		{OpDiv, 7, 2, Float(3.5)}, // division always floats
	}
	for _, c := range cases {
		got, err := Arith(c.op, Int(c.a), Int(c.b))
		if err != nil {
			t.Fatalf("Arith(%v): %v", c.op, err)
		}
		if !got.Equal(c.want) || got.Kind() != c.want.Kind() {
			t.Errorf("%d %s %d = %v (%v), want %v", c.a, c.op, c.b, got, got.Kind(), c.want)
		}
	}
}

func TestArithMixedPromotes(t *testing.T) {
	got, err := Arith(OpAdd, Int(1), Float(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind() != KindFloat || got.AsFloat() != 1.5 {
		t.Errorf("1 + 0.5 = %v", got)
	}
}

func TestArithNullPropagates(t *testing.T) {
	got, err := Arith(OpAdd, Null(), Int(1))
	if err != nil || !got.IsNull() {
		t.Errorf("NULL + 1 = %v, %v", got, err)
	}
}

func TestArithErrors(t *testing.T) {
	if _, err := Arith(OpAdd, String("a"), Int(1)); err == nil {
		t.Error("string arithmetic must error")
	}
	if _, err := Arith(OpDiv, Int(1), Int(0)); err == nil {
		t.Error("division by zero must error")
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want Value
	}{
		{"", Null()},
		{"NULL", Null()},
		{"42", Int(42)},
		{"-7", Int(-7)},
		{"2.5", Float(2.5)},
		{"true", Bool(true)},
		{"FALSE", Bool(false)},
		{"hello", String("hello")},
		{"12abc", String("12abc")},
	}
	for _, c := range cases {
		got := Parse(c.in)
		if !got.Equal(c.want) || got.Kind() != c.want.Kind() {
			t.Errorf("Parse(%q) = %v (%v), want %v", c.in, got, got.Kind(), c.want)
		}
	}
}

// Property: int arithmetic on +,-,* agrees with Go int64 arithmetic.
func TestArithMatchesGoProperty(t *testing.T) {
	f := func(a, b int32) bool {
		x, y := int64(a), int64(b)
		for _, c := range []struct {
			op   Op
			want int64
		}{{OpAdd, x + y}, {OpSub, x - y}, {OpMul, x * y}} {
			got, err := Arith(c.op, Int(x), Int(y))
			if err != nil || got.AsInt() != c.want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Compare is antisymmetric and Equal-consistent for ints.
func TestCompareAntisymmetricProperty(t *testing.T) {
	f := func(a, b int16) bool {
		va, vb := Int(int64(a)), Int(int64(b))
		ab, err1 := va.Compare(vb)
		ba, err2 := vb.Compare(va)
		if err1 != nil || err2 != nil {
			return false
		}
		if ab != -ba {
			return false
		}
		return (ab == 0) == va.Equal(vb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestArithFiniteDomain pins the closure of the value domain: float
// results outside the finite range (overflow to ±Inf, NaN from
// Inf-producing chains) are errors, never values. Parse already
// rejects such literals; together they guarantee comparison, hashing,
// and equality agree on every representable float.
func TestArithFiniteDomain(t *testing.T) {
	huge := Float(1.7e308)
	if _, err := Arith(OpMul, huge, Float(10)); err == nil {
		t.Error("float overflow produced a value, want error")
	}
	if _, err := Arith(OpAdd, huge, huge); err == nil {
		t.Error("float overflow via addition produced a value, want error")
	}
	if v, err := Arith(OpMul, huge, Float(0)); err != nil || v.AsFloat() != 0 {
		t.Errorf("finite product rejected: %v, %v", v, err)
	}
}

// TestArithConstMatchesArith pins the specialized constant-operand
// evaluator to the generic one over the full kind cross-product,
// including the specialized int/float Add/Sub fast cases, NULL
// propagation, division by zero, overflow, and non-numeric operands:
// same value, same error presence, for every (op, v, k).
func TestArithConstMatchesArith(t *testing.T) {
	vals := []Value{
		Null(), Int(0), Int(7), Int(-3), Float(0), Float(2.5), Float(-1.7e308),
		Float(1.7e308), String("x"), Bool(true),
	}
	for _, op := range []Op{OpAdd, OpSub, OpMul, OpDiv} {
		for _, k := range vals {
			fn := ArithConst(op, k)
			for _, v := range vals {
				want, wantErr := Arith(op, v, k)
				got, gotErr := fn(v)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("%v %s %v: error divergence: generic=%v const=%v", v, op, k, wantErr, gotErr)
				}
				if wantErr == nil && !want.Equal(got) && !(want.IsNull() && got.IsNull()) {
					t.Fatalf("%v %s %v: generic=%v const=%v", v, op, k, want, got)
				}
			}
		}
	}
}
