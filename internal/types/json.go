package types

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// JSON wire format for values. Kinds map onto native JSON so payloads
// stay human-readable, and the encoding is chosen so the mapping
// round-trips exactly:
//
//	NULL   → null
//	bool   → true / false
//	string → "..."
//	int    → a number with neither '.' nor exponent (e.g. 42)
//	float  → a number with a '.' or exponent (1.0, 2.5, 1e30)
//
// Floats whose shortest rendering looks integral gain a ".0" suffix,
// so Int(1) and Float(1) stay distinct across a round trip. The float
// domain is finite by construction (see Arith), so every value has a
// JSON rendering.

// MarshalJSON implements json.Marshaler with the wire format above.
func (v Value) MarshalJSON() ([]byte, error) {
	switch v.kind {
	case KindNull:
		return []byte("null"), nil
	case KindInt:
		return strconv.AppendInt(nil, v.i, 10), nil
	case KindFloat:
		out := strconv.FormatFloat(v.f, 'g', -1, 64)
		if !strings.ContainsAny(out, ".eE") {
			out += ".0"
		}
		return []byte(out), nil
	case KindString:
		return json.Marshal(v.s)
	case KindBool:
		if v.b {
			return []byte("true"), nil
		}
		return []byte("false"), nil
	}
	return nil, fmt.Errorf("types: cannot marshal kind %s", v.kind)
}

// UnmarshalJSON implements json.Unmarshaler for the wire format
// produced by MarshalJSON: numbers with a fraction or exponent decode
// to floats, bare integers to ints.
func (v *Value) UnmarshalJSON(data []byte) error {
	s := strings.TrimSpace(string(data))
	if s == "" {
		return fmt.Errorf("types: empty JSON value")
	}
	switch {
	case s == "null":
		*v = Null()
		return nil
	case s == "true":
		*v = Bool(true)
		return nil
	case s == "false":
		*v = Bool(false)
		return nil
	case s[0] == '"':
		var str string
		if err := json.Unmarshal([]byte(s), &str); err != nil {
			return fmt.Errorf("types: bad JSON string %s: %w", s, err)
		}
		*v = String(str)
		return nil
	}
	if strings.ContainsAny(s, ".eE") {
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return fmt.Errorf("types: bad JSON number %s: %w", s, err)
		}
		*v = Float(f)
		return nil
	}
	i, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		// Integral but beyond int64 (e.g. 1e300 written digit by
		// digit): fall back to the float domain rather than failing.
		f, ferr := strconv.ParseFloat(s, 64)
		if ferr != nil {
			return fmt.Errorf("types: bad JSON number %s: %w", s, err)
		}
		*v = Float(f)
		return nil
	}
	*v = Int(i)
	return nil
}

// ParseKind maps a kind's wire name (the Kind.String rendering) back
// to the Kind, for schema decoding.
func ParseKind(name string) (Kind, error) {
	switch strings.ToLower(name) {
	case "null":
		return KindNull, nil
	case "int":
		return KindInt, nil
	case "float":
		return KindFloat, nil
	case "string":
		return KindString, nil
	case "bool":
		return KindBool, nil
	}
	return KindNull, fmt.Errorf("types: unknown kind %q", name)
}
