// Package types defines the universal value domain D used by relations,
// expressions, and the symbolic machinery: 64-bit integers, floats,
// strings, booleans, and NULL, with SQL-style comparison and arithmetic.
package types

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the runtime type of a Value.
type Kind uint8

// The supported value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Value is a single attribute value from the universal domain.
// The zero Value is NULL.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
	b    bool
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a floating point value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// String returns a string value. (Methods and package-level functions
// live in different namespaces, so this does not clash with the
// fmt.Stringer method on Value; the historical String_ spelling is
// gone.)
func String(v string) Value { return Value{kind: KindString, s: v} }

// Bool returns a boolean value.
func Bool(v bool) Value { return Value{kind: KindBool, b: v} }

// True and False are the boolean constants.
var (
	True  = Bool(true)
	False = Bool(false)
)

// Kind reports the runtime kind of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsInt returns the integer payload. It panics unless Kind is KindInt.
func (v Value) AsInt() int64 {
	if v.kind != KindInt {
		panic(fmt.Sprintf("types: AsInt on %s value", v.kind))
	}
	return v.i
}

// AsFloat returns the numeric payload widened to float64. It panics
// unless the value is numeric.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindInt:
		return float64(v.i)
	case KindFloat:
		return v.f
	}
	panic(fmt.Sprintf("types: AsFloat on %s value", v.kind))
}

// AsString returns the string payload. It panics unless Kind is KindString.
func (v Value) AsString() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("types: AsString on %s value", v.kind))
	}
	return v.s
}

// AsBool returns the boolean payload. It panics unless Kind is KindBool.
func (v Value) AsBool() bool {
	if v.kind != KindBool {
		panic(fmt.Sprintf("types: AsBool on %s value", v.kind))
	}
	return v.b
}

// IsNumeric reports whether v is an int or float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// IsTrue reports whether v is the boolean true. NULL and non-boolean
// values are not true.
func (v Value) IsTrue() bool { return v.kind == KindBool && v.b }

// String renders the value in SQL literal syntax.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		// Render integral floats with an explicit ".0" (mirroring the
		// JSON wire format) so the SQL rendering round-trips to a float
		// rather than collapsing into the int domain.
		out := strconv.FormatFloat(v.f, 'g', -1, 64)
		if !strings.ContainsAny(out, ".eE") {
			out += ".0"
		}
		return out
	case KindString:
		// SQL-escape embedded quotes so renderings stay parseable.
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	case KindBool:
		if v.b {
			return "true"
		}
		return "false"
	}
	return "?"
}

// Equal reports deep equality of two values. NULL equals NULL here;
// use Compare for SQL three-valued semantics.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		// Numeric cross-kind equality: 1 == 1.0.
		if v.IsNumeric() && o.IsNumeric() {
			return v.AsFloat() == o.AsFloat()
		}
		return false
	}
	switch v.kind {
	case KindNull:
		return true
	case KindInt:
		return v.i == o.i
	case KindFloat:
		return v.f == o.f
	case KindString:
		return v.s == o.s
	case KindBool:
		return v.b == o.b
	}
	return false
}

// Compare orders two non-NULL values of comparable kinds: numerics
// numerically, strings lexicographically, bools false<true. It returns
// -1, 0, or +1 and an error for NULLs or incompatible kinds.
func (v Value) Compare(o Value) (int, error) {
	if v.kind == KindNull || o.kind == KindNull {
		return 0, fmt.Errorf("types: comparison with NULL has no order")
	}
	if v.IsNumeric() && o.IsNumeric() {
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1, nil
		case a > b:
			return 1, nil
		}
		return 0, nil
	}
	if v.kind != o.kind {
		return 0, fmt.Errorf("types: cannot compare %s with %s", v.kind, o.kind)
	}
	switch v.kind {
	case KindString:
		switch {
		case v.s < o.s:
			return -1, nil
		case v.s > o.s:
			return 1, nil
		}
		return 0, nil
	case KindBool:
		switch {
		case !v.b && o.b:
			return -1, nil
		case v.b && !o.b:
			return 1, nil
		}
		return 0, nil
	}
	return 0, fmt.Errorf("types: cannot compare %s values", v.kind)
}

// arithmetic ----------------------------------------------------------------

// Op is a binary scalar operator from the expression grammar (Fig. 7).
type Op uint8

// The arithmetic operators.
const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpDiv
)

// String returns the SQL spelling of the operator.
func (op Op) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	}
	return "?"
}

// Arith applies op to two values. NULL operands propagate to NULL.
// Division always produces a float; all other int∘int stay int.
// Float results that leave the finite domain (NaN, ±Inf — e.g. from
// overflow or Inf/Inf) are errors: Parse never admits them, and
// keeping them out of the value domain is what lets comparison,
// hashing, and equality agree everywhere (Compare has no consistent
// order for NaN).
func Arith(op Op, a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null(), nil
	}
	if !a.IsNumeric() || !b.IsNumeric() {
		return Null(), fmt.Errorf("types: arithmetic %s on %s and %s", op, a.kind, b.kind)
	}
	if op == OpDiv {
		d := b.AsFloat()
		if d == 0 {
			return Null(), fmt.Errorf("types: division by zero")
		}
		return finiteFloat(a.AsFloat() / d)
	}
	if a.kind == KindInt && b.kind == KindInt {
		switch op {
		case OpAdd:
			return Int(a.i + b.i), nil
		case OpSub:
			return Int(a.i - b.i), nil
		case OpMul:
			return Int(a.i * b.i), nil
		}
	}
	x, y := a.AsFloat(), b.AsFloat()
	switch op {
	case OpAdd:
		return finiteFloat(x + y)
	case OpSub:
		return finiteFloat(x - y)
	case OpMul:
		return finiteFloat(x * y)
	}
	return Null(), fmt.Errorf("types: unknown operator")
}

// ArithConst returns an evaluator for v ∘ k with the constant right
// operand baked in, semantically identical to Arith(op, v, k) on every
// input. The int and float Add/Sub cases — the dominant SET-clause
// shapes on the statement-application hot path — skip the general
// dispatch; mixed kinds, NULLs, Mul/Div, and non-numeric operands all
// fall back to Arith so the error and NULL behavior cannot drift.
func ArithConst(op Op, k Value) func(Value) (Value, error) {
	switch {
	case k.kind == KindInt && op == OpAdd:
		n := k.i
		return func(v Value) (Value, error) {
			if v.kind == KindInt {
				return Value{kind: KindInt, i: v.i + n}, nil
			}
			return Arith(op, v, k)
		}
	case k.kind == KindInt && op == OpSub:
		n := k.i
		return func(v Value) (Value, error) {
			if v.kind == KindInt {
				return Value{kind: KindInt, i: v.i - n}, nil
			}
			return Arith(op, v, k)
		}
	case k.kind == KindFloat && op == OpAdd:
		f := k.f
		return func(v Value) (Value, error) {
			if v.kind == KindFloat {
				return finiteFloat(v.f + f)
			}
			return Arith(op, v, k)
		}
	case k.kind == KindFloat && op == OpSub:
		f := k.f
		return func(v Value) (Value, error) {
			if v.kind == KindFloat {
				return finiteFloat(v.f - f)
			}
			return Arith(op, v, k)
		}
	}
	return func(v Value) (Value, error) { return Arith(op, v, k) }
}

func finiteFloat(f float64) (Value, error) {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return Null(), fmt.Errorf("types: arithmetic result %v outside the finite float domain", f)
	}
	return Float(f), nil
}

// Parse converts a raw token to the most specific value kind:
// int, then float, then bool, then string. The empty string and the
// literal "NULL" parse to NULL.
func Parse(s string) Value {
	if s == "" || s == "NULL" || s == "null" {
		return Null()
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return Int(i)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil && !math.IsInf(f, 0) && !math.IsNaN(f) {
		return Float(f)
	}
	switch s {
	case "true", "TRUE":
		return Bool(true)
	case "false", "FALSE":
		return Bool(false)
	}
	return String(s)
}
