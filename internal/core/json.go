package core

import (
	"encoding/json"
	"time"

	"github.com/mahif/mahif/internal/progslice"
)

// JSON wire format (v1) for the statistics types, pinned by golden
// tests alongside the delta format. Durations travel as integer
// nanoseconds under *_ns names so the format is stable across
// time.Duration's own rendering and trivially consumable from any
// client. Extend compatibly (add fields); never repurpose names.

type wireSliceStats struct {
	Tests       int   `json:"tests"`
	SolverNodes int   `json:"solver_nodes"`
	Indefinite  int   `json:"indefinite"`
	DurationNs  int64 `json:"duration_ns"`
	Kept        int   `json:"kept"`
	Removed     int   `json:"removed"`
}

type wireStats struct {
	TotalNs          int64                     `json:"total_ns"`
	TimeTravelNs     int64                     `json:"time_travel_ns"`
	ProgramSlicingNs int64                     `json:"program_slicing_ns"`
	DataSlicingNs    int64                     `json:"data_slicing_ns"`
	ExecuteNs        int64                     `json:"execute_ns"`
	DeltaNs          int64                     `json:"delta_ns"`
	TotalStatements  int                       `json:"total_statements"`
	KeptStatements   int                       `json:"kept_statements"`
	SolverTests      int                       `json:"solver_tests"`
	SolverNodes      int                       `json:"solver_nodes"`
	Slices           map[string]wireSliceStats `json:"slices,omitempty"`
	SkippedRelations []string                  `json:"skipped_relations,omitempty"`
}

// MarshalJSON implements json.Marshaler with the v1 stats format.
func (s *Stats) MarshalJSON() ([]byte, error) {
	w := wireStats{
		TotalNs:          s.Total.Nanoseconds(),
		TimeTravelNs:     s.TimeTravel.Nanoseconds(),
		ProgramSlicingNs: s.ProgramSlicing.Nanoseconds(),
		DataSlicingNs:    s.DataSlicing.Nanoseconds(),
		ExecuteNs:        s.Execute.Nanoseconds(),
		DeltaNs:          s.Delta.Nanoseconds(),
		TotalStatements:  s.TotalStatements,
		KeptStatements:   s.KeptStatements,
		SolverTests:      s.SolverTests,
		SolverNodes:      s.SolverNodes,
		SkippedRelations: s.SkippedRelations,
	}
	if len(s.Slices) > 0 {
		w.Slices = make(map[string]wireSliceStats, len(s.Slices))
		for rel, ps := range s.Slices {
			w.Slices[rel] = wireSliceStats{
				Tests:       ps.Tests,
				SolverNodes: ps.SolverNodes,
				Indefinite:  ps.Indefinite,
				DurationNs:  ps.Duration.Nanoseconds(),
				Kept:        ps.Kept,
				Removed:     ps.Removed,
			}
		}
	}
	return json.Marshal(w)
}

// UnmarshalJSON implements json.Unmarshaler for the v1 stats format.
func (s *Stats) UnmarshalJSON(data []byte) error {
	var w wireStats
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*s = Stats{
		Total:            time.Duration(w.TotalNs),
		TimeTravel:       time.Duration(w.TimeTravelNs),
		ProgramSlicing:   time.Duration(w.ProgramSlicingNs),
		DataSlicing:      time.Duration(w.DataSlicingNs),
		Execute:          time.Duration(w.ExecuteNs),
		Delta:            time.Duration(w.DeltaNs),
		TotalStatements:  w.TotalStatements,
		KeptStatements:   w.KeptStatements,
		SolverTests:      w.SolverTests,
		SolverNodes:      w.SolverNodes,
		SkippedRelations: w.SkippedRelations,
		Slices:           map[string]progslice.Stats{},
	}
	for rel, ps := range w.Slices {
		s.Slices[rel] = progslice.Stats{
			Tests:       ps.Tests,
			SolverNodes: ps.SolverNodes,
			Indefinite:  ps.Indefinite,
			Duration:    time.Duration(ps.DurationNs),
			Kept:        ps.Kept,
			Removed:     ps.Removed,
		}
	}
	return nil
}

type wireNaiveStats struct {
	TotalNs    int64 `json:"total_ns"`
	CreationNs int64 `json:"creation_ns"`
	ExecuteNs  int64 `json:"execute_ns"`
	DeltaNs    int64 `json:"delta_ns"`
}

// MarshalJSON implements json.Marshaler with the v1 stats format.
func (s *NaiveStats) MarshalJSON() ([]byte, error) {
	return json.Marshal(wireNaiveStats{
		TotalNs:    s.Total.Nanoseconds(),
		CreationNs: s.Creation.Nanoseconds(),
		ExecuteNs:  s.Execute.Nanoseconds(),
		DeltaNs:    s.Delta.Nanoseconds(),
	})
}

// UnmarshalJSON implements json.Unmarshaler for the v1 stats format.
func (s *NaiveStats) UnmarshalJSON(data []byte) error {
	var w wireNaiveStats
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*s = NaiveStats{
		Total:    time.Duration(w.TotalNs),
		Creation: time.Duration(w.CreationNs),
		Execute:  time.Duration(w.ExecuteNs),
		Delta:    time.Duration(w.DeltaNs),
	}
	return nil
}

type wireBatchStats struct {
	TotalNs        int64 `json:"total_ns"`
	Workers        int   `json:"workers"`
	Scenarios      int   `json:"scenarios"`
	Failed         int   `json:"failed"`
	SnapshotHits   int   `json:"snapshot_hits"`
	SnapshotMisses int   `json:"snapshot_misses"`
	MemoHits       int64 `json:"memo_hits"`
	MemoMisses     int64 `json:"memo_misses"`
	QueryHits      int   `json:"query_hits"`
	QueryMisses    int   `json:"query_misses"`
}

// MarshalJSON implements json.Marshaler with the v1 stats format.
func (s *BatchStats) MarshalJSON() ([]byte, error) {
	return json.Marshal(wireBatchStats{
		TotalNs:        s.Total.Nanoseconds(),
		Workers:        s.Workers,
		Scenarios:      s.Scenarios,
		Failed:         s.Failed,
		SnapshotHits:   s.SnapshotHits,
		SnapshotMisses: s.SnapshotMisses,
		MemoHits:       s.MemoHits,
		MemoMisses:     s.MemoMisses,
		QueryHits:      s.QueryHits,
		QueryMisses:    s.QueryMisses,
	})
}

// UnmarshalJSON implements json.Unmarshaler for the v1 stats format.
func (s *BatchStats) UnmarshalJSON(data []byte) error {
	var w wireBatchStats
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*s = BatchStats{
		Total:          time.Duration(w.TotalNs),
		Workers:        w.Workers,
		Scenarios:      w.Scenarios,
		Failed:         w.Failed,
		SnapshotHits:   w.SnapshotHits,
		SnapshotMisses: w.SnapshotMisses,
		MemoHits:       w.MemoHits,
		MemoMisses:     w.MemoMisses,
		QueryHits:      w.QueryHits,
		QueryMisses:    w.QueryMisses,
	}
	return nil
}
