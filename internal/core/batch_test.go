package core

import (
	"fmt"
	"testing"

	"github.com/mahif/mahif/internal/delta"
	"github.com/mahif/mahif/internal/history"
	"github.com/mahif/mahif/internal/workload"
)

// scenarioFamily converts the workload's derived scenario specs (see
// workload.ScenarioFamily) into core scenarios: threshold variations of
// the modification plus replacements at dependent positions, so the
// batch time-travels to more than one version.
func scenarioFamily(w *workload.Workload, n int) []Scenario {
	specs := w.ScenarioFamily(n)
	out := make([]Scenario, len(specs))
	for i, s := range specs {
		out[i] = Scenario{Label: s.Label, Mods: s.Mods}
	}
	return out
}

func sameDeltaSet(t *testing.T, label string, got, want delta.Set) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: delta covers %d relations, want %d", label, len(got), len(want))
		return
	}
	for rel, w := range want {
		g := got[rel]
		if g == nil {
			t.Errorf("%s: missing delta for %s", label, rel)
			continue
		}
		if !g.Equal(w) {
			t.Errorf("%s: delta for %s differs (batch %d tuples, sequential %d)",
				label, rel, g.Size(), w.Size())
		}
	}
}

// TestWhatIfBatchMatchesSequential is the equivalence property: for
// every variant, WhatIfBatch must produce tuple-for-tuple the same
// deltas as looping WhatIf over the scenarios one at a time.
func TestWhatIfBatchMatchesSequential(t *testing.T) {
	ds := workload.Taxi(800, 21)
	w, err := workload.Generate(ds, workload.Config{
		Updates: 10, Mods: 1, DependentPct: 30, AffectedPct: 10,
		InsertPct: 10, DeletePct: 10, Seed: 22,
	})
	if err != nil {
		t.Fatal(err)
	}
	vdb, err := w.Load()
	if err != nil {
		t.Fatal(err)
	}
	engine := New(vdb)
	scenarios := scenarioFamily(w, 7)
	// Include the workload's own modification set verbatim.
	scenarios = append(scenarios, Scenario{Label: "orig", Mods: w.Mods})

	for _, v := range []Variant{VariantR, VariantRPS, VariantRDS, VariantRFull} {
		opts := OptionsFor(v)
		want := make([]delta.Set, len(scenarios))
		for i, sc := range scenarios {
			d, _, err := engine.WhatIf(sc.Mods, opts)
			if err != nil {
				t.Fatalf("%s: sequential scenario %d: %v", v, i, err)
			}
			want[i] = d
		}
		results, bs, err := engine.WhatIfBatch(scenarios, BatchOptions{Options: opts, Workers: 4})
		if err != nil {
			t.Fatalf("%s: batch: %v", v, err)
		}
		if len(results) != len(scenarios) {
			t.Fatalf("%s: %d results for %d scenarios", v, len(results), len(scenarios))
		}
		if bs.Failed != 0 {
			t.Fatalf("%s: %d scenarios failed", v, bs.Failed)
		}
		for i, r := range results {
			if r.Scenario != i || r.Label != scenarios[i].Label {
				t.Errorf("%s: result %d is scenario %d (%q)", v, i, r.Scenario, r.Label)
			}
			if r.Err != nil {
				t.Errorf("%s: scenario %d: %v", v, i, r.Err)
				continue
			}
			sameDeltaSet(t, fmt.Sprintf("%s scenario %d", v, i), r.Delta, want[i])
		}
	}
}

// TestWhatIfBatchSharingOff checks the benchmark baseline path (private
// snapshots, no memo) still matches the shared path.
func TestWhatIfBatchSharingOff(t *testing.T) {
	ds := workload.YCSB(600, 23)
	w, err := workload.Generate(ds, workload.Config{
		Updates: 8, Mods: 1, DependentPct: 25, AffectedPct: 10, Seed: 24,
	})
	if err != nil {
		t.Fatal(err)
	}
	vdb, err := w.Load()
	if err != nil {
		t.Fatal(err)
	}
	engine := New(vdb)
	scenarios := scenarioFamily(w, 5)
	shared, _, err := engine.WhatIfBatch(scenarios, BatchOptions{Options: DefaultOptions(), Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	private, bs, err := engine.WhatIfBatch(scenarios, BatchOptions{
		Options: DefaultOptions(), Workers: 3,
		NoSnapshotSharing: true, NoCompileMemo: true, NoQueryCache: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if bs.SnapshotHits != 0 || bs.SnapshotMisses != 0 || bs.MemoHits != 0 || bs.MemoMisses != 0 ||
		bs.QueryHits != 0 || bs.QueryMisses != 0 {
		t.Errorf("sharing disabled but stats = %+v", bs)
	}
	for i := range scenarios {
		sameDeltaSet(t, fmt.Sprintf("scenario %d", i), private[i].Delta, shared[i].Delta)
	}
}

// TestWhatIfBatchSharingStats pins the reuse accounting: identical
// scenarios must share one snapshot and hit the solver memo.
func TestWhatIfBatchSharingStats(t *testing.T) {
	ds := workload.Taxi(500, 25)
	w, err := workload.Generate(ds, workload.Config{
		Updates: 8, Mods: 1, DependentPct: 25, AffectedPct: 10, Seed: 26,
	})
	if err != nil {
		t.Fatal(err)
	}
	vdb, err := w.Load()
	if err != nil {
		t.Fatal(err)
	}
	engine := New(vdb)
	// Four copies of the same scenario: maximal sharing.
	sc := Scenario{Label: "same", Mods: w.Mods}
	results, bs, err := engine.WhatIfBatch([]Scenario{sc, sc, sc, sc},
		BatchOptions{Options: DefaultOptions(), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	if bs.SnapshotMisses != 1 {
		t.Errorf("SnapshotMisses = %d, want 1 (one distinct version)", bs.SnapshotMisses)
	}
	// The dispatch pre-warm materializes the version once; every
	// scenario's own lookup is then a hit.
	if bs.SnapshotHits != 4 {
		t.Errorf("SnapshotHits = %d, want 4", bs.SnapshotHits)
	}
	if bs.MemoHits == 0 {
		t.Error("MemoHits = 0: identical slicing programs were re-solved")
	}
	if bs.QueryHits == 0 {
		t.Error("QueryHits = 0: identical reenactment programs were re-evaluated")
	}
}

// TestWhatIfBatchCollectsErrors: a failing scenario must not abort the
// batch nor poison its siblings.
func TestWhatIfBatchCollectsErrors(t *testing.T) {
	ds := workload.Taxi(400, 27)
	w, err := workload.Generate(ds, workload.Config{
		Updates: 6, Mods: 1, DependentPct: 20, AffectedPct: 10, Seed: 28,
	})
	if err != nil {
		t.Fatal(err)
	}
	vdb, err := w.Load()
	if err != nil {
		t.Fatal(err)
	}
	engine := New(vdb)
	scenarios := []Scenario{
		{Label: "ok", Mods: w.Mods},
		{Label: "bad", Mods: []history.Modification{history.DeleteStmt{Pos: 999}}},
		{Label: "ok2", Mods: w.Mods},
	}
	results, bs, err := engine.WhatIfBatch(scenarios, BatchOptions{Options: DefaultOptions(), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if bs.Failed != 1 {
		t.Errorf("Failed = %d, want 1", bs.Failed)
	}
	if results[1].Err == nil {
		t.Error("out-of-range scenario reported no error")
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Errorf("healthy scenarios errored: %v, %v", results[0].Err, results[2].Err)
	}
	if results[0].Delta == nil || results[2].Delta == nil {
		t.Error("healthy scenarios produced no delta")
	}

	if _, _, err := engine.WhatIfBatch(nil, BatchOptions{}); err == nil {
		t.Error("empty batch succeeded")
	}
}

// TestWhatIfBatchStress is the race detector workout: many scenarios,
// a small worker pool, one shared snapshot and memo. It exists to run
// under `go test -race ./internal/core/`.
func TestWhatIfBatchStress(t *testing.T) {
	ds := workload.Taxi(400, 29)
	w, err := workload.Generate(ds, workload.Config{
		Updates: 8, Mods: 1, DependentPct: 25, AffectedPct: 10,
		InsertPct: 12, DeletePct: 12, Seed: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	vdb, err := w.Load()
	if err != nil {
		t.Fatal(err)
	}
	engine := New(vdb)
	n := 24
	if testing.Short() {
		n = 8
	}
	scenarios := scenarioFamily(w, n)
	results, bs, err := engine.WhatIfBatch(scenarios, BatchOptions{Options: DefaultOptions(), Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if bs.Failed != 0 {
		t.Fatalf("%d scenarios failed", bs.Failed)
	}
	// Same batch again with all sharing off; answers must agree.
	baseline, _, err := engine.WhatIfBatch(scenarios, BatchOptions{
		Options: DefaultOptions(), Workers: 4,
		NoSnapshotSharing: true, NoCompileMemo: true, NoQueryCache: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range scenarios {
		sameDeltaSet(t, fmt.Sprintf("scenario %d", i), results[i].Delta, baseline[i].Delta)
	}
}

// BenchmarkWhatIfBatch measures the scenarios × workers grid. The
// workers=1 rows are the sequential baseline the parallel rows are
// judged against.
func BenchmarkWhatIfBatch(b *testing.B) {
	ds := workload.Taxi(2000, 41)
	w, err := workload.Generate(ds, workload.Config{
		Updates: 20, Mods: 1, DependentPct: 20, AffectedPct: 10, Seed: 42,
	})
	if err != nil {
		b.Fatal(err)
	}
	vdb, err := w.Load()
	if err != nil {
		b.Fatal(err)
	}
	engine := New(vdb)
	for _, n := range []int{4, 16} {
		scenarios := scenarioFamily(w, n)
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("scenarios=%d/workers=%d", n, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					results, _, err := engine.WhatIfBatch(scenarios,
						BatchOptions{Options: DefaultOptions(), Workers: workers})
					if err != nil {
						b.Fatal(err)
					}
					for _, r := range results {
						if r.Err != nil {
							b.Fatal(r.Err)
						}
					}
				}
			})
		}
	}
}

// BenchmarkWhatIfSequentialLoop is the pre-batch API baseline: a plain
// loop over WhatIf with no sharing at all.
func BenchmarkWhatIfSequentialLoop(b *testing.B) {
	ds := workload.Taxi(2000, 41)
	w, err := workload.Generate(ds, workload.Config{
		Updates: 20, Mods: 1, DependentPct: 20, AffectedPct: 10, Seed: 42,
	})
	if err != nil {
		b.Fatal(err)
	}
	vdb, err := w.Load()
	if err != nil {
		b.Fatal(err)
	}
	engine := New(vdb)
	scenarios := scenarioFamily(w, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, sc := range scenarios {
			if _, _, err := engine.WhatIf(sc.Mods, DefaultOptions()); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func TestEvalCacheLRUBound(t *testing.T) {
	c := newEvalCache()
	add := func(ver int, done bool) resultKey {
		key := resultKey{ver: ver, fp: "q"}
		e := &evalEntry{done: make(chan struct{})}
		if done {
			close(e.done)
		}
		c.mu.Lock()
		e.elem = c.lru.PushFront(key)
		c.results[key] = e
		c.enforceBoundLocked()
		c.mu.Unlock()
		return key
	}
	// An in-flight entry inserted first must survive any amount of
	// later traffic: workers are parked on its done channel.
	inflight := add(-1, false)
	const extra = 10
	for i := 0; i < defaultQueryCacheEntries+extra; i++ {
		add(i, true)
	}
	if got := c.resident(); got != defaultQueryCacheEntries {
		t.Fatalf("resident = %d, want %d", got, defaultQueryCacheEntries)
	}
	// The in-flight entry occupies a slot, so one extra completed entry
	// was evicted to make room for it.
	if got := c.evicted(); got != extra+1 {
		t.Fatalf("evictions = %d, want %d", got, extra+1)
	}
	c.mu.Lock()
	_, ok := c.results[inflight]
	c.mu.Unlock()
	if !ok {
		t.Fatalf("in-flight entry was evicted")
	}
	// The oldest completed entries are the ones that went.
	c.mu.Lock()
	_, oldest := c.results[resultKey{ver: 0, fp: "q"}]
	_, newest := c.results[resultKey{ver: defaultQueryCacheEntries + extra - 1, fp: "q"}]
	c.mu.Unlock()
	if oldest {
		t.Fatalf("oldest completed entry survived the bound")
	}
	if !newest {
		t.Fatalf("newest entry was evicted")
	}
}
