package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/mahif/mahif/internal/algebra"
	"github.com/mahif/mahif/internal/compile"
	"github.com/mahif/mahif/internal/dataslice"
	"github.com/mahif/mahif/internal/delta"
	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/history"
	"github.com/mahif/mahif/internal/progslice"
	"github.com/mahif/mahif/internal/reenact"
	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/storage"
	"github.com/mahif/mahif/internal/symbolic"
	"github.com/mahif/mahif/internal/types"
)

// Template is a compiled parameterized what-if scenario: a modification
// sequence whose statements carry named $param slots (expr.Param),
// compiled once against a pinned history version into a reusable
// artifact, then answered per parameter binding in a fraction of a full
// WhatIf. The million-user pattern — everyone asks the same what-if
// with different constants — pays compile+solve once instead of per
// user.
//
// What the artifact precomputes (and Eval therefore skips):
//
//   - history alignment and time travel: the padded pair and the
//     snapshot at the first modified position are pinned;
//   - program slicing: the slicing MILPs are solved once with the
//     $slots as free solver variables, which is sound for every later
//     binding (UNSAT with a free slot ⇒ UNSAT for each constant), so
//     no binding ever runs the solver;
//   - the original-side reenactment: original histories never contain
//     parameters, so each relation's original-side result is
//     materialized once;
//   - relations whose modified side carries no parameter: their whole
//     delta is static and served as-is.
//
// Per binding, Eval substitutes the constants into the retained
// modified-side query skeleton, evaluates it over the pinned snapshot,
// and diffs against the materialized original side. Data slicing
// survives compilation when every $slot sits in value position (UPDATE
// SET expressions, INSERT values): conditions are then concrete, so
// the slicing filters are binding-invariant and bake into the pinned
// plan soundly. A slot inside a condition (UPDATE/DELETE WHERE,
// INSERT … SELECT) would parameterize the filters themselves, so data
// slicing is disabled for those templates; since every variant
// produces identical deltas, this changes speed, never results.
//
// Templates are safe for concurrent use. When the engine's history
// advances, the next Eval transparently recompiles the artifact against
// the new version (the append-invalidation contract); Stats counts
// those recompiles.
type Template struct {
	e      *Engine
	opts   Options
	mods   []history.Modification
	params map[string]paramClass
	shared *batchShared // session caches for recompiles (nil for engine-level templates)

	mu         sync.RWMutex
	art        *templateArtifact
	evals      int64
	recompiles int64
}

// paramClass is the inferred value class of one parameter slot.
type paramClass uint8

const (
	classAny     paramClass = iota // never constrained: any value binds
	classNumeric                   // int or float
	classString
	classBool
)

func (c paramClass) String() string {
	switch c {
	case classNumeric:
		return "numeric"
	case classString:
		return "string"
	case classBool:
		return "bool"
	}
	return "any"
}

// kind maps the class onto the solver kind of the free slot variable.
func (c paramClass) kind() types.Kind {
	switch c {
	case classString:
		return types.KindString
	case classBool:
		return types.KindBool
	}
	// Numeric and unconstrained slots relax to the float box, which
	// contains every dictionary code and every workload numeric.
	return types.KindFloat
}

func classOf(k types.Kind) paramClass {
	switch k {
	case types.KindInt, types.KindFloat:
		return classNumeric
	case types.KindString:
		return classString
	case types.KindBool:
		return classBool
	}
	return classAny
}

// templateArtifact is one compiled instance of the template, valid for
// exactly one history version.
type templateArtifact struct {
	version int               // history length the artifact answers against
	db      *storage.Database // pinned snapshot at the first modified position
	static  delta.Set         // param-free relations: their delta, precomputed
	rels    []templateRel     // param-dependent relations
	stats   TemplateStats
}

// templateRel is one relation whose modified side depends on the
// binding.
type templateRel struct {
	rel  string
	orig *storage.Relation // materialized original-side reenactment result
	modQ algebra.Query     // modified-side query skeleton, $slots open
}

// TemplateStats describes one compiled artifact plus the template's
// lifetime counters.
type TemplateStats struct {
	// Version is the history version the current artifact is compiled
	// against; CompileTime is that compilation's wall-clock cost (the
	// cost each Eval amortizes away).
	Version     int
	CompileTime time.Duration
	// TotalStatements and KeptStatements mirror Stats: suffix length
	// and post-slicing retained positions (summed over relations).
	TotalStatements int
	KeptStatements  int
	// The solver outcome partitions over the kept statements:
	// BindingIndependent statements were retained by tests free of any
	// $slot (they would be kept under every binding for structural
	// reasons); BindingDependent statements' tests involved an open
	// slot, so they are retained conservatively for all bindings.
	BindingIndependent int
	BindingDependent   int
	// SolverTests/SolverNodes report the one-time slicing effort.
	SolverTests int
	SolverNodes int
	// DataSlicing reports whether the artifact was compiled with data
	// slicing filters baked into the reenactment plans — possible only
	// when every $slot sits in value (SET) position, so the filters are
	// binding-invariant.
	DataSlicing bool
	// StaticRelations' deltas are fully precomputed;
	// DynamicRelations are re-evaluated per binding;
	// SkippedRelations were pruned by taint analysis.
	StaticRelations  []string
	DynamicRelations []string
	SkippedRelations []string
	// Evals counts bindings answered; Recompiles counts artifact
	// rebuilds triggered by history advances.
	Evals      int64
	Recompiles int64
}

// CompileTemplate compiles a parameterized modification sequence into a
// reusable template (see Template). The modifications carry $name
// parameter slots in their statement expressions; statements without
// slots are allowed (a slot-free template degenerates to a cached
// WhatIf). Compilation fails if a parameter is used with conflicting
// value classes (e.g. compared against a string here and added to a
// number there).
func (e *Engine) CompileTemplate(mods []history.Modification, opts Options) (*Template, error) {
	return e.CompileTemplateCtx(context.Background(), mods, opts)
}

// CompileTemplateCtx is CompileTemplate under a context (the initial
// artifact compilation observes ctx inside the solver and executors).
func (e *Engine) CompileTemplateCtx(ctx context.Context, mods []history.Modification, opts Options) (*Template, error) {
	return e.compileTemplate(ctx, mods, opts, nil)
}

func (e *Engine) compileTemplate(ctx context.Context, mods []history.Modification, opts Options, shared *batchShared) (*Template, error) {
	if len(mods) == 0 {
		return nil, fmt.Errorf("core: empty template modification sequence")
	}
	// Data slicing filters derive from statement conditions. A $slot in
	// a condition would parameterize the filters and bake one binding's
	// constants into the pinned plan, so slicing stays off for such
	// templates (results are variant-invariant). SET-only slots leave
	// every condition concrete and the filters binding-invariant, so
	// slicing survives compilation; compile() still guards against the
	// one leak path (push-down substitution through a parameterized SET
	// vector).
	if !setOnlyParams(mods) {
		opts.DataSlicing = false
	}
	t := &Template{e: e, opts: opts, mods: mods, shared: shared}
	if _, err := t.artifact(ctx); err != nil {
		return nil, err
	}
	return t, nil
}

// setOnlyParams reports whether every $slot of the modification
// sequence appears only in value position: UPDATE SET expressions and
// INSERT … VALUES rows. Conditions (UPDATE/DELETE WHERE, the query of
// INSERT … SELECT) must be slot-free. Such templates describe "what if
// the written values had been different" scenarios whose affected-row
// sets are binding-invariant, which is exactly the property data
// slicing needs to stay sound across bindings.
func setOnlyParams(mods []history.Modification) bool {
	for _, m := range mods {
		var st history.Statement
		switch x := m.(type) {
		case history.Replace:
			st = x.Stmt
		case history.InsertStmt:
			st = x.Stmt
		default:
			continue
		}
		switch x := st.(type) {
		case *history.Update:
			if len(expr.Params(x.Where)) > 0 {
				return false
			}
		case *history.Delete:
			if len(expr.Params(x.Where)) > 0 {
				return false
			}
		case *history.InsertQuery:
			if len(algebra.Params(x.Query)) > 0 {
				return false
			}
		}
	}
	return true
}

// dropParamFilters widens away any slicing filter that captured a
// $slot. With SET-only slots the base conditions are concrete, but the
// backward push-down substitutes SET vectors of earlier statements
// into later conditions, and a parameterized SET expression can leak
// its slot into the pushed filter. Filters are an optimization, so
// widening to "scan everything" is always sound; both sides of a
// relation go together because the delta relies on the two
// reenactments agreeing on which base tuples are in scope.
func dropParamFilters(filters *dataslice.Conditions) {
	for rel, f := range filters.H {
		if len(expr.Params(f)) > 0 {
			delete(filters.H, rel)
			delete(filters.M, rel)
		}
	}
	for rel, f := range filters.M {
		if len(expr.Params(f)) > 0 {
			delete(filters.H, rel)
			delete(filters.M, rel)
		}
	}
}

// Params returns the template's parameter slots and their inferred
// value classes ("numeric", "string", "bool", or "any").
func (t *Template) Params() map[string]string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make(map[string]string, len(t.params))
	for name, c := range t.params {
		out[name] = c.String()
	}
	return out
}

// Stats snapshots the current artifact's compilation profile and the
// template's lifetime counters.
func (t *Template) Stats() TemplateStats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	st := t.art.stats
	st.Evals = t.evals
	st.Recompiles = t.recompiles
	return st
}

// Version returns the history version the current artifact answers
// against.
func (t *Template) Version() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.art.version
}

// artifact returns the current artifact, transparently recompiling when
// the engine's history has advanced past the artifact's version.
func (t *Template) artifact(ctx context.Context) (*templateArtifact, error) {
	t.mu.RLock()
	art := t.art
	t.mu.RUnlock()
	if art != nil && art.version == t.e.Version() {
		return art, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.art != nil && t.art.version == t.e.Version() {
		return t.art, nil
	}
	art, params, err := t.compile(ctx)
	if err != nil {
		return nil, err
	}
	if t.art != nil {
		t.recompiles++
	}
	t.art, t.params = art, params
	return art, nil
}

// compile builds one artifact against the engine's current history.
// Caller holds t.mu (write) or has exclusive access.
func (t *Template) compile(ctx context.Context) (*templateArtifact, map[string]paramClass, error) {
	start := time.Now()
	h, err := t.e.History()
	if err != nil {
		return nil, nil, err
	}
	pair, err := history.ApplyModifications(h, t.mods)
	if err != nil {
		return nil, nil, err
	}
	tip := len(h)

	var snaps *storage.SnapshotCache
	if t.shared != nil {
		snaps = t.shared.snaps
	}
	stats := &Stats{Slices: map[string]progslice.Stats{}}
	suffix, db, _, err := t.e.snapshotFor(ctx, pair, stats, snaps)
	if err != nil {
		return nil, nil, err
	}

	// Original histories are applied statements and can never carry
	// open slots; reject defensively so a malformed history fails here
	// rather than with an opaque executor error per binding.
	params, err := inferParams(suffix, db)
	if err != nil {
		return nil, nil, err
	}

	opts := t.opts
	if len(params) > 0 {
		pk := make(map[string]types.Kind, len(params))
		for name, c := range params {
			pk[name] = c.kind()
		}
		opts.Compile.ParamKinds = pk
	}
	if t.shared != nil && opts.Compile.Memo == nil {
		opts.Compile.Memo = t.shared.memo
	}

	art := &templateArtifact{version: tip, db: db, static: delta.Set{}}
	art.stats.Version = tip
	art.stats.TotalStatements = len(suffix.Orig)
	ev := evaluator{ctx: ctx, ver: tip, kind: normalizeExecutor(opts.Executor), vec: opts.Vec}

	// Data slicing (§6): with SET-only slots the filters are
	// binding-invariant (compileTemplate disabled slicing otherwise),
	// so they compile once into the pinned plans like any other
	// artifact component. dropParamFilters catches the push-down leak.
	filters := &dataslice.Conditions{H: reenact.Filters{}, M: reenact.Filters{}}
	if opts.DataSlicing {
		filters, err = dataslice.Compute(suffix, db, opts.DataSlice)
		if err != nil {
			return nil, nil, err
		}
		dropParamFilters(filters)
		art.stats.DataSlicing = true
	}

	rels := relationUnion(suffix)
	tainted := dataslice.TaintedRelations(suffix)
	targets := make([]string, 0, len(rels))
	for rel := range rels {
		if opts.SkipUntainted && !tainted[rel] {
			art.stats.SkippedRelations = append(art.stats.SkippedRelations, rel)
			continue
		}
		targets = append(targets, rel)
	}
	sort.Strings(targets)

	for _, rel := range targets {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		if err := t.compileRelation(ctx, suffix, db, rel, filters, opts, ev, art); err != nil {
			return nil, nil, err
		}
	}
	sort.Strings(art.stats.SkippedRelations)
	art.stats.CompileTime = time.Since(start)
	return art, params, nil
}

// compileRelation mirrors Engine.splitPath for one relation: slice the
// insert-free pair once (with $slots as free solver variables),
// materialize the original side, and either precompute the delta
// (modified side closed) or retain the open query skeleton.
func (t *Template) compileRelation(ctx context.Context, suffix *history.PaddedPair, db *storage.Database, rel string, filters *dataslice.Conditions, opts Options, ev evaluator, art *templateArtifact) error {
	relPair, _ := suffix.RestrictToRelation(rel)
	noInsPair, modified := stripInsertPair(relPair)

	keep := allPositions(len(noInsPair.Orig))
	if opts.ProgramSlicing {
		if len(modified) == 0 {
			keep = nil
		} else {
			relation, err := db.Relation(rel)
			if err != nil {
				return err
			}
			phiD, err := symbolic.Compress(relation, opts.Compress)
			if err != nil {
				return err
			}
			in := &progslice.Input{Pair: noInsPair, Schema: relation.Schema, PhiD: phiD, Compile: opts.Compile}
			var res *progslice.Result
			if opts.UseDependency {
				res, err = progslice.DependencyCtx(ctx, in)
			} else {
				res, err = progslice.GreedyCtx(ctx, in)
			}
			if err != nil {
				return err
			}
			keep = res.Keep
			art.stats.SolverTests += res.Stats.Tests
			art.stats.SolverNodes += res.Stats.SolverNodes
		}
	}
	art.stats.KeptStatements += len(keep)
	for _, p := range keep {
		if len(history.Params(noInsPair.Orig[p])) > 0 || len(history.Params(noInsPair.Mod[p])) > 0 {
			art.stats.BindingDependent++
		} else {
			art.stats.BindingIndependent++
		}
	}

	qo, err := reenact.QueryForRelation(noInsPair.Orig.Restrict(keep), rel, db, filters.H)
	if err != nil {
		return err
	}
	qm, err := reenact.QueryForRelation(noInsPair.Mod.Restrict(keep), rel, db, filters.M)
	if err != nil {
		return err
	}
	brOrig, err := reenact.InsertBranches(suffix.Orig, rel, db)
	if err != nil {
		return err
	}
	brMod, err := reenact.InsertBranches(suffix.Mod, rel, db)
	if err != nil {
		return err
	}
	if brOrig != nil {
		qo = &algebra.Union{L: qo, R: brOrig}
	}
	if brMod != nil {
		qm = &algebra.Union{L: qm, R: brMod}
	}
	if len(algebra.Params(qo)) > 0 {
		return fmt.Errorf("core: template parameters in the original history of %s", rel)
	}
	orig, err := ev.eval(qo, db)
	if err != nil {
		return err
	}
	if len(algebra.Params(qm)) == 0 {
		mod, err := ev.eval(qm, db)
		if err != nil {
			return err
		}
		art.static[rel] = delta.Compute(orig, mod)
		art.stats.StaticRelations = append(art.stats.StaticRelations, rel)
		return nil
	}
	art.rels = append(art.rels, templateRel{rel: rel, orig: orig, modQ: qm})
	art.stats.DynamicRelations = append(art.stats.DynamicRelations, rel)
	return nil
}

// Eval answers the template for one parameter binding (see EvalCtx).
func (t *Template) Eval(binding map[string]types.Value) (delta.Set, error) {
	return t.EvalCtx(context.Background(), binding)
}

// EvalCtx answers the template for one parameter binding: every $name
// slot is replaced by binding[name] and the resulting delta is exactly
// what a fresh WhatIf over the substituted modifications would return
// (byte-identical, pinned by the differential tests). The binding must
// cover the template's parameters exactly, with values matching the
// inferred classes (NULL always binds); mismatches return an error
// without evaluating. If the history advanced since the artifact was
// compiled, the artifact is recompiled first, transparently.
func (t *Template) EvalCtx(ctx context.Context, binding map[string]types.Value) (delta.Set, error) {
	art, err := t.artifact(ctx)
	if err != nil {
		return nil, err
	}
	return t.evalArtifact(ctx, art, binding)
}

// evalArtifact answers one binding against a specific artifact (callers
// that pair the delta with follow-up work — aggregate reports — pin the
// artifact once so a concurrent append cannot split their frames).
func (t *Template) evalArtifact(ctx context.Context, art *templateArtifact, binding map[string]types.Value) (delta.Set, error) {
	if err := t.ValidateBinding(binding); err != nil {
		return nil, err
	}
	t.mu.Lock()
	t.evals++
	t.mu.Unlock()

	out := make(delta.Set, len(art.static)+len(art.rels))
	for rel, d := range art.static {
		out[rel] = d // shared read-only, like every cached engine artifact
	}
	ev := evaluator{ctx: ctx, ver: art.version, kind: normalizeExecutor(t.opts.Executor), vec: t.opts.Vec}
	for _, tr := range art.rels {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		q := algebra.SubstParams(tr.modQ, binding)
		mod, err := ev.eval(q, art.db)
		if err != nil {
			return nil, err
		}
		out[tr.rel] = delta.Compute(tr.orig, mod)
	}
	return out, nil
}

// TemplateEvalResult is the outcome of one binding in a batch eval.
type TemplateEvalResult struct {
	// Binding is the index into the submitted slice.
	Binding int
	// Delta is the substituted scenario's delta (nil when Err != nil).
	Delta delta.Set
	// Err is the binding's evaluation error, if any.
	Err error
}

// EvalBatch evaluates many bindings concurrently (see EvalBatchCtx).
func (t *Template) EvalBatch(bindings []map[string]types.Value, workers int) ([]TemplateEvalResult, error) {
	return t.EvalBatchCtx(context.Background(), bindings, workers)
}

// EvalBatchCtx evaluates many bindings over a worker pool (workers <= 0
// uses GOMAXPROCS). Results keep submission order; a failing binding
// never aborts its siblings. The returned error reports batch-level
// misuse (no bindings) or context cancellation.
func (t *Template) EvalBatchCtx(ctx context.Context, bindings []map[string]types.Value, workers int) ([]TemplateEvalResult, error) {
	if len(bindings) == 0 {
		return nil, fmt.Errorf("core: empty template binding batch")
	}
	// Refresh once up front so concurrent workers don't race to
	// recompile the artifact after an append.
	art, err := t.artifact(ctx)
	if err != nil {
		return nil, err
	}
	results := make([]TemplateEvalResult, len(bindings))
	runBatch(ctx, len(bindings), workers, func(i int) {
		if err := ctx.Err(); err != nil {
			results[i] = TemplateEvalResult{Binding: i, Err: err}
			return
		}
		d, err := t.evalArtifact(ctx, art, bindings[i])
		results[i] = TemplateEvalResult{Binding: i, Delta: d, Err: err}
	})
	return results, ctx.Err()
}

// runBatch runs fn(i) for i in [0, n) over a worker pool (workers <= 0
// uses GOMAXPROCS; the pool never exceeds n).
func runBatch(ctx context.Context, n, workers int, fn func(int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	idxCh := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
}

// ValidateBinding checks a binding against the template's parameters
// without evaluating: the names must match exactly (no missing, no
// extra) and each value must fit its slot's inferred class. NULL binds
// any slot.
func (t *Template) ValidateBinding(binding map[string]types.Value) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for name, class := range t.params {
		v, ok := binding[name]
		if !ok {
			return fmt.Errorf("core: binding is missing parameter $%s", name)
		}
		if v.IsNull() {
			continue
		}
		mismatch := false
		switch class {
		case classNumeric:
			mismatch = !v.IsNumeric()
		case classString:
			mismatch = v.Kind() != types.KindString
		case classBool:
			mismatch = v.Kind() != types.KindBool
		}
		if mismatch {
			return fmt.Errorf("core: parameter $%s wants a %s value, got %s (%s)", name, class, v.Kind(), v)
		}
	}
	for name := range binding {
		if _, ok := t.params[name]; !ok {
			return fmt.Errorf("core: binding names unknown parameter $%s", name)
		}
	}
	return nil
}

// SubstitutedMods returns the template's modification sequence with the
// binding's constants substituted — the exact input an equivalent fresh
// WhatIf would take (the differential anchor, also used by benchmarks).
func (t *Template) SubstitutedMods(binding map[string]types.Value) []history.Modification {
	out := make([]history.Modification, len(t.mods))
	for i, m := range t.mods {
		out[i] = history.SubstModParams(m, binding)
	}
	return out
}

// Parameter inference ---------------------------------------------------------

// inferParams collects every $slot in the pair and infers its value
// class from context: comparison against a column or constant adopts
// that operand's class, arithmetic forces numeric, SET col = $p adopts
// the column's class, a bare $p in condition position is boolean.
// Conflicting uses (numeric here, string there) fail compilation;
// unconstrained slots stay classAny and accept any binding. Parameters
// in the original history are rejected (applied statements are always
// closed).
func inferParams(pair *history.PaddedPair, db *storage.Database) (map[string]paramClass, error) {
	for _, st := range pair.Orig {
		if ps := history.Params(st); len(ps) > 0 {
			return nil, fmt.Errorf("core: original history statement %q carries template parameters", st)
		}
	}
	in := &inferrer{params: map[string]paramClass{}}
	for _, st := range pair.Mod {
		if err := in.statement(st, db); err != nil {
			return nil, err
		}
	}
	return in.params, nil
}

type inferrer struct {
	params map[string]paramClass
}

// note records one observed use of a parameter, unifying with earlier
// observations (classAny unifies with anything).
func (in *inferrer) note(name string, c paramClass) error {
	old, seen := in.params[name]
	if !seen || old == classAny {
		in.params[name] = c
		return nil
	}
	if c != classAny && c != old {
		return fmt.Errorf("core: parameter $%s used as both %s and %s", name, old, c)
	}
	return nil
}

// colKind resolves a column's kind from a schema (classAny when the
// column is unknown — validation elsewhere reports that properly).
func colKind(s *schema.Schema) func(string) paramClass {
	return func(name string) paramClass {
		if idx := s.ColIndex(name); idx >= 0 {
			return classOf(s.Columns[idx].Type)
		}
		return classAny
	}
}

func (in *inferrer) statement(st history.Statement, db *storage.Database) error {
	switch x := st.(type) {
	case *history.Update:
		rel, err := db.Relation(x.Rel)
		if err != nil {
			return err
		}
		kindOf := colKind(rel.Schema)
		for _, sc := range x.Set {
			want := kindOf(sc.Col)
			if err := in.val(sc.E, want, kindOf); err != nil {
				return err
			}
		}
		return in.cond(x.Where, kindOf)
	case *history.Delete:
		rel, err := db.Relation(x.Rel)
		if err != nil {
			return err
		}
		return in.cond(x.Where, colKind(rel.Schema))
	case *history.InsertQuery:
		return in.query(x.Query, db)
	}
	return nil
}

// query infers across an INSERT…SELECT source query. Column kinds
// resolve against the query's base relations (first match; reenactment
// schemas use distinct column names per relation).
func (in *inferrer) query(q algebra.Query, db *storage.Database) error {
	var schemas []*schema.Schema
	for rel := range algebra.BaseRelations(q) {
		if r, err := db.Relation(rel); err == nil {
			schemas = append(schemas, r.Schema)
		}
	}
	kindOf := func(name string) paramClass {
		for _, s := range schemas {
			if idx := s.ColIndex(name); idx >= 0 {
				return classOf(s.Columns[idx].Type)
			}
		}
		return classAny
	}
	var walk func(q algebra.Query) error
	walk = func(q algebra.Query) error {
		switch x := q.(type) {
		case *algebra.Select:
			if err := in.cond(x.Cond, kindOf); err != nil {
				return err
			}
			return walk(x.In)
		case *algebra.Project:
			for _, ne := range x.Exprs {
				if err := in.val(ne.E, classAny, kindOf); err != nil {
					return err
				}
			}
			return walk(x.In)
		case *algebra.Union:
			if err := walk(x.L); err != nil {
				return err
			}
			return walk(x.R)
		case *algebra.Difference:
			if err := walk(x.L); err != nil {
				return err
			}
			return walk(x.R)
		case *algebra.Join:
			if err := in.cond(x.Cond, kindOf); err != nil {
				return err
			}
			if err := walk(x.L); err != nil {
				return err
			}
			return walk(x.R)
		case *algebra.Aggregate:
			for _, ne := range x.GroupBy {
				if err := in.val(ne.E, classAny, kindOf); err != nil {
					return err
				}
			}
			for _, a := range x.Aggs {
				if a.Arg == nil {
					continue
				}
				want := classAny
				if a.Fn == algebra.AggSum || a.Fn == algebra.AggAvg {
					want = classNumeric
				}
				if err := in.val(a.Arg, want, kindOf); err != nil {
					return err
				}
			}
			return walk(x.In)
		}
		return nil
	}
	return walk(q)
}

// cond infers through an expression in condition (boolean) position.
func (in *inferrer) cond(e expr.Expr, kindOf func(string) paramClass) error {
	switch x := e.(type) {
	case *expr.Param:
		return in.note(x.Name, classBool)
	case *expr.And:
		if err := in.cond(x.L, kindOf); err != nil {
			return err
		}
		return in.cond(x.R, kindOf)
	case *expr.Or:
		if err := in.cond(x.L, kindOf); err != nil {
			return err
		}
		return in.cond(x.R, kindOf)
	case *expr.Not:
		return in.cond(x.E, kindOf)
	case *expr.Cmp:
		lc := in.operandClass(x.L, kindOf)
		rc := in.operandClass(x.R, kindOf)
		if err := in.val(x.L, rc, kindOf); err != nil {
			return err
		}
		return in.val(x.R, lc, kindOf)
	case *expr.IsNull:
		return in.val(x.E, classAny, kindOf)
	case *expr.If:
		if err := in.cond(x.Cond, kindOf); err != nil {
			return err
		}
		if err := in.cond(x.Then, kindOf); err != nil {
			return err
		}
		return in.cond(x.Else, kindOf)
	}
	return nil
}

// val infers through an expression in value position, with the class
// the surrounding context wants for a bare parameter.
func (in *inferrer) val(e expr.Expr, want paramClass, kindOf func(string) paramClass) error {
	switch x := e.(type) {
	case *expr.Param:
		return in.note(x.Name, want)
	case *expr.Arith:
		if err := in.val(x.L, classNumeric, kindOf); err != nil {
			return err
		}
		return in.val(x.R, classNumeric, kindOf)
	case *expr.If:
		if err := in.cond(x.Cond, kindOf); err != nil {
			return err
		}
		if err := in.val(x.Then, want, kindOf); err != nil {
			return err
		}
		return in.val(x.Else, want, kindOf)
	case *expr.Cmp, *expr.And, *expr.Or, *expr.Not, *expr.IsNull:
		return in.cond(e, kindOf)
	}
	return nil
}

// operandClass is the value class an expression contributes as a
// comparison operand (used to type the opposite side's parameter).
func (in *inferrer) operandClass(e expr.Expr, kindOf func(string) paramClass) paramClass {
	switch x := e.(type) {
	case *expr.Const:
		return classOf(x.V.Kind())
	case *expr.Col:
		return kindOf(x.Name)
	case *expr.Arith:
		return classNumeric
	case *expr.If:
		if c := in.operandClass(x.Then, kindOf); c != classAny {
			return c
		}
		return in.operandClass(x.Else, kindOf)
	case *expr.Cmp, *expr.And, *expr.Or, *expr.Not, *expr.IsNull:
		return classBool
	}
	return classAny
}

// Session integration ---------------------------------------------------------

// CompileTemplate compiles (or returns a cached) template through the
// session (see CompileTemplateCtx).
func (s *Session) CompileTemplate(mods []history.Modification, opts Options) (*Template, error) {
	return s.CompileTemplateCtx(context.Background(), mods, opts)
}

// CompileTemplateCtx is Session.CompileTemplate under a context. The
// session owns an LRU template cache keyed by the constant-abstracted
// canonical fingerprint of the modification sequence ($slots stay
// symbolic; baked-in constants distinguish) prefixed with the history
// version, so re-submitting the same template after an append compiles
// a fresh artifact while in-version resubmissions are free. Compiled
// templates draw their snapshot and solver memo from the session's
// caches, including on transparent recompiles.
func (s *Session) CompileTemplateCtx(ctx context.Context, mods []history.Modification, opts Options) (*Template, error) {
	shared := s.shared()
	// Mirror compileTemplate's slicing decision before keying, so the
	// cache key's ds flag reflects the compiled artifact (a SET-only
	// template compiled with and without slicing must not conflate).
	if !setOnlyParams(mods) {
		opts.DataSlicing = false
	}
	key := templateKey(s.e.Version(), mods, opts)
	if cached, ok := shared.templates.Lookup(key); ok {
		return cached.(*Template), nil
	}
	t, err := s.e.compileTemplate(ctx, mods, opts, shared)
	if err != nil {
		return nil, err
	}
	shared.templates.Store(key, t)
	return t, nil
}

// templateKey fingerprints a template for the session cache: the
// history version, the option knobs that change the compiled artifact,
// and the canonical constant-abstracted fingerprint of every
// modification (tagged statement structure via compile.FingerprintExpr,
// so a column and a variable of one name cannot conflate — the same
// property the solver memo key relies on).
func templateKey(version int, mods []history.Modification, opts Options) string {
	var b strings.Builder
	fmt.Fprintf(&b, "v%d|%s|ps=%t,ds=%t,dep=%t,is=%t,skip=%t,nc=%t|",
		version, normalizeExecutor(opts.Executor),
		opts.ProgramSlicing, opts.DataSlicing, opts.UseDependency, opts.InsertSplit,
		opts.SkipUntainted, opts.Vec.NoColumnar)
	for _, m := range mods {
		switch x := m.(type) {
		case history.Replace:
			fmt.Fprintf(&b, "r%d:", x.Pos)
			stmtFingerprint(&b, x.Stmt)
		case history.InsertStmt:
			fmt.Fprintf(&b, "i%d:", x.Pos)
			stmtFingerprint(&b, x.Stmt)
		case history.DeleteStmt:
			fmt.Fprintf(&b, "d%d", x.Pos)
		default:
			fmt.Fprintf(&b, "?%T(%s)", m, m)
		}
		b.WriteByte(';')
	}
	return b.String()
}

func stmtFingerprint(b *strings.Builder, st history.Statement) {
	switch x := st.(type) {
	case *history.Update:
		fmt.Fprintf(b, "U(%s|", x.Rel)
		for _, sc := range x.Set {
			fmt.Fprintf(b, "%s=%s,", sc.Col, compile.FingerprintExpr(sc.E))
		}
		fmt.Fprintf(b, "|%s)", compile.FingerprintExpr(x.Where))
	case *history.Delete:
		fmt.Fprintf(b, "D(%s|%s)", x.Rel, compile.FingerprintExpr(x.Where))
	case *history.InsertValues:
		fmt.Fprintf(b, "IV(%s|", x.Rel)
		for _, row := range x.Rows {
			b.WriteString(row.Key())
			b.WriteByte(',')
		}
		b.WriteByte(')')
	case *history.InsertQuery:
		fmt.Fprintf(b, "IQ(%s|%s)", x.Rel, algebra.Fingerprint(x.Query))
	default:
		fmt.Fprintf(b, "?%T(%s)", st, st)
	}
}
