package core

import (
	"testing"

	"github.com/mahif/mahif/internal/workload"
)

// runAll answers the workload's what-if query with the naive algorithm
// and every reenactment variant, requiring identical deltas.
func runAll(t *testing.T, w *workload.Workload) {
	t.Helper()
	vdb, err := w.Load()
	if err != nil {
		t.Fatalf("loading workload: %v", err)
	}
	engine := New(vdb)
	want, _, err := engine.Naive(w.Mods)
	if err != nil {
		t.Fatalf("naive: %v", err)
	}
	rel := w.Dataset.Rel.Schema.Relation
	if want[rel] == nil {
		t.Fatalf("naive produced no delta for %s", rel)
	}
	for _, v := range []Variant{VariantR, VariantRPS, VariantRDS, VariantRFull} {
		got, stats, err := engine.WhatIf(w.Mods, OptionsFor(v))
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if got[rel] == nil {
			t.Fatalf("%s produced no delta for %s", v, rel)
		}
		if !got[rel].Equal(want[rel]) {
			t.Errorf("%s delta differs from naive:\nnaive (%d tuples):\n%s\n%s (%d tuples):\n%s",
				v, want[rel].Size(), clipDelta(want[rel].String()),
				v, got[rel].Size(), clipDelta(got[rel].String()))
		}
		_ = stats
	}
}

func clipDelta(s string) string {
	if len(s) > 1500 {
		return s[:1500] + "...\n"
	}
	return s
}

func TestVariantsAgreeUpdateOnly(t *testing.T) {
	ds := workload.Taxi(1500, 1)
	w, err := workload.Generate(ds, workload.Config{
		Updates: 12, Mods: 1, DependentPct: 25, AffectedPct: 10, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	runAll(t, w)
}

func TestVariantsAgreeHighSelectivity(t *testing.T) {
	ds := workload.TPCC(1200, 3)
	w, err := workload.Generate(ds, workload.Config{
		Updates: 10, Mods: 1, DependentPct: 50, AffectedPct: 40, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	runAll(t, w)
}

func TestVariantsAgreeWithInserts(t *testing.T) {
	ds := workload.YCSB(1000, 5)
	w, err := workload.Generate(ds, workload.Config{
		Updates: 12, Mods: 1, DependentPct: 25, AffectedPct: 10,
		InsertPct: 20, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	runAll(t, w)
}

func TestVariantsAgreeMixed(t *testing.T) {
	ds := workload.Taxi(1000, 7)
	w, err := workload.Generate(ds, workload.Config{
		Updates: 12, Mods: 1, DependentPct: 25, AffectedPct: 10,
		InsertPct: 15, DeletePct: 15, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	runAll(t, w)
}

func TestVariantsAgreeMultipleModifications(t *testing.T) {
	ds := workload.Taxi(800, 9)
	w, err := workload.Generate(ds, workload.Config{
		Updates: 10, Mods: 3, DependentPct: 30, AffectedPct: 10, Seed: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	runAll(t, w)
}

// TestSlicingRemovesIndependentUpdates checks the optimizer actually
// slices: with D=0 every non-modified update is provably independent
// and the slice must shrink to the modified statement alone.
func TestSlicingRemovesIndependentUpdates(t *testing.T) {
	ds := workload.Taxi(600, 11)
	w, err := workload.Generate(ds, workload.Config{
		Updates: 8, Mods: 1, DependentPct: 0, AffectedPct: 10, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	vdb, err := w.Load()
	if err != nil {
		t.Fatal(err)
	}
	engine := New(vdb)
	_, stats, err := engine.WhatIf(w.Mods, OptionsFor(VariantRPS))
	if err != nil {
		t.Fatal(err)
	}
	if stats.KeptStatements != 1 {
		t.Errorf("kept %d statements, want 1 (the modified update); slices: %+v",
			stats.KeptStatements, stats.Slices)
	}
}

// TestSlicingKeepsDependentUpdates checks the converse: with D=100 no
// update may be sliced away.
func TestSlicingKeepsDependentUpdates(t *testing.T) {
	ds := workload.Taxi(600, 13)
	w, err := workload.Generate(ds, workload.Config{
		Updates: 8, Mods: 1, DependentPct: 100, AffectedPct: 10, Seed: 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	vdb, err := w.Load()
	if err != nil {
		t.Fatal(err)
	}
	engine := New(vdb)
	_, stats, err := engine.WhatIf(w.Mods, OptionsFor(VariantRPS))
	if err != nil {
		t.Fatal(err)
	}
	if stats.KeptStatements != len(w.History) {
		t.Errorf("kept %d of %d statements, want all (D=100)", stats.KeptStatements, len(w.History))
	}
}

// TestGreedyAgreesWithDependency cross-checks the two slicing
// algorithms end to end.
func TestGreedyAgreesWithDependency(t *testing.T) {
	if testing.Short() {
		t.Skip("greedy slicing cross-check runs hundreds of solver calls")
	}
	ds := workload.TPCC(800, 15)
	w, err := workload.Generate(ds, workload.Config{
		Updates: 8, Mods: 1, DependentPct: 50, AffectedPct: 15, Seed: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	vdb, err := w.Load()
	if err != nil {
		t.Fatal(err)
	}
	engine := New(vdb)
	optGreedy := OptionsFor(VariantRFull)
	optGreedy.UseDependency = false
	dGreedy, _, err := engine.WhatIf(w.Mods, optGreedy)
	if err != nil {
		t.Fatal(err)
	}
	dDep, _, err := engine.WhatIf(w.Mods, OptionsFor(VariantRFull))
	if err != nil {
		t.Fatal(err)
	}
	rel := w.Dataset.Rel.Schema.Relation
	if !dGreedy[rel].Equal(dDep[rel]) {
		t.Errorf("greedy and dependency slicing disagree:\n%s\nvs\n%s", dGreedy[rel], dDep[rel])
	}
}

func TestDeltaSizeMatchesBand(t *testing.T) {
	// The modification moves the threshold from T% to 0.8·T%: the delta
	// must contain exactly the tuples in the band, twice (− and +),
	// unless a dependent update re-modifies them identically on both
	// sides (it does: dependent updates apply the same change in both
	// histories, so band tuples still differ only via the modified
	// statement).
	ds := workload.Taxi(2000, 17)
	w, err := workload.Generate(ds, workload.Config{
		Updates: 6, Mods: 1, DependentPct: 0, AffectedPct: 20, Seed: 18,
	})
	if err != nil {
		t.Fatal(err)
	}
	vdb, err := w.Load()
	if err != nil {
		t.Fatal(err)
	}
	engine := New(vdb)
	d, _, err := engine.WhatIf(w.Mods, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Count band tuples in the base data: sel in [cut80, cut100).
	selIdx := ds.Rel.Schema.ColIndex(ds.SelAttr)
	lo := int64(float64(workload.SelRange) * (1 - 0.2))     // T=20%
	hi := int64(float64(workload.SelRange) * (1 - 0.2*0.8)) // 0.8·T
	band := 0
	for _, tup := range ds.Rel.Tuples {
		v := tup[selIdx].AsInt()
		if v >= lo && v < hi {
			band++
		}
	}
	rel := ds.Rel.Schema.Relation
	if got := d[rel].Size(); got != 2*band {
		t.Errorf("delta size = %d, want 2×band = %d", got, 2*band)
	}
}
