package core

import (
	"context"
	"sync"
	"testing"

	"github.com/mahif/mahif/internal/delta"
	"github.com/mahif/mahif/internal/history"
	"github.com/mahif/mahif/internal/workload"
)

// TestSessionConcurrentStress hammers one session from many
// goroutines with a mix of single queries, batches, naive runs, and an
// explicit invalidation, requiring every answer to match the fresh
// engine's. Run under -race in CI, this pins the session's
// concurrency-safety contract.
func TestSessionConcurrentStress(t *testing.T) {
	ds := workload.Taxi(800, 1)
	w, err := workload.Generate(ds, workload.Config{
		Updates: 10, Mods: 1, DependentPct: 20, AffectedPct: 10, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	vdb, err := w.Load()
	if err != nil {
		t.Fatal(err)
	}
	engine := New(vdb)
	rel := w.Dataset.Rel.Schema.Relation

	specs := w.ScenarioFamily(6)
	fresh := make([]*delta.Result, len(specs))
	for i, sp := range specs {
		d, _, err := engine.WhatIf(sp.Mods, DefaultOptions())
		if err != nil {
			t.Fatalf("fresh %s: %v", sp.Label, err)
		}
		fresh[i] = d[rel]
	}

	sess := engine.NewSession()
	ctx := context.Background()
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				k := (g + i) % len(specs)
				sp := specs[k]
				switch {
				case g == 3 && i == 3:
					sess.Invalidate()
				case g%3 == 2:
					if _, _, err := sess.NaiveCtx(ctx, sp.Mods); err != nil {
						errCh <- err
						return
					}
				default:
					d, _, err := sess.WhatIfCtx(ctx, sp.Mods, DefaultOptions())
					if err != nil {
						errCh <- err
						return
					}
					if d[rel] == nil || !d[rel].Equal(fresh[k]) {
						t.Errorf("goroutine %d call %d (%s): delta differs from fresh engine", g, i, sp.Label)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Errorf("session call failed: %v", err)
	}
	// The mid-stress Invalidate swaps the session caches (and their
	// counters), and the scheduler may land it after every other call —
	// so sharing across the racing goroutines above is not guaranteed
	// to be visible in the final stats. Two identical sequential calls
	// make at least one snapshot and one query hit deterministic.
	for i := 0; i < 2; i++ {
		if _, _, err := sess.WhatIfCtx(ctx, specs[0].Mods, DefaultOptions()); err != nil {
			t.Fatalf("post-stress call %d: %v", i, err)
		}
	}
	if st := sess.Stats(); st.SnapshotHits == 0 || st.QueryHits == 0 {
		t.Errorf("concurrent session shared no work: %+v", st)
	}
}

// TestSessionTipSnapshotBound pins tip-snapshot accumulation under the
// append+naive loop: each NaiveCtx after an append freezes a private
// clone of the new tip for the "actual" side of its diff. Eager tip
// eviction keeps at most one resident, counts the superseded ones, and
// surfaces both in SessionStats.
func TestSessionTipSnapshotBound(t *testing.T) {
	ds := workload.Taxi(300, 2)
	w, err := workload.Generate(ds, workload.Config{
		Updates: 6, Mods: 1, DependentPct: 20, AffectedPct: 10, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	vdb, err := w.Load()
	if err != nil {
		t.Fatal(err)
	}
	engine := New(vdb)
	sess := engine.NewSession()
	ctx := context.Background()
	stmt := w.Mods[0].(history.Replace).Stmt
	for i := 0; i < 8; i++ {
		if _, _, err := sess.NaiveCtx(ctx, w.Mods); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if st := sess.Stats(); st.SnapshotTipResident > 1 {
			t.Fatalf("round %d: SnapshotTipResident = %d, want at most 1", i, st.SnapshotTipResident)
		}
		if _, err := engine.Append(stmt); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if _, _, err := sess.NaiveCtx(ctx, w.Mods); err != nil {
		t.Fatal(err)
	}
	st := sess.Stats()
	if st.SnapshotTipResident > 1 {
		t.Errorf("SnapshotTipResident = %d, want at most 1", st.SnapshotTipResident)
	}
	if st.SnapshotTipEvictions == 0 {
		t.Errorf("no superseded tips evicted: %+v", st)
	}
}

// TestSessionBatchSharing: a batch through a session leaves its warmed
// state behind — a later single call over the same prefix hits the
// caches immediately.
func TestSessionBatchSharing(t *testing.T) {
	ds := workload.Taxi(1200, 1)
	w, err := workload.Generate(ds, workload.Config{
		Updates: 10, Mods: 1, DependentPct: 20, AffectedPct: 10, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	vdb, err := w.Load()
	if err != nil {
		t.Fatal(err)
	}
	engine := New(vdb)
	sess := engine.NewSession()
	ctx := context.Background()

	specs := w.ScenarioFamily(4)
	scenarios := make([]Scenario, len(specs))
	for i, sp := range specs {
		scenarios[i] = Scenario{Label: sp.Label, Mods: sp.Mods}
	}
	if _, bs, err := sess.WhatIfBatchCtx(ctx, scenarios, BatchOptions{Options: DefaultOptions()}); err != nil {
		t.Fatal(err)
	} else if bs.Scenarios != len(scenarios) {
		t.Fatalf("batch stats %+v", bs)
	}

	before := sess.Stats()
	if _, _, err := sess.WhatIfCtx(ctx, specs[0].Mods, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	after := sess.Stats()
	if after.SnapshotHits <= before.SnapshotHits {
		t.Errorf("single call after batch did not hit the batch-warmed snapshot cache: %+v → %+v", before, after)
	}
	if after.QueryHits <= before.QueryHits {
		t.Errorf("single call after batch did not reuse batch-materialized results: %+v → %+v", before, after)
	}
}
