package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/mahif/mahif/internal/workload"
)

// cancelBound is the generous wall-clock promise for cancellation
// latency: a query cancelled mid-phase must return within this bound
// even though the uncancelled evaluation runs for minutes.
const cancelBound = 250 * time.Millisecond

// solverHeavyEngine builds an engine + workload whose greedy program
// slicing runs for minutes uncancelled (two modifications make the ζ
// tests combinatorial), so any prompt return below proves cancellation
// works.
func solverHeavyEngine(t *testing.T) (*Engine, *workload.Workload, Options) {
	t.Helper()
	ds := workload.Taxi(2000, 1)
	w, err := workload.Generate(ds, workload.Config{
		Updates: 60, Mods: 2, DependentPct: 25, AffectedPct: 10, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	vdb, err := w.Load()
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.UseDependency = false // greedy ζ slicing: the solver-bound path
	return New(vdb), w, opts
}

// TestWhatIfCtxCancelMidSolve cancels a solver-heavy WhatIfCtx at
// t=50ms and requires ctx.Err() within the wall-clock bound.
func TestWhatIfCtxCancelMidSolve(t *testing.T) {
	engine, w, opts := solverHeavyEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(50*time.Millisecond, cancel)
	defer timer.Stop()
	defer cancel()

	start := time.Now()
	_, _, err := engine.WhatIfCtx(ctx, w.Mods, opts)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled (elapsed %v)", err, elapsed)
	}
	if elapsed > 50*time.Millisecond+cancelBound {
		t.Errorf("cancelled WhatIfCtx took %v, want ≤ %v after the cancel", elapsed, cancelBound)
	}
}

// TestWhatIfCtxDeadlineAlreadyExpired: a dead context returns
// DeadlineExceeded without doing any evaluation work, from both the
// reenactment and the naive path.
func TestWhatIfCtxDeadlineAlreadyExpired(t *testing.T) {
	engine, w, opts := solverHeavyEngine(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()

	start := time.Now()
	if _, _, err := engine.WhatIfCtx(ctx, w.Mods, opts); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("WhatIfCtx err = %v, want context.DeadlineExceeded", err)
	}
	if _, _, err := engine.NaiveCtx(ctx, w.Mods); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("NaiveCtx err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > cancelBound {
		t.Errorf("dead-context calls took %v, want ≤ %v", elapsed, cancelBound)
	}
}

// TestWhatIfBatchCtxCancel is the acceptance scenario: a solver-heavy
// batch cancelled at t=50ms returns within 250ms of the cancellation,
// reports ctx.Err() at batch level, and every scenario either finished
// or carries a context error.
func TestWhatIfBatchCtxCancel(t *testing.T) {
	engine, w, opts := solverHeavyEngine(t)
	scenarios := make([]Scenario, 8)
	for i := range scenarios {
		scenarios[i] = Scenario{Label: "s", Mods: w.Mods}
	}
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(50*time.Millisecond, cancel)
	defer timer.Stop()
	defer cancel()

	start := time.Now()
	results, _, err := engine.WhatIfBatchCtx(ctx, scenarios, BatchOptions{Options: opts, Workers: 4})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("batch err = %v, want context.Canceled (elapsed %v)", err, elapsed)
	}
	if elapsed > 50*time.Millisecond+cancelBound {
		t.Errorf("cancelled batch took %v, want ≤ %v after the cancel", elapsed, cancelBound)
	}
	if len(results) != len(scenarios) {
		t.Fatalf("got %d results, want %d", len(results), len(scenarios))
	}
	for i, res := range results {
		if res.Err == nil {
			continue // finished before the cancel: fine
		}
		if !errors.Is(res.Err, context.Canceled) {
			t.Errorf("scenario %d err = %v, want context.Canceled or nil", i, res.Err)
		}
	}
}

// TestSessionConsistentAfterCancel: a cancelled session call must not
// poison the session caches — the same query afterwards succeeds and
// matches a fresh engine's answer.
func TestSessionConsistentAfterCancel(t *testing.T) {
	ds := workload.Taxi(1500, 1)
	w, err := workload.Generate(ds, workload.Config{
		Updates: 12, Mods: 1, DependentPct: 25, AffectedPct: 10, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	vdb, err := w.Load()
	if err != nil {
		t.Fatal(err)
	}
	engine := New(vdb)
	sess := engine.NewSession()

	// Dead context: the call fails, possibly mid-snapshot-build or
	// mid-materialization.
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := sess.WhatIfCtx(dead, w.Mods, DefaultOptions()); !errors.Is(err, context.Canceled) {
		t.Fatalf("dead-context session call: err = %v, want context.Canceled", err)
	}

	// The session must now answer the same query correctly.
	got, _, err := sess.WhatIfCtx(context.Background(), w.Mods, DefaultOptions())
	if err != nil {
		t.Fatalf("session call after cancel: %v", err)
	}
	want, _, err := engine.WhatIf(w.Mods, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rel := w.Dataset.Rel.Schema.Relation
	if got[rel] == nil || !got[rel].Equal(want[rel]) {
		t.Errorf("post-cancel session delta differs from fresh engine")
	}
}

// TestSessionReusesCaches pins the session promise: repeated WhatIfCtx
// calls over the same history hit the snapshot and compiled-program
// caches, and a solver-using variant hits the memo.
func TestSessionReusesCaches(t *testing.T) {
	ds := workload.Taxi(1500, 1)
	w, err := workload.Generate(ds, workload.Config{
		Updates: 12, Mods: 1, DependentPct: 25, AffectedPct: 10, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	vdb, err := w.Load()
	if err != nil {
		t.Fatal(err)
	}
	engine := New(vdb)
	sess := engine.NewSession()
	ctx := context.Background()

	for i := 0; i < 3; i++ {
		if _, _, err := sess.WhatIfCtx(ctx, w.Mods, DefaultOptions()); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	st := sess.Stats()
	if st.Calls != 3 {
		t.Fatalf("stats = %+v, want 3 calls", st)
	}
	// Call 1 materializes the snapshot (miss); calls 2 and 3 reuse it.
	if st.SnapshotHits < 2 {
		t.Errorf("snapshot hits = %d, want ≥ 2 (stats %+v)", st.SnapshotHits, st)
	}
	if st.QueryHits == 0 {
		t.Errorf("query hits = 0, want reuse of compiled results (stats %+v)", st)
	}
	if st.MemoHits == 0 {
		t.Errorf("memo hits = 0, want solver-outcome reuse (stats %+v)", st)
	}

	// Advancing the history re-pins without dropping the caches
	// (optimistic cross-version reuse): the same query still hits the
	// warm snapshot and result caches.
	if err := vdb.Apply(w.History[0]); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sess.WhatIfCtx(ctx, w.Mods, DefaultOptions()); err != nil {
		t.Fatalf("post-advance call: %v", err)
	}
	st2 := sess.Stats()
	if st2.Invalidations != 0 {
		t.Errorf("invalidations = %d, want 0 (advance keeps caches; stats %+v)", st2.Invalidations, st2)
	}
	if st2.Advances != 1 {
		t.Errorf("advances = %d, want 1 (stats %+v)", st2.Advances, st2)
	}
	if st2.Version != vdb.NumVersions() {
		t.Errorf("session version = %d, want %d", st2.Version, vdb.NumVersions())
	}
	if st2.SnapshotHits <= st.SnapshotHits {
		t.Errorf("snapshot cache was dropped on advance: %+v then %+v", st, st2)
	}

	// Explicit invalidation still resets everything.
	sess.Invalidate()
	st3 := sess.Stats()
	if st3.Invalidations != 1 || st3.SnapshotHits != 0 {
		t.Errorf("explicit Invalidate did not reset: %+v", st3)
	}
}
