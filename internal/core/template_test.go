package core

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"github.com/mahif/mahif/internal/delta"
	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/history"
	"github.com/mahif/mahif/internal/types"
	"github.com/mahif/mahif/internal/workload"
)

// templateWorkload builds a small taxi workload and an engine over it.
func templateWorkload(t *testing.T, rows, updates int, seed int64) (*workload.Workload, *Engine) {
	t.Helper()
	ds := workload.Taxi(rows, seed)
	w, err := workload.Generate(ds, workload.Config{
		Updates: updates, Mods: 1, DependentPct: 25, AffectedPct: 10, Seed: seed + 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	vdb, err := w.Load()
	if err != nil {
		t.Fatal(err)
	}
	return w, New(vdb)
}

// paramMods rebuilds the workload's modification with the threshold as
// a $cut parameter slot.
func paramMods(w *workload.Workload) []history.Modification {
	base := w.Mods[0].(history.Replace)
	upd := base.Stmt.(*history.Update)
	st := &history.Update{
		Rel:   upd.Rel,
		Set:   upd.Set,
		Where: expr.Ge(expr.Column(w.Dataset.SelAttr), expr.Parameter("cut")),
	}
	return []history.Modification{history.Replace{Pos: base.Pos, Stmt: st}}
}

// requireSetsEqual fails unless the two delta sets are identical:
// same relations, same canonical minus/plus lists.
func requireSetsEqual(t *testing.T, label string, got, want delta.Set) {
	t.Helper()
	for rel, d := range want {
		g := got[rel]
		if g == nil {
			t.Fatalf("%s: missing delta for %s", label, rel)
		}
		if !g.Equal(d) {
			t.Fatalf("%s: delta for %s differs\nwant (%d tuples):\n%s\ngot (%d tuples):\n%s",
				label, rel, d.Size(), clipDelta(d.String()), g.Size(), clipDelta(g.String()))
		}
	}
	for rel := range got {
		if want[rel] == nil {
			t.Fatalf("%s: unexpected delta for %s", label, rel)
		}
	}
}

// TestTemplateMatchesWhatIf pins the differential contract: for every
// binding, Template.Eval equals a fresh WhatIf over the modifications
// with the binding's constants substituted. NULL bindings are anchored
// against the no-slicing variant (a NULL literal in a condition is
// outside the solver's domain, so a fresh sliced WhatIf rejects it —
// the template, having solved with the slot symbolic, still answers;
// variant agreement makes the unsliced delta an equal ground truth).
func TestTemplateMatchesWhatIf(t *testing.T) {
	w, e := templateWorkload(t, 900, 10, 3)
	mods := paramMods(w)
	opts := OptionsFor(VariantRPS)
	tpl, err := e.CompileTemplate(mods, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := tpl.Params(); got["cut"] != "numeric" {
		t.Fatalf("Params() = %v, want cut:numeric", got)
	}

	cuts := []types.Value{
		types.Int(9100), types.Int(9000), types.Int(8500),
		types.Int(0), types.Int(workload.SelRange + 50),
		types.Float(8999.5),
		// 2^53 boundary: past exact float integer representation.
		types.Int(1 << 53), types.Int(1<<53 + 1), types.Int(-(1 << 53)),
	}
	for i, cut := range cuts {
		binding := map[string]types.Value{"cut": cut}
		got, err := tpl.Eval(binding)
		if err != nil {
			t.Fatalf("binding %d (%s): %v", i, cut, err)
		}
		want, _, err := e.WhatIf(tpl.SubstitutedMods(binding), opts)
		if err != nil {
			t.Fatalf("fresh what-if, binding %d (%s): %v", i, cut, err)
		}
		requireSetsEqual(t, fmt.Sprintf("binding %d (%s)", i, cut), got, want)
	}

	// NULL binds any slot; sel >= NULL selects nothing.
	binding := map[string]types.Value{"cut": types.Null()}
	got, err := tpl.Eval(binding)
	if err != nil {
		t.Fatalf("NULL binding: %v", err)
	}
	want, _, err := e.WhatIf(tpl.SubstitutedMods(binding), OptionsFor(VariantR))
	if err != nil {
		t.Fatalf("fresh what-if, NULL binding: %v", err)
	}
	requireSetsEqual(t, "NULL binding", got, want)
}

// TestTemplateRandomizedDifferential sweeps randomized template shapes
// (slots in comparisons, conjunctions, arithmetic, and SET clauses) and
// randomized bindings, each anchored against a fresh sliced WhatIf.
func TestTemplateRandomizedDifferential(t *testing.T) {
	w, e := templateWorkload(t, 700, 8, 11)
	base := w.Mods[0].(history.Replace)
	upd := base.Stmt.(*history.Update)
	sel := expr.Column(w.Dataset.SelAttr)
	sel2 := expr.Column(w.Dataset.SelAttr2)
	payload := w.Dataset.Payload[0]

	shapes := []struct {
		name   string
		where  expr.Expr
		set    []history.SetClause
		params []string
	}{
		{
			name:   "cmp",
			where:  expr.Ge(sel, expr.Parameter("a")),
			set:    upd.Set,
			params: []string{"a"},
		},
		{
			name:   "band",
			where:  expr.AndOf(expr.Ge(sel, expr.Parameter("a")), expr.Lt(sel, expr.Parameter("b"))),
			set:    upd.Set,
			params: []string{"a", "b"},
		},
		{
			name:   "or-two-attrs",
			where:  expr.OrOf(expr.Ge(sel, expr.Parameter("a")), expr.Ge(sel2, expr.Parameter("b"))),
			set:    upd.Set,
			params: []string{"a", "b"},
		},
		{
			name:   "arith",
			where:  expr.Ge(expr.Add(sel, expr.Parameter("a")), expr.IntConst(9000)),
			set:    upd.Set,
			params: []string{"a"},
		},
		{
			name:  "set-slot",
			where: expr.Ge(sel, expr.IntConst(9050)),
			set: []history.SetClause{{
				Col: payload,
				E:   expr.Add(expr.Column(payload), expr.Parameter("v")),
			}},
			params: []string{"v"},
		},
		{
			name:  "both",
			where: expr.Ge(sel, expr.Parameter("a")),
			set: []history.SetClause{{
				Col: payload,
				E:   expr.Add(expr.Column(payload), expr.Parameter("v")),
			}},
			params: []string{"a", "v"},
		},
	}

	rng := rand.New(rand.NewSource(42))
	opts := OptionsFor(VariantRPS)
	for _, shape := range shapes {
		mods := []history.Modification{history.Replace{Pos: base.Pos, Stmt: &history.Update{
			Rel: upd.Rel, Set: shape.set, Where: shape.where,
		}}}
		tpl, err := e.CompileTemplate(mods, opts)
		if err != nil {
			t.Fatalf("%s: compile: %v", shape.name, err)
		}
		for trial := 0; trial < 4; trial++ {
			binding := map[string]types.Value{}
			for _, p := range shape.params {
				if rng.Intn(2) == 0 {
					binding[p] = types.Int(int64(rng.Intn(2 * workload.SelRange)))
				} else {
					binding[p] = types.Float(float64(rng.Intn(workload.SelRange)) + 0.25)
				}
			}
			got, err := tpl.Eval(binding)
			if err != nil {
				t.Fatalf("%s trial %d: eval: %v", shape.name, trial, err)
			}
			want, _, err := e.WhatIf(tpl.SubstitutedMods(binding), opts)
			if err != nil {
				t.Fatalf("%s trial %d: fresh what-if: %v", shape.name, trial, err)
			}
			requireSetsEqual(t, fmt.Sprintf("%s trial %d %v", shape.name, trial, binding), got, want)
		}
	}
}

// TestTemplateDataSlicing pins the SET-only fast path (ROADMAP 4a):
// a template whose slots all sit in SET position keeps data slicing
// active through compilation (conditions are concrete, so the filters
// are binding-invariant), a condition slot turns it off, and the
// sliced per-binding deltas still equal a fresh fully-sliced WhatIf.
func TestTemplateDataSlicing(t *testing.T) {
	w, e := templateWorkload(t, 900, 10, 7)
	base := w.Mods[0].(history.Replace)
	upd := base.Stmt.(*history.Update)
	payload := w.Dataset.Payload[0]
	opts := OptionsFor(VariantRFull)

	setMods := []history.Modification{history.Replace{Pos: base.Pos, Stmt: &history.Update{
		Rel: upd.Rel,
		Set: []history.SetClause{{
			Col: payload,
			E:   expr.Add(expr.Column(payload), expr.Parameter("v")),
		}},
		Where: upd.Where,
	}}}
	tpl, err := e.CompileTemplate(setMods, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !tpl.Stats().DataSlicing {
		t.Fatal("SET-only template compiled without data slicing")
	}
	for _, v := range []types.Value{types.Int(0), types.Int(17), types.Float(-3.5)} {
		binding := map[string]types.Value{"v": v}
		got, err := tpl.Eval(binding)
		if err != nil {
			t.Fatalf("binding %s: %v", v, err)
		}
		want, _, err := e.WhatIf(tpl.SubstitutedMods(binding), opts)
		if err != nil {
			t.Fatalf("fresh what-if, binding %s: %v", v, err)
		}
		requireSetsEqual(t, fmt.Sprintf("set-only binding %s", v), got, want)
	}

	// A slot in a condition parameterizes the filters themselves: data
	// slicing must stay off.
	cond, err := e.CompileTemplate(paramMods(w), opts)
	if err != nil {
		t.Fatal(err)
	}
	if cond.Stats().DataSlicing {
		t.Fatal("condition-slot template compiled with data slicing")
	}

	// Leak path: a later statement's condition reads the column the
	// parameterized SET writes, so push-down substitutes $v into the
	// modified-side filter; dropParamFilters widens it away and the
	// deltas still match.
	leakMods := append(append([]history.Modification{}, setMods...),
		history.InsertStmt{Pos: base.Pos + 1, Stmt: &history.Update{
			Rel:   upd.Rel,
			Set:   upd.Set,
			Where: expr.Ge(expr.Column(payload), expr.IntConst(100)),
		}})
	leak, err := e.CompileTemplate(leakMods, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !leak.Stats().DataSlicing {
		t.Fatal("leak-path template compiled without data slicing")
	}
	for _, v := range []types.Value{types.Int(5), types.Int(250)} {
		binding := map[string]types.Value{"v": v}
		got, err := leak.Eval(binding)
		if err != nil {
			t.Fatalf("leak binding %s: %v", v, err)
		}
		want, _, err := e.WhatIf(leak.SubstitutedMods(binding), opts)
		if err != nil {
			t.Fatalf("fresh what-if, leak binding %s: %v", v, err)
		}
		requireSetsEqual(t, fmt.Sprintf("leak binding %s", v), got, want)
	}
}

// TestTemplateParamFree pins the degenerate case: a template without
// slots precomputes everything, and Eval with an empty binding returns
// the static delta.
func TestTemplateParamFree(t *testing.T) {
	w, e := templateWorkload(t, 600, 8, 7)
	opts := OptionsFor(VariantRPS)
	tpl, err := e.CompileTemplate(w.Mods, opts)
	if err != nil {
		t.Fatal(err)
	}
	st := tpl.Stats()
	if len(st.DynamicRelations) != 0 {
		t.Fatalf("param-free template has dynamic relations %v", st.DynamicRelations)
	}
	if st.BindingDependent != 0 {
		t.Fatalf("param-free template reports %d binding-dependent statements", st.BindingDependent)
	}
	got, err := tpl.Eval(nil)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := e.WhatIf(w.Mods, opts)
	if err != nil {
		t.Fatal(err)
	}
	requireSetsEqual(t, "param-free", got, want)
}

// TestTemplateBindingValidation pins the binding contract: exact
// parameter coverage and class agreement, checked before evaluation.
func TestTemplateBindingValidation(t *testing.T) {
	w, e := templateWorkload(t, 400, 6, 19)
	tpl, err := e.CompileTemplate(paramMods(w), OptionsFor(VariantRPS))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		binding map[string]types.Value
		wantErr string
	}{
		{"missing", map[string]types.Value{}, "missing parameter $cut"},
		{"extra", map[string]types.Value{"cut": types.Int(9000), "bogus": types.Int(1)}, "unknown parameter $bogus"},
		{"kind", map[string]types.Value{"cut": types.String("high")}, "wants a numeric value"},
	}
	for _, tc := range cases {
		if _, err := tpl.Eval(tc.binding); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
	// NULL always binds.
	if _, err := tpl.Eval(map[string]types.Value{"cut": types.Null()}); err != nil {
		t.Errorf("NULL binding rejected: %v", err)
	}
}

// TestTemplateConflictingParamClasses pins compile-time inference: one
// slot used as both a number and a string fails compilation.
func TestTemplateConflictingParamClasses(t *testing.T) {
	w, e := templateWorkload(t, 300, 5, 23)
	base := w.Mods[0].(history.Replace)
	upd := base.Stmt.(*history.Update)
	st := &history.Update{
		Rel: upd.Rel,
		Set: upd.Set,
		Where: expr.AndOf(
			expr.Ge(expr.Column(w.Dataset.SelAttr), expr.Parameter("p")),
			expr.Eq(expr.Column(w.Dataset.GroupBy), expr.Parameter("p")),
		),
	}
	mods := []history.Modification{history.Replace{Pos: base.Pos, Stmt: st}}
	if _, err := e.CompileTemplate(mods, OptionsFor(VariantRPS)); err == nil ||
		!strings.Contains(err.Error(), "used as both") {
		t.Fatalf("conflicting classes compiled: err = %v", err)
	}
}

// TestTemplateRecompileOnAppend pins the append-invalidation contract:
// after the engine's history advances, the next Eval transparently
// recompiles against the new version and still matches a fresh WhatIf.
func TestTemplateRecompileOnAppend(t *testing.T) {
	w, e := templateWorkload(t, 500, 8, 31)
	mods := paramMods(w)
	opts := OptionsFor(VariantRPS)
	tpl, err := e.CompileTemplate(mods, opts)
	if err != nil {
		t.Fatal(err)
	}
	binding := map[string]types.Value{"cut": types.Int(9000)}
	if _, err := tpl.Eval(binding); err != nil {
		t.Fatal(err)
	}
	before := tpl.Version()

	// Advance the history with an update that moves real tuples.
	upd := &history.Update{
		Rel:   w.Dataset.Rel.Schema.Relation,
		Set:   []history.SetClause{{Col: w.Dataset.Payload[0], E: expr.Add(expr.Column(w.Dataset.Payload[0]), expr.IntConst(3))}},
		Where: expr.Ge(expr.Column(w.Dataset.SelAttr), expr.IntConst(8000)),
	}
	if _, err := e.Append(upd); err != nil {
		t.Fatal(err)
	}

	got, err := tpl.Eval(binding)
	if err != nil {
		t.Fatal(err)
	}
	if v := tpl.Version(); v != before+1 {
		t.Fatalf("template version = %d after append, want %d", v, before+1)
	}
	if r := tpl.Stats().Recompiles; r != 1 {
		t.Fatalf("Recompiles = %d, want 1", r)
	}
	want, _, err := e.WhatIf(tpl.SubstitutedMods(binding), opts)
	if err != nil {
		t.Fatal(err)
	}
	requireSetsEqual(t, "post-append", got, want)
}

// TestSessionTemplateCacheInvalidation pins the session cache key:
// in-version resubmission is a hit returning the same template;
// resubmission after an append misses (version-prefixed key) and
// compiles a fresh artifact.
func TestSessionTemplateCacheInvalidation(t *testing.T) {
	w, e := templateWorkload(t, 500, 8, 37)
	mods := paramMods(w)
	opts := OptionsFor(VariantRPS)
	s := e.NewSession()

	t1, err := s.CompileTemplate(mods, opts)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := s.CompileTemplate(mods, opts)
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Fatal("in-version resubmission compiled a fresh template")
	}
	st := s.Stats()
	if st.TemplateHits != 1 || st.TemplateMisses != 1 {
		t.Fatalf("template cache stats = %d hits, %d misses, want 1, 1", st.TemplateHits, st.TemplateMisses)
	}
	if st.TemplateResident != 1 {
		t.Fatalf("TemplateResident = %d, want 1", st.TemplateResident)
	}

	// Distinct constants baked into the statement must key separately
	// (constant-abstracted means slots stay symbolic, not that baked
	// constants are ignored).
	base := w.Mods[0].(history.Replace)
	upd := base.Stmt.(*history.Update)
	other := []history.Modification{history.Replace{Pos: base.Pos, Stmt: &history.Update{
		Rel: upd.Rel, Set: upd.Set,
		Where: expr.AndOf(expr.Ge(expr.Column(w.Dataset.SelAttr), expr.Parameter("cut")), expr.Lt(expr.Column(w.Dataset.SelAttr), expr.IntConst(99999))),
	}}}
	t3, err := s.CompileTemplate(other, opts)
	if err != nil {
		t.Fatal(err)
	}
	if t3 == t1 {
		t.Fatal("structurally different template hit the cache")
	}

	if _, err := e.Append(history.NoOpFor(w.History[0])); err != nil {
		t.Fatal(err)
	}
	t4, err := s.CompileTemplate(mods, opts)
	if err != nil {
		t.Fatal(err)
	}
	if t4 == t1 {
		t.Fatal("post-append resubmission returned the stale template")
	}
	if t4.Version() != t1.Version()+1 {
		t.Fatalf("post-append template version = %d, want %d", t4.Version(), t1.Version()+1)
	}
}

// TestTemplateConcurrentEval stresses one template from many
// goroutines, with a history append landing mid-flight (exercises the
// transparent recompile under contention; run with -race).
func TestTemplateConcurrentEval(t *testing.T) {
	w, e := templateWorkload(t, 400, 6, 43)
	tpl, err := e.CompileTemplate(paramMods(w), OptionsFor(VariantRPS))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				binding := map[string]types.Value{"cut": types.Int(int64(8600 + 50*g + i))}
				if _, err := tpl.Eval(binding); err != nil {
					errs <- fmt.Errorf("goroutine %d iter %d: %w", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := e.Append(history.NoOpFor(w.History[0])); err != nil {
			errs <- err
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := tpl.Stats().Evals; got != 48 {
		t.Errorf("Evals = %d, want 48", got)
	}
}

// TestTemplateEvalBatch pins batch evaluation: order-preserving
// results, each matching a fresh WhatIf.
func TestTemplateEvalBatch(t *testing.T) {
	w, e := templateWorkload(t, 500, 8, 47)
	opts := OptionsFor(VariantRPS)
	tpl, err := e.CompileTemplate(paramMods(w), opts)
	if err != nil {
		t.Fatal(err)
	}
	bindings := make([]map[string]types.Value, 12)
	for i := range bindings {
		bindings[i] = map[string]types.Value{"cut": types.Int(int64(8700 + 40*i))}
	}
	results, err := tpl.EvalBatch(bindings, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(bindings) {
		t.Fatalf("got %d results, want %d", len(results), len(bindings))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("binding %d: %v", i, r.Err)
		}
		if r.Binding != i {
			t.Fatalf("result %d carries binding index %d", i, r.Binding)
		}
		want, _, err := e.WhatIf(tpl.SubstitutedMods(bindings[i]), opts)
		if err != nil {
			t.Fatal(err)
		}
		requireSetsEqual(t, fmt.Sprintf("batch binding %d", i), r.Delta, want)
	}
}

// TestTemplateSlicesBindingIndependently pins the slicing behavior of
// the one-time compile. A slot in a SET clause leaves the statement
// regions concrete, so the template slices exactly as hard as a fresh
// what-if would for any binding; a slot in the condition makes the
// hypothetical region symbolic, so every overlapping statement is
// conservatively kept (sound for all bindings). Both partition the
// kept statements into binding-(in)dependent.
func TestTemplateSlicesBindingIndependently(t *testing.T) {
	w, e := templateWorkload(t, 700, 10, 53)
	base := w.Mods[0].(history.Replace)
	upd := base.Stmt.(*history.Update)
	payload := w.Dataset.Payload[0]

	// Param in the SET clause: regions concrete, slicing bites.
	setMods := []history.Modification{history.Replace{Pos: base.Pos, Stmt: &history.Update{
		Rel: upd.Rel,
		Set: []history.SetClause{{
			Col: payload,
			E:   expr.Add(expr.Column(payload), expr.Parameter("v")),
		}},
		Where: upd.Where,
	}}}
	tpl, err := e.CompileTemplate(setMods, OptionsFor(VariantRPS))
	if err != nil {
		t.Fatal(err)
	}
	st := tpl.Stats()
	if st.KeptStatements >= st.TotalStatements {
		t.Errorf("set-slot template kept %d of %d statements: nothing sliced", st.KeptStatements, st.TotalStatements)
	}
	if st.BindingDependent == 0 {
		t.Errorf("modified statement carries $v but BindingDependent = 0 (stats: %+v)", st)
	}
	if st.BindingIndependent+st.BindingDependent != st.KeptStatements {
		t.Errorf("partition %d+%d does not cover %d kept statements",
			st.BindingIndependent, st.BindingDependent, st.KeptStatements)
	}
	if st.SolverTests == 0 {
		t.Error("no solver tests recorded at compile time")
	}

	// Param in the condition: symbolic region overlaps everything on
	// this workload, so all statements are (correctly) kept.
	tpl2, err := e.CompileTemplate(paramMods(w), OptionsFor(VariantRPS))
	if err != nil {
		t.Fatal(err)
	}
	st2 := tpl2.Stats()
	if st2.KeptStatements != st2.TotalStatements {
		t.Errorf("condition-slot template kept %d of %d: expected conservative keep-all on overlapping regions",
			st2.KeptStatements, st2.TotalStatements)
	}
	if st2.SolverTests == 0 {
		t.Error("condition-slot template recorded no solver tests")
	}
}
