package core

import (
	"context"
	"fmt"

	"github.com/mahif/mahif/internal/algebra"
	"github.com/mahif/mahif/internal/delta"
	"github.com/mahif/mahif/internal/history"
	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/storage"
	"github.com/mahif/mahif/internal/types"
)

// AggregateQuery is one aggregate query attached to a what-if: after the
// tuple-level delta is computed, the query is evaluated over both the
// historical state at the query's tip and the hypothetical state
// (historical ∓ delta), and the per-group differences are reported. The
// analyst asks "how would regional revenue have changed?" instead of
// diffing raw tuples by hand.
type AggregateQuery struct {
	// SQL is the query text, echoed verbatim in reports.
	SQL string
	// Query is the parsed algebra; the top node must be an
	// *algebra.Aggregate (use NewAggregateQuery to validate).
	Query algebra.Query
}

// NewAggregateQuery validates a parsed aggregate query for what-if
// attachment: the top node must be a γ (GROUP BY or a global aggregate)
// and the query must be closed — $param slots belong to scenario
// modifications, never to the report queries.
func NewAggregateQuery(sqlText string, q algebra.Query) (AggregateQuery, error) {
	if _, ok := q.(*algebra.Aggregate); !ok {
		return AggregateQuery{}, fmt.Errorf("core: aggregate query %q must aggregate at the top level (GROUP BY or aggregate select list)", sqlText)
	}
	if ps := algebra.Params(q); len(ps) > 0 {
		return AggregateQuery{}, fmt.Errorf("core: aggregate query %q carries parameter slots", sqlText)
	}
	return AggregateQuery{SQL: sqlText, Query: q}, nil
}

// AggregateRow is one group's historical-vs-hypothetical comparison.
// Sides are nil (JSON null) when the group exists in only one world —
// a group born or killed by the hypothetical change — which is distinct
// from a present side whose aggregates are zero or NULL.
type AggregateRow struct {
	// Group holds the grouping-column values (empty for a global
	// aggregate).
	Group schema.Tuple `json:"group"`
	// Historical and Hypothetical hold the aggregate-column values in
	// each world; nil when the group is absent from that world.
	Historical   schema.Tuple `json:"historical"`
	Hypothetical schema.Tuple `json:"hypothetical"`
	// Delta is hypothetical − historical per aggregate column, NULL
	// where either side is absent, NULL, or non-numeric.
	Delta schema.Tuple `json:"delta"`
}

// AggregateReport is one aggregate query's full per-group comparison.
// Rows keep the historical evaluation's group order (first-appearance,
// executor-deterministic) followed by groups that exist only in the
// hypothetical world, in their own first-appearance order.
type AggregateReport struct {
	Query        string         `json:"query"`
	GroupColumns []string       `json:"group_columns"`
	AggColumns   []string       `json:"agg_columns"`
	Rows         []AggregateRow `json:"rows"`
}

// patchRelation applies one relation's delta to its historical state:
// hypothetical = historical − Minus + Plus as bags. Surviving
// historical tuples keep their order and Plus tuples append in delta
// order, so the result is deterministic for a given delta.
func patchRelation(hist *storage.Relation, d *delta.Result) *storage.Relation {
	minus := make(map[string]int, len(d.Minus))
	for _, t := range d.Minus {
		minus[t.Key()]++
	}
	out := storage.NewRelation(hist.Schema)
	out.Tuples = make([]schema.Tuple, 0, len(hist.Tuples)-len(d.Minus)+len(d.Plus))
	for _, t := range hist.Tuples {
		if k := t.Key(); minus[k] > 0 {
			minus[k]--
			continue
		}
		out.Tuples = append(out.Tuples, t)
	}
	out.Tuples = append(out.Tuples, d.Plus...)
	return out
}

// hypotheticalDB materializes the hypothetical world from the
// historical state and a delta set. Unchanged relations are shared by
// pointer (evaluation is read-only); changed ones are patched copies,
// so the shared snapshot is never mutated.
func hypotheticalDB(hist *storage.Database, d delta.Set) *storage.Database {
	hyp := storage.NewDatabase()
	for _, name := range hist.RelationNames() {
		r, err := hist.Relation(name)
		if err != nil {
			continue
		}
		if dr, ok := d[name]; ok && dr != nil && !dr.Empty() {
			r = patchRelation(r, dr)
		}
		hyp.AddRelation(r)
	}
	return hyp
}

// deltaCell is hypothetical − historical for one aggregate cell, NULL
// whenever the subtraction is not meaningful (absent side, NULL value,
// or non-numeric aggregate such as MIN over strings).
func deltaCell(hist, hyp schema.Tuple, j int) types.Value {
	if hist == nil || hyp == nil {
		return types.Null()
	}
	h, y := hist[j], hyp[j]
	if h.IsNull() || y.IsNull() || !h.IsNumeric() || !y.IsNumeric() {
		return types.Null()
	}
	v, err := types.Arith(types.OpSub, y, h)
	if err != nil {
		return types.Null()
	}
	return v
}

// aggregateReport evaluates one query in both worlds and matches rows
// by group key.
func aggregateReport(q AggregateQuery, hist, hyp *storage.Database, histEv, hypEv evaluator) (AggregateReport, error) {
	agg, ok := q.Query.(*algebra.Aggregate)
	if !ok {
		return AggregateReport{}, fmt.Errorf("core: aggregate query %q must aggregate at the top level", q.SQL)
	}
	rep := AggregateReport{Query: q.SQL}
	for _, ne := range agg.GroupBy {
		rep.GroupColumns = append(rep.GroupColumns, ne.Name)
	}
	for _, a := range agg.Aggs {
		rep.AggColumns = append(rep.AggColumns, a.Name)
	}
	ro, err := histEv.eval(q.Query, hist)
	if err != nil {
		return AggregateReport{}, fmt.Errorf("core: aggregate query %q (historical): %w", q.SQL, err)
	}
	rm, err := hypEv.eval(q.Query, hyp)
	if err != nil {
		return AggregateReport{}, fmt.Errorf("core: aggregate query %q (hypothetical): %w", q.SQL, err)
	}

	ng := len(agg.GroupBy)
	split := func(row schema.Tuple) (group, aggs schema.Tuple) { return row[:ng:ng], row[ng:] }
	// Index the hypothetical rows by group key; matched entries are
	// consumed so the leftover suffix is exactly the new groups.
	hypByKey := make(map[string]schema.Tuple, len(rm.Tuples))
	for _, row := range rm.Tuples {
		g, _ := split(row)
		hypByKey[g.Key()] = row
	}
	rep.Rows = make([]AggregateRow, 0, len(ro.Tuples))
	for _, row := range ro.Tuples {
		g, ha := split(row)
		ar := AggregateRow{Group: g, Historical: ha}
		if hrow, ok := hypByKey[g.Key()]; ok {
			_, ar.Hypothetical = split(hrow)
			delete(hypByKey, g.Key())
		}
		ar.Delta = make(schema.Tuple, len(agg.Aggs))
		for j := range agg.Aggs {
			ar.Delta[j] = deltaCell(ar.Historical, ar.Hypothetical, j)
		}
		rep.Rows = append(rep.Rows, ar)
	}
	for _, row := range rm.Tuples {
		g, ya := split(row)
		if _, ok := hypByKey[g.Key()]; !ok {
			continue // matched above
		}
		delete(hypByKey, g.Key())
		ar := AggregateRow{Group: g, Hypothetical: ya, Delta: make(schema.Tuple, len(agg.Aggs))}
		for j := range agg.Aggs {
			ar.Delta[j] = types.Null()
		}
		rep.Rows = append(rep.Rows, ar)
	}
	return rep, nil
}

// computeAggregates answers every attached query over the historical
// state and the hypothetical state derived from d. The historical side
// may reuse the shared result cache (it is keyed by a real history
// version); the hypothetical state is not a history version, so its
// evaluations never enter the cache.
func computeAggregates(ctx context.Context, queries []AggregateQuery, d delta.Set, hist *storage.Database, ev evaluator) ([]AggregateReport, error) {
	if len(queries) == 0 {
		return nil, nil
	}
	hyp := hypotheticalDB(hist, d)
	hypEv := ev
	hypEv.ec = nil
	out := make([]AggregateReport, 0, len(queries))
	for _, q := range queries {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rep, err := aggregateReport(q, hist, hyp, ev, hypEv)
		if err != nil {
			return nil, err
		}
		out = append(out, rep)
	}
	return out, nil
}

// aggregateReports evaluates the attached queries against the tip the
// delta was computed at, resolving the historical state through the
// shared snapshot cache when one is available.
func (e *Engine) aggregateReports(ctx context.Context, queries []AggregateQuery, d delta.Set, tip int, opts Options, shared *batchShared) ([]AggregateReport, error) {
	if len(queries) == 0 {
		return nil, nil
	}
	var hist *storage.Database
	var err error
	if shared != nil && shared.snaps != nil {
		hist, err = shared.snaps.SnapshotCtx(ctx, tip)
	} else {
		hist, err = e.vdb.VersionCtx(ctx, tip)
	}
	if err != nil {
		return nil, err
	}
	var ec *evalCache
	if shared != nil {
		ec = shared.eval
	}
	ev := evaluator{ctx: ctx, ec: ec, ver: tip, kind: normalizeExecutor(opts.Executor), vec: opts.Vec}
	return computeAggregates(ctx, queries, d, hist, ev)
}

// WhatIfAggregates answers a what-if query plus its attached aggregate
// queries (see WhatIfAggregatesCtx).
func (e *Engine) WhatIfAggregates(mods []history.Modification, queries []AggregateQuery, opts Options) (delta.Set, []AggregateReport, *Stats, error) {
	return e.WhatIfAggregatesCtx(context.Background(), mods, queries, opts)
}

// WhatIfAggregatesCtx answers the query with Alg. 2, then evaluates the
// attached aggregate queries over the historical and hypothetical
// states at the tip the delta was computed against — the tip is
// captured once, so a concurrent append cannot put the delta and the
// reports in different frames of reference.
func (e *Engine) WhatIfAggregatesCtx(ctx context.Context, mods []history.Modification, queries []AggregateQuery, opts Options) (delta.Set, []AggregateReport, *Stats, error) {
	d, st, tip, err := e.whatIfTip(ctx, mods, opts, nil)
	if err != nil {
		return nil, nil, nil, err
	}
	reps, err := e.aggregateReports(ctx, queries, d, tip, opts, nil)
	if err != nil {
		return nil, nil, nil, err
	}
	return d, reps, st, nil
}

// WhatIfAggregatesCtx is Engine.WhatIfAggregatesCtx through the
// session's caches: the snapshot at the tip and the historical-side
// aggregate evaluations come from (and feed) the session's shared
// state. Hypothetical-side evaluations are never cached.
func (s *Session) WhatIfAggregatesCtx(ctx context.Context, mods []history.Modification, queries []AggregateQuery, opts Options) (delta.Set, []AggregateReport, *Stats, error) {
	shared := s.shared()
	if opts.Compile.Memo == nil {
		opts.Compile.Memo = shared.memo
	}
	d, st, tip, err := s.e.whatIfTip(ctx, mods, opts, shared)
	if err != nil {
		return nil, nil, nil, err
	}
	reps, err := s.e.aggregateReports(ctx, queries, d, tip, opts, shared)
	if err != nil {
		return nil, nil, nil, err
	}
	return d, reps, st, nil
}

// NaiveAggregatesCtx is NaiveCtx plus attached aggregate queries,
// evaluated at the same tip the naive delta was diffed against. The
// aggregate evaluation uses the default executor options (the naive
// algorithm has none of its own).
func (s *Session) NaiveAggregatesCtx(ctx context.Context, mods []history.Modification, queries []AggregateQuery) (delta.Set, []AggregateReport, *NaiveStats, error) {
	shared := s.shared()
	stats := &NaiveStats{}
	d, st, tip, err := s.e.naiveFrom(ctx, mods, stats, shared.snaps)
	if err != nil {
		return nil, nil, nil, err
	}
	reps, err := s.e.aggregateReports(ctx, queries, d, tip, Options{}, shared)
	if err != nil {
		return nil, nil, nil, err
	}
	return d, reps, st, nil
}

// EvalAggregates answers one binding plus attached aggregate queries
// (see EvalAggregatesCtx).
func (t *Template) EvalAggregates(binding map[string]types.Value, queries []AggregateQuery) (delta.Set, []AggregateReport, error) {
	return t.EvalAggregatesCtx(context.Background(), binding, queries)
}

// EvalAggregatesCtx answers the template for one binding and evaluates
// the attached aggregate queries against the artifact's pinned version:
// the historical side is the state at the artifact's tip, the
// hypothetical side is that state patched with the binding's delta.
// Both the delta and the reports come from the same artifact, so a
// concurrent append cannot split their frames of reference.
func (t *Template) EvalAggregatesCtx(ctx context.Context, binding map[string]types.Value, queries []AggregateQuery) (delta.Set, []AggregateReport, error) {
	art, err := t.artifact(ctx)
	if err != nil {
		return nil, nil, err
	}
	d, err := t.evalArtifact(ctx, art, binding)
	if err != nil {
		return nil, nil, err
	}
	reps, err := t.artifactAggregates(ctx, art, d, queries)
	if err != nil {
		return nil, nil, err
	}
	return d, reps, nil
}

// artifactAggregates evaluates attached queries against one pinned
// artifact's tip state.
func (t *Template) artifactAggregates(ctx context.Context, art *templateArtifact, d delta.Set, queries []AggregateQuery) ([]AggregateReport, error) {
	if len(queries) == 0 {
		return nil, nil
	}
	var hist *storage.Database
	var err error
	if t.shared != nil && t.shared.snaps != nil {
		hist, err = t.shared.snaps.SnapshotCtx(ctx, art.version)
	} else {
		hist, err = t.e.vdb.VersionCtx(ctx, art.version)
	}
	if err != nil {
		return nil, err
	}
	var ec *evalCache
	if t.shared != nil {
		ec = t.shared.eval
	}
	ev := evaluator{ctx: ctx, ec: ec, ver: art.version, kind: normalizeExecutor(t.opts.Executor), vec: t.opts.Vec}
	return computeAggregates(ctx, queries, d, hist, ev)
}

// TemplateAggResult is the outcome of one binding in an aggregate-
// attached batch eval.
type TemplateAggResult struct {
	// Binding is the index into the submitted slice.
	Binding int
	// Delta is the substituted scenario's delta (nil when Err != nil).
	Delta delta.Set
	// Aggregates are the attached queries' reports, in query order.
	Aggregates []AggregateReport
	// Err is the binding's evaluation error, if any.
	Err error
}

// EvalAggregatesBatchCtx evaluates many bindings with attached
// aggregate queries over a worker pool (workers <= 0 uses GOMAXPROCS).
// Results keep submission order; a failing binding never aborts its
// siblings. All bindings answer against one artifact, refreshed once up
// front.
func (t *Template) EvalAggregatesBatchCtx(ctx context.Context, bindings []map[string]types.Value, queries []AggregateQuery, workers int) ([]TemplateAggResult, error) {
	if len(bindings) == 0 {
		return nil, fmt.Errorf("core: empty template binding batch")
	}
	art, err := t.artifact(ctx)
	if err != nil {
		return nil, err
	}
	results := make([]TemplateAggResult, len(bindings))
	runBatch(ctx, len(bindings), workers, func(i int) {
		if err := ctx.Err(); err != nil {
			results[i] = TemplateAggResult{Binding: i, Err: err}
			return
		}
		d, err := t.evalArtifact(ctx, art, bindings[i])
		if err != nil {
			results[i] = TemplateAggResult{Binding: i, Err: err}
			return
		}
		reps, err := t.artifactAggregates(ctx, art, d, queries)
		results[i] = TemplateAggResult{Binding: i, Delta: d, Aggregates: reps, Err: err}
	})
	return results, ctx.Err()
}
