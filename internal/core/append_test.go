package core

import (
	"context"
	"encoding/json"
	"sync"
	"testing"

	"github.com/mahif/mahif/internal/history"
	"github.com/mahif/mahif/internal/workload"
)

// TestSessionCrossVersionReuseOnAppend pins the optimistic reuse
// contract: advancing the history through Append keeps every session
// cache warm (snapshots, compiled results, solver memo), re-pins the
// version, and still answers exactly like a fresh engine — both for
// queries below the old tip and for queries touching the new tail.
func TestSessionCrossVersionReuseOnAppend(t *testing.T) {
	ds := workload.Taxi(500, 2)
	w, err := workload.Generate(ds, workload.Config{
		Updates: 12, Mods: 1, DependentPct: 20, AffectedPct: 10, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	vdb, err := w.Load()
	if err != nil {
		t.Fatal(err)
	}
	engine := New(vdb)
	sess := engine.NewSession()
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		if _, _, err := sess.WhatIfCtx(ctx, w.Mods, DefaultOptions()); err != nil {
			t.Fatalf("warm call %d: %v", i, err)
		}
	}
	warm := sess.Stats()
	if warm.SnapshotHits == 0 || warm.QueryHits == 0 {
		t.Fatalf("session not warm: %+v", warm)
	}

	// Append: re-run one of the history's own update statements (always
	// applicable).
	extra := w.History[len(w.History)-1]
	ver, err := engine.AppendCtx(ctx, []history.Statement{extra})
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	if ver != len(w.History)+1 {
		t.Fatalf("append returned version %d, want %d", ver, len(w.History)+1)
	}

	// Same query, post-append: the snapshot at the first modified
	// position and the compiled programs must be reused, not rebuilt.
	if _, _, err := sess.WhatIfCtx(ctx, w.Mods, DefaultOptions()); err != nil {
		t.Fatalf("post-append call: %v", err)
	}
	st := sess.Stats()
	if st.Invalidations != 0 {
		t.Errorf("invalidations = %d, want 0", st.Invalidations)
	}
	if st.Advances != 1 {
		t.Errorf("advances = %d, want 1", st.Advances)
	}
	if st.Version != ver {
		t.Errorf("session version = %d, want %d", st.Version, ver)
	}
	if st.SnapshotHits <= warm.SnapshotHits {
		t.Errorf("snapshot cache not reused across append: %+v then %+v", warm, st)
	}
	if st.SnapshotMisses != warm.SnapshotMisses {
		t.Errorf("snapshots were rebuilt after append: %+v then %+v", warm, st)
	}

	// Correctness net: session answers equal a fresh engine's for a
	// query below the old tip and for one modifying the appended tail.
	tailMods := []history.Modification{history.DeleteStmt{Pos: ver - 1}}
	for _, mods := range [][]history.Modification{w.Mods, tailMods} {
		want, _, err := New(vdb).WhatIfCtx(ctx, mods, DefaultOptions())
		if err != nil {
			t.Fatalf("fresh: %v", err)
		}
		got, _, err := sess.WhatIfCtx(ctx, mods, DefaultOptions())
		if err != nil {
			t.Fatalf("session: %v", err)
		}
		wj, _ := json.Marshal(want)
		gj, _ := json.Marshal(got)
		if string(wj) != string(gj) {
			t.Fatalf("session answer diverged from fresh engine after append:\nfresh:   %s\nsession: %s", wj, gj)
		}
	}
}

// TestAppendEmptyAndErrors covers the in-memory append path's edges.
func TestAppendEmptyAndErrors(t *testing.T) {
	ds := workload.Taxi(50, 3)
	w, err := workload.Generate(ds, workload.Config{Updates: 3, Mods: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	vdb, err := w.Load()
	if err != nil {
		t.Fatal(err)
	}
	engine := New(vdb)
	if _, err := engine.Append(); err == nil {
		t.Fatalf("empty append succeeded")
	}
	v0 := vdb.NumVersions()
	bad := &history.Delete{Rel: "nosuch"}
	if _, err := engine.Append(bad); err == nil {
		t.Fatalf("append of statement on missing relation succeeded")
	}
	if vdb.NumVersions() != v0 {
		t.Fatalf("failed append advanced the history")
	}
}

// TestLiveAppendWhileServing runs appends concurrently with session
// queries and batches — the serving pattern mahifd's /v1/history
// enables. Under -race this pins the storage-level synchronization;
// the answers are checked for internal consistency (every query
// completes without error and the final state matches a sequential
// replay).
func TestLiveAppendWhileServing(t *testing.T) {
	ds := workload.Taxi(400, 5)
	w, err := workload.Generate(ds, workload.Config{
		Updates: 10, Mods: 1, DependentPct: 20, AffectedPct: 10, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	vdb, err := w.Load()
	if err != nil {
		t.Fatal(err)
	}
	engine := New(vdb)
	sess := engine.NewSession()
	ctx := context.Background()

	appends := 12
	var wg sync.WaitGroup
	errCh := make(chan error, 64)

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < appends; i++ {
			st := w.History[i%len(w.History)]
			if _, err := engine.AppendCtx(ctx, []history.Statement{st}); err != nil {
				errCh <- err
				return
			}
		}
	}()
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				var err error
				switch g % 3 {
				case 0:
					_, _, err = sess.WhatIfCtx(ctx, w.Mods, DefaultOptions())
				case 1:
					_, _, err = sess.NaiveCtx(ctx, w.Mods)
				default:
					_, _, err = sess.WhatIfBatchCtx(ctx, []Scenario{{Mods: w.Mods}}, BatchOptions{Workers: 2})
				}
				if err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("live append/serve: %v", err)
	}
	if got, want := vdb.NumVersions(), len(w.History)+appends; got != want {
		t.Fatalf("final version %d, want %d", got, want)
	}

	// Post-quiesce, the session must answer exactly like a fresh
	// engine over the advanced history.
	want, _, err := New(vdb).WhatIfCtx(ctx, w.Mods, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := sess.WhatIfCtx(ctx, w.Mods, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	wj, _ := json.Marshal(want)
	gj, _ := json.Marshal(got)
	if string(wj) != string(gj) {
		t.Fatalf("post-stress divergence:\nfresh:   %s\nsession: %s", wj, gj)
	}
}
