package core

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"github.com/mahif/mahif/internal/progslice"
)

var update = flag.Bool("update", false, "rewrite golden files")

func goldenStats() *Stats {
	return &Stats{
		Total:           83 * time.Millisecond,
		TimeTravel:      5 * time.Millisecond,
		ProgramSlicing:  40 * time.Millisecond,
		DataSlicing:     3 * time.Millisecond,
		Execute:         30 * time.Millisecond,
		Delta:           5 * time.Millisecond,
		TotalStatements: 100,
		KeptStatements:  12,
		SolverTests:     99,
		SolverNodes:     4242,
		Slices: map[string]progslice.Stats{
			"orders": {Tests: 99, SolverNodes: 4242, Indefinite: 1, Duration: 40 * time.Millisecond, Kept: 12, Removed: 88},
		},
		SkippedRelations: []string{"audit_log"},
	}
}

func goldenBatchStats() *BatchStats {
	return &BatchStats{
		Total: 120 * time.Millisecond, Workers: 8, Scenarios: 16, Failed: 1,
		SnapshotHits: 15, SnapshotMisses: 1,
		MemoHits: 1200, MemoMisses: 99,
		QueryHits: 14, QueryMisses: 2,
	}
}

// TestStatsGolden pins the v1 stats wire format used by mahifd.
func TestStatsGolden(t *testing.T) {
	doc := map[string]any{
		"stats":       goldenStats(),
		"naive_stats": &NaiveStats{Total: 9 * time.Second, Creation: 8 * time.Second, Execute: 900 * time.Millisecond, Delta: 100 * time.Millisecond},
		"batch_stats": goldenBatchStats(),
	}
	got, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "stats_v1.golden.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("stats wire format drifted from %s\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}

func TestStatsRoundTrip(t *testing.T) {
	orig := goldenStats()
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Stats
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&back, orig) {
		t.Errorf("Stats round trip drifted:\n%+v\nvs\n%+v", back, *orig)
	}

	borig := goldenBatchStats()
	data, err = json.Marshal(borig)
	if err != nil {
		t.Fatal(err)
	}
	var bback BatchStats
	if err := json.Unmarshal(data, &bback); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&bback, borig) {
		t.Errorf("BatchStats round trip drifted:\n%+v\nvs\n%+v", bback, *borig)
	}
}
