package core

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/mahif/mahif/internal/algebra"
	"github.com/mahif/mahif/internal/compile"
	"github.com/mahif/mahif/internal/delta"
	"github.com/mahif/mahif/internal/exec"
	"github.com/mahif/mahif/internal/history"
	"github.com/mahif/mahif/internal/storage"
)

// evalCache shares compiled reenactment programs and their
// materialized results across the scenarios of one batch. Programs are
// compiled once per query fingerprint (compilation resolves every
// column reference and fuses the operator pipeline, so it is the unit
// worth sharing); results are keyed on (time-travel version, compiled
// program), so two scenarios whose reenactment programs coincide over
// the same snapshot materialize the relation once. Cached relations
// are shared read-only — delta computation and query evaluation never
// mutate their inputs. In interpreter-oracle mode the result key falls
// back to (version, fingerprint).
type evalCache struct {
	mu           sync.Mutex
	progs        map[string]*progEntry
	results      map[resultKey]*evalEntry
	lru          *list.List // of resultKey; front = most recently used
	evictions    int
	hits, misses int
}

// defaultQueryCacheEntries bounds the materialized-result cache. Each
// entry is a whole relation, and the key includes the time-travel
// version, so a session serving a stream of appends would otherwise
// accumulate one copy per (version, program) forever. Eviction is LRU
// over completed entries only: an entry whose materialization is still
// in flight has workers parked on its done channel and must survive
// until it resolves.
const defaultQueryCacheEntries = 256

// progEntry compiles one fingerprint exactly once. prog is nil when
// the query is outside the compilable subset (the evaluation then runs
// through the interpreter).
type progEntry struct {
	once sync.Once
	prog *exec.Program
}

// resultKey identifies one materialized result: the snapshot version
// plus the program fingerprint. Programs are deduplicated one per
// fingerprint, so this keys on the compiled program exactly (and
// degrades gracefully to the query text in interpreter mode or after
// a failed compilation).
type resultKey struct {
	ver int
	fp  string
}

// evalEntry evaluates one program exactly once: the worker that
// creates the entry materializes and closes done; concurrent workers
// asking for the same (version, program) wait on done — or give up
// when their own context dies — and share the result instead of each
// materializing it.
type evalEntry struct {
	done chan struct{}
	rel  *storage.Relation
	err  error

	// elem is the entry's recency-list node; guarded by evalCache.mu.
	elem *list.Element
}

// completed reports whether the entry's materialization has resolved
// (its creator closed done). Only completed entries are evictable.
func (e *evalEntry) completed() bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

func newEvalCache() *evalCache {
	return &evalCache{
		progs:   map[string]*progEntry{},
		results: map[resultKey]*evalEntry{},
		lru:     list.New(),
	}
}

// removeLocked drops an entry from the map and the recency list.
// Caller holds c.mu.
func (c *evalCache) removeLocked(key resultKey, e *evalEntry) {
	delete(c.results, key)
	if e.elem != nil {
		c.lru.Remove(e.elem)
		e.elem = nil
	}
}

// enforceBoundLocked evicts least-recently-used completed entries until
// the cache fits its bound. In-flight entries are skipped (and bumped,
// so the scan does not revisit them); if every resident entry is in
// flight the cache temporarily overshoots. Caller holds c.mu.
func (c *evalCache) enforceBoundLocked() {
	for scan := c.lru.Len(); c.lru.Len() > defaultQueryCacheEntries && scan > 0; scan-- {
		back := c.lru.Back()
		key := back.Value.(resultKey)
		e := c.results[key]
		if e == nil || e.elem != back {
			c.lru.Remove(back) // stale node; the entry was removed already
			continue
		}
		if !e.completed() {
			c.lru.MoveToFront(back)
			continue
		}
		c.removeLocked(key, e)
		c.evictions++
	}
}

// program returns the compile-once program for q under the given
// executor kind (nil when q cannot be compiled). Programs are keyed per
// (kind, fingerprint): a session serving both compiled and vectorized
// requests holds one program of each. The NoColumnar ablation compiles
// to a distinct plan, so it keys separately too.
func (c *evalCache) program(q algebra.Query, db *storage.Database, fp string, kind ExecutorKind, vec exec.VecOptions) *exec.Program {
	key := string(kind) + "\x00" + fp
	if vec.NoColumnar {
		key = "boxed\x00" + key
	}
	c.mu.Lock()
	pe, ok := c.progs[key]
	if !ok {
		pe = &progEntry{}
		c.progs[key] = pe
	}
	c.mu.Unlock()
	pe.once.Do(func() {
		if prog, err := compileFor(kind, q, db, vec); err == nil {
			pe.prog = prog
		}
	})
	return pe.prog
}

// eval answers q over db, reusing a previously materialized result for
// the same (version, program) when available. A result whose
// materialization was cut short by ctx cancellation is evicted rather
// than cached, so long-lived caches (sessions) stay consistent; a
// caller that joined a cancelled materialization retries under its own
// context instead of inheriting the foreign failure.
func (c *evalCache) eval(ctx context.Context, q algebra.Query, db *storage.Database, ver int, kind ExecutorKind, vec exec.VecOptions) (*storage.Relation, error) {
	fp := algebra.Fingerprint(q)
	key := resultKey{ver: ver, fp: fp}
	var prog *exec.Program
	if kind != ExecInterpreter {
		prog = c.program(q, db, fp, kind, vec)
	}
	for {
		c.mu.Lock()
		e, ok := c.results[key]
		if !ok {
			e = &evalEntry{done: make(chan struct{})}
			e.elem = c.lru.PushFront(key)
			c.results[key] = e
			c.enforceBoundLocked()
		}
		c.mu.Unlock()
		if !ok {
			// We created the entry: we materialize, under our context.
			switch {
			case prog != nil:
				e.rel, e.err = prog.RunCtx(ctx, db)
			case ctx.Err() != nil:
				e.err = ctx.Err() // interpreter oracle is not ctx-aware; don't start dead
			default:
				e.rel, e.err = algebra.Eval(q, db)
			}
			if e.err == nil {
				c.mu.Lock()
				c.misses++
				c.mu.Unlock()
			}
			close(e.done)
		} else {
			select {
			case <-e.done:
			case <-ctx.Done():
				return nil, ctx.Err() // our deadline; don't wait out the build
			}
		}
		if e.err == nil || (!errors.Is(e.err, context.Canceled) && !errors.Is(e.err, context.DeadlineExceeded)) {
			if ok && e.err == nil {
				c.mu.Lock()
				c.hits++
				if c.results[key] == e && e.elem != nil {
					c.lru.MoveToFront(e.elem)
				}
				c.mu.Unlock()
			}
			return e.rel, e.err
		}
		c.mu.Lock()
		if c.results[key] == e {
			c.removeLocked(key, e)
		}
		c.mu.Unlock()
		if err := ctx.Err(); err != nil {
			return nil, err // our own context died
		}
	}
}

func (c *evalCache) stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

func (c *evalCache) evicted() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}

func (c *evalCache) resident() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.results)
}

// batchShared bundles the caches one batch evaluation — or one
// long-lived Session — shares across evaluations. All fields are
// optional; memo is carried here only so sessions can hand their
// solver memo to batches (per-scenario options reference it via
// Options.Compile.Memo).
type batchShared struct {
	snaps     *storage.SnapshotCache
	eval      *evalCache
	memo      *compile.Memo
	templates *compile.TemplateCache
}

// Scenario is one hypothetical modification set in a batch what-if
// query. An analyst exploring a family of hypotheticals ("what if the
// fee threshold had been 55? 60? 65?") submits one scenario per
// variation over the same history.
type Scenario struct {
	// Label identifies the scenario in results and reports (optional).
	Label string
	// Mods is the modification sequence M of the what-if query.
	Mods []history.Modification
	// Queries optionally attaches aggregate queries: each is evaluated
	// over the historical and hypothetical states after the delta is
	// computed, and the per-group comparisons land in the scenario's
	// BatchResult.Aggregates.
	Queries []AggregateQuery
}

// BatchOptions configures WhatIfBatch.
type BatchOptions struct {
	// Options are the per-scenario engine options (variant, slicing
	// knobs). The same options apply to every scenario.
	Options Options
	// Workers bounds evaluation parallelism; values ≤ 0 use
	// runtime.GOMAXPROCS(0). Workers == 1 evaluates sequentially.
	Workers int
	// NoSnapshotSharing disables the shared time-travel snapshot and
	// gives every scenario a private copy of the pre-suffix state, as a
	// sequential-equivalent baseline for benchmarks.
	NoSnapshotSharing bool
	// NoCompileMemo disables the cross-scenario solver memo.
	NoCompileMemo bool
	// NoQueryCache disables reuse of materialized reenactment-query
	// results across scenarios.
	NoQueryCache bool
}

// BatchResult is the outcome of one scenario. Err is set per scenario —
// a failing scenario never aborts its siblings.
type BatchResult struct {
	// Scenario is the index into the submitted slice.
	Scenario int
	// Label echoes the scenario label.
	Label string
	// Delta is the annotated symmetric difference (nil when Err != nil).
	Delta delta.Set
	// Stats is the per-scenario phase breakdown (nil when Err != nil).
	Stats *Stats
	// Aggregates holds the scenario's attached aggregate-query reports,
	// in query order (nil when the scenario attached none).
	Aggregates []AggregateReport
	// Err is the scenario's evaluation error, if any.
	Err error
}

// BatchStats aggregates the work sharing achieved across a batch.
type BatchStats struct {
	// Total is the wall-clock time for the whole batch.
	Total time.Duration
	// Workers is the parallelism actually used.
	Workers int
	// Scenarios and Failed count submitted and errored scenarios.
	Scenarios int
	Failed    int
	// SnapshotHits/Misses report shared time-travel reuse: misses are
	// distinct versions materialized (each exactly once, during the
	// ascending pre-warm), hits are the per-scenario lookups that
	// reused one (zero when sharing is disabled).
	SnapshotHits, SnapshotMisses int
	// MemoHits/Misses report solver-outcome reuse across scenarios
	// (zero when the memo is disabled or program slicing is off).
	MemoHits, MemoMisses int64
	// QueryHits/Misses report reenactment-result reuse: hits are
	// evaluations of a compiled algebra program another scenario
	// already materialized over the same snapshot.
	QueryHits, QueryMisses int
}

// WhatIfBatch answers N independent what-if scenarios over the engine's
// history concurrently. Work shared across scenarios is computed once:
// the time-travel state before each distinct first-modified position is
// materialized a single time and shared read-only by all workers (the
// reenactment path never mutates it; the naive copy step is the
// copy-on-write boundary and stays per-scenario), and satisfiability
// tests whose slicing formulas coincide across scenarios are solved
// once through a shared memo.
//
// Results are returned in submission order. Evaluation is not
// fail-fast: a scenario error is recorded in its BatchResult and the
// rest of the batch completes. The returned error reports only batch-
// level misuse (no scenarios).
func (e *Engine) WhatIfBatch(scenarios []Scenario, opts BatchOptions) ([]BatchResult, *BatchStats, error) {
	return e.WhatIfBatchCtx(context.Background(), scenarios, opts)
}

// WhatIfBatchCtx is WhatIfBatch under a context. Cancellation stops the
// whole batch promptly: in-flight scenarios observe ctx inside their
// solver and executor loops, not-yet-evaluated scenarios record
// ctx.Err() without starting, and the call returns ctx.Err() alongside
// the partial results.
func (e *Engine) WhatIfBatchCtx(ctx context.Context, scenarios []Scenario, opts BatchOptions) ([]BatchResult, *BatchStats, error) {
	return e.whatIfBatch(ctx, scenarios, opts, nil)
}

// whatIfBatch is WhatIfBatchCtx with optional session-owned caches: a
// non-nil session shares its snapshot/program/memo caches with the
// batch (subject to the batch's No* toggles) so the batch both reuses
// and feeds the session's cross-call state.
func (e *Engine) whatIfBatch(ctx context.Context, scenarios []Scenario, opts BatchOptions, sess *Session) ([]BatchResult, *BatchStats, error) {
	if len(scenarios) == 0 {
		return nil, nil, fmt.Errorf("core: empty scenario batch")
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(scenarios) {
		workers = len(scenarios)
	}

	shared := &batchShared{}
	var sessShared *batchShared
	if sess != nil {
		sessShared = sess.shared()
	}
	if !opts.NoSnapshotSharing {
		if sessShared != nil {
			shared.snaps = sessShared.snaps
		} else {
			shared.snaps = storage.NewSnapshotCache(e.vdb)
		}
	}
	if !opts.NoQueryCache {
		if sessShared != nil {
			shared.eval = sessShared.eval
		} else {
			shared.eval = newEvalCache()
		}
	}
	perScenario := opts.Options
	var memo *compile.Memo
	switch {
	case opts.NoCompileMemo:
		// Also drop a caller-supplied memo: the option means "no
		// cross-scenario solver reuse", not just "no fresh memo".
		perScenario.Compile.Memo = nil
	case perScenario.Compile.Memo == nil:
		if sessShared != nil {
			memo = sessShared.memo
		} else {
			memo = compile.NewMemo()
		}
		perScenario.Compile.Memo = memo
	default:
		// The caller supplied a memo (e.g. shared across batches): use
		// it, but leave BatchStats memo counters zero — its cumulative
		// counts are not attributable to this batch.
	}
	// Attribute this batch's cache traffic to its stats by snapshotting
	// baselines: long-lived session caches carry counts from earlier
	// calls. The baseline-and-subtract is approximate when other calls
	// share the session concurrently with the batch (their traffic in
	// the window lands in this batch's counters).
	var snapHits0, snapMiss0, evalHits0, evalMiss0 int
	var memoHits0, memoMiss0 int64
	if shared.snaps != nil {
		snapHits0, snapMiss0 = shared.snaps.Stats()
	}
	if shared.eval != nil {
		evalHits0, evalMiss0 = shared.eval.stats()
	}
	if memo != nil {
		memoHits0, memoMiss0 = memo.Stats()
	}

	start := time.Now()
	// Align every scenario once: the padded pair drives both the
	// dispatch order and the evaluation (whatIfPair), so the O(|H|)
	// modification-application work is not repeated per scenario.
	h, err := e.History()
	if err != nil {
		return nil, nil, err
	}
	results := make([]BatchResult, len(scenarios))
	pairs := make([]*history.PaddedPair, len(scenarios))
	for i, sc := range scenarios {
		pairs[i], err = history.ApplyModifications(h, sc.Mods)
		if err != nil {
			results[i] = BatchResult{Scenario: i, Label: sc.Label, Err: err}
		}
	}

	var wg sync.WaitGroup
	idxCh := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				sc := scenarios[i]
				if err := ctx.Err(); err != nil {
					// The batch is dead: record the cancellation without
					// starting the evaluation.
					results[i] = BatchResult{Scenario: i, Label: sc.Label, Err: err}
					continue
				}
				d, st, err := e.whatIfPair(ctx, pairs[i], perScenario, shared)
				var reps []AggregateReport
				if err == nil {
					// The pairs were aligned against h, so len(h) is the
					// tip every scenario's delta refers to.
					reps, err = e.aggregateReports(ctx, sc.Queries, d, len(h), perScenario, shared)
				}
				results[i] = BatchResult{Scenario: i, Label: sc.Label, Delta: d, Stats: st, Aggregates: reps, Err: err}
			}
		}()
	}
	// Dispatch scenarios by ascending first-modified position, and
	// materialize each scenario's snapshot before handing it to a
	// worker: the ascending pre-warm makes every build an incremental
	// extension of the previous snapshot (deterministic prefix reuse
	// even when concurrent workers would otherwise race to build
	// nearby versions from the base). Results keep submission order
	// regardless; snapshot errors are left for the scenario's own
	// evaluation to surface.
	warmed := -1
	for _, i := range scheduleOrder(pairs) {
		if shared.snaps != nil && ctx.Err() == nil {
			// Ascending dispatch makes consecutive versions the distinct
			// ones; warm each exactly once.
			if v := min(pairs[i].FirstModified(), e.vdb.NumVersions()); v != warmed {
				_, _ = shared.snaps.SnapshotCtx(ctx, v)
				warmed = v
			}
		}
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()

	bs := &BatchStats{
		Total:     time.Since(start),
		Workers:   workers,
		Scenarios: len(scenarios),
	}
	for i := range results {
		if results[i].Err != nil {
			bs.Failed++
		}
	}
	if shared.snaps != nil {
		h, m := shared.snaps.Stats()
		bs.SnapshotHits, bs.SnapshotMisses = h-snapHits0, m-snapMiss0
	}
	if memo != nil {
		// Report from the batch- or session-owned memo only, net of any
		// traffic from before this batch; a caller-supplied memo would
		// carry counts not attributable to it at all.
		h, m := memo.Stats()
		bs.MemoHits, bs.MemoMisses = h-memoHits0, m-memoMiss0
	}
	if shared.eval != nil {
		h, m := shared.eval.stats()
		bs.QueryHits, bs.QueryMisses = h-evalHits0, m-evalMiss0
	}
	return results, bs, ctx.Err()
}

// scheduleOrder returns the indices of successfully aligned pairs
// sorted by ascending first-modified position (stable for ties, so
// equal-position scenarios keep submission order). Failed alignments
// (nil pairs) are excluded; their errors are already recorded.
func scheduleOrder(pairs []*history.PaddedPair) []int {
	order := make([]int, 0, len(pairs))
	pos := make([]int, len(pairs))
	for i, p := range pairs {
		if p == nil {
			continue
		}
		order = append(order, i)
		pos[i] = p.FirstModified()
	}
	sort.SliceStable(order, func(a, b int) bool { return pos[order[a]] < pos[order[b]] })
	return order
}
