package core

import (
	"context"
	"sync"

	"github.com/mahif/mahif/internal/compile"
	"github.com/mahif/mahif/internal/delta"
	"github.com/mahif/mahif/internal/history"
	"github.com/mahif/mahif/internal/storage"
)

// Session is a long-lived evaluation context over one engine: it pins
// the history version it was opened against and owns the caches that a
// single WhatIfBatch call otherwise builds and discards — the shared
// time-travel snapshot cache, the solver-outcome memo, and the
// compiled-program/result cache. An analyst iterating a family of
// hypotheticals over the same history ("fee ≥ 55… 56… 57") through one
// session reuses the materialized time-travel state and the compiled
// reenactment programs across calls instead of rebuilding them per
// query; a served deployment keeps one session per history version and
// answers many users' queries from the same warm state.
//
// Sessions are safe for concurrent use: the caches are internally
// synchronized and every cached artifact is shared read-only (the same
// contract the batch engine relies on).
//
// # Appends and invalidation
//
// The history is append-only, and every cached artifact is keyed by —
// or derived from — a version at or below the tip the session last
// saw: snapshots are states after their first i statements, query
// results are keyed (version, program), solver outcomes are
// content-addressed by the slicing formula. When the history advances
// (Engine.Append during live serving), all of that remains exactly
// valid, so the session re-pins to the new version and keeps its
// caches — the optimistic cross-version reuse that makes a served
// deployment's caches survive a stream of appends. Invalidate still
// discards everything explicitly (e.g. if the underlying store was
// swapped out-of-band).
type Session struct {
	e *Engine

	mu      sync.Mutex
	version int // NumVersions the caches were last revalidated against
	caches  *batchShared

	calls         int
	invalidations int
	advances      int
}

// NewSession opens a session pinned to the engine's current history
// version.
func (e *Engine) NewSession() *Session {
	s := &Session{e: e, version: e.vdb.NumVersions()}
	s.reset()
	return s
}

// reset discards all cached state. Caller holds s.mu (or has exclusive
// access during construction).
func (s *Session) reset() {
	s.caches = &batchShared{
		snaps:     storage.NewSnapshotCache(s.e.vdb),
		eval:      newEvalCache(),
		memo:      compile.NewMemo(),
		templates: compile.NewTemplateCache(),
	}
}

// shared revalidates the version pin and returns the live cache
// bundle. An advanced history re-pins without dropping anything: the
// append-only store guarantees every cached snapshot, result, and
// solver outcome stays correct (see the type comment). The bundle it
// returns is immutable as a bundle (its caches are internally
// synchronized), so calls in flight during an explicit invalidation
// finish against the old, still-consistent bundle.
func (s *Session) shared() *batchShared {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls++
	if v := s.e.vdb.NumVersions(); v != s.version {
		s.version = v
		s.advances++
	}
	return s.caches
}

// Invalidate discards all cached state unconditionally and re-pins the
// session to the engine's current history version.
func (s *Session) Invalidate() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.version = s.e.vdb.NumVersions()
	s.invalidations++
	s.reset()
}

// Engine returns the engine the session evaluates against.
func (s *Session) Engine() *Engine { return s.e }

// Version returns the history version the session is currently pinned
// to.
func (s *Session) Version() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version
}

// SessionStats reports a session's cumulative cache effectiveness
// since it was opened or last invalidated (counters reset with the
// caches).
type SessionStats struct {
	// Calls counts evaluation entries through the session (including
	// batch calls, each once).
	Calls int
	// Invalidations counts explicit cache resets; Advances counts
	// history advances survived with caches kept (optimistic
	// cross-version reuse).
	Invalidations int
	Advances      int
	// Version is the pinned history version.
	Version int
	// SnapshotHits/Misses report shared time-travel reuse across calls.
	SnapshotHits, SnapshotMisses int
	// SnapshotEvictions counts completed snapshots dropped by the
	// retention bound; SnapshotResident is the count currently held.
	SnapshotEvictions, SnapshotResident int
	// SnapshotTipEvictions counts superseded tip-pinned snapshots
	// (private full copies of a then-live state) dropped eagerly when a
	// newer tip was frozen; SnapshotTipResident is the count currently
	// held — bounded near 1 under append+query loops.
	SnapshotTipEvictions, SnapshotTipResident int
	// MemoHits/Misses report solver-outcome reuse across calls;
	// MemoEvictions counts outcomes dropped by the memo's LRU bound.
	MemoHits, MemoMisses int64
	MemoEvictions        int64
	// QueryHits/Misses report compiled reenactment-result reuse across
	// calls; QueryEvictions counts completed results dropped by the LRU
	// bound, and QueryResident is the count currently held.
	QueryHits, QueryMisses        int
	QueryEvictions, QueryResident int
	// TemplateHits/Misses report compiled scenario-template reuse across
	// CompileTemplate calls; TemplateEvictions counts artifacts dropped
	// by the template cache's LRU bound, and TemplateResident is the
	// count currently held.
	TemplateHits, TemplateMisses int64
	TemplateEvictions            int64
	TemplateResident             int
}

// Stats snapshots the session's cache counters.
func (s *Session) Stats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SessionStats{Calls: s.calls, Invalidations: s.invalidations, Advances: s.advances, Version: s.version}
	st.SnapshotHits, st.SnapshotMisses = s.caches.snaps.Stats()
	st.SnapshotEvictions = s.caches.snaps.Evictions()
	st.SnapshotResident = s.caches.snaps.Resident()
	st.SnapshotTipEvictions = s.caches.snaps.TipEvictions()
	st.SnapshotTipResident = s.caches.snaps.TipResident()
	st.MemoHits, st.MemoMisses = s.caches.memo.Stats()
	st.MemoEvictions = s.caches.memo.Evictions()
	st.QueryHits, st.QueryMisses = s.caches.eval.stats()
	st.QueryEvictions = s.caches.eval.evicted()
	st.QueryResident = s.caches.eval.resident()
	st.TemplateHits, st.TemplateMisses = s.caches.templates.Stats()
	st.TemplateEvictions = s.caches.templates.Evictions()
	st.TemplateResident = s.caches.templates.Len()
	return st
}

// WhatIf answers one what-if query through the session's caches.
func (s *Session) WhatIf(mods []history.Modification, opts Options) (delta.Set, *Stats, error) {
	return s.WhatIfCtx(context.Background(), mods, opts)
}

// WhatIfCtx is WhatIf under a context (see Engine.WhatIfCtx for the
// cancellation guarantees). The session's solver memo is used unless
// the options carry their own; snapshots and compiled programs always
// come from the session. A call cut short by cancellation never leaves
// a partial artifact behind: cancelled snapshot builds and query
// materializations are evicted, so the caches stay consistent.
func (s *Session) WhatIfCtx(ctx context.Context, mods []history.Modification, opts Options) (delta.Set, *Stats, error) {
	shared := s.shared()
	if opts.Compile.Memo == nil {
		opts.Compile.Memo = shared.memo
	}
	return s.e.whatIf(ctx, mods, opts, shared)
}

// Naive answers one what-if query with Alg. 1, sharing the session's
// time-travel snapshots (the naive copy step still clones, so the
// shared state is never mutated).
func (s *Session) Naive(mods []history.Modification) (delta.Set, *NaiveStats, error) {
	return s.NaiveCtx(context.Background(), mods)
}

// NaiveCtx is Naive under a context.
func (s *Session) NaiveCtx(ctx context.Context, mods []history.Modification) (delta.Set, *NaiveStats, error) {
	shared := s.shared()
	stats := &NaiveStats{}
	// Same body as Engine.NaiveCtx but time-traveling through the
	// session's snapshot cache; the explicit Clone below is the
	// copy-on-write boundary that keeps the shared snapshot read-only.
	d, st, _, err := s.e.naiveFrom(ctx, mods, stats, shared.snaps)
	return d, st, err
}

// WhatIfBatch evaluates a scenario batch through the session's caches.
func (s *Session) WhatIfBatch(scenarios []Scenario, opts BatchOptions) ([]BatchResult, *BatchStats, error) {
	return s.WhatIfBatchCtx(context.Background(), scenarios, opts)
}

// WhatIfBatchCtx is WhatIfBatch under a context. The batch draws its
// shared snapshot cache, solver memo, and compiled-program cache from
// the session (honoring the batch's No* toggles), so scenarios reuse
// state warmed by earlier session calls and leave their own work
// behind for later ones. BatchStats counters report this batch's
// traffic net of the session's prior use; calls running concurrently
// with the batch through the same session can bleed into the window
// and be attributed to it, so treat the counters as approximate under
// concurrent serving (SessionStats is the exact cumulative view).
func (s *Session) WhatIfBatchCtx(ctx context.Context, scenarios []Scenario, opts BatchOptions) ([]BatchResult, *BatchStats, error) {
	return s.e.whatIfBatch(ctx, scenarios, opts, s)
}
