package core
