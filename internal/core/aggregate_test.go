package core

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/mahif/mahif/internal/delta"
	"github.com/mahif/mahif/internal/history"
	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/sql"
	"github.com/mahif/mahif/internal/storage"
	"github.com/mahif/mahif/internal/types"
)

func mustStmt(t testing.TB, src string) history.Statement {
	t.Helper()
	st, err := sql.ParseStatement(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return st
}

func mustAggQuery(t testing.TB, src string) AggregateQuery {
	t.Helper()
	q, err := sql.ParseQuery(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	aq, err := NewAggregateQuery(src, q)
	if err != nil {
		t.Fatal(err)
	}
	return aq
}

// ordersEngine builds a tiny orders history:
//
//	v1: INSERT (1,east,10) (2,east,20) (3,west,30) (4,north,5)
//	v2: UPDATE east amounts += 5
//	v3: DELETE amount > 30 (deletes nothing historically)
func ordersEngine(t testing.TB) *Engine {
	t.Helper()
	db := storage.NewDatabase()
	db.AddRelation(storage.NewRelation(schema.New("orders",
		schema.Col("id", types.KindInt),
		schema.Col("region", types.KindString),
		schema.Col("amount", types.KindInt),
	)))
	e := New(storage.NewVersioned(db))
	_, err := e.Append(
		mustStmt(t, "INSERT INTO orders VALUES (1, 'east', 10), (2, 'east', 20), (3, 'west', 30), (4, 'north', 5)"),
		mustStmt(t, "UPDATE orders SET amount = amount + 5 WHERE region = 'east'"),
		mustStmt(t, "DELETE FROM orders WHERE amount > 30"),
	)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func requireRow(t *testing.T, got AggregateRow, group, hist, hyp, dlt schema.Tuple) {
	t.Helper()
	if !got.Group.Equal(group) {
		t.Fatalf("group: got %s want %s", got.Group, group)
	}
	check := func(name string, g, w schema.Tuple) {
		t.Helper()
		if (g == nil) != (w == nil) {
			t.Fatalf("%s of group %s: got %v want %v", name, group, g, w)
		}
		if g != nil && !g.Equal(w) {
			t.Fatalf("%s of group %s: got %s want %s", name, group, g, w)
		}
	}
	check("historical", got.Historical, hist)
	check("hypothetical", got.Hypothetical, hyp)
	check("delta", got.Delta, dlt)
}

// TestWhatIfAggregates pins the aggregate what-if contract end to end:
// the boost-east scenario pushes both east rows over the delete
// threshold, so the east group dies in the hypothetical world (null
// side, null deltas) while untouched groups report zero deltas. All
// three executors and the naive algorithm must produce the identical
// report.
func TestWhatIfAggregates(t *testing.T) {
	e := ordersEngine(t)
	mods := []history.Modification{history.Replace{Pos: 1,
		Stmt: mustStmt(t, "UPDATE orders SET amount = amount + 100 WHERE region = 'east'")}}
	queries := []AggregateQuery{
		mustAggQuery(t, "SELECT region, COUNT(*) AS n, SUM(amount) AS s FROM orders GROUP BY region"),
		mustAggQuery(t, "SELECT COUNT(*) AS n, AVG(amount) AS a FROM orders"),
	}

	verify := func(t *testing.T, reps []AggregateReport) {
		t.Helper()
		if len(reps) != 2 {
			t.Fatalf("want 2 reports, got %d", len(reps))
		}
		grouped := reps[0]
		if !reflect.DeepEqual(grouped.GroupColumns, []string{"region"}) ||
			!reflect.DeepEqual(grouped.AggColumns, []string{"n", "s"}) {
			t.Fatalf("report columns: %v / %v", grouped.GroupColumns, grouped.AggColumns)
		}
		if len(grouped.Rows) != 3 {
			t.Fatalf("want 3 groups, got %d: %+v", len(grouped.Rows), grouped.Rows)
		}
		requireRow(t, grouped.Rows[0],
			schema.NewTuple(types.String("east")),
			schema.NewTuple(types.Int(2), types.Int(40)),
			nil,
			schema.NewTuple(types.Null(), types.Null()))
		requireRow(t, grouped.Rows[1],
			schema.NewTuple(types.String("west")),
			schema.NewTuple(types.Int(1), types.Int(30)),
			schema.NewTuple(types.Int(1), types.Int(30)),
			schema.NewTuple(types.Int(0), types.Int(0)))
		requireRow(t, grouped.Rows[2],
			schema.NewTuple(types.String("north")),
			schema.NewTuple(types.Int(1), types.Int(5)),
			schema.NewTuple(types.Int(1), types.Int(5)),
			schema.NewTuple(types.Int(0), types.Int(0)))

		global := reps[1]
		if len(global.Rows) != 1 {
			t.Fatalf("global aggregate: want 1 row, got %d", len(global.Rows))
		}
		requireRow(t, global.Rows[0],
			schema.Tuple{},
			schema.NewTuple(types.Int(4), types.Float(18.75)),
			schema.NewTuple(types.Int(2), types.Float(17.5)),
			schema.NewTuple(types.Int(-2), types.Float(-1.25)))
	}

	for _, kind := range []ExecutorKind{ExecVectorized, ExecCompiled, ExecInterpreter} {
		opts := DefaultOptions()
		opts.Executor = kind
		_, reps, _, err := e.WhatIfAggregates(mods, queries, opts)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		t.Run(string(kind), func(t *testing.T) { verify(t, reps) })
	}

	// The session path (shared caches, cached historical side) must
	// agree, twice in a row (second call hits the result cache).
	sess := e.NewSession()
	for i := 0; i < 2; i++ {
		_, reps, _, err := sess.WhatIfAggregatesCtx(context.Background(), mods, queries, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		verify(t, reps)
	}
	// And the naive algorithm.
	_, reps, _, err := sess.NaiveAggregatesCtx(context.Background(), mods, queries)
	if err != nil {
		t.Fatal(err)
	}
	verify(t, reps)
}

// TestBatchAggregates attaches queries per scenario: an unattached
// scenario reports none, an attached one reports per-group deltas, and
// an insert scenario surfaces a hypothetical-only group with a null
// historical side.
func TestBatchAggregates(t *testing.T) {
	e := ordersEngine(t)
	q := mustAggQuery(t, "SELECT region, SUM(amount) AS s FROM orders GROUP BY region")
	scenarios := []Scenario{
		{Label: "plain", Mods: []history.Modification{history.Replace{Pos: 1,
			Stmt: mustStmt(t, "UPDATE orders SET amount = amount + 1 WHERE region = 'east'")}}},
		{Label: "south", Queries: []AggregateQuery{q}, Mods: []history.Modification{history.Replace{Pos: 2,
			Stmt: mustStmt(t, "INSERT INTO orders VALUES (5, 'south', 7)")}}},
	}
	results, _, err := e.WhatIfBatch(scenarios, BatchOptions{Options: DefaultOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || results[1].Err != nil {
		t.Fatalf("scenario errors: %v / %v", results[0].Err, results[1].Err)
	}
	if results[0].Aggregates != nil {
		t.Fatalf("unattached scenario grew reports: %+v", results[0].Aggregates)
	}
	rows := results[1].Aggregates[0].Rows
	if len(rows) != 4 {
		t.Fatalf("want 4 groups, got %d: %+v", len(rows), rows)
	}
	requireRow(t, rows[3],
		schema.NewTuple(types.String("south")),
		nil,
		schema.NewTuple(types.Int(7)),
		schema.NewTuple(types.Null()))
}

// TestTemplateAggregates pins the differential anchor the how-to
// searcher's certificates rely on: for every binding, the template's
// aggregate report equals a fresh WhatIfAggregates over the
// substituted modifications.
func TestTemplateAggregates(t *testing.T) {
	e := ordersEngine(t)
	mods := []history.Modification{history.Replace{Pos: 1,
		Stmt: mustStmt(t, "UPDATE orders SET amount = amount + $boost WHERE region = 'east'")}}
	queries := []AggregateQuery{
		mustAggQuery(t, "SELECT region, SUM(amount) AS s, AVG(amount) AS a FROM orders GROUP BY region"),
	}
	tpl, err := e.CompileTemplate(mods, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	bindings := []map[string]types.Value{
		{"boost": types.Int(0)},
		{"boost": types.Int(7)},
		{"boost": types.Int(100)},   // kills the east group
		{"boost": types.Float(2.5)}, // float deltas
	}
	for _, b := range bindings {
		d, reps, err := tpl.EvalAggregates(b, queries)
		if err != nil {
			t.Fatalf("binding %v: %v", b, err)
		}
		wantD, wantReps, _, err := e.WhatIfAggregates(tpl.SubstitutedMods(b), queries, DefaultOptions())
		if err != nil {
			t.Fatalf("fresh what-if for %v: %v", b, err)
		}
		requireSetsEqual(t, "template aggregate delta", d, wantD)
		if !reflect.DeepEqual(reps, wantReps) {
			t.Fatalf("binding %v: template report diverges\ntemplate: %+v\nfresh:    %+v", b, reps, wantReps)
		}
	}
	// The batch form agrees with the per-binding form.
	batch, err := tpl.EvalAggregatesBatchCtx(context.Background(), bindings, queries, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range batch {
		if r.Err != nil {
			t.Fatalf("batch binding %d: %v", i, r.Err)
		}
		single, reps, err := tpl.EvalAggregates(bindings[i], queries)
		if err != nil {
			t.Fatal(err)
		}
		requireSetsEqual(t, "batch binding delta", r.Delta, single)
		if !reflect.DeepEqual(r.Aggregates, reps) {
			t.Fatalf("batch binding %d report diverges", i)
		}
	}
}

// TestNewAggregateQueryRejects pins the attachment contract: only
// top-level aggregations, and only closed queries.
func TestNewAggregateQueryRejects(t *testing.T) {
	q, err := sql.ParseQuery("SELECT id FROM orders WHERE amount > 3")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewAggregateQuery("SELECT id ...", q); err == nil {
		t.Fatal("non-aggregate query must be rejected")
	}
}

// TestAggregateReportGolden pins the v1 aggregate wire format: int and
// float cells stay distinct on the wire, the NULL group is a real
// group, a zero-count global row is present (not null) on both sides,
// groups born or killed by the scenario carry a JSON-null side, and an
// empty grouped result is [] rather than null.
func TestAggregateReportGolden(t *testing.T) {
	db := storage.NewDatabase()
	r := storage.NewRelation(schema.New("t",
		schema.Col("g", types.KindString),
		schema.Col("v", types.KindInt),
	))
	r.Add(
		schema.NewTuple(types.String("a"), types.Int(1)),
		schema.NewTuple(types.String("a"), types.Int(2)),
		schema.NewTuple(types.Null(), types.Int(3)),
		schema.NewTuple(types.String("b"), types.Int(4)),
	)
	db.AddRelation(r)
	d := delta.Set{"t": &delta.Result{
		Relation: "t",
		Schema:   r.Schema,
		Minus:    []schema.Tuple{schema.NewTuple(types.String("b"), types.Int(4))},
		Plus: []schema.Tuple{
			schema.NewTuple(types.String("c"), types.Int(5)),
			schema.NewTuple(types.String("a"), types.Int(10)),
			schema.NewTuple(types.Null(), types.Float(2.5)),
		},
	}}
	queries := []AggregateQuery{
		mustAggQuery(t, "SELECT g, COUNT(*) AS n, SUM(v) AS s, AVG(v) AS a FROM t GROUP BY g"),
		mustAggQuery(t, "SELECT COUNT(*) AS n FROM t WHERE v > 100"),
		mustAggQuery(t, "SELECT g, COUNT(*) AS n FROM t WHERE v > 100 GROUP BY g"),
	}
	reps, err := computeAggregates(context.Background(), queries, d, db, evaluator{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.MarshalIndent(map[string]any{"aggregates": reps}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "aggregate_v1.golden.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("aggregate wire format drifted from %s\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}
