package core

import (
	"testing"

	"github.com/mahif/mahif/internal/history"
	"github.com/mahif/mahif/internal/symbolic"
	"github.com/mahif/mahif/internal/workload"
)

// TestOptionsForVariants pins the variant → options mapping.
func TestOptionsForVariants(t *testing.T) {
	cases := []struct {
		v          Variant
		ps, ds, is bool
	}{
		{VariantR, false, false, false},
		{VariantRPS, true, false, true},
		{VariantRDS, false, true, false},
		{VariantRFull, true, true, true},
	}
	for _, c := range cases {
		o := OptionsFor(c.v)
		if o.ProgramSlicing != c.ps || o.DataSlicing != c.ds || o.InsertSplit != c.is {
			t.Errorf("%s: got PS=%v DS=%v split=%v", c.v, o.ProgramSlicing, o.DataSlicing, o.InsertSplit)
		}
	}
}

// optionSweep answers the same query under many option combinations;
// all must agree with the naive answer.
func TestOptionCombinationsAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("19-way option sweep answers the query once per combination")
	}
	ds := workload.Taxi(900, 31)
	w, err := workload.Generate(ds, workload.Config{
		Updates: 10, Mods: 1, DependentPct: 30, AffectedPct: 12,
		InsertPct: 10, DeletePct: 10, Seed: 33,
	})
	if err != nil {
		t.Fatal(err)
	}
	vdb, err := w.Load()
	if err != nil {
		t.Fatal(err)
	}
	engine := New(vdb)
	want, _, err := engine.Naive(w.Mods)
	if err != nil {
		t.Fatal(err)
	}
	rel := ds.Rel.Schema.Relation

	variants := []Options{}
	for _, ps := range []bool{false, true} {
		for _, dsOn := range []bool{false, true} {
			for _, split := range []bool{false, true} {
				for _, dep := range []bool{false, true} {
					variants = append(variants, Options{
						ProgramSlicing: ps, DataSlicing: dsOn, InsertSplit: split,
						UseDependency: dep, SkipUntainted: true,
					})
				}
			}
		}
	}
	// Plus: taint skipping off, alternative compression settings.
	variants = append(variants,
		Options{ProgramSlicing: true, DataSlicing: true, InsertSplit: true, UseDependency: true, SkipUntainted: false},
		Options{ProgramSlicing: true, DataSlicing: true, InsertSplit: true, UseDependency: true, SkipUntainted: true,
			Compress: symbolic.CompressOptions{Groups: 1}},
		Options{ProgramSlicing: true, DataSlicing: true, InsertSplit: true, UseDependency: true, SkipUntainted: true,
			Compress: symbolic.CompressOptions{Groups: 8, GroupBy: ds.SelAttr}},
	)
	for i, opts := range variants {
		got, _, err := engine.WhatIf(w.Mods, opts)
		if err != nil {
			t.Fatalf("options %d (%+v): %v", i, opts, err)
		}
		if !got[rel].Equal(want[rel]) {
			t.Errorf("options %d (%+v): delta differs from naive", i, opts)
		}
	}
}

// TestTouchConditionAttrsAgree exercises the push-down substitution
// path: dependent updates also write the selection attribute, so data
// slicing must substitute conditional expressions through them.
func TestTouchConditionAttrsAgree(t *testing.T) {
	ds := workload.TPCC(700, 35)
	w, err := workload.Generate(ds, workload.Config{
		Updates: 8, Mods: 1, DependentPct: 50, AffectedPct: 15,
		TouchConditionAttrs: true, Seed: 37,
	})
	if err != nil {
		t.Fatal(err)
	}
	vdb, err := w.Load()
	if err != nil {
		t.Fatal(err)
	}
	engine := New(vdb)
	want, _, err := engine.Naive(w.Mods)
	if err != nil {
		t.Fatal(err)
	}
	rel := ds.Rel.Schema.Relation
	for _, v := range []Variant{VariantRDS, VariantRFull} {
		got, _, err := engine.WhatIf(w.Mods, OptionsFor(v))
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if !got[rel].Equal(want[rel]) {
			t.Errorf("%s: delta differs under condition-attribute writes", v)
		}
	}
}

// TestEngineWithCheckpoints: the engine must work identically over a
// store that reconstructs versions from checkpoints.
func TestEngineWithCheckpoints(t *testing.T) {
	ds := workload.YCSB(600, 39)
	w, err := workload.Generate(ds, workload.Config{
		Updates: 9, Mods: 1, DependentPct: 30, AffectedPct: 10, Seed: 41,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Modify a LATER statement so prepare() time-travels mid-log.
	mod := w.Mods[0]
	vdbPlain, err := w.Load()
	if err != nil {
		t.Fatal(err)
	}
	vdbCk, err := w.Load()
	if err != nil {
		t.Fatal(err)
	}
	vdbCk.SetCheckpointEvery(2)
	// Checkpoints only affect future applies; re-apply over a fresh
	// store to exercise them.
	fresh := New(vdbCk)
	plain := New(vdbPlain)
	dPlain, _, err := plain.WhatIf([]history.Modification{mod}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	dCk, _, err := fresh.WhatIf([]history.Modification{mod}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rel := ds.Rel.Schema.Relation
	if !dPlain[rel].Equal(dCk[rel]) {
		t.Error("checkpointed store changed the answer")
	}
}
