// Package core is the Mahif engine: it answers historical what-if
// queries H = (H, D, M) over a versioned database, either naively
// (Alg. 1: copy the past state, execute the modified history, diff) or
// by reenactment (Alg. 2) with the program slicing and data slicing
// optimizations, reporting per-phase timing statistics that mirror the
// breakdowns of the paper's evaluation (Figs. 15 and 16).
package core

import (
	"context"
	"fmt"
	"time"

	"github.com/mahif/mahif/internal/algebra"
	"github.com/mahif/mahif/internal/compile"
	"github.com/mahif/mahif/internal/dataslice"
	"github.com/mahif/mahif/internal/delta"
	"github.com/mahif/mahif/internal/exec"
	"github.com/mahif/mahif/internal/history"
	"github.com/mahif/mahif/internal/progslice"
	"github.com/mahif/mahif/internal/reenact"
	"github.com/mahif/mahif/internal/storage"
	"github.com/mahif/mahif/internal/symbolic"
)

// ExecutorKind selects the backend that evaluates reenactment queries.
type ExecutorKind string

// The available executors.
const (
	// ExecVectorized runs queries through the vectorized pipelined
	// executor (exec.CompileVec): operators exchange 1024-row
	// column-major batches with selection vectors, identity projection
	// columns pass through by reference, and large scans partition
	// across GOMAXPROCS workers behind an order-preserving merge. This
	// is the default (the zero value selects it too).
	ExecVectorized ExecutorKind = "vectorized"
	// ExecCompiled runs queries through the tuple-at-a-time compiled
	// executor (exec.Compile): expressions lowered to closures over
	// column ordinals, fused σ/Π chains, hash joins and hash-based bag
	// difference.
	ExecCompiled ExecutorKind = "compiled"
	// ExecInterpreter runs queries through the tree-walking interpreter
	// (algebra.Eval). It is kept as the reference oracle: the
	// differential tests require it to agree with ExecCompiled and
	// ExecVectorized on every history.
	ExecInterpreter ExecutorKind = "interpreter"
)

// Options selects the algorithm variant and tuning knobs.
type Options struct {
	// ProgramSlicing enables §7–§9 (implies the insert split of §10).
	ProgramSlicing bool
	// DataSlicing enables §6.
	DataSlicing bool
	// UseDependency selects the §9 single-modification dependency test
	// instead of greedy slicing when exactly one statement is modified.
	UseDependency bool
	// InsertSplit applies the §10 split even without program slicing.
	InsertSplit bool
	// SkipUntainted skips relations whose delta is provably empty.
	SkipUntainted bool
	// Compress configures database compression for program slicing.
	Compress symbolic.CompressOptions
	// Compile configures the MILP backend.
	Compile compile.Options
	// DataSlice configures the push-down analysis.
	DataSlice dataslice.Options
	// Executor picks the query evaluation backend; the zero value means
	// ExecVectorized. Queries the compilers cannot handle (e.g.
	// symbolic variables) transparently fall back to the interpreter,
	// so the choice never changes observable results — only speed.
	Executor ExecutorKind
	// Vec tunes the vectorized executor (batch size, scan parallelism,
	// the NoColumnar typed-lane ablation). Ignored by the other
	// backends.
	Vec exec.VecOptions
}

// DefaultOptions enables every optimization (the paper's R+PS+DS).
func DefaultOptions() Options {
	return Options{
		ProgramSlicing: true,
		DataSlicing:    true,
		UseDependency:  true,
		InsertSplit:    true,
		SkipUntainted:  true,
		Executor:       ExecVectorized,
	}
}

// Variant names an algorithm configuration from the evaluation (§13.3).
type Variant string

// The compared methods.
const (
	VariantNaive Variant = "N"       // naive copy+execute+diff
	VariantR     Variant = "R"       // reenactment only
	VariantRPS   Variant = "R+PS"    // reenactment + program slicing
	VariantRDS   Variant = "R+DS"    // reenactment + data slicing
	VariantRFull Variant = "R+PS+DS" // both optimizations
)

// OptionsFor maps an evaluation variant to engine options. The §10
// insert split exists to enable program slicing, so the variants
// without PS (R, R+DS) run the plain whole-history reenactment the
// paper describes.
func OptionsFor(v Variant) Options {
	o := DefaultOptions()
	switch v {
	case VariantR:
		o.ProgramSlicing, o.DataSlicing, o.InsertSplit = false, false, false
	case VariantRPS:
		o.DataSlicing = false
	case VariantRDS:
		o.ProgramSlicing, o.InsertSplit = false, false
	case VariantRFull, VariantNaive:
	}
	return o
}

// Stats reports where time went while answering a query with Alg. 2.
type Stats struct {
	Total          time.Duration
	TimeTravel     time.Duration // reconstructing D before the first modified statement
	ProgramSlicing time.Duration
	DataSlicing    time.Duration
	Execute        time.Duration // evaluating the reenactment queries
	Delta          time.Duration

	// Slice quality.
	TotalStatements int
	KeptStatements  int
	SolverTests     int
	SolverNodes     int

	// Per-relation slicing details.
	Slices map[string]progslice.Stats
	// SkippedRelations lists relations pruned by taint analysis.
	SkippedRelations []string
}

// NaiveStats is the Alg. 1 breakdown of Fig. 15.
type NaiveStats struct {
	Total    time.Duration
	Creation time.Duration // copying the past database state
	Execute  time.Duration // running H[M] over the copy
	Delta    time.Duration
}

// Appender is the durability hook of an engine: it commits statements
// to stable storage *before* they become visible in the in-memory
// history. internal/persist.Store implements it with a write-ahead
// log; the zero engine appends in memory only.
type Appender interface {
	// Append commits stmts in order and returns the resulting history
	// version. On error the statements before the failing one stay
	// committed and the returned version reflects them.
	Append(ctx context.Context, stmts []history.Statement) (int, error)
}

// DurableStore is what NewDurable needs from a persistence layer: the
// recovered versioned database plus the WAL-first append path.
type DurableStore interface {
	Appender
	Database() *storage.VersionedDatabase
}

// Engine answers historical what-if queries against one versioned
// database whose redo log is the transactional history H.
type Engine struct {
	vdb      *storage.VersionedDatabase
	appender Appender
}

// New builds an engine over a versioned database. Appends go straight
// to memory; use NewDurable for a WAL-backed engine.
func New(vdb *storage.VersionedDatabase) *Engine { return &Engine{vdb: vdb} }

// NewDurable builds an engine over a durable store: every Append
// commits to the store's write-ahead log before it advances the
// in-memory history, so a restarted process recovers exactly the
// acknowledged statements.
func NewDurable(store DurableStore) *Engine {
	return &Engine{vdb: store.Database(), appender: store}
}

// Durable reports whether appends commit to stable storage before
// becoming visible.
func (e *Engine) Durable() bool { return e.appender != nil }

// Version returns the current history length.
func (e *Engine) Version() int { return e.vdb.NumVersions() }

// Append extends the history (see AppendCtx).
func (e *Engine) Append(stmts ...history.Statement) (int, error) {
	return e.AppendCtx(context.Background(), stmts)
}

// AppendCtx extends the transactional history with new statements
// while the engine keeps serving queries: in-flight and future
// evaluations over versions at or below the previous tip are
// unaffected (the history is append-only), and sessions keep their
// warm caches across the advance. On a durable engine the statements
// are committed to the WAL first — AppendCtx returning nil is the
// durability point. On error, statements before the failing one stay
// appended and the returned version reflects them.
func (e *Engine) AppendCtx(ctx context.Context, stmts []history.Statement) (int, error) {
	if len(stmts) == 0 {
		return e.vdb.NumVersions(), fmt.Errorf("core: empty append")
	}
	if err := ctx.Err(); err != nil {
		return e.vdb.NumVersions(), err
	}
	if e.appender != nil {
		return e.appender.Append(ctx, stmts)
	}
	ms := make([]storage.Mutator, len(stmts))
	for i, st := range stmts {
		ms[i] = st
	}
	if err := e.vdb.ApplyAll(ms...); err != nil {
		return e.vdb.NumVersions(), err
	}
	return e.vdb.NumVersions(), nil
}

// WaitVersionCtx blocks until the history has reached at least target
// statements or ctx ends. It is the read-your-writes primitive: a
// version-bounded read on a follower waits here until replication
// catches up, instead of silently serving a stale answer.
func (e *Engine) WaitVersionCtx(ctx context.Context, target int) error {
	for {
		cur, ch := e.vdb.WaitChan()
		if cur >= target {
			return nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// History returns the logged history H as typed statements.
func (e *Engine) History() (history.History, error) {
	log := e.vdb.Log()
	h := make(history.History, len(log))
	for i, m := range log {
		st, ok := m.(history.Statement)
		if !ok {
			return nil, fmt.Errorf("core: log entry %d (%s) is not a statement", i+1, m)
		}
		h[i] = st
	}
	return h, nil
}

// HistoryRange returns the statements after the first `since` (up to
// limit of them; limit <= 0 means all) plus the total history length —
// the paged view behind GET /v1/history and replica catch-up.
func (e *Engine) HistoryRange(since, limit int) (history.History, int, error) {
	log, total := e.vdb.LogRange(since, limit)
	h := make(history.History, len(log))
	for i, m := range log {
		st, ok := m.(history.Statement)
		if !ok {
			return nil, 0, fmt.Errorf("core: log entry %d (%s) is not a statement", since+i+1, m)
		}
		h[i] = st
	}
	return h, total, nil
}

// prepare applies M to H, cuts the shared prefix, and reconstructs the
// database state at the first modified statement. tip is the history
// length the call is evaluated against — captured once, so a
// concurrent append cannot shift the query's frame of reference
// mid-call.
func (e *Engine) prepare(ctx context.Context, mods []history.Modification, st *Stats, snaps *storage.SnapshotCache) (suffix *history.PaddedPair, db *storage.Database, tip int, err error) {
	h, err := e.History()
	if err != nil {
		return nil, nil, 0, err
	}
	pair, err := history.ApplyModifications(h, mods)
	if err != nil {
		return nil, nil, 0, err
	}
	suffix, db, _, err = e.snapshotFor(ctx, pair, st, snaps)
	return suffix, db, len(h), err
}

// snapshotFor cuts the shared prefix of an aligned pair and
// reconstructs the database state at the first modified statement. With
// a non-nil snapshot cache the state is a shared read-only snapshot
// (reenactment never mutates it); otherwise it is a private copy from
// time travel. The returned version number identifies the snapshot for
// result caching.
func (e *Engine) snapshotFor(ctx context.Context, pair *history.PaddedPair, st *Stats, snaps *storage.SnapshotCache) (*history.PaddedPair, *storage.Database, int, error) {
	first := pair.FirstModified()
	t0 := time.Now()
	// The prefix before the first modification is identical in both
	// histories; per §4 we time-travel to the state right before it.
	// Padding only ever occurs at or after modified positions, so the
	// prefix indexes the log directly.
	ver := min(first, e.vdb.NumVersions())
	var db *storage.Database
	var err error
	if snaps != nil {
		db, err = snaps.SnapshotCtx(ctx, ver)
	} else {
		db, err = e.vdb.VersionCtx(ctx, ver)
	}
	if err != nil {
		return nil, nil, 0, err
	}
	if st != nil {
		st.TimeTravel = time.Since(t0)
	}
	return pair.SuffixFrom(first), db, ver, nil
}

// Naive answers the query with Alg. 1.
func (e *Engine) Naive(mods []history.Modification) (delta.Set, *NaiveStats, error) {
	return e.NaiveCtx(context.Background(), mods)
}

// NaiveCtx is Naive under a context: cancellation is observed during
// time travel, between the statements of the hypothetical history, and
// between per-relation delta computations.
func (e *Engine) NaiveCtx(ctx context.Context, mods []history.Modification) (delta.Set, *NaiveStats, error) {
	d, st, _, err := e.naiveFrom(ctx, mods, &NaiveStats{}, nil)
	return d, st, err
}

// naiveFrom is NaiveCtx over an optional shared snapshot cache
// (Session routes through here), also returning the history length the
// delta was diffed against. The explicit Clone of the algorithm's
// Copy(D) step doubles as the copy-on-write boundary that keeps a
// shared snapshot read-only.
func (e *Engine) naiveFrom(ctx context.Context, mods []history.Modification, stats *NaiveStats, snaps *storage.SnapshotCache) (delta.Set, *NaiveStats, int, error) {
	start := time.Now()
	suffix, db, tip, err := e.prepare(ctx, mods, nil, snaps)
	if err != nil {
		return nil, nil, 0, err
	}
	// Creation: the copy of D. prepare already materialized a private
	// copy via time travel; the explicit Clone here is the algorithm's
	// Copy(D) step, kept so the naive method pays the paper's cost.
	t0 := time.Now()
	work := db.Clone()
	stats.Creation = time.Since(t0)

	t0 = time.Now()
	if err := suffix.Mod.ApplyCtx(ctx, work); err != nil {
		return nil, nil, 0, err
	}
	stats.Execute = time.Since(t0)

	t0 = time.Now()
	// The delta compares against the actual state at the history length
	// the query was admitted against (tip). Through a session (live
	// serving) that must be a pinned snapshot — an append landing
	// mid-call must not bleed into the "actual" side of the diff —
	// while the bare engine reads the live state directly, preserving
	// the paper's cost model for benchmarks (quiescence documented).
	actual := e.vdb.Current()
	if snaps != nil {
		if actual, err = snaps.SnapshotCtx(ctx, tip); err != nil {
			return nil, nil, 0, err
		}
	}
	out := delta.Set{}
	for rel := range relationUnion(suffix) {
		if err := ctx.Err(); err != nil {
			return nil, nil, 0, err
		}
		cur, err := actual.Relation(rel)
		if err != nil {
			return nil, nil, 0, err
		}
		modRel, err := work.Relation(rel)
		if err != nil {
			return nil, nil, 0, err
		}
		out[rel] = delta.Compute(cur, modRel)
	}
	stats.Delta = time.Since(t0)
	stats.Total = time.Since(start)
	return out, stats, tip, nil
}

func relationUnion(pair *history.PaddedPair) map[string]bool {
	rels := pair.Orig.Relations()
	for r := range pair.Mod.Relations() {
		rels[r] = true
	}
	return rels
}

// WhatIf answers the query with Alg. 2 under the given options.
func (e *Engine) WhatIf(mods []history.Modification, opts Options) (delta.Set, *Stats, error) {
	return e.WhatIfCtx(context.Background(), mods, opts)
}

// WhatIfCtx is WhatIf under a context. Cancellation and deadlines are
// observed inside the long-running phases — every solver branch & bound
// node during program slicing, every few thousand tuples of compiled
// query execution, every statement of time-travel replay — so a
// cancelled query stops within milliseconds and returns ctx.Err().
func (e *Engine) WhatIfCtx(ctx context.Context, mods []history.Modification, opts Options) (delta.Set, *Stats, error) {
	return e.whatIf(ctx, mods, opts, nil)
}

// whatIf is WhatIfCtx with optional shared caches (snapshot, query
// results) used by WhatIfBatch and Session.
func (e *Engine) whatIf(ctx context.Context, mods []history.Modification, opts Options, shared *batchShared) (delta.Set, *Stats, error) {
	d, st, _, err := e.whatIfTip(ctx, mods, opts, shared)
	return d, st, err
}

// whatIfTip is whatIf, additionally returning the history length the
// answer was evaluated against — the frame of reference callers need
// to evaluate follow-up queries (aggregate reports) consistently.
func (e *Engine) whatIfTip(ctx context.Context, mods []history.Modification, opts Options, shared *batchShared) (delta.Set, *Stats, int, error) {
	h, err := e.History()
	if err != nil {
		return nil, nil, 0, err
	}
	pair, err := history.ApplyModifications(h, mods)
	if err != nil {
		return nil, nil, 0, err
	}
	d, st, err := e.whatIfPair(ctx, pair, opts, shared)
	return d, st, len(h), err
}

// whatIfPair answers an already-aligned query pair (WhatIfBatch
// computes pairs once, for both scheduling and evaluation). The
// evaluation path only reads db, so a shared snapshot is safe; anything
// that must mutate state clones first.
func (e *Engine) whatIfPair(ctx context.Context, pair *history.PaddedPair, opts Options, shared *batchShared) (delta.Set, *Stats, error) {
	if shared == nil {
		shared = &batchShared{}
	}
	stats := &Stats{Slices: map[string]progslice.Stats{}}
	start := time.Now()
	suffix, db, ver, err := e.snapshotFor(ctx, pair, stats, shared.snaps)
	if err != nil {
		return nil, nil, err
	}
	ev := evaluator{ctx: ctx, ec: shared.eval, ver: ver, kind: normalizeExecutor(opts.Executor), vec: opts.Vec}
	stats.TotalStatements = len(suffix.Orig)

	// Relations to answer for; taint analysis prunes provably-empty
	// deltas.
	rels := relationUnion(suffix)
	tainted := dataslice.TaintedRelations(suffix)
	targets := make([]string, 0, len(rels))
	for rel := range rels {
		if opts.SkipUntainted && !tainted[rel] {
			stats.SkippedRelations = append(stats.SkippedRelations, rel)
			continue
		}
		targets = append(targets, rel)
	}

	// Data slicing (§6).
	filters := &dataslice.Conditions{H: reenact.Filters{}, M: reenact.Filters{}}
	if opts.DataSlicing {
		t0 := time.Now()
		filters, err = dataslice.Compute(suffix, db, opts.DataSlice)
		if err != nil {
			return nil, nil, err
		}
		stats.DataSlicing = time.Since(t0)
	}

	out := delta.Set{}
	split := opts.ProgramSlicing || opts.InsertSplit
	if !split {
		if err := e.wholeHistoryPath(suffix, db, filters, targets, out, stats, ev); err != nil {
			return nil, nil, err
		}
		stats.Total = time.Since(start)
		stats.KeptStatements = stats.TotalStatements
		return out, stats, nil
	}

	for _, rel := range targets {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		if err := e.splitPath(ctx, suffix, db, rel, filters, opts, out, stats, ev); err != nil {
			return nil, nil, err
		}
	}
	stats.Total = time.Since(start)
	return out, stats, nil
}

// wholeHistoryPath reenacts the full histories per relation (variant R
// or R+DS without insert split).
func (e *Engine) wholeHistoryPath(suffix *history.PaddedPair, db *storage.Database, filters *dataslice.Conditions, targets []string, out delta.Set, stats *Stats, ev evaluator) error {
	t0 := time.Now()
	qsOrig, err := reenact.Queries(suffix.Orig, db, filters.H)
	if err != nil {
		return err
	}
	qsMod, err := reenact.Queries(suffix.Mod, db, filters.M)
	if err != nil {
		return err
	}
	for _, rel := range targets {
		qo, qm := qsOrig[rel], qsMod[rel]
		if qo == nil || qm == nil {
			continue
		}
		ro, err := ev.eval(qo, db)
		if err != nil {
			return err
		}
		rm, err := ev.eval(qm, db)
		if err != nil {
			return err
		}
		stats.Execute += time.Since(t0)
		t1 := time.Now()
		out[rel] = delta.Compute(ro, rm)
		stats.Delta += time.Since(t1)
		t0 = time.Now()
	}
	stats.Execute += time.Since(t0)
	return nil
}

// splitPath answers one relation using the §10 split: the insert-free
// part (optionally program sliced) over the base relation, unioned with
// the insert branches.
func (e *Engine) splitPath(ctx context.Context, suffix *history.PaddedPair, db *storage.Database, rel string, filters *dataslice.Conditions, opts Options, out delta.Set, stats *Stats, ev evaluator) error {
	relPair, _ := suffix.RestrictToRelation(rel)
	noInsPair, modified := stripInsertPair(relPair)

	keep := allPositions(len(noInsPair.Orig))
	if opts.ProgramSlicing {
		if len(modified) == 0 {
			// Every modification on rel is an insert pair: the
			// insert-free parts of both histories are identical, so the
			// base branches cancel and can be dropped entirely.
			keep = nil
		} else {
			relation, err := db.Relation(rel)
			if err != nil {
				return err
			}
			phiD, err := symbolic.Compress(relation, opts.Compress)
			if err != nil {
				return err
			}
			in := &progslice.Input{Pair: noInsPair, Schema: relation.Schema, PhiD: phiD, Compile: opts.Compile}
			var res *progslice.Result
			if opts.UseDependency {
				res, err = progslice.DependencyCtx(ctx, in)
			} else {
				res, err = progslice.GreedyCtx(ctx, in)
			}
			if err != nil {
				return err
			}
			keep = res.Keep
			stats.Slices[rel] = res.Stats
			stats.ProgramSlicing += res.Stats.Duration
			stats.SolverTests += res.Stats.Tests
			stats.SolverNodes += res.Stats.SolverNodes
		}
	}
	stats.KeptStatements += len(keep)

	t0 := time.Now()
	baseOrig, err := reenact.QueryForRelation(noInsPair.Orig.Restrict(keep), rel, db, filters.H)
	if err != nil {
		return err
	}
	baseMod, err := reenact.QueryForRelation(noInsPair.Mod.Restrict(keep), rel, db, filters.M)
	if err != nil {
		return err
	}
	brOrig, err := reenact.InsertBranches(suffix.Orig, rel, db)
	if err != nil {
		return err
	}
	brMod, err := reenact.InsertBranches(suffix.Mod, rel, db)
	if err != nil {
		return err
	}
	qo, qm := baseOrig, baseMod
	if brOrig != nil {
		qo = &algebra.Union{L: qo, R: brOrig}
	}
	if brMod != nil {
		qm = &algebra.Union{L: qm, R: brMod}
	}
	ro, err := ev.eval(qo, db)
	if err != nil {
		return err
	}
	rm, err := ev.eval(qm, db)
	if err != nil {
		return err
	}
	stats.Execute += time.Since(t0)

	t0 = time.Now()
	out[rel] = delta.Compute(ro, rm)
	stats.Delta += time.Since(t0)
	return nil
}

func allPositions(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// stripInsertPair removes aligned insert positions from a pair,
// returning the reduced pair and its modified positions.
func stripInsertPair(pair *history.PaddedPair) (*history.PaddedPair, []int) {
	modSet := map[int]bool{}
	for _, p := range pair.ModifiedPos {
		modSet[p] = true
	}
	out := &history.PaddedPair{}
	for i := range pair.Orig {
		if isInsert(pair.Orig[i]) || isInsert(pair.Mod[i]) {
			continue
		}
		out.Orig = append(out.Orig, pair.Orig[i])
		out.Mod = append(out.Mod, pair.Mod[i])
		if modSet[i] {
			out.ModifiedPos = append(out.ModifiedPos, len(out.Orig)-1)
		}
	}
	return out, out.ModifiedPos
}

func isInsert(s history.Statement) bool {
	switch s.(type) {
	case *history.InsertValues, *history.InsertQuery:
		return true
	}
	return false
}

// normalizeExecutor resolves the zero value to the default backend.
func normalizeExecutor(k ExecutorKind) ExecutorKind {
	if k == "" {
		return ExecVectorized
	}
	return k
}

// evaluator answers algebra queries, optionally through a batch-shared
// compiled-program + result cache (see evalCache). The default backend
// is the vectorized executor; kind selects the tuple-at-a-time compiled
// executor or the tree-walking interpreter oracle instead.
type evaluator struct {
	ctx  context.Context
	ec   *evalCache
	ver  int
	kind ExecutorKind
	vec  exec.VecOptions
}

// evalCtx returns the evaluator's context (Background when the
// evaluator was built zero-valued, e.g. in tests).
func (ev evaluator) evalCtx() context.Context {
	if ev.ctx == nil {
		return context.Background()
	}
	return ev.ctx
}

func (ev evaluator) eval(q algebra.Query, db *storage.Database) (*storage.Relation, error) {
	ctx := ev.evalCtx()
	if ev.ec != nil {
		return ev.ec.eval(ctx, q, db, ev.ver, ev.kind, ev.vec)
	}
	if ev.kind == ExecInterpreter {
		// The tree-walking oracle is not ctx-aware; bound its damage by
		// refusing to start when the request is already dead.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return algebra.Eval(q, db)
	}
	prog, err := compileFor(ev.kind, q, db, ev.vec)
	if err != nil {
		// Outside the compilable subset: the interpreter is the
		// reference semantics, so this can only be slower, never wrong.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return algebra.Eval(q, db)
	}
	return prog.RunCtx(ctx, db)
}

// compileFor lowers q with the backend kind selects (vectorized unless
// the tuple-at-a-time compiled executor was requested explicitly).
func compileFor(kind ExecutorKind, q algebra.Query, db *storage.Database, vec exec.VecOptions) (*exec.Program, error) {
	if kind == ExecCompiled {
		return exec.Compile(q, db)
	}
	return exec.CompileVec(q, db, vec)
}
