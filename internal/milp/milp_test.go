package milp

import (
	"math"
	"testing"
)

func mustVar(t *testing.T, m *Model, lo, hi float64, integer bool) int {
	t.Helper()
	v, err := m.AddVar(lo, hi, integer)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func mustCons(t *testing.T, m *Model, terms []Term, s Sense, rhs float64) {
	t.Helper()
	if err := m.AddConstraint(terms, s, rhs); err != nil {
		t.Fatal(err)
	}
}

func solveCheck(t *testing.T, m *Model, wantStatus Status) *Result {
	t.Helper()
	res := m.Solve(SolveOptions{})
	if res.Status != wantStatus {
		t.Fatalf("status = %v, want %v (nodes=%d)", res.Status, wantStatus, res.Nodes)
	}
	if res.Status == Feasible && !m.CheckPoint(res.X, 1e-5) {
		t.Fatalf("returned point violates the model: %v", res.X)
	}
	return res
}

func TestTriviallyFeasible(t *testing.T) {
	m := NewModel()
	mustVar(t, m, 0, 10, false)
	solveCheck(t, m, Feasible)
}

func TestSingleGEConstraint(t *testing.T) {
	m := NewModel()
	x := mustVar(t, m, 0, 10, false)
	mustCons(t, m, []Term{{x, 1}}, GE, 7)
	res := solveCheck(t, m, Feasible)
	if res.X[x] < 7-1e-6 {
		t.Errorf("x = %v, want ≥ 7", res.X[x])
	}
}

func TestSingleGEInfeasible(t *testing.T) {
	m := NewModel()
	x := mustVar(t, m, 0, 1, false)
	mustCons(t, m, []Term{{x, 1}}, GE, 2)
	solveCheck(t, m, Infeasible)
}

func TestEqualitySystem(t *testing.T) {
	// x + y = 1, x − y = 1 → x = 1, y = 0.
	m := NewModel()
	x := mustVar(t, m, -5, 5, false)
	y := mustVar(t, m, -5, 5, false)
	mustCons(t, m, []Term{{x, 1}, {y, 1}}, EQ, 1)
	mustCons(t, m, []Term{{x, 1}, {y, -1}}, EQ, 1)
	res := solveCheck(t, m, Feasible)
	if math.Abs(res.X[x]-1) > 1e-6 || math.Abs(res.X[y]) > 1e-6 {
		t.Errorf("got x=%v y=%v, want 1, 0", res.X[x], res.X[y])
	}
}

func TestNegativeLowerBounds(t *testing.T) {
	// x ∈ [−10, −2], x ≤ −5 → feasible with x ≤ −5.
	m := NewModel()
	x := mustVar(t, m, -10, -2, false)
	mustCons(t, m, []Term{{x, 1}}, LE, -5)
	res := solveCheck(t, m, Feasible)
	if res.X[x] > -5+1e-6 {
		t.Errorf("x = %v, want ≤ −5", res.X[x])
	}
}

func TestBigMDisjunction(t *testing.T) {
	// d ∈ [−100, 100] free; b, s binary; the Ne-style encoding:
	// d ≥ 1 − 200·s, d ≤ −1 + 200·(1−s); and force d = 0 via bounds.
	// With d pinned to 0 the system must be infeasible.
	m := NewModel()
	d := mustVar(t, m, 0, 0, false)
	s := mustVar(t, m, 0, 1, true)
	mustCons(t, m, []Term{{d, 1}, {s, 200}}, GE, 1)
	mustCons(t, m, []Term{{d, 1}, {s, 200}}, LE, 199)
	solveCheck(t, m, Infeasible)
}

func TestBigMDisjunctionFeasibleSides(t *testing.T) {
	// Same encoding with d free: both sides must be reachable.
	for _, want := range []float64{+1, -1} {
		m := NewModel()
		d := mustVar(t, m, -100, 100, false)
		s := mustVar(t, m, 0, 1, true)
		mustCons(t, m, []Term{{d, 1}, {s, 200}}, GE, 1)
		mustCons(t, m, []Term{{d, 1}, {s, 200}}, LE, 199)
		// Force the side: d ≥ 1 (want +) or d ≤ −1 (want −).
		if want > 0 {
			mustCons(t, m, []Term{{d, 1}}, GE, 1)
		} else {
			mustCons(t, m, []Term{{d, 1}}, LE, -1)
		}
		res := solveCheck(t, m, Feasible)
		if want > 0 && res.X[d] < 1-1e-6 {
			t.Errorf("d = %v, want ≥ 1", res.X[d])
		}
		if want < 0 && res.X[d] > -1+1e-6 {
			t.Errorf("d = %v, want ≤ −1", res.X[d])
		}
	}
}

func TestIntegerForcesBranching(t *testing.T) {
	// 2b = 1 has an LP solution (b=0.5) but no integer solution.
	m := NewModel()
	b := mustVar(t, m, 0, 1, true)
	mustCons(t, m, []Term{{b, 2}}, EQ, 1)
	solveCheck(t, m, Infeasible)
}

func TestIntegerKnapsackFeasible(t *testing.T) {
	// 3a + 5b + 7c = 12 over binaries → a=0, b=1, c=1.
	m := NewModel()
	a := mustVar(t, m, 0, 1, true)
	b := mustVar(t, m, 0, 1, true)
	c := mustVar(t, m, 0, 1, true)
	mustCons(t, m, []Term{{a, 3}, {b, 5}, {c, 7}}, EQ, 12)
	res := solveCheck(t, m, Feasible)
	if res.X[a] != 0 || res.X[b] != 1 || res.X[c] != 1 {
		t.Errorf("got (%v,%v,%v), want (0,1,1)", res.X[a], res.X[b], res.X[c])
	}
}

func TestIntegerKnapsackInfeasible(t *testing.T) {
	// 3a + 5b + 7c = 11 over binaries has no solution.
	m := NewModel()
	a := mustVar(t, m, 0, 1, true)
	b := mustVar(t, m, 0, 1, true)
	c := mustVar(t, m, 0, 1, true)
	mustCons(t, m, []Term{{a, 3}, {b, 5}, {c, 7}}, EQ, 11)
	solveCheck(t, m, Infeasible)
}

func TestEmptyVarDomain(t *testing.T) {
	m := NewModel()
	if _, err := m.AddVar(3, 2, false); err == nil {
		t.Error("AddVar(3,2) must fail")
	}
	if _, err := m.AddVar(math.Inf(-1), 0, false); err == nil {
		t.Error("infinite bounds must fail")
	}
}

func TestOptimizeSimple(t *testing.T) {
	// max x+y s.t. x+2y ≤ 4, x ≤ 3, x,y ≥ 0 (min −x−y).
	m := NewModel()
	x := mustVar(t, m, 0, 100, false)
	y := mustVar(t, m, 0, 100, false)
	mustCons(t, m, []Term{{x, 1}, {y, 2}}, LE, 4)
	mustCons(t, m, []Term{{x, 1}}, LE, 3)
	res, err := m.Optimize([]float64{-1, -1}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Feasible {
		t.Fatalf("status = %v", res.Status)
	}
	// Optimum: x=3, y=0.5, objective −3.5.
	if math.Abs(res.Objective-(-3.5)) > 1e-6 {
		t.Errorf("objective = %v, want −3.5 (x=%v y=%v)", res.Objective, res.X[x], res.X[y])
	}
}

func TestOptimizeInfeasible(t *testing.T) {
	m := NewModel()
	x := mustVar(t, m, 0, 1, false)
	mustCons(t, m, []Term{{x, 1}}, GE, 5)
	res, err := m.Optimize([]float64{1}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", res.Status)
	}
}

func TestPropagationFixesChain(t *testing.T) {
	// b1=1 forced; b1 ≤ b2; b2 ≤ b3; b3 + x ≤ 1 with x ∈ [1,1] → infeasible
	// purely by propagation.
	m := NewModel()
	b1 := mustVar(t, m, 1, 1, true)
	b2 := mustVar(t, m, 0, 1, true)
	b3 := mustVar(t, m, 0, 1, true)
	x := mustVar(t, m, 1, 1, false)
	mustCons(t, m, []Term{{b1, 1}, {b2, -1}}, LE, 0)
	mustCons(t, m, []Term{{b2, 1}, {b3, -1}}, LE, 0)
	mustCons(t, m, []Term{{b3, 1}, {x, 1}}, LE, 1)
	res := solveCheck(t, m, Infeasible)
	if res.Nodes > 1 {
		t.Errorf("expected pure propagation (1 node), used %d", res.Nodes)
	}
}
