// Package milp is a small exact mixed-integer linear programming
// solver: a dense tableau simplex (phase 1 feasibility, phase 2
// optimization) with depth-first branch & bound on integer variables.
// It stands in for the CPLEX solver the paper uses (§11) to decide
// satisfiability of compiled slicing conditions. All variables must
// carry finite bounds, which the condition compiler guarantees.
package milp

import (
	"fmt"
	"math"
)

// Sense is the relation of a linear constraint.
type Sense int8

// Constraint senses.
const (
	LE Sense = iota // Σ aᵢxᵢ ≤ rhs
	GE              // Σ aᵢxᵢ ≥ rhs
	EQ              // Σ aᵢxᵢ = rhs
)

// String returns the mathematical spelling of the sense.
func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return "?"
}

// Term is one coefficient of a linear expression.
type Term struct {
	Var  int
	Coef float64
}

// Constraint is a linear constraint Σ terms ∘ RHS.
type Constraint struct {
	Terms []Term
	Sense Sense
	RHS   float64
}

// Model is a MILP feasibility/optimization problem.
type Model struct {
	lo, hi []float64
	isInt  []bool
	cons   []Constraint

	// occurs maps variable → indices of constraints containing it; it
	// is built lazily for worklist propagation and invalidated by
	// AddConstraint.
	occurs [][]int
}

// occurrences returns (building if necessary) the variable→constraints
// adjacency used by incremental propagation.
func (m *Model) occurrences() [][]int {
	if m.occurs != nil {
		return m.occurs
	}
	m.occurs = make([][]int, len(m.lo))
	for ci := range m.cons {
		seen := map[int]bool{}
		for _, t := range m.cons[ci].Terms {
			if !seen[t.Var] {
				seen[t.Var] = true
				m.occurs[t.Var] = append(m.occurs[t.Var], ci)
			}
		}
	}
	return m.occurs
}

// NewModel returns an empty model.
func NewModel() *Model { return &Model{} }

// NumVars returns the number of variables.
func (m *Model) NumVars() int { return len(m.lo) }

// NumConstraints returns the number of constraints.
func (m *Model) NumConstraints() int { return len(m.cons) }

// AddVar adds a variable with finite bounds [lo, hi]; integer variables
// are branch targets. It returns the variable index.
func (m *Model) AddVar(lo, hi float64, integer bool) (int, error) {
	if math.IsInf(lo, 0) || math.IsInf(hi, 0) || math.IsNaN(lo) || math.IsNaN(hi) {
		return 0, fmt.Errorf("milp: variable bounds must be finite, got [%v,%v]", lo, hi)
	}
	if lo > hi {
		return 0, fmt.Errorf("milp: empty variable domain [%v,%v]", lo, hi)
	}
	m.lo = append(m.lo, lo)
	m.hi = append(m.hi, hi)
	m.isInt = append(m.isInt, integer)
	return len(m.lo) - 1, nil
}

// AddBinary adds a {0,1} variable.
func (m *Model) AddBinary() (int, error) { return m.AddVar(0, 1, true) }

// AddConstraint appends a linear constraint. Terms on the same variable
// are allowed and summed.
func (m *Model) AddConstraint(terms []Term, sense Sense, rhs float64) error {
	for _, t := range terms {
		if t.Var < 0 || t.Var >= len(m.lo) {
			return fmt.Errorf("milp: constraint references unknown variable %d", t.Var)
		}
		if math.IsNaN(t.Coef) || math.IsInf(t.Coef, 0) {
			return fmt.Errorf("milp: non-finite coefficient %v", t.Coef)
		}
	}
	m.cons = append(m.cons, Constraint{Terms: terms, Sense: sense, RHS: rhs})
	m.occurs = nil
	return nil
}

// Status reports the outcome of a solve.
type Status int8

// Solve outcomes.
const (
	// Feasible means an assignment satisfying all constraints and
	// integrality was found.
	Feasible Status = iota
	// Infeasible means the problem provably has no solution.
	Infeasible
	// Limit means a node/iteration budget was exhausted before a
	// definitive answer; callers must treat this conservatively.
	Limit
	// Unbounded is reported by Optimize when the objective diverges.
	Unbounded
	// Canceled means SolveCtx stopped because its context was cancelled
	// or its deadline expired; callers surface ctx.Err().
	Canceled
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case Limit:
		return "limit"
	case Unbounded:
		return "unbounded"
	case Canceled:
		return "canceled"
	}
	return "?"
}

// Result of a solve.
type Result struct {
	Status Status
	// X is a satisfying assignment when Status == Feasible.
	X []float64
	// Objective is the optimum when produced by Optimize.
	Objective float64
	// Nodes is the number of branch & bound nodes explored.
	Nodes int
}

// eval computes the left-hand side of c under x.
func (c *Constraint) eval(x []float64) float64 {
	s := 0.0
	for _, t := range c.Terms {
		s += t.Coef * x[t.Var]
	}
	return s
}

// satisfied reports whether x fulfills c within tolerance.
func (c *Constraint) satisfied(x []float64, eps float64) bool {
	v := c.eval(x)
	switch c.Sense {
	case LE:
		return v <= c.RHS+eps
	case GE:
		return v >= c.RHS-eps
	default:
		return math.Abs(v-c.RHS) <= eps
	}
}

// CheckPoint reports whether x satisfies all constraints, bounds, and
// integrality of the model. Used by the rounding heuristic and by
// property tests to validate solver answers.
func (m *Model) CheckPoint(x []float64, eps float64) bool {
	if len(x) != len(m.lo) {
		return false
	}
	for i := range x {
		if x[i] < m.lo[i]-eps || x[i] > m.hi[i]+eps {
			return false
		}
		if m.isInt[i] && math.Abs(x[i]-math.Round(x[i])) > eps {
			return false
		}
	}
	for i := range m.cons {
		if !m.cons[i].satisfied(x, eps) {
			return false
		}
	}
	return true
}

// ViolatedConstraints lists the indices of constraints x fails, for
// debugging and tests.
func (m *Model) ViolatedConstraints(x []float64, eps float64) []int {
	var out []int
	for i := range m.cons {
		if !m.cons[i].satisfied(x, eps) {
			out = append(out, i)
		}
	}
	return out
}

// ConstraintAt returns the i-th constraint, for debugging and tests.
func (m *Model) ConstraintAt(i int) Constraint { return m.cons[i] }
