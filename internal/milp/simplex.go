package milp

import (
	"fmt"
	"math"
)

// epsilons for the numeric kernel.
const (
	pivotEps = 1e-9
	feasEps  = 1e-6
)

// tableau is a dense simplex tableau in canonical form: basis columns
// form an identity, rows carry the constraint coefficients with the
// right-hand side in the last column, and obj is the reduced-cost row.
type tableau struct {
	a     [][]float64 // m rows × (n+1) columns, last column = rhs
	obj   []float64   // n+1 entries, last = -objective value
	basis []int       // basic variable per row
	n     int         // structural+slack+artificial columns
}

// lp is the standard-form translation of a model under (possibly
// tightened) bounds: fixed variables are substituted out entirely,
// remaining variables are shifted to y = x - lo ≥ 0 and column-
// compressed, finite upper bounds are emitted as rows, and slack/
// artificial columns appended. Column compression matters: at branch &
// bound leaves nearly all indicator variables are fixed, shrinking the
// dense tableau from thousands of columns to the few live continuous
// ones.
type lp struct {
	t        *tableau
	shift    []float64 // lo per original variable
	fixed    []bool    // width-zero variables (pinned to lo)
	col      []int     // original variable → compressed column (-1 if fixed)
	vars     []int     // compressed column → original variable
	nOrig    int
	artStart int // first artificial column
}

// buildLP translates m (with override bounds lo/hi) into phase-1
// standard form. It returns nil with ok=false when some variable box is
// empty or a fully-fixed constraint is violated — both immediately
// infeasible.
func buildLP(m *Model, lo, hi []float64) (*lp, bool) {
	nOrig := len(lo)
	shift := make([]float64, nOrig)
	fixed := make([]bool, nOrig)
	col := make([]int, nOrig)
	var vars []int
	for i := range lo {
		if lo[i] > hi[i]+feasEps {
			return nil, false
		}
		shift[i] = lo[i]
		if hi[i]-lo[i] <= pivotEps {
			fixed[i] = true
			col[i] = -1
			continue
		}
		col[i] = len(vars)
		vars = append(vars, i)
	}
	nLive := len(vars)

	type row struct {
		coef  []float64
		sense Sense
		rhs   float64
	}
	var rows []row

	// Constraint rows over shifted, compressed variables. Fully-fixed
	// rows are checked immediately and dropped.
	scratch := make([]float64, nOrig)
	for _, c := range m.cons {
		for _, t := range c.Terms {
			scratch[t.Var] += t.Coef
		}
		rhs := c.RHS
		coef := make([]float64, nLive)
		live := false
		for _, t := range c.Terms {
			i := t.Var
			if scratch[i] == 0 {
				continue
			}
			rhs -= scratch[i] * shift[i]
			if !fixed[i] {
				coef[col[i]] = scratch[i]
				live = true
			}
			scratch[i] = 0
		}
		if !live {
			// All variables fixed: verify directly.
			ok := true
			switch c.Sense {
			case LE:
				ok = rhs >= -feasEps
			case GE:
				ok = rhs <= feasEps
			case EQ:
				ok = math.Abs(rhs) <= feasEps
			}
			if !ok {
				return nil, false
			}
			continue
		}
		rows = append(rows, row{coef: coef, sense: c.Sense, rhs: rhs})
	}
	// Upper-bound rows y ≤ hi-lo for live variables.
	for ci, i := range vars {
		coef := make([]float64, nLive)
		coef[ci] = 1
		rows = append(rows, row{coef: coef, sense: LE, rhs: hi[i] - lo[i]})
	}

	// Normalize to rhs ≥ 0.
	for ri := range rows {
		if rows[ri].rhs < 0 {
			for i := range rows[ri].coef {
				rows[ri].coef[i] = -rows[ri].coef[i]
			}
			rows[ri].rhs = -rows[ri].rhs
			switch rows[ri].sense {
			case LE:
				rows[ri].sense = GE
			case GE:
				rows[ri].sense = LE
			}
		}
	}

	mRows := len(rows)
	// Count extra columns: slack per LE, surplus per GE, artificial per
	// GE and EQ.
	nSlack, nArt := 0, 0
	for _, r := range rows {
		switch r.sense {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}
	n := nLive + nSlack + nArt
	t := &tableau{
		a:     make([][]float64, mRows),
		obj:   make([]float64, n+1),
		basis: make([]int, mRows),
		n:     n,
	}
	slackCol := nLive
	artCol := nLive + nSlack
	artStart := artCol
	for ri, r := range rows {
		t.a[ri] = make([]float64, n+1)
		copy(t.a[ri], r.coef)
		t.a[ri][n] = r.rhs
		switch r.sense {
		case LE:
			t.a[ri][slackCol] = 1
			t.basis[ri] = slackCol
			slackCol++
		case GE:
			t.a[ri][slackCol] = -1
			slackCol++
			t.a[ri][artCol] = 1
			t.basis[ri] = artCol
			artCol++
		case EQ:
			t.a[ri][artCol] = 1
			t.basis[ri] = artCol
			artCol++
		}
	}
	// Phase-1 objective: minimize sum of artificials. Reduced costs:
	// start from c (1 on artificials) and eliminate basic artificials.
	for j := artStart; j < n; j++ {
		t.obj[j] = 1
	}
	for ri, b := range t.basis {
		if b >= artStart {
			for j := 0; j <= n; j++ {
				t.obj[j] -= t.a[ri][j]
			}
		}
	}
	return &lp{t: t, shift: shift, fixed: fixed, col: col, vars: vars, nOrig: nOrig, artStart: artStart}, true
}

// pivot performs a Gauss-Jordan pivot on (row, col).
func (t *tableau) pivot(row, col int) {
	p := t.a[row][col]
	inv := 1 / p
	for j := 0; j <= t.n; j++ {
		t.a[row][j] *= inv
	}
	t.a[row][col] = 1 // avoid residual error
	for ri := range t.a {
		if ri == row {
			continue
		}
		f := t.a[ri][col]
		if f == 0 {
			continue
		}
		for j := 0; j <= t.n; j++ {
			t.a[ri][j] -= f * t.a[row][j]
		}
		t.a[ri][col] = 0
	}
	if f := t.obj[col]; f != 0 {
		for j := 0; j <= t.n; j++ {
			t.obj[j] -= f * t.a[row][j]
		}
		t.obj[col] = 0
	}
	t.basis[row] = col
}

// iterate runs simplex until optimal, iteration budget exhaustion, or
// unboundedness. It uses Dantzig pricing with a Bland fallback after
// stalling to guarantee termination.
func (t *tableau) iterate(maxIter int) (optimal bool, unbounded bool) {
	stall := 0
	lastObj := math.Inf(1)
	for it := 0; it < maxIter; it++ {
		useBland := stall > 50
		col := -1
		best := -pivotEps * 10
		for j := 0; j < t.n; j++ {
			rc := t.obj[j]
			if rc < best {
				if useBland {
					col = j
					break
				}
				best = rc
				col = j
			}
		}
		if col < 0 {
			return true, false
		}
		row := -1
		bestRatio := math.Inf(1)
		for ri := range t.a {
			aij := t.a[ri][col]
			if aij <= pivotEps {
				continue
			}
			ratio := t.a[ri][t.n] / aij
			if ratio < bestRatio-pivotEps || (math.Abs(ratio-bestRatio) <= pivotEps && (row < 0 || t.basis[ri] < t.basis[row])) {
				bestRatio = ratio
				row = ri
			}
		}
		if row < 0 {
			return false, true
		}
		t.pivot(row, col)
		obj := -t.obj[t.n]
		if obj >= lastObj-1e-12 {
			stall++
		} else {
			stall = 0
		}
		lastObj = obj
	}
	return false, false
}

// solution extracts the original-variable assignment from the tableau:
// fixed variables sit at their (shifted) bound, non-basic live columns
// at zero offset, basic live columns at their row's rhs.
func (l *lp) solution() []float64 {
	x := make([]float64, l.nOrig)
	copy(x, l.shift)
	for ri, b := range l.t.basis {
		if b < len(l.vars) {
			orig := l.vars[b]
			x[orig] = l.shift[orig] + l.t.a[ri][l.t.n]
		}
	}
	return x
}

// lpFeasible runs phase-1 simplex under the given bounds and returns a
// feasible point for the relaxation if one exists. status Limit means
// the iteration budget ran out.
func lpFeasible(m *Model, lo, hi []float64, maxIter int) (Status, []float64) {
	l, ok := buildLP(m, lo, hi)
	if !ok {
		return Infeasible, nil
	}
	optimal, _ := l.t.iterate(maxIter)
	if !optimal {
		return Limit, nil
	}
	if -l.t.obj[l.t.n] > feasEps {
		return Infeasible, nil
	}
	return Feasible, l.solution()
}

// Optimize minimizes the linear objective Σ obj[i]·x[i] over the LP
// relaxation of the model (integrality is ignored). It is exposed for
// testing the simplex kernel and for cost-model experiments.
func (m *Model) Optimize(objective []float64, maxIter int) (*Result, error) {
	if len(objective) != len(m.lo) {
		return nil, fmt.Errorf("milp: objective has %d coefficients for %d variables", len(objective), len(m.lo))
	}
	l, ok := buildLP(m, m.lo, m.hi)
	if !ok {
		return &Result{Status: Infeasible}, nil
	}
	optimal, _ := l.t.iterate(maxIter)
	if !optimal {
		return &Result{Status: Limit}, nil
	}
	if -l.t.obj[l.t.n] > feasEps {
		return &Result{Status: Infeasible}, nil
	}
	// Phase 2: swap in the real objective, zero out artificial columns
	// so they never re-enter, and re-derive reduced costs.
	t := l.t
	for j := 0; j <= t.n; j++ {
		t.obj[j] = 0
	}
	for i, c := range objective {
		if !l.fixed[i] {
			t.obj[l.col[i]] = c
		}
	}
	// Forbid artificials from re-entering.
	for ri := range t.a {
		if t.basis[ri] >= l.artStart {
			// Pivot the artificial out if possible.
			for j := 0; j < l.artStart; j++ {
				if math.Abs(t.a[ri][j]) > pivotEps {
					t.pivot(ri, j)
					break
				}
			}
		}
	}
	for j := l.artStart; j < t.n; j++ {
		t.obj[j] = math.Inf(1) // sentinel: never negative, never chosen
	}
	// Re-canonicalize the objective row over the basis.
	for ri, b := range t.basis {
		if b < l.artStart && t.obj[b] != 0 {
			f := t.obj[b]
			for j := 0; j <= t.n; j++ {
				if !math.IsInf(t.obj[j], 1) {
					t.obj[j] -= f * t.a[ri][j]
				}
			}
			t.obj[b] = 0
		}
	}
	optimal, unbounded := t.iterate(maxIter)
	if unbounded {
		return &Result{Status: Unbounded}, nil
	}
	if !optimal {
		return &Result{Status: Limit}, nil
	}
	x := l.solution()
	val := 0.0
	for i, c := range objective {
		val += c * x[i]
	}
	return &Result{Status: Feasible, X: x, Objective: val}, nil
}

// DebugPhase1 exposes the phase-1 solve for diagnosis in tests: it
// returns the raw status, the extracted point, and the phase-1
// objective (sum of artificials) at termination.
func (m *Model) DebugPhase1() (Status, []float64, float64) {
	l, ok := buildLP(m, m.lo, m.hi)
	if !ok {
		return Infeasible, nil, math.Inf(1)
	}
	optimal, _ := l.t.iterate(5000)
	obj := -l.t.obj[l.t.n]
	if !optimal {
		return Limit, l.solution(), obj
	}
	if obj > feasEps {
		return Infeasible, l.solution(), obj
	}
	return Feasible, l.solution(), obj
}
