package milp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomBinaryModel builds a random feasibility problem over nBin
// binaries with small integer coefficients, so feasibility can be
// decided by brute force over all assignments.
func randomBinaryModel(rng *rand.Rand, nBin, nCons int) *Model {
	m := NewModel()
	for i := 0; i < nBin; i++ {
		if _, err := m.AddBinary(); err != nil {
			panic(err)
		}
	}
	for c := 0; c < nCons; c++ {
		var terms []Term
		for v := 0; v < nBin; v++ {
			if rng.Intn(2) == 0 {
				terms = append(terms, Term{Var: v, Coef: float64(rng.Intn(7) - 3)})
			}
		}
		if len(terms) == 0 {
			continue
		}
		sense := []Sense{LE, GE, EQ}[rng.Intn(3)]
		rhs := float64(rng.Intn(9) - 4)
		if err := m.AddConstraint(terms, sense, rhs); err != nil {
			panic(err)
		}
	}
	return m
}

// bruteForceFeasible enumerates all binary assignments.
func bruteForceFeasible(m *Model, nBin int) bool {
	x := make([]float64, nBin)
	for mask := 0; mask < 1<<nBin; mask++ {
		for v := 0; v < nBin; v++ {
			x[v] = float64((mask >> v) & 1)
		}
		if m.CheckPoint(x, 1e-9) {
			return true
		}
	}
	return false
}

// TestSolveMatchesBruteForce is the solver's core property: on random
// pure-binary problems the verdict must match exhaustive enumeration,
// and feasible verdicts must come with valid witnesses.
func TestSolveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 400; trial++ {
		nBin := 1 + rng.Intn(8)
		m := randomBinaryModel(rng, nBin, 1+rng.Intn(6))
		want := bruteForceFeasible(m, nBin)
		res := m.Solve(SolveOptions{})
		if res.Status == Limit {
			t.Fatalf("trial %d: unexpected budget overrun on a %d-binary problem", trial, nBin)
		}
		got := res.Status == Feasible
		if got != want {
			t.Fatalf("trial %d: solver=%v bruteforce=%v (%d binaries, %d constraints)",
				trial, res.Status, want, nBin, m.NumConstraints())
		}
		if got && !m.CheckPoint(res.X, 1e-6) {
			t.Fatalf("trial %d: invalid witness %v", trial, res.X)
		}
	}
}

// TestSolveMixedIntegerContinuous adds continuous variables coupled to
// the binaries and cross-checks against brute force over the binaries
// (continuous feasibility per assignment is a tiny interval check here:
// each continuous var is constrained to equal a linear form).
func TestSolveMixedIntegerContinuous(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 200; trial++ {
		nBin := 1 + rng.Intn(6)
		m := randomBinaryModel(rng, nBin, 1+rng.Intn(4))
		// y = Σ cᵢ bᵢ with y ∈ [lo, hi]: feasible iff some admissible
		// assignment lands in the box.
		y, err := m.AddVar(-100, 100, false)
		if err != nil {
			t.Fatal(err)
		}
		coefs := make([]float64, nBin)
		terms := []Term{{Var: y, Coef: -1}}
		for v := 0; v < nBin; v++ {
			coefs[v] = float64(rng.Intn(11) - 5)
			terms = append(terms, Term{Var: v, Coef: coefs[v]})
		}
		if err := m.AddConstraint(terms, EQ, 0); err != nil {
			t.Fatal(err)
		}
		lo := float64(rng.Intn(10) - 5)
		if err := m.AddConstraint([]Term{{Var: y, Coef: 1}}, GE, lo); err != nil {
			t.Fatal(err)
		}

		// Brute force.
		want := false
		x := make([]float64, nBin+1)
		for mask := 0; mask < 1<<nBin && !want; mask++ {
			sum := 0.0
			for v := 0; v < nBin; v++ {
				x[v] = float64((mask >> v) & 1)
				sum += coefs[v] * x[v]
			}
			x[y] = sum
			want = m.CheckPoint(x, 1e-9)
		}

		res := m.Solve(SolveOptions{})
		if res.Status == Limit {
			t.Fatalf("trial %d: budget overrun", trial)
		}
		if (res.Status == Feasible) != want {
			t.Fatalf("trial %d: solver=%v bruteforce=%v", trial, res.Status, want)
		}
		if res.Status == Feasible && !m.CheckPoint(res.X, 1e-6) {
			t.Fatalf("trial %d: invalid witness", trial)
		}
	}
}

// TestCheckPointProperty: CheckPoint accepts exactly the points that
// satisfy all constraints — quick-checked on single-constraint models.
func TestCheckPointProperty(t *testing.T) {
	f := func(coef1, coef2 int8, rhs int8, x1, x2 int8) bool {
		m := NewModel()
		a, _ := m.AddVar(-200, 200, false)
		b, _ := m.AddVar(-200, 200, false)
		if err := m.AddConstraint([]Term{{a, float64(coef1)}, {b, float64(coef2)}}, LE, float64(rhs)); err != nil {
			return false
		}
		pt := []float64{float64(x1), float64(x2)}
		manual := float64(coef1)*pt[0]+float64(coef2)*pt[1] <= float64(rhs)+1e-9
		return m.CheckPoint(pt, 1e-9) == manual
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestPropagationNeverCutsSolutions: propagation may only shrink the
// box toward the feasible set, never cut off an integer solution that
// brute force finds.
func TestPropagationNeverCutsSolutions(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 300; trial++ {
		nBin := 1 + rng.Intn(7)
		m := randomBinaryModel(rng, nBin, 1+rng.Intn(5))
		lo := append([]float64(nil), m.lo...)
		hi := append([]float64(nil), m.hi...)
		feasibleBox := m.propagate(lo, hi, -1, m.propVisits(SolveOptions{}.withDefaults()))

		x := make([]float64, nBin)
		for mask := 0; mask < 1<<nBin; mask++ {
			for v := 0; v < nBin; v++ {
				x[v] = float64((mask >> v) & 1)
			}
			if !m.CheckPoint(x, 1e-9) {
				continue
			}
			// A genuine solution: propagation must not have excluded it.
			if !feasibleBox {
				t.Fatalf("trial %d: propagation declared infeasible but %v is a solution", trial, x)
			}
			for v := 0; v < nBin; v++ {
				if x[v] < lo[v]-1e-9 || x[v] > hi[v]+1e-9 {
					t.Fatalf("trial %d: propagation cut solution %v (var %d bounds [%v,%v])",
						trial, x, v, lo[v], hi[v])
				}
			}
		}
	}
}
