package milp

import (
	"context"
	"math"
)

// SolveOptions bounds the branch & bound search.
type SolveOptions struct {
	// MaxNodes caps explored branch & bound nodes (default 20000).
	MaxNodes int
	// MaxIter caps simplex iterations per LP (default 5000).
	MaxIter int
	// MaxPropagationRounds caps bound-tightening sweeps per node
	// (default 64); a negative value disables propagation entirely
	// (pure LP-based branch & bound, for ablation and debugging).
	MaxPropagationRounds int
}

func (o SolveOptions) withDefaults() SolveOptions {
	if o.MaxNodes == 0 {
		o.MaxNodes = 20000
	}
	if o.MaxIter == 0 {
		o.MaxIter = 5000
	}
	if o.MaxPropagationRounds == 0 {
		o.MaxPropagationRounds = 64
	}
	return o
}

// Solve decides feasibility of the MILP by depth-first branch & bound
// over the integer variables, with feasibility-based bound tightening
// (interval constraint propagation) at every node. Big-M indicator
// encodings — the shape produced by the condition compiler — are
// resolved almost entirely by propagation, so the LP and branching only
// handle the residual continuous reasoning. The result is exact
// (Feasible with a witness, or Infeasible) unless a budget runs out, in
// which case Status is Limit and callers must fall back conservatively.
func (m *Model) Solve(opts SolveOptions) *Result {
	return m.SolveCtx(context.Background(), opts)
}

// SolveCtx is Solve under a context: cancellation or deadline expiry is
// checked at every branch & bound node, so a cancelled solve stops
// within one node's work (one propagation sweep or LP). A cancelled
// search reports Status Canceled; callers surface ctx.Err().
func (m *Model) SolveCtx(ctx context.Context, opts SolveOptions) *Result {
	opts = opts.withDefaults()
	res := &Result{}
	lo := append([]float64(nil), m.lo...)
	hi := append([]float64(nil), m.hi...)
	status, x := m.branchCtx(ctx, lo, hi, -1, opts, res)
	res.Status = status
	res.X = x
	return res
}

// propVisits converts the rounds option into a worklist budget.
func (m *Model) propVisits(opts SolveOptions) int {
	return opts.MaxPropagationRounds * (len(m.cons) + 1)
}

const propTol = 1e-7

// checkEps is the exact-verification tolerance for accepting integral
// points (see the big-M note in branch).
const checkEps = 1e-5

// propagate tightens lo/hi in place by interval propagation to
// fixpoint. seed < 0 propagates every constraint (root node); seed ≥ 0
// starts from the constraints containing that just-branched variable
// and follows the dependency cone via a worklist, which keeps interior
// branch & bound nodes proportional to the affected part of the model.
// It returns false when some constraint is proven unsatisfiable over
// the box. visits caps total constraint evaluations as a safety net.
func (m *Model) propagate(lo, hi []float64, seed int, visits int) bool {
	occ := m.occurrences()
	queue := make([]int, 0, 64)
	inQueue := make([]bool, len(m.cons))
	push := func(ci int) {
		if !inQueue[ci] {
			inQueue[ci] = true
			queue = append(queue, ci)
		}
	}
	if seed < 0 {
		for ci := range m.cons {
			push(ci)
		}
	} else {
		for _, ci := range occ[seed] {
			push(ci)
		}
	}
	changedVars := make([]int, 0, 16)
	for len(queue) > 0 && visits > 0 {
		ci := queue[0]
		queue = queue[1:]
		inQueue[ci] = false
		visits--

		con := &m.cons[ci]
		changedVars = changedVars[:0]
		if con.Sense == LE || con.Sense == EQ {
			ok := m.tightenLE(con.Terms, con.RHS, lo, hi, &changedVars)
			if !ok {
				return false
			}
		}
		if con.Sense == GE || con.Sense == EQ {
			ok := m.tightenGE(con.Terms, con.RHS, lo, hi, &changedVars)
			if !ok {
				return false
			}
		}
		for _, v := range changedVars {
			for _, dep := range occ[v] {
				push(dep)
			}
		}
	}
	return true
}

// branchWorthy marks the variables that occur in at least one
// constraint that some point of the box still violates. Variables
// outside the set cannot influence feasibility and need no branching.
func (m *Model) branchWorthy(lo, hi []float64) []bool {
	worthy := make([]bool, len(lo))
	for ci := range m.cons {
		con := &m.cons[ci]
		minAct, maxAct := 0.0, 0.0
		for _, t := range con.Terms {
			if t.Coef > 0 {
				minAct += t.Coef * lo[t.Var]
				maxAct += t.Coef * hi[t.Var]
			} else {
				minAct += t.Coef * hi[t.Var]
				maxAct += t.Coef * lo[t.Var]
			}
		}
		vacuous := false
		switch con.Sense {
		case LE:
			vacuous = maxAct <= con.RHS+feasEps
		case GE:
			vacuous = minAct >= con.RHS-feasEps
		case EQ:
			vacuous = maxAct <= con.RHS+feasEps && minAct >= con.RHS-feasEps
		}
		if vacuous {
			continue
		}
		for _, t := range con.Terms {
			worthy[t.Var] = true
		}
	}
	return worthy
}

// tightenLE handles Σ aᵢxᵢ ≤ rhs: it prunes using the minimum activity
// and derives per-variable bound updates, appending tightened variables
// to changed.
func (m *Model) tightenLE(terms []Term, rhs float64, lo, hi []float64, changed *[]int) bool {
	minAct := 0.0
	for _, t := range terms {
		if t.Coef > 0 {
			minAct += t.Coef * lo[t.Var]
		} else {
			minAct += t.Coef * hi[t.Var]
		}
	}
	if minAct > rhs+feasEps {
		return false
	}
	for _, t := range terms {
		if t.Coef == 0 {
			continue
		}
		var contrib float64
		if t.Coef > 0 {
			contrib = t.Coef * lo[t.Var]
		} else {
			contrib = t.Coef * hi[t.Var]
		}
		slack := rhs - (minAct - contrib)
		bound := slack / t.Coef
		if t.Coef > 0 {
			// x ≤ bound.
			if m.isInt[t.Var] {
				bound = math.Floor(bound + propTol)
			}
			if bound < hi[t.Var]-propTol {
				hi[t.Var] = bound
				*changed = append(*changed, t.Var)
				if lo[t.Var] > hi[t.Var]+feasEps {
					return false
				}
			}
		} else {
			// x ≥ bound.
			if m.isInt[t.Var] {
				bound = math.Ceil(bound - propTol)
			}
			if bound > lo[t.Var]+propTol {
				lo[t.Var] = bound
				*changed = append(*changed, t.Var)
				if lo[t.Var] > hi[t.Var]+feasEps {
					return false
				}
			}
		}
	}
	return true
}

// tightenGE handles Σ aᵢxᵢ ≥ rhs by negating into ≤ form.
func (m *Model) tightenGE(terms []Term, rhs float64, lo, hi []float64, changed *[]int) bool {
	neg := make([]Term, len(terms))
	for i, t := range terms {
		neg[i] = Term{Var: t.Var, Coef: -t.Coef}
	}
	return m.tightenLE(neg, -rhs, lo, hi, changed)
}

// branchCtx explores one node. The search is propagation-driven: exact
// interval propagation prunes and fixes variables at every node, and
// the (dense, comparatively expensive) LP runs only at leaves where all
// integer variables are fixed, to certify the residual continuous
// system. Big-M indicator encodings — the shape the condition compiler
// emits — propagate so strongly that interior LPs would rarely prune
// anything propagation does not. lo/hi are owned by the caller and may
// be mutated freely (each recursion copies).
func (m *Model) branchCtx(ctx context.Context, lo, hi []float64, seed int, opts SolveOptions, res *Result) (Status, []float64) {
	res.Nodes++
	if res.Nodes > opts.MaxNodes {
		return Limit, nil
	}
	if ctx.Err() != nil {
		return Canceled, nil
	}
	if opts.MaxPropagationRounds > 0 {
		if !m.propagate(lo, hi, seed, m.propVisits(opts)) {
			return Infeasible, nil
		}
	} else {
		// Propagation disabled (ablation): fall back to LP pruning at
		// every node so the search still terminates in practice.
		status, _ := lpFeasible(m, lo, hi, opts.MaxIter)
		if status != Feasible {
			return status, nil
		}
	}

	// Midpoint heuristic: if the box midpoint (integers snapped)
	// already satisfies everything, we are done without an LP.
	cand := make([]float64, len(lo))
	for i := range cand {
		cand[i] = (lo[i] + hi[i]) / 2
		if m.isInt[i] {
			cand[i] = math.Max(lo[i], math.Min(hi[i], math.Round(cand[i])))
		}
	}
	if m.CheckPoint(cand, feasEps) {
		return Feasible, cand
	}

	// Pick the first unfixed integer variable that still matters: a
	// variable all of whose constraints are already vacuous over the
	// box (satisfiable for every point in it) is a don't-care — e.g.
	// the side-selector of a disequality once the equality side is
	// fixed — and branching on it would only duplicate the subtree.
	// Creation order follows the compiled expression structure
	// bottom-up, so comparison indicators — which drive the numeric
	// bounds — branch first.
	worthy := m.branchWorthy(lo, hi)
	pick := -1
	for i := range lo {
		if m.isInt[i] && hi[i]-lo[i] > feasEps && worthy[i] {
			pick = i
			break
		}
	}
	if pick < 0 {
		// Only don't-care integers remain: certify the continuous
		// residual exactly (don't-cares join the LP as continuous and
		// are rounded afterwards — their constraints cannot be violated
		// inside the box).
		status, x := lpFeasible(m, lo, hi, opts.MaxIter)
		if status != Feasible {
			return status, nil
		}
		out := append([]float64(nil), x...)
		for i := range out {
			if m.isInt[i] {
				out[i] = math.Max(lo[i], math.Min(hi[i], math.Round(out[i])))
			}
		}
		if m.CheckPoint(out, checkEps) {
			return Feasible, out
		}
		// The LP claims feasibility but the exact check disagrees:
		// numerical failure; answer conservatively.
		return Limit, nil
	}

	// Branch on the two halves of the domain ({0}/{1} for binaries).
	mid := math.Floor((lo[pick] + hi[pick]) / 2)
	type side struct{ lo, hi float64 }
	sides := []side{{lo[pick], mid}, {mid + 1, hi[pick]}}
	sawLimit := false
	for _, s := range sides {
		if s.lo > s.hi {
			continue
		}
		clo := append([]float64(nil), lo...)
		chi := append([]float64(nil), hi...)
		clo[pick], chi[pick] = s.lo, s.hi
		st, pt := m.branchCtx(ctx, clo, chi, pick, opts, res)
		switch st {
		case Feasible:
			return Feasible, pt
		case Canceled:
			return Canceled, nil
		case Limit:
			sawLimit = true
		}
	}
	if sawLimit {
		return Limit, nil
	}
	return Infeasible, nil
}
