// Package dataslice implements the data slicing optimization of §6:
// selection conditions injected at the base scans of the reenactment
// queries that filter out tuples provably irrelevant for the answer of
// a historical what-if query.
//
// For a modification u ← u' at position p, the base conditions are
//
//	update/update:  θ_u ∨ θ_u'           (Eq. 7, both sides)
//	delete/delete:  θ_u' for H, θ_u for H[M] (simplified Eq. 8)
//	insert/insert:  none — base tuples pass through inserts unchanged
//
// and are pushed down through the p preceding statements per side
// (Fig. 9): substitution through updates, unchanged through deletes and
// constant inserts, and through INSERT…SELECT via the relational
// push-down (θ)[S]↓Q, which spawns conditions for the query's input
// relations. Conditions from multiple modifications are combined by
// disjunction (Thm. 2).
package dataslice

import (
	"strings"

	"github.com/mahif/mahif/internal/algebra"
	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/history"
	"github.com/mahif/mahif/internal/reenact"
	"github.com/mahif/mahif/internal/storage"
)

// Conditions holds per-relation slicing filters for the two histories.
type Conditions struct {
	H reenact.Filters // filters for the original history's reenactment
	M reenact.Filters // filters for the modified history's reenactment
}

// Options tunes the analysis.
type Options struct {
	// MaxCondSize widens a pushed condition to true once its AST
	// exceeds this many nodes, bounding the push-down cost the paper
	// discusses at the end of §6. Zero means the default (8192).
	MaxCondSize int
}

const defaultMaxCondSize = 8192

// Compute derives the data slicing conditions for an aligned history
// pair over db.
func Compute(pair *history.PaddedPair, db *storage.Database, opts Options) (*Conditions, error) {
	if opts.MaxCondSize == 0 {
		opts.MaxCondSize = defaultMaxCondSize
	}
	hContrib, hWide, err := sideConditions(pair, db, false, opts)
	if err != nil {
		return nil, err
	}
	mContrib, mWide, err := sideConditions(pair, db, true, opts)
	if err != nil {
		return nil, err
	}

	out := &Conditions{H: reenact.Filters{}, M: reenact.Filters{}}
	wide := func(rel string) bool { return hWide[rel] || mWide[rel] }
	combine := func(contrib map[string][]expr.Expr, dst reenact.Filters) {
		for rel, cs := range contrib {
			if wide(rel) {
				continue // widened to true: no filter
			}
			dst[rel] = expr.Simplify(expr.OrOf(cs...))
		}
	}
	combine(hContrib, out.H)
	combine(mContrib, out.M)

	// Relations read by an unmodified INSERT…SELECT must be filtered
	// symmetrically on both sides: their tuples feed inserted tuples via
	// the query in both reenactments, filtered-out sources produce the
	// same (missing) inserted tuples on both sides, and those cancel in
	// the delta. An asymmetric filter (possible for delete/delete
	// modifications) would break that cancellation. The symmetric union
	// of both sides' filters is a sound superset.
	for _, rel := range queryReadRelations(pair, false) {
		hc, hok := out.H[rel]
		mc, mok := out.M[rel]
		switch {
		case !hok && !mok:
			continue
		case !hok || !mok:
			// One side unfiltered: drop the other side's filter too.
			delete(out.H, rel)
			delete(out.M, rel)
		default:
			sym := expr.Simplify(expr.OrOf(hc, mc))
			out.H[rel] = sym
			out.M[rel] = sym
		}
	}

	// Relations read by a *modified* INSERT…SELECT must not be filtered
	// at all: the query's output exists on one side only, so its
	// inserted tuples are themselves the delta and every source tuple
	// the query needs must survive.
	for _, rel := range queryReadRelations(pair, true) {
		delete(out.H, rel)
		delete(out.M, rel)
	}
	return out, nil
}

// sideConditions runs the push-down worklist for one side of the pair.
// It returns per-relation condition contributions and the set of
// relations whose conditions were widened to true.
func sideConditions(pair *history.PaddedPair, db *storage.Database, modified bool, opts Options) (map[string][]expr.Expr, map[string]bool, error) {
	stmts := pair.Orig
	if modified {
		stmts = pair.Mod
	}
	contrib := map[string][]expr.Expr{}
	widened := map[string]bool{}

	type item struct {
		rel  string
		cond expr.Expr
		pos  int // cond talks about relation state after statements [0,pos)
	}
	var work []item
	for _, p := range pair.ModifiedPos {
		u, uNew := pair.Orig[p], pair.Mod[p]
		cond := baseCondition(u, uNew, modified)
		if cond == nil {
			continue // insert pair: no base condition
		}
		work = append(work, item{rel: strings.ToLower(u.Table()), cond: cond, pos: p})
	}

	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		cond := it.cond
		tooBig := false
		for j := it.pos - 1; j >= 0 && !tooBig; j-- {
			st := stmts[j]
			if !strings.EqualFold(st.Table(), it.rel) {
				continue
			}
			switch x := st.(type) {
			case *history.Update:
				rel, err := db.Relation(it.rel)
				if err != nil {
					return nil, nil, err
				}
				vec, err := x.SetVector(rel.Schema)
				if err != nil {
					return nil, nil, err
				}
				repl := map[string]expr.Expr{}
				for i, c := range rel.Schema.Columns {
					if col, ok := vec[i].(*expr.Col); ok && strings.EqualFold(col.Name, c.Name) {
						continue // identity assignment: no substitution
					}
					repl[strings.ToLower(c.Name)] = expr.IfThenElse(x.Where, vec[i], expr.Column(c.Name))
				}
				cond = expr.SubstCols(cond, repl)
				if expr.Size(cond) > opts.MaxCondSize {
					tooBig = true
				}
			case *history.Delete, *history.InsertValues:
				// Surviving base tuples keep their values; constant
				// inserts are handled by the insert-branch split.
			case *history.InsertQuery:
				// Tuples may enter it.rel here via the query: spawn
				// conditions for the query's input relations at state j.
				for src := range algebra.BaseRelations(x.Query) {
					pushed, err := algebra.PushCond(cond, x.Query, src, db)
					if err != nil {
						return nil, nil, err
					}
					pushed = expr.Simplify(pushed)
					if !expr.IsTriviallyFalse(pushed) {
						work = append(work, item{rel: src, cond: pushed, pos: j})
					}
				}
			}
		}
		if tooBig {
			widened[it.rel] = true
			continue
		}
		contrib[it.rel] = append(contrib[it.rel], expr.Simplify(cond))
	}
	return contrib, widened, nil
}

// baseCondition builds the slicing condition contributed by one aligned
// modification pair for the requested side, or nil when the pair does
// not constrain base tuples (insert pairs).
func baseCondition(u, uNew history.Statement, modified bool) expr.Expr {
	switch a := u.(type) {
	case *history.Update:
		b, ok := uNew.(*history.Update)
		if !ok {
			return expr.True
		}
		return expr.Simplify(expr.OrOf(a.Where, b.Where))
	case *history.Delete:
		b, ok := uNew.(*history.Delete)
		if !ok {
			return expr.True
		}
		if modified {
			return nullInclusive(a.Where) // θ_u filters the modified history's input
		}
		return nullInclusive(b.Where) // θ_u' filters the original history's input
	case *history.InsertValues, *history.InsertQuery:
		return nil
	}
	return expr.True
}

// nullInclusive widens a delete condition θ to θ ∨ (θ IS NULL). The
// engine deletes a tuple whenever ¬θ is not TRUE, so a θ that evaluates
// to NULL removes the tuple just like TRUE does (the documented
// deviation in history.Delete). A slicing filter built from bare θ
// would drop those tuples from the slice — silently excluding affected
// tuples from the delta — because σ keeps only rows where the filter is
// TRUE.
func nullInclusive(w expr.Expr) expr.Expr {
	return expr.Simplify(expr.OrOf(w, &expr.IsNull{E: w}))
}

// queryReadRelations lists relations read by INSERT…SELECT statements
// on either side of the pair, restricted to modified or unmodified
// statement positions.
func queryReadRelations(pair *history.PaddedPair, modifiedOnly bool) []string {
	modified := map[int]bool{}
	for _, p := range pair.ModifiedPos {
		modified[p] = true
	}
	set := map[string]bool{}
	scan := func(h history.History) {
		for pos, st := range h {
			if modified[pos] != modifiedOnly {
				continue
			}
			if iq, ok := st.(*history.InsertQuery); ok {
				for rel := range algebra.BaseRelations(iq.Query) {
					set[rel] = true
				}
			}
		}
	}
	scan(pair.Orig)
	scan(pair.Mod)
	out := make([]string, 0, len(set))
	for rel := range set {
		out = append(out, rel)
	}
	return out
}

// TaintedRelations returns the relations whose final state can differ
// between the two histories: targets of modified statements, plus any
// relation receiving an INSERT…SELECT that (transitively) reads a
// tainted relation after the taint was introduced. Untainted relations
// have a provably empty delta and can be skipped entirely.
func TaintedRelations(pair *history.PaddedPair) map[string]bool {
	tainted := map[string]bool{}
	firstMod := map[string]int{}
	for _, p := range pair.ModifiedPos {
		rel := strings.ToLower(pair.Orig[p].Table())
		tainted[rel] = true
		if old, ok := firstMod[rel]; !ok || p < old {
			firstMod[rel] = p
		}
	}
	// Propagate along insert-query edges in statement order until fixpoint.
	for changed := true; changed; {
		changed = false
		for _, h := range []history.History{pair.Orig, pair.Mod} {
			for pos, st := range h {
				iq, ok := st.(*history.InsertQuery)
				if !ok {
					continue
				}
				dst := strings.ToLower(iq.Rel)
				if tainted[dst] {
					continue
				}
				for src := range algebra.BaseRelations(iq.Query) {
					if tainted[src] && pos >= firstMod[src] {
						tainted[dst] = true
						firstMod[dst] = pos
						changed = true
						break
					}
				}
			}
		}
	}
	return tainted
}
