package dataslice

import (
	"math/rand"
	"testing"

	"github.com/mahif/mahif/internal/algebra"
	"github.com/mahif/mahif/internal/delta"
	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/history"
	"github.com/mahif/mahif/internal/reenact"
	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/sql"
	"github.com/mahif/mahif/internal/storage"
	"github.com/mahif/mahif/internal/types"
)

func ordersDB() *storage.Database {
	s := schema.New("orders",
		schema.Col("id", types.KindInt),
		schema.Col("country", types.KindString),
		schema.Col("price", types.KindInt),
		schema.Col("fee", types.KindInt),
	)
	r := storage.NewRelation(s)
	r.Add(
		schema.Tuple{types.Int(11), types.String("UK"), types.Int(20), types.Int(5)},
		schema.Tuple{types.Int(12), types.String("UK"), types.Int(50), types.Int(5)},
		schema.Tuple{types.Int(13), types.String("US"), types.Int(60), types.Int(3)},
		schema.Tuple{types.Int(14), types.String("US"), types.Int(30), types.Int(4)},
	)
	db := storage.NewDatabase()
	db.AddRelation(r)
	return db
}

func mustPair(t *testing.T, h history.History, mods []history.Modification) *history.PaddedPair {
	t.Helper()
	pair, err := history.ApplyModifications(h, mods)
	if err != nil {
		t.Fatal(err)
	}
	return pair
}

func TestUpdatePairCondition(t *testing.T) {
	// Eq. 7: both sides filter on θ_u ∨ θ_u'.
	h, _ := sql.ParseStatements(`UPDATE orders SET fee = 0 WHERE price >= 50`)
	pair := mustPair(t, h, []history.Modification{history.Replace{
		Pos:  0,
		Stmt: sql.MustParseStatement(`UPDATE orders SET fee = 0 WHERE price >= 60`),
	}})
	conds, err := Compute(pair, ordersDB(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := expr.OrOf(
		expr.Ge(expr.Column("price"), expr.IntConst(50)),
		expr.Ge(expr.Column("price"), expr.IntConst(60)),
	)
	if !expr.Equal(conds.H["orders"], want) {
		t.Errorf("H filter = %s, want %s", conds.H["orders"], want)
	}
	if !expr.Equal(conds.M["orders"], want) {
		t.Errorf("M filter = %s, want %s", conds.M["orders"], want)
	}
}

func TestDeletePairConditions(t *testing.T) {
	// Simplified Eq. 8: H filters on θ_u', H[M] on θ_u — each widened
	// to θ ∨ (θ IS NULL), since the engine deletes NULL-θ tuples too
	// (the documented deviation in history.Delete) and the slice must
	// keep every tuple the delete can touch.
	h, _ := sql.ParseStatements(`DELETE FROM orders WHERE price < 30`)
	pair := mustPair(t, h, []history.Modification{history.Replace{
		Pos:  0,
		Stmt: sql.MustParseStatement(`DELETE FROM orders WHERE price < 40`),
	}})
	conds, err := Compute(pair, ordersDB(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	wide := func(w expr.Expr) expr.Expr { return expr.OrOf(w, &expr.IsNull{E: w}) }
	wantH := wide(expr.Lt(expr.Column("price"), expr.IntConst(40)))
	if !expr.Equal(conds.H["orders"], wantH) {
		t.Errorf("H filter = %s, want %s", conds.H["orders"], wantH)
	}
	wantM := wide(expr.Lt(expr.Column("price"), expr.IntConst(30)))
	if !expr.Equal(conds.M["orders"], wantM) {
		t.Errorf("M filter = %s, want %s", conds.M["orders"], wantM)
	}
}

// TestExample4PushDown reproduces the paper's Example 4: the slicing
// condition for a modification of u3 is pushed through u2 and u1 by
// substituting the fee with the conditional update expressions.
func TestExample4PushDown(t *testing.T) {
	h, _ := sql.ParseStatements(`
		UPDATE orders SET fee = 0 WHERE price >= 50;
		UPDATE orders SET fee = fee + 5 WHERE country = 'UK' AND price <= 100;
		UPDATE orders SET fee = fee - 2 WHERE price <= 30 AND fee >= 10;
	`)
	pair := mustPair(t, h, []history.Modification{history.Replace{
		Pos:  2,
		Stmt: sql.MustParseStatement(`UPDATE orders SET fee = fee - 2 WHERE price <= 40 AND fee >= 10`),
	}})
	db := ordersDB()
	conds, err := Compute(pair, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	filter := conds.H["orders"]
	if filter == nil {
		t.Fatal("no filter derived")
	}
	// Evaluating the pushed condition over Fig. 1 must keep exactly the
	// tuple with ID 11 (the paper's result).
	rel, _ := db.Relation("orders")
	var kept []int64
	for _, tup := range rel.Tuples {
		ok, err := expr.Satisfied(filter, rel.Schema, tup)
		if err != nil {
			t.Fatalf("evaluating %s: %v", filter, err)
		}
		if ok {
			kept = append(kept, tup[0].AsInt())
		}
	}
	if len(kept) != 1 || kept[0] != 11 {
		t.Errorf("filter keeps %v, want [11]; filter: %s", kept, filter)
	}
}

func TestInsertPairNoBaseCondition(t *testing.T) {
	h, _ := sql.ParseStatements(`
		INSERT INTO orders VALUES (15, 'DE', 80, 6);
		UPDATE orders SET fee = 1 WHERE price > 1000;
	`)
	pair := mustPair(t, h, []history.Modification{history.Replace{
		Pos:  0,
		Stmt: sql.MustParseStatement(`INSERT INTO orders VALUES (15, 'DE', 90, 6)`),
	}})
	conds, err := Compute(pair, ordersDB(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Insert pairs contribute no base filter: base tuples flow
	// identically through both histories.
	if _, ok := conds.H["orders"]; ok {
		t.Errorf("unexpected base filter %s for an insert-only modification", conds.H["orders"])
	}
}

func TestTaintedRelations(t *testing.T) {
	db := ordersDB()
	arch := storage.NewRelation(schema.New("archive",
		schema.Col("id", types.KindInt), schema.Col("country", types.KindString),
		schema.Col("price", types.KindInt), schema.Col("fee", types.KindInt)))
	db.AddRelation(arch)
	h, _ := sql.ParseStatements(`
		UPDATE orders SET fee = 0 WHERE price >= 50;
		INSERT INTO archive SELECT * FROM orders WHERE fee = 0;
	`)
	pair := mustPair(t, h, []history.Modification{history.Replace{
		Pos:  0,
		Stmt: sql.MustParseStatement(`UPDATE orders SET fee = 0 WHERE price >= 60`),
	}})
	tainted := TaintedRelations(pair)
	if !tainted["orders"] || !tainted["archive"] {
		t.Errorf("taint must flow through INSERT…SELECT: %v", tainted)
	}

	// The reverse order: the archive insert runs before the
	// modification, so archive stays clean.
	h2, _ := sql.ParseStatements(`
		INSERT INTO archive SELECT * FROM orders WHERE fee = 0;
		UPDATE orders SET fee = 0 WHERE price >= 50;
	`)
	pair2 := mustPair(t, h2, []history.Modification{history.Replace{
		Pos:  1,
		Stmt: sql.MustParseStatement(`UPDATE orders SET fee = 0 WHERE price >= 60`),
	}})
	tainted2 := TaintedRelations(pair2)
	if tainted2["archive"] {
		t.Errorf("pre-modification insert must not taint: %v", tainted2)
	}
}

// TestFilteredDeltaEquality is the executable Theorem 2: the delta over
// filtered reenactment inputs equals the unfiltered delta, across
// random histories and modifications.
func TestFilteredDeltaEquality(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 120; trial++ {
		db := randomOrdersDB(rng, 40)
		h := randomHistory(rng, 1+rng.Intn(5))
		modPos := rng.Intn(len(h))
		mod := randomModification(rng, h, modPos)
		pair, err := history.ApplyModifications(h, []history.Modification{mod})
		if err != nil {
			t.Fatal(err)
		}

		plain := computeDelta(t, pair, db, nil, nil)
		conds, err := Compute(pair, db, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		filtered := computeDelta(t, pair, db, conds.H, conds.M)
		if !plain.Equal(filtered) {
			t.Fatalf("trial %d: data slicing changed the delta\nhistory:\n%s\nmod: %s\nfilters: H=%s M=%s\nplain:\n%s\nfiltered:\n%s",
				trial, h, mod, conds.H["orders"], conds.M["orders"], plain, filtered)
		}
	}
}

func computeDelta(t *testing.T, pair *history.PaddedPair, db *storage.Database, fh, fm reenact.Filters) *delta.Result {
	t.Helper()
	qo, err := reenact.QueryForRelation(pair.Orig, "orders", db, fh)
	if err != nil {
		t.Fatal(err)
	}
	qm, err := reenact.QueryForRelation(pair.Mod, "orders", db, fm)
	if err != nil {
		t.Fatal(err)
	}
	ro, err := algebra.Eval(qo, db)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := algebra.Eval(qm, db)
	if err != nil {
		t.Fatal(err)
	}
	return delta.Compute(ro, rm)
}

func randomOrdersDB(rng *rand.Rand, n int) *storage.Database {
	s := schema.New("orders",
		schema.Col("id", types.KindInt),
		schema.Col("country", types.KindString),
		schema.Col("price", types.KindInt),
		schema.Col("fee", types.KindInt),
	)
	countries := []string{"UK", "US", "DE"}
	r := storage.NewRelation(s)
	for i := 0; i < n; i++ {
		r.Add(schema.Tuple{
			types.Int(int64(i)),
			types.String(countries[rng.Intn(len(countries))]),
			types.Int(int64(rng.Intn(100))),
			types.Int(int64(rng.Intn(20))),
		})
	}
	db := storage.NewDatabase()
	db.AddRelation(r)
	return db
}

func randomCondition(rng *rand.Rand) expr.Expr {
	col := []string{"price", "fee"}[rng.Intn(2)]
	c := int64(rng.Intn(100))
	if rng.Intn(2) == 0 {
		return expr.Ge(expr.Column(col), expr.IntConst(c))
	}
	return expr.Lt(expr.Column(col), expr.IntConst(c))
}

func randomHistory(rng *rand.Rand, n int) history.History {
	var h history.History
	for i := 0; i < n; i++ {
		switch rng.Intn(5) {
		case 0:
			h = append(h, &history.Delete{Rel: "orders", Where: randomCondition(rng)})
		case 1:
			h = append(h, &history.InsertValues{Rel: "orders", Rows: []schema.Tuple{{
				types.Int(int64(1000 + i)), types.String("XX"),
				types.Int(int64(rng.Intn(100))), types.Int(int64(rng.Intn(20))),
			}}})
		default:
			h = append(h, &history.Update{Rel: "orders",
				Set: []history.SetClause{{
					Col: "fee",
					E:   expr.Add(expr.Column("fee"), expr.IntConst(int64(rng.Intn(4)))),
				}},
				Where: randomCondition(rng)})
		}
	}
	return h
}

func randomModification(rng *rand.Rand, h history.History, pos int) history.Modification {
	switch h[pos].(type) {
	case *history.Update:
		return history.Replace{Pos: pos, Stmt: &history.Update{Rel: "orders",
			Set: []history.SetClause{{
				Col: "fee",
				E:   expr.Add(expr.Column("fee"), expr.IntConst(int64(rng.Intn(6)))),
			}},
			Where: randomCondition(rng)}}
	case *history.Delete:
		return history.Replace{Pos: pos, Stmt: &history.Delete{Rel: "orders", Where: randomCondition(rng)}}
	default:
		return history.Replace{Pos: pos, Stmt: &history.InsertValues{Rel: "orders", Rows: []schema.Tuple{{
			types.Int(int64(2000)), types.String("YY"),
			types.Int(int64(rng.Intn(100))), types.Int(int64(rng.Intn(20))),
		}}}}
	}
}
