package algebra

import (
	"strings"

	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/storage"
)

// PushCond implements the relation-specific condition push-down
// (θ)[R]↓Q of §6: it returns a condition over the base relation rel
// such that every rel-tuple contributing to a Q-output tuple satisfying
// θ also satisfies the returned condition. Contributions from branches
// that cannot produce rel-tuples yield false (neutral in the
// disjunctive combination); anything the rules cannot decompose safely
// widens to true.
//
//	(θ)[R]↓R'          = θ if R = R', false otherwise
//	(θ)[R]↓σ_θ'(Q)     = (θ ∧ θ')[R]↓Q
//	(θ)[R]↓Π_e⃗(Q)      = (θ[A⃗ ← e⃗])[R]↓Q
//	(θ)[R]↓(Q1 ∪ Q2)   = (θ)[R]↓Q1 ∨ (θ[Sch(Q1)←Sch(Q2)])[R]↓Q2
//
// Joins are handled by conjunct splitting (standard selection
// move-around): conjuncts of θ∧cond referencing only one side are
// pushed into that side; the rest are dropped (widening).
func PushCond(theta expr.Expr, q Query, rel string, db *storage.Database) (expr.Expr, error) {
	rel = strings.ToLower(rel)
	switch x := q.(type) {
	case *Scan:
		if strings.ToLower(x.Rel) == rel {
			return theta, nil
		}
		return expr.False, nil
	case *Singleton:
		// Constant relations contribute no base tuples.
		return expr.False, nil
	case *Select:
		return PushCond(expr.AndOf(theta, x.Cond), x.In, rel, db)
	case *Project:
		repl := make(map[string]expr.Expr, len(x.Exprs))
		for _, ne := range x.Exprs {
			repl[strings.ToLower(ne.Name)] = ne.E
		}
		return PushCond(expr.SubstCols(theta, repl), x.In, rel, db)
	case *Union:
		lc, err := PushCond(theta, x.L, rel, db)
		if err != nil {
			return nil, err
		}
		renamed, err := renameAcrossUnion(theta, x, db)
		if err != nil {
			return nil, err
		}
		rc, err := PushCond(renamed, x.R, rel, db)
		if err != nil {
			return nil, err
		}
		return expr.Simplify(expr.OrOf(lc, rc)), nil
	case *Difference:
		// Output tuples of Q1−Q2 are Q1 tuples; Q2 only removes, so a
		// sound over-approximation pushes θ into the left branch and
		// keeps all right-branch contributions (they cannot appear in
		// the output, hence contribute false).
		return PushCond(theta, x.L, rel, db)
	case *Join:
		return pushJoin(theta, x, rel, db)
	}
	return expr.True, nil
}

// renameAcrossUnion maps θ's attribute names from the left union
// branch's schema to the right one positionally (θ[Sch(Q1) ← Sch(Q2)]).
func renameAcrossUnion(theta expr.Expr, u *Union, db *storage.Database) (expr.Expr, error) {
	ls, err := OutputSchema(u.L, db)
	if err != nil {
		return nil, err
	}
	rs, err := OutputSchema(u.R, db)
	if err != nil {
		return nil, err
	}
	if ls.Arity() != rs.Arity() {
		return theta, nil
	}
	ren := map[string]string{}
	for i := range ls.Columns {
		from := strings.ToLower(ls.Columns[i].Name)
		to := rs.Columns[i].Name
		if !strings.EqualFold(from, to) {
			ren[from] = to
		}
	}
	return expr.RenameCols(theta, ren), nil
}

func pushJoin(theta expr.Expr, j *Join, rel string, db *storage.Database) (expr.Expr, error) {
	ls, err := OutputSchema(j.L, db)
	if err != nil {
		return nil, err
	}
	rs, err := OutputSchema(j.R, db)
	if err != nil {
		return nil, err
	}
	lcols, rcols := colSet(ls), colSet(rs)
	var lconj, rconj []expr.Expr
	full := append(expr.Conjuncts(theta), expr.Conjuncts(j.Cond)...)
	for _, c := range full {
		refs := expr.Cols(c)
		if within(refs, lcols) {
			lconj = append(lconj, c)
		} else if within(refs, rcols) {
			rconj = append(rconj, c)
		}
		// Cross-side conjuncts are dropped: widening toward true.
	}
	lp, err := PushCond(expr.AndOf(lconj...), j.L, rel, db)
	if err != nil {
		return nil, err
	}
	rp, err := PushCond(expr.AndOf(rconj...), j.R, rel, db)
	if err != nil {
		return nil, err
	}
	return expr.Simplify(expr.OrOf(lp, rp)), nil
}

func colSet(s *schema.Schema) map[string]bool {
	out := make(map[string]bool, s.Arity())
	for _, c := range s.Columns {
		out[strings.ToLower(c.Name)] = true
	}
	return out
}

func within(refs, cols map[string]bool) bool {
	for r := range refs {
		if !cols[r] {
			return false
		}
	}
	return true
}
