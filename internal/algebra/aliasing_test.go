package algebra

import (
	"testing"

	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/schema"
)

// TestEvalDoesNotMutateSharedTuples proves the scan aliasing invariant
// documented at Eval's Scan case: Scan shares the live store's tuple
// slice, so no operator may ever write into a tuple it did not
// allocate. The batch engine's shared read-only snapshots and its
// cross-scenario result cache rely on this (the naive algorithm's
// explicit Clone is the copy-on-write boundary).
func TestEvalDoesNotMutateSharedTuples(t *testing.T) {
	db := testDB()
	before := map[string][]schema.Tuple{}
	for _, name := range db.RelationNames() {
		r, _ := db.Relation(name)
		for _, tp := range r.Tuples {
			before[name] = append(before[name], tp.Clone())
		}
	}

	rSch, _ := OutputSchema(&Scan{Rel: "r"}, db)
	// Every operator once, including the projection rewriting columns
	// in place — the case a buggy executor would use to scribble over
	// shared rows.
	proj := IdentityProjection(rSch)
	proj[1].E = expr.Add(expr.Column("b"), expr.IntConst(1))
	queries := []Query{
		&Scan{Rel: "r"},
		&Select{Cond: expr.Gt(expr.Column("b"), expr.IntConst(10)), In: &Scan{Rel: "r"}},
		&Project{Exprs: proj, In: &Select{Cond: expr.Ge(expr.Column("a"), expr.IntConst(1)), In: &Scan{Rel: "r"}}},
		&Union{L: &Scan{Rel: "r"}, R: &Project{Exprs: proj, In: &Scan{Rel: "r"}}},
		&Difference{L: &Scan{Rel: "r"}, R: &Select{Cond: expr.Eq(expr.Column("a"), expr.IntConst(2)), In: &Scan{Rel: "r"}}},
		&Join{L: &Scan{Rel: "r"}, R: &Scan{Rel: "s"}, Cond: expr.Eq(expr.Column("a"), expr.Column("c"))},
	}
	for _, q := range queries {
		if _, err := Eval(q, db); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	for _, name := range db.RelationNames() {
		r, _ := db.Relation(name)
		if len(r.Tuples) != len(before[name]) {
			t.Fatalf("relation %s changed cardinality", name)
		}
		for i, tp := range r.Tuples {
			if !tp.Equal(before[name][i]) {
				t.Fatalf("relation %s tuple %d mutated by evaluation: %s, was %s", name, i, tp, before[name][i])
			}
		}
	}
}
