package algebra

import (
	"strings"
)

// Fingerprint returns a canonical rendering of q that identifies the
// compiled program for caching. Unlike String, which rebuilds child
// renderings at every level (quadratic in nesting depth, and
// reenactment queries nest one level per statement), Fingerprint
// streams the tree in a single O(nodes) walk. Conditions and
// projection expressions are rendered with their (shallow) String
// forms; structural node tags keep distinct operators distinct.
func Fingerprint(q Query) string {
	var b strings.Builder
	writeFingerprint(&b, q)
	return b.String()
}

func writeFingerprint(b *strings.Builder, q Query) {
	switch x := q.(type) {
	case *Scan:
		b.WriteString("scan(")
		b.WriteString(x.Rel)
		b.WriteByte(')')
	case *Select:
		b.WriteString("sel[")
		b.WriteString(x.Cond.String())
		b.WriteString("](")
		writeFingerprint(b, x.In)
		b.WriteByte(')')
	case *Project:
		b.WriteString("proj[")
		for i, ne := range x.Exprs {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(ne.Name)
			b.WriteByte('=')
			b.WriteString(ne.E.String())
		}
		b.WriteString("](")
		writeFingerprint(b, x.In)
		b.WriteByte(')')
	case *Union:
		b.WriteString("union(")
		writeFingerprint(b, x.L)
		b.WriteByte(',')
		writeFingerprint(b, x.R)
		b.WriteByte(')')
	case *Difference:
		b.WriteString("diff(")
		writeFingerprint(b, x.L)
		b.WriteByte(',')
		writeFingerprint(b, x.R)
		b.WriteByte(')')
	case *Join:
		b.WriteString("join[")
		b.WriteString(x.Cond.String())
		b.WriteString("](")
		writeFingerprint(b, x.L)
		b.WriteByte(',')
		writeFingerprint(b, x.R)
		b.WriteByte(')')
	case *Aggregate:
		b.WriteString("agg[")
		for i, ne := range x.GroupBy {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(ne.Name)
			b.WriteByte('=')
			b.WriteString(ne.E.String())
		}
		b.WriteByte(';')
		for i, a := range x.Aggs {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(a.Name)
			b.WriteByte('=')
			b.WriteString(a.CallString())
		}
		b.WriteString("](")
		writeFingerprint(b, x.In)
		b.WriteByte(')')
	case *Singleton:
		b.WriteString("single[")
		b.WriteString(x.Sch.String())
		b.WriteString("](")
		for i, t := range x.Tuples {
			if i > 0 {
				b.WriteByte(';')
			}
			b.WriteString(t.String())
		}
		b.WriteByte(')')
	default:
		// Unknown node: fall back to the full rendering; worst case is
		// a slower or missed cache reuse, never a wrong answer.
		b.WriteString(q.String())
	}
}
