package algebra

import (
	"testing"

	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/storage"
	"github.com/mahif/mahif/internal/types"
)

// testDB builds a two-relation database:
//
//	r(a int, b int):   (1,10) (2,20) (3,30)
//	s(c int, d string): (2,'x') (3,'y') (4,'z')
func testDB() *storage.Database {
	db := storage.NewDatabase()
	r := storage.NewRelation(schema.New("r", schema.Col("a", types.KindInt), schema.Col("b", types.KindInt)))
	r.Add(
		schema.Tuple{types.Int(1), types.Int(10)},
		schema.Tuple{types.Int(2), types.Int(20)},
		schema.Tuple{types.Int(3), types.Int(30)},
	)
	db.AddRelation(r)
	s := storage.NewRelation(schema.New("s", schema.Col("c", types.KindInt), schema.Col("d", types.KindString)))
	s.Add(
		schema.Tuple{types.Int(2), types.String("x")},
		schema.Tuple{types.Int(3), types.String("y")},
		schema.Tuple{types.Int(4), types.String("z")},
	)
	db.AddRelation(s)
	return db
}

func evalQ(t *testing.T, q Query) *storage.Relation {
	t.Helper()
	out, err := Eval(q, testDB())
	if err != nil {
		t.Fatalf("Eval(%s): %v", q, err)
	}
	return out
}

func TestScan(t *testing.T) {
	out := evalQ(t, &Scan{Rel: "r"})
	if out.Len() != 3 {
		t.Errorf("scan returned %d tuples", out.Len())
	}
	if _, err := Eval(&Scan{Rel: "missing"}, testDB()); err == nil {
		t.Error("scan of missing relation must error")
	}
}

func TestSelect(t *testing.T) {
	q := &Select{Cond: expr.Ge(expr.Column("a"), expr.IntConst(2)), In: &Scan{Rel: "r"}}
	out := evalQ(t, q)
	if out.Len() != 2 {
		t.Errorf("σ returned %d tuples: %s", out.Len(), out)
	}
}

func TestProjectConditional(t *testing.T) {
	// The reenactment shape: b ← if a >= 2 then 0 else b.
	q := &Project{
		Exprs: []NamedExpr{
			{Name: "a", E: expr.Column("a")},
			{Name: "b", E: expr.IfThenElse(expr.Ge(expr.Column("a"), expr.IntConst(2)), expr.IntConst(0), expr.Column("b"))},
		},
		In: &Scan{Rel: "r"},
	}
	out := evalQ(t, q)
	want := map[int64]int64{1: 10, 2: 0, 3: 0}
	for _, tup := range out.Tuples {
		if got := tup[1].AsInt(); got != want[tup[0].AsInt()] {
			t.Errorf("a=%d: b=%d, want %d", tup[0].AsInt(), got, want[tup[0].AsInt()])
		}
	}
}

func TestUnionAndDifference(t *testing.T) {
	r := &Scan{Rel: "r"}
	sel := &Select{Cond: expr.Eq(expr.Column("a"), expr.IntConst(2)), In: r}
	union := &Union{L: r, R: sel}
	u := evalQ(t, union)
	if u.Len() != 4 {
		t.Errorf("union has %d tuples (bag semantics)", u.Len())
	}
	d := evalQ(t, &Difference{L: union, R: sel})
	// Bag difference removes one copy of (2,20).
	if d.Len() != 3 {
		t.Errorf("difference has %d tuples", d.Len())
	}
	d2 := evalQ(t, &Difference{L: r, R: r})
	if d2.Len() != 0 {
		t.Errorf("r − r has %d tuples", d2.Len())
	}
}

func TestJoin(t *testing.T) {
	q := &Join{
		L:    &Scan{Rel: "r"},
		R:    &Scan{Rel: "s"},
		Cond: expr.Eq(expr.Column("a"), expr.Column("c")),
	}
	out := evalQ(t, q)
	if out.Len() != 2 {
		t.Fatalf("join returned %d tuples: %s", out.Len(), out)
	}
	if out.Schema.Arity() != 4 {
		t.Errorf("join schema arity = %d", out.Schema.Arity())
	}
}

func TestSingleton(t *testing.T) {
	s := schema.New("r", schema.Col("a", types.KindInt), schema.Col("b", types.KindInt))
	q := &Singleton{Sch: s, Tuples: []schema.Tuple{{types.Int(9), types.Int(90)}}}
	out := evalQ(t, q)
	if out.Len() != 1 || out.Tuples[0][0].AsInt() != 9 {
		t.Errorf("singleton = %s", out)
	}
}

func TestOutputSchema(t *testing.T) {
	db := testDB()
	q := &Project{
		Exprs: []NamedExpr{
			{Name: "total", E: expr.Add(expr.Column("a"), expr.Column("b"))},
			{Name: "frac", E: expr.Div(expr.Column("a"), expr.IntConst(2))},
			{Name: "flag", E: expr.Ge(expr.Column("a"), expr.IntConst(1))},
		},
		In: &Scan{Rel: "r"},
	}
	s, err := OutputSchema(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if s.Columns[0].Type != types.KindInt {
		t.Errorf("int+int type = %v", s.Columns[0].Type)
	}
	if s.Columns[1].Type != types.KindFloat {
		t.Errorf("division type = %v", s.Columns[1].Type)
	}
	if s.Columns[2].Type != types.KindBool {
		t.Errorf("comparison type = %v", s.Columns[2].Type)
	}
}

func TestSubstituteScans(t *testing.T) {
	inner := &Select{Cond: expr.Gt(expr.Column("a"), expr.IntConst(1)), In: &Scan{Rel: "r"}}
	q := &Union{L: &Scan{Rel: "r"}, R: &Scan{Rel: "s"}}
	got := SubstituteScans(q, map[string]Query{"r": inner})
	u := got.(*Union)
	if _, ok := u.L.(*Select); !ok {
		t.Errorf("left scan not substituted: %s", got)
	}
	if sc, ok := u.R.(*Scan); !ok || sc.Rel != "s" {
		t.Errorf("unrelated scan touched: %s", got)
	}
}

func TestBaseRelations(t *testing.T) {
	q := &Union{
		L: &Join{L: &Scan{Rel: "r"}, R: &Scan{Rel: "s"}, Cond: expr.True},
		R: &Select{Cond: expr.True, In: &Scan{Rel: "R"}},
	}
	rels := BaseRelations(q)
	if !rels["r"] || !rels["s"] || len(rels) != 2 {
		t.Errorf("BaseRelations = %v", rels)
	}
}

func TestEvalDoesNotMutateBase(t *testing.T) {
	db := testDB()
	q := &Project{
		Exprs: []NamedExpr{
			{Name: "a", E: expr.IntConst(0)},
			{Name: "b", E: expr.IntConst(0)},
		},
		In: &Scan{Rel: "r"},
	}
	if _, err := Eval(q, db); err != nil {
		t.Fatal(err)
	}
	r, _ := db.Relation("r")
	if r.Tuples[0][0].AsInt() != 1 {
		t.Error("projection mutated base relation")
	}
}
