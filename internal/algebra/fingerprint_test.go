package algebra

import (
	"strings"
	"testing"

	"github.com/mahif/mahif/internal/expr"
)

func TestFingerprintDistinguishesStructure(t *testing.T) {
	scan := &Scan{Rel: "orders"}
	selA := &Select{Cond: expr.Ge(expr.Column("price"), expr.IntConst(50)), In: scan}
	selB := &Select{Cond: expr.Ge(expr.Column("price"), expr.IntConst(60)), In: scan}
	if Fingerprint(selA) == Fingerprint(selB) {
		t.Error("different conditions share a fingerprint")
	}
	if Fingerprint(selA) != Fingerprint(&Select{Cond: expr.Ge(expr.Column("price"), expr.IntConst(50)), In: &Scan{Rel: "orders"}}) {
		t.Error("structurally equal queries got different fingerprints")
	}
	if Fingerprint(&Union{L: selA, R: selB}) == Fingerprint(&Union{L: selB, R: selA}) {
		t.Error("operand order is not reflected")
	}
	if Fingerprint(&Union{L: scan, R: scan}) == Fingerprint(&Difference{L: scan, R: scan}) {
		t.Error("union and difference share a fingerprint")
	}
}

// TestFingerprintLinear pins the linearity property: a deeply nested
// query must fingerprint in output proportional to the tree, not
// depth × subtree as String does.
func TestFingerprintLinear(t *testing.T) {
	var q Query = &Scan{Rel: "t"}
	cond := expr.Ge(expr.Column("a"), expr.IntConst(1))
	for i := 0; i < 200; i++ {
		q = &Select{Cond: cond, In: q}
	}
	fp := Fingerprint(q)
	// Each level adds a constant-size frame around the child.
	perLevel := len("sel[a >= 1]()")
	if len(fp) > 220*perLevel {
		t.Errorf("fingerprint length %d suggests super-linear rendering", len(fp))
	}
	if !strings.HasSuffix(fp, strings.Repeat(")", 200)) {
		t.Error("nesting structure missing from fingerprint")
	}
}
