package algebra

import (
	"math/rand"
	"testing"

	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/storage"
	"github.com/mahif/mahif/internal/types"
)

func TestPushCondScan(t *testing.T) {
	db := testDB()
	theta := expr.Ge(expr.Column("a"), expr.IntConst(2))
	got, err := PushCond(theta, &Scan{Rel: "r"}, "r", db)
	if err != nil {
		t.Fatal(err)
	}
	if !expr.Equal(got, theta) {
		t.Errorf("push to own scan = %s", got)
	}
	got, err = PushCond(theta, &Scan{Rel: "s"}, "r", db)
	if err != nil {
		t.Fatal(err)
	}
	if !expr.IsTriviallyFalse(got) {
		t.Errorf("push to foreign scan = %s, want false", got)
	}
}

func TestPushCondSelect(t *testing.T) {
	db := testDB()
	q := &Select{Cond: expr.Lt(expr.Column("a"), expr.IntConst(10)), In: &Scan{Rel: "r"}}
	theta := expr.Ge(expr.Column("a"), expr.IntConst(2))
	got, err := PushCond(theta, q, "r", db)
	if err != nil {
		t.Fatal(err)
	}
	want := expr.AndOf(theta, q.Cond)
	if !expr.Equal(got, want) {
		t.Errorf("push through σ = %s, want %s", got, want)
	}
}

func TestPushCondProject(t *testing.T) {
	// Paper's example shape: push a = 5 through Π_{a←a+1}.
	db := testDB()
	q := &Project{
		Exprs: []NamedExpr{
			{Name: "a", E: expr.Add(expr.Column("a"), expr.IntConst(1))},
			{Name: "b", E: expr.Column("b")},
		},
		In: &Scan{Rel: "r"},
	}
	theta := expr.Eq(expr.Column("a"), expr.IntConst(5))
	got, err := PushCond(theta, q, "r", db)
	if err != nil {
		t.Fatal(err)
	}
	want := expr.Eq(expr.Add(expr.Column("a"), expr.IntConst(1)), expr.IntConst(5))
	if !expr.Equal(got, want) {
		t.Errorf("push through Π = %s, want %s", got, want)
	}
}

func TestPushCondJoinSplitsConjuncts(t *testing.T) {
	// §6's example: I_{σ_{A=5}(R ⋈_{A=C} S)}: A=5 pushes to R and (via
	// the join condition) C=5 pushes to S.
	db := testDB()
	q := &Select{
		Cond: expr.Eq(expr.Column("a"), expr.IntConst(5)),
		In: &Join{
			L:    &Scan{Rel: "r"},
			R:    &Scan{Rel: "s"},
			Cond: expr.Eq(expr.Column("c"), expr.IntConst(5)),
		},
	}
	gotR, err := PushCond(expr.True, q, "r", db)
	if err != nil {
		t.Fatal(err)
	}
	if expr.IsTriviallyFalse(gotR) || expr.IsTriviallyTrue(gotR) {
		// a=5 must survive into r's condition.
		wantPart := expr.Eq(expr.Column("a"), expr.IntConst(5))
		found := false
		expr.Walk(gotR, func(n expr.Expr) {
			if expr.Equal(n, wantPart) {
				found = true
			}
		})
		if !found {
			t.Errorf("condition for r lost a=5: %s", gotR)
		}
	}
	gotS, err := PushCond(expr.True, q, "s", db)
	if err != nil {
		t.Fatal(err)
	}
	wantPart := expr.Eq(expr.Column("c"), expr.IntConst(5))
	found := false
	expr.Walk(gotS, func(n expr.Expr) {
		if expr.Equal(n, wantPart) {
			found = true
		}
	})
	if !found {
		t.Errorf("condition for s lost c=5: %s", gotS)
	}
}

func TestPushCondUnionRenames(t *testing.T) {
	// Union branches with different column names: θ over the left
	// schema must be renamed positionally for the right branch.
	db := storage.NewDatabase()
	l := storage.NewRelation(schema.New("l", schema.Col("a", types.KindInt)))
	l.Add(schema.Tuple{types.Int(1)})
	r := storage.NewRelation(schema.New("r", schema.Col("z", types.KindInt)))
	r.Add(schema.Tuple{types.Int(2)})
	db.AddRelation(l)
	db.AddRelation(r)

	q := &Union{L: &Scan{Rel: "l"}, R: &Scan{Rel: "r"}}
	theta := expr.Ge(expr.Column("a"), expr.IntConst(1))
	got, err := PushCond(theta, q, "r", db)
	if err != nil {
		t.Fatal(err)
	}
	want := expr.Ge(expr.Column("z"), expr.IntConst(1))
	if !expr.Equal(expr.Simplify(got), want) {
		t.Errorf("renamed push = %s, want %s", got, want)
	}
}

func TestPushCondSingleton(t *testing.T) {
	db := testDB()
	s := schema.New("r", schema.Col("a", types.KindInt), schema.Col("b", types.KindInt))
	q := &Union{L: &Scan{Rel: "r"}, R: &Singleton{Sch: s}}
	theta := expr.Ge(expr.Column("a"), expr.IntConst(2))
	got, err := PushCond(theta, q, "r", db)
	if err != nil {
		t.Fatal(err)
	}
	if !expr.Equal(expr.Simplify(got), theta) {
		t.Errorf("singleton branch must contribute false: %s", got)
	}
}

// TestPushCondSoundness is the semantic property behind data slicing:
// for random data, every base tuple contributing to a θ-satisfying
// output also satisfies the pushed condition. (The pushed condition may
// keep more tuples — it over-approximates — but never fewer.)
func TestPushCondSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 60; trial++ {
		db := storage.NewDatabase()
		r := storage.NewRelation(schema.New("r", schema.Col("a", types.KindInt), schema.Col("b", types.KindInt)))
		for i := 0; i < 30; i++ {
			r.Add(schema.Tuple{types.Int(int64(rng.Intn(10))), types.Int(int64(rng.Intn(10)))})
		}
		db.AddRelation(r)

		// Query: Π_{a←a+1,b}(σ_{b<c1}(r)) ∪ σ_{a>c2}(r)
		c1 := int64(rng.Intn(10))
		c2 := int64(rng.Intn(10))
		q := &Union{
			L: &Project{
				Exprs: []NamedExpr{
					{Name: "a", E: expr.Add(expr.Column("a"), expr.IntConst(1))},
					{Name: "b", E: expr.Column("b")},
				},
				In: &Select{Cond: expr.Lt(expr.Column("b"), expr.IntConst(c1)), In: &Scan{Rel: "r"}},
			},
			R: &Select{Cond: expr.Gt(expr.Column("a"), expr.IntConst(c2)), In: &Scan{Rel: "r"}},
		}
		theta := expr.Ge(expr.Column("a"), expr.IntConst(int64(rng.Intn(10))))
		pushed, err := PushCond(theta, q, "r", db)
		if err != nil {
			t.Fatal(err)
		}

		// For each base tuple: evaluate the query over just that tuple;
		// if any output satisfies θ, the tuple must satisfy pushed.
		for _, tup := range r.Tuples {
			single := storage.NewDatabase()
			sr := storage.NewRelation(r.Schema)
			sr.Add(tup)
			single.AddRelation(sr)
			out, err := Eval(q, single)
			if err != nil {
				t.Fatal(err)
			}
			contributes := false
			for _, o := range out.Tuples {
				ok, err := expr.Satisfied(theta, out.Schema, o)
				if err != nil {
					t.Fatal(err)
				}
				if ok {
					contributes = true
					break
				}
			}
			if contributes {
				keeps, err := expr.Satisfied(pushed, r.Schema, tup)
				if err != nil {
					t.Fatal(err)
				}
				if !keeps {
					t.Fatalf("unsound push-down: tuple %s contributes to θ=%s output but fails %s",
						tup, theta, pushed)
				}
			}
		}
	}
}
