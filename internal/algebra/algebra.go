// Package algebra defines the relational algebra fragment used by
// reenactment (Def. 3): table scans, selection σ, (generalized)
// projection Π with conditional expressions, union ∪, difference −,
// join ⋈, and constant singleton relations; plus an executor over
// package storage and the condition push-down operators (θ)↓Q and
// (θ)[R]↓Q of §6.
package algebra

import (
	"fmt"
	"strings"

	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/storage"
	"github.com/mahif/mahif/internal/types"
)

// Query is a relational algebra expression.
type Query interface {
	// String renders the query tree.
	String() string
	isQuery()
}

// Scan reads a base relation.
type Scan struct{ Rel string }

// Select filters tuples by a condition (σ_θ).
type Select struct {
	Cond expr.Expr
	In   Query
}

// NamedExpr is one output column of a projection.
type NamedExpr struct {
	Name string
	E    expr.Expr
}

// Project computes one expression per output column (Π_e1,…,en). The
// generalized projection with if-then-else expressions is how updates
// are reenacted.
type Project struct {
	Exprs []NamedExpr
	In    Query
}

// Union is bag union (∪).
type Union struct{ L, R Query }

// Difference is bag difference (−).
type Difference struct{ L, R Query }

// Join is an inner theta-join; output schema is the concatenation of
// both input schemas (column names must be distinct).
type Join struct {
	L, R Query
	Cond expr.Expr
}

// Singleton is a constant relation with an explicit schema; it
// reenacts INSERT … VALUES.
type Singleton struct {
	Sch    *schema.Schema
	Tuples []schema.Tuple
}

func (*Scan) isQuery()       {}
func (*Select) isQuery()     {}
func (*Project) isQuery()    {}
func (*Union) isQuery()      {}
func (*Difference) isQuery() {}
func (*Join) isQuery()       {}
func (*Singleton) isQuery()  {}

func (q *Scan) String() string { return q.Rel }

func (q *Select) String() string {
	return "σ[" + q.Cond.String() + "](" + q.In.String() + ")"
}

func (q *Project) String() string {
	var b strings.Builder
	b.WriteString("Π[")
	for i, ne := range q.Exprs {
		if i > 0 {
			b.WriteString(", ")
		}
		if c, ok := ne.E.(*expr.Col); ok && strings.EqualFold(c.Name, ne.Name) {
			b.WriteString(ne.Name)
			continue
		}
		fmt.Fprintf(&b, "%s→%s", ne.E, ne.Name)
	}
	b.WriteString("](")
	b.WriteString(q.In.String())
	b.WriteByte(')')
	return b.String()
}

func (q *Union) String() string      { return "(" + q.L.String() + " ∪ " + q.R.String() + ")" }
func (q *Difference) String() string { return "(" + q.L.String() + " − " + q.R.String() + ")" }

func (q *Join) String() string {
	return "(" + q.L.String() + " ⋈[" + q.Cond.String() + "] " + q.R.String() + ")"
}

func (q *Singleton) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, t := range q.Tuples {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	b.WriteByte('}')
	return b.String()
}

// IdentityProjection builds the projection list that copies every
// column of s unchanged.
func IdentityProjection(s *schema.Schema) []NamedExpr {
	out := make([]NamedExpr, s.Arity())
	for i, c := range s.Columns {
		out[i] = NamedExpr{Name: c.Name, E: expr.Column(c.Name)}
	}
	return out
}

// OutputSchema computes the schema of a query against db. The relation
// name of derived schemas is inherited from the left/input branch.
func OutputSchema(q Query, db *storage.Database) (*schema.Schema, error) {
	switch x := q.(type) {
	case *Scan:
		r, err := db.Relation(x.Rel)
		if err != nil {
			return nil, err
		}
		return r.Schema, nil
	case *Select:
		return OutputSchema(x.In, db)
	case *Project:
		in, err := OutputSchema(x.In, db)
		if err != nil {
			return nil, err
		}
		cols := make([]schema.Column, len(x.Exprs))
		for i, ne := range x.Exprs {
			cols[i] = schema.Col(ne.Name, ExprKind(ne.E, in))
		}
		return schema.New(in.Relation, cols...), nil
	case *Union:
		return OutputSchema(x.L, db)
	case *Difference:
		return OutputSchema(x.L, db)
	case *Join:
		ls, err := OutputSchema(x.L, db)
		if err != nil {
			return nil, err
		}
		rs, err := OutputSchema(x.R, db)
		if err != nil {
			return nil, err
		}
		cols := make([]schema.Column, 0, ls.Arity()+rs.Arity())
		cols = append(cols, ls.Columns...)
		cols = append(cols, rs.Columns...)
		return schema.New(ls.Relation, cols...), nil
	case *Singleton:
		return x.Sch, nil
	case *Aggregate:
		in, err := OutputSchema(x.In, db)
		if err != nil {
			return nil, err
		}
		cols := make([]schema.Column, 0, len(x.GroupBy)+len(x.Aggs))
		for _, ne := range x.GroupBy {
			cols = append(cols, schema.Col(ne.Name, ExprKind(ne.E, in)))
		}
		for _, a := range x.Aggs {
			cols = append(cols, schema.Col(a.Name, a.ResultKind(in)))
		}
		return schema.New(in.Relation, cols...), nil
	}
	return nil, fmt.Errorf("algebra: unknown query node %T", q)
}

// ExprKind gives a best-effort static type for a projection expression
// over the input schema (shared with the compiled executor).
func ExprKind(e expr.Expr, in *schema.Schema) types.Kind {
	switch x := e.(type) {
	case *expr.Const:
		return x.V.Kind()
	case *expr.Col:
		if i := in.ColIndex(x.Name); i >= 0 {
			return in.Columns[i].Type
		}
	case *expr.Arith:
		if x.Op == types.OpDiv {
			return types.KindFloat
		}
		lk, rk := ExprKind(x.L, in), ExprKind(x.R, in)
		if lk == types.KindFloat || rk == types.KindFloat {
			return types.KindFloat
		}
		return types.KindInt
	case *expr.Cmp, *expr.And, *expr.Or, *expr.Not, *expr.IsNull:
		return types.KindBool
	case *expr.If:
		return ExprKind(x.Then, in)
	}
	return types.KindNull
}

// Eval executes q against db and materializes the result.
func Eval(q Query, db *storage.Database) (*storage.Relation, error) {
	switch x := q.(type) {
	case *Scan:
		r, err := db.Relation(x.Rel)
		if err != nil {
			return nil, err
		}
		// INVARIANT (shared-scan aliasing): the returned relation shares
		// the live store's tuple slice and the tuples themselves. Every
		// operator — here and in the compiled executor (internal/exec) —
		// treats tuples as immutable: selections and set operations pass
		// tuples through by reference, projections build fresh rows. The
		// batch engine's shared read-only snapshots and its cross-
		// scenario result cache rely on this invariant; mutation must go
		// through Relation.Clone (the copy-on-write boundary). See
		// TestEvalDoesNotMutateSharedTuples.
		out := &storage.Relation{Schema: r.Schema, Tuples: r.Tuples}
		return out, nil
	case *Select:
		in, err := Eval(x.In, db)
		if err != nil {
			return nil, err
		}
		out := storage.NewRelation(in.Schema)
		for _, t := range in.Tuples {
			ok, err := expr.Satisfied(x.Cond, in.Schema, t)
			if err != nil {
				return nil, fmt.Errorf("algebra: σ[%s]: %w", x.Cond, err)
			}
			if ok {
				out.Tuples = append(out.Tuples, t)
			}
		}
		return out, nil
	case *Project:
		in, err := Eval(x.In, db)
		if err != nil {
			return nil, err
		}
		outSchema, err := OutputSchema(x, db)
		if err != nil {
			return nil, err
		}
		out := storage.NewRelation(outSchema)
		out.Tuples = make([]schema.Tuple, 0, len(in.Tuples))
		for _, t := range in.Tuples {
			env := expr.TupleEnv(in.Schema, t)
			row := make(schema.Tuple, len(x.Exprs))
			for i, ne := range x.Exprs {
				v, err := expr.Eval(ne.E, env)
				if err != nil {
					return nil, fmt.Errorf("algebra: Π[%s]: %w", ne.E, err)
				}
				row[i] = v
			}
			out.Tuples = append(out.Tuples, row)
		}
		return out, nil
	case *Union:
		l, err := Eval(x.L, db)
		if err != nil {
			return nil, err
		}
		r, err := Eval(x.R, db)
		if err != nil {
			return nil, err
		}
		if l.Schema.Arity() != r.Schema.Arity() {
			return nil, fmt.Errorf("algebra: union arity mismatch %d vs %d", l.Schema.Arity(), r.Schema.Arity())
		}
		out := storage.NewRelation(l.Schema)
		out.Tuples = make([]schema.Tuple, 0, len(l.Tuples)+len(r.Tuples))
		out.Tuples = append(out.Tuples, l.Tuples...)
		out.Tuples = append(out.Tuples, r.Tuples...)
		return out, nil
	case *Difference:
		l, err := Eval(x.L, db)
		if err != nil {
			return nil, err
		}
		r, err := Eval(x.R, db)
		if err != nil {
			return nil, err
		}
		remove := r.Index()
		out := storage.NewRelation(l.Schema)
		for _, t := range l.Tuples {
			if remove.Remove(t) {
				continue
			}
			out.Tuples = append(out.Tuples, t)
		}
		return out, nil
	case *Join:
		l, err := Eval(x.L, db)
		if err != nil {
			return nil, err
		}
		r, err := Eval(x.R, db)
		if err != nil {
			return nil, err
		}
		outSchema, err := OutputSchema(x, db)
		if err != nil {
			return nil, err
		}
		out := storage.NewRelation(outSchema)
		for _, lt := range l.Tuples {
			for _, rt := range r.Tuples {
				joined := make(schema.Tuple, 0, len(lt)+len(rt))
				joined = append(joined, lt...)
				joined = append(joined, rt...)
				ok, err := expr.Satisfied(x.Cond, outSchema, joined)
				if err != nil {
					return nil, fmt.Errorf("algebra: ⋈[%s]: %w", x.Cond, err)
				}
				if ok {
					out.Tuples = append(out.Tuples, joined)
				}
			}
		}
		return out, nil
	case *Singleton:
		out := storage.NewRelation(x.Sch)
		out.Tuples = append(out.Tuples, x.Tuples...)
		return out, nil
	case *Aggregate:
		in, err := Eval(x.In, db)
		if err != nil {
			return nil, err
		}
		outSchema, err := OutputSchema(x, db)
		if err != nil {
			return nil, err
		}
		return evalAggregate(x, in, outSchema)
	}
	return nil, fmt.Errorf("algebra: unknown query node %T", q)
}

// SubstituteScans replaces every Scan node with repl[rel] when present.
// Reenactment uses it to wire the query of an INSERT…SELECT against the
// reenacted state of its input relations.
func SubstituteScans(q Query, repl map[string]Query) Query {
	switch x := q.(type) {
	case *Scan:
		if r, ok := repl[strings.ToLower(x.Rel)]; ok {
			return r
		}
		return q
	case *Select:
		return &Select{Cond: x.Cond, In: SubstituteScans(x.In, repl)}
	case *Project:
		return &Project{Exprs: x.Exprs, In: SubstituteScans(x.In, repl)}
	case *Union:
		return &Union{L: SubstituteScans(x.L, repl), R: SubstituteScans(x.R, repl)}
	case *Difference:
		return &Difference{L: SubstituteScans(x.L, repl), R: SubstituteScans(x.R, repl)}
	case *Join:
		return &Join{L: SubstituteScans(x.L, repl), R: SubstituteScans(x.R, repl), Cond: x.Cond}
	case *Aggregate:
		return &Aggregate{GroupBy: x.GroupBy, Aggs: x.Aggs, In: SubstituteScans(x.In, repl)}
	case *Singleton:
		return q
	}
	return q
}

// BaseRelations returns the set of base relation names scanned by q.
func BaseRelations(q Query) map[string]bool {
	out := map[string]bool{}
	var walk func(Query)
	walk = func(q Query) {
		switch x := q.(type) {
		case *Scan:
			out[strings.ToLower(x.Rel)] = true
		case *Select:
			walk(x.In)
		case *Project:
			walk(x.In)
		case *Union:
			walk(x.L)
			walk(x.R)
		case *Difference:
			walk(x.L)
			walk(x.R)
		case *Join:
			walk(x.L)
			walk(x.R)
		case *Aggregate:
			walk(x.In)
		}
	}
	walk(q)
	return out
}
