package algebra

import (
	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/types"
)

// Params returns the set of template parameter names ($name slots, see
// expr.Param) appearing anywhere in the query's conditions and
// projection expressions.
func Params(q Query) map[string]bool {
	out := map[string]bool{}
	collectParams(q, out)
	return out
}

func collectParams(q Query, out map[string]bool) {
	addExpr := func(e expr.Expr) {
		for name := range expr.Params(e) {
			out[name] = true
		}
	}
	switch x := q.(type) {
	case *Select:
		addExpr(x.Cond)
		collectParams(x.In, out)
	case *Project:
		for _, ne := range x.Exprs {
			addExpr(ne.E)
		}
		collectParams(x.In, out)
	case *Union:
		collectParams(x.L, out)
		collectParams(x.R, out)
	case *Difference:
		collectParams(x.L, out)
		collectParams(x.R, out)
	case *Join:
		addExpr(x.Cond)
		collectParams(x.L, out)
		collectParams(x.R, out)
	case *Aggregate:
		for _, ne := range x.GroupBy {
			addExpr(ne.E)
		}
		for _, a := range x.Aggs {
			if a.Arg != nil {
				addExpr(a.Arg)
			}
		}
		collectParams(x.In, out)
	}
}

// SubstParams returns q with every template parameter replaced by its
// bound constant (see expr.SubstParams). Subtrees without parameters
// are shared, not copied, so substituting into a large reenactment
// query skeleton allocates only along param-bearing paths.
func SubstParams(q Query, b map[string]types.Value) Query {
	if len(b) == 0 {
		return q
	}
	switch x := q.(type) {
	case *Select:
		cond := expr.SubstParams(x.Cond, b)
		in := SubstParams(x.In, b)
		if cond == x.Cond && in == x.In {
			return q
		}
		return &Select{Cond: cond, In: in}
	case *Project:
		in := SubstParams(x.In, b)
		var exprs []NamedExpr
		for i, ne := range x.Exprs {
			e := expr.SubstParams(ne.E, b)
			if e != ne.E && exprs == nil {
				exprs = append([]NamedExpr(nil), x.Exprs...)
			}
			if exprs != nil {
				exprs[i] = NamedExpr{Name: ne.Name, E: e}
			}
		}
		if exprs == nil {
			if in == x.In {
				return q
			}
			exprs = x.Exprs
		}
		return &Project{Exprs: exprs, In: in}
	case *Union:
		l, r := SubstParams(x.L, b), SubstParams(x.R, b)
		if l == x.L && r == x.R {
			return q
		}
		return &Union{L: l, R: r}
	case *Difference:
		l, r := SubstParams(x.L, b), SubstParams(x.R, b)
		if l == x.L && r == x.R {
			return q
		}
		return &Difference{L: l, R: r}
	case *Join:
		cond := expr.SubstParams(x.Cond, b)
		l, r := SubstParams(x.L, b), SubstParams(x.R, b)
		if cond == x.Cond && l == x.L && r == x.R {
			return q
		}
		return &Join{L: l, R: r, Cond: cond}
	case *Aggregate:
		in := SubstParams(x.In, b)
		var groups []NamedExpr
		for i, ne := range x.GroupBy {
			e := expr.SubstParams(ne.E, b)
			if e != ne.E && groups == nil {
				groups = append([]NamedExpr(nil), x.GroupBy...)
			}
			if groups != nil {
				groups[i] = NamedExpr{Name: ne.Name, E: e}
			}
		}
		var aggs []AggExpr
		for i, a := range x.Aggs {
			if a.Arg == nil {
				continue
			}
			e := expr.SubstParams(a.Arg, b)
			if e != a.Arg && aggs == nil {
				aggs = append([]AggExpr(nil), x.Aggs...)
			}
			if aggs != nil {
				aggs[i] = AggExpr{Name: a.Name, Fn: a.Fn, Arg: e}
			}
		}
		if groups == nil && aggs == nil && in == x.In {
			return q
		}
		if groups == nil {
			groups = x.GroupBy
		}
		if aggs == nil {
			aggs = x.Aggs
		}
		return &Aggregate{GroupBy: groups, Aggs: aggs, In: in}
	}
	return q
}
