package algebra

import (
	"fmt"
	"strings"

	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/storage"
	"github.com/mahif/mahif/internal/types"
)

// AggFunc enumerates the aggregate functions of γ.
type AggFunc uint8

const (
	AggCount AggFunc = iota // COUNT(*) when Arg is nil, else COUNT(e) over non-NULL e
	AggSum
	AggAvg
	AggMin
	AggMax
)

func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	}
	return fmt.Sprintf("AggFunc(%d)", uint8(f))
}

// AggExpr is one aggregate output column. A nil Arg is COUNT(*).
type AggExpr struct {
	Name string
	Fn   AggFunc
	Arg  expr.Expr
}

// Aggregate is grouped aggregation (γ_{G; F}). Output columns are the
// grouping expressions followed by the aggregates, and groups are
// emitted in first-appearance order of the input — deterministic
// because every executor produces interpreter-exact input order.
// With no GroupBy the node is a global aggregate: exactly one output
// row, even over empty input (COUNT = 0, other aggregates NULL).
type Aggregate struct {
	GroupBy []NamedExpr
	Aggs    []AggExpr
	In      Query
}

func (*Aggregate) isQuery() {}

func (q *Aggregate) String() string {
	var b strings.Builder
	b.WriteString("γ[")
	for i, ne := range q.GroupBy {
		if i > 0 {
			b.WriteString(", ")
		}
		if c, ok := ne.E.(*expr.Col); ok && strings.EqualFold(c.Name, ne.Name) {
			b.WriteString(ne.Name)
			continue
		}
		fmt.Fprintf(&b, "%s→%s", ne.E, ne.Name)
	}
	if len(q.GroupBy) > 0 {
		b.WriteString("; ")
	}
	for i, a := range q.Aggs {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s→%s", a.CallString(), a.Name)
	}
	b.WriteString("](")
	b.WriteString(q.In.String())
	b.WriteByte(')')
	return b.String()
}

// CallString renders the aggregate call itself, e.g. "SUM(price)".
func (a AggExpr) CallString() string {
	if a.Arg == nil {
		return a.Fn.String() + "(*)"
	}
	return a.Fn.String() + "(" + a.Arg.String() + ")"
}

// ResultKind gives the static output type of the aggregate over the
// input schema. COUNT is always integer and AVG always float; SUM,
// MIN, and MAX inherit the argument's kind. Like ExprKind this is a
// best-effort hint — the typed executor lanes fall back per batch when
// runtime values disagree.
func (a AggExpr) ResultKind(in *schema.Schema) types.Kind {
	switch a.Fn {
	case AggCount:
		return types.KindInt
	case AggAvg:
		return types.KindFloat
	}
	if a.Arg == nil {
		return types.KindNull
	}
	return ExprKind(a.Arg, in)
}

// AggAcc accumulates one aggregate over its argument values in input
// order. It is the single definition of aggregate semantics, shared by
// the interpreter and both compiled executors so the three cannot
// drift:
//
//   - COUNT(*) counts rows (AddRow); COUNT(e) counts non-NULL e.
//   - SUM and AVG skip NULLs, reject non-numeric values, and fold with
//     types.Arith(OpAdd, …) in input order — integer sums stay integer
//     (with wraparound), any float promotes, and a non-finite running
//     float sum is an error at the step that produces it.
//   - AVG divides the final sum by the non-NULL count via
//     types.Arith(OpDiv, …), so the result is always float.
//   - MIN/MAX use Value.Compare, keep the first-seen value on ties, and
//     error on incomparable kinds.
//   - Over zero accumulated values COUNT yields 0 and the rest NULL.
type AggAcc struct {
	fn    AggFunc
	count int64
	acc   types.Value // running SUM, or current MIN/MAX extremum
}

// NewAggAcc returns an empty accumulator for fn.
func NewAggAcc(fn AggFunc) AggAcc { return AggAcc{fn: fn} }

// AddRow accumulates one input row for COUNT(*); it is a no-op for
// every other function (their Add is driven by the argument value).
func (a *AggAcc) AddRow() {
	if a.fn == AggCount {
		a.count++
	}
}

// Add accumulates one argument value. Not used for COUNT(*).
func (a *AggAcc) Add(v types.Value) error {
	if v.IsNull() {
		return nil
	}
	switch a.fn {
	case AggCount:
		a.count++
		return nil
	case AggSum, AggAvg:
		if !v.IsNumeric() {
			return fmt.Errorf("algebra: %s over %s value", a.fn, v.Kind())
		}
		a.count++
		if a.count == 1 {
			a.acc = v
			return nil
		}
		s, err := types.Arith(types.OpAdd, a.acc, v)
		if err != nil {
			return fmt.Errorf("algebra: %s: %w", a.fn, err)
		}
		a.acc = s
		return nil
	case AggMin, AggMax:
		if a.count == 0 {
			a.count = 1
			a.acc = v
			return nil
		}
		c, err := v.Compare(a.acc)
		if err != nil {
			return fmt.Errorf("algebra: %s: %w", a.fn, err)
		}
		if (a.fn == AggMin && c < 0) || (a.fn == AggMax && c > 0) {
			a.acc = v
		}
		return nil
	}
	return fmt.Errorf("algebra: unknown aggregate %s", a.fn)
}

// AddInt accumulates an int64 from a typed lane; semantically identical
// to Add(types.Int(i)) but without constructing the boxed value on the
// common monomorphic paths.
func (a *AggAcc) AddInt(i int64) error {
	switch a.fn {
	case AggCount:
		a.count++
		return nil
	case AggSum, AggAvg:
		if a.count == 0 {
			a.count = 1
			a.acc = types.Int(i)
			return nil
		}
		if a.acc.Kind() == types.KindInt {
			a.count++
			a.acc = types.Int(a.acc.AsInt() + i) // wraparound, same as Arith int+int
			return nil
		}
		// Promoted to float: fall through to the boxed path (which
		// counts this value itself).
	case AggMin, AggMax:
		if a.count == 0 {
			a.count = 1
			a.acc = types.Int(i)
			return nil
		}
		if a.acc.Kind() == types.KindInt {
			cur := a.acc.AsInt()
			if (a.fn == AggMin && i < cur) || (a.fn == AggMax && i > cur) {
				a.acc = types.Int(i)
			}
			return nil
		}
	}
	return a.Add(types.Int(i))
}

// AddFloat accumulates a float64 from a typed lane; semantically
// identical to Add(types.Float(f)).
func (a *AggAcc) AddFloat(f float64) error { return a.Add(types.Float(f)) }

// Result finalizes the accumulator.
func (a *AggAcc) Result() (types.Value, error) {
	switch a.fn {
	case AggCount:
		return types.Int(a.count), nil
	case AggSum, AggMin, AggMax:
		if a.count == 0 {
			return types.Null(), nil
		}
		return a.acc, nil
	case AggAvg:
		if a.count == 0 {
			return types.Null(), nil
		}
		v, err := types.Arith(types.OpDiv, a.acc, types.Int(a.count))
		if err != nil {
			return types.Null(), fmt.Errorf("algebra: AVG: %w", err)
		}
		return v, nil
	}
	return types.Null(), fmt.Errorf("algebra: unknown aggregate %s", a.fn)
}

// GroupIndex assigns dense group ordinals to key tuples in
// first-appearance order. Identity is Tuple.Hash + Tuple.Equal (NULL
// keys form one group, and cross-kind numeric keys like 1 and 1.0
// collide) — every executor must group through this index so the
// equivalence relation cannot diverge.
type GroupIndex struct {
	buckets map[uint64][]int
	keys    []schema.Tuple
}

// NewGroupIndex returns an empty index.
func NewGroupIndex() *GroupIndex {
	return &GroupIndex{buckets: make(map[uint64][]int)}
}

// Lookup finds key's group ordinal, or -1. The hash must be key.Hash()
// (callers on the vectorized path compute it column-wise).
func (g *GroupIndex) Lookup(h uint64, key schema.Tuple) int {
	for _, i := range g.buckets[h] {
		if g.keys[i].Equal(key) {
			return i
		}
	}
	return -1
}

// Add inserts key (which must not already be present) and returns its
// new ordinal. The key tuple is retained; callers pass an owned tuple.
func (g *GroupIndex) Add(h uint64, key schema.Tuple) int {
	i := len(g.keys)
	g.keys = append(g.keys, key)
	g.buckets[h] = append(g.buckets[h], i)
	return i
}

// Len returns the number of distinct groups seen.
func (g *GroupIndex) Len() int { return len(g.keys) }

// Key returns the representative key tuple of group i (the first-seen
// values, which matters when cross-kind numeric keys collide).
func (g *GroupIndex) Key(i int) schema.Tuple { return g.keys[i] }

// evalAggregate executes the γ node over a materialized input.
func evalAggregate(x *Aggregate, in *storage.Relation, outSchema *schema.Schema) (*storage.Relation, error) {
	groups := NewGroupIndex()
	var accs [][]AggAcc
	newAccs := func() []AggAcc {
		row := make([]AggAcc, len(x.Aggs))
		for j, a := range x.Aggs {
			row[j] = NewAggAcc(a.Fn)
		}
		return row
	}
	global := len(x.GroupBy) == 0
	if global {
		accs = append(accs, newAccs())
	}
	for _, t := range in.Tuples {
		env := expr.TupleEnv(in.Schema, t)
		gi := 0
		if !global {
			key := make(schema.Tuple, len(x.GroupBy))
			for i, ne := range x.GroupBy {
				v, err := expr.Eval(ne.E, env)
				if err != nil {
					return nil, fmt.Errorf("algebra: γ[%s]: %w", ne.E, err)
				}
				key[i] = v
			}
			h := key.Hash()
			gi = groups.Lookup(h, key)
			if gi < 0 {
				gi = groups.Add(h, key)
				accs = append(accs, newAccs())
			}
		}
		for j, a := range x.Aggs {
			if a.Arg == nil {
				accs[gi][j].AddRow()
				continue
			}
			v, err := expr.Eval(a.Arg, env)
			if err != nil {
				return nil, fmt.Errorf("algebra: γ[%s]: %w", a.CallString(), err)
			}
			if err := accs[gi][j].Add(v); err != nil {
				return nil, err
			}
		}
	}
	out := storage.NewRelation(outSchema)
	out.Tuples = make([]schema.Tuple, 0, len(accs))
	for gi := range accs {
		row := make(schema.Tuple, 0, len(x.GroupBy)+len(x.Aggs))
		if !global {
			row = append(row, groups.Key(gi)...)
		}
		for j := range x.Aggs {
			v, err := accs[gi][j].Result()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
		}
		out.Tuples = append(out.Tuples, row)
	}
	return out, nil
}
