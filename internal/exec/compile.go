package exec

import (
	"fmt"

	"github.com/mahif/mahif/internal/algebra"
	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/storage"
)

// compileNode lowers one algebra node and returns it with its output
// schema. Schemas are threaded bottom-up so compilation is one pass
// over the tree (no per-node recursive OutputSchema recomputation).
func compileNode(q algebra.Query, db *storage.Database) (node, *schema.Schema, error) {
	switch x := q.(type) {
	case *algebra.Scan:
		r, err := db.Relation(x.Rel)
		if err != nil {
			return nil, nil, err
		}
		return &scanNode{rel: x.Rel, arity: r.Schema.Arity()}, r.Schema, nil

	case *algebra.Select:
		in, s, err := compileNode(x.In, db)
		if err != nil {
			return nil, nil, err
		}
		pred, err := compilePred(x.Cond, s)
		if err != nil {
			return nil, nil, err
		}
		return &filterNode{in: in, pred: pred}, s, nil

	case *algebra.Project:
		in, s, err := compileNode(x.In, db)
		if err != nil {
			return nil, nil, err
		}
		fns := make([]scalarFn, len(x.Exprs))
		src := make([]int, len(x.Exprs))
		passthrough := len(x.Exprs) == s.Arity()
		cols := make([]schema.Column, len(x.Exprs))
		for i, ne := range x.Exprs {
			cols[i] = schema.Col(ne.Name, algebra.ExprKind(ne.E, s))
			src[i] = -1
			if col, ok := ne.E.(*expr.Col); ok {
				if j := s.ColIndex(col.Name); j >= 0 {
					// Identity column: a straight copy, no closure.
					src[i] = j
					passthrough = passthrough && j == i
					continue
				}
			}
			passthrough = false
			fn, err := compileScalar(ne.E, s)
			if err != nil {
				return nil, nil, err
			}
			fns[i] = fn
		}
		out := schema.New(s.Relation, cols...)
		if passthrough {
			// Π copies every column in place: a pure rename, so the
			// node disappears from the pipeline entirely.
			return in, out, nil
		}
		return &projectNode{in: in, fns: fns, src: src}, out, nil

	case *algebra.Union:
		l, ls, err := compileNode(x.L, db)
		if err != nil {
			return nil, nil, err
		}
		r, rs, err := compileNode(x.R, db)
		if err != nil {
			return nil, nil, err
		}
		if ls.Arity() != rs.Arity() {
			return nil, nil, fmt.Errorf("exec: union arity mismatch %d vs %d", ls.Arity(), rs.Arity())
		}
		return &unionNode{l: l, r: r}, ls, nil

	case *algebra.Difference:
		l, ls, err := compileNode(x.L, db)
		if err != nil {
			return nil, nil, err
		}
		r, _, err := compileNode(x.R, db)
		if err != nil {
			return nil, nil, err
		}
		return &diffNode{l: l, r: r}, ls, nil

	case *algebra.Join:
		return compileJoin(x, db)

	case *algebra.Singleton:
		return &singletonNode{tuples: x.Tuples}, x.Sch, nil

	case *algebra.Aggregate:
		return compileAggregate(x, db)
	}
	return nil, nil, fmt.Errorf("exec: unknown query node %T", q)
}

// compileJoin picks a hash join when the condition contains at least
// one cross-side column equality, a nested loop otherwise.
func compileJoin(x *algebra.Join, db *storage.Database) (node, *schema.Schema, error) {
	l, ls, err := compileNode(x.L, db)
	if err != nil {
		return nil, nil, err
	}
	r, rs, err := compileNode(x.R, db)
	if err != nil {
		return nil, nil, err
	}
	cols := make([]schema.Column, 0, ls.Arity()+rs.Arity())
	cols = append(cols, ls.Columns...)
	cols = append(cols, rs.Columns...)
	joined := schema.New(ls.Relation, cols...)

	lKeys, rKeys, residual := splitEquiJoin(x.Cond, ls, rs)
	if len(lKeys) == 0 || residual != nil {
		// Not a pure equi-join: run the full condition per pair. With a
		// residual conjunct a hash join would skip NULL-key pairs that
		// the interpreter still evaluates (and whose residual may
		// error), so only the all-keys shape takes the hash path.
		pred, err := compilePred(x.Cond, joined)
		if err != nil {
			return nil, nil, err
		}
		return &nlJoinNode{l: l, r: r, pred: pred, lArity: ls.Arity(), rArity: rs.Arity()}, joined, nil
	}
	return &hashJoinNode{
		l: l, r: r,
		lKeys: lKeys, rKeys: rKeys,
		lArity: ls.Arity(), rArity: rs.Arity(),
		buildLeft: buildOnLeft(x, db),
	}, joined, nil
}

// buildOnLeft decides the hash-join build side. The left build keeps
// output order interpreter-exact by buffering matches per left row, so
// unlike the streaming right build its transient memory is O(|L| +
// matches) rather than O(|R|): on a heavily skewed key that buffer is
// the pre-filter join output. The trade is therefore only taken when
// the left input is decisively smaller (8×) and small in absolute
// terms; marginal cases keep the streaming right-build default.
// Estimates come from snapshot row counts at compile time; unknown
// estimates keep the default too.
func buildOnLeft(x *algebra.Join, db *storage.Database) bool {
	const margin, maxBuild = 8, 1 << 20
	le, lok := estimateRows(x.L, db)
	re, rok := estimateRows(x.R, db)
	return lok && rok && le <= maxBuild && le*margin <= re
}

// estimateRows is a compile-time upper-bound cardinality estimate from
// the snapshot's relation sizes: selections and projections preserve
// the bound, unions add, a difference is bounded by its left input,
// joins multiply. ok is false when a subtree's size cannot be derived
// from the snapshot.
func estimateRows(q algebra.Query, db *storage.Database) (int, bool) {
	switch x := q.(type) {
	case *algebra.Scan:
		r, err := db.Relation(x.Rel)
		if err != nil {
			return 0, false
		}
		return r.Len(), true
	case *algebra.Select:
		return estimateRows(x.In, db)
	case *algebra.Project:
		return estimateRows(x.In, db)
	case *algebra.Union:
		a, aok := estimateRows(x.L, db)
		b, bok := estimateRows(x.R, db)
		return a + b, aok && bok
	case *algebra.Difference:
		return estimateRows(x.L, db)
	case *algebra.Join:
		a, aok := estimateRows(x.L, db)
		b, bok := estimateRows(x.R, db)
		if !aok || !bok {
			return 0, false
		}
		if a > 0 && b > (1<<31)/a {
			return 1 << 31, true // saturate instead of overflowing
		}
		return a * b, true
	case *algebra.Singleton:
		return len(x.Tuples), true
	}
	return 0, false
}

// splitEquiJoin scans the conjuncts of a join condition for cross-side
// column equalities (L.a = R.b in either spelling). It returns the key
// ordinals per side and the conjunction of the remaining conjuncts
// (nil when every conjunct became a key). Columns whose names resolve
// on both sides are left in the residual — the algebra requires
// distinct names across join inputs, but ambiguity must not silently
// pick a side.
func splitEquiJoin(cond expr.Expr, ls, rs *schema.Schema) (lKeys, rKeys []int, residual expr.Expr) {
	var rest []expr.Expr
	for _, c := range conjuncts(cond) {
		cmp, ok := c.(*expr.Cmp)
		if !ok || cmp.Op != expr.CmpEq {
			rest = append(rest, c)
			continue
		}
		a, aok := cmp.L.(*expr.Col)
		b, bok := cmp.R.(*expr.Col)
		if !aok || !bok {
			rest = append(rest, c)
			continue
		}
		aL, aR := ls.ColIndex(a.Name), rs.ColIndex(a.Name)
		bL, bR := ls.ColIndex(b.Name), rs.ColIndex(b.Name)
		switch {
		case aL >= 0 && aR < 0 && bR >= 0 && bL < 0:
			lKeys = append(lKeys, aL)
			rKeys = append(rKeys, bR)
		case aR >= 0 && aL < 0 && bL >= 0 && bR < 0:
			lKeys = append(lKeys, bL)
			rKeys = append(rKeys, aR)
		default:
			rest = append(rest, c)
		}
	}
	if len(rest) == 0 {
		return lKeys, rKeys, nil
	}
	return lKeys, rKeys, expr.AndOf(rest...)
}

// conjuncts flattens a conjunction tree into its leaves.
func conjuncts(e expr.Expr) []expr.Expr {
	if and, ok := e.(*expr.And); ok {
		return append(conjuncts(and.L), conjuncts(and.R)...)
	}
	return []expr.Expr{e}
}
