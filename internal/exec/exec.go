// Package exec is the compiled, pipelined query executor for
// reenactment programs — the fast path that replaces the tree-walking
// interpreter (algebra.Eval) on every what-if answer.
//
// # Architecture
//
// A one-time compilation pass (Compile) lowers an algebra.Query into an
// immutable operator Program:
//
//   - Expressions compile into closures over column ordinals
//     (internal/exec/expr.go): every attribute reference is resolved
//     against the input schema once, at compile time, so per-tuple
//     evaluation does no case-insensitive name lookups and allocates no
//     expr.Env.
//
//   - Operators form a push-based pipeline: each node streams tuples
//     into its consumer's emit callback. Consecutive σ/Π nodes — the
//     shape reenactment produces, one generalized projection per UPDATE
//     plus a selection per DELETE — therefore fuse into a single
//     per-tuple function chain: a 100-statement history makes ONE pass
//     over the base relation instead of materializing 100 intermediate
//     relations. Projections evaluate into a per-run scratch row and
//     only tuples that survive the whole chain are copied out at a
//     materialization point (the Run sink, a hash-join build side, or a
//     difference build side).
//
//   - Pure equi-joins (every conjunct of the condition is a cross-side
//     column equality L.a = R.b) run as hash joins over typed FNV
//     value hashes; every other condition falls back to a nested-loop
//     join with the full compiled predicate, which is interpreter-
//     exact even for conditions that error.
//
//   - Bag difference uses the hash-based multiset index
//     (storage.TupleIndex) instead of fmt-built string keys.
//
// # Vectorized execution
//
// CompileVec lowers the same algebra into a vectorized program
// (internal/exec/batch.go, vector.go): operators exchange 1024-row
// column-major batches with selection vectors instead of single
// tuples. Filters narrow the selection in typed tight loops,
// projections alias identity columns through by reference and evaluate
// only computed columns (the reenacted-UPDATE shape IF θ THEN e ELSE
// col bulk-copies the column and overwrites satisfied rows), and scans
// over large relations partition across workers whose buffered output
// merges back in partition order — preserving the interpreter's exact
// output order, not just bag semantics. Per-row lazy evaluation is
// kept structurally: If branches and And/Or right operands run only
// over the sub-selection the tuple-at-a-time semantics would reach, so
// error behavior matches the oracle. Cancellation is observed between
// batches. This is the engine's default executor.
//
// A Program is immutable after Compile and safe for concurrent Run
// calls (scratch state is allocated per run and recycled through
// sync.Pools), which is what lets the batch engine compile a
// reenactment program once per fingerprint and run it against many
// snapshots from concurrent workers.
//
// The interpreter remains the reference oracle: core.Options.Executor
// selects between the two, the differential fuzz tests require
// identical deltas, and any query Compile cannot handle (symbolic
// variables, unknown nodes) makes the engine fall back to the
// interpreter, so compilation can never change observable behavior.
package exec

import (
	"context"
	"fmt"

	"github.com/mahif/mahif/internal/algebra"
	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/storage"
)

// emitFn receives one tuple of a node's output stream. owned reports
// transferable ownership: if false the tuple is a scratch buffer the
// producer will overwrite, and a consumer that retains it past the call
// must Clone it first. If true the tuple is immutable and may be
// retained (it is either a base-relation tuple — never mutated, per the
// scan aliasing invariant documented at algebra.Eval — or a fresh row).
type emitFn func(t schema.Tuple, owned bool) error

// node is one compiled operator. run streams the node's full output
// into emit; implementations must be reentrant (no state mutated across
// concurrent runs).
type node interface {
	run(ctx *runCtx, emit emitFn) error
}

// runCtx carries per-run state through the pipeline.
type runCtx struct {
	db  *storage.Database
	ctx context.Context
	// n counts tuples emitted by source nodes since the last
	// cancellation check (see tick).
	n int
}

// cancelCheckEvery bounds how many source tuples flow between two
// cancellation checks. Every pipeline is driven by scan/singleton
// loops, so a check there covers the fused σ/Π chains, join builds and
// probes, and difference builds downstream: a cancelled run stops
// within a few thousand tuples of work, not at the next operator
// boundary.
const cancelCheckEvery = 4096

// tick is called once per source tuple and surfaces ctx cancellation
// every cancelCheckEvery tuples.
func (c *runCtx) tick() error {
	c.n++
	if c.n%cancelCheckEvery == 0 {
		return c.ctx.Err()
	}
	return nil
}

// Program is a compiled query plan. Compile once, Run many times —
// including concurrently and against different database versions with
// the same schemas. Exactly one of root (tuple-at-a-time pipeline,
// Compile) and vroot (vectorized batch pipeline, CompileVec) is set.
type Program struct {
	root  node
	vroot vecNode
	out   *schema.Schema
}

// OutputSchema returns the schema of the program's result.
func (p *Program) OutputSchema() *schema.Schema { return p.out }

// Run executes the program against db and materializes the result.
// Tuples that pass through the pipeline unchanged are shared with the
// source relation (same aliasing contract as the interpreter); tuples
// produced by projections or joins are freshly allocated.
func (p *Program) Run(db *storage.Database) (*storage.Relation, error) {
	return p.RunCtx(context.Background(), db)
}

// RunCtx is Run under a context: the pipeline's source loops observe
// cancellation every few thousand tuples (tuple-at-a-time) or between
// row batches (vectorized), so a cancelled run returns ctx.Err()
// promptly instead of streaming the full relation.
func (p *Program) RunCtx(ctx context.Context, db *storage.Database) (*storage.Relation, error) {
	if p.vroot != nil {
		return p.runVec(ctx, db)
	}
	out := storage.NewRelation(p.out)
	err := p.root.run(&runCtx{db: db, ctx: ctx}, func(t schema.Tuple, owned bool) error {
		if !owned {
			t = t.Clone()
		}
		out.Tuples = append(out.Tuples, t)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// runVec drives the vectorized pipeline: every emitted batch's live
// rows materialize into row-major tuples backed by one arena allocation
// per batch (not one per row).
func (p *Program) runVec(ctx context.Context, db *storage.Database) (*storage.Relation, error) {
	out := storage.NewRelation(p.out)
	arity := p.out.Arity()
	err := p.vroot.run(&runCtx{db: db, ctx: ctx}, func(b *batch) error {
		out.Tuples = append(out.Tuples, materializeRows(b, arity)...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Compile lowers q into a pipelined program. db supplies the base
// relation schemas; the returned program may run against any database
// holding relations with the same schemas (e.g. other time-travel
// versions of the same store). Queries outside the compilable subset
// return an error and the caller falls back to the interpreter.
func Compile(q algebra.Query, db *storage.Database) (*Program, error) {
	n, sch, err := compileNode(q, db)
	if err != nil {
		return nil, err
	}
	return &Program{root: n, out: sch}, nil
}

// Eval compiles and runs q in one step — a drop-in replacement for
// algebra.Eval when no program reuse is intended.
func Eval(q algebra.Query, db *storage.Database) (*storage.Relation, error) {
	p, err := Compile(q, db)
	if err != nil {
		return nil, err
	}
	return p.Run(db)
}

// scanNode streams a base relation. Emitted tuples are owned=true:
// they alias store tuples, which are stable for the duration of the
// query by the documented scan invariant (snapshots are deep clones;
// states applied to in place are privately owned while mutating, per
// storage.ApplyMutator's ownership contract).
type scanNode struct {
	rel   string
	arity int
}

func (n *scanNode) run(ctx *runCtx, emit emitFn) error {
	r, err := ctx.db.Relation(n.rel)
	if err != nil {
		return err
	}
	if r.Schema.Arity() != n.arity {
		return fmt.Errorf("exec: relation %s arity changed since compilation (%d vs %d)", n.rel, r.Schema.Arity(), n.arity)
	}
	for _, t := range r.Tuples {
		if err := ctx.tick(); err != nil {
			return err
		}
		if err := emit(t, true); err != nil {
			return err
		}
	}
	return nil
}

// singletonNode streams a constant relation.
type singletonNode struct {
	tuples []schema.Tuple
}

func (n *singletonNode) run(ctx *runCtx, emit emitFn) error {
	for _, t := range n.tuples {
		if err := ctx.tick(); err != nil {
			return err
		}
		if err := emit(t, true); err != nil {
			return err
		}
	}
	return nil
}

// filterNode drops tuples failing a compiled predicate. Fuses: it
// wraps the consumer's emit, so no materialization happens.
type filterNode struct {
	in   node
	pred predFn
}

func (n *filterNode) run(ctx *runCtx, emit emitFn) error {
	return n.in.run(ctx, func(t schema.Tuple, owned bool) error {
		ok, err := n.pred(t)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		return emit(t, owned)
	})
}

// projectNode evaluates one compiled expression per output column into
// a scratch row reused across tuples (allocated per run, keeping the
// program reentrant). Downstream consumers only copy the row at true
// materialization points, so a fused σ/Π chain costs one allocation
// per surviving output tuple, not one per operator per tuple.
//
// Identity columns — the common case in reenactment projections, where
// an UPDATE rewrites one column and passes the rest through — skip the
// closure machinery: src[i] >= 0 means "copy input ordinal src[i]" and
// fns[i] is nil.
type projectNode struct {
	in  node
	fns []scalarFn
	src []int
}

func (n *projectNode) run(ctx *runCtx, emit emitFn) error {
	buf := make(schema.Tuple, len(n.fns))
	return n.in.run(ctx, func(t schema.Tuple, _ bool) error {
		for i, fn := range n.fns {
			if fn == nil {
				j := n.src[i]
				if j >= len(t) {
					return fmt.Errorf("exec: row arity %d below attribute index %d", len(t), j)
				}
				buf[i] = t[j]
				continue
			}
			v, err := fn(t)
			if err != nil {
				return err
			}
			buf[i] = v
		}
		return emit(buf, false)
	})
}

// unionNode streams the left branch then the right (bag union,
// preserving the interpreter's output order).
type unionNode struct {
	l, r node
}

func (n *unionNode) run(ctx *runCtx, emit emitFn) error {
	if err := n.l.run(ctx, emit); err != nil {
		return err
	}
	return n.r.run(ctx, emit)
}

// diffNode is bag difference: the right branch materializes into a
// hash multiset index, then the left streams through it, dropping each
// tuple that still finds a positive count (multiset semantics, same
// order as the interpreter).
type diffNode struct {
	l, r node
}

func (n *diffNode) run(ctx *runCtx, emit emitFn) error {
	remove := storage.NewTupleIndex(0)
	err := n.r.run(ctx, func(t schema.Tuple, owned bool) error {
		if !owned {
			t = t.Clone()
		}
		remove.Add(t)
		return nil
	})
	if err != nil {
		return err
	}
	return n.l.run(ctx, func(t schema.Tuple, owned bool) error {
		if remove.Len() > 0 && remove.Remove(t) {
			return nil
		}
		return emit(t, owned)
	})
}
