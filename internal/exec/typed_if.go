package exec

import (
	"math"

	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/storage"
	"github.com/mahif/mahif/internal/types"
)

// typedIf is the typed-lane producer for the projection shape of every
// reenacted UPDATE column — IF θ THEN col∘const|const ELSE col — the
// kernel that keeps SET columns on typed lanes through U-deep
// statement chains. The boxed If kernel bulk-copies the ELSE column
// and overwrites the satisfied rows; this is the same plan with the
// copy a lane memmove and the overwrite a machine-typed loop, no
// boxing anywhere. Applicability is decided per batch from the runtime
// lanes (the ELSE and THEN columns must share a single kind the THEN
// result stays inside); an inapplicable batch falls back to the boxed
// kernel, so semantics — including error and NULL behavior — never
// depend on which lane ran.
type typedIf struct {
	cond    vecCondFn
	elseIdx int
	// THEN branch: column∘constant arithmetic on thenIdx, or a bare
	// constant when thenIdx < 0.
	thenIdx      int
	op           types.Op
	constV       types.Value
	constOnRight bool
	fastInt      func(int64) int64
	fastFloat    func(float64) float64
}

// recognizeTypedIf matches x against the typed-lane IF shape,
// returning nil when the expression is outside it (the boxed kernel
// then handles the column alone). Division is excluded — it errors on
// zero and always widens to float — as is any THEN whose result kind
// could differ from the ELSE column's lane.
func recognizeTypedIf(x *expr.If, s *schema.Schema) (*typedIf, error) {
	elseCol, ok := x.Else.(*expr.Col)
	if !ok {
		return nil, nil
	}
	elseIdx := s.ColIndex(elseCol.Name)
	if elseIdx < 0 {
		return nil, nil
	}
	t := &typedIf{elseIdx: elseIdx, thenIdx: -1}
	switch then := x.Then.(type) {
	case *expr.Const:
		t.constV = then.V
	case *expr.Arith:
		if then.Op == types.OpDiv {
			return nil, nil
		}
		col, c, constOnRight := splitColConst(then.L, then.R)
		if col == nil || c == nil || !c.V.IsNumeric() || math.IsNaN(c.V.AsFloat()) {
			return nil, nil
		}
		idx := s.ColIndex(col.Name)
		if idx < 0 {
			return nil, nil
		}
		t.thenIdx, t.op, t.constV, t.constOnRight = idx, then.Op, c.V, constOnRight
	default:
		return nil, nil
	}
	if t.thenIdx >= 0 {
		op, constOnRight := t.op, t.constOnRight
		if t.constV.Kind() == types.KindInt {
			ci := t.constV.AsInt()
			t.fastInt = func(a int64) int64 {
				x, y := a, ci
				if !constOnRight {
					x, y = y, x
				}
				switch op {
				case types.OpAdd:
					return x + y
				case types.OpSub:
					return x - y
				default: // OpMul; OpDiv was excluded above
					return x * y
				}
			}
		}
		cf := t.constV.AsFloat()
		t.fastFloat = func(a float64) float64 {
			x, y := a, cf
			if !constOnRight {
				x, y = y, x
			}
			switch op {
			case types.OpAdd:
				return x + y
			case types.OpSub:
				return x - y
			default:
				return x * y
			}
		}
	}
	cond, err := compileVecWhereTruth(x.Cond, s)
	if err != nil {
		return nil, err
	}
	t.cond = cond
	return t, nil
}

// arithBoxed evaluates the THEN arithmetic through types.Arith in the
// expression's original operand order — the delegate for cells whose
// typed result leaves the finite float domain, so errors match the
// oracle byte for byte.
func (t *typedIf) arithBoxed(v types.Value) (types.Value, error) {
	if t.constOnRight {
		return types.Arith(t.op, v, t.constV)
	}
	return types.Arith(t.op, t.constV, v)
}

// apply produces the column into out on a typed lane, or reports
// handled=false when the batch's runtime lanes fall outside the
// specialization (mixed kinds, boxed inputs, kind-changing THEN).
func (t *typedIf) apply(p *vecPool, b *batch, out *storage.ColVec) (bool, error) {
	els := &b.cols[t.elseIdx]
	var thn *storage.ColVec
	if t.thenIdx >= 0 {
		thn = &b.cols[t.thenIdx]
		switch {
		case els.Kind == types.KindInt && thn.Kind == types.KindInt && t.constV.Kind() == types.KindInt:
			// int∘int wraps like types.Arith: the fast loop is exact.
		case els.Kind == types.KindFloat && thn.Kind == types.KindFloat:
			// numeric const widens to float like types.Arith.
		default:
			return false, nil
		}
	} else {
		switch els.Kind {
		case types.KindInt, types.KindFloat, types.KindString:
		default:
			return false, nil
		}
		// The constant must keep the lane single-kind (an Int 5 in a
		// float lane would render differently on the wire than the boxed
		// path's mixed column); NULL works in any lane via the mask.
		if !t.constV.IsNull() && t.constV.Kind() != els.Kind {
			return false, nil
		}
	}
	tr := p.getTruths()
	defer p.putTruths(tr)
	if err := t.cond(p, b, b.sel, tr); err != nil {
		return true, err
	}
	selT := p.getSel()
	defer p.putSel(selT)
	if b.sel == nil {
		for r := 0; r < b.n; r++ {
			if tr[r] == tTrue {
				selT = append(selT, r)
			}
		}
	} else {
		for _, r := range b.sel {
			if tr[r] == tTrue {
				selT = append(selT, r)
			}
		}
	}
	// Bulk-copy the ELSE lane (a read that cannot error, so covering
	// then-rows too is invisible), then overwrite the satisfied rows.
	out.CompactFrom(els, nil, b.n)
	if len(selT) == 0 {
		return true, nil
	}
	switch els.Kind {
	case types.KindInt:
		if thn != nil {
			ints, nulls := thn.Ints, thn.Nulls
			for _, r := range selT {
				if nulls != nil && nulls[r] {
					out.Ints[r] = 0
					out.SetCellNull(r, b.n)
					continue
				}
				out.Ints[r] = t.fastInt(ints[r])
				out.ClearCellNull(r)
			}
			return true, nil
		}
		if t.constV.IsNull() {
			for _, r := range selT {
				out.Ints[r] = 0
				out.SetCellNull(r, b.n)
			}
			return true, nil
		}
		ci := t.constV.AsInt()
		for _, r := range selT {
			out.Ints[r] = ci
			out.ClearCellNull(r)
		}
	case types.KindFloat:
		if thn != nil {
			fs, nulls := thn.Floats, thn.Nulls
			for _, r := range selT {
				if nulls != nil && nulls[r] {
					out.Floats[r] = 0
					out.SetCellNull(r, b.n)
					continue
				}
				res := t.fastFloat(fs[r])
				if math.IsInf(res, 0) || math.IsNaN(res) {
					// Outside the finite float domain: delegate so the
					// overflow error (or a NaN operand's verdict) matches
					// types.Arith exactly.
					v, err := t.arithBoxed(types.Float(fs[r]))
					if err != nil {
						return true, err
					}
					if v.IsNull() {
						out.Floats[r] = 0
						out.SetCellNull(r, b.n)
					} else {
						out.Floats[r] = v.AsFloat()
						out.ClearCellNull(r)
					}
					continue
				}
				out.Floats[r] = res
				out.ClearCellNull(r)
			}
			return true, nil
		}
		if t.constV.IsNull() {
			for _, r := range selT {
				out.Floats[r] = 0
				out.SetCellNull(r, b.n)
			}
			return true, nil
		}
		cf := t.constV.AsFloat()
		for _, r := range selT {
			out.Floats[r] = cf
			out.ClearCellNull(r)
		}
	case types.KindString:
		// thn is nil here: string arithmetic never specializes.
		if t.constV.IsNull() {
			for _, r := range selT {
				out.Strs[r] = ""
				out.SetCellNull(r, b.n)
			}
			return true, nil
		}
		cs := t.constV.AsString()
		for _, r := range selT {
			out.Strs[r] = cs
			out.ClearCellNull(r)
		}
	}
	return true, nil
}
