package exec

import (
	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/types"
)

// hashJoinNode is an equi-join: the build branch materializes into a
// hash table on its key columns, the other branch probes it. Key
// hashing and equality follow the typed-value semantics of the
// comparison operator (numerics compare across int/float; NULL keys
// never join, matching SQL's NULL = NULL → unknown). It is only used
// when EVERY conjunct of the join condition is a key equality: with a
// residual conjunct the interpreter still evaluates the whole
// condition per pair (a NULL key does not short-circuit its AND), so
// errors the residual raises on NULL-key pairs would be silently
// skipped here; those conditions take the nested-loop path, which is
// interpreter-exact.
//
// The build side is chosen at compile time by estimated cardinality
// (buildLeft when the left input is smaller). Output order is
// interpreter-exact either way: the default right build streams the
// left side in order; the left build buffers matches per left row and
// replays them in left-major, right-stream-minor order.
type hashJoinNode struct {
	l, r           node
	lKeys, rKeys   []int
	lArity, rArity int
	buildLeft      bool
}

func (n *hashJoinNode) run(ctx *runCtx, emit emitFn) error {
	if n.buildLeft {
		return n.runBuildLeft(ctx, emit)
	}
	// Build side: right branch, keyed by the typed hash of its key
	// columns. Tuples are retained, so unowned scratch rows are cloned.
	table := map[uint64][]schema.Tuple{}
	err := n.r.run(ctx, func(t schema.Tuple, owned bool) error {
		h, ok := hashKeys(t, n.rKeys)
		if !ok {
			return nil // NULL key: can never satisfy the equality
		}
		if !owned {
			t = t.Clone()
		}
		table[h] = append(table[h], t)
		return nil
	})
	if err != nil {
		return err
	}

	// Probe side: stream the left branch; matches preserve right-branch
	// order within a bucket, so the output order matches the
	// interpreter's nested loop.
	buf := make(schema.Tuple, n.lArity+n.rArity)
	return n.l.run(ctx, func(lt schema.Tuple, _ bool) error {
		h, ok := hashKeys(lt, n.lKeys)
		if !ok {
			return nil
		}
		for _, rt := range table[h] {
			if !keysEqual(lt, rt, n.lKeys, n.rKeys) {
				continue // hash collision between distinct keys
			}
			copy(buf[:n.lArity], lt)
			copy(buf[n.lArity:], rt)
			if err := emit(buf, false); err != nil {
				return err
			}
		}
		return nil
	})
}

// runBuildLeft materializes the (smaller) left branch into the hash
// table, streams the right branch against it, and groups each match
// under its left row so the final emission order is exactly the
// interpreter's nested loop: left-major, right-stream order within a
// left row. Memory is O(|L| + matches) instead of O(|R|).
func (n *hashJoinNode) runBuildLeft(ctx *runCtx, emit emitFn) error {
	type buildRow struct {
		pos int
		t   schema.Tuple
	}
	table := map[uint64][]buildRow{}
	var left []schema.Tuple
	err := n.l.run(ctx, func(t schema.Tuple, owned bool) error {
		if !owned {
			t = t.Clone()
		}
		if h, ok := hashKeys(t, n.lKeys); ok {
			table[h] = append(table[h], buildRow{pos: len(left), t: t})
		}
		// NULL-key rows can never match but must keep their position so
		// emission order stays aligned.
		left = append(left, t)
		return nil
	})
	if err != nil {
		return err
	}

	matches := make([][]schema.Tuple, len(left))
	err = n.r.run(ctx, func(rt schema.Tuple, owned bool) error {
		h, ok := hashKeys(rt, n.rKeys)
		if !ok {
			return nil
		}
		cloned := owned // an owned tuple needs no defensive copy
		for _, br := range table[h] {
			if !keysEqual(br.t, rt, n.lKeys, n.rKeys) {
				continue // hash collision between distinct keys
			}
			if !cloned {
				rt = rt.Clone()
				cloned = true
			}
			matches[br.pos] = append(matches[br.pos], rt)
		}
		return nil
	})
	if err != nil {
		return err
	}

	buf := make(schema.Tuple, n.lArity+n.rArity)
	for pos, lt := range left {
		for _, rt := range matches[pos] {
			if err := ctx.tick(); err != nil {
				return err
			}
			copy(buf[:n.lArity], lt)
			copy(buf[n.lArity:], rt)
			if err := emit(buf, false); err != nil {
				return err
			}
		}
	}
	return nil
}

// hashKeys hashes the key columns of t; ok is false when any key is
// NULL (the tuple cannot join).
func hashKeys(t schema.Tuple, keys []int) (h uint64, ok bool) {
	h = schema.HashSeed
	for _, i := range keys {
		if t[i].IsNull() {
			return 0, false
		}
		h = schema.HashValue(h, t[i])
	}
	return h, true
}

// keysEqual verifies key equality value-wise (guards against hash
// collisions), mirroring the = operator on non-NULL values exactly:
// numeric pairs compare widened to float64 (EvalCmp routes them
// through Compare, so Int(2^53) equals Int(2^53+1) there — exact int
// equality would diverge), equal non-numeric kinds by payload,
// mismatched kinds are unequal. −0.0 equals +0.0 and the tuple hash
// canonicalizes it; NaN cannot reach here (types.Parse and types.Arith
// keep it out of the value domain).
func keysEqual(lt, rt schema.Tuple, lKeys, rKeys []int) bool {
	for i := range lKeys {
		if !joinKeyEqual(lt[lKeys[i]], rt[rKeys[i]]) {
			return false
		}
	}
	return true
}

func joinKeyEqual(a, b types.Value) bool {
	if a.IsNumeric() && b.IsNumeric() {
		return a.AsFloat() == b.AsFloat()
	}
	if a.Kind() != b.Kind() {
		return false
	}
	return a.Equal(b)
}

// nlJoinNode is the nested-loop fallback for non-equi join conditions:
// the right branch materializes once, the left streams against it with
// the full compiled condition.
type nlJoinNode struct {
	l, r           node
	pred           predFn
	lArity, rArity int
}

func (n *nlJoinNode) run(ctx *runCtx, emit emitFn) error {
	var right []schema.Tuple
	err := n.r.run(ctx, func(t schema.Tuple, owned bool) error {
		if !owned {
			t = t.Clone()
		}
		right = append(right, t)
		return nil
	})
	if err != nil {
		return err
	}
	buf := make(schema.Tuple, n.lArity+n.rArity)
	return n.l.run(ctx, func(lt schema.Tuple, _ bool) error {
		copy(buf[:n.lArity], lt)
		// The inner loop multiplies the source cardinality, so it ticks
		// itself: a cancelled quadratic join must not run to completion.
		for _, rt := range right {
			if err := ctx.tick(); err != nil {
				return err
			}
			copy(buf[n.lArity:], rt)
			ok, err := n.pred(buf)
			if err != nil {
				return err
			}
			if ok {
				if err := emit(buf, false); err != nil {
					return err
				}
			}
		}
		return nil
	})
}
