package exec

import (
	"github.com/mahif/mahif/internal/algebra"
	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/storage"
	"github.com/mahif/mahif/internal/types"
)

// Grouped aggregation for both compiled executors. Group identity
// (Tuple.Hash + Tuple.Equal through algebra.GroupIndex) and accumulator
// semantics (algebra.AggAcc) are shared with the interpreter, so the
// three executors cannot drift on NULL grouping, cross-kind numeric
// keys, integer wraparound, or float finiteness errors. Output rows are
// emitted in first-appearance order of their group, which is
// deterministic because every executor produces interpreter-exact input
// order.

// aggSchema computes the output schema (groups then aggregates) against
// the input schema.
func aggSchema(x *algebra.Aggregate, in *schema.Schema) *schema.Schema {
	cols := make([]schema.Column, 0, len(x.GroupBy)+len(x.Aggs))
	for _, ne := range x.GroupBy {
		cols = append(cols, schema.Col(ne.Name, algebra.ExprKind(ne.E, in)))
	}
	for _, a := range x.Aggs {
		cols = append(cols, schema.Col(a.Name, a.ResultKind(in)))
	}
	return schema.New(in.Relation, cols...)
}

func newAggAccs(fns []algebra.AggFunc) []algebra.AggAcc {
	row := make([]algebra.AggAcc, len(fns))
	for j, fn := range fns {
		row[j] = algebra.NewAggAcc(fn)
	}
	return row
}

// aggNode is the tuple-at-a-time γ operator: a full pipeline breaker
// that drains its input into per-group accumulators and then streams
// one result row per group. Per input row it evaluates the group
// expressions then each aggregate argument left to right — the
// interpreter's evaluation order, so error behavior is identical.
type aggNode struct {
	in       node
	groupFns []scalarFn
	argFns   []scalarFn // nil entry = COUNT(*)
	fns      []algebra.AggFunc
	arity    int
}

func (n *aggNode) run(ctx *runCtx, emit emitFn) error {
	groups := algebra.NewGroupIndex()
	var accs [][]algebra.AggAcc
	global := len(n.groupFns) == 0
	if global {
		accs = append(accs, newAggAccs(n.fns))
	}
	key := make(schema.Tuple, len(n.groupFns))
	err := n.in.run(ctx, func(t schema.Tuple, _ bool) error {
		gi := 0
		if !global {
			for i, fn := range n.groupFns {
				v, err := fn(t)
				if err != nil {
					return err
				}
				key[i] = v
			}
			h := key.Hash()
			gi = groups.Lookup(h, key)
			if gi < 0 {
				gi = groups.Add(h, key.Clone())
				accs = append(accs, newAggAccs(n.fns))
			}
		}
		row := accs[gi]
		for j, fn := range n.argFns {
			if fn == nil {
				row[j].AddRow()
				continue
			}
			v, err := fn(t)
			if err != nil {
				return err
			}
			if err := row[j].Add(v); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	buf := make(schema.Tuple, n.arity)
	for gi := range accs {
		if !global {
			copy(buf, groups.Key(gi))
		}
		for j := range accs[gi] {
			v, err := accs[gi][j].Result()
			if err != nil {
				return err
			}
			buf[len(n.groupFns)+j] = v
		}
		if err := emit(buf, false); err != nil {
			return err
		}
	}
	return nil
}

// compileAggregate lowers γ for the tuple path.
func compileAggregate(x *algebra.Aggregate, db *storage.Database) (node, *schema.Schema, error) {
	in, s, err := compileNode(x.In, db)
	if err != nil {
		return nil, nil, err
	}
	n := &aggNode{in: in, arity: len(x.GroupBy) + len(x.Aggs)}
	for _, ne := range x.GroupBy {
		fn, err := compileScalar(ne.E, s)
		if err != nil {
			return nil, nil, err
		}
		n.groupFns = append(n.groupFns, fn)
	}
	for _, a := range x.Aggs {
		var fn scalarFn
		if a.Arg != nil {
			if fn, err = compileScalar(a.Arg, s); err != nil {
				return nil, nil, err
			}
		}
		n.argFns = append(n.argFns, fn)
		n.fns = append(n.fns, a.Fn)
	}
	return n, aggSchema(x, s), nil
}

// vaggNode is the vectorized γ operator: typed-lane hash aggregation.
// Group keys hash column-wise without boxing (ColVec.FoldHash, the same
// tuple hash the GroupIndex uses), bare-column group keys stay on their
// input lanes, and bare-column aggregate arguments on clean typed lanes
// accumulate through AggAcc's unboxed AddInt/AddFloat entry points.
// Computed keys and arguments evaluate through the usual batch kernels
// into boxed scratch; like vProjectOp, every kernel runs over all live
// rows, so a batch errors iff the row-at-a-time semantics would error
// on some row of it.
type vaggNode struct {
	in       vecNode
	groupFns []vecScalarFn // nil entry: bare column, use groupSrc
	groupSrc []int
	argFns   []vecScalarFn // nil entry: bare column or COUNT(*)
	argSrc   []int         // input ordinal, or -1 computed, -2 COUNT(*)
	fns      []algebra.AggFunc
	arity    int
	cfg      vecConfig
}

func (n *vaggNode) run(rc *runCtx, emit vecEmit) error {
	groups := algebra.NewGroupIndex()
	var accs [][]algebra.AggAcc
	nG := len(n.groupFns)
	global := nG == 0
	if global {
		accs = append(accs, newAggAccs(n.fns))
	}
	pool := newVecPool(n.cfg.bs)
	hs := make([]uint64, n.cfg.bs)
	keyCols := make([]storage.ColVec, nG)
	keyBuf := make(schema.Tuple, nG)
	err := n.in.run(rc, func(b *batch) error {
		// Evaluate computed group keys and arguments over the whole
		// batch first (kernels fill only live rows).
		for i, fn := range n.groupFns {
			if fn == nil {
				keyCols[i] = b.cols[n.groupSrc[i]]
				continue
			}
			vals := pool.getVals()
			defer pool.putVals(vals)
			if err := fn(pool, b, b.sel, vals); err != nil {
				return err
			}
			keyCols[i] = storage.ColVec{Kind: types.KindNull, Vals: vals}
		}
		argCols := make([]*storage.ColVec, len(n.argFns))
		for j, fn := range n.argFns {
			if n.argSrc[j] >= 0 {
				argCols[j] = &b.cols[n.argSrc[j]]
				continue
			}
			if fn == nil {
				continue // COUNT(*)
			}
			vals := pool.getVals()
			defer pool.putVals(vals)
			if err := fn(pool, b, b.sel, vals); err != nil {
				return err
			}
			argCols[j] = &storage.ColVec{Kind: types.KindNull, Vals: vals}
		}

		// Resolve each live row to its dense group ordinal.
		var gis []int
		if !global {
			for r := range hs[:b.n] {
				hs[r] = schema.HashSeed
			}
			for i := range keyCols {
				keyCols[i].FoldHash(hs, b.sel, b.n)
			}
			rowGroup := func(r int) int {
				for i := range keyCols {
					keyBuf[i] = keyCols[i].Value(r)
				}
				gi := groups.Lookup(hs[r], keyBuf)
				if gi < 0 {
					gi = groups.Add(hs[r], keyBuf.Clone())
					accs = append(accs, newAggAccs(n.fns))
				}
				return gi
			}
			gis = make([]int, 0, b.live())
			if b.sel == nil {
				for r := 0; r < b.n; r++ {
					gis = append(gis, rowGroup(r))
				}
			} else {
				for _, r := range b.sel {
					gis = append(gis, rowGroup(r))
				}
			}
		}

		// Accumulate each aggregate column-wise.
		for j := range n.fns {
			acc := func(r, i int) error {
				a := &accs[0][j]
				if !global {
					a = &accs[gis[i]][j]
				}
				if argCols[j] == nil {
					a.AddRow()
					return nil
				}
				return a.Add(argCols[j].Value(r))
			}
			col := argCols[j]
			if global && col != nil && col.Nulls == nil && (col.Kind == types.KindInt || col.Kind == types.KindFloat) {
				// Typed fast lane: a clean int/float column feeding one
				// global accumulator folds without boxing.
				a := &accs[0][j]
				fold := func(r int) error {
					if col.Kind == types.KindInt {
						return a.AddInt(col.Ints[r])
					}
					return a.AddFloat(col.Floats[r])
				}
				if b.sel == nil {
					for r := 0; r < b.n; r++ {
						if err := fold(r); err != nil {
							return err
						}
					}
				} else {
					for _, r := range b.sel {
						if err := fold(r); err != nil {
							return err
						}
					}
				}
				continue
			}
			if b.sel == nil {
				for r := 0; r < b.n; r++ {
					if err := acc(r, r); err != nil {
						return err
					}
				}
			} else {
				for i, r := range b.sel {
					if err := acc(r, i); err != nil {
						return err
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		return err
	}

	out := newOwnedBatch(n.arity, n.cfg.bs)
	flush := func() error {
		if out.n == 0 {
			return nil
		}
		// Result emission is not driven by a ticking source, so observe
		// cancellation once per emitted batch; consumers may also have
		// narrowed the previous emit's selection in place.
		if err := rc.ctx.Err(); err != nil {
			return err
		}
		out.sel = nil
		err := emit(out)
		out.n = 0
		return err
	}
	for gi := range accs {
		if !global {
			for c, v := range groups.Key(gi) {
				out.cols[c].Vals[out.n] = v
			}
		}
		for j := range accs[gi] {
			v, err := accs[gi][j].Result()
			if err != nil {
				return err
			}
			out.cols[nG+j].Vals[out.n] = v
		}
		out.n++
		if out.n == n.cfg.bs {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}

// compileVecAggregate lowers γ for the vectorized path.
func compileVecAggregate(x *algebra.Aggregate, db *storage.Database, cfg vecConfig) (vecNode, *schema.Schema, error) {
	in, s, err := compileVecNode(x.In, db, cfg)
	if err != nil {
		return nil, nil, err
	}
	n := &vaggNode{in: in, arity: len(x.GroupBy) + len(x.Aggs), cfg: cfg}
	for _, ne := range x.GroupBy {
		src := -1
		var fn vecScalarFn
		if col, ok := ne.E.(*expr.Col); ok {
			if j := s.ColIndex(col.Name); j >= 0 {
				src = j
			}
		}
		if src < 0 {
			if fn, err = compileVecScalar(ne.E, s); err != nil {
				return nil, nil, err
			}
		}
		n.groupFns = append(n.groupFns, fn)
		n.groupSrc = append(n.groupSrc, src)
	}
	for _, a := range x.Aggs {
		src := -2
		var fn vecScalarFn
		if a.Arg != nil {
			src = -1
			if col, ok := a.Arg.(*expr.Col); ok {
				if j := s.ColIndex(col.Name); j >= 0 {
					src = j
				}
			}
			if src == -1 {
				if fn, err = compileVecScalar(a.Arg, s); err != nil {
					return nil, nil, err
				}
			}
		}
		n.argFns = append(n.argFns, fn)
		n.argSrc = append(n.argSrc, src)
		n.fns = append(n.fns, a.Fn)
	}
	return n, aggSchema(x, s), nil
}
