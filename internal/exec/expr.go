package exec

import (
	"cmp"
	"fmt"
	"math"

	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/types"
)

// scalarFn is a compiled scalar expression: it evaluates over one input
// row whose layout is the schema the expression was compiled against.
// Column references are resolved to ordinals at compile time, so
// evaluation does no name lookups and allocates no environment.
type scalarFn func(row schema.Tuple) (types.Value, error)

// predFn is a compiled condition under SQL WHERE semantics: NULL and
// non-boolean results count as not satisfied (mirrors expr.Satisfied).
type predFn func(row schema.Tuple) (bool, error)

// truth is SQL three-valued logic unboxed: conditions compile to
// condFn returning truth directly, so predicate trees (the per-UPDATE
// CASE guards and per-DELETE filters of reenactment) evaluate without
// constructing a types.Value per node per tuple.
type truth int8

const (
	tFalse truth = iota
	tTrue
	tNull
)

func truthOf(v types.Value) (truth, error) {
	if v.IsNull() {
		return tNull, nil
	}
	if v.Kind() != types.KindBool {
		return tNull, fmt.Errorf("exec: boolean connective applied to %s", v.Kind())
	}
	if v.AsBool() {
		return tTrue, nil
	}
	return tFalse, nil
}

func (t truth) value() types.Value {
	switch t {
	case tTrue:
		return types.True
	case tFalse:
		return types.False
	}
	return types.Null()
}

// condFn is a compiled boolean expression under full three-valued
// semantics (used inside connectives, where non-boolean operands are
// errors, unlike the tolerant WHERE wrapper).
type condFn func(row schema.Tuple) (truth, error)

// isBoolNode reports whether e always evaluates to a boolean or NULL.
func isBoolNode(e expr.Expr) bool {
	switch e.(type) {
	case *expr.Cmp, *expr.And, *expr.Or, *expr.Not, *expr.IsNull:
		return true
	}
	return false
}

// compileScalar lowers e to a closure over column ordinals of s. It
// fails on symbolic variables and on column references that do not
// resolve — the caller falls back to the interpreter in that case, so a
// compile error can never change observable behavior.
func compileScalar(e expr.Expr, s *schema.Schema) (scalarFn, error) {
	switch x := e.(type) {
	case *expr.Const:
		v := x.V
		return func(schema.Tuple) (types.Value, error) { return v, nil }, nil
	case *expr.Col:
		idx := s.ColIndex(x.Name)
		if idx < 0 {
			return nil, fmt.Errorf("exec: attribute %q not in schema %s", x.Name, s)
		}
		return func(row schema.Tuple) (types.Value, error) {
			if idx >= len(row) {
				return types.Null(), fmt.Errorf("exec: row arity %d below attribute index %d", len(row), idx)
			}
			return row[idx], nil
		}, nil
	case *expr.Var:
		// Symbolic variables only appear in the program-slicing
		// machinery, never in executable reenactment queries.
		return nil, fmt.Errorf("exec: symbolic variable %q in executable expression", x.Name)
	case *expr.Arith:
		// col ∘ const and const ∘ col fuse to a single closure (the
		// dominant SET-clause shape on the incremental update path);
		// evaluation order and error behavior match the generic form —
		// the column load's arity check runs first, the constant cannot
		// error. Unresolvable columns take the generic path so the
		// compile-time error is identical.
		if lc, lok := x.L.(*expr.Col); lok {
			if rc, rok := x.R.(*expr.Const); rok {
				if idx := s.ColIndex(lc.Name); idx >= 0 {
					fn := types.ArithConst(x.Op, rc.V)
					return func(row schema.Tuple) (types.Value, error) {
						if idx >= len(row) {
							return types.Null(), fmt.Errorf("exec: row arity %d below attribute index %d", len(row), idx)
						}
						return fn(row[idx])
					}, nil
				}
			}
		}
		if lc, lok := x.L.(*expr.Const); lok {
			if rc, rok := x.R.(*expr.Col); rok {
				if idx := s.ColIndex(rc.Name); idx >= 0 {
					op, k := x.Op, lc.V
					return func(row schema.Tuple) (types.Value, error) {
						if idx >= len(row) {
							return types.Null(), fmt.Errorf("exec: row arity %d below attribute index %d", len(row), idx)
						}
						return types.Arith(op, k, row[idx])
					}, nil
				}
			}
		}
		l, err := compileScalar(x.L, s)
		if err != nil {
			return nil, err
		}
		r, err := compileScalar(x.R, s)
		if err != nil {
			return nil, err
		}
		op := x.Op
		return func(row schema.Tuple) (types.Value, error) {
			lv, err := l(row)
			if err != nil {
				return types.Null(), err
			}
			rv, err := r(row)
			if err != nil {
				return types.Null(), err
			}
			return types.Arith(op, lv, rv)
		}, nil
	case *expr.Cmp, *expr.And, *expr.Or, *expr.Not, *expr.IsNull:
		// Boolean node in scalar position (e.g. a projected comparison):
		// evaluate at the truth level, box once at the boundary.
		c, err := compileCond(e, s)
		if err != nil {
			return nil, err
		}
		return func(row schema.Tuple) (types.Value, error) {
			t, err := c(row)
			if err != nil {
				return types.Null(), err
			}
			return t.value(), nil
		}, nil
	case *expr.If:
		cond, err := compileWhere(x.Cond, s)
		if err != nil {
			return nil, err
		}
		then, err := compileScalar(x.Then, s)
		if err != nil {
			return nil, err
		}
		els, err := compileScalar(x.Else, s)
		if err != nil {
			return nil, err
		}
		return func(row schema.Tuple) (types.Value, error) {
			ok, err := cond(row)
			if err != nil {
				return types.Null(), err
			}
			if ok {
				return then(row)
			}
			return els(row)
		}, nil
	}
	return nil, fmt.Errorf("exec: cannot compile expression %T", e)
}

// compileCond lowers a boolean expression to the truth level. Operands
// of connectives follow the interpreter's strict semantics: a non-NULL,
// non-boolean operand is an evaluation error.
func compileCond(e expr.Expr, s *schema.Schema) (condFn, error) {
	switch x := e.(type) {
	case *expr.Cmp:
		return compileCmp(x, s)
	case *expr.And:
		l, err := compileCondStrict(x.L, s)
		if err != nil {
			return nil, err
		}
		r, err := compileCondStrict(x.R, s)
		if err != nil {
			return nil, err
		}
		return func(row schema.Tuple) (truth, error) {
			lv, err := l(row)
			if err != nil {
				return tNull, err
			}
			// Short circuit on the dominating value; the right operand
			// is skipped exactly when the interpreter skips it.
			if lv == tFalse {
				return tFalse, nil
			}
			rv, err := r(row)
			if err != nil {
				return tNull, err
			}
			if lv == tTrue {
				return rv, nil
			}
			// lv is NULL: FALSE dominates, anything else is NULL.
			if rv == tFalse {
				return tFalse, nil
			}
			return tNull, nil
		}, nil
	case *expr.Or:
		l, err := compileCondStrict(x.L, s)
		if err != nil {
			return nil, err
		}
		r, err := compileCondStrict(x.R, s)
		if err != nil {
			return nil, err
		}
		return func(row schema.Tuple) (truth, error) {
			lv, err := l(row)
			if err != nil {
				return tNull, err
			}
			if lv == tTrue {
				return tTrue, nil
			}
			rv, err := r(row)
			if err != nil {
				return tNull, err
			}
			if lv == tFalse {
				return rv, nil
			}
			// lv is NULL: TRUE dominates, anything else is NULL.
			if rv == tTrue {
				return tTrue, nil
			}
			return tNull, nil
		}, nil
	case *expr.Not:
		in, err := compileCondStrict(x.E, s)
		if err != nil {
			return nil, err
		}
		return func(row schema.Tuple) (truth, error) {
			v, err := in(row)
			if err != nil {
				return tNull, err
			}
			switch v {
			case tTrue:
				return tFalse, nil
			case tFalse:
				return tTrue, nil
			}
			return tNull, nil
		}, nil
	case *expr.IsNull:
		in, err := compileScalar(x.E, s)
		if err != nil {
			return nil, err
		}
		return func(row schema.Tuple) (truth, error) {
			v, err := in(row)
			if err != nil {
				return tNull, err
			}
			if v.IsNull() {
				return tTrue, nil
			}
			return tFalse, nil
		}, nil
	}
	return nil, fmt.Errorf("exec: not a boolean expression %T", e)
}

// compileCondStrict compiles a connective operand: boolean nodes go to
// the truth level directly, anything else evaluates as a scalar and
// errors on non-NULL non-boolean results (the interpreter's evalAndOr
// and NOT semantics).
func compileCondStrict(e expr.Expr, s *schema.Schema) (condFn, error) {
	if isBoolNode(e) {
		return compileCond(e, s)
	}
	fn, err := compileScalar(e, s)
	if err != nil {
		return nil, err
	}
	return func(row schema.Tuple) (truth, error) {
		v, err := fn(row)
		if err != nil {
			return tNull, err
		}
		return truthOf(v)
	}, nil
}

// compileWhere compiles a condition under WHERE semantics: NULL and
// non-boolean results are simply "not satisfied", never errors
// (mirrors expr.Satisfied and the interpreter's CASE WHEN guard).
func compileWhere(e expr.Expr, s *schema.Schema) (predFn, error) {
	if isBoolNode(e) {
		c, err := compileCond(e, s)
		if err != nil {
			return nil, err
		}
		return func(row schema.Tuple) (bool, error) {
			t, err := c(row)
			if err != nil {
				return false, err
			}
			return t == tTrue, nil
		}, nil
	}
	fn, err := compileScalar(e, s)
	if err != nil {
		return nil, err
	}
	return func(row schema.Tuple) (bool, error) {
		v, err := fn(row)
		if err != nil {
			return false, err
		}
		return v.IsTrue(), nil
	}, nil
}

// compilePred is the executor-facing name for WHERE-semantics
// conditions (selections, join conditions, residual filters).
func compilePred(e expr.Expr, s *schema.Schema) (predFn, error) {
	return compileWhere(e, s)
}

// compileCmp lowers a comparison. The reenactment hot shape — a column
// against a constant — gets a specialized closure with a typed inline
// comparison; everything else goes through the generic pair of operand
// closures and expr.EvalCmp. The fast paths delegate back to EvalCmp
// the moment the runtime kinds leave the specialized domain, so their
// semantics (including NULL propagation, cross-kind numeric equality,
// and incomparable-kind errors) are EvalCmp's exactly.
func compileCmp(x *expr.Cmp, s *schema.Schema) (condFn, error) {
	if c, ok := x.R.(*expr.Const); ok {
		if col, ok2 := x.L.(*expr.Col); ok2 {
			if fn := compileColConstCmp(x.Op, col, c.V, s); fn != nil {
				return fn, nil
			}
		}
	}
	if c, ok := x.L.(*expr.Const); ok {
		if col, ok2 := x.R.(*expr.Col); ok2 {
			// a op b == b op.Flip() a.
			if fn := compileColConstCmp(x.Op.Flip(), col, c.V, s); fn != nil {
				return fn, nil
			}
		}
	}
	l, err := compileScalar(x.L, s)
	if err != nil {
		return nil, err
	}
	r, err := compileScalar(x.R, s)
	if err != nil {
		return nil, err
	}
	op := x.Op
	return func(row schema.Tuple) (truth, error) {
		lv, err := l(row)
		if err != nil {
			return tNull, err
		}
		rv, err := r(row)
		if err != nil {
			return tNull, err
		}
		return evalCmpTruth(op, lv, rv)
	}, nil
}

// compileColConstCmp builds the column-vs-constant fast path, or nil
// when no specialization applies (unknown column names fall through to
// the generic path so the error message stays uniform).
func compileColConstCmp(op expr.CmpOp, col *expr.Col, cv types.Value, s *schema.Schema) condFn {
	idx := s.ColIndex(col.Name)
	if idx < 0 {
		return nil
	}
	switch {
	case cv.IsNumeric():
		cf := cv.AsFloat()
		if math.IsNaN(cf) {
			return nil // no consistent order: leave it to the generic path
		}
		return func(row schema.Tuple) (truth, error) {
			if idx >= len(row) {
				return tNull, fmt.Errorf("exec: row arity %d below attribute index %d", len(row), idx)
			}
			v := row[idx]
			if v.IsNull() {
				return tNull, nil
			}
			if !v.IsNumeric() {
				return evalCmpTruth(op, v, cv)
			}
			f := v.AsFloat()
			if math.IsNaN(f) {
				// NaN is outside the value domain (types.Arith and
				// Parse reject it) but a caller can still construct it;
				// delegate so the oracle's semantics apply verbatim.
				return evalCmpTruth(op, v, cv)
			}
			return cmpOrdered(op, f, cf)
		}
	case cv.Kind() == types.KindString:
		cs := cv.AsString()
		return func(row schema.Tuple) (truth, error) {
			if idx >= len(row) {
				return tNull, fmt.Errorf("exec: row arity %d below attribute index %d", len(row), idx)
			}
			v := row[idx]
			if v.IsNull() {
				return tNull, nil
			}
			if v.Kind() != types.KindString {
				return evalCmpTruth(op, v, cv)
			}
			return cmpOrdered(op, v.AsString(), cs)
		}
	}
	return nil
}

// evalCmpTruth is the generic-comparison escape hatch of the fast
// paths (cross-kind operands), converting EvalCmp's boxed result.
func evalCmpTruth(op expr.CmpOp, l, r types.Value) (truth, error) {
	v, err := expr.EvalCmp(op, l, r)
	if err != nil {
		return tNull, err
	}
	if v.IsNull() {
		return tNull, nil
	}
	if v.AsBool() {
		return tTrue, nil
	}
	return tFalse, nil
}

// cmpOrdered applies a comparison to two operands of one ordered type
// (floats here are always finite and non-NaN — callers delegate those
// to the generic path).
func cmpOrdered[T cmp.Ordered](op expr.CmpOp, a, b T) (truth, error) {
	var ok bool
	switch op {
	case expr.CmpEq:
		ok = a == b
	case expr.CmpNe:
		ok = a != b
	case expr.CmpLt:
		ok = a < b
	case expr.CmpLe:
		ok = a <= b
	case expr.CmpGt:
		ok = a > b
	case expr.CmpGe:
		ok = a >= b
	default:
		return tNull, fmt.Errorf("exec: unknown comparison")
	}
	if ok {
		return tTrue, nil
	}
	return tFalse, nil
}
