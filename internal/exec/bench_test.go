package exec_test

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/mahif/mahif/internal/algebra"
	"github.com/mahif/mahif/internal/exec"
	"github.com/mahif/mahif/internal/history"
	"github.com/mahif/mahif/internal/reenact"
	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/sql"
	"github.com/mahif/mahif/internal/storage"
	"github.com/mahif/mahif/internal/types"
)

// benchDB builds one relation t(k,v,g) with rows tuples.
func benchDB(rows int) *storage.Database {
	rng := rand.New(rand.NewSource(1))
	db := storage.NewDatabase()
	r := storage.NewRelation(schema.New("t",
		schema.Col("k", types.KindInt),
		schema.Col("v", types.KindInt),
		schema.Col("g", types.KindString),
	))
	groups := []string{"a", "b", "c", "d"}
	for i := 0; i < rows; i++ {
		r.Add(schema.NewTuple(
			types.Int(int64(i)),
			types.Int(int64(rng.Intn(1000))),
			types.String(groups[rng.Intn(len(groups))]),
		))
	}
	db.AddRelation(r)
	return db
}

// benchHistory builds a reenactment-shaped history: updates with an
// occasional delete, the per-statement σ/Π chain the executor fuses.
func benchHistory(stmts int) history.History {
	rng := rand.New(rand.NewSource(2))
	var h history.History
	for i := 0; i < stmts; i++ {
		var src string
		if i%10 == 9 {
			src = fmt.Sprintf(`DELETE FROM t WHERE v < %d AND g = 'd'`, rng.Intn(20))
		} else {
			src = fmt.Sprintf(`UPDATE t SET v = v + %d WHERE v >= %d AND g = '%s'`,
				1+rng.Intn(5), rng.Intn(1000), []string{"a", "b", "c"}[rng.Intn(3)])
		}
		h = append(h, sql.MustParseStatement(src))
	}
	return h
}

func reenactmentQuery(b *testing.B, db *storage.Database, stmts int) algebra.Query {
	b.Helper()
	qs, err := reenact.Queries(benchHistory(stmts), db, nil)
	if err != nil {
		b.Fatal(err)
	}
	return qs["t"]
}

// BenchmarkReenactment is the headline comparison: evaluating the
// reenactment query of a U-statement history over an N-tuple relation.
// The acceptance target is the compiled executor ≥3× faster than the
// interpreter with fewer allocs/op at U=100, N=10000.
func BenchmarkReenactment(b *testing.B) {
	for _, rows := range []int{1000, 10000} {
		for _, stmts := range []int{10, 100} {
			db := benchDB(rows)
			q := reenactmentQuery(b, db, stmts)

			b.Run(fmt.Sprintf("U%d/N%d/interpreter", stmts, rows), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := algebra.Eval(q, db); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("U%d/N%d/compiled", stmts, rows), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := exec.Eval(q, db); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("U%d/N%d/compiled-reuse", stmts, rows), func(b *testing.B) {
				prog, err := exec.Compile(q, db)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := prog.Run(db); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("U%d/N%d/vectorized", stmts, rows), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := exec.EvalVec(q, db); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("U%d/N%d/vectorized-reuse", stmts, rows), func(b *testing.B) {
				prog, err := exec.CompileVec(q, db, exec.VecOptions{})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := prog.Run(db); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkCompile isolates the one-time compilation cost (it must be
// negligible against a single evaluation).
func BenchmarkCompile(b *testing.B) {
	db := benchDB(100)
	q := reenactmentQuery(b, db, 100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exec.Compile(q, db); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHashJoin compares the detected hash join against the
// interpreter's nested loop on a two-relation equi-join.
func BenchmarkHashJoin(b *testing.B) {
	db := benchDB(5000)
	dim := storage.NewRelation(schema.New("dim",
		schema.Col("dk", types.KindInt),
		schema.Col("name", types.KindString),
	))
	for i := 0; i < 500; i++ {
		dim.Add(schema.NewTuple(types.Int(int64(i*10)), types.String(fmt.Sprintf("n%d", i))))
	}
	db.AddRelation(dim)
	cond, err := sql.ParseCondition("k = dk")
	if err != nil {
		b.Fatal(err)
	}
	q := &algebra.Join{L: &algebra.Scan{Rel: "t"}, R: &algebra.Scan{Rel: "dim"}, Cond: cond}

	b.Run("interpreter", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := algebra.Eval(q, db); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compiled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := exec.Eval(q, db); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDifference compares the hash-multiset bag difference paths.
func BenchmarkDifference(b *testing.B) {
	db := benchDB(10000)
	cond, err := sql.ParseCondition("g = 'a'")
	if err != nil {
		b.Fatal(err)
	}
	q := &algebra.Difference{
		L: &algebra.Scan{Rel: "t"},
		R: &algebra.Select{Cond: cond, In: &algebra.Scan{Rel: "t"}},
	}
	b.Run("interpreter", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := algebra.Eval(q, db); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compiled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := exec.Eval(q, db); err != nil {
				b.Fatal(err)
			}
		}
	})
}
