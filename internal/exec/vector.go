package exec

import (
	"fmt"
	"math"

	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/storage"
	"github.com/mahif/mahif/internal/types"
)

// DefaultBatchSize is the number of rows per batch in the vectorized
// executor. 1024 rows keep a batch's working set (a handful of value
// columns plus a selection vector) inside L2 while amortizing the
// per-batch dispatch to well under a nanosecond per row.
const DefaultBatchSize = 1024

// batch is a fixed-capacity, column-major block of rows flowing through
// the vectorized pipeline: cols[c] is the column vector of column c,
// typed wherever the source column is single-kind (storage.ColVec) and
// boxed otherwise. A non-nil sel lists the row indices (ascending,
// unique) that are still live after filtering; nil means all n rows
// are live. Cells at unselected positions of computed columns are
// garbage and must never be read.
//
// Ownership: a batch and its columns are valid only for the duration of
// the consumer's emit call — producers reuse the backing storage for
// the next batch. Consumers that retain data (join builds, difference
// builds, the materializing sink) copy rows out via materializeRows.
type batch struct {
	cols []storage.ColVec
	n    int
	sel  []int
}

// live returns the number of selected rows.
func (b *batch) live() int {
	if b.sel != nil {
		return len(b.sel)
	}
	return b.n
}

// newOwnedBatch allocates a batch with arity boxed columns of capacity
// bs backed by one flat allocation. Join and nested-loop outputs use
// it: their rows interleave cells from both sides, so they stay on the
// boxed lane.
func newOwnedBatch(arity, bs int) *batch {
	flat := make([]types.Value, arity*bs)
	cols := make([]storage.ColVec, arity)
	for c := range cols {
		cols[c] = storage.ColVec{Kind: types.KindNull, Vals: flat[c*bs : (c+1)*bs : (c+1)*bs]}
	}
	return &batch{cols: cols}
}

// materializeRows copies the live rows of b into freshly allocated
// row-major tuples backed by a single flat arena (one allocation per
// batch instead of one per row — the sink-side alloc win of the
// vectorized executor). Typed lanes box here, at the boundary.
func materializeRows(b *batch, arity int) []schema.Tuple {
	live := b.live()
	if live == 0 {
		return nil
	}
	flat := make([]types.Value, live*arity)
	rows := make([]schema.Tuple, live)
	for i := range rows {
		rows[i] = schema.Tuple(flat[i*arity : (i+1)*arity : (i+1)*arity])
	}
	for c := 0; c < arity; c++ {
		col := &b.cols[c]
		if b.sel == nil {
			for i := 0; i < b.n; i++ {
				flat[i*arity+c] = col.Value(i)
			}
		} else {
			for i, r := range b.sel {
				flat[i*arity+c] = col.Value(r)
			}
		}
	}
	return rows
}

// freezeBatch compacts the live rows of b into an owned batch
// (sel == nil), preserving each column's lane. Parallel scan workers
// freeze their output batches so the ordered merge can buffer them
// while the worker's scratch moves on to the next batch.
func freezeBatch(b *batch, arity int) *batch {
	live := b.live()
	cols := make([]storage.ColVec, arity)
	for c := range cols {
		cols[c].CompactFrom(&b.cols[c], b.sel, live)
	}
	return &batch{cols: cols, n: live}
}

// hashRows computes the typed tuple hash (schema.Tuple.Hash) of every
// live row of b into hs, folding column by column for locality — typed
// lanes hash without boxing. hs must have capacity ≥ b.n.
func hashRows(b *batch, hs []uint64) {
	if b.sel == nil {
		for r := 0; r < b.n; r++ {
			hs[r] = schema.HashSeed
		}
	} else {
		for _, r := range b.sel {
			hs[r] = schema.HashSeed
		}
	}
	for c := range b.cols {
		b.cols[c].FoldHash(hs, b.sel, b.n)
	}
}

// vecPool recycles kernel-internal scratch buffers (comparison and
// arithmetic operand vectors, If partitions) within one pipeline run.
// Use is strictly LIFO inside a single kernel invocation, so a small
// free list suffices; buffers are full batch-capacity slices indexed by
// absolute row position.
type vecPool struct {
	bs   int
	vals [][]types.Value
	trs  [][]truth
	sels [][]int
}

func newVecPool(bs int) *vecPool { return &vecPool{bs: bs} }

func (p *vecPool) getVals() []types.Value {
	if n := len(p.vals); n > 0 {
		v := p.vals[n-1]
		p.vals = p.vals[:n-1]
		return v
	}
	return make([]types.Value, p.bs)
}

func (p *vecPool) putVals(v []types.Value) { p.vals = append(p.vals, v) }

func (p *vecPool) getTruths() []truth {
	if n := len(p.trs); n > 0 {
		t := p.trs[n-1]
		p.trs = p.trs[:n-1]
		return t
	}
	return make([]truth, p.bs)
}

func (p *vecPool) putTruths(t []truth) { p.trs = append(p.trs, t) }

func (p *vecPool) getSel() []int {
	if n := len(p.sels); n > 0 {
		s := p.sels[n-1]
		p.sels = p.sels[:n-1]
		return s[:0]
	}
	return make([]int, 0, p.bs)
}

func (p *vecPool) putSel(s []int) { p.sels = append(p.sels, s) }

// vecScalarFn is a compiled scalar expression over batches: it fills
// out[r] for every live row r of b listed in sel (nil sel = all rows).
// Rows outside sel are left untouched. Lazy per-row evaluation is
// preserved structurally — If branches and And/Or right operands run
// only over the sub-selection the row-at-a-time semantics would reach —
// so an expression errors on a batch iff the interpreter errors on some
// row of it.
type vecScalarFn func(p *vecPool, b *batch, sel []int, out []types.Value) error

// vecCondFn is a compiled boolean expression over batches at the
// unboxed truth level.
type vecCondFn func(p *vecPool, b *batch, sel []int, out []truth) error

// compileVecScalar lowers e to a batch kernel over column ordinals of
// s, mirroring compileScalar's semantics exactly.
func compileVecScalar(e expr.Expr, s *schema.Schema) (vecScalarFn, error) {
	switch x := e.(type) {
	case *expr.Const:
		v := x.V
		return func(_ *vecPool, b *batch, sel []int, out []types.Value) error {
			if sel == nil {
				for r := 0; r < b.n; r++ {
					out[r] = v
				}
			} else {
				for _, r := range sel {
					out[r] = v
				}
			}
			return nil
		}, nil
	case *expr.Col:
		idx := s.ColIndex(x.Name)
		if idx < 0 {
			return nil, fmt.Errorf("exec: attribute %q not in schema %s", x.Name, s)
		}
		return func(_ *vecPool, b *batch, sel []int, out []types.Value) error {
			b.cols[idx].BoxInto(out, sel, b.n)
			return nil
		}, nil
	case *expr.Var:
		return nil, fmt.Errorf("exec: symbolic variable %q in executable expression", x.Name)
	case *expr.Arith:
		if fn := compileVecArithFast(x, s); fn != nil {
			return fn, nil
		}
		l, err := compileVecScalar(x.L, s)
		if err != nil {
			return nil, err
		}
		r, err := compileVecScalar(x.R, s)
		if err != nil {
			return nil, err
		}
		op := x.Op
		return func(p *vecPool, b *batch, sel []int, out []types.Value) error {
			lv := p.getVals()
			rv := p.getVals()
			defer p.putVals(lv)
			defer p.putVals(rv)
			if err := l(p, b, sel, lv); err != nil {
				return err
			}
			if err := r(p, b, sel, rv); err != nil {
				return err
			}
			if sel == nil {
				for i := 0; i < b.n; i++ {
					v, err := types.Arith(op, lv[i], rv[i])
					if err != nil {
						return err
					}
					out[i] = v
				}
			} else {
				for _, i := range sel {
					v, err := types.Arith(op, lv[i], rv[i])
					if err != nil {
						return err
					}
					out[i] = v
				}
			}
			return nil
		}, nil
	case *expr.Cmp, *expr.And, *expr.Or, *expr.Not, *expr.IsNull:
		// Boolean node in scalar position: evaluate at the truth level,
		// box once at the boundary.
		c, err := compileVecCond(e, s)
		if err != nil {
			return nil, err
		}
		return func(p *vecPool, b *batch, sel []int, out []types.Value) error {
			tr := p.getTruths()
			defer p.putTruths(tr)
			if err := c(p, b, sel, tr); err != nil {
				return err
			}
			if sel == nil {
				for r := 0; r < b.n; r++ {
					out[r] = tr[r].value()
				}
			} else {
				for _, r := range sel {
					out[r] = tr[r].value()
				}
			}
			return nil
		}, nil
	case *expr.If:
		cond, err := compileVecWhereTruth(x.Cond, s)
		if err != nil {
			return nil, err
		}
		then, err := compileVecScalar(x.Then, s)
		if err != nil {
			return nil, err
		}
		// IF θ THEN e ELSE col — the shape of every reenacted UPDATE
		// column — specializes: bulk-copy the column (a read that cannot
		// error, so running it on then-rows too is invisible), then
		// overwrite only the satisfied rows. No else partition, no
		// per-row else dispatch.
		if col, ok := x.Else.(*expr.Col); ok {
			if idx := s.ColIndex(col.Name); idx >= 0 {
				return func(p *vecPool, b *batch, sel []int, out []types.Value) error {
					tr := p.getTruths()
					defer p.putTruths(tr)
					if err := cond(p, b, sel, tr); err != nil {
						return err
					}
					selT := p.getSel()
					defer p.putSel(selT)
					b.cols[idx].BoxInto(out, sel, b.n)
					if sel == nil {
						for r := 0; r < b.n; r++ {
							if tr[r] == tTrue {
								selT = append(selT, r)
							}
						}
					} else {
						for _, r := range sel {
							if tr[r] == tTrue {
								selT = append(selT, r)
							}
						}
					}
					if len(selT) == 0 {
						return nil
					}
					return then(p, b, selT, out)
				}, nil
			}
		}
		els, err := compileVecScalar(x.Else, s)
		if err != nil {
			return nil, err
		}
		return func(p *vecPool, b *batch, sel []int, out []types.Value) error {
			tr := p.getTruths()
			defer p.putTruths(tr)
			if err := cond(p, b, sel, tr); err != nil {
				return err
			}
			selT := p.getSel()
			selF := p.getSel()
			defer p.putSel(selT)
			defer p.putSel(selF)
			if sel == nil {
				for r := 0; r < b.n; r++ {
					if tr[r] == tTrue {
						selT = append(selT, r)
					} else {
						selF = append(selF, r)
					}
				}
			} else {
				for _, r := range sel {
					if tr[r] == tTrue {
						selT = append(selT, r)
					} else {
						selF = append(selF, r)
					}
				}
			}
			// Each branch runs only over the rows that take it — exactly
			// the per-row lazy evaluation of the interpreter, so a branch
			// that errors on untaken rows stays silent in both executors.
			if len(selT) > 0 {
				if err := then(p, b, selT, out); err != nil {
					return err
				}
			}
			if len(selF) > 0 {
				if err := els(p, b, selF, out); err != nil {
					return err
				}
			}
			return nil
		}, nil
	}
	return nil, fmt.Errorf("exec: cannot compile expression %T", e)
}

// compileVecArithFast builds the column-op-constant arithmetic kernel
// for the reenactment hot shape (v = v + 3), or nil when no
// specialization applies. Division is excluded (it errors on zero and
// always yields floats); non-int runtime kinds delegate to types.Arith
// so semantics stay oracle-exact.
func compileVecArithFast(x *expr.Arith, s *schema.Schema) vecScalarFn {
	if x.Op == types.OpDiv {
		return nil
	}
	col, c, constOnRight := splitColConst(x.L, x.R)
	if col == nil || c == nil || c.V.Kind() != types.KindInt {
		return nil
	}
	idx := s.ColIndex(col.Name)
	if idx < 0 {
		return nil
	}
	op, cv := x.Op, c.V
	ci := cv.AsInt()
	// slow handles NULLs, int overflow cannot occur (wrapping matches
	// types.Arith), and non-int runtime kinds — delegated per row so the
	// hot loop below stays a branch and an integer op.
	slow := func(v types.Value) (types.Value, error) {
		if v.IsNull() {
			return types.Null(), nil
		}
		if constOnRight {
			return types.Arith(op, v, cv)
		}
		return types.Arith(op, cv, v)
	}
	fast := func(a int64) int64 {
		b := ci
		if !constOnRight {
			a, b = b, a
		}
		switch op {
		case types.OpAdd:
			return a + b
		case types.OpSub:
			return a - b
		default: // OpMul; OpDiv was excluded above
			return a * b
		}
	}
	return func(_ *vecPool, b *batch, sel []int, out []types.Value) error {
		src := &b.cols[idx]
		if src.Kind == types.KindInt && src.Nulls == nil {
			// Typed lane, no NULLs: the whole loop is an integer op and a
			// box per cell, no kind branches.
			ints := src.Ints
			if sel == nil {
				for r := 0; r < b.n; r++ {
					out[r] = types.Int(fast(ints[r]))
				}
			} else {
				for _, r := range sel {
					out[r] = types.Int(fast(ints[r]))
				}
			}
			return nil
		}
		one := func(r int) error {
			v := src.Value(r)
			if v.Kind() == types.KindInt {
				out[r] = types.Int(fast(v.AsInt()))
				return nil
			}
			v, err := slow(v)
			if err != nil {
				return err
			}
			out[r] = v
			return nil
		}
		if sel == nil {
			for r := 0; r < b.n; r++ {
				if err := one(r); err != nil {
					return err
				}
			}
		} else {
			for _, r := range sel {
				if err := one(r); err != nil {
					return err
				}
			}
		}
		return nil
	}
}

// splitColConst matches a (column, constant) operand pair in either
// order; constOnRight reports the original orientation.
func splitColConst(l, r expr.Expr) (col *expr.Col, c *expr.Const, constOnRight bool) {
	if cl, ok := l.(*expr.Col); ok {
		if cr, ok := r.(*expr.Const); ok {
			return cl, cr, true
		}
	}
	if cl, ok := r.(*expr.Col); ok {
		if cr, ok := l.(*expr.Const); ok {
			return cl, cr, false
		}
	}
	return nil, nil, false
}

// compileVecCond lowers a boolean expression to the truth level over
// batches, mirroring compileCond (strict connective operands, per-row
// short-circuit via sub-selections).
func compileVecCond(e expr.Expr, s *schema.Schema) (vecCondFn, error) {
	switch x := e.(type) {
	case *expr.Cmp:
		return compileVecCmp(x, s)
	case *expr.And:
		l, err := compileVecCondStrict(x.L, s)
		if err != nil {
			return nil, err
		}
		r, err := compileVecCondStrict(x.R, s)
		if err != nil {
			return nil, err
		}
		generic := func(p *vecPool, b *batch, sel []int, out []truth) error {
			if err := l(p, b, sel, out); err != nil {
				return err
			}
			// The right operand runs only over rows the left did not
			// decide — exactly when the interpreter evaluates it.
			rest := p.getSel()
			defer p.putSel(rest)
			if sel == nil {
				for i := 0; i < b.n; i++ {
					if out[i] != tFalse {
						rest = append(rest, i)
					}
				}
			} else {
				for _, i := range sel {
					if out[i] != tFalse {
						rest = append(rest, i)
					}
				}
			}
			if len(rest) == 0 {
				return nil
			}
			rv := p.getTruths()
			defer p.putTruths(rv)
			if err := r(p, b, rest, rv); err != nil {
				return err
			}
			for _, i := range rest {
				if out[i] == tTrue {
					out[i] = rv[i]
					continue
				}
				// Left is NULL: FALSE dominates, anything else is NULL.
				if rv[i] == tFalse {
					out[i] = tFalse
				} else {
					out[i] = tNull
				}
			}
			return nil
		}
		if fa := recognizeFusedAnd(x, s); fa != nil {
			fa.generic = generic
			return fa.eval, nil
		}
		return generic, nil
	case *expr.Or:
		l, err := compileVecCondStrict(x.L, s)
		if err != nil {
			return nil, err
		}
		r, err := compileVecCondStrict(x.R, s)
		if err != nil {
			return nil, err
		}
		return func(p *vecPool, b *batch, sel []int, out []truth) error {
			if err := l(p, b, sel, out); err != nil {
				return err
			}
			rest := p.getSel()
			defer p.putSel(rest)
			if sel == nil {
				for i := 0; i < b.n; i++ {
					if out[i] != tTrue {
						rest = append(rest, i)
					}
				}
			} else {
				for _, i := range sel {
					if out[i] != tTrue {
						rest = append(rest, i)
					}
				}
			}
			if len(rest) == 0 {
				return nil
			}
			rv := p.getTruths()
			defer p.putTruths(rv)
			if err := r(p, b, rest, rv); err != nil {
				return err
			}
			for _, i := range rest {
				if out[i] == tFalse {
					out[i] = rv[i]
					continue
				}
				// Left is NULL: TRUE dominates, anything else is NULL.
				if rv[i] == tTrue {
					out[i] = tTrue
				} else {
					out[i] = tNull
				}
			}
			return nil
		}, nil
	case *expr.Not:
		in, err := compileVecCondStrict(x.E, s)
		if err != nil {
			return nil, err
		}
		return func(p *vecPool, b *batch, sel []int, out []truth) error {
			if err := in(p, b, sel, out); err != nil {
				return err
			}
			flip := func(t truth) truth {
				switch t {
				case tTrue:
					return tFalse
				case tFalse:
					return tTrue
				}
				return tNull
			}
			if sel == nil {
				for r := 0; r < b.n; r++ {
					out[r] = flip(out[r])
				}
			} else {
				for _, r := range sel {
					out[r] = flip(out[r])
				}
			}
			return nil
		}, nil
	case *expr.IsNull:
		if col, ok := x.E.(*expr.Col); ok {
			if idx := s.ColIndex(col.Name); idx >= 0 {
				return func(_ *vecPool, b *batch, sel []int, out []truth) error {
					src := &b.cols[idx]
					if src.Kind != types.KindNull && src.Nulls == nil {
						// Typed lane without a mask: no cell is NULL.
						if sel == nil {
							for r := 0; r < b.n; r++ {
								out[r] = tFalse
							}
						} else {
							for _, r := range sel {
								out[r] = tFalse
							}
						}
						return nil
					}
					if sel == nil {
						for r := 0; r < b.n; r++ {
							out[r] = boolTruth(src.IsNull(r))
						}
					} else {
						for _, r := range sel {
							out[r] = boolTruth(src.IsNull(r))
						}
					}
					return nil
				}, nil
			}
		}
		in, err := compileVecScalar(x.E, s)
		if err != nil {
			return nil, err
		}
		return func(p *vecPool, b *batch, sel []int, out []truth) error {
			sv := p.getVals()
			defer p.putVals(sv)
			if err := in(p, b, sel, sv); err != nil {
				return err
			}
			if sel == nil {
				for r := 0; r < b.n; r++ {
					out[r] = boolTruth(sv[r].IsNull())
				}
			} else {
				for _, r := range sel {
					out[r] = boolTruth(sv[r].IsNull())
				}
			}
			return nil
		}, nil
	}
	return nil, fmt.Errorf("exec: not a boolean expression %T", e)
}

func boolTruth(ok bool) truth {
	if ok {
		return tTrue
	}
	return tFalse
}

// compileVecCondStrict compiles a connective operand: boolean nodes at
// the truth level, anything else as a scalar whose non-NULL non-boolean
// results are evaluation errors (compileCondStrict's semantics).
func compileVecCondStrict(e expr.Expr, s *schema.Schema) (vecCondFn, error) {
	if isBoolNode(e) {
		return compileVecCond(e, s)
	}
	fn, err := compileVecScalar(e, s)
	if err != nil {
		return nil, err
	}
	return func(p *vecPool, b *batch, sel []int, out []truth) error {
		sv := p.getVals()
		defer p.putVals(sv)
		if err := fn(p, b, sel, sv); err != nil {
			return err
		}
		if sel == nil {
			for r := 0; r < b.n; r++ {
				t, err := truthOf(sv[r])
				if err != nil {
					return err
				}
				out[r] = t
			}
		} else {
			for _, r := range sel {
				t, err := truthOf(sv[r])
				if err != nil {
					return err
				}
				out[r] = t
			}
		}
		return nil
	}, nil
}

// compileVecWhereTruth compiles a condition under WHERE semantics to
// the truth level: rows satisfy iff the result is tTrue; NULL and
// non-boolean results count as not satisfied, never as errors (mirrors
// compileWhere / expr.Satisfied).
func compileVecWhereTruth(e expr.Expr, s *schema.Schema) (vecCondFn, error) {
	if isBoolNode(e) {
		return compileVecCond(e, s)
	}
	fn, err := compileVecScalar(e, s)
	if err != nil {
		return nil, err
	}
	return func(p *vecPool, b *batch, sel []int, out []truth) error {
		sv := p.getVals()
		defer p.putVals(sv)
		if err := fn(p, b, sel, sv); err != nil {
			return err
		}
		if sel == nil {
			for r := 0; r < b.n; r++ {
				out[r] = boolTruth(sv[r].IsTrue())
			}
		} else {
			for _, r := range sel {
				out[r] = boolTruth(sv[r].IsTrue())
			}
		}
		return nil
	}, nil
}

// compileVecCmp lowers a comparison: column-vs-constant gets the typed
// tight-loop fast path, everything else evaluates both operand vectors
// and compares row-wise through the oracle-exact evalCmpTruth.
func compileVecCmp(x *expr.Cmp, s *schema.Schema) (vecCondFn, error) {
	if c, ok := x.R.(*expr.Const); ok {
		if col, ok2 := x.L.(*expr.Col); ok2 {
			if fn := compileVecColConstCmp(x.Op, col, c.V, s); fn != nil {
				return fn, nil
			}
		}
	}
	if c, ok := x.L.(*expr.Const); ok {
		if col, ok2 := x.R.(*expr.Col); ok2 {
			if fn := compileVecColConstCmp(x.Op.Flip(), col, c.V, s); fn != nil {
				return fn, nil
			}
		}
	}
	l, err := compileVecScalar(x.L, s)
	if err != nil {
		return nil, err
	}
	r, err := compileVecScalar(x.R, s)
	if err != nil {
		return nil, err
	}
	op := x.Op
	return func(p *vecPool, b *batch, sel []int, out []truth) error {
		lv := p.getVals()
		rv := p.getVals()
		defer p.putVals(lv)
		defer p.putVals(rv)
		if err := l(p, b, sel, lv); err != nil {
			return err
		}
		if err := r(p, b, sel, rv); err != nil {
			return err
		}
		if sel == nil {
			for i := 0; i < b.n; i++ {
				t, err := evalCmpTruth(op, lv[i], rv[i])
				if err != nil {
					return err
				}
				out[i] = t
			}
		} else {
			for _, i := range sel {
				t, err := evalCmpTruth(op, lv[i], rv[i])
				if err != nil {
					return err
				}
				out[i] = t
			}
		}
		return nil
	}, nil
}

// cmpTruthLUT maps an ordered-comparison outcome (-1, 0, +1, shifted
// by one) to the truth the operator yields — the per-op switch of
// cmpOrdered hoisted out of the cell loop, so the typed comparison
// kernels are a subtract, a table load, and a store per cell.
func cmpTruthLUT(op expr.CmpOp) ([3]truth, bool) {
	switch op {
	case expr.CmpEq:
		return [3]truth{tFalse, tTrue, tFalse}, true
	case expr.CmpNe:
		return [3]truth{tTrue, tFalse, tTrue}, true
	case expr.CmpLt:
		return [3]truth{tTrue, tFalse, tFalse}, true
	case expr.CmpLe:
		return [3]truth{tTrue, tTrue, tFalse}, true
	case expr.CmpGt:
		return [3]truth{tFalse, tFalse, tTrue}, true
	case expr.CmpGe:
		return [3]truth{tFalse, tTrue, tTrue}, true
	}
	return [3]truth{}, false
}

// compileVecColConstCmp is the vectorized column-vs-constant comparison
// (nil when no specialization applies). Typed int/float/string lanes
// compare in tight loops with the operator's truth table hoisted out;
// boxed lanes and runtime kinds outside the specialized domain take
// the per-cell loop that delegates to evalCmpTruth, keeping the
// semantics of the generic path exactly.
func compileVecColConstCmp(op expr.CmpOp, col *expr.Col, cv types.Value, s *schema.Schema) vecCondFn {
	idx := s.ColIndex(col.Name)
	if idx < 0 {
		return nil
	}
	lut, lok := cmpTruthLUT(op)
	if !lok {
		return nil
	}
	switch {
	case cv.IsNumeric():
		cf := cv.AsFloat()
		if math.IsNaN(cf) {
			return nil
		}
		ip, ipOK := intCmpPlanFor(op, cf)
		if !ipOK {
			return nil
		}
		return func(_ *vecPool, b *batch, sel []int, out []truth) error {
			src := &b.cols[idx]
			switch src.Kind {
			case types.KindInt:
				// Integer-threshold form: two integer compares per cell
				// instead of convert + float compare + LUT (see
				// intCmpPlan).
				ints := src.Ints
				lo, hi, tIn, tOut := ip.lo, ip.hi, ip.tIn, ip.tOut
				if src.Nulls == nil {
					if sel == nil {
						for r := 0; r < b.n; r++ {
							t := tOut
							if a := ints[r]; a >= lo && a <= hi {
								t = tIn
							}
							out[r] = t
						}
					} else {
						for _, r := range sel {
							t := tOut
							if a := ints[r]; a >= lo && a <= hi {
								t = tIn
							}
							out[r] = t
						}
					}
					return nil
				}
				nulls := src.Nulls
				if sel == nil {
					for r := 0; r < b.n; r++ {
						if nulls[r] {
							out[r] = tNull
							continue
						}
						t := tOut
						if a := ints[r]; a >= lo && a <= hi {
							t = tIn
						}
						out[r] = t
					}
				} else {
					for _, r := range sel {
						if nulls[r] {
							out[r] = tNull
							continue
						}
						t := tOut
						if a := ints[r]; a >= lo && a <= hi {
							t = tIn
						}
						out[r] = t
					}
				}
				return nil
			case types.KindFloat:
				// A NaN cell (constructible, though outside the value
				// domain) delegates so the oracle's semantics apply.
				fs, nulls := src.Floats, src.Nulls
				one := func(r int) error {
					if nulls != nil && nulls[r] {
						out[r] = tNull
						return nil
					}
					f := fs[r]
					if math.IsNaN(f) {
						t, err := evalCmpTruth(op, types.Float(f), cv)
						if err != nil {
							return err
						}
						out[r] = t
						return nil
					}
					out[r] = lut[orderAgainst(f, cf)]
					return nil
				}
				if sel == nil {
					for r := 0; r < b.n; r++ {
						if err := one(r); err != nil {
							return err
						}
					}
				} else {
					for _, r := range sel {
						if err := one(r); err != nil {
							return err
						}
					}
				}
				return nil
			}
			return cmpCellsGeneric(op, src, cv, sel, b.n, out)
		}
	case cv.Kind() == types.KindString:
		cs := cv.AsString()
		return func(_ *vecPool, b *batch, sel []int, out []truth) error {
			src := &b.cols[idx]
			if src.Kind == types.KindString {
				strs, nulls := src.Strs, src.Nulls
				if sel == nil {
					for r := 0; r < b.n; r++ {
						if nulls != nil && nulls[r] {
							out[r] = tNull
							continue
						}
						out[r] = lut[orderStrings(strs[r], cs)]
					}
				} else {
					for _, r := range sel {
						if nulls != nil && nulls[r] {
							out[r] = tNull
							continue
						}
						out[r] = lut[orderStrings(strs[r], cs)]
					}
				}
				return nil
			}
			return cmpCellsGeneric(op, src, cv, sel, b.n, out)
		}
	}
	return nil
}

// orderAgainst three-way-compares two non-NaN floats, shifted into LUT
// index space {0, 1, 2}.
func orderAgainst(a, b float64) int {
	o := 1
	if a < b {
		o = 0
	} else if a > b {
		o = 2
	}
	return o
}

// orderStrings is orderAgainst for strings.
func orderStrings(a, b string) int {
	o := 1
	if a < b {
		o = 0
	} else if a > b {
		o = 2
	}
	return o
}

// cmpCellsGeneric is the boxed/off-domain cell loop of the
// column-vs-constant comparison: NULL cells yield tNull, numeric cells
// against numeric constants take the inline ordered compare, and
// everything else delegates to evalCmpTruth — the exact behavior of
// the pre-columnar kernel.
func cmpCellsGeneric(op expr.CmpOp, src *storage.ColVec, cv types.Value, sel []int, n int, out []truth) error {
	cellCmp := func(r int) error {
		v := src.Value(r)
		if v.IsNull() {
			out[r] = tNull
			return nil
		}
		if v.IsNumeric() && cv.IsNumeric() {
			if f := v.AsFloat(); !math.IsNaN(f) {
				t, err := cmpOrdered(op, f, cv.AsFloat())
				if err != nil {
					return err
				}
				out[r] = t
				return nil
			}
		}
		if v.Kind() == types.KindString && cv.Kind() == types.KindString {
			t, err := cmpOrdered(op, v.AsString(), cv.AsString())
			if err != nil {
				return err
			}
			out[r] = t
			return nil
		}
		t, err := evalCmpTruth(op, v, cv)
		if err != nil {
			return err
		}
		out[r] = t
		return nil
	}
	if sel == nil {
		for r := 0; r < n; r++ {
			if err := cellCmp(r); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range sel {
		if err := cellCmp(r); err != nil {
			return err
		}
	}
	return nil
}
