package exec

import (
	"math"

	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/storage"
	"github.com/mahif/mahif/internal/types"
)

// fusedAnd is a conjunction whose legs are all column-vs-constant
// comparisons: the workload shape of selection bands like
// lo <= a AND a < hi. The generic And combinator materializes a rest
// selection per connective so the right operand only runs where the
// left was undecided — necessary in general, because an operand may
// error. When every leg is a typed-lane comparison the legs are total
// (a comparison on an int/float/string lane cannot error), so the
// conjunction can be evaluated eagerly leg-over-leg with three-valued
// combining in a single output pass, no rest selections and no
// intermediate truth vectors. Lane applicability is re-checked per
// batch; any off-domain lane (boxed, mismatched, NaN cell) falls back
// to the generic lazy combinator for oracle-exact error behavior.
type fusedAnd struct {
	legs    []fusedLeg
	generic vecCondFn
}

type fusedLeg struct {
	idx     int      // column index
	lut     [3]truth // truth by ordered-compare outcome
	numeric bool     // constant is numeric (lane must be int/float); else string
	cf      float64
	cs      string
	ip      intCmpPlan // precomputed integer-threshold form for int lanes
}

// intCmpPlan is the integer-threshold form of a comparison against a
// numeric constant: float64(a) OP cf reduced to lo <= a <= hi (truth
// tIn inside the range, tOut outside). float64() over int64 is
// monotone non-decreasing, so every OP's satisfying set is an interval
// of int64 — including beyond 2^53, where several integers round to
// one float. The reduction replaces a convert, two float compares, and
// a table load per cell with two integer compares, and is exact for
// every int64 (the interval ends come from a binary search of the
// rounding function itself, not from a float round-trip).
type intCmpPlan struct {
	lo, hi    int64
	tIn, tOut truth
}

func (pl *intCmpPlan) truthOf(a int64) truth {
	if a >= pl.lo && a <= pl.hi {
		return pl.tIn
	}
	return pl.tOut
}

// intCmpPlanFor builds the plan; ok is false for ops outside the LUT
// domain. cf must not be NaN.
func intCmpPlanFor(op expr.CmpOp, cf float64) (intCmpPlan, bool) {
	const minI, maxI = int64(math.MinInt64), int64(math.MaxInt64)
	empty := func(tIn, tOut truth) intCmpPlan { return intCmpPlan{lo: 1, hi: 0, tIn: tIn, tOut: tOut} }
	switch op {
	case expr.CmpGe, expr.CmpLt:
		tIn, tOut := tTrue, tFalse
		if op == expr.CmpLt {
			tIn, tOut = tFalse, tTrue
		}
		if g, ok := minIntGe(cf); ok {
			return intCmpPlan{lo: g, hi: maxI, tIn: tIn, tOut: tOut}, true
		}
		return empty(tIn, tOut), true
	case expr.CmpLe, expr.CmpGt:
		tIn, tOut := tTrue, tFalse
		if op == expr.CmpGt {
			tIn, tOut = tFalse, tTrue
		}
		if g, ok := maxIntLe(cf); ok {
			return intCmpPlan{lo: minI, hi: g, tIn: tIn, tOut: tOut}, true
		}
		return empty(tIn, tOut), true
	case expr.CmpEq, expr.CmpNe:
		tIn, tOut := tTrue, tFalse
		if op == expr.CmpNe {
			tIn, tOut = tFalse, tTrue
		}
		lo, ok1 := minIntGe(cf)
		hi, ok2 := maxIntLe(cf)
		if !ok1 || !ok2 || lo > hi {
			return empty(tIn, tOut), true
		}
		return intCmpPlan{lo: lo, hi: hi, tIn: tIn, tOut: tOut}, true
	}
	return intCmpPlan{}, false
}

// minIntGe returns the smallest int64 a with float64(a) >= cf, ok
// false when no int64 satisfies it. Binary search over the full int64
// domain on the monotone predicate — immune to rounding plateaus.
func minIntGe(cf float64) (int64, bool) {
	if float64(int64(math.MaxInt64)) < cf {
		return 0, false
	}
	lo, hi := int64(math.MinInt64), int64(math.MaxInt64)
	for lo < hi {
		mid := int64(uint64(lo) + (uint64(hi)-uint64(lo))/2)
		if float64(mid) >= cf {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, true
}

// maxIntLe is the mirror: the largest int64 a with float64(a) <= cf.
func maxIntLe(cf float64) (int64, bool) {
	if float64(int64(math.MinInt64)) > cf {
		return 0, false
	}
	lo, hi := int64(math.MinInt64), int64(math.MaxInt64)
	for lo < hi {
		// Upper midpoint via d/2 + d&1 — (d+1)/2 would overflow when
		// the window spans the whole int64 domain.
		d := uint64(hi) - uint64(lo)
		mid := int64(uint64(lo) + d/2 + d&1)
		if float64(mid) <= cf {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo, true
}

// recognizeFusedAnd flattens an And tree into comparison legs, or
// returns nil when any leaf is not a LUT-able column-vs-constant
// comparison.
func recognizeFusedAnd(x *expr.And, s *schema.Schema) *fusedAnd {
	var legs []fusedLeg
	var walk func(e expr.Expr) bool
	walk = func(e expr.Expr) bool {
		switch n := e.(type) {
		case *expr.And:
			return walk(n.L) && walk(n.R)
		case *expr.Cmp:
			col, c, constOnRight := splitColConst(n.L, n.R)
			if col == nil {
				return false
			}
			op := n.Op
			if !constOnRight {
				op = op.Flip()
			}
			lut, ok := cmpTruthLUT(op)
			if !ok {
				return false
			}
			idx := s.ColIndex(col.Name)
			if idx < 0 {
				return false
			}
			cv := c.V
			switch {
			case cv.IsNumeric():
				cf := cv.AsFloat()
				if math.IsNaN(cf) {
					return false
				}
				ip, ipOK := intCmpPlanFor(op, cf)
				if !ipOK {
					return false
				}
				legs = append(legs, fusedLeg{idx: idx, lut: lut, numeric: true, cf: cf, ip: ip})
			case cv.Kind() == types.KindString:
				legs = append(legs, fusedLeg{idx: idx, lut: lut, cs: cv.AsString()})
			default:
				return false
			}
			return true
		}
		return false
	}
	if !walk(x.L) || !walk(x.R) {
		return nil
	}
	return &fusedAnd{legs: legs}
}

// eval runs the fused conjunction, or delegates the whole batch to the
// generic combinator when a leg's lane is outside the typed domain.
// Eager evaluation is observably identical to the interpreter's lazy
// order here because applicable legs cannot error and three-valued AND
// is commutative.
func (f *fusedAnd) eval(p *vecPool, b *batch, sel []int, out []truth) error {
	for i := range f.legs {
		k := b.cols[f.legs[i].idx].Kind
		if f.legs[i].numeric {
			if k != types.KindInt && k != types.KindFloat {
				return f.generic(p, b, sel, out)
			}
		} else if k != types.KindString {
			return f.generic(p, b, sel, out)
		}
	}
	for li := range f.legs {
		lg := &f.legs[li]
		c := &b.cols[lg.idx]
		first := li == 0
		ok := true
		switch c.Kind {
		case types.KindInt:
			lg.runInt(c, b.n, sel, out, first)
		case types.KindFloat:
			ok = lg.runFloat(c, b.n, sel, out, first)
		case types.KindString:
			lg.runStr(c, b.n, sel, out, first)
		}
		if !ok {
			// A NaN cell (outside the value domain, but constructible):
			// re-run the whole batch on the generic path, which
			// reproduces the oracle's delegation exactly.
			return f.generic(p, b, sel, out)
		}
	}
	return nil
}

// Combining rule inside the leg loops: rows already decided tFalse are
// skipped; on the surviving rows (tTrue or tNull so far) a tFalse or
// tNull leg result overwrites, a tTrue leg result preserves — exactly
// three-valued AND with FALSE dominating NULL.

func (lg *fusedLeg) runInt(c *storage.ColVec, n int, sel []int, out []truth, first bool) {
	ints, nulls := c.Ints, c.Nulls
	lo, hi, tIn, tOut := lg.ip.lo, lg.ip.hi, lg.ip.tIn, lg.ip.tOut
	// The null-free loops are written out per (first, sel) shape: this
	// is the hottest kernel of reenactment WHERE evaluation, and the
	// shared-closure form costs more than the two compares it wraps.
	if nulls == nil {
		switch {
		case first && sel == nil:
			for r := 0; r < n; r++ {
				t := tOut
				if a := ints[r]; a >= lo && a <= hi {
					t = tIn
				}
				out[r] = t
			}
		case first:
			for _, r := range sel {
				t := tOut
				if a := ints[r]; a >= lo && a <= hi {
					t = tIn
				}
				out[r] = t
			}
		case sel == nil:
			for r := 0; r < n; r++ {
				if out[r] == tFalse {
					continue
				}
				t := tOut
				if a := ints[r]; a >= lo && a <= hi {
					t = tIn
				}
				if t != tTrue {
					out[r] = t
				}
			}
		default:
			for _, r := range sel {
				if out[r] == tFalse {
					continue
				}
				t := tOut
				if a := ints[r]; a >= lo && a <= hi {
					t = tIn
				}
				if t != tTrue {
					out[r] = t
				}
			}
		}
		return
	}
	one := func(r int) {
		if !first && out[r] == tFalse {
			return
		}
		t := tNull
		if !nulls[r] {
			a := ints[r]
			t = tOut
			if a >= lo && a <= hi {
				t = tIn
			}
		}
		if first || t != tTrue {
			out[r] = t
		}
	}
	if sel == nil {
		for r := 0; r < n; r++ {
			one(r)
		}
	} else {
		for _, r := range sel {
			one(r)
		}
	}
}

func (lg *fusedLeg) runFloat(c *storage.ColVec, n int, sel []int, out []truth, first bool) bool {
	fs, nulls, lut, cf := c.Floats, c.Nulls, lg.lut, lg.cf
	one := func(r int) bool {
		if !first && out[r] == tFalse {
			return true
		}
		t := tNull
		if nulls == nil || !nulls[r] {
			f := fs[r]
			if math.IsNaN(f) {
				return false
			}
			t = lut[orderAgainst(f, cf)]
		}
		if first || t != tTrue {
			out[r] = t
		}
		return true
	}
	if sel == nil {
		for r := 0; r < n; r++ {
			if !one(r) {
				return false
			}
		}
	} else {
		for _, r := range sel {
			if !one(r) {
				return false
			}
		}
	}
	return true
}

func (lg *fusedLeg) runStr(c *storage.ColVec, n int, sel []int, out []truth, first bool) {
	strs, nulls, lut, cs := c.Strs, c.Nulls, lg.lut, lg.cs
	one := func(r int) {
		if !first && out[r] == tFalse {
			return
		}
		t := tNull
		if nulls == nil || !nulls[r] {
			t = lut[orderStrings(strs[r], cs)]
		}
		if first || t != tTrue {
			out[r] = t
		}
	}
	if sel == nil {
		for r := 0; r < n; r++ {
			one(r)
		}
	} else {
		for _, r := range sel {
			one(r)
		}
	}
}
