package exec

import (
	"testing"

	"github.com/mahif/mahif/internal/algebra"
	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/storage"
	"github.com/mahif/mahif/internal/types"
)

// buildSideDB: big(k,v) with 40 rows (duplicate and NULL keys), small(k2,w)
// with 3 rows.
func buildSideDB(t *testing.T) *storage.Database {
	t.Helper()
	db := storage.NewDatabase()
	big := storage.NewRelation(schema.New("big",
		schema.Col("k", types.KindInt),
		schema.Col("v", types.KindInt),
	))
	for i := 0; i < 40; i++ {
		k := types.Value(types.Int(int64(i % 5)))
		if i%11 == 0 {
			k = types.Null()
		}
		big.Add(schema.NewTuple(k, types.Int(int64(i))))
	}
	db.AddRelation(big)
	small := storage.NewRelation(schema.New("small",
		schema.Col("k2", types.KindInt),
		schema.Col("w", types.KindInt),
	))
	small.Add(
		schema.NewTuple(types.Int(1), types.Int(100)),
		schema.NewTuple(types.Int(2), types.Int(200)),
		schema.NewTuple(types.Int(2), types.Int(201)), // duplicate key
	)
	db.AddRelation(small)
	return db
}

func joinQuery(t *testing.T, l, r string) *algebra.Join {
	t.Helper()
	cond := expr.Eq(expr.Column("k"), expr.Column("k2"))
	lq, rq := algebra.Query(&algebra.Scan{Rel: l}), algebra.Query(&algebra.Scan{Rel: r})
	return &algebra.Join{L: lq, R: rq, Cond: cond}
}

// TestBuildSideSelection pins the compile-time choice: the hash join
// builds on whichever input the snapshot row counts say is smaller.
func TestBuildSideSelection(t *testing.T) {
	db := buildSideDB(t)

	smallLeft := joinQuery(t, "small", "big")
	n, _, err := compileNode(smallLeft, db)
	if err != nil {
		t.Fatal(err)
	}
	hj, ok := n.(*hashJoinNode)
	if !ok {
		t.Fatalf("expected hash join, got %T", n)
	}
	if !hj.buildLeft {
		t.Fatalf("small left input: expected buildLeft")
	}

	bigLeft := joinQuery(t, "big", "small")
	n, _, err = compileNode(bigLeft, db)
	if err != nil {
		t.Fatal(err)
	}
	if hj := n.(*hashJoinNode); hj.buildLeft {
		t.Fatalf("small right input: expected right build")
	}

	vn, _, err := compileVecNode(smallLeft, db, vecConfig{bs: 4})
	if err != nil {
		t.Fatal(err)
	}
	vhj, ok := vn.(*vhashJoinNode)
	if !ok {
		t.Fatalf("expected vectorized hash join, got %T", vn)
	}
	if !vhj.buildLeft {
		t.Fatalf("vectorized small left input: expected buildLeft")
	}
}

// TestBuildLeftMatchesInterpreterOrder requires the left-build hash
// join — in both compiled executors — to reproduce the interpreter's
// exact output: same tuples, same order, across duplicates and NULL
// keys, including under filters stacked on the join output.
func TestBuildLeftMatchesInterpreterOrder(t *testing.T) {
	db := buildSideDB(t)
	queries := map[string]algebra.Query{
		"small-left": joinQuery(t, "small", "big"),
		"big-left":   joinQuery(t, "big", "small"),
		"filtered": &algebra.Select{
			Cond: &expr.Cmp{Op: expr.CmpGe, L: expr.Column("v"), R: expr.IntConst(10)},
			In:   joinQuery(t, "small", "big"),
		},
		"unioned-build": &algebra.Join{
			// Left estimate = 3 + 3 < 40: union feeds the build side.
			L:    &algebra.Union{L: &algebra.Scan{Rel: "small"}, R: &algebra.Scan{Rel: "small"}},
			R:    &algebra.Scan{Rel: "big"},
			Cond: expr.Eq(expr.Column("k"), expr.Column("k2")),
		},
	}
	for name, q := range queries {
		want, err := algebra.Eval(q, db)
		if err != nil {
			t.Fatalf("%s: interpreter: %v", name, err)
		}
		for _, bs := range []int{1, 2, 7, 1024} {
			prog, err := CompileVec(q, db, VecOptions{BatchSize: bs})
			if err != nil {
				t.Fatalf("%s: compile vec: %v", name, err)
			}
			got, err := prog.Run(db)
			if err != nil {
				t.Fatalf("%s: run vec bs=%d: %v", name, bs, err)
			}
			assertExactOrder(t, name, got, want)
		}
		prog, err := Compile(q, db)
		if err != nil {
			t.Fatalf("%s: compile: %v", name, err)
		}
		got, err := prog.Run(db)
		if err != nil {
			t.Fatalf("%s: run: %v", name, err)
		}
		assertExactOrder(t, name, got, want)
	}
}

func assertExactOrder(t *testing.T, name string, got, want *storage.Relation) {
	t.Helper()
	if len(got.Tuples) != len(want.Tuples) {
		t.Fatalf("%s: %d tuples, want %d", name, len(got.Tuples), len(want.Tuples))
	}
	for i := range want.Tuples {
		if !got.Tuples[i].Equal(want.Tuples[i]) {
			t.Fatalf("%s: tuple %d = %s, want %s", name, i, got.Tuples[i], want.Tuples[i])
		}
	}
}
