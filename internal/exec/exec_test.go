package exec_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/mahif/mahif/internal/algebra"
	"github.com/mahif/mahif/internal/exec"
	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/history"
	"github.com/mahif/mahif/internal/reenact"
	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/sql"
	"github.com/mahif/mahif/internal/storage"
	"github.com/mahif/mahif/internal/types"
)

// testDB builds two relations r(k,v,g) and s2(k2,w) with a few NULLs
// and duplicates, the shapes the multiset and join paths must handle.
func testDB() *storage.Database {
	db := storage.NewDatabase()
	r := storage.NewRelation(schema.New("r",
		schema.Col("k", types.KindInt),
		schema.Col("v", types.KindInt),
		schema.Col("g", types.KindString),
	))
	r.Add(
		schema.NewTuple(types.Int(1), types.Int(10), types.String("a")),
		schema.NewTuple(types.Int(2), types.Int(20), types.String("b")),
		schema.NewTuple(types.Int(2), types.Int(20), types.String("b")), // duplicate
		schema.NewTuple(types.Int(3), types.Null(), types.String("a")),
		schema.NewTuple(types.Null(), types.Int(40), types.String("c")),
		schema.NewTuple(types.Int(5), types.Int(50), types.String("c")),
	)
	db.AddRelation(r)
	s2 := storage.NewRelation(schema.New("s2",
		schema.Col("k2", types.KindInt),
		schema.Col("w", types.KindFloat),
	))
	s2.Add(
		schema.NewTuple(types.Int(1), types.Float(1.5)),
		schema.NewTuple(types.Int(2), types.Float(2.5)),
		schema.NewTuple(types.Int(2), types.Float(2.75)),
		schema.NewTuple(types.Null(), types.Float(9.9)),
	)
	db.AddRelation(s2)
	return db
}

func mustCond(t testing.TB, src string) expr.Expr {
	t.Helper()
	c, err := sql.ParseCondition(src)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// testQueries is the battery of plan shapes: fused σ/Π chains, unions
// with singletons, differences, equi- and theta-joins, and nested
// combinations.
func testQueries(t testing.TB, db *storage.Database) map[string]algebra.Query {
	t.Helper()
	rSch, _ := algebra.OutputSchema(&algebra.Scan{Rel: "r"}, db)
	scanR := func() algebra.Query { return &algebra.Scan{Rel: "r"} }
	scanS := func() algebra.Query { return &algebra.Scan{Rel: "s2"} }

	// A reenactment-shaped chain: Π(σ(Π(Π(scan)))) — one generalized
	// projection per UPDATE, a negated selection per DELETE.
	chain := algebra.Query(scanR())
	for i := 0; i < 4; i++ {
		cond := mustCond(t, fmt.Sprintf("v >= %d", 10*i))
		exprs := algebra.IdentityProjection(rSch)
		exprs[1].E = expr.IfThenElse(cond, expr.Add(expr.Column("v"), expr.IntConst(int64(i+1))), expr.Column("v"))
		chain = &algebra.Project{Exprs: exprs, In: chain}
		if i == 2 {
			chain = &algebra.Select{Cond: expr.Negation(mustCond(t, "k = 2 AND g = 'b'")), In: chain}
		}
	}

	sing := &algebra.Singleton{Sch: rSch, Tuples: []schema.Tuple{
		schema.NewTuple(types.Int(100), types.Int(1), types.String("z")),
		schema.NewTuple(types.Int(2), types.Int(20), types.String("b")),
	}}

	return map[string]algebra.Query{
		"scan":          scanR(),
		"select":        &algebra.Select{Cond: mustCond(t, "v > 15 OR g = 'a'"), In: scanR()},
		"select-null":   &algebra.Select{Cond: mustCond(t, "k IS NULL OR NOT (v < 30)"), In: scanR()},
		"project":       &algebra.Project{Exprs: []algebra.NamedExpr{{Name: "k", E: expr.Column("k")}, {Name: "x", E: expr.Mul(expr.Column("v"), expr.IntConst(2))}}, In: scanR()},
		"fused-chain":   chain,
		"union":         &algebra.Union{L: scanR(), R: sing},
		"difference":    &algebra.Difference{L: &algebra.Union{L: scanR(), R: sing}, R: scanR()},
		"diff-dups":     &algebra.Difference{L: scanR(), R: sing},
		"equi-join":     &algebra.Join{L: scanR(), R: scanS(), Cond: mustCond(t, "k = k2")},
		"equi-residual": &algebra.Join{L: scanR(), R: scanS(), Cond: mustCond(t, "k = k2 AND w > 2")},
		"theta-join":    &algebra.Join{L: scanR(), R: scanS(), Cond: mustCond(t, "k < k2")},
		"join-of-chain": &algebra.Join{L: chain, R: scanS(), Cond: mustCond(t, "k = k2")},
		"nested": &algebra.Difference{
			L: &algebra.Select{Cond: mustCond(t, "v >= 10"), In: &algebra.Union{L: scanR(), R: sing}},
			R: &algebra.Select{Cond: mustCond(t, "g = 'b'"), In: scanR()},
		},
	}
}

// TestCompiledMatchesInterpreter requires the compiled executor to
// produce the interpreter's exact output — same tuples, same order —
// on every plan shape.
func TestCompiledMatchesInterpreter(t *testing.T) {
	db := testDB()
	for name, q := range testQueries(t, db) {
		t.Run(name, func(t *testing.T) {
			want, err := algebra.Eval(q, db)
			if err != nil {
				t.Fatalf("interpreter: %v", err)
			}
			got, err := exec.Eval(q, db)
			if err != nil {
				t.Fatalf("compiled: %v", err)
			}
			if !got.Schema.Equal(want.Schema) {
				t.Fatalf("schema %s, want %s", got.Schema, want.Schema)
			}
			if len(got.Tuples) != len(want.Tuples) {
				t.Fatalf("%d tuples, want %d\ngot:\n%s\nwant:\n%s", len(got.Tuples), len(want.Tuples), got, want)
			}
			for i := range want.Tuples {
				if !got.Tuples[i].Equal(want.Tuples[i]) {
					t.Fatalf("tuple %d = %s, want %s", i, got.Tuples[i], want.Tuples[i])
				}
			}
		})
	}
}

// TestReenactmentChainEquivalence runs a full reenactment query built
// from a parsed history — the production shape — through both
// executors.
func TestReenactmentChainEquivalence(t *testing.T) {
	db := testDB()
	var h history.History
	for _, src := range []string{
		`UPDATE r SET v = v + 1 WHERE k >= 2`,
		`INSERT INTO r VALUES (7, 70, 'd'), (8, 80, 'd')`,
		`DELETE FROM r WHERE g = 'c'`,
		`UPDATE r SET v = 0, k = k + 1 WHERE v > 50`,
		`INSERT INTO r SELECT k2, 0, 'q' FROM s2 WHERE w > 2`,
		`UPDATE r SET v = v * 2 WHERE g = 'd' OR v IS NULL`,
	} {
		h = append(h, sql.MustParseStatement(src))
	}
	qs, err := reenact.Queries(h, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	q := qs["r"]
	want, err := algebra.Eval(q, db)
	if err != nil {
		t.Fatal(err)
	}
	got, err := exec.Eval(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if !want.EqualAsBag(got) {
		t.Fatalf("reenactment mismatch\ninterpreter:\n%s\ncompiled:\n%s", want, got)
	}
	if len(want.Tuples) != len(got.Tuples) {
		t.Fatalf("cardinality mismatch %d vs %d", len(want.Tuples), len(got.Tuples))
	}
}

// TestProgramReuseAndConcurrency compiles once and runs the program
// many times concurrently: results must be identical (Run keeps all
// scratch state per run).
func TestProgramReuseAndConcurrency(t *testing.T) {
	db := testDB()
	for name, q := range testQueries(t, db) {
		prog, err := exec.Compile(q, db)
		if err != nil {
			t.Fatalf("%s: compile: %v", name, err)
		}
		want, err := prog.Run(db)
		if err != nil {
			t.Fatalf("%s: run: %v", name, err)
		}
		var wg sync.WaitGroup
		errs := make([]error, 8)
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				got, err := prog.Run(db)
				if err != nil {
					errs[i] = err
					return
				}
				if !got.EqualAsBag(want) {
					errs[i] = fmt.Errorf("concurrent run diverged")
				}
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
	}
}

// TestRunDoesNotMutateSharedTuples guards the scan aliasing invariant:
// compiled plans share base-relation tuples and must never write to
// them (the batch engine's shared snapshots depend on it).
func TestRunDoesNotMutateSharedTuples(t *testing.T) {
	db := testDB()
	before := map[string][]schema.Tuple{}
	for _, name := range db.RelationNames() {
		r, _ := db.Relation(name)
		for _, tp := range r.Tuples {
			before[name] = append(before[name], tp.Clone())
		}
	}
	for name, q := range testQueries(t, db) {
		if _, err := exec.Eval(q, db); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	for _, name := range db.RelationNames() {
		r, _ := db.Relation(name)
		for i, tp := range r.Tuples {
			if !tp.Equal(before[name][i]) {
				t.Fatalf("relation %s tuple %d mutated: %s, was %s", name, i, tp, before[name][i])
			}
		}
	}
}

// TestCompileRejectsSymbolic ensures the fallback path triggers for
// expressions outside the executable subset.
func TestCompileRejectsSymbolic(t *testing.T) {
	db := testDB()
	q := &algebra.Select{Cond: expr.Eq(expr.Variable("x0"), expr.IntConst(1)), In: &algebra.Scan{Rel: "r"}}
	if _, err := exec.Compile(q, db); err == nil {
		t.Fatal("expected compile error for symbolic variable")
	}
	q2 := &algebra.Select{Cond: expr.Eq(expr.Column("nope"), expr.IntConst(1)), In: &algebra.Scan{Rel: "r"}}
	if _, err := exec.Compile(q2, db); err == nil {
		t.Fatal("expected compile error for unknown column")
	}
}

// TestJoinLargeIntKeys pins the = operator's numeric widening: 2^53
// and 2^53+1 are distinct int64s but identical float64s, and the
// interpreter's equality (Compare, via AsFloat) joins them. The hash
// join's key equality must widen the same way.
func TestJoinLargeIntKeys(t *testing.T) {
	db := storage.NewDatabase()
	a := storage.NewRelation(schema.New("a", schema.Col("x", types.KindInt)))
	a.Add(schema.NewTuple(types.Int(1 << 53)))
	db.AddRelation(a)
	b := storage.NewRelation(schema.New("b", schema.Col("y", types.KindInt)))
	b.Add(schema.NewTuple(types.Int(1<<53 + 1)))
	db.AddRelation(b)
	q := &algebra.Join{L: &algebra.Scan{Rel: "a"}, R: &algebra.Scan{Rel: "b"},
		Cond: expr.Eq(expr.Column("x"), expr.Column("y"))}
	want, err := algebra.Eval(q, db)
	if err != nil {
		t.Fatal(err)
	}
	got, err := exec.Eval(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Tuples) != len(want.Tuples) {
		t.Fatalf("compiled joined %d rows, interpreter %d", len(got.Tuples), len(want.Tuples))
	}
}

// TestJoinResidualErrorParity pins why residual conjuncts force the
// nested-loop path: the interpreter evaluates the whole condition on
// NULL-key pairs too (a NULL equality does not short-circuit its AND),
// so an erroring residual must error in both executors.
func TestJoinResidualErrorParity(t *testing.T) {
	db := testDB() // r has a NULL k row; v is int
	q := &algebra.Join{L: &algebra.Scan{Rel: "r"}, R: &algebra.Scan{Rel: "s2"},
		Cond: expr.AndOf(
			expr.Eq(expr.Column("k"), expr.Column("k2")),
			expr.Gt(expr.Column("v"), expr.StringConst("x")), // int > string: type error
		)}
	_, errI := algebra.Eval(q, db)
	_, errC := exec.Eval(q, db)
	if (errI == nil) != (errC == nil) {
		t.Fatalf("error divergence: interpreter=%v compiled=%v", errI, errC)
	}
	if errI == nil {
		t.Fatal("expected a type error from both executors")
	}
}

// TestRandomizedPlans cross-validates the executors over randomly
// generated plans.
func TestRandomizedPlans(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := testDB()
	rSch, _ := algebra.OutputSchema(&algebra.Scan{Rel: "r"}, db)
	var build func(depth int) algebra.Query
	build = func(depth int) algebra.Query {
		if depth <= 0 {
			return &algebra.Scan{Rel: "r"}
		}
		switch rng.Intn(5) {
		case 0:
			cond := mustCond(t, fmt.Sprintf("v %s %d", []string{">", "<=", "="}[rng.Intn(3)], rng.Intn(60)))
			return &algebra.Select{Cond: cond, In: build(depth - 1)}
		case 1:
			exprs := algebra.IdentityProjection(rSch)
			exprs[rng.Intn(2)].E = expr.IfThenElse(
				mustCond(t, fmt.Sprintf("k >= %d", rng.Intn(5))),
				expr.Add(expr.Column("v"), expr.IntConst(int64(rng.Intn(9)))),
				expr.Column("v"))
			return &algebra.Project{Exprs: exprs, In: build(depth - 1)}
		case 2:
			return &algebra.Union{L: build(depth - 1), R: build(depth - 1)}
		case 3:
			return &algebra.Difference{L: build(depth - 1), R: build(depth - 1)}
		default:
			return &algebra.Select{Cond: mustCond(t, "g = 'a' OR g = 'b'"), In: build(depth - 1)}
		}
	}
	trials := 60
	if testing.Short() {
		trials = 15
	}
	for i := 0; i < trials; i++ {
		q := build(2 + rng.Intn(3))
		want, errW := algebra.Eval(q, db)
		got, errG := exec.Eval(q, db)
		if (errW == nil) != (errG == nil) {
			t.Fatalf("trial %d: error divergence: interpreter=%v compiled=%v\n%s", i, errW, errG, q)
		}
		if errW != nil {
			continue
		}
		if !want.EqualAsBag(got) {
			t.Fatalf("trial %d: mismatch on %s\ninterpreter:\n%s\ncompiled:\n%s", i, q, want, got)
		}
	}
}
