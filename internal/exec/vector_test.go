package exec_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/mahif/mahif/internal/algebra"
	"github.com/mahif/mahif/internal/exec"
	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/history"
	"github.com/mahif/mahif/internal/reenact"
	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/sql"
	"github.com/mahif/mahif/internal/storage"
	"github.com/mahif/mahif/internal/types"
)

// requireSameRelation asserts exact equality — same schema, same
// tuples, same order. The vectorized executor (parallel scans included:
// the merge stage emits partitions in order) preserves the
// interpreter's output order, so no bag-level slack is needed.
func requireSameRelation(t *testing.T, label string, want, got *storage.Relation) {
	t.Helper()
	if !got.Schema.Equal(want.Schema) {
		t.Fatalf("%s: schema %s, want %s", label, got.Schema, want.Schema)
	}
	if len(got.Tuples) != len(want.Tuples) {
		t.Fatalf("%s: %d tuples, want %d\ngot:\n%s\nwant:\n%s", label, len(got.Tuples), len(want.Tuples), got, want)
	}
	for i := range want.Tuples {
		if !got.Tuples[i].Equal(want.Tuples[i]) {
			t.Fatalf("%s: tuple %d = %s, want %s", label, i, got.Tuples[i], want.Tuples[i])
		}
	}
}

// TestVectorizedMatchesInterpreter runs the full plan-shape battery
// (fused chains, unions, differences, joins, nested combinations) and
// requires the vectorized executor to produce the interpreter's exact
// output.
func TestVectorizedMatchesInterpreter(t *testing.T) {
	db := testDB()
	for name, q := range testQueries(t, db) {
		t.Run(name, func(t *testing.T) {
			want, err := algebra.Eval(q, db)
			if err != nil {
				t.Fatalf("interpreter: %v", err)
			}
			got, err := exec.EvalVec(q, db)
			if err != nil {
				t.Fatalf("vectorized: %v", err)
			}
			requireSameRelation(t, name, want, got)
		})
	}
}

// boundaryDB builds a relation with exactly rows tuples, deterministic
// contents, some NULLs.
func boundaryDB(rows int) *storage.Database {
	db := storage.NewDatabase()
	r := storage.NewRelation(schema.New("t",
		schema.Col("k", types.KindInt),
		schema.Col("v", types.KindInt),
		schema.Col("g", types.KindString),
	))
	groups := []string{"a", "b", "c", "d"}
	for i := 0; i < rows; i++ {
		v := types.Value(types.Int(int64(i % 997)))
		if i%41 == 0 {
			v = types.Null()
		}
		r.Add(schema.NewTuple(types.Int(int64(i)), v, types.String(groups[i%len(groups)])))
	}
	db.AddRelation(r)
	return db
}

// boundaryQueries are the shapes whose batch handling has edges: empty
// output, all-filtered batches, selection-narrowed projections, and
// multiset operators fed partial batches.
func boundaryQueries(t *testing.T, db *storage.Database) map[string]algebra.Query {
	t.Helper()
	tSch, err := algebra.OutputSchema(&algebra.Scan{Rel: "t"}, db)
	if err != nil {
		t.Fatal(err)
	}
	scan := func() algebra.Query { return &algebra.Scan{Rel: "t"} }
	updExprs := algebra.IdentityProjection(tSch)
	updExprs[1].E = expr.IfThenElse(mustCond(t, "v >= 100"),
		expr.Add(expr.Column("v"), expr.IntConst(7)), expr.Column("v"))
	return map[string]algebra.Query{
		"scan":         scan(),
		"all-filtered": &algebra.Select{Cond: mustCond(t, "v < 0"), In: scan()},
		"all-pass":     &algebra.Select{Cond: mustCond(t, "k >= 0"), In: scan()},
		"half":         &algebra.Select{Cond: mustCond(t, "v < 498"), In: scan()},
		"update-chain": &algebra.Project{Exprs: updExprs,
			In: &algebra.Select{Cond: mustCond(t, "g = 'a' OR g = 'b' OR v IS NULL"), In: scan()}},
		"self-diff": &algebra.Difference{L: scan(), R: &algebra.Select{Cond: mustCond(t, "g = 'c'"), In: scan()}},
		"self-join": &algebra.Project{
			Exprs: []algebra.NamedExpr{{Name: "k", E: expr.Column("k")}},
			In:    &algebra.Select{Cond: mustCond(t, "v = 3"), In: scan()},
		},
	}
}

// TestVectorizedBatchBoundaries sweeps relation sizes around the batch
// size — 0, 1, 1023, 1024, 1025 rows, plus a multi-batch size — across
// the boundary query shapes, comparing all three executors exactly.
// The all-filtered shape drives whole batches to an empty selection
// (they must vanish, not emit empty batches or stale rows).
func TestVectorizedBatchBoundaries(t *testing.T) {
	for _, rows := range []int{0, 1, 1023, 1024, 1025, 3*1024 + 17} {
		db := boundaryDB(rows)
		for name, q := range boundaryQueries(t, db) {
			label := fmt.Sprintf("N%d/%s", rows, name)
			want, err := algebra.Eval(q, db)
			if err != nil {
				t.Fatalf("%s: interpreter: %v", label, err)
			}
			compiled, err := exec.Eval(q, db)
			if err != nil {
				t.Fatalf("%s: compiled: %v", label, err)
			}
			requireSameRelation(t, label+"/compiled", want, compiled)
			vec, err := exec.EvalVec(q, db)
			if err != nil {
				t.Fatalf("%s: vectorized: %v", label, err)
			}
			requireSameRelation(t, label+"/vectorized", want, vec)
		}
	}
}

// TestVectorizedErrorParity pins per-row lazy evaluation: conditional
// branches and short-circuited connective operands must evaluate over
// exactly the rows the interpreter evaluates them on, so an expression
// that errors on untaken rows errors in neither executor — and one that
// errors on a reachable row errors in both.
func TestVectorizedErrorParity(t *testing.T) {
	build := func(vals ...int64) *storage.Database {
		db := storage.NewDatabase()
		r := storage.NewRelation(schema.New("t",
			schema.Col("k", types.KindInt),
			schema.Col("v", types.KindInt),
		))
		for i, v := range vals {
			r.Add(schema.NewTuple(types.Int(int64(i)), types.Int(v)))
		}
		db.AddRelation(r)
		return db
	}
	divByV := expr.Gt(expr.Div(expr.IntConst(100), expr.Column("v")), expr.IntConst(0))
	cases := []struct {
		name string
		db   *storage.Database
		q    algebra.Query
	}{
		// OR short-circuit: 100/v only evaluates where v <= 0 fails… v>0
		// is true for all rows, so the erroring right operand is dead.
		{"or-shortcircuit-dead", build(1, 2, 3),
			&algebra.Select{Cond: expr.OrOf(mustCond(t, "v > 0"), divByV), In: &algebra.Scan{Rel: "t"}}},
		// …and live once a row fails the left operand.
		{"or-shortcircuit-live", build(1, 0, 3),
			&algebra.Select{Cond: expr.OrOf(mustCond(t, "v > 0"), divByV), In: &algebra.Scan{Rel: "t"}}},
		// AND short-circuit mirror.
		{"and-shortcircuit-dead", build(1, 2, 3),
			&algebra.Select{Cond: expr.AndOf(mustCond(t, "v < 0"), divByV), In: &algebra.Scan{Rel: "t"}}},
		// IF guards a division: the then-branch only runs where v != 0.
		{"if-guarded-div", build(5, 0, 7),
			&algebra.Project{Exprs: []algebra.NamedExpr{{Name: "x",
				E: expr.IfThenElse(mustCond(t, "v > 0"), expr.Div(expr.IntConst(100), expr.Column("v")), expr.IntConst(0)),
			}}, In: &algebra.Scan{Rel: "t"}}},
		// Unguarded division over a zero row errors everywhere.
		{"unguarded-div", build(5, 0, 7),
			&algebra.Project{Exprs: []algebra.NamedExpr{{Name: "x",
				E: expr.Div(expr.IntConst(100), expr.Column("v")),
			}}, In: &algebra.Scan{Rel: "t"}}},
		// Type error reachable behind a filter: rows that never pass the
		// filter must not be evaluated by downstream projections.
		{"filtered-type-error", build(1, 2, 3),
			&algebra.Project{Exprs: []algebra.NamedExpr{{Name: "x",
				E: expr.Add(expr.Column("v"), expr.StringConst("boom")),
			}}, In: &algebra.Select{Cond: mustCond(t, "v < 0"), In: &algebra.Scan{Rel: "t"}}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			want, errI := algebra.Eval(c.q, c.db)
			gotC, errC := exec.Eval(c.q, c.db)
			gotV, errV := exec.EvalVec(c.q, c.db)
			if (errI == nil) != (errC == nil) || (errI == nil) != (errV == nil) {
				t.Fatalf("error divergence: interpreter=%v compiled=%v vectorized=%v", errI, errC, errV)
			}
			if errI != nil {
				return
			}
			requireSameRelation(t, "compiled", want, gotC)
			requireSameRelation(t, "vectorized", want, gotV)
		})
	}
}

// parallelOptions forces partitioned parallel scans regardless of the
// host's CPU count, so the worker/merge machinery is exercised (and
// raced) even on a single-core CI runner.
var parallelOptions = exec.VecOptions{Workers: 4, MinParallelRows: 1}

// TestParallelScanMatchesSequential compiles the boundary battery with
// forced 4-way parallel scans and requires output identical to the
// interpreter — the ordered merge must reproduce the sequential order
// exactly, not just the bag.
func TestParallelScanMatchesSequential(t *testing.T) {
	for _, rows := range []int{1, 100, 1024, 3*1024 + 17} {
		db := boundaryDB(rows)
		for name, q := range boundaryQueries(t, db) {
			label := fmt.Sprintf("N%d/%s", rows, name)
			want, err := algebra.Eval(q, db)
			if err != nil {
				t.Fatalf("%s: interpreter: %v", label, err)
			}
			prog, err := exec.CompileVec(q, db, parallelOptions)
			if err != nil {
				t.Fatalf("%s: compile: %v", label, err)
			}
			got, err := prog.Run(db)
			if err != nil {
				t.Fatalf("%s: parallel run: %v", label, err)
			}
			requireSameRelation(t, label, want, got)
		}
	}
}

// TestParallelScanRaceStress hammers one compiled program with
// concurrent RunCtx calls over a shared snapshot while each run itself
// fans out scan workers — the -race job's witness that per-run state
// (chain scratch, pools, partition buffers) is never shared across
// runs, and that shared snapshots stay read-only under the parallel
// scan.
func TestParallelScanRaceStress(t *testing.T) {
	db := boundaryDB(2048)
	var h history.History
	for _, src := range []string{
		`UPDATE t SET v = v + 1 WHERE g = 'a'`,
		`DELETE FROM t WHERE v < 10 AND g = 'd'`,
		`UPDATE t SET v = 0 WHERE v >= 900`,
	} {
		h = append(h, sql.MustParseStatement(src))
	}
	vdb := storage.NewVersioned(db)
	for _, st := range h {
		if err := vdb.Apply(st); err != nil {
			t.Fatal(err)
		}
	}
	snaps := storage.NewSnapshotCache(vdb)
	snap, err := snaps.Snapshot(1) // a shared, read-only mid-history state
	if err != nil {
		t.Fatal(err)
	}
	for name, q := range boundaryQueries(t, snap) {
		prog, err := exec.CompileVec(q, snap, parallelOptions)
		if err != nil {
			t.Fatalf("%s: compile: %v", name, err)
		}
		want, err := prog.Run(snap)
		if err != nil {
			t.Fatalf("%s: run: %v", name, err)
		}
		var wg sync.WaitGroup
		errs := make([]error, 8)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 3; i++ {
					got, err := prog.RunCtx(context.Background(), snap)
					if err != nil {
						errs[g] = err
						return
					}
					if !got.EqualAsBag(want) {
						errs[g] = fmt.Errorf("concurrent parallel run diverged")
						return
					}
				}
			}(g)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
	}
}

// TestVectorizedCancelBetweenBatches proves cancellation is observed at
// batch granularity: a pre-cancelled context aborts a vectorized run
// over a relation far smaller than the tuple path's 4096-tuple tick
// cadence (where the compiled path would stream to completion without
// ever checking).
func TestVectorizedCancelBetweenBatches(t *testing.T) {
	db := boundaryDB(2*1024 + 50) // 3 batches, under one tuple-path tick
	q := &algebra.Select{Cond: mustCond(t, "v >= 0"), In: &algebra.Scan{Rel: "t"}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	prog, err := exec.CompileVec(q, db, exec.VecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.RunCtx(ctx, db); err != context.Canceled {
		t.Fatalf("sequential vectorized run under a cancelled ctx returned %v, want context.Canceled", err)
	}

	par, err := exec.CompileVec(q, db, parallelOptions)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := par.RunCtx(ctx, db); err != context.Canceled {
		t.Fatalf("parallel vectorized run under a cancelled ctx returned %v, want context.Canceled", err)
	}

	// Sanity: the same context still runs clean when not cancelled.
	if _, err := prog.RunCtx(context.Background(), db); err != nil {
		t.Fatalf("uncancelled run: %v", err)
	}
}

// TestVectorizedRandomizedPlans cross-validates all three executors
// over randomly generated plans (σ/Π/∪/− trees with NULL-bearing data).
func TestVectorizedRandomizedPlans(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	db := testDB()
	rSch, err := algebra.OutputSchema(&algebra.Scan{Rel: "r"}, db)
	if err != nil {
		t.Fatal(err)
	}
	var build func(depth int) algebra.Query
	build = func(depth int) algebra.Query {
		if depth <= 0 {
			return &algebra.Scan{Rel: "r"}
		}
		switch rng.Intn(6) {
		case 0:
			cond := mustCond(t, fmt.Sprintf("v %s %d", []string{">", "<=", "="}[rng.Intn(3)], rng.Intn(60)))
			return &algebra.Select{Cond: cond, In: build(depth - 1)}
		case 1:
			exprs := algebra.IdentityProjection(rSch)
			exprs[rng.Intn(2)].E = expr.IfThenElse(
				mustCond(t, fmt.Sprintf("k >= %d", rng.Intn(5))),
				expr.Add(expr.Column("v"), expr.IntConst(int64(rng.Intn(9)))),
				expr.Column("v"))
			return &algebra.Project{Exprs: exprs, In: build(depth - 1)}
		case 2:
			return &algebra.Union{L: build(depth - 1), R: build(depth - 1)}
		case 3:
			return &algebra.Difference{L: build(depth - 1), R: build(depth - 1)}
		case 4:
			return &algebra.Select{Cond: mustCond(t, "v IS NULL OR g = 'a'"), In: build(depth - 1)}
		default:
			return &algebra.Select{Cond: mustCond(t, "g = 'a' OR g = 'b'"), In: build(depth - 1)}
		}
	}
	trials := 80
	if testing.Short() {
		trials = 20
	}
	for i := 0; i < trials; i++ {
		q := build(2 + rng.Intn(3))
		want, errW := algebra.Eval(q, db)
		got, errG := exec.EvalVec(q, db)
		if (errW == nil) != (errG == nil) {
			t.Fatalf("trial %d: error divergence: interpreter=%v vectorized=%v\n%s", i, errW, errG, q)
		}
		if errW != nil {
			continue
		}
		requireSameRelation(t, fmt.Sprintf("trial %d: %s", i, q), want, got)
	}
}

// TestVectorizedRunDoesNotMutateSharedTuples extends the scan aliasing
// invariant to the vectorized paths (including parallel scans): base
// relation tuples flow into column batches and must never be written.
func TestVectorizedRunDoesNotMutateSharedTuples(t *testing.T) {
	db := testDB()
	before := map[string][]schema.Tuple{}
	for _, name := range db.RelationNames() {
		r, _ := db.Relation(name)
		for _, tp := range r.Tuples {
			before[name] = append(before[name], tp.Clone())
		}
	}
	for name, q := range testQueries(t, db) {
		if _, err := exec.EvalVec(q, db); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		prog, err := exec.CompileVec(q, db, parallelOptions)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := prog.Run(db); err != nil {
			t.Fatalf("%s: parallel: %v", name, err)
		}
	}
	for _, name := range db.RelationNames() {
		r, _ := db.Relation(name)
		for i, tp := range r.Tuples {
			if !tp.Equal(before[name][i]) {
				t.Fatalf("relation %s tuple %d mutated: %s, was %s", name, i, tp, before[name][i])
			}
		}
	}
}

// TestVectorizedReenactmentChain runs the production reenactment shape
// through the vectorized executor against both oracles.
func TestVectorizedReenactmentChain(t *testing.T) {
	db := testDB()
	var h history.History
	for _, src := range []string{
		`UPDATE r SET v = v + 1 WHERE k >= 2`,
		`INSERT INTO r VALUES (7, 70, 'd'), (8, 80, 'd')`,
		`DELETE FROM r WHERE g = 'c'`,
		`UPDATE r SET v = 0, k = k + 1 WHERE v > 50`,
		`INSERT INTO r SELECT k2, 0, 'q' FROM s2 WHERE w > 2`,
		`UPDATE r SET v = v * 2 WHERE g = 'd' OR v IS NULL`,
	} {
		h = append(h, sql.MustParseStatement(src))
	}
	qs, err := reenact.Queries(h, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	q := qs["r"]
	want, err := algebra.Eval(q, db)
	if err != nil {
		t.Fatal(err)
	}
	got, err := exec.EvalVec(q, db)
	if err != nil {
		t.Fatal(err)
	}
	requireSameRelation(t, "reenactment", want, got)
}

// TestFilterOverMultiBatchJoin is the regression test for a stale
// selection vector on reused join output batches: a filter (and a
// difference) consuming a join whose output spans several 1024-row
// batches writes b.sel onto the emitted batch, and the join's next
// flush must not carry that selection over. Before the fix, the second
// and later batches evaluated only the previous batch's selected rows.
func TestFilterOverMultiBatchJoin(t *testing.T) {
	const rows = 1600 // join output spans two 1024-row batches
	db := storage.NewDatabase()
	a := storage.NewRelation(schema.New("a", schema.Col("x", types.KindInt)))
	for i := 0; i < rows; i++ {
		a.Add(schema.NewTuple(types.Int(int64(i))))
	}
	db.AddRelation(a)
	bRel := storage.NewRelation(schema.New("b", schema.Col("y", types.KindInt), schema.Col("tag", types.KindString)))
	for i := 0; i < rows; i++ {
		bRel.Add(schema.NewTuple(types.Int(int64(i)), types.String([]string{"p", "q"}[i%2])))
	}
	db.AddRelation(bRel)
	join := &algebra.Join{L: &algebra.Scan{Rel: "a"}, R: &algebra.Scan{Rel: "b"},
		Cond: expr.Eq(expr.Column("x"), expr.Column("y"))}
	for name, q := range map[string]algebra.Query{
		"filter-over-hash-join": &algebra.Select{Cond: mustCond(t, "x > 600"), In: join},
		"diff-over-hash-join": &algebra.Difference{
			L: join,
			R: &algebra.Select{Cond: mustCond(t, "tag = 'p'"), In: join},
		},
		"filter-over-nl-join": &algebra.Select{Cond: mustCond(t, "x > 1200"),
			In: &algebra.Join{L: &algebra.Scan{Rel: "a"}, R: &algebra.Scan{Rel: "b"},
				Cond: mustCond(t, "x = y AND tag = 'q'")}},
	} {
		t.Run(name, func(t *testing.T) {
			want, err := algebra.Eval(q, db)
			if err != nil {
				t.Fatal(err)
			}
			got, err := exec.EvalVec(q, db)
			if err != nil {
				t.Fatal(err)
			}
			requireSameRelation(t, name, want, got)
		})
	}
}

// TestDifferenceArityMismatch pins the degenerate difference whose
// sides have different arities: no right tuple can equal a left tuple,
// so every executor must return the left bag unchanged (and certainly
// not panic or remove prefix-matching rows).
func TestDifferenceArityMismatch(t *testing.T) {
	db := storage.NewDatabase()
	wide := storage.NewRelation(schema.New("wide", schema.Col("x", types.KindInt), schema.Col("z", types.KindInt)))
	wide.Add(schema.NewTuple(types.Int(1), types.Int(10)), schema.NewTuple(types.Int(2), types.Int(20)))
	db.AddRelation(wide)
	narrow := storage.NewRelation(schema.New("narrow", schema.Col("x", types.KindInt)))
	narrow.Add(schema.NewTuple(types.Int(1)), schema.NewTuple(types.Int(2)))
	db.AddRelation(narrow)
	for name, q := range map[string]algebra.Query{
		"wide-minus-narrow": &algebra.Difference{L: &algebra.Scan{Rel: "wide"}, R: &algebra.Scan{Rel: "narrow"}},
		"narrow-minus-wide": &algebra.Difference{L: &algebra.Scan{Rel: "narrow"}, R: &algebra.Scan{Rel: "wide"}},
	} {
		t.Run(name, func(t *testing.T) {
			want, err := algebra.Eval(q, db)
			if err != nil {
				t.Fatal(err)
			}
			gotC, err := exec.Eval(q, db)
			if err != nil {
				t.Fatal(err)
			}
			requireSameRelation(t, name+"/compiled", want, gotC)
			gotV, err := exec.EvalVec(q, db)
			if err != nil {
				t.Fatal(err)
			}
			requireSameRelation(t, name+"/vectorized", want, gotV)
		})
	}
}
