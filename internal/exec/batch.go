package exec

import (
	"fmt"
	"runtime"
	"sync"

	"github.com/mahif/mahif/internal/algebra"
	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/storage"
	"github.com/mahif/mahif/internal/types"
)

// VecOptions tunes the vectorized executor. The zero value selects the
// defaults (1024-row batches, GOMAXPROCS scan workers, parallelism from
// 8192 source rows).
type VecOptions struct {
	// BatchSize is the number of rows per batch (≤ 0: DefaultBatchSize).
	BatchSize int
	// Workers bounds the partitioned-scan parallelism (≤ 0:
	// runtime.GOMAXPROCS(0); 1 disables parallel scans).
	Workers int
	// MinParallelRows is the smallest base relation worth partitioning
	// (≤ 0: 8192). Below it the scan runs sequentially — fan-out and
	// merge overhead would dominate.
	MinParallelRows int
	// NoColumnar disables the typed column lanes: scans transpose into
	// boxed Value columns and every kernel takes its generic path — the
	// pre-columnar executor, kept as an ablation knob for benchmarks and
	// differential tests.
	NoColumnar bool
}

// defaultMinParallelRows is the parallel-scan cutover when
// VecOptions.MinParallelRows is unset.
const defaultMinParallelRows = 8192

// vecConfig is VecOptions with defaults resolved.
type vecConfig struct {
	bs          int
	workers     int
	minParallel int
	columnar    bool
}

func (o VecOptions) config() vecConfig {
	c := vecConfig{bs: o.BatchSize, workers: o.Workers, minParallel: o.MinParallelRows, columnar: !o.NoColumnar}
	if c.bs <= 0 {
		c.bs = DefaultBatchSize
	}
	if c.workers <= 0 {
		c.workers = runtime.GOMAXPROCS(0)
	}
	if c.minParallel <= 0 {
		c.minParallel = defaultMinParallelRows
	}
	return c
}

// vecEmit receives one batch of a node's output stream. The batch and
// its columns are valid only until the call returns.
type vecEmit func(b *batch) error

// vecNode is one compiled vectorized operator. Like the tuple-at-a-time
// nodes, implementations are immutable after compilation and allocate
// all run state inside run, so one Program supports concurrent RunCtx
// calls.
type vecNode interface {
	run(rc *runCtx, emit vecEmit) error
}

// vop is one fused per-batch operator (σ or Π) of a pipeline chain.
// newState builds the operator's per-run scratch.
type vop interface {
	newState(cfg vecConfig) vopState
}

// vopState applies one operator to a flowing batch. The returned batch
// may alias the input batch and the state's own scratch; it is consumed
// before the next batch enters the chain.
type vopState interface {
	apply(p *vecPool, b *batch) (*batch, error)
}

// chain is a fused sequence of σ/Π operators applied batch-wise — the
// vectorized analogue of the tuple path's nested emit closures, minus
// the per-tuple dispatch.
type chain struct {
	ops []vop
}

// chainRun is one run's instantiation of a chain: per-operator scratch,
// the kernel scratch pool, and (for scan/singleton sources) the source
// batch. Runs are recycled across Run calls through the owning node's
// sync.Pool — per-operator scratch for a 100-statement chain is ~5 MB,
// far too much to allocate per evaluation.
type chainRun struct {
	pool   *vecPool
	states []vopState
	src    *batch
}

func (c chain) newRun(cfg vecConfig) *chainRun {
	r := &chainRun{pool: newVecPool(cfg.bs)}
	r.states = make([]vopState, len(c.ops))
	for i, op := range c.ops {
		r.states[i] = op.newState(cfg)
	}
	return r
}

// getRun draws a recycled chainRun from pool (creating one on miss);
// the caller returns it with putRun when the run completes. A chainRun
// is used by exactly one goroutine at a time; the sync.Pool makes
// concurrent Run calls on one Program safe.
func (c chain) getRun(pool *sync.Pool, cfg vecConfig) *chainRun {
	if r, ok := pool.Get().(*chainRun); ok {
		return r
	}
	return c.newRun(cfg)
}

// apply pushes one batch through every operator. An all-filtered batch
// short-circuits the rest of the chain.
func (r *chainRun) apply(b *batch) (*batch, error) {
	for _, st := range r.states {
		if b.live() == 0 {
			return b, nil
		}
		var err error
		b, err = st.apply(r.pool, b)
		if err != nil {
			return nil, err
		}
	}
	return b, nil
}

// vFilterOp narrows the batch's selection vector by a compiled
// condition (WHERE semantics: only tTrue survives).
type vFilterOp struct {
	cond vecCondFn
}

type vFilterState struct {
	cond   vecCondFn
	tr     []truth
	selBuf []int
}

func (o vFilterOp) newState(cfg vecConfig) vopState {
	return &vFilterState{cond: o.cond, tr: make([]truth, cfg.bs), selBuf: make([]int, 0, cfg.bs)}
}

func (st *vFilterState) apply(p *vecPool, b *batch) (*batch, error) {
	if err := st.cond(p, b, b.sel, st.tr); err != nil {
		return nil, err
	}
	if b.sel == nil {
		sel := st.selBuf[:0]
		for r := 0; r < b.n; r++ {
			if st.tr[r] == tTrue {
				sel = append(sel, r)
			}
		}
		b.sel = sel
	} else {
		// In-place compaction: the write index never passes the read
		// index, so narrowing the selection we iterate is safe.
		k := 0
		for _, r := range b.sel {
			if st.tr[r] == tTrue {
				b.sel[k] = r
				k++
			}
		}
		b.sel = b.sel[:k]
	}
	return b, nil
}

// vProjectOp evaluates one kernel per computed output column; identity
// columns (src[i] >= 0, the bulk of every reenactment projection) pass
// through by aliasing the input column's lanes — zero work per row,
// where the tuple path copied every column of every surviving tuple at
// every projection of the chain. Computed columns matching the
// reenacted-UPDATE shape (IF θ THEN f(col) ELSE col) carry a typedIf
// producer that keeps the output on a typed lane when the input lanes
// allow it; ifs[i] == nil or an inapplicable lane falls back to the
// boxed kernel fns[i].
type vProjectOp struct {
	fns []vecScalarFn
	src []int
	ifs []*typedIf
}

type vProjectState struct {
	op      vProjectOp
	out     *batch
	scratch []storage.ColVec
	bs      int
}

func (o vProjectOp) newState(cfg vecConfig) vopState {
	// Boxed scratch (49 KB of scannable Values per computed column) is
	// allocated lazily on the first batch that actually takes the boxed
	// fallback — when typedIf keeps a column on typed lanes, the run
	// never pays for it.
	return &vProjectState{
		op:      o,
		out:     &batch{cols: make([]storage.ColVec, len(o.fns))},
		scratch: make([]storage.ColVec, len(o.fns)),
		bs:      cfg.bs,
	}
}

func (st *vProjectState) apply(p *vecPool, b *batch) (*batch, error) {
	out := st.out
	out.n, out.sel = b.n, b.sel
	for i, fn := range st.op.fns {
		if fn == nil {
			out.cols[i] = b.cols[st.op.src[i]]
			continue
		}
		sc := &st.scratch[i]
		if spec := st.op.ifs[i]; spec != nil {
			handled, err := spec.apply(p, b, sc)
			if err != nil {
				return nil, err
			}
			if handled {
				out.cols[i] = *sc
				continue
			}
		}
		if sc.Vals == nil {
			sc.Vals = make([]types.Value, st.bs)
		}
		if err := fn(p, b, b.sel, sc.Vals); err != nil {
			return nil, err
		}
		out.cols[i] = storage.ColVec{Kind: types.KindNull, Vals: sc.Vals}
	}
	return out, nil
}

// vpipeNode is a base-relation scan with its fused σ/Π chain — the
// parallelizable segment of every pipeline. Large relations are
// partitioned into contiguous chunks processed by concurrent workers
// (each with private chain scratch); a merge stage then emits the
// buffered per-partition output in partition order, which preserves not
// just bag semantics but the exact sequential output order.
type vpipeNode struct {
	rel   string
	arity int // scan (input) arity
	// outArity is the chain's output arity — projections in the fused
	// chain change it; parallel workers freeze batches at this width.
	outArity int
	// kinds is the declared column kind per scan column — the typed-lane
	// hints for the batch transpose (nil: columnar lanes disabled, every
	// column boxed). A column whose runtime cells deviate from its
	// declared kind falls back to the boxed lane per batch, so stale
	// hints cannot produce wrong data.
	kinds []types.Kind
	ch    chain
	cfg   vecConfig
	runs  sync.Pool // recycled *chainRun
}

func (n *vpipeNode) run(rc *runCtx, emit vecEmit) error {
	r, err := rc.db.Relation(n.rel)
	if err != nil {
		return err
	}
	if r.Schema.Arity() != n.arity {
		return fmt.Errorf("exec: relation %s arity changed since compilation (%d vs %d)", n.rel, r.Schema.Arity(), n.arity)
	}
	tuples := r.Tuples
	if n.cfg.workers > 1 && len(tuples) >= n.cfg.minParallel {
		return n.runParallel(rc, tuples, emit)
	}
	cr := n.ch.getRun(&n.runs, n.cfg)
	defer n.runs.Put(cr)
	return runVecChunk(rc, tuples, n.arity, n.kinds, cr, n.cfg.bs, emit)
}

func (n *vpipeNode) runParallel(rc *runCtx, tuples []schema.Tuple, emit vecEmit) error {
	parts := storage.PartitionTuples(tuples, n.cfg.workers)
	results := make([][]*batch, len(parts))
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for w, part := range parts {
		wg.Add(1)
		go func(w int, part []schema.Tuple) {
			defer wg.Done()
			cr := n.ch.getRun(&n.runs, n.cfg)
			defer n.runs.Put(cr)
			errs[w] = runVecChunk(rc, part, n.arity, n.kinds, cr, n.cfg.bs, func(b *batch) error {
				results[w] = append(results[w], freezeBatch(b, n.outArity))
				return nil
			})
		}(w, part)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	for _, bs := range results {
		for _, b := range bs {
			if err := emit(b); err != nil {
				return err
			}
		}
	}
	return nil
}

// runVecChunk drives one contiguous tuple range through a chain run,
// transposing bs rows at a time into a column-major source batch —
// directly onto typed lanes when kinds supplies per-column hints, boxed
// otherwise. Cancellation is observed between batches — every ≤ bs
// source rows — independent of the tuple path's 4096-tuple tick
// cadence.
func runVecChunk(rc *runCtx, tuples []schema.Tuple, arity int, kinds []types.Kind, cr *chainRun, bs int, emit vecEmit) error {
	if len(tuples) == 0 {
		return nil
	}
	if cr.src == nil {
		cr.src = &batch{cols: make([]storage.ColVec, arity)}
	}
	src := cr.src
	for start := 0; start < len(tuples); start += bs {
		if err := rc.ctx.Err(); err != nil {
			return err
		}
		end := min(start+bs, len(tuples))
		rows := tuples[start:end]
		for _, t := range rows {
			if len(t) < arity {
				return fmt.Errorf("exec: row arity %d below attribute index %d", len(t), arity-1)
			}
		}
		for c := 0; c < arity; c++ {
			want := types.KindNull
			if kinds != nil {
				want = kinds[c]
			}
			src.cols[c].FillFromTuples(rows, c, want)
		}
		src.n, src.sel = len(rows), nil
		out, err := cr.apply(src)
		if err != nil {
			return err
		}
		if out.live() == 0 {
			continue
		}
		if err := emit(out); err != nil {
			return err
		}
	}
	return nil
}

// vsingletonNode streams a constant relation (with its fused chain)
// batch-wise; never parallel — singletons are tiny.
type vsingletonNode struct {
	tuples []schema.Tuple
	arity  int
	kinds  []types.Kind
	ch     chain
	cfg    vecConfig
	runs   sync.Pool
}

func (n *vsingletonNode) run(rc *runCtx, emit vecEmit) error {
	cr := n.ch.getRun(&n.runs, n.cfg)
	defer n.runs.Put(cr)
	return runVecChunk(rc, n.tuples, n.arity, n.kinds, cr, n.cfg.bs, emit)
}

// vchainNode applies a fused σ/Π chain to the output of a non-scan
// input (union, difference, join).
type vchainNode struct {
	in   vecNode
	ch   chain
	cfg  vecConfig
	runs sync.Pool
}

func (n *vchainNode) run(rc *runCtx, emit vecEmit) error {
	cr := n.ch.getRun(&n.runs, n.cfg)
	defer n.runs.Put(cr)
	return n.in.run(rc, func(b *batch) error {
		out, err := cr.apply(b)
		if err != nil {
			return err
		}
		if out.live() == 0 {
			return nil
		}
		return emit(out)
	})
}

// vunionNode streams the left branch then the right (bag union, same
// order as the interpreter).
type vunionNode struct {
	l, r vecNode
}

func (n *vunionNode) run(rc *runCtx, emit vecEmit) error {
	if err := n.l.run(rc, emit); err != nil {
		return err
	}
	return n.r.run(rc, emit)
}

// vdiffNode is bag difference: the right branch materializes into the
// hash multiset index, then left batches probe it column-wise (hash
// vectors computed per batch, candidate verification value-wise via
// TupleIndex.RemoveRow) and narrow their selection in place. The build
// side keeps its own arity: with mismatched sides no right tuple can
// ever equal a left row (tupleEqualsRow checks width), matching the
// interpreter's no-removal semantics instead of truncating.
type vdiffNode struct {
	l, r vecNode
	// rArity is the build (right) side's width; the probe side's width
	// comes from the flowing batches themselves.
	rArity int
	cfg    vecConfig
}

func (n *vdiffNode) run(rc *runCtx, emit vecEmit) error {
	remove := storage.NewTupleIndex(0)
	err := n.r.run(rc, func(b *batch) error {
		for _, t := range materializeRows(b, n.rArity) {
			remove.Add(t)
		}
		return nil
	})
	if err != nil {
		return err
	}
	if remove.Len() == 0 {
		return n.l.run(rc, emit)
	}
	hs := make([]uint64, n.cfg.bs)
	selBuf := make([]int, 0, n.cfg.bs)
	return n.l.run(rc, func(b *batch) error {
		hashRows(b, hs)
		if b.sel == nil {
			sel := selBuf[:0]
			for r := 0; r < b.n; r++ {
				if remove.Len() > 0 && remove.RemoveRow(b.cols, r, hs[r]) {
					continue
				}
				sel = append(sel, r)
			}
			b.sel = sel
		} else {
			k := 0
			for _, r := range b.sel {
				if remove.Len() > 0 && remove.RemoveRow(b.cols, r, hs[r]) {
					continue
				}
				b.sel[k] = r
				k++
			}
			b.sel = b.sel[:k]
		}
		if b.live() == 0 {
			return nil
		}
		return emit(b)
	})
}

// vhashJoinNode is the vectorized equi-join: the build branch
// materializes into the key-hashed table, the other branch probes it
// row-wise over its selection, appending matches to an owned output
// batch that flushes at capacity. With the default right build, bucket
// order is right-stream order and the left side streams, so output
// order matches the interpreter's nested loop exactly; the left build
// (chosen at compile time when the left input is estimated smaller)
// buffers matches per left row and replays them in the same order.
type vhashJoinNode struct {
	l, r           vecNode
	lKeys, rKeys   []int
	lArity, rArity int
	cfg            vecConfig
	buildLeft      bool
}

func (n *vhashJoinNode) run(rc *runCtx, emit vecEmit) error {
	if n.buildLeft {
		return n.runBuildLeft(rc, emit)
	}
	table := map[uint64][]schema.Tuple{}
	err := n.r.run(rc, func(b *batch) error {
		for _, t := range materializeRows(b, n.rArity) {
			h, ok := hashKeys(t, n.rKeys)
			if !ok {
				continue // NULL key: can never satisfy the equality
			}
			table[h] = append(table[h], t)
		}
		return nil
	})
	if err != nil {
		return err
	}
	out := newOwnedBatch(n.lArity+n.rArity, n.cfg.bs)
	flush := func() error {
		if out.n == 0 {
			return nil
		}
		// The consumer may have written a selection vector onto the
		// emitted batch (filters narrow b.sel in place); clear it before
		// every emit or the next flush would carry a stale selection.
		out.sel = nil
		err := emit(out)
		out.n = 0
		return err
	}
	err = n.l.run(rc, func(b *batch) error {
		probe := func(r int) error {
			h, ok := hashKeyCols(b, n.lKeys, r)
			if !ok {
				return nil
			}
			for _, rt := range table[h] {
				if !keysEqualCols(b, r, rt, n.lKeys, n.rKeys) {
					continue // hash collision between distinct keys
				}
				for c := 0; c < n.lArity; c++ {
					out.cols[c].Vals[out.n] = b.cols[c].Value(r)
				}
				for c := 0; c < n.rArity; c++ {
					out.cols[n.lArity+c].Vals[out.n] = rt[c]
				}
				out.n++
				if out.n == n.cfg.bs {
					if err := flush(); err != nil {
						return err
					}
				}
			}
			return nil
		}
		if b.sel == nil {
			for r := 0; r < b.n; r++ {
				if err := probe(r); err != nil {
					return err
				}
			}
			return nil
		}
		for _, r := range b.sel {
			if err := probe(r); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	return flush()
}

// runBuildLeft is the left-build variant: the left branch materializes
// into the hash table (with row positions), right batches stream and
// probe, and matches are grouped under their left row so the flush
// order is interpreter-exact (left-major, right-stream-minor).
func (n *vhashJoinNode) runBuildLeft(rc *runCtx, emit vecEmit) error {
	type buildRow struct {
		pos int
		t   schema.Tuple
	}
	table := map[uint64][]buildRow{}
	var left []schema.Tuple
	err := n.l.run(rc, func(b *batch) error {
		for _, t := range materializeRows(b, n.lArity) {
			if h, ok := hashKeys(t, n.lKeys); ok {
				table[h] = append(table[h], buildRow{pos: len(left), t: t})
			}
			left = append(left, t)
		}
		return nil
	})
	if err != nil {
		return err
	}

	matches := make([][]schema.Tuple, len(left))
	err = n.r.run(rc, func(b *batch) error {
		probe := func(r int) {
			h, ok := hashKeyCols(b, n.rKeys, r)
			if !ok {
				return
			}
			var rt schema.Tuple // materialized lazily, shared by all matches
			for _, br := range table[h] {
				if !keysEqualCols(b, r, br.t, n.rKeys, n.lKeys) {
					continue // hash collision between distinct keys
				}
				if rt == nil {
					rt = make(schema.Tuple, n.rArity)
					for c := 0; c < n.rArity; c++ {
						rt[c] = b.cols[c].Value(r)
					}
				}
				matches[br.pos] = append(matches[br.pos], rt)
			}
		}
		if b.sel == nil {
			for r := 0; r < b.n; r++ {
				probe(r)
			}
		} else {
			for _, r := range b.sel {
				probe(r)
			}
		}
		return nil
	})
	if err != nil {
		return err
	}

	out := newOwnedBatch(n.lArity+n.rArity, n.cfg.bs)
	flush := func() error {
		if out.n == 0 {
			return nil
		}
		// The replay loop multiplies cardinalities without pulling from
		// a ticking source, so it observes cancellation itself — once
		// per emitted batch, the executor's granularity guarantee.
		if err := rc.ctx.Err(); err != nil {
			return err
		}
		out.sel = nil // consumers may have narrowed the previous emit
		err := emit(out)
		out.n = 0
		return err
	}
	for pos, lt := range left {
		for _, rt := range matches[pos] {
			for c := 0; c < n.lArity; c++ {
				out.cols[c].Vals[out.n] = lt[c]
			}
			for c := 0; c < n.rArity; c++ {
				out.cols[n.lArity+c].Vals[out.n] = rt[c]
			}
			out.n++
			if out.n == n.cfg.bs {
				if err := flush(); err != nil {
					return err
				}
			}
		}
	}
	return flush()
}

// hashKeyCols hashes the key columns of row r lane-wise (no boxing);
// ok is false when any key is NULL.
func hashKeyCols(b *batch, keys []int, r int) (h uint64, ok bool) {
	h = schema.HashSeed
	for _, kc := range keys {
		h, ok = b.cols[kc].HashCell(h, r)
		if !ok {
			return 0, false
		}
	}
	return h, true
}

// keysEqualCols verifies key equality of batch row r against build
// tuple rt (joinKeyEqual's widened-numeric semantics). Cells box here:
// verification runs only on hash hits.
func keysEqualCols(b *batch, r int, rt schema.Tuple, lKeys, rKeys []int) bool {
	for i := range lKeys {
		if !joinKeyEqual(b.cols[lKeys[i]].Value(r), rt[rKeys[i]]) {
			return false
		}
	}
	return true
}

// vnlJoinNode is the vectorized nested-loop fallback: right rows
// materialize once, left rows stream against them with the full
// compiled row predicate (interpreter-exact, including conditions that
// error). The inner loop ticks its own cancellation counter since it
// multiplies the source cardinality.
type vnlJoinNode struct {
	l, r           vecNode
	pred           predFn
	lArity, rArity int
	cfg            vecConfig
}

func (n *vnlJoinNode) run(rc *runCtx, emit vecEmit) error {
	var right []schema.Tuple
	err := n.r.run(rc, func(b *batch) error {
		right = append(right, materializeRows(b, n.rArity)...)
		return nil
	})
	if err != nil {
		return err
	}
	out := newOwnedBatch(n.lArity+n.rArity, n.cfg.bs)
	flush := func() error {
		if out.n == 0 {
			return nil
		}
		out.sel = nil // consumers may have narrowed the previous emit
		err := emit(out)
		out.n = 0
		return err
	}
	buf := make(schema.Tuple, n.lArity+n.rArity)
	ticks := 0
	err = n.l.run(rc, func(b *batch) error {
		inner := func(r int) error {
			for c := 0; c < n.lArity; c++ {
				buf[c] = b.cols[c].Value(r)
			}
			for _, rt := range right {
				ticks++
				if ticks%cancelCheckEvery == 0 {
					if err := rc.ctx.Err(); err != nil {
						return err
					}
				}
				copy(buf[n.lArity:], rt)
				ok, err := n.pred(buf)
				if err != nil {
					return err
				}
				if !ok {
					continue
				}
				for c, v := range buf {
					out.cols[c].Vals[out.n] = v
				}
				out.n++
				if out.n == n.cfg.bs {
					if err := flush(); err != nil {
						return err
					}
				}
			}
			return nil
		}
		if b.sel == nil {
			for r := 0; r < b.n; r++ {
				if err := inner(r); err != nil {
					return err
				}
			}
			return nil
		}
		for _, r := range b.sel {
			if err := inner(r); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	return flush()
}

// CompileVec lowers q into a vectorized pipelined program: operators
// exchange column-major row batches with selection vectors instead of
// single tuples, and scans over large relations partition across
// workers. Semantics (including output order and error behavior) match
// Compile and the interpreter; queries outside the compilable subset
// return an error and the caller falls back.
func CompileVec(q algebra.Query, db *storage.Database, opts VecOptions) (*Program, error) {
	cfg := opts.config()
	n, sch, err := compileVecNode(q, db, cfg)
	if err != nil {
		return nil, err
	}
	return &Program{vroot: n, out: sch}, nil
}

// EvalVec compiles and runs q vectorized in one step.
func EvalVec(q algebra.Query, db *storage.Database) (*storage.Relation, error) {
	p, err := CompileVec(q, db, VecOptions{})
	if err != nil {
		return nil, err
	}
	return p.Run(db)
}

// appendOp fuses op onto a chain-bearing node, or wraps other nodes in
// a fresh chain node. outArity is the operator's output width (filters
// keep it, projections change it).
func appendOp(n vecNode, op vop, outArity int, cfg vecConfig) vecNode {
	switch x := n.(type) {
	case *vpipeNode:
		x.ch.ops = append(x.ch.ops, op)
		x.outArity = outArity
		return x
	case *vsingletonNode:
		x.ch.ops = append(x.ch.ops, op)
		return x
	case *vchainNode:
		x.ch.ops = append(x.ch.ops, op)
		return x
	}
	return &vchainNode{in: n, ch: chain{ops: []vop{op}}, cfg: cfg}
}

// compileVecNode mirrors compileNode for the vectorized operator set.
func compileVecNode(q algebra.Query, db *storage.Database, cfg vecConfig) (vecNode, *schema.Schema, error) {
	switch x := q.(type) {
	case *algebra.Scan:
		r, err := db.Relation(x.Rel)
		if err != nil {
			return nil, nil, err
		}
		return &vpipeNode{rel: x.Rel, arity: r.Schema.Arity(), outArity: r.Schema.Arity(), kinds: colKinds(r.Schema, cfg), cfg: cfg}, r.Schema, nil

	case *algebra.Select:
		in, s, err := compileVecNode(x.In, db, cfg)
		if err != nil {
			return nil, nil, err
		}
		cond, err := compileVecWhereTruth(x.Cond, s)
		if err != nil {
			return nil, nil, err
		}
		return appendOp(in, vFilterOp{cond: cond}, s.Arity(), cfg), s, nil

	case *algebra.Project:
		in, s, err := compileVecNode(x.In, db, cfg)
		if err != nil {
			return nil, nil, err
		}
		fns := make([]vecScalarFn, len(x.Exprs))
		src := make([]int, len(x.Exprs))
		ifs := make([]*typedIf, len(x.Exprs))
		passthrough := len(x.Exprs) == s.Arity()
		cols := make([]schema.Column, len(x.Exprs))
		for i, ne := range x.Exprs {
			cols[i] = schema.Col(ne.Name, algebra.ExprKind(ne.E, s))
			src[i] = -1
			if col, ok := ne.E.(*expr.Col); ok {
				if j := s.ColIndex(col.Name); j >= 0 {
					src[i] = j
					passthrough = passthrough && j == i
					continue
				}
			}
			passthrough = false
			fn, err := compileVecScalar(ne.E, s)
			if err != nil {
				return nil, nil, err
			}
			fns[i] = fn
			if cfg.columnar {
				if ifx, ok := ne.E.(*expr.If); ok {
					ifs[i], err = recognizeTypedIf(ifx, s)
					if err != nil {
						return nil, nil, err
					}
				}
			}
		}
		out := schema.New(s.Relation, cols...)
		if passthrough {
			// Pure rename: the node disappears from the pipeline.
			return in, out, nil
		}
		return appendOp(in, vProjectOp{fns: fns, src: src, ifs: ifs}, out.Arity(), cfg), out, nil

	case *algebra.Union:
		l, ls, err := compileVecNode(x.L, db, cfg)
		if err != nil {
			return nil, nil, err
		}
		r, rs, err := compileVecNode(x.R, db, cfg)
		if err != nil {
			return nil, nil, err
		}
		if ls.Arity() != rs.Arity() {
			return nil, nil, fmt.Errorf("exec: union arity mismatch %d vs %d", ls.Arity(), rs.Arity())
		}
		return &vunionNode{l: l, r: r}, ls, nil

	case *algebra.Difference:
		l, ls, err := compileVecNode(x.L, db, cfg)
		if err != nil {
			return nil, nil, err
		}
		r, rs, err := compileVecNode(x.R, db, cfg)
		if err != nil {
			return nil, nil, err
		}
		return &vdiffNode{l: l, r: r, rArity: rs.Arity(), cfg: cfg}, ls, nil

	case *algebra.Join:
		return compileVecJoin(x, db, cfg)

	case *algebra.Singleton:
		return &vsingletonNode{tuples: x.Tuples, arity: x.Sch.Arity(), kinds: colKinds(x.Sch, cfg), cfg: cfg}, x.Sch, nil

	case *algebra.Aggregate:
		return compileVecAggregate(x, db, cfg)
	}
	return nil, nil, fmt.Errorf("exec: unknown query node %T", q)
}

// colKinds extracts the declared per-column kinds of s as typed-lane
// hints for the scan transpose, or nil when columnar lanes are off.
func colKinds(s *schema.Schema, cfg vecConfig) []types.Kind {
	if !cfg.columnar {
		return nil
	}
	kinds := make([]types.Kind, s.Arity())
	for i, c := range s.Columns {
		kinds[i] = c.Type
	}
	return kinds
}

// compileVecJoin applies the same hash-vs-nested-loop rule as the tuple
// path: hash join only when every conjunct is a cross-side key equality.
func compileVecJoin(x *algebra.Join, db *storage.Database, cfg vecConfig) (vecNode, *schema.Schema, error) {
	l, ls, err := compileVecNode(x.L, db, cfg)
	if err != nil {
		return nil, nil, err
	}
	r, rs, err := compileVecNode(x.R, db, cfg)
	if err != nil {
		return nil, nil, err
	}
	cols := make([]schema.Column, 0, ls.Arity()+rs.Arity())
	cols = append(cols, ls.Columns...)
	cols = append(cols, rs.Columns...)
	joined := schema.New(ls.Relation, cols...)

	lKeys, rKeys, residual := splitEquiJoin(x.Cond, ls, rs)
	if len(lKeys) == 0 || residual != nil {
		pred, err := compilePred(x.Cond, joined)
		if err != nil {
			return nil, nil, err
		}
		return &vnlJoinNode{l: l, r: r, pred: pred, lArity: ls.Arity(), rArity: rs.Arity(), cfg: cfg}, joined, nil
	}
	return &vhashJoinNode{
		l: l, r: r,
		lKeys: lKeys, rKeys: rKeys,
		lArity: ls.Arity(), rArity: rs.Arity(),
		cfg:       cfg,
		buildLeft: buildOnLeft(x, db),
	}, joined, nil
}
