package exec_test

import (
	"fmt"
	"testing"

	"github.com/mahif/mahif/internal/algebra"
	"github.com/mahif/mahif/internal/exec"
	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/sql"
	"github.com/mahif/mahif/internal/storage"
	"github.com/mahif/mahif/internal/types"
)

func mustQuery(t testing.TB, src string) algebra.Query {
	t.Helper()
	q, err := sql.ParseQuery(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return q
}

// evalThreeWay evaluates q with the interpreter, the compiled executor,
// and the vectorized executor and requires identical relations (schema,
// tuples, and order) or a unanimous error.
func evalThreeWay(t *testing.T, q algebra.Query, db *storage.Database) *storage.Relation {
	t.Helper()
	want, errI := algebra.Eval(q, db)
	for _, ex := range []struct {
		name string
		eval func(algebra.Query, *storage.Database) (*storage.Relation, error)
	}{
		{"compiled", exec.Eval},
		{"vectorized", exec.EvalVec},
	} {
		got, err := ex.eval(q, db)
		if (errI == nil) != (err == nil) {
			t.Fatalf("%s: error divergence on %s: interpreter=%v got=%v", ex.name, q, errI, err)
		}
		if errI != nil {
			continue
		}
		if !want.Schema.Equal(got.Schema) {
			t.Fatalf("%s: schema divergence on %s: %s vs %s", ex.name, q, want.Schema, got.Schema)
		}
		if len(want.Tuples) != len(got.Tuples) {
			t.Fatalf("%s: row count divergence on %s: %d vs %d", ex.name, q, len(want.Tuples), len(got.Tuples))
		}
		for i := range want.Tuples {
			if !want.Tuples[i].Equal(got.Tuples[i]) {
				t.Fatalf("%s: row %d divergence on %s: %s vs %s", ex.name, i, q, want.Tuples[i], got.Tuples[i])
			}
		}
	}
	return want
}

// aggBoundaryDB builds r(k,v,g) with n rows cycling through three
// groups, a NULL v every 7th row, and a float deviation in the
// int-declared v every 13th row (dropping the column to the boxed lane).
func aggBoundaryDB(n int) *storage.Database {
	db := storage.NewDatabase()
	r := storage.NewRelation(schema.New("r",
		schema.Col("k", types.KindInt),
		schema.Col("v", types.KindInt),
		schema.Col("g", types.KindString),
	))
	groups := []string{"a", "b", "c"}
	for i := 0; i < n; i++ {
		v := types.Int(int64(i % 50))
		if i%7 == 3 {
			v = types.Null()
		} else if i%13 == 5 {
			v = types.Float(float64(i%50) + 0.5)
		}
		g := types.String(groups[i%3])
		if i%11 == 8 {
			g = types.Null() // NULL grouping keys form one group
		}
		r.Add(schema.NewTuple(types.Int(int64(i)), v, g))
	}
	db.AddRelation(r)
	return db
}

// TestAggregateExecutorBoundaries is the batch-edge battery: every
// aggregate shape at 0, 1, 1023, 1024, and 1025 input rows — empty
// input, a single batch minus/exactly/plus one row — must agree across
// all three executors.
func TestAggregateExecutorBoundaries(t *testing.T) {
	queries := []string{
		"SELECT COUNT(*) AS n, COUNT(v) AS c, SUM(v) AS s, AVG(v) AS a, MIN(v) AS lo, MAX(v) AS hi FROM r",
		"SELECT g, COUNT(*) AS n, SUM(v) AS s FROM r GROUP BY g",
		"SELECT g, AVG(v) AS a, MIN(v) AS lo, MAX(g) AS m FROM r WHERE k >= 2 GROUP BY g",
		"SELECT k + 1 AS kk, COUNT(v) AS c FROM r GROUP BY k + 1",
		"SELECT g FROM r GROUP BY g",
	}
	for _, n := range []int{0, 1, 1023, 1024, 1025} {
		db := aggBoundaryDB(n)
		for _, src := range queries {
			t.Run(fmt.Sprintf("n=%d/%s", n, src), func(t *testing.T) {
				out := evalThreeWay(t, mustQuery(t, src), db)
				if n == 0 {
					grouped := len(out.Schema.Columns) == 0 || out.Schema.Columns[0].Name == "g" || out.Schema.Columns[0].Name == "kk"
					if grouped && len(out.Tuples) != 0 {
						t.Fatalf("empty grouped input must yield zero rows, got %d", len(out.Tuples))
					}
					if !grouped && len(out.Tuples) != 1 {
						t.Fatalf("empty global aggregate must yield one row, got %d", len(out.Tuples))
					}
				}
			})
		}
	}
}

// TestAggregateSemantics pins the exact aggregate contract on a small
// fixed input: COUNT(*) vs COUNT(e) over NULLs, SUM/AVG numeric
// promotion, MIN/MAX over mixed numerics, empty-input global results,
// and NULL group keys collapsing into one group.
func TestAggregateSemantics(t *testing.T) {
	db := storage.NewDatabase()
	r := storage.NewRelation(schema.New("r",
		schema.Col("k", types.KindInt),
		schema.Col("v", types.KindInt),
		schema.Col("g", types.KindString),
	))
	r.Add(
		schema.NewTuple(types.Int(1), types.Int(10), types.String("a")),
		schema.NewTuple(types.Int(2), types.Null(), types.String("a")),
		schema.NewTuple(types.Int(3), types.Float(2.5), types.Null()),
		schema.NewTuple(types.Int(4), types.Int(7), types.Null()),
	)
	db.AddRelation(r)

	out := evalThreeWay(t, mustQuery(t,
		"SELECT COUNT(*) AS n, COUNT(v) AS c, SUM(v) AS s, AVG(v) AS a, MIN(v) AS lo, MAX(v) AS hi FROM r"), db)
	if len(out.Tuples) != 1 {
		t.Fatalf("want 1 row, got %d", len(out.Tuples))
	}
	row := out.Tuples[0]
	wantRow := schema.NewTuple(
		types.Int(4),      // COUNT(*) counts rows
		types.Int(3),      // COUNT(v) skips the NULL
		types.Float(19.5), // 10 + 2.5 + 7 promotes to float
		types.Float(6.5),  // 19.5 / 3
		types.Float(2.5),  // MIN across int/float
		types.Int(10),     // MAX
	)
	if !row.Equal(wantRow) {
		t.Fatalf("global aggregate: got %s want %s", row, wantRow)
	}

	out = evalThreeWay(t, mustQuery(t, "SELECT g, COUNT(*) AS n FROM r GROUP BY g"), db)
	if len(out.Tuples) != 2 {
		t.Fatalf("NULL keys must form one group: got %d rows", len(out.Tuples))
	}
	if !out.Tuples[0].Equal(schema.NewTuple(types.String("a"), types.Int(2))) {
		t.Fatalf("group a: got %s", out.Tuples[0])
	}
	if !out.Tuples[1].Equal(schema.NewTuple(types.Null(), types.Int(2))) {
		t.Fatalf("NULL group: got %s", out.Tuples[1])
	}

	// Empty input: global aggregates yield COUNT 0 and NULLs...
	empty := storage.NewDatabase()
	empty.AddRelation(storage.NewRelation(r.Schema))
	out = evalThreeWay(t, mustQuery(t, "SELECT COUNT(*) AS n, SUM(v) AS s FROM r"), empty)
	if len(out.Tuples) != 1 || !out.Tuples[0].Equal(schema.NewTuple(types.Int(0), types.Null())) {
		t.Fatalf("empty global aggregate: got %v", out.Tuples)
	}
	// ...while grouped aggregates yield no rows.
	out = evalThreeWay(t, mustQuery(t, "SELECT g, COUNT(*) AS n FROM r GROUP BY g"), empty)
	if len(out.Tuples) != 0 {
		t.Fatalf("empty grouped aggregate: got %v", out.Tuples)
	}

	// Ill-typed aggregation errors identically everywhere (checked
	// inside evalThreeWay); the interpreter error is the contract.
	if _, err := algebra.Eval(mustQuery(t, "SELECT SUM(g) AS s FROM r"), db); err == nil {
		t.Fatal("SUM over string must error")
	}
	evalThreeWay(t, mustQuery(t, "SELECT SUM(g) AS s FROM r"), db)
}
