package exec

import (
	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/types"
)

// RowPred is a compiled condition under SQL WHERE semantics evaluated
// tuple-at-a-time: NULL and non-boolean results count as not satisfied,
// never as errors (mirrors expr.Satisfied exactly; the differential
// tests pin the compiled forms to the interpreter). Column references
// are resolved to ordinals against the schema the predicate was
// compiled for, so the closure runs against any layout-equal relation.
type RowPred func(row schema.Tuple) (bool, error)

// RowScalar is a compiled scalar expression evaluated tuple-at-a-time
// (same layout contract as RowPred).
type RowScalar func(row schema.Tuple) (types.Value, error)

// CompileRowPred compiles a condition to a RowPred. It exposes the
// executor's tuple-at-a-time predicate compiler to the incremental
// statement-application path of package history, which evaluates
// residual predicates over index-selected candidate rows instead of
// full scans. An error means the expression is outside the compilable
// subset; callers fall back to the interpreter.
func CompileRowPred(e expr.Expr, s *schema.Schema) (RowPred, error) {
	f, err := compileWhere(e, s)
	if err != nil {
		return nil, err
	}
	return RowPred(f), nil
}

// CompileRowScalar compiles a scalar expression to a RowScalar (the
// SET-clause evaluator of the incremental update path).
func CompileRowScalar(e expr.Expr, s *schema.Schema) (RowScalar, error) {
	f, err := compileScalar(e, s)
	if err != nil {
		return nil, err
	}
	return RowScalar(f), nil
}
