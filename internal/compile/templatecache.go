package compile

import (
	"container/list"
	"sync"
)

// TemplateCache is a concurrency-safe LRU of compiled scenario-template
// artifacts, keyed by the constant-abstracted canonical fingerprint of
// the template (FingerprintExpr over conditions with $name slots left
// open, prefixed with the history version the artifact was compiled
// against). Values are opaque to this package — the core layer stores
// its compiled template artifacts here; typing them `any` keeps compile
// below core in the import graph.
type TemplateCache struct {
	mu        sync.Mutex
	m         map[string]*list.Element // of tcEntry
	lru       *list.List               // front = most recently used
	cap       int
	hits      int64
	misses    int64
	evictions int64
}

type tcEntry struct {
	key string
	val any
}

// DefaultTemplateEntries bounds a cache built by NewTemplateCache.
// Template artifacts hold materialized relations, so the bound is far
// smaller than the solver memo's.
const DefaultTemplateEntries = 64

// NewTemplateCache builds an empty template cache bounded at
// DefaultTemplateEntries.
func NewTemplateCache() *TemplateCache { return NewTemplateCacheCap(DefaultTemplateEntries) }

// NewTemplateCacheCap builds an empty cache holding at most cap
// artifacts (cap <= 0 means unbounded).
func NewTemplateCacheCap(cap int) *TemplateCache {
	return &TemplateCache{m: map[string]*list.Element{}, lru: list.New(), cap: cap}
}

// Lookup returns the cached artifact for key, if present.
func (c *TemplateCache) Lookup(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(tcEntry).val, true
}

// Store inserts or refreshes the artifact for key, evicting the least
// recently used entries past the bound.
func (c *TemplateCache) Store(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value = tcEntry{key: key, val: val}
		c.lru.MoveToFront(el)
		return
	}
	c.m[key] = c.lru.PushFront(tcEntry{key: key, val: val})
	for c.cap > 0 && c.lru.Len() > c.cap {
		back := c.lru.Back()
		delete(c.m, back.Value.(tcEntry).key)
		c.lru.Remove(back)
		c.evictions++
	}
}

// Stats reports lookup hits and misses so far.
func (c *TemplateCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Evictions reports artifacts dropped by the LRU bound so far.
func (c *TemplateCache) Evictions() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}

// Len returns the number of cached artifacts.
func (c *TemplateCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
