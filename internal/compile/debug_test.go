package compile

import (
	"testing"

	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/milp"
	"github.com/mahif/mahif/internal/types"
)

// TestModelConsistentWitness is a regression test for the big-M
// integrality trap: the solver must never return a point that violates
// its own compiled constraints (semantic witnesses may still differ
// within the documented Eps relaxation).
func TestModelConsistentWitness(t *testing.T) {
	price, fee := expr.Variable("price"), expr.Variable("fee")
	f1 := expr.Variable("f1")
	f2 := expr.Variable("f2")
	formula := expr.AndOf(
		expr.Eq(f1, expr.IfThenElse(expr.Ge(price, expr.IntConst(50)), expr.IntConst(0), fee)),
		expr.Eq(f2, expr.IfThenElse(expr.Ge(price, expr.IntConst(60)), expr.IntConst(0), fee)),
		expr.Ne(f1, f2),
	)
	kinds := map[string]types.Kind{
		"price": types.KindInt, "fee": types.KindInt, "f1": types.KindInt, "f2": types.KindInt,
	}
	c := newCompiler(kinds, Options{})
	root, err := c.compileBool(expr.Simplify(formula))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.model.AddConstraint([]milp.Term{{Var: root, Coef: 1}}, milp.EQ, 1); err != nil {
		t.Fatal(err)
	}
	res := c.model.Solve(milp.SolveOptions{})
	if res.Status != milp.Feasible {
		t.Fatalf("status = %v, want feasible (price=55 separates f1 from f2)", res.Status)
	}
	if !c.model.CheckPoint(res.X, 1e-4) {
		t.Errorf("solver returned a point violating its own constraints: %v",
			c.model.ViolatedConstraints(res.X, 1e-4))
	}
}
