// Package compile translates expression-language conditions (Fig. 7)
// into mixed-integer linear programs per the rules of Fig. 13, so a
// MILP solver can decide their satisfiability (§11). Design points:
//
//   - Numeric subexpressions compile to linear forms over model
//     variables where possible (+, −, const·x, x/const); only
//     conditional expressions introduce auxiliary variables, selected
//     by big-M constraints.
//   - Every boolean subexpression gets a {0,1} indicator variable whose
//     truth is linked to its operands with big-M constraints; the root
//     indicator is pinned to 1.
//   - Big-M values are derived per constraint from interval analysis of
//     the operand bounds, keeping the encodings numerically tame.
//   - String values are dictionary-coded to integers; each string
//     variable additionally owns a private "unseen value" code so that
//     disequalities between string variables remain satisfiable.
//   - The symbolic path assumes attributes are non-NULL: isnull
//     compiles to false. This matches every paper workload; callers
//     keep statements conservatively when they need NULL reasoning.
//
// Satisfiability is decided with the exact MILP solver; Limit outcomes
// are surfaced so callers can fall back soundly ("not proven, keep the
// statement").
package compile

import (
	"context"
	"fmt"
	"math"

	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/milp"
	"github.com/mahif/mahif/internal/types"
)

// Eps is the smallest value difference the encoding distinguishes:
// strict inequalities a < b compile to a ≤ b − Eps. Workload values are
// integers or coarse decimals, far above this resolution.
const Eps = 1e-3

// defaultBound bounds numeric attribute variables when the formula
// itself provides no tighter information. It is kept moderate so the
// derived big-M constants stay numerically tame in the simplex.
const defaultBound = 1e6

// Options configures compilation and solving.
type Options struct {
	// Solve bounds the branch & bound search; zero values use solver
	// defaults.
	Solve milp.SolveOptions
	// NumericBound overrides the default ±1e7 box for numeric
	// variables.
	NumericBound float64
	// Memo, when non-nil, caches satisfiability outcomes across calls
	// keyed by the program fingerprint (see Memo). Batch what-if
	// evaluation shares one memo across scenarios so identical slicing
	// tests are solved once.
	Memo *Memo
	// ParamKinds assigns a kind to each open template parameter ($name
	// slots, see expr.Param) appearing in the condition. The slots
	// compile as free model variables named "$name", which makes the
	// verdict sound for every later binding: UNSAT over the free slot is
	// UNSAT for each concrete constant. Entries are merged into the kind
	// map (keyed "$name") before compiling, so memo keys distinguish
	// templates whose parameters differ in kind.
	ParamKinds map[string]types.Kind
}

// Outcome is the result of a satisfiability check.
type Outcome struct {
	// Sat is the verdict; meaningful only when Definitive.
	Sat bool
	// Definitive is false when a solver budget was exhausted; callers
	// must then assume Sat (conservative direction for slicing).
	Definitive bool
	// Model is the witness assignment (variable name → value) when Sat.
	Model map[string]types.Value
	// Nodes reports branch & bound effort.
	Nodes int
	// Vars and Cons report compiled model size.
	Vars, Cons int
}

// Satisfiable compiles the condition and decides whether some
// assignment to its variables makes it true. kinds assigns a type to
// every free variable (variables missing from kinds are treated as
// floats).
func Satisfiable(cond expr.Expr, kinds map[string]types.Kind, opts Options) (*Outcome, error) {
	return SatisfiableCtx(context.Background(), cond, kinds, opts)
}

// SatisfiableCtx is Satisfiable under a context. Cancellation is
// observed at every branch & bound node of the solver, so a cancelled
// check returns ctx.Err() within one node's work. Cancelled outcomes
// are never memoized.
func SatisfiableCtx(ctx context.Context, cond expr.Expr, kinds map[string]types.Kind, opts Options) (*Outcome, error) {
	if len(opts.ParamKinds) > 0 {
		merged := make(map[string]types.Kind, len(kinds)+len(opts.ParamKinds))
		for n, k := range kinds {
			merged[n] = k
		}
		for n, k := range opts.ParamKinds {
			merged["$"+n] = k
		}
		kinds = merged
	}
	simplified := expr.Simplify(cond)
	if opts.Memo == nil {
		return satisfiable(ctx, simplified, kinds, opts)
	}
	key := memoKey(simplified, kinds, opts)
	if out, ok := opts.Memo.lookup(key); ok {
		return out, nil
	}
	out, err := satisfiable(ctx, simplified, kinds, opts)
	if err == nil {
		opts.Memo.store(key, out)
	}
	return out, err
}

// satisfiable compiles and solves an already-simplified condition.
func satisfiable(ctx context.Context, cond expr.Expr, kinds map[string]types.Kind, opts Options) (*Outcome, error) {
	c := newCompiler(kinds, opts)
	root, err := c.compileBool(cond)
	if err != nil {
		return nil, err
	}
	if err := c.model.AddConstraint([]milp.Term{{Var: root, Coef: 1}}, milp.EQ, 1); err != nil {
		return nil, err
	}
	res := c.model.SolveCtx(ctx, opts.Solve)
	if res.Status == milp.Canceled {
		return nil, ctx.Err()
	}
	out := &Outcome{
		Nodes: res.Nodes,
		Vars:  c.model.NumVars(),
		Cons:  c.model.NumConstraints(),
	}
	switch res.Status {
	case milp.Feasible:
		out.Sat, out.Definitive = true, true
		out.Model = c.extract(res.X)
	case milp.Infeasible:
		out.Sat, out.Definitive = false, true
	default:
		out.Sat, out.Definitive = true, false
	}
	return out, nil
}

// interval is a closed numeric range used to size big-M constants.
type interval struct{ lo, hi float64 }

func (iv interval) width() float64 { return iv.hi - iv.lo }

func ivUnion(a, b interval) interval {
	return interval{math.Min(a.lo, b.lo), math.Max(a.hi, b.hi)}
}

// lin is a linear form Σ coef·var + k.
type lin struct {
	terms map[int]float64
	k     float64
}

func constLin(k float64) lin { return lin{k: k} }

func varLin(v int) lin { return lin{terms: map[int]float64{v: 1}} }

func (l lin) add(o lin, sign float64) lin {
	out := lin{terms: map[int]float64{}, k: l.k + sign*o.k}
	for v, c := range l.terms {
		out.terms[v] += c
	}
	for v, c := range o.terms {
		out.terms[v] += sign * c
	}
	return out
}

func (l lin) scale(f float64) lin {
	out := lin{terms: map[int]float64{}, k: l.k * f}
	for v, c := range l.terms {
		out.terms[v] = c * f
	}
	return out
}

func (l lin) milpTerms(extra ...milp.Term) []milp.Term {
	out := make([]milp.Term, 0, len(l.terms)+len(extra))
	for v, c := range l.terms {
		if c != 0 {
			out = append(out, milp.Term{Var: v, Coef: c})
		}
	}
	return append(out, extra...)
}

type compiler struct {
	model *milp.Model
	kinds map[string]types.Kind
	opts  Options

	vars     map[string]int     // variable name → model index
	varIv    []interval         // interval per model variable
	strCodes map[string]float64 // string constant → code
	strOther map[string]float64 // string variable → private unseen code
	nextCode float64
	names    map[int]string // model index → source variable name

	// Hash-consing caches: structurally identical subexpressions share
	// one indicator / one linear form. Slicing formulas repeat the same
	// statement conditions across four symbolic chains; merging them
	// collapses the solver's search space from 2^(4U) toward 2^U.
	boolMemo map[string]int
	numMemo  map[string]numEntry
}

type numEntry struct {
	l  lin
	iv interval
}

func newCompiler(kinds map[string]types.Kind, opts Options) *compiler {
	return &compiler{
		model:    milp.NewModel(),
		kinds:    kinds,
		opts:     opts,
		vars:     map[string]int{},
		strCodes: map[string]float64{},
		strOther: map[string]float64{},
		nextCode: 1,
		names:    map[int]string{},
		boolMemo: map[string]int{},
		numMemo:  map[string]numEntry{},
	}
}

func (c *compiler) bound() float64 {
	if c.opts.NumericBound > 0 {
		return c.opts.NumericBound
	}
	return defaultBound
}

func (c *compiler) addVar(lo, hi float64, integer bool) (int, error) {
	v, err := c.model.AddVar(lo, hi, integer)
	if err != nil {
		return 0, err
	}
	c.varIv = append(c.varIv, interval{lo, hi})
	return v, nil
}

// code returns the integer code of a string constant, assigning one on
// first use.
func (c *compiler) code(s string) float64 {
	if v, ok := c.strCodes[s]; ok {
		return v
	}
	c.strCodes[s] = c.nextCode
	c.nextCode++
	return c.strCodes[s]
}

// sourceVar materializes a named formula variable in the model.
func (c *compiler) sourceVar(name string) (int, interval, error) {
	if v, ok := c.vars[name]; ok {
		return v, c.varIv[v], nil
	}
	kind := types.KindFloat
	if k, ok := c.kinds[name]; ok {
		kind = k
	}
	var v int
	var err error
	switch kind {
	case types.KindBool:
		v, err = c.model.AddBinary()
		if err == nil {
			c.varIv = append(c.varIv, interval{0, 1})
		}
	case types.KindString:
		// Reserve a private "unseen" code so distinct unseen strings
		// stay representable; its slot is above all constant codes.
		other := 10000 + float64(len(c.strOther))
		c.strOther[name] = other
		v, err = c.addVar(0, 20000, false)
	default:
		b := c.bound()
		v, err = c.addVar(-b, b, false)
	}
	if err != nil {
		return 0, interval{}, err
	}
	c.vars[name] = v
	c.names[v] = name
	return v, c.varIv[v], nil
}

// extract converts a solver point back to named values.
func (c *compiler) extract(x []float64) map[string]types.Value {
	out := map[string]types.Value{}
	rev := map[float64]string{}
	for s, code := range c.strCodes {
		rev[code] = s
	}
	for name, idx := range c.vars {
		val := x[idx]
		switch c.kinds[name] {
		case types.KindBool:
			out[name] = types.Bool(math.Round(val) == 1)
		case types.KindString:
			if s, ok := rev[math.Round(val)]; ok {
				out[name] = types.String(s)
				continue
			}
			out[name] = types.String(fmt.Sprintf("<unseen-%d>", int(math.Round(val))))
		case types.KindInt:
			// Attribute variables are relaxed to reals (see the package
			// comment); report the exact relaxation value unless it is
			// integral, so witnesses stay faithful to the model.
			if math.Abs(val-math.Round(val)) <= 1e-6 {
				out[name] = types.Int(int64(math.Round(val)))
			} else {
				out[name] = types.Float(val)
			}
		default:
			out[name] = types.Float(val)
		}
	}
	return out
}
