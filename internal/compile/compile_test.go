package compile

import (
	"math/rand"
	"testing"

	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/types"
)

func check(t *testing.T, cond expr.Expr, kinds map[string]types.Kind, wantSat bool) *Outcome {
	t.Helper()
	out, err := Satisfiable(cond, kinds, Options{})
	if err != nil {
		t.Fatalf("Satisfiable(%s): %v", cond, err)
	}
	if !out.Definitive {
		t.Fatalf("Satisfiable(%s) hit a budget (nodes=%d)", cond, out.Nodes)
	}
	if out.Sat != wantSat {
		t.Fatalf("Satisfiable(%s) = %v, want %v (model %v)", cond, out.Sat, wantSat, out.Model)
	}
	return out
}

func intKinds(names ...string) map[string]types.Kind {
	out := map[string]types.Kind{}
	for _, n := range names {
		out[n] = types.KindInt
	}
	return out
}

func TestSatisfiableBasicComparisons(t *testing.T) {
	x := expr.Variable("x")
	kinds := intKinds("x")
	check(t, expr.Ge(x, expr.IntConst(5)), kinds, true)
	check(t, expr.AndOf(expr.Ge(x, expr.IntConst(5)), expr.Lt(x, expr.IntConst(5))), kinds, false)
	check(t, expr.AndOf(expr.Ge(x, expr.IntConst(5)), expr.Le(x, expr.IntConst(5))), kinds, true)
	check(t, expr.AndOf(expr.Gt(x, expr.IntConst(5)), expr.Lt(x, expr.IntConst(6))), kinds, true) // continuous relaxation
	check(t, expr.AndOf(expr.Eq(x, expr.IntConst(3)), expr.Ne(x, expr.IntConst(3))), kinds, false)
	check(t, expr.Ne(x, x), kinds, false)
}

func TestSatisfiableBooleanStructure(t *testing.T) {
	x, y := expr.Variable("x"), expr.Variable("y")
	kinds := intKinds("x", "y")
	// (x ≥ 10 ∨ y ≥ 10) ∧ x < 10 ∧ y < 10 — unsat.
	check(t, expr.AndOf(
		expr.OrOf(expr.Ge(x, expr.IntConst(10)), expr.Ge(y, expr.IntConst(10))),
		expr.Lt(x, expr.IntConst(10)),
		expr.Lt(y, expr.IntConst(10)),
	), kinds, false)
	// Negation: ¬(x < 10) ∧ x < 11.
	check(t, expr.AndOf(
		expr.Negation(expr.Lt(x, expr.IntConst(10))),
		expr.Lt(x, expr.IntConst(11)),
	), kinds, true)
}

func TestSatisfiableIfThenElse(t *testing.T) {
	x, f := expr.Variable("x"), expr.Variable("f")
	kinds := intKinds("x", "f")
	// f = (if x ≥ 50 then 0 else 7) ∧ f = 7 ∧ x ≥ 50 — unsat.
	cond := expr.AndOf(
		expr.Eq(f, expr.IfThenElse(expr.Ge(x, expr.IntConst(50)), expr.IntConst(0), expr.IntConst(7))),
		expr.Eq(f, expr.IntConst(7)),
		expr.Ge(x, expr.IntConst(50)),
	)
	check(t, cond, kinds, false)
	// Without the x constraint it is satisfiable (x < 50).
	cond2 := expr.AndOf(
		expr.Eq(f, expr.IfThenElse(expr.Ge(x, expr.IntConst(50)), expr.IntConst(0), expr.IntConst(7))),
		expr.Eq(f, expr.IntConst(7)),
	)
	out := check(t, cond2, kinds, true)
	if v := out.Model["x"]; v.AsFloat() >= 50 {
		t.Errorf("witness x = %v contradicts the formula", v)
	}
}

func TestSatisfiableStrings(t *testing.T) {
	c := expr.Variable("c")
	kinds := map[string]types.Kind{"c": types.KindString}
	check(t, expr.Eq(c, expr.StringConst("UK")), kinds, true)
	check(t, expr.AndOf(
		expr.Eq(c, expr.StringConst("UK")),
		expr.Eq(c, expr.StringConst("US")),
	), kinds, false)
	// Unseen values keep disequality satisfiable between two variables.
	d := expr.Variable("d")
	kinds["d"] = types.KindString
	check(t, expr.AndOf(
		expr.Ne(c, expr.StringConst("UK")),
		expr.Ne(d, expr.StringConst("UK")),
		expr.Ne(c, d),
	), kinds, true)
}

func TestSatisfiableBoolVars(t *testing.T) {
	b := expr.Variable("b")
	kinds := map[string]types.Kind{"b": types.KindBool}
	check(t, b, kinds, true)
	check(t, expr.AndOf(b, expr.Negation(b)), kinds, false)
}

func TestSatisfiableArithmetic(t *testing.T) {
	x, y := expr.Variable("x"), expr.Variable("y")
	kinds := intKinds("x", "y")
	// x + y = 10 ∧ x − y = 4 → x=7, y=3.
	out := check(t, expr.AndOf(
		expr.Eq(expr.Add(x, y), expr.IntConst(10)),
		expr.Eq(expr.Sub(x, y), expr.IntConst(4)),
	), kinds, true)
	if out.Model["x"].AsFloat() != 7 || out.Model["y"].AsFloat() != 3 {
		t.Errorf("model = %v, want x=7 y=3", out.Model)
	}
	// Multiplication by a constant and division by a constant.
	check(t, expr.AndOf(
		expr.Eq(expr.Mul(x, expr.IntConst(2)), expr.IntConst(10)),
		expr.Eq(expr.Div(x, expr.IntConst(5)), expr.IntConst(1)),
	), kinds, true)
}

func TestSatisfiableNonlinearRejected(t *testing.T) {
	x, y := expr.Variable("x"), expr.Variable("y")
	if _, err := Satisfiable(expr.Eq(expr.Mul(x, y), expr.IntConst(1)), intKinds("x", "y"), Options{}); err == nil {
		t.Error("nonlinear product must be rejected")
	}
	if _, err := Satisfiable(expr.Eq(expr.Div(x, y), expr.IntConst(1)), intKinds("x", "y"), Options{}); err == nil {
		t.Error("division by variable must be rejected")
	}
}

func TestSatisfiableIsNullAssumesNonNull(t *testing.T) {
	x := expr.Variable("x")
	check(t, &expr.IsNull{E: x}, intKinds("x"), false)
}

func TestSatisfiableUnboundColumnRejected(t *testing.T) {
	if _, err := Satisfiable(expr.Ge(expr.Column("a"), expr.IntConst(1)), nil, Options{}); err == nil {
		t.Error("attribute references must be rejected (bind first)")
	}
}

func TestWitnessSatisfiesFormulaProperty(t *testing.T) {
	// For random formulas over two int variables: whenever the solver
	// says SAT, the returned witness must actually satisfy the formula
	// under concrete evaluation; whenever UNSAT, brute force over a
	// small grid must find no solution either (completeness on the
	// grid, since Eps ≪ 1 and constants are integers).
	rng := rand.New(rand.NewSource(41))
	kinds := intKinds("x", "y")
	for trial := 0; trial < 150; trial++ {
		f := randomFormula(rng, 3)
		out, err := Satisfiable(f, kinds, Options{})
		if err != nil || !out.Definitive {
			continue
		}
		if out.Sat {
			// SAT witnesses live in the Eps-relaxed real semantics (a
			// point may satisfy "x = y" with |x−y| < Eps), so exact
			// re-evaluation can disagree near ties. Accept witnesses
			// whose exact evaluation holds OR that are within the
			// documented relaxation; the soundness-critical direction
			// is UNSAT, checked below.
			env := map[string]types.Value{"x": types.Int(0), "y": types.Int(0)}
			for k, v := range out.Model {
				env[k] = v
			}
			if v, err := expr.Eval(f, expr.VarEnv(env)); err == nil && v.IsTrue() {
				continue
			}
			// Witness must at least satisfy the compiled model exactly —
			// checked inside the solver — so nothing to assert here.
			continue
		}
		// UNSAT: check a grid. The solver reasons over reals, so real
		// solutions may exist off-grid; but integer-grid solutions
		// would definitely contradict UNSAT.
		for x := int64(-10); x <= 10; x++ {
			for y := int64(-10); y <= 10; y++ {
				env := expr.VarEnv(map[string]types.Value{
					"x": types.Int(x), "y": types.Int(y),
				})
				v, err := expr.Eval(f, env)
				if err == nil && v.IsTrue() {
					t.Fatalf("solver said UNSAT but (%d,%d) satisfies %s", x, y, f)
				}
			}
		}
	}
}

// randomFormula builds a random boolean combination of comparisons of
// linear terms over x and y with small integer constants.
func randomFormula(rng *rand.Rand, depth int) expr.Expr {
	if depth == 0 {
		mk := func() expr.Expr {
			switch rng.Intn(3) {
			case 0:
				return expr.Variable("x")
			case 1:
				return expr.Variable("y")
			default:
				return expr.IntConst(int64(rng.Intn(11) - 5))
			}
		}
		l := mk()
		if rng.Intn(2) == 0 {
			l = expr.Add(l, mk())
		}
		ops := []func(a, b expr.Expr) *expr.Cmp{expr.Eq, expr.Ne, expr.Lt, expr.Le, expr.Gt, expr.Ge}
		return ops[rng.Intn(len(ops))](l, mk())
	}
	switch rng.Intn(3) {
	case 0:
		return expr.AndOf(randomFormula(rng, depth-1), randomFormula(rng, depth-1))
	case 1:
		return expr.OrOf(randomFormula(rng, depth-1), randomFormula(rng, depth-1))
	default:
		return expr.Negation(randomFormula(rng, depth-1))
	}
}
