package compile

import (
	"container/list"
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/types"
)

// Memo is a concurrency-safe cache of satisfiability outcomes. The
// slicing formulas the engine compiles are deterministic functions of
// the history suffix and the modification under test, so their
// canonical fingerprint (rendered condition + variable kinds + solver
// budget) identifies the compiled program exactly: two what-if
// scenarios that share a suffix and a modification produce byte-equal
// fingerprints and reuse one solver run. Batch evaluation threads one
// Memo through Options.Memo for all scenarios.
//
// Cached *Outcome values are shared; callers must treat them (including
// the Model witness map) as read-only, which every engine call site
// already does.
type Memo struct {
	// A plain mutex: even lookups write (hit/miss and recency
	// accounting), so a reader/writer split would buy nothing.
	mu        sync.Mutex
	m         map[string]*list.Element // of memoEntry
	lru       *list.List               // front = most recently used
	cap       int
	hits      int64
	misses    int64
	evictions int64
}

type memoEntry struct {
	key string
	out *Outcome
}

// DefaultMemoEntries bounds a memo built by NewMemo. Outcomes are
// small (a verdict plus a witness map), so the bound exists to keep a
// session-lifetime memo from growing with the number of distinct
// formulas ever seen, not to fight memory pressure; eviction is LRU.
const DefaultMemoEntries = 4096

// NewMemo builds an empty memo bounded at DefaultMemoEntries.
func NewMemo() *Memo { return NewMemoCap(DefaultMemoEntries) }

// NewMemoCap builds an empty memo holding at most cap outcomes
// (cap <= 0 means unbounded).
func NewMemoCap(cap int) *Memo {
	return &Memo{m: map[string]*list.Element{}, lru: list.New(), cap: cap}
}

// Stats reports lookup hits and misses so far.
func (m *Memo) Stats() (hits, misses int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hits, m.misses
}

// Evictions reports outcomes dropped by the LRU bound so far.
func (m *Memo) Evictions() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.evictions
}

// Len returns the number of cached outcomes.
func (m *Memo) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.m)
}

func (m *Memo) lookup(key string) (*Outcome, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.m[key]
	if !ok {
		m.misses++
		return nil, false
	}
	m.hits++
	m.lru.MoveToFront(el)
	return el.Value.(memoEntry).out, true
}

func (m *Memo) store(key string, out *Outcome) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.m[key]; ok {
		el.Value = memoEntry{key: key, out: out}
		m.lru.MoveToFront(el)
		return
	}
	m.m[key] = m.lru.PushFront(memoEntry{key: key, out: out})
	for m.cap > 0 && m.lru.Len() > m.cap {
		back := m.lru.Back()
		delete(m.m, back.Value.(memoEntry).key)
		m.lru.Remove(back)
		m.evictions++
	}
}

// memoKey fingerprints one satisfiability query. The condition is
// serialized with explicit node tags (a plain String rendering cannot
// distinguish a column from a variable of the same name), and the kind
// map and the solver knobs that can change the verdict are appended.
func memoKey(cond expr.Expr, kinds map[string]types.Kind, opts Options) string {
	var b strings.Builder
	fingerprintExpr(&b, cond)
	names := make([]string, 0, len(kinds))
	for n := range kinds {
		names = append(names, n)
	}
	sort.Strings(names)
	b.WriteByte('|')
	for _, n := range names {
		fmt.Fprintf(&b, "%s:%d;", n, kinds[n])
	}
	fmt.Fprintf(&b, "|b=%g|s=%d,%d,%d", opts.NumericBound,
		opts.Solve.MaxNodes, opts.Solve.MaxIter, opts.Solve.MaxPropagationRounds)
	return b.String()
}

func fingerprintExpr(b *strings.Builder, e expr.Expr) {
	switch x := e.(type) {
	case *expr.Const:
		b.WriteString("k(")
		b.WriteString(x.V.String())
		b.WriteByte(')')
	case *expr.Col:
		b.WriteString("c(")
		b.WriteString(x.Name)
		b.WriteByte(')')
	case *expr.Var:
		b.WriteString("v(")
		b.WriteString(x.Name)
		b.WriteByte(')')
	case *expr.Param:
		b.WriteString("P(")
		b.WriteString(x.Name)
		b.WriteByte(')')
	case *expr.Arith:
		fmt.Fprintf(b, "a%d(", x.Op)
		fingerprintExpr(b, x.L)
		b.WriteByte(',')
		fingerprintExpr(b, x.R)
		b.WriteByte(')')
	case *expr.Cmp:
		fmt.Fprintf(b, "p%d(", x.Op)
		fingerprintExpr(b, x.L)
		b.WriteByte(',')
		fingerprintExpr(b, x.R)
		b.WriteByte(')')
	case *expr.And:
		b.WriteString("and(")
		fingerprintExpr(b, x.L)
		b.WriteByte(',')
		fingerprintExpr(b, x.R)
		b.WriteByte(')')
	case *expr.Or:
		b.WriteString("or(")
		fingerprintExpr(b, x.L)
		b.WriteByte(',')
		fingerprintExpr(b, x.R)
		b.WriteByte(')')
	case *expr.Not:
		b.WriteString("not(")
		fingerprintExpr(b, x.E)
		b.WriteByte(')')
	case *expr.IsNull:
		b.WriteString("isnull(")
		fingerprintExpr(b, x.E)
		b.WriteByte(')')
	case *expr.If:
		b.WriteString("if(")
		fingerprintExpr(b, x.Cond)
		b.WriteByte(',')
		fingerprintExpr(b, x.Then)
		b.WriteByte(',')
		fingerprintExpr(b, x.Else)
		b.WriteByte(')')
	default:
		// Unknown node: tag with the concrete type so two distinct node
		// types whose String() renderings coincide cannot share a key
		// (which would silently reuse the wrong solver outcome).
		fmt.Fprintf(b, "?%T(%s)", e, e)
	}
}

// FingerprintExpr returns the canonical tagged serialization of e used
// in memo keys. Constants embed their values, so fingerprinting a
// template condition (parameters still open as $name slots) yields the
// constant-abstracted identity the template cache keys on: two
// templates equal up to parameter names bound at eval time collide,
// two templates differing in any baked-in constant do not.
func FingerprintExpr(e expr.Expr) string {
	var b strings.Builder
	fingerprintExpr(&b, e)
	return b.String()
}
