package compile

import (
	"fmt"
	"math"

	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/milp"
	"github.com/mahif/mahif/internal/types"
)

// compileNum lowers a value-position expression to a linear form plus
// its interval, memoized on the expression's rendering. Booleans in
// value position contribute their indicator ({0,1}); strings their
// dictionary code.
func (c *compiler) compileNum(e expr.Expr) (lin, interval, error) {
	key := e.String()
	if hit, ok := c.numMemo[key]; ok {
		return hit.l, hit.iv, nil
	}
	l, iv, err := c.compileNumUncached(e)
	if err == nil {
		c.numMemo[key] = numEntry{l: l, iv: iv}
	}
	return l, iv, err
}

func (c *compiler) compileNumUncached(e expr.Expr) (lin, interval, error) {
	switch x := e.(type) {
	case *expr.Const:
		switch x.V.Kind() {
		case types.KindInt, types.KindFloat:
			f := x.V.AsFloat()
			return constLin(f), interval{f, f}, nil
		case types.KindString:
			f := c.code(x.V.AsString())
			return constLin(f), interval{f, f}, nil
		case types.KindBool:
			f := 0.0
			if x.V.AsBool() {
				f = 1
			}
			return constLin(f), interval{f, f}, nil
		case types.KindNull:
			return lin{}, interval{}, fmt.Errorf("compile: NULL literal in value position")
		}
	case *expr.Var:
		v, iv, err := c.sourceVar(x.Name)
		if err != nil {
			return lin{}, interval{}, err
		}
		return varLin(v), iv, nil
	case *expr.Param:
		// Open template slot: a free model variable named "$name" (kind
		// from Options.ParamKinds via the merged kind map). Leaving the
		// slot free keeps UNSAT verdicts valid for every later binding.
		v, iv, err := c.sourceVar("$" + x.Name)
		if err != nil {
			return lin{}, interval{}, err
		}
		return varLin(v), iv, nil
	case *expr.Col:
		return lin{}, interval{}, fmt.Errorf("compile: unbound attribute %q (bind columns before compiling)", x.Name)
	case *expr.Arith:
		return c.compileArith(x)
	case *expr.If:
		return c.compileIf(x)
	case *expr.Cmp, *expr.And, *expr.Or, *expr.Not, *expr.IsNull:
		b, err := c.compileBool(e)
		if err != nil {
			return lin{}, interval{}, err
		}
		return varLin(b), interval{0, 1}, nil
	}
	return lin{}, interval{}, fmt.Errorf("compile: cannot lower %T to a linear form", e)
}

func (c *compiler) compileArith(x *expr.Arith) (lin, interval, error) {
	l, liv, err := c.compileNum(x.L)
	if err != nil {
		return lin{}, interval{}, err
	}
	r, riv, err := c.compileNum(x.R)
	if err != nil {
		return lin{}, interval{}, err
	}
	switch x.Op {
	case types.OpAdd:
		return l.add(r, 1), interval{liv.lo + riv.lo, liv.hi + riv.hi}, nil
	case types.OpSub:
		return l.add(r, -1), interval{liv.lo - riv.hi, liv.hi - riv.lo}, nil
	case types.OpMul:
		if len(r.terms) == 0 {
			return l.scale(r.k), scaleIv(liv, r.k), nil
		}
		if len(l.terms) == 0 {
			return r.scale(l.k), scaleIv(riv, l.k), nil
		}
		return lin{}, interval{}, fmt.Errorf("compile: nonlinear product %s", x)
	case types.OpDiv:
		if len(r.terms) == 0 && r.k != 0 {
			return l.scale(1 / r.k), scaleIv(liv, 1/r.k), nil
		}
		return lin{}, interval{}, fmt.Errorf("compile: division by non-constant %s", x)
	}
	return lin{}, interval{}, fmt.Errorf("compile: unknown arithmetic operator")
}

func scaleIv(iv interval, f float64) interval {
	a, b := iv.lo*f, iv.hi*f
	return interval{math.Min(a, b), math.Max(a, b)}
}

// compileIf lowers "if φ then e1 else e2" in value position (Fig. 13):
// a fresh variable v is forced to e1 when the guard indicator is 1 and
// to e2 when it is 0, with big-M sized from the branch intervals.
func (c *compiler) compileIf(x *expr.If) (lin, interval, error) {
	b, err := c.compileBool(x.Cond)
	if err != nil {
		return lin{}, interval{}, err
	}
	tl, tiv, err := c.compileNum(x.Then)
	if err != nil {
		return lin{}, interval{}, err
	}
	el, eiv, err := c.compileNum(x.Else)
	if err != nil {
		return lin{}, interval{}, err
	}
	iv := ivUnion(tiv, eiv)
	v, err := c.addVar(iv.lo, iv.hi, false)
	if err != nil {
		return lin{}, interval{}, err
	}
	m := iv.width() + 1
	vl := varLin(v)
	// b=1 ⇒ v = then: v − then ≤ M(1−b) and ≥ −M(1−b).
	d := vl.add(tl, -1)
	if err := c.model.AddConstraint(d.milpTerms(milp.Term{Var: b, Coef: m}), milp.LE, -d.k+m); err != nil {
		return lin{}, interval{}, err
	}
	if err := c.model.AddConstraint(d.milpTerms(milp.Term{Var: b, Coef: -m}), milp.GE, -d.k-m); err != nil {
		return lin{}, interval{}, err
	}
	// b=0 ⇒ v = else: v − else ≤ M·b and ≥ −M·b.
	d = vl.add(el, -1)
	if err := c.model.AddConstraint(d.milpTerms(milp.Term{Var: b, Coef: -m}), milp.LE, -d.k); err != nil {
		return lin{}, interval{}, err
	}
	if err := c.model.AddConstraint(d.milpTerms(milp.Term{Var: b, Coef: m}), milp.GE, -d.k); err != nil {
		return lin{}, interval{}, err
	}
	return vl, iv, nil
}

// compileBool lowers a condition to a {0,1} indicator variable whose
// value equals the condition's truth in every model solution, memoized
// on the expression's rendering.
func (c *compiler) compileBool(e expr.Expr) (int, error) {
	key := e.String()
	if b, ok := c.boolMemo[key]; ok {
		return b, nil
	}
	b, err := c.compileBoolUncached(e)
	if err == nil {
		c.boolMemo[key] = b
	}
	return b, err
}

func (c *compiler) compileBoolUncached(e expr.Expr) (int, error) {
	switch x := e.(type) {
	case *expr.Const:
		if x.V.Kind() != types.KindBool {
			return 0, fmt.Errorf("compile: non-boolean constant %s in condition position", x.V)
		}
		val := 0.0
		if x.V.AsBool() {
			val = 1
		}
		return c.addVar(val, val, true)
	case *expr.Var:
		if c.kinds[x.Name] != types.KindBool {
			return 0, fmt.Errorf("compile: variable %q used as condition but has kind %s", x.Name, c.kinds[x.Name])
		}
		v, _, err := c.sourceVar(x.Name)
		return v, err
	case *expr.Param:
		if c.kinds["$"+x.Name] != types.KindBool {
			return 0, fmt.Errorf("compile: parameter $%s used as condition but has kind %s", x.Name, c.kinds["$"+x.Name])
		}
		v, _, err := c.sourceVar("$" + x.Name)
		return v, err
	case *expr.Cmp:
		return c.compileCmp(x)
	case *expr.And:
		return c.compileAndOr(x.L, x.R, true)
	case *expr.Or:
		return c.compileAndOr(x.L, x.R, false)
	case *expr.Not:
		inner, err := c.compileBool(x.E)
		if err != nil {
			return 0, err
		}
		b, err := c.model.AddBinary()
		if err != nil {
			return 0, err
		}
		c.varIv = append(c.varIv, interval{0, 1})
		// b + inner = 1 (Fig. 13 negation rule).
		err = c.model.AddConstraint([]milp.Term{{Var: b, Coef: 1}, {Var: inner, Coef: 1}}, milp.EQ, 1)
		return b, err
	case *expr.IsNull:
		// Non-NULL symbolic domain: isnull is uniformly false.
		return c.addVar(0, 0, true)
	case *expr.If:
		return c.compileBoolIf(x)
	}
	return 0, fmt.Errorf("compile: %T is not a condition", e)
}

func (c *compiler) compileAndOr(le, re expr.Expr, isAnd bool) (int, error) {
	b1, err := c.compileBool(le)
	if err != nil {
		return 0, err
	}
	b2, err := c.compileBool(re)
	if err != nil {
		return 0, err
	}
	b, err := c.model.AddBinary()
	if err != nil {
		return 0, err
	}
	c.varIv = append(c.varIv, interval{0, 1})
	if isAnd {
		// b ≤ b1, b ≤ b2, b ≥ b1+b2−1.
		if err := c.model.AddConstraint([]milp.Term{{Var: b, Coef: 1}, {Var: b1, Coef: -1}}, milp.LE, 0); err != nil {
			return 0, err
		}
		if err := c.model.AddConstraint([]milp.Term{{Var: b, Coef: 1}, {Var: b2, Coef: -1}}, milp.LE, 0); err != nil {
			return 0, err
		}
		err = c.model.AddConstraint([]milp.Term{{Var: b, Coef: 1}, {Var: b1, Coef: -1}, {Var: b2, Coef: -1}}, milp.GE, -1)
		return b, err
	}
	// b ≥ b1, b ≥ b2, b ≤ b1+b2.
	if err := c.model.AddConstraint([]milp.Term{{Var: b, Coef: 1}, {Var: b1, Coef: -1}}, milp.GE, 0); err != nil {
		return 0, err
	}
	if err := c.model.AddConstraint([]milp.Term{{Var: b, Coef: 1}, {Var: b2, Coef: -1}}, milp.GE, 0); err != nil {
		return 0, err
	}
	err = c.model.AddConstraint([]milp.Term{{Var: b, Coef: 1}, {Var: b1, Coef: -1}, {Var: b2, Coef: -1}}, milp.LE, 0)
	return b, err
}

// compileCmp links an indicator to a comparison via big-M constraints.
func (c *compiler) compileCmp(x *expr.Cmp) (int, error) {
	op := x.Op
	l, r := x.L, x.R
	// Normalize: keep only ≤, <, =, ≠ by flipping operands.
	switch op {
	case expr.CmpGt:
		op, l, r = expr.CmpLt, r, l
	case expr.CmpGe:
		op, l, r = expr.CmpLe, r, l
	}
	ll, liv, err := c.compileNum(l)
	if err != nil {
		return 0, err
	}
	rl, riv, err := c.compileNum(r)
	if err != nil {
		return 0, err
	}
	d := ll.add(rl, -1) // d = l − r
	div := interval{liv.lo - riv.hi, liv.hi - riv.lo}
	m := math.Max(math.Abs(div.lo), math.Abs(div.hi)) + Eps + 1

	b, err := c.model.AddBinary()
	if err != nil {
		return 0, err
	}
	c.varIv = append(c.varIv, interval{0, 1})
	addLE := func(form lin, extra []milp.Term, rhs float64) error {
		return c.model.AddConstraint(form.milpTerms(extra...), milp.LE, rhs-form.k)
	}
	addGE := func(form lin, extra []milp.Term, rhs float64) error {
		return c.model.AddConstraint(form.milpTerms(extra...), milp.GE, rhs-form.k)
	}
	switch op {
	case expr.CmpLe:
		// b=1 ⇒ d ≤ 0 (d + M·b ≤ M) ; b=0 ⇒ d ≥ Eps (d + M·b ≥ Eps).
		if err := addLE(d, []milp.Term{{Var: b, Coef: m}}, m); err != nil {
			return 0, err
		}
		return b, addGE(d, []milp.Term{{Var: b, Coef: m}}, Eps)
	case expr.CmpLt:
		// b=1 ⇒ d ≤ −Eps (d + M·b ≤ M−Eps) ; b=0 ⇒ d ≥ 0 (d + M·b ≥ 0).
		if err := addLE(d, []milp.Term{{Var: b, Coef: m}}, m-Eps); err != nil {
			return 0, err
		}
		return b, addGE(d, []milp.Term{{Var: b, Coef: m}}, 0)
	case expr.CmpEq, expr.CmpNe:
		beq := b
		if op == expr.CmpNe {
			// Compile equality, then return its negation.
			inner, err := c.model.AddBinary()
			if err != nil {
				return 0, err
			}
			c.varIv = append(c.varIv, interval{0, 1})
			if err := c.model.AddConstraint([]milp.Term{{Var: b, Coef: 1}, {Var: inner, Coef: 1}}, milp.EQ, 1); err != nil {
				return 0, err
			}
			beq = inner
		}
		// beq=1 ⇒ |d| ≤ 0.
		if err := addLE(d, []milp.Term{{Var: beq, Coef: m}}, m); err != nil {
			return 0, err
		}
		if err := addGE(d, []milp.Term{{Var: beq, Coef: -m}}, -m); err != nil {
			return 0, err
		}
		// beq=0 ⇒ |d| ≥ Eps, with a side-selector s:
		// d ≥ Eps − M·s − M·beq  (s=0 picks the positive side) and
		// d ≤ −Eps + M(1−s) + M·beq  (s=1 picks the negative side).
		s, err := c.model.AddBinary()
		if err != nil {
			return 0, err
		}
		c.varIv = append(c.varIv, interval{0, 1})
		if err := addGE(d, []milp.Term{{Var: s, Coef: m}, {Var: beq, Coef: m}}, Eps); err != nil {
			return 0, err
		}
		if err := addLE(d, []milp.Term{{Var: s, Coef: m}, {Var: beq, Coef: -m}}, m-Eps); err != nil {
			return 0, err
		}
		return b, nil
	}
	return 0, fmt.Errorf("compile: unsupported comparison %s", x)
}

// compileBoolIf lowers a conditional used as a condition: both branches
// are boolean indicators and the result selects between them.
func (c *compiler) compileBoolIf(x *expr.If) (int, error) {
	bc, err := c.compileBool(x.Cond)
	if err != nil {
		return 0, err
	}
	bt, err := c.compileBool(x.Then)
	if err != nil {
		return 0, err
	}
	be, err := c.compileBool(x.Else)
	if err != nil {
		return 0, err
	}
	b, err := c.model.AddBinary()
	if err != nil {
		return 0, err
	}
	c.varIv = append(c.varIv, interval{0, 1})
	// bc=1 ⇒ b = bt ; bc=0 ⇒ b = be. M = 1 suffices for binaries.
	cons := []struct {
		terms []milp.Term
		sense milp.Sense
		rhs   float64
	}{
		{[]milp.Term{{Var: b, Coef: 1}, {Var: bt, Coef: -1}, {Var: bc, Coef: 1}}, milp.LE, 1},
		{[]milp.Term{{Var: b, Coef: 1}, {Var: bt, Coef: -1}, {Var: bc, Coef: -1}}, milp.GE, -1},
		{[]milp.Term{{Var: b, Coef: 1}, {Var: be, Coef: -1}, {Var: bc, Coef: -1}}, milp.LE, 0},
		{[]milp.Term{{Var: b, Coef: 1}, {Var: be, Coef: -1}, {Var: bc, Coef: 1}}, milp.GE, 0},
	}
	for _, cn := range cons {
		if err := c.model.AddConstraint(cn.terms, cn.sense, cn.rhs); err != nil {
			return 0, err
		}
	}
	return b, nil
}
