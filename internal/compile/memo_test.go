package compile

import (
	"sync"
	"testing"

	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/types"
)

func TestMemoReusesOutcome(t *testing.T) {
	cond := expr.And{
		L: expr.Ge(expr.Variable("x"), expr.IntConst(3)),
		R: expr.Lt(expr.Variable("x"), expr.IntConst(10)),
	}
	kinds := map[string]types.Kind{"x": types.KindInt}
	memo := NewMemo()
	opts := Options{Memo: memo}

	first, err := Satisfiable(&cond, kinds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Sat || !first.Definitive {
		t.Fatalf("outcome = %+v, want definitive sat", first)
	}
	second, err := Satisfiable(&cond, kinds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if second != first {
		t.Error("memoized call returned a different outcome object")
	}
	hits, misses := memo.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("Stats() = %d hits, %d misses, want 1, 1", hits, misses)
	}
	if memo.Len() != 1 {
		t.Errorf("Len() = %d, want 1", memo.Len())
	}
}

func TestMemoDistinguishesKindsAndShape(t *testing.T) {
	memo := NewMemo()
	cond := expr.Eq(expr.Variable("x"), expr.Variable("y"))
	asFloat := map[string]types.Kind{"x": types.KindFloat, "y": types.KindFloat}
	asString := map[string]types.Kind{"x": types.KindString, "y": types.KindString}
	if _, err := Satisfiable(cond, asFloat, Options{Memo: memo}); err != nil {
		t.Fatal(err)
	}
	if _, err := Satisfiable(cond, asString, Options{Memo: memo}); err != nil {
		t.Fatal(err)
	}
	if memo.Len() != 2 {
		t.Errorf("Len() = %d: kind maps were conflated", memo.Len())
	}

	// A column and a variable of the same name must not share a key.
	k1 := memoKey(expr.Variable("a"), nil, Options{})
	k2 := memoKey(&expr.Col{Name: "a"}, nil, Options{})
	if k1 == k2 {
		t.Error("fingerprint conflates Var and Col of the same name")
	}
}

// fakeNodeA and fakeNodeB are two structurally distinct expression
// node types unknown to fingerprintExpr whose String() renderings
// coincide. They satisfy expr.Expr by embedding the interface (the
// marker method is never called on them).
type fakeNodeA struct{ expr.Expr }

func (fakeNodeA) String() string { return "opaque" }

type fakeNodeB struct{ expr.Expr }

func (fakeNodeB) String() string { return "opaque" }

// TestMemoUnknownNodeTypesNotConflated is the regression test for the
// opaque fingerprint fallback: before it was tagged with the concrete
// type, two distinct unknown node types rendering identically shared a
// key and silently reused each other's solver outcomes.
func TestMemoUnknownNodeTypesNotConflated(t *testing.T) {
	a := memoKey(fakeNodeA{}, nil, Options{})
	b := memoKey(fakeNodeB{}, nil, Options{})
	if a == b {
		t.Fatalf("memoKey conflates distinct unknown node types: %q", a)
	}
}

// TestFingerprintParamDistinct pins that parameter slots fingerprint
// distinctly from columns, variables and constants of the same
// spelling, and that distinct constants never collide (the
// constant-abstracted template identity relies on both properties).
func TestFingerprintParamDistinct(t *testing.T) {
	prints := []string{
		FingerprintExpr(expr.Parameter("a")),
		FingerprintExpr(expr.Variable("$a")),
		FingerprintExpr(expr.Column("$a")),
		FingerprintExpr(expr.StringConst("$a")),
	}
	for i := 0; i < len(prints); i++ {
		for j := i + 1; j < len(prints); j++ {
			if prints[i] == prints[j] {
				t.Errorf("fingerprints %d and %d collide: %q", i, j, prints[i])
			}
		}
	}
	c1 := FingerprintExpr(expr.Gt(expr.Column("x"), expr.IntConst(5)))
	c2 := FingerprintExpr(expr.Gt(expr.Column("x"), expr.IntConst(6)))
	if c1 == c2 {
		t.Error("fingerprint ignores constant identity")
	}
	p1 := FingerprintExpr(expr.Gt(expr.Column("x"), expr.Parameter("p")))
	p2 := FingerprintExpr(expr.Gt(expr.Column("x"), expr.Parameter("p")))
	if p1 != p2 {
		t.Error("fingerprint not deterministic over parameters")
	}
}

func TestMemoAgreesWithoutMemo(t *testing.T) {
	conds := []expr.Expr{
		expr.Gt(expr.Variable("a"), expr.IntConst(5)),
		expr.AndOf(
			expr.Gt(expr.Variable("a"), expr.IntConst(5)),
			expr.Lt(expr.Variable("a"), expr.IntConst(3)),
		),
	}
	kinds := map[string]types.Kind{"a": types.KindInt}
	memo := NewMemo()
	for i, cond := range conds {
		plain, err := Satisfiable(cond, kinds, Options{})
		if err != nil {
			t.Fatal(err)
		}
		memoed, err := Satisfiable(cond, kinds, Options{Memo: memo})
		if err != nil {
			t.Fatal(err)
		}
		if plain.Sat != memoed.Sat || plain.Definitive != memoed.Definitive {
			t.Errorf("cond %d: memoized verdict %v/%v differs from plain %v/%v",
				i, memoed.Sat, memoed.Definitive, plain.Sat, plain.Definitive)
		}
	}
}

// TestMemoConcurrent exercises the memo from many goroutines (for the
// race detector).
func TestMemoConcurrent(t *testing.T) {
	memo := NewMemo()
	kinds := map[string]types.Kind{"v": types.KindInt}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				cond := expr.Ge(expr.Variable("v"), expr.IntConst(int64(i%5)))
				if _, err := Satisfiable(cond, kinds, Options{Memo: memo}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if memo.Len() != 5 {
		t.Errorf("Len() = %d, want 5 distinct conditions", memo.Len())
	}
}

func TestMemoLRUBound(t *testing.T) {
	m := NewMemoCap(3)
	for i := 0; i < 4; i++ {
		m.store(string(rune('a'+i)), &Outcome{})
	}
	if m.Len() != 3 {
		t.Fatalf("Len = %d, want 3", m.Len())
	}
	if m.Evictions() != 1 {
		t.Fatalf("Evictions = %d, want 1", m.Evictions())
	}
	if _, ok := m.lookup("a"); ok {
		t.Fatalf("oldest key survived the bound")
	}
	// Touch "b" so "c" becomes the LRU victim of the next insert.
	if _, ok := m.lookup("b"); !ok {
		t.Fatalf("key b missing")
	}
	m.store("e", &Outcome{})
	if _, ok := m.lookup("c"); ok {
		t.Fatalf("recency not honored: c should have been evicted before b")
	}
	if _, ok := m.lookup("b"); !ok {
		t.Fatalf("recently used key b evicted")
	}
}
