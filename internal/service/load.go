package service

import (
	"context"
	"encoding/csv"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/mahif/mahif/internal/core"
	"github.com/mahif/mahif/internal/history"
	"github.com/mahif/mahif/internal/persist"
	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/sql"
	"github.com/mahif/mahif/internal/storage"
	"github.com/mahif/mahif/internal/types"
)

// LoadEngine builds an engine from CSV snapshots and a SQL history
// script — the file-based bootstrap shared by cmd/mahifd. Each data
// spec is "relation=file.csv" (header row required; column types
// inferred from the first data row: int, float, bool, then string).
// The history is applied statement by statement, so the engine's redo
// log matches the script.
func LoadEngine(dataSpecs []string, historyPath string) (*core.Engine, error) {
	db, err := LoadBase(dataSpecs)
	if err != nil {
		return nil, err
	}
	hist, err := LoadHistory(historyPath)
	if err != nil {
		return nil, err
	}
	vdb := storage.NewVersioned(db)
	for _, st := range hist {
		if err := vdb.Apply(st); err != nil {
			return nil, fmt.Errorf("executing history: %w", err)
		}
	}
	return core.New(vdb), nil
}

// LoadBase builds the pre-history database state from CSV specs
// ("relation=file.csv", header row required).
func LoadBase(dataSpecs []string) (*storage.Database, error) {
	db := storage.NewDatabase()
	for _, spec := range dataSpecs {
		name, file, ok := strings.Cut(spec, "=")
		if !ok {
			return nil, fmt.Errorf("bad CSV spec %q (want relation=file.csv)", spec)
		}
		rel, err := LoadCSV(name, file)
		if err != nil {
			return nil, err
		}
		db.AddRelation(rel)
	}
	return db, nil
}

// LoadHistory parses a SQL history script.
func LoadHistory(path string) ([]history.Statement, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	hist, err := sql.ParseStatements(string(raw))
	if err != nil {
		return nil, err
	}
	return []history.Statement(hist), nil
}

// InitStore creates a durable store in dir: the CSV snapshots become
// the base state (checkpoint 0) and the optional history script is
// committed through the WAL, so the directory alone reproduces the
// engine on every later start. A failed ingest rolls the store files
// back out of dir — a partial first ingest would otherwise block
// re-initialization while silently serving a truncated history.
func InitStore(dir string, csvSpecs []string, historyPath string, opts persist.Options) (*core.Engine, *persist.Store, error) {
	if len(csvSpecs) == 0 {
		return nil, nil, fmt.Errorf("initializing %s: at least one relation=file.csv is required", dir)
	}
	base, err := LoadBase(csvSpecs)
	if err != nil {
		return nil, nil, err
	}
	// Parse the whole script before creating anything on disk.
	var hist []history.Statement
	if historyPath != "" {
		if hist, err = LoadHistory(historyPath); err != nil {
			return nil, nil, err
		}
	}
	store, err := persist.Create(dir, base, opts)
	if err != nil {
		return nil, nil, err
	}
	if len(hist) > 0 {
		if _, err := store.Append(context.Background(), hist); err != nil {
			store.Close()
			if rerr := persist.RemoveStore(dir); rerr != nil {
				return nil, nil, fmt.Errorf("ingesting history: %v (and rolling back %s failed: %w)", err, dir, rerr)
			}
			return nil, nil, fmt.Errorf("ingesting history: %w", err)
		}
	}
	return core.NewDurable(store), store, nil
}

// OpenStore recovers the durable store in dir and wraps it in an
// engine whose appends commit WAL-first.
func OpenStore(dir string, opts persist.Options) (*core.Engine, *persist.Store, error) {
	store, err := persist.Open(dir, opts)
	if err != nil {
		return nil, nil, err
	}
	return core.NewDurable(store), store, nil
}

// LoadCSV reads one relation from a CSV file with a header row.
func LoadCSV(relName, file string) (*storage.Relation, error) {
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", file, err)
	}
	if len(rows) < 1 {
		return nil, fmt.Errorf("%s: empty CSV", file)
	}
	header := rows[0]
	cols := make([]schema.Column, len(header))
	for ci, h := range header {
		kind := types.KindString
		if len(rows) > 1 {
			kind = inferKind(rows[1:], ci)
		}
		cols[ci] = schema.Col(h, kind)
	}
	rel := storage.NewRelation(schema.New(relName, cols...))
	for _, row := range rows[1:] {
		if len(row) != len(header) {
			return nil, fmt.Errorf("%s: row with %d fields, header has %d", file, len(row), len(header))
		}
		t := make(schema.Tuple, len(row))
		for ci, cell := range row {
			t[ci] = parseCell(cell, cols[ci].Type)
		}
		rel.Add(t)
	}
	return rel, nil
}

func inferKind(rows [][]string, ci int) types.Kind {
	kind := types.KindInt
	for _, row := range rows {
		cell := row[ci]
		if cell == "" {
			continue
		}
		switch kind {
		case types.KindInt:
			if _, err := strconv.ParseInt(cell, 10, 64); err == nil {
				continue
			}
			kind = types.KindFloat
			fallthrough
		case types.KindFloat:
			if _, err := strconv.ParseFloat(cell, 64); err == nil {
				continue
			}
			kind = types.KindBool
			fallthrough
		case types.KindBool:
			if cell == "true" || cell == "false" {
				continue
			}
			return types.KindString
		}
	}
	return kind
}

func parseCell(cell string, kind types.Kind) types.Value {
	if cell == "" {
		return types.Null()
	}
	switch kind {
	case types.KindInt:
		if v, err := strconv.ParseInt(cell, 10, 64); err == nil {
			return types.Int(v)
		}
	case types.KindFloat:
		if v, err := strconv.ParseFloat(cell, 64); err == nil {
			return types.Float(v)
		}
	case types.KindBool:
		if cell == "true" {
			return types.Bool(true)
		}
		if cell == "false" {
			return types.Bool(false)
		}
	}
	return types.String(cell)
}
