package service

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"github.com/mahif/mahif/internal/howto"
)

// TestHowtoEndpoint runs a linear how-to over the fee history: the
// hypothetical surcharge $x reaches the cheap rows (price < 40, five of
// them, historically +1 each), so the SUM(fee) delta is 5x − 5 and
// pushing it to exactly +10 needs x = 3.
func TestHowtoEndpoint(t *testing.T) {
	srv := newTestServer(t, Options{})
	w := postJSON(t, srv.Handler(), "/v1/howto", HowtoRequest{
		Modifications: []Modification{{Op: "replace", Pos: 2,
			Statement: `UPDATE orders SET fee = fee + $x WHERE price < 40`}},
		Target: howto.Target{
			Query:  `SELECT SUM(fee) AS s FROM orders`,
			Column: "s",
			Op:     "==",
			Value:  10,
		},
	})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp HowtoResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	res := resp.Result
	if res == nil {
		t.Fatalf("no result: %s", w.Body)
	}
	if res.Method != "milp" {
		t.Errorf("method %q, want milp: %s", res.Method, w.Body)
	}
	if got := res.Binding["x"].AsFloat(); got != 3 {
		t.Errorf("binding x = %v, want 3: %s", got, w.Body)
	}
	if !res.Certificate.Certified {
		t.Errorf("answer not certified: %s", w.Body)
	}
}

// TestHowtoBadRequests: validation failures and unreachable targets are
// 400s with the detail in the error body.
func TestHowtoBadRequests(t *testing.T) {
	srv := newTestServer(t, Options{})
	h := srv.Handler()
	mods := []Modification{{Op: "replace", Pos: 2,
		Statement: `UPDATE orders SET fee = fee + $x WHERE price < 40`}}
	cases := []struct {
		name string
		body HowtoRequest
		want string
	}{
		{"no modifications", HowtoRequest{Target: howto.Target{Query: `SELECT SUM(fee) AS s FROM orders`, Column: "s", Op: "<="}}, "no modifications"},
		{"bad op", HowtoRequest{Modifications: mods, Target: howto.Target{Query: `SELECT SUM(fee) AS s FROM orders`, Column: "s", Op: "<"}}, "unsupported op"},
		{"non-aggregate", HowtoRequest{Modifications: mods, Target: howto.Target{Query: `SELECT id FROM orders`, Column: "id", Op: "<="}}, "aggregate"},
		{"unreachable", HowtoRequest{Modifications: mods, Target: howto.Target{Query: `SELECT SUM(fee) AS s FROM orders`, Column: "s", Op: ">=", Value: 1e9},
			Bounds: map[string]howto.Range{"x": {Lo: -10, Hi: 10}}}, "no satisfying binding"},
		{"bad variant", HowtoRequest{Modifications: mods, Variant: "R+XX", Target: howto.Target{Query: `SELECT SUM(fee) AS s FROM orders`, Column: "s", Op: "<="}}, "unknown variant"},
	}
	for _, c := range cases {
		w := postJSON(t, h, "/v1/howto", c.body)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d (want 400): %s", c.name, w.Code, w.Body)
			continue
		}
		if !strings.Contains(w.Body.String(), c.want) {
			t.Errorf("%s: body %s does not mention %q", c.name, w.Body, c.want)
		}
	}
}

// TestWhatIfQueries: attaching aggregate queries to /v1/whatif returns
// per-group historical/hypothetical/delta reports alongside the delta.
func TestWhatIfQueries(t *testing.T) {
	srv := newTestServer(t, Options{})
	w := postJSON(t, srv.Handler(), "/v1/whatif", WhatIfRequest{
		Modifications: []Modification{{Op: "replace", Pos: 2,
			Statement: `UPDATE orders SET fee = fee + 3 WHERE price < 40`}},
		Queries: []string{`SELECT SUM(fee) AS s, COUNT(*) AS n FROM orders`},
	})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp WhatIfResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Aggregates) != 1 || len(resp.Aggregates[0].Rows) != 1 {
		t.Fatalf("want one report with one row, got %s", w.Body)
	}
	row := resp.Aggregates[0].Rows[0]
	// Five rows historically at +1 move to +3: the SUM delta is +10,
	// the COUNT delta 0.
	if got := row.Delta[0].AsFloat(); got != 10 {
		t.Errorf("sum delta = %v, want 10: %s", got, w.Body)
	}
	if got := row.Delta[1].AsFloat(); got != 0 {
		t.Errorf("count delta = %v, want 0: %s", got, w.Body)
	}

	// A bad aggregate query is a 400, not a silent omission.
	w = postJSON(t, srv.Handler(), "/v1/whatif", WhatIfRequest{
		Modifications: []Modification{{Op: "delete", Pos: 2}},
		Queries:       []string{`SELECT id FROM orders`},
	})
	if w.Code != http.StatusBadRequest {
		t.Errorf("non-aggregate query: status %d (want 400): %s", w.Code, w.Body)
	}
}

// TestBatchQueries: scenario-attached aggregate queries come back per
// scenario; scenarios without queries omit the field.
func TestBatchQueries(t *testing.T) {
	srv := newTestServer(t, Options{})
	w := postJSON(t, srv.Handler(), "/v1/batch", BatchRequest{
		Scenarios: []Scenario{
			{Label: "plain", Modifications: []Modification{{Op: "delete", Pos: 2}}},
			{Label: "with-queries",
				Modifications: []Modification{{Op: "replace", Pos: 2,
					Statement: `UPDATE orders SET fee = fee + 3 WHERE price < 40`}},
				Queries: []string{`SELECT SUM(fee) AS s FROM orders`}},
		},
	})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp BatchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("want 2 results: %s", w.Body)
	}
	if resp.Results[0].Aggregates != nil {
		t.Errorf("scenario without queries has aggregates: %s", w.Body)
	}
	if len(resp.Results[1].Aggregates) != 1 || len(resp.Results[1].Aggregates[0].Rows) != 1 {
		t.Fatalf("scenario with queries: want one report with one row: %s", w.Body)
	}
	if got := resp.Results[1].Aggregates[0].Rows[0].Delta[0].AsFloat(); got != 10 {
		t.Errorf("sum delta = %v, want 10: %s", got, w.Body)
	}
}

// TestTemplateEvalQueries: aggregate queries ride along template evals,
// both single-binding and sweep forms.
func TestTemplateEvalQueries(t *testing.T) {
	srv := newTestServer(t, Options{})
	h := srv.Handler()
	w := postJSON(t, h, "/v1/template", TemplateRequest{
		Modifications: []Modification{{Op: "replace", Pos: 2,
			Statement: `UPDATE orders SET fee = fee + $x WHERE price < 40`}},
	})
	if w.Code != http.StatusOK {
		t.Fatalf("template create: status %d: %s", w.Code, w.Body)
	}
	var created TemplateResponse
	if err := json.Unmarshal(w.Body.Bytes(), &created); err != nil {
		t.Fatal(err)
	}

	w = postJSON(t, h, "/v1/template/"+created.ID+"/eval", map[string]any{
		"binding": map[string]any{"x": 3},
		"queries": []string{`SELECT SUM(fee) AS s FROM orders`},
	})
	if w.Code != http.StatusOK {
		t.Fatalf("single eval: status %d: %s", w.Code, w.Body)
	}
	var single TemplateEvalResponse
	if err := json.Unmarshal(w.Body.Bytes(), &single); err != nil {
		t.Fatal(err)
	}
	if len(single.Aggregates) != 1 || len(single.Aggregates[0].Rows) != 1 {
		t.Fatalf("single eval: want one report with one row: %s", w.Body)
	}
	if got := single.Aggregates[0].Rows[0].Delta[0].AsFloat(); got != 10 {
		t.Errorf("single eval sum delta = %v, want 10: %s", got, w.Body)
	}

	w = postJSON(t, h, "/v1/template/"+created.ID+"/eval", map[string]any{
		"bindings": []map[string]any{{"x": 1}, {"x": 3}},
		"queries":  []string{`SELECT SUM(fee) AS s FROM orders`},
	})
	if w.Code != http.StatusOK {
		t.Fatalf("sweep eval: status %d: %s", w.Code, w.Body)
	}
	var sweep TemplateEvalResponse
	if err := json.Unmarshal(w.Body.Bytes(), &sweep); err != nil {
		t.Fatal(err)
	}
	if len(sweep.Results) != 2 {
		t.Fatalf("sweep eval: want 2 results: %s", w.Body)
	}
	// Delta SUM is 5x − 5: binding 1 is a no-op, binding 3 moves +10.
	for i, want := range []float64{0, 10} {
		reps := sweep.Results[i].Aggregates
		if len(reps) != 1 || len(reps[0].Rows) != 1 {
			t.Fatalf("sweep binding %d: want one report with one row: %s", i+1, w.Body)
		}
		if got := reps[0].Rows[0].Delta[0].AsFloat(); got != want {
			t.Errorf("sweep binding %d sum delta = %v, want %v", i+1, got, want)
		}
	}
}
