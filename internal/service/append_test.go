package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"github.com/mahif/mahif/internal/core"
	"github.com/mahif/mahif/internal/persist"
	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/storage"
	"github.com/mahif/mahif/internal/types"
)

func TestAppendEndpoint(t *testing.T) {
	srv := newTestServer(t, Options{})
	h := srv.Handler()

	// Warm a session so the advance has caches to keep.
	warm := postJSON(t, h, "/v1/whatif", WhatIfRequest{
		Modifications: []Modification{{Op: "replace", Pos: 1, Statement: `UPDATE orders SET fee = 0 WHERE price >= 60`}},
	})
	if warm.Code != http.StatusOK {
		t.Fatalf("warm status %d: %s", warm.Code, warm.Body)
	}

	w := postJSON(t, h, "/v1/history", AppendRequest{
		Statements: []string{`UPDATE orders SET fee = 2 WHERE price < 35`},
	})
	if w.Code != http.StatusOK {
		t.Fatalf("append status %d: %s", w.Code, w.Body)
	}
	var resp AppendResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Version != 3 || resp.Appended != 1 || resp.Durable {
		t.Fatalf("append response %+v", resp)
	}

	// The appended statement is visible and modifiable.
	g := httptest.NewRecorder()
	h.ServeHTTP(g, httptest.NewRequest("GET", "/v1/history", nil))
	var hist HistoryResponse
	if err := json.Unmarshal(g.Body.Bytes(), &hist); err != nil {
		t.Fatal(err)
	}
	if hist.Version != 3 || len(hist.Statements) != 3 {
		t.Fatalf("history after append: %+v", hist)
	}
	q := postJSON(t, h, "/v1/whatif", WhatIfRequest{
		Modifications: []Modification{{Op: "delete", Pos: 3}},
	})
	if q.Code != http.StatusOK {
		t.Fatalf("what-if over appended tail: %d %s", q.Code, q.Body)
	}

	// The session survived the advance with caches intact.
	for _, st := range srv.SessionStats() {
		if st.Invalidations != 0 {
			t.Fatalf("append invalidated the session: %+v", st)
		}
	}

	// Bad requests.
	if w := postJSON(t, h, "/v1/history", AppendRequest{}); w.Code != http.StatusBadRequest {
		t.Fatalf("empty append: %d", w.Code)
	}
	if w := postJSON(t, h, "/v1/history", AppendRequest{Statements: []string{"UPDATE"}}); w.Code != http.StatusBadRequest {
		t.Fatalf("unparseable append: %d", w.Code)
	}
	if w := postJSON(t, h, "/v1/history", AppendRequest{Statements: []string{"UPDATE nosuch SET a = 1"}}); w.Code != http.StatusBadRequest {
		t.Fatalf("unappliable append: %d", w.Code)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv := newTestServer(t, Options{})
	h := srv.Handler()
	postJSON(t, h, "/v1/whatif", WhatIfRequest{
		Modifications: []Modification{{Op: "replace", Pos: 1, Statement: `UPDATE orders SET fee = 0 WHERE price >= 60`}},
	})
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/metrics", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("metrics status %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	body := w.Body.String()
	for _, want := range []string{
		"# TYPE mahif_session_calls_total counter",
		`mahif_session_calls_total{session="0"} 1`,
		"mahif_history_version 2",
		"mahif_session_snapshot_misses_total",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, body)
		}
	}
	// No store → no WAL series.
	if strings.Contains(body, "mahif_wal_") {
		t.Fatalf("in-memory server exposes WAL metrics:\n%s", body)
	}
}

// memBase builds the fixture's base state (the orders relation of
// newTestServer, before any history ran).
func memBase(t *testing.T) *storage.Database {
	t.Helper()
	s := schema.New("orders",
		schema.Col("id", types.KindInt),
		schema.Col("price", types.KindFloat),
		schema.Col("fee", types.KindFloat),
	)
	rel := storage.NewRelation(s)
	for i := 0; i < 40; i++ {
		rel.Add(schema.NewTuple(types.Int(int64(i)), types.Float(float64(30+i*2)), types.Float(5)))
	}
	db := storage.NewDatabase()
	db.AddRelation(rel)
	return db
}

// newDurableServer builds (or on a second call, recovers) a server
// over a store directory.
func newDurableServer(t *testing.T, dir string) (*Server, *persist.Store) {
	t.Helper()
	var store *persist.Store
	var err error
	if persist.Detect(dir) {
		store, err = persist.Open(dir, persist.Options{})
	} else {
		store, err = persist.Create(dir, memBase(t), persist.Options{})
	}
	if err != nil {
		t.Fatal(err)
	}
	return New(core.NewDurable(store), Options{Store: store}), store
}

func TestDurableAppendAndRestartGolden(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	srv, store := newDurableServer(t, dir)
	h := srv.Handler()

	// Build the history live, over HTTP.
	for _, stmt := range []string{
		`UPDATE orders SET fee = 0 WHERE price >= 50`,
		`UPDATE orders SET fee = fee + 1 WHERE price < 40`,
		`INSERT INTO orders VALUES (100, 99.5, 0.0)`,
	} {
		w := postJSON(t, h, "/v1/history", AppendRequest{Statements: []string{stmt}})
		if w.Code != http.StatusOK {
			t.Fatalf("append %q: %d %s", stmt, w.Code, w.Body)
		}
		var resp AppendResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if !resp.Durable {
			t.Fatalf("durable server reported Durable=false")
		}
	}

	query := WhatIfRequest{
		Modifications: []Modification{{Op: "replace", Pos: 1, Statement: `UPDATE orders SET fee = 0 WHERE price >= 60`}},
	}
	before := postJSON(t, h, "/v1/whatif", query)
	if before.Code != http.StatusOK {
		t.Fatalf("whatif before restart: %d %s", before.Code, before.Body)
	}
	// Kill: close only the files (no graceful engine teardown exists to
	// skip; the WAL was fsynced per append).
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	srv2, store2 := newDurableServer(t, dir)
	defer store2.Close()
	after := postJSON(t, srv2.Handler(), "/v1/whatif", query)
	if after.Code != http.StatusOK {
		t.Fatalf("whatif after restart: %d %s", after.Code, after.Body)
	}
	if before.Body.String() != after.Body.String() {
		t.Fatalf("restart changed the answer:\nbefore: %s\nafter:  %s", before.Body, after.Body)
	}

	// WAL metrics present on a durable server.
	w := httptest.NewRecorder()
	srv2.Handler().ServeHTTP(w, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(w.Body.String(), "mahif_wal_segments") {
		t.Fatalf("durable server missing WAL metrics:\n%s", w.Body)
	}
}
