package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/mahif/mahif/internal/core"
	"github.com/mahif/mahif/internal/persist"
)

// Options tunes a Server.
type Options struct {
	// Sessions is the session-pool size (default 1). Sessions are
	// concurrency-safe, so one maximizes cache reuse; more than one
	// reduces contention on the cache locks under very high fan-in at
	// the cost of splitting the caches.
	Sessions int
	// Timeout is the per-request evaluation budget (default 30s). A
	// request's timeout_ms can tighten it but never extend it.
	Timeout time.Duration
	// MaxBodyBytes bounds request bodies (default 1 MiB).
	MaxBodyBytes int64
	// Store, when set, is the durability layer behind the engine. It
	// feeds the /metrics exposition and serves the replication
	// endpoints: GET /v1/wal (the record stream) and GET /v1/checkpoint
	// (bootstrap images) exist only on a store-backed server.
	Store *persist.Store
	// Role labels this process in /v1/status: "single" (default),
	// "leader", or "replica" (the router has its own handler in
	// internal/replica).
	Role string
	// ReadOnly rejects POST /v1/history with 403 — the replica stance:
	// writes go to the leader, the local history only advances through
	// the replication stream.
	ReadOnly bool
	// Replication, when set, reports the follower's stream position in
	// /v1/status and /metrics.
	Replication ReplicationReporter
}

func (o Options) withDefaults() Options {
	if o.Sessions <= 0 {
		o.Sessions = 1
	}
	if o.Timeout <= 0 {
		o.Timeout = 30 * time.Second
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	if o.Role == "" {
		o.Role = "single"
	}
	return o
}

// Server answers what-if queries over HTTP through a pool of
// long-lived sessions. Create with New, mount with Handler.
type Server struct {
	engine *core.Engine
	opts   Options
	// sessions are handed out round-robin without exclusive checkout:
	// a Session is concurrency-safe, so any number of requests may
	// evaluate through the same one simultaneously (that sharing is
	// what makes the caches effective). Sessions invalidate their
	// caches themselves if the history advances between requests.
	sessions []*core.Session
	next     atomic.Uint64

	// WAL stream traffic (leader side), for /metrics.
	walStreams       atomic.Int64
	walStreamRecords atomic.Int64

	// Compiled scenario templates registered via POST /v1/template,
	// addressed by id in /v1/template/{id}/eval. Ids are monotonic per
	// process; the artifacts behind them are shared with the session
	// template cache, so identical resubmissions don't recompile.
	tmu           sync.Mutex
	templates     map[string]*core.Template
	tseq          int64
	templateEvals atomic.Int64

	// streamStop ends live WAL streams on shutdown: they outlive any
	// drain window by design, so Shutdown would otherwise never finish.
	streamStop     chan struct{}
	streamStopOnce sync.Once
}

// StopStreams ends the open WAL streams (idempotent). Wire it to
// http.Server.RegisterOnShutdown so followers are cut loose while
// ordinary requests drain; they reconnect to the restarted leader.
func (s *Server) StopStreams() {
	s.streamStopOnce.Do(func() { close(s.streamStop) })
}

// New builds a server over an engine whose history is already loaded.
func New(engine *core.Engine, opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{engine: engine, opts: opts, sessions: make([]*core.Session, opts.Sessions), streamStop: make(chan struct{})}
	for i := range s.sessions {
		s.sessions[i] = engine.NewSession()
	}
	return s
}

// session picks the next session round-robin.
func (s *Server) session() *core.Session {
	return s.sessions[s.next.Add(1)%uint64(len(s.sessions))]
}

// SessionStats aggregates the cache counters across the pool (for
// logging and tests).
func (s *Server) SessionStats() []core.SessionStats {
	out := make([]core.SessionStats, 0, len(s.sessions))
	for _, sess := range s.sessions {
		out = append(out, sess.Stats())
	}
	return out
}

// Handler returns the v1 API:
//
//	POST /v1/whatif      one what-if query             → WhatIfResponse
//	POST /v1/batch       a scenario batch              → BatchResponse
//	POST /v1/template    compile a parameterized scenario → TemplateResponse
//	POST /v1/template/{id}/eval  answer binding(s)     → TemplateEvalResponse
//	GET  /v1/history     the history (paged: ?since=N&limit=M) → HistoryResponse
//	POST /v1/history     append statements (live)      → AppendResponse
//	GET  /v1/status      role + replication position   → StatusResponse
//	GET  /v1/wal         committed WAL record stream (store-backed only)
//	GET  /v1/checkpoint  checkpoint image (store-backed only)
//	GET  /metrics        Prometheus text exposition
//	GET  /healthz        liveness                      → 200 "ok"
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/whatif", s.handleWhatIf)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("POST /v1/template", s.handleTemplateCreate)
	mux.HandleFunc("POST /v1/template/{id}/eval", s.handleTemplateEval)
	mux.HandleFunc("POST /v1/howto", s.handleHowto)
	mux.HandleFunc("GET /v1/history", s.handleHistory)
	mux.HandleFunc("POST /v1/history", s.handleAppend)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	mux.HandleFunc("GET /v1/wal", s.handleWALStream)
	mux.HandleFunc("GET /v1/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// handleAppend commits new history statements. Sessions keep their
// caches (the history is append-only; see core.Session), so serving
// continues warm across the advance. On a durable engine the response
// is written only after the WAL fsync.
func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	if s.opts.ReadOnly {
		writeError(w, http.StatusForbidden, fmt.Errorf("read-only %s: appends go to the leader", s.opts.Role))
		return
	}
	var req AppendRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	stmts, err := DecodeStatements(req.Statements)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMs)
	defer cancel()
	ver, err := s.engine.AppendCtx(ctx, stmts)
	if err != nil {
		// Statements before the failing one stay committed; the error
		// carries the detail, the version the survivors.
		writeJSON(w, statusFor(err), struct {
			ErrorResponse
			Version int `json:"version"`
		}{ErrorResponse{Error: err.Error()}, ver})
		return
	}
	writeJSON(w, http.StatusOK, AppendResponse{
		Version:  ver,
		Appended: len(stmts),
		Durable:  s.engine.Durable(),
	})
}

// requestCtx derives the evaluation context: the request context
// (cancelled when the client disconnects) bounded by the server
// timeout, optionally tightened by the request's own timeout_ms.
func (s *Server) requestCtx(r *http.Request, timeoutMs int) (context.Context, context.CancelFunc) {
	timeout := s.opts.Timeout
	if timeoutMs > 0 {
		if d := time.Duration(timeoutMs) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	return context.WithTimeout(r.Context(), timeout)
}

// decodeBody reads a bounded JSON body, rejecting unknown fields so
// client typos surface as 400s instead of silently ignored options.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, into any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON body")
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(body)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

// statusFor maps evaluation errors to HTTP codes: deadline overruns
// are the server's fault (504), everything else surfaced by the
// engine at this point is a bad query (400).
func statusFor(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// Client went away; the code is moot but 499-style 400 keeps
		// logs sane.
		return http.StatusBadRequest
	default:
		return http.StatusBadRequest
	}
}

func variantOptions(name string) (core.Options, bool) {
	switch core.Variant(name) {
	case "", core.VariantRFull:
		return core.OptionsFor(core.VariantRFull), true
	case core.VariantR, core.VariantRPS, core.VariantRDS:
		return core.OptionsFor(core.Variant(name)), true
	}
	return core.Options{}, false
}

func (s *Server) handleWhatIf(w http.ResponseWriter, r *http.Request) {
	var req WhatIfRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	mods, err := DecodeModifications(req.Modifications)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	queries, err := DecodeAggregateQueries(req.Queries)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMs)
	defer cancel()
	if err := s.waitMinVersion(ctx, req.MinVersion); err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	sess := s.session()

	if req.Variant == string(core.VariantNaive) {
		d, reps, stats, err := sess.NaiveAggregatesCtx(ctx, mods, queries)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		resp := WhatIfResponse{Delta: d, Aggregates: reps}
		if req.Stats {
			resp.NaiveStats = stats
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}

	opts, ok := variantOptions(req.Variant)
	if !ok {
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown variant %q (want N, R, R+PS, R+DS, R+PS+DS)", req.Variant))
		return
	}
	d, reps, stats, err := sess.WhatIfAggregatesCtx(ctx, mods, queries, opts)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	resp := WhatIfResponse{Delta: d, Aggregates: reps}
	if req.Stats {
		resp.Stats = stats
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	scenarios, err := DecodeScenarios(req.Scenarios)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	opts, ok := variantOptions(req.Variant)
	if !ok {
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown variant %q (want R, R+PS, R+DS, R+PS+DS)", req.Variant))
		return
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMs)
	defer cancel()
	if err := s.waitMinVersion(ctx, req.MinVersion); err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	sess := s.session()

	results, bstats, err := sess.WhatIfBatchCtx(ctx, scenarios, core.BatchOptions{
		Options: opts,
		Workers: req.Workers,
	})
	if err != nil && results == nil {
		writeError(w, statusFor(err), err)
		return
	}
	// err != nil with results means the batch was cut short by the
	// deadline: per-scenario errors carry the detail, so the partial
	// results are still worth returning — with the timeout status.
	status := http.StatusOK
	if err != nil {
		status = statusFor(err)
	}
	resp := BatchResponse{Results: make([]BatchScenarioResult, len(results))}
	for i, res := range results {
		out := BatchScenarioResult{Scenario: res.Scenario + 1, Label: res.Label, Delta: res.Delta, Aggregates: res.Aggregates}
		if res.Err != nil {
			out.Error = res.Err.Error()
		}
		if req.Stats {
			out.Stats = res.Stats
		}
		resp.Results[i] = out
	}
	if req.Stats {
		resp.Stats = bstats
	}
	writeJSON(w, status, resp)
}

// waitMinVersion enforces a request's read-your-writes bound: block
// until the local history reaches minVersion or the deadline maps the
// wait to a 504. The no-bound case is free.
func (s *Server) waitMinVersion(ctx context.Context, minVersion int) error {
	if minVersion <= 0 {
		return nil
	}
	if err := s.engine.WaitVersionCtx(ctx, minVersion); err != nil {
		return fmt.Errorf("waiting for version %d (at %d): %w", minVersion, s.engine.Version(), err)
	}
	return nil
}

// handleHistory serves the history, whole (no query parameters — the
// original wire format, unchanged) or paged with ?since=N&limit=M,
// where since counts statements to skip and the response echoes it
// plus a "more" marker. The paged shape is what a replica's catch-up
// and any UI scrolling a long history want.
func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	since, err := queryInt(q.Get("since"), 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad since: %w", err))
		return
	}
	limit, err := queryInt(q.Get("limit"), 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad limit: %w", err))
		return
	}
	paged := q.Has("since") || q.Has("limit")
	h, total, err := s.engine.HistoryRange(since, limit)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	resp := HistoryResponse{Version: total, Statements: make([]string, len(h))}
	for i, st := range h {
		resp.Statements[i] = st.String()
	}
	if paged {
		resp.Since = since
		resp.More = since+len(h) < total
	}
	writeJSON(w, http.StatusOK, resp)
}

// queryInt parses a non-negative integer query parameter.
func queryInt(raw string, def int) (int, error) {
	if raw == "" {
		return def, nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil {
		return 0, err
	}
	if n < 0 {
		return 0, fmt.Errorf("%d is negative", n)
	}
	return n, nil
}
