package service

import (
	"fmt"
	"net/http"
	"strings"
)

// handleMetrics renders a Prometheus text exposition (format 0.0.4) of
// the session pool's cache counters plus the durable store's WAL and
// checkpoint counters when the server is backed by one. Hand-rolled on
// purpose: the counter set is small and a client dependency would be
// the only one in the module.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	m := func(name, help, typ string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}

	m("mahif_history_version", "Number of statements in the transactional history.", "gauge")
	fmt.Fprintf(&b, "mahif_history_version %d\n", s.engine.Version())

	m("mahif_session_calls_total", "Evaluation entries through each session.", "counter")
	m("mahif_session_invalidations_total", "Explicit cache resets per session.", "counter")
	m("mahif_session_advances_total", "History advances survived with caches kept (optimistic cross-version reuse).", "counter")
	m("mahif_session_snapshot_hits_total", "Time-travel snapshot cache hits per session.", "counter")
	m("mahif_session_snapshot_misses_total", "Time-travel snapshot cache misses per session.", "counter")
	m("mahif_session_snapshot_evictions_total", "Completed snapshots dropped by the retention bound per session.", "counter")
	m("mahif_session_snapshot_resident", "Completed snapshots currently held per session.", "gauge")
	m("mahif_session_snapshot_tip_evictions_total", "Superseded tip-pinned snapshots eagerly dropped per session.", "counter")
	m("mahif_session_snapshot_tip_resident", "Tip-pinned snapshots (private full copies) currently held per session.", "gauge")
	m("mahif_session_memo_hits_total", "Solver-outcome memo hits per session.", "counter")
	m("mahif_session_memo_misses_total", "Solver-outcome memo misses per session.", "counter")
	m("mahif_session_memo_evictions_total", "Solver outcomes dropped by the memo LRU bound per session.", "counter")
	m("mahif_session_query_hits_total", "Compiled reenactment-result cache hits per session.", "counter")
	m("mahif_session_query_misses_total", "Compiled reenactment-result cache misses per session.", "counter")
	m("mahif_session_query_evictions_total", "Materialized results dropped by the query-cache LRU bound per session.", "counter")
	m("mahif_session_query_resident", "Materialized results currently held per session.", "gauge")
	m("mahif_session_template_hits_total", "Compiled scenario-template cache hits per session.", "counter")
	m("mahif_session_template_misses_total", "Compiled scenario-template cache misses per session.", "counter")
	m("mahif_session_template_evictions_total", "Template artifacts dropped by the template-cache LRU bound per session.", "counter")
	m("mahif_session_template_resident", "Template artifacts currently held per session.", "gauge")
	for i, st := range s.SessionStats() {
		l := fmt.Sprintf("{session=\"%d\"}", i)
		fmt.Fprintf(&b, "mahif_session_calls_total%s %d\n", l, st.Calls)
		fmt.Fprintf(&b, "mahif_session_invalidations_total%s %d\n", l, st.Invalidations)
		fmt.Fprintf(&b, "mahif_session_advances_total%s %d\n", l, st.Advances)
		fmt.Fprintf(&b, "mahif_session_snapshot_hits_total%s %d\n", l, st.SnapshotHits)
		fmt.Fprintf(&b, "mahif_session_snapshot_misses_total%s %d\n", l, st.SnapshotMisses)
		fmt.Fprintf(&b, "mahif_session_snapshot_evictions_total%s %d\n", l, st.SnapshotEvictions)
		fmt.Fprintf(&b, "mahif_session_snapshot_resident%s %d\n", l, st.SnapshotResident)
		fmt.Fprintf(&b, "mahif_session_snapshot_tip_evictions_total%s %d\n", l, st.SnapshotTipEvictions)
		fmt.Fprintf(&b, "mahif_session_snapshot_tip_resident%s %d\n", l, st.SnapshotTipResident)
		fmt.Fprintf(&b, "mahif_session_memo_hits_total%s %d\n", l, st.MemoHits)
		fmt.Fprintf(&b, "mahif_session_memo_misses_total%s %d\n", l, st.MemoMisses)
		fmt.Fprintf(&b, "mahif_session_memo_evictions_total%s %d\n", l, st.MemoEvictions)
		fmt.Fprintf(&b, "mahif_session_query_hits_total%s %d\n", l, st.QueryHits)
		fmt.Fprintf(&b, "mahif_session_query_misses_total%s %d\n", l, st.QueryMisses)
		fmt.Fprintf(&b, "mahif_session_query_evictions_total%s %d\n", l, st.QueryEvictions)
		fmt.Fprintf(&b, "mahif_session_query_resident%s %d\n", l, st.QueryResident)
		fmt.Fprintf(&b, "mahif_session_template_hits_total%s %d\n", l, st.TemplateHits)
		fmt.Fprintf(&b, "mahif_session_template_misses_total%s %d\n", l, st.TemplateMisses)
		fmt.Fprintf(&b, "mahif_session_template_evictions_total%s %d\n", l, st.TemplateEvictions)
		fmt.Fprintf(&b, "mahif_session_template_resident%s %d\n", l, st.TemplateResident)
	}

	s.tmu.Lock()
	registered := len(s.templates)
	s.tmu.Unlock()
	m("mahif_templates_registered", "Scenario templates registered via POST /v1/template.", "gauge")
	fmt.Fprintf(&b, "mahif_templates_registered %d\n", registered)
	m("mahif_template_evals_total", "Bindings answered through template eval endpoints.", "counter")
	fmt.Fprintf(&b, "mahif_template_evals_total %d\n", s.templateEvals.Load())

	if s.opts.Store != nil {
		st := s.opts.Store.Stats()
		ri := s.opts.Store.RecoveryInfo()
		m("mahif_wal_appends_total", "Append calls committed to the WAL.", "counter")
		fmt.Fprintf(&b, "mahif_wal_appends_total %d\n", st.Appends)
		m("mahif_wal_statements_appended_total", "Statements committed to the WAL.", "counter")
		fmt.Fprintf(&b, "mahif_wal_statements_appended_total %d\n", st.StatementsAppended)
		m("mahif_wal_append_errors_total", "Statements rejected by the append path.", "counter")
		fmt.Fprintf(&b, "mahif_wal_append_errors_total %d\n", st.AppendErrors)
		m("mahif_wal_bytes_written_total", "WAL record bytes written since start.", "counter")
		fmt.Fprintf(&b, "mahif_wal_bytes_written_total %d\n", st.WALBytesWritten)
		m("mahif_wal_segments", "WAL segment files.", "gauge")
		fmt.Fprintf(&b, "mahif_wal_segments %d\n", st.Segments)
		m("mahif_wal_rotations_total", "WAL segment rotations since start.", "counter")
		fmt.Fprintf(&b, "mahif_wal_rotations_total %d\n", st.Rotations)
		m("mahif_checkpoints_written_total", "Snapshot checkpoints written since start.", "counter")
		fmt.Fprintf(&b, "mahif_checkpoints_written_total %d\n", st.CheckpointsWritten)
		m("mahif_checkpoint_last_version", "History version of the newest checkpoint.", "gauge")
		fmt.Fprintf(&b, "mahif_checkpoint_last_version %d\n", st.LastCheckpointVersion)
		m("mahif_checkpoint_last_bytes", "Size of the newest checkpoint written this process.", "gauge")
		fmt.Fprintf(&b, "mahif_checkpoint_last_bytes %d\n", st.LastCheckpointBytes)
		m("mahif_recovery_duration_seconds", "Wall-clock cost of the last crash recovery.", "gauge")
		fmt.Fprintf(&b, "mahif_recovery_duration_seconds %g\n", ri.Duration.Seconds())
		m("mahif_recovery_replayed_statements", "Statements replayed on top of the recovery checkpoint.", "gauge")
		fmt.Fprintf(&b, "mahif_recovery_replayed_statements %d\n", ri.ReplayedStatements)
		m("mahif_recovery_truncated_records", "Torn-tail records discarded by the last recovery.", "gauge")
		fmt.Fprintf(&b, "mahif_recovery_truncated_records %d\n", ri.TruncatedRecords)
		m("mahif_wal_streams_total", "WAL replication streams opened by followers.", "counter")
		fmt.Fprintf(&b, "mahif_wal_streams_total %d\n", s.walStreams.Load())
		m("mahif_wal_stream_records_total", "WAL records shipped to followers.", "counter")
		fmt.Fprintf(&b, "mahif_wal_stream_records_total %d\n", s.walStreamRecords.Load())
	}

	if s.opts.Replication != nil {
		rs := s.opts.Replication.ReplicationStatus()
		m("mahif_replication_connected", "1 while the WAL stream from the leader is live.", "gauge")
		fmt.Fprintf(&b, "mahif_replication_connected %d\n", b2i(rs.Connected))
		m("mahif_replication_applied_version", "History version this follower has applied.", "gauge")
		fmt.Fprintf(&b, "mahif_replication_applied_version %d\n", rs.AppliedVersion)
		m("mahif_replication_leader_version", "Newest leader version this follower has observed.", "gauge")
		fmt.Fprintf(&b, "mahif_replication_leader_version %d\n", rs.LeaderVersion)
		m("mahif_replication_lag", "Statements the follower is behind the leader.", "gauge")
		fmt.Fprintf(&b, "mahif_replication_lag %d\n", rs.Lag)
		m("mahif_replication_records_applied_total", "Statements applied off the replication stream.", "counter")
		fmt.Fprintf(&b, "mahif_replication_records_applied_total %d\n", rs.RecordsApplied)
		m("mahif_replication_reconnects_total", "Stream re-establishments after the initial connect.", "counter")
		fmt.Fprintf(&b, "mahif_replication_reconnects_total %d\n", rs.Reconnects)
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}

func b2i(v bool) int {
	if v {
		return 1
	}
	return 0
}
