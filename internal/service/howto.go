package service

import (
	"fmt"
	"net/http"

	"github.com/mahif/mahif/internal/howto"
)

// HowtoRequest is the body of POST /v1/howto: a parameterized
// modification sequence ($name slots), a target condition over an
// aggregate delta, and the search configuration.
type HowtoRequest struct {
	// Modifications is the scenario; its statements carry the $slots
	// the search binds.
	Modifications []Modification `json:"modifications"`
	// Target is the desired effect (see howto.Target): an aggregate
	// query, an optional group selector, a column, and a condition
	// "<=", ">=", or "==" against a value.
	Target howto.Target `json:"target"`
	// Bounds gives each parameter's search interval (default ±1e6).
	Bounds map[string]howto.Range `json:"bounds,omitempty"`
	// Variant selects the engine options used for searching and for
	// the certificate's fresh what-if (empty means R+PS+DS).
	Variant string `json:"variant,omitempty"`
	// TimeoutMs tightens (never extends) the server's per-request
	// timeout.
	TimeoutMs int `json:"timeout_ms,omitempty"`
	// MinVersion is the read-your-writes bound (see WhatIfRequest).
	MinVersion int `json:"min_version,omitempty"`
}

// HowtoResponse is the body of a successful POST /v1/howto: the
// minimal-magnitude satisfying binding with its differential
// certificate (see howto.Result).
type HowtoResponse struct {
	Result *howto.Result `json:"result"`
}

// handleHowto answers a how-to query: search the scenario's binding
// space for the minimal-magnitude parameters that achieve the target,
// and certify the answer with a fresh what-if. An unreachable target
// or an unsupported search shape (non-linear multi-slot) is a 400 with
// the detail.
func (s *Server) handleHowto(w http.ResponseWriter, r *http.Request) {
	var req HowtoRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	mods, err := DecodeModifications(req.Modifications)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	opts, ok := variantOptions(req.Variant)
	if !ok {
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown variant %q (want R, R+PS, R+DS, R+PS+DS)", req.Variant))
		return
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMs)
	defer cancel()
	if err := s.waitMinVersion(ctx, req.MinVersion); err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	res, err := howto.Search(ctx, s.engine, mods, req.Target, howto.Options{
		Bounds: req.Bounds,
		Engine: &opts,
	})
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, HowtoResponse{Result: res})
}
