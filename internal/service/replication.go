package service

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"github.com/mahif/mahif/internal/persist"
)

// handleStatus reports the server's role and replication position —
// the cheap poll the router's health checks and a catching-up client
// both use.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	resp := StatusResponse{
		Role:     s.opts.Role,
		Version:  s.engine.Version(),
		Durable:  s.engine.Durable(),
		ReadOnly: s.opts.ReadOnly,
	}
	if s.opts.Replication != nil {
		st := s.opts.Replication.ReplicationStatus()
		resp.Replication = &st
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleWALStream serves GET /v1/wal?from=<seq>[&to=<seq>]: the
// committed WAL records from seq `from` on, in the on-disk record
// framing, as one chunked octet stream. Without `to` the stream never
// ends — after the stored tail it follows live group-committed
// appends, flushing each record as it commits; with `to` it ends after
// that seq (the replica's bounded catch-up fetch). The client tears
// the stream down by closing the connection.
func (s *Server) handleWALStream(w http.ResponseWriter, r *http.Request) {
	if s.opts.Store == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no WAL: this server is not store-backed"))
		return
	}
	q := r.URL.Query()
	from, err := queryInt(q.Get("from"), 1)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad from: %w", err))
		return
	}
	to, err := queryInt(q.Get("to"), 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad to: %w", err))
		return
	}
	tr, err := s.opts.Store.TailFrom(uint64(from))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	defer tr.Close()
	s.walStreams.Add(1)

	// The server's WriteTimeout budgets one query response; a follower
	// stream is open-ended, so lift the deadline for this connection.
	_ = http.NewResponseController(w).SetWriteDeadline(time.Time{})

	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Mahif-Wal-From", strconv.FormatUint(tr.NextSeq(), 10))
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	// The request context — not the server's evaluation timeout —
	// bounds the stream: it lives until the client disconnects or the
	// server begins shutting down (StopStreams).
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	go func() {
		select {
		case <-s.streamStop:
			cancel()
		case <-ctx.Done():
		}
	}()
	var buf []byte
	for {
		if to > 0 && tr.NextSeq() > uint64(to) {
			return
		}
		seq, payload, err := tr.Next(ctx)
		if err != nil {
			// Client gone, server shutting down, or the store closed:
			// nothing useful can be written into a half-sent stream.
			return
		}
		buf = persist.AppendRecord(buf[:0], seq, payload)
		if _, err := w.Write(buf); err != nil {
			return
		}
		s.walStreamRecords.Add(1)
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// handleCheckpoint serves GET /v1/checkpoint[?version=<v>]: the raw
// self-validating checkpoint image (newest without a version; the
// replica asks for version=0 to get the base). The materialized
// version rides in the X-Mahif-Checkpoint-Version header.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if s.opts.Store == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no checkpoints: this server is not store-backed"))
		return
	}
	version := -1
	if raw := r.URL.Query().Get("version"); raw != "" {
		v, err := queryInt(raw, -1)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad version: %w", err))
			return
		}
		version = v
	}
	img, ver, err := s.opts.Store.CheckpointImage(version)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Mahif-Checkpoint-Version", strconv.Itoa(ver))
	w.Header().Set("Content-Length", strconv.Itoa(len(img)))
	_, _ = w.Write(img)
}
