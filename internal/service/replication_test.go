package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func getJSON(t *testing.T, h http.Handler, path string, into any) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if into != nil && w.Code == http.StatusOK {
		if err := json.Unmarshal(w.Body.Bytes(), into); err != nil {
			t.Fatalf("GET %s: %v (%s)", path, err, w.Body)
		}
	}
	return w
}

// TestHistoryPaging pins the since/limit window and that the unpaged
// form keeps its original wire shape (no paging fields).
func TestHistoryPaging(t *testing.T) {
	srv := newTestServer(t, Options{})
	h := srv.Handler()

	var whole HistoryResponse
	w := getJSON(t, h, "/v1/history", &whole)
	if w.Code != http.StatusOK || whole.Version != 2 || len(whole.Statements) != 2 {
		t.Fatalf("unpaged: %d %s", w.Code, w.Body)
	}
	var raw map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["since"]; ok {
		t.Fatalf("unpaged response leaks paging fields: %s", w.Body)
	}
	if _, ok := raw["more"]; ok {
		t.Fatalf("unpaged response leaks paging fields: %s", w.Body)
	}

	var page HistoryResponse
	w = getJSON(t, h, "/v1/history?since=1&limit=5", &page)
	if w.Code != http.StatusOK {
		t.Fatalf("paged: %d %s", w.Code, w.Body)
	}
	if page.Version != 2 || page.Since != 1 || page.More || len(page.Statements) != 1 {
		t.Fatalf("paged window wrong: %+v", page)
	}
	if page.Statements[0] != whole.Statements[1] {
		t.Fatalf("page statement %q, want %q", page.Statements[0], whole.Statements[1])
	}

	// A limited first page reports more.
	var first HistoryResponse
	w = getJSON(t, h, "/v1/history?limit=1", &first)
	if first.Since != 0 || !first.More || len(first.Statements) != 1 {
		t.Fatalf("first page wrong: %+v (%s)", first, w.Body)
	}
	// Past the end: empty page, no more.
	var past HistoryResponse
	w = getJSON(t, h, "/v1/history?since=10", &past)
	if len(past.Statements) != 0 || past.More {
		t.Fatalf("past-end page wrong: %+v (%s)", past, w.Body)
	}

	if w := getJSON(t, h, "/v1/history?since=-1", nil); w.Code != http.StatusBadRequest {
		t.Fatalf("negative since: %d", w.Code)
	}
	if w := getJSON(t, h, "/v1/history?limit=x", nil); w.Code != http.StatusBadRequest {
		t.Fatalf("junk limit: %d", w.Code)
	}
}

// TestMinVersionReadYourWrites pins the version bound: a read with
// min_version above the tip blocks until the history catches up and
// then answers at the new version — never a silently stale answer.
func TestMinVersionReadYourWrites(t *testing.T) {
	srv := newTestServer(t, Options{})
	h := srv.Handler()

	query := WhatIfRequest{
		Modifications: []Modification{{Op: "replace", Pos: 1, Statement: `UPDATE orders SET fee = 0 WHERE price >= 60`}},
		MinVersion:    3, // one past the current 2-statement history
	}
	var (
		wg   sync.WaitGroup
		resp *httptest.ResponseRecorder
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp = postJSON(t, h, "/v1/whatif", query)
	}()

	// Give the read time to block, then unblock it with an append.
	time.Sleep(30 * time.Millisecond)
	w := postJSON(t, h, "/v1/history", AppendRequest{Statements: []string{
		`UPDATE orders SET fee = 2 WHERE id = 1`,
	}})
	if w.Code != http.StatusOK {
		t.Fatalf("append: %d %s", w.Code, w.Body)
	}
	wg.Wait()
	if resp.Code != http.StatusOK {
		t.Fatalf("bounded read: %d %s", resp.Code, resp.Body)
	}

	// An unreachable bound times out as 504, not a stale 200.
	query.MinVersion = 100
	query.TimeoutMs = 50
	w = postJSON(t, h, "/v1/whatif", query)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("unreachable bound: %d %s, want 504", w.Code, w.Body)
	}

	// Batch requests honor the bound the same way.
	bw := postJSON(t, h, "/v1/batch", BatchRequest{
		Scenarios: []Scenario{{Modifications: []Modification{
			{Op: "replace", Pos: 1, Statement: `UPDATE orders SET fee = 0 WHERE price >= 60`},
		}}},
		MinVersion: 100,
		TimeoutMs:  50,
	})
	if bw.Code != http.StatusGatewayTimeout {
		t.Fatalf("batch unreachable bound: %d %s, want 504", bw.Code, bw.Body)
	}
}

// TestStatusEndpoint pins the role/version snapshot and the read-only
// append rejection.
func TestStatusEndpoint(t *testing.T) {
	srv := newTestServer(t, Options{Role: "replica", ReadOnly: true})
	h := srv.Handler()
	var st StatusResponse
	if w := getJSON(t, h, "/v1/status", &st); w.Code != http.StatusOK {
		t.Fatalf("status: %d %s", w.Code, w.Body)
	}
	if st.Role != "replica" || st.Version != 2 || !st.ReadOnly || st.Durable {
		t.Fatalf("status = %+v", st)
	}
	w := postJSON(t, h, "/v1/history", AppendRequest{Statements: []string{
		`UPDATE orders SET fee = 2 WHERE id = 1`,
	}})
	if w.Code != http.StatusForbidden {
		t.Fatalf("read-only append: %d %s, want 403", w.Code, w.Body)
	}
}
