package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/mahif/mahif/internal/types"
)

// createTemplate posts the standard fee template and returns its id.
func createTemplate(t *testing.T, h http.Handler) TemplateResponse {
	t.Helper()
	w := postJSON(t, h, "/v1/template", TemplateRequest{
		Modifications: []Modification{{Op: "replace", Pos: 1, Statement: `UPDATE orders SET fee = 0 WHERE price >= $cut`}},
	})
	if w.Code != http.StatusOK {
		t.Fatalf("template create: status %d: %s", w.Code, w.Body)
	}
	var resp TemplateResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestTemplateEndpoint(t *testing.T) {
	srv := newTestServer(t, Options{})
	h := srv.Handler()
	created := createTemplate(t, h)
	if created.ID == "" || created.Params["cut"] != "numeric" {
		t.Fatalf("create response = %+v, want an id and cut:numeric", created)
	}
	if created.Version != 2 || created.TotalStatements == 0 {
		t.Fatalf("create response = %+v, want version 2 with statements", created)
	}

	// One binding: the delta must match a plain what-if with the
	// constant substituted.
	w := postJSON(t, h, "/v1/template/"+created.ID+"/eval", TemplateEvalRequest{
		Binding: map[string]types.Value{"cut": types.Float(60)},
	})
	if w.Code != http.StatusOK {
		t.Fatalf("eval: status %d: %s", w.Code, w.Body)
	}
	var evalResp TemplateEvalResponse
	if err := json.Unmarshal(w.Body.Bytes(), &evalResp); err != nil {
		t.Fatal(err)
	}
	if evalResp.Delta["orders"] == nil || evalResp.Delta["orders"].Empty() {
		t.Fatalf("expected a non-empty orders delta, got %s", w.Body)
	}
	ww := postJSON(t, h, "/v1/whatif", WhatIfRequest{
		Modifications: []Modification{{Op: "replace", Pos: 1, Statement: `UPDATE orders SET fee = 0 WHERE price >= 60.0`}},
	})
	var whatIf WhatIfResponse
	if err := json.Unmarshal(ww.Body.Bytes(), &whatIf); err != nil {
		t.Fatal(err)
	}
	if !evalResp.Delta["orders"].Equal(whatIf.Delta["orders"]) {
		t.Fatalf("template delta differs from plain what-if:\n%s\nvs\n%s", w.Body, ww.Body)
	}

	// A sweep keeps submission order and 1-based binding indexes.
	bindings := make([]map[string]types.Value, 5)
	for i := range bindings {
		bindings[i] = map[string]types.Value{"cut": types.Float(float64(52 + 4*i))}
	}
	w = postJSON(t, h, "/v1/template/"+created.ID+"/eval", TemplateEvalRequest{Bindings: bindings})
	if w.Code != http.StatusOK {
		t.Fatalf("sweep: status %d: %s", w.Code, w.Body)
	}
	evalResp = TemplateEvalResponse{}
	if err := json.Unmarshal(w.Body.Bytes(), &evalResp); err != nil {
		t.Fatal(err)
	}
	if len(evalResp.Results) != len(bindings) {
		t.Fatalf("sweep returned %d results, want %d", len(evalResp.Results), len(bindings))
	}
	for i, res := range evalResp.Results {
		if res.Binding != i+1 {
			t.Errorf("result %d carries binding %d, want %d", i, res.Binding, i+1)
		}
		if res.Error != "" {
			t.Errorf("binding %d failed: %s", i+1, res.Error)
		}
	}

	// The metrics expose the registry and eval traffic.
	req, _ := http.NewRequest("GET", "/metrics", nil)
	rec := postJSON(t, h, "/v1/template", TemplateRequest{
		Modifications: []Modification{{Op: "replace", Pos: 1, Statement: `UPDATE orders SET fee = 0 WHERE price >= $cut`}},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("second create: %d", rec.Code)
	}
	mrec := getPath(t, h, req)
	for _, want := range []string{
		"mahif_templates_registered 2",
		"mahif_template_evals_total 6",
		"mahif_session_template_hits_total",
	} {
		if !strings.Contains(mrec, want) {
			t.Errorf("metrics missing %q:\n%s", want, mrec)
		}
	}
}

func getPath(t *testing.T, h http.Handler, req *http.Request) string {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("%s: %d", req.URL.Path, rec.Code)
	}
	return rec.Body.String()
}

func TestTemplateEvalErrors(t *testing.T) {
	srv := newTestServer(t, Options{})
	h := srv.Handler()
	created := createTemplate(t, h)

	cases := []struct {
		name     string
		path     string
		req      TemplateEvalRequest
		wantCode int
		wantBody string
	}{
		{
			name:     "unknown id",
			path:     "/v1/template/t999/eval",
			req:      TemplateEvalRequest{Binding: map[string]types.Value{"cut": types.Float(60)}},
			wantCode: http.StatusNotFound,
			wantBody: "unknown template",
		},
		{
			name: "missing parameter",
			path: "/v1/template/" + created.ID + "/eval",
			// A misnamed binding: the required-parameter check fires
			// before the unknown-name check.
			req:      TemplateEvalRequest{Binding: map[string]types.Value{"cutt": types.Float(60)}},
			wantCode: http.StatusBadRequest,
			wantBody: "missing parameter $cut",
		},
		{
			name:     "extra parameter",
			path:     "/v1/template/" + created.ID + "/eval",
			req:      TemplateEvalRequest{Binding: map[string]types.Value{"cut": types.Float(60), "extra": types.Int(1)}},
			wantCode: http.StatusBadRequest,
			wantBody: "unknown parameter $extra",
		},
		{
			name:     "kind mismatch",
			path:     "/v1/template/" + created.ID + "/eval",
			req:      TemplateEvalRequest{Binding: map[string]types.Value{"cut": types.String("sixty")}},
			wantCode: http.StatusBadRequest,
			wantBody: "wants a numeric value",
		},
		{
			name:     "neither binding nor bindings",
			path:     "/v1/template/" + created.ID + "/eval",
			req:      TemplateEvalRequest{},
			wantCode: http.StatusBadRequest,
			wantBody: "exactly one of binding and bindings",
		},
	}
	for _, tc := range cases {
		w := postJSON(t, h, tc.path, tc.req)
		if w.Code != tc.wantCode {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, w.Code, tc.wantCode, w.Body)
		}
		if !strings.Contains(w.Body.String(), tc.wantBody) {
			t.Errorf("%s: body %s, want substring %q", tc.name, w.Body, tc.wantBody)
		}
	}

	// A binding sweep reports per-binding failures without failing the
	// sweep.
	w := postJSON(t, h, "/v1/template/"+created.ID+"/eval", TemplateEvalRequest{
		Bindings: []map[string]types.Value{
			{"cut": types.Float(60)},
			{},
		},
	})
	if w.Code != http.StatusOK {
		t.Fatalf("mixed sweep: status %d: %s", w.Code, w.Body)
	}
	var resp TemplateEvalResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Results[0].Error != "" || resp.Results[1].Error == "" {
		t.Fatalf("mixed sweep results = %s", w.Body)
	}
}

// TestTemplateEvalMinVersion pins the read-your-writes bound on eval:
// the bound blocks until the history reaches it, and the answering
// artifact recompiles against the advanced version.
func TestTemplateEvalMinVersion(t *testing.T) {
	srv := newTestServer(t, Options{})
	h := srv.Handler()
	created := createTemplate(t, h)

	// Append one statement, then eval bounded by the new version.
	aw := postJSON(t, h, "/v1/history", AppendRequest{
		Statements: []string{`UPDATE orders SET fee = fee + 2 WHERE price >= 90`},
	})
	if aw.Code != http.StatusOK {
		t.Fatalf("append: %d %s", aw.Code, aw.Body)
	}
	w := postJSON(t, h, "/v1/template/"+created.ID+"/eval", TemplateEvalRequest{
		Binding:    map[string]types.Value{"cut": types.Float(60)},
		MinVersion: 3,
	})
	if w.Code != http.StatusOK {
		t.Fatalf("bounded eval: status %d: %s", w.Code, w.Body)
	}
	var resp TemplateEvalResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	ww := postJSON(t, h, "/v1/whatif", WhatIfRequest{
		Modifications: []Modification{{Op: "replace", Pos: 1, Statement: `UPDATE orders SET fee = 0 WHERE price >= 60.0`}},
		MinVersion:    3,
	})
	var whatIf WhatIfResponse
	if err := json.Unmarshal(ww.Body.Bytes(), &whatIf); err != nil {
		t.Fatal(err)
	}
	if !resp.Delta["orders"].Equal(whatIf.Delta["orders"]) {
		t.Fatalf("post-append template delta differs from plain what-if:\n%s\nvs\n%s", w.Body, ww.Body)
	}

	// An unreachable bound with a short budget times out as 504.
	w = postJSON(t, h, "/v1/template/"+created.ID+"/eval", TemplateEvalRequest{
		Binding:    map[string]types.Value{"cut": types.Float(60)},
		MinVersion: 99,
		TimeoutMs:  30,
	})
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("unreachable bound: status %d, want 504 (%s)", w.Code, w.Body)
	}
}

// TestTemplateCreateErrors pins compile-side validation.
func TestTemplateCreateErrors(t *testing.T) {
	srv := newTestServer(t, Options{})
	h := srv.Handler()

	w := postJSON(t, h, "/v1/template", TemplateRequest{
		Modifications: []Modification{{Op: "replace", Pos: 9, Statement: `UPDATE orders SET fee = 0 WHERE price >= $cut`}},
	})
	if w.Code != http.StatusBadRequest {
		t.Fatalf("out-of-range position: status %d, want 400 (%s)", w.Code, w.Body)
	}
	w = postJSON(t, h, "/v1/template", TemplateRequest{
		Modifications: []Modification{{Op: "replace", Pos: 1, Statement: `UPDATE orders SET fee = 0 WHERE price >= $cut`}},
		Variant:       "bogus",
	})
	if w.Code != http.StatusBadRequest || !strings.Contains(w.Body.String(), "unknown variant") {
		t.Fatalf("bogus variant: status %d (%s)", w.Code, w.Body)
	}
}
