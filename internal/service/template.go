package service

import (
	"fmt"
	"net/http"

	"github.com/mahif/mahif/internal/core"
	"github.com/mahif/mahif/internal/delta"
	"github.com/mahif/mahif/internal/types"
)

// TemplateRequest is the body of POST /v1/template: a modification
// sequence whose SQL carries $name parameter slots, compiled once into
// a reusable template.
type TemplateRequest struct {
	Modifications []Modification `json:"modifications"`
	// Variant selects the algorithm (R, R+PS, R+DS, R+PS+DS); empty
	// means R+PS+DS. Templates disable data slicing internally either
	// way (results are variant-invariant).
	Variant string `json:"variant,omitempty"`
	// TimeoutMs tightens (never extends) the server's per-request
	// timeout for the one-time compilation.
	TimeoutMs int `json:"timeout_ms,omitempty"`
}

// TemplateResponse is the body of a successful POST /v1/template.
type TemplateResponse struct {
	// ID names the compiled template for /v1/template/{id}/eval.
	ID string `json:"id"`
	// Params maps each $slot to its inferred value class ("numeric",
	// "string", "bool", or "any").
	Params map[string]string `json:"params"`
	// Version is the history version the artifact is compiled against.
	Version int `json:"version"`
	// TotalStatements and KeptStatements report the slicing outcome;
	// BindingIndependent/BindingDependent partition the kept
	// statements by whether their retention involved a $slot.
	TotalStatements    int `json:"total_statements"`
	KeptStatements     int `json:"kept_statements"`
	BindingIndependent int `json:"binding_independent"`
	BindingDependent   int `json:"binding_dependent"`
	// CompileMs is the one-time compilation cost each eval amortizes.
	CompileMs float64 `json:"compile_ms"`
}

// TemplateEvalRequest is the body of POST /v1/template/{id}/eval.
// Exactly one of Binding (one answer) and Bindings (a sweep) must be
// set. Values follow the engine's JSON value encoding: null, booleans,
// strings, and numbers (a fraction or exponent makes a float).
type TemplateEvalRequest struct {
	Binding  map[string]types.Value   `json:"binding,omitempty"`
	Bindings []map[string]types.Value `json:"bindings,omitempty"`
	// Workers bounds the sweep's evaluation parallelism (default
	// GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// TimeoutMs tightens (never extends) the server's per-request
	// timeout.
	TimeoutMs int `json:"timeout_ms,omitempty"`
	// MinVersion is the read-your-writes bound (see WhatIfRequest).
	// Templates recompile transparently when the history advances, so
	// a bounded eval answers against a version ≥ the bound.
	MinVersion int `json:"min_version,omitempty"`
	// Queries attaches aggregate queries evaluated per binding over the
	// historical and hypothetical states (see WhatIfRequest.Queries).
	Queries []string `json:"queries,omitempty"`
}

// TemplateBindingResult is one binding's outcome in a sweep. Exactly
// one of Delta and Error is meaningful.
type TemplateBindingResult struct {
	// Binding is the 1-based index into the request's bindings array.
	Binding    int                    `json:"binding"`
	Delta      delta.Set              `json:"delta,omitempty"`
	Aggregates []core.AggregateReport `json:"aggregates,omitempty"`
	Error      string                 `json:"error,omitempty"`
}

// TemplateEvalResponse is the body of a successful eval: Delta for a
// single binding, Results for a sweep.
type TemplateEvalResponse struct {
	Delta      delta.Set               `json:"delta,omitempty"`
	Aggregates []core.AggregateReport  `json:"aggregates,omitempty"`
	Results    []TemplateBindingResult `json:"results,omitempty"`
}

// handleTemplateCreate compiles a parameterized scenario and registers
// it under a fresh id. Compilation goes through a session, so
// re-submitting an identical template at the same history version is
// answered from the session's template cache (a fresh id still refers
// to the shared compiled artifact).
func (s *Server) handleTemplateCreate(w http.ResponseWriter, r *http.Request) {
	var req TemplateRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	mods, err := DecodeModifications(req.Modifications)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	opts, ok := variantOptions(req.Variant)
	if !ok {
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown variant %q (want R, R+PS, R+DS, R+PS+DS)", req.Variant))
		return
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMs)
	defer cancel()
	tpl, err := s.session().CompileTemplateCtx(ctx, mods, opts)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}

	s.tmu.Lock()
	s.tseq++
	id := fmt.Sprintf("t%d", s.tseq)
	if s.templates == nil {
		s.templates = map[string]*core.Template{}
	}
	s.templates[id] = tpl
	s.tmu.Unlock()

	st := tpl.Stats()
	writeJSON(w, http.StatusOK, TemplateResponse{
		ID:                 id,
		Params:             tpl.Params(),
		Version:            st.Version,
		TotalStatements:    st.TotalStatements,
		KeptStatements:     st.KeptStatements,
		BindingIndependent: st.BindingIndependent,
		BindingDependent:   st.BindingDependent,
		CompileMs:          float64(st.CompileTime.Microseconds()) / 1000,
	})
}

// template looks up a registered template by id.
func (s *Server) template(id string) (*core.Template, bool) {
	s.tmu.Lock()
	defer s.tmu.Unlock()
	tpl, ok := s.templates[id]
	return tpl, ok
}

// handleTemplateEval answers one binding or a binding sweep against a
// registered template. Binding mistakes (missing or unknown parameter,
// value-class mismatch) are 400s; an unknown template id is a 404.
func (s *Server) handleTemplateEval(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tpl, ok := s.template(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown template %q", id))
		return
	}
	var req TemplateEvalRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if (req.Binding == nil) == (len(req.Bindings) == 0) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("exactly one of binding and bindings must be set"))
		return
	}
	queries, err := DecodeAggregateQueries(req.Queries)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMs)
	defer cancel()
	if err := s.waitMinVersion(ctx, req.MinVersion); err != nil {
		writeError(w, statusFor(err), err)
		return
	}

	if req.Binding != nil {
		d, reps, err := tpl.EvalAggregatesCtx(ctx, req.Binding, queries)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		s.templateEvals.Add(1)
		writeJSON(w, http.StatusOK, TemplateEvalResponse{Delta: d, Aggregates: reps})
		return
	}

	results, err := tpl.EvalAggregatesBatchCtx(ctx, req.Bindings, queries, req.Workers)
	if err != nil && results == nil {
		writeError(w, statusFor(err), err)
		return
	}
	// Like /v1/batch: a sweep cut short by the deadline returns the
	// partial results with the timeout status; per-binding errors
	// carry the detail.
	status := http.StatusOK
	if err != nil {
		status = statusFor(err)
	}
	resp := TemplateEvalResponse{Results: make([]TemplateBindingResult, len(results))}
	for i, res := range results {
		out := TemplateBindingResult{Binding: res.Binding + 1, Delta: res.Delta, Aggregates: res.Aggregates}
		if res.Err != nil {
			out.Error = res.Err.Error()
		}
		resp.Results[i] = out
	}
	s.templateEvals.Add(int64(len(results)))
	writeJSON(w, status, resp)
}
