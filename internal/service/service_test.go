package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/mahif/mahif/internal/core"
	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/sql"
	"github.com/mahif/mahif/internal/storage"
	"github.com/mahif/mahif/internal/types"
)

// newTestServer builds a server over the paper's running example: an
// orders relation and a two-statement fee history.
func newTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	s := schema.New("orders",
		schema.Col("id", types.KindInt),
		schema.Col("price", types.KindFloat),
		schema.Col("fee", types.KindFloat),
	)
	rel := storage.NewRelation(s)
	for i := 0; i < 40; i++ {
		rel.Add(schema.NewTuple(types.Int(int64(i)), types.Float(float64(30+i*2)), types.Float(5)))
	}
	db := storage.NewDatabase()
	db.AddRelation(rel)
	vdb := storage.NewVersioned(db)
	for _, src := range []string{
		`UPDATE orders SET fee = 0 WHERE price >= 50`,
		`UPDATE orders SET fee = fee + 1 WHERE price < 40`,
	} {
		if err := vdb.Apply(sql.MustParseStatement(src)); err != nil {
			t.Fatal(err)
		}
	}
	return New(core.New(vdb), opts)
}

func postJSON(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", path, bytes.NewReader(raw))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestWhatIfEndpoint(t *testing.T) {
	srv := newTestServer(t, Options{})
	h := srv.Handler()
	w := postJSON(t, h, "/v1/whatif", WhatIfRequest{
		Modifications: []Modification{{Op: "replace", Pos: 1, Statement: `UPDATE orders SET fee = 0 WHERE price >= 60`}},
		Stats:         true,
	})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp WhatIfResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Delta["orders"] == nil || resp.Delta["orders"].Empty() {
		t.Fatalf("expected a non-empty orders delta, got %s", w.Body)
	}
	if resp.Stats == nil || resp.Stats.TotalStatements == 0 {
		t.Errorf("expected stats in response, got %s", w.Body)
	}

	// The same query again must be served from the session caches.
	w = postJSON(t, h, "/v1/whatif", WhatIfRequest{
		Modifications: []Modification{{Op: "replace", Pos: 1, Statement: `UPDATE orders SET fee = 0 WHERE price >= 60`}},
	})
	if w.Code != http.StatusOK {
		t.Fatalf("second call: status %d: %s", w.Code, w.Body)
	}
	stats := srv.SessionStats()
	if len(stats) != 1 || stats[0].Calls != 2 {
		t.Fatalf("session stats = %+v, want 2 calls on one session", stats)
	}
	if stats[0].SnapshotHits == 0 {
		t.Errorf("second identical request did not hit the snapshot cache: %+v", stats[0])
	}
	if stats[0].QueryHits == 0 {
		t.Errorf("second identical request did not hit the compiled-program result cache: %+v", stats[0])
	}
}

func TestWhatIfNaiveVariant(t *testing.T) {
	srv := newTestServer(t, Options{})
	w := postJSON(t, srv.Handler(), "/v1/whatif", WhatIfRequest{
		Modifications: []Modification{{Op: "delete", Pos: 2}},
		Variant:       "N",
		Stats:         true,
	})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp WhatIfResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.NaiveStats == nil {
		t.Errorf("variant N with stats should return naive_stats: %s", w.Body)
	}
}

func TestWhatIfBadRequests(t *testing.T) {
	srv := newTestServer(t, Options{})
	h := srv.Handler()
	cases := []struct {
		name string
		body any
	}{
		{"no modifications", WhatIfRequest{}},
		{"bad op", WhatIfRequest{Modifications: []Modification{{Op: "munge", Pos: 1}}}},
		{"bad sql", WhatIfRequest{Modifications: []Modification{{Op: "replace", Pos: 1, Statement: "SELECT nope"}}}},
		{"zero pos", WhatIfRequest{Modifications: []Modification{{Op: "delete", Pos: 0}}}},
		{"out of range", WhatIfRequest{Modifications: []Modification{{Op: "delete", Pos: 99}}}},
		{"unknown field", map[string]any{"modificatons": []any{}}},
		{"unknown variant", WhatIfRequest{Variant: "R+XX", Modifications: []Modification{{Op: "delete", Pos: 1}}}},
	}
	for _, c := range cases {
		if w := postJSON(t, h, "/v1/whatif", c.body); w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d (want 400): %s", c.name, w.Code, w.Body)
		}
	}
	// Wrong method.
	req := httptest.NewRequest("GET", "/v1/whatif", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/whatif: status %d (want 405)", w.Code)
	}
}

func TestBatchEndpoint(t *testing.T) {
	srv := newTestServer(t, Options{})
	var scs []Scenario
	for _, threshold := range []string{"55", "60", "65"} {
		scs = append(scs, Scenario{
			Label: "fee" + threshold,
			Modifications: []Modification{{
				Op: "replace", Pos: 1,
				Statement: `UPDATE orders SET fee = 0 WHERE price >= ` + threshold,
			}},
		})
	}
	w := postJSON(t, srv.Handler(), "/v1/batch", BatchRequest{Scenarios: scs, Stats: true})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp BatchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("got %d results, want 3: %s", len(resp.Results), w.Body)
	}
	for i, res := range resp.Results {
		if res.Error != "" {
			t.Errorf("scenario %d failed: %s", i, res.Error)
		}
		if res.Label != scs[i].Label {
			t.Errorf("scenario %d label %q, want %q", i, res.Label, scs[i].Label)
		}
		if res.Delta["orders"] == nil {
			t.Errorf("scenario %d missing orders delta", i)
		}
	}
	if resp.Stats == nil || resp.Stats.Scenarios != 3 {
		t.Errorf("batch stats missing or wrong: %+v", resp.Stats)
	}
}

func TestHistoryEndpoint(t *testing.T) {
	srv := newTestServer(t, Options{})
	req := httptest.NewRequest("GET", "/v1/history", nil)
	w := httptest.NewRecorder()
	srv.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp HistoryResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Version != 2 || len(resp.Statements) != 2 {
		t.Fatalf("history = %+v, want 2 statements", resp)
	}
	if !strings.Contains(strings.ToLower(resp.Statements[0]), "update orders") {
		t.Errorf("statement 1 = %q", resp.Statements[0])
	}
}

func TestHealthz(t *testing.T) {
	srv := newTestServer(t, Options{})
	req := httptest.NewRequest("GET", "/healthz", nil)
	w := httptest.NewRecorder()
	srv.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("healthz status %d", w.Code)
	}
}
