// Package service is the HTTP boundary of the what-if engine: the
// handlers behind cmd/mahifd. It speaks the v1 JSON wire format (the
// delta/stats encodings pinned by golden tests in internal/delta and
// internal/core, plus the request envelopes defined here), answers
// queries through a pool of long-lived sessions so consecutive
// requests over the same history reuse time-travel snapshots, solver
// memos, and compiled reenactment programs, and enforces a per-request
// timeout by threading the request context — with the deadline
// attached — through the engine's ctx-aware entry points, so an
// abandoned or over-budget request stops solving and scanning within
// milliseconds.
package service

import (
	"fmt"
	"strings"

	"github.com/mahif/mahif/internal/core"
	"github.com/mahif/mahif/internal/delta"
	"github.com/mahif/mahif/internal/history"
	"github.com/mahif/mahif/internal/sql"
)

// Modification is one hypothetical history edit on the wire. Positions
// are 1-based, matching the mahif CLI's modification scripts;
// "statement" carries the SQL for replace and insert and must be
// absent for delete.
type Modification struct {
	Op        string `json:"op"`
	Pos       int    `json:"pos"`
	Statement string `json:"statement,omitempty"`
}

// Decode converts the wire modification to an engine modification.
func (m Modification) Decode() (history.Modification, error) {
	if m.Pos < 1 {
		return nil, fmt.Errorf("bad position %d (positions are 1-based)", m.Pos)
	}
	op := strings.ToLower(m.Op)
	if op == "delete" {
		if m.Statement != "" {
			return nil, fmt.Errorf("delete takes no statement")
		}
		return history.DeleteStmt{Pos: m.Pos - 1}, nil
	}
	st, err := sql.ParseStatement(m.Statement)
	if err != nil {
		return nil, err
	}
	switch op {
	case "replace":
		return history.Replace{Pos: m.Pos - 1, Stmt: st}, nil
	case "insert":
		return history.InsertStmt{Pos: m.Pos - 1, Stmt: st}, nil
	}
	return nil, fmt.Errorf("unknown op %q (want replace, insert, delete)", m.Op)
}

// DecodeModifications converts a wire modification sequence.
func DecodeModifications(ms []Modification) ([]history.Modification, error) {
	if len(ms) == 0 {
		return nil, fmt.Errorf("no modifications")
	}
	out := make([]history.Modification, len(ms))
	for i, m := range ms {
		mod, err := m.Decode()
		if err != nil {
			return nil, fmt.Errorf("modification %d: %w", i+1, err)
		}
		out[i] = mod
	}
	return out, nil
}

// DecodeAggregateQueries parses attached aggregate queries: each must
// aggregate at the top level (GROUP BY or an aggregate select list) and
// carry no $param slots.
func DecodeAggregateQueries(qs []string) ([]core.AggregateQuery, error) {
	if len(qs) == 0 {
		return nil, nil
	}
	out := make([]core.AggregateQuery, len(qs))
	for i, src := range qs {
		q, err := sql.ParseQuery(src)
		if err != nil {
			return nil, fmt.Errorf("query %d: %w", i+1, err)
		}
		aq, err := core.NewAggregateQuery(src, q)
		if err != nil {
			return nil, fmt.Errorf("query %d: %w", i+1, err)
		}
		out[i] = aq
	}
	return out, nil
}

// Scenario is one labelled modification set of a batch request.
type Scenario struct {
	Label         string         `json:"label,omitempty"`
	Modifications []Modification `json:"modifications"`
	// Queries optionally attaches aggregate queries evaluated over the
	// historical and hypothetical states (see WhatIfRequest.Queries).
	Queries []string `json:"queries,omitempty"`
}

// DecodeScenarios converts wire scenarios to engine scenarios.
func DecodeScenarios(scs []Scenario) ([]core.Scenario, error) {
	if len(scs) == 0 {
		return nil, fmt.Errorf("no scenarios")
	}
	out := make([]core.Scenario, len(scs))
	for i, sc := range scs {
		mods, err := DecodeModifications(sc.Modifications)
		if err != nil {
			return nil, fmt.Errorf("scenario %d (%q): %w", i+1, sc.Label, err)
		}
		queries, err := DecodeAggregateQueries(sc.Queries)
		if err != nil {
			return nil, fmt.Errorf("scenario %d (%q): %w", i+1, sc.Label, err)
		}
		out[i] = core.Scenario{Label: sc.Label, Mods: mods, Queries: queries}
	}
	return out, nil
}

// WhatIfRequest is the body of POST /v1/whatif.
type WhatIfRequest struct {
	Modifications []Modification `json:"modifications"`
	// Variant selects the algorithm (N, R, R+PS, R+DS, R+PS+DS);
	// empty means R+PS+DS.
	Variant string `json:"variant,omitempty"`
	// TimeoutMs tightens (never extends) the server's per-request
	// timeout.
	TimeoutMs int `json:"timeout_ms,omitempty"`
	// Stats asks for the per-phase breakdown in the response.
	Stats bool `json:"stats,omitempty"`
	// MinVersion is the read-your-writes bound: the server blocks until
	// its history holds at least this many statements before answering
	// (504 past the deadline), so a client that appended at version v
	// and reads back with min_version=v never silently sees a stale
	// replica. 0 means no bound.
	MinVersion int `json:"min_version,omitempty"`
	// Queries attaches aggregate queries (SQL with GROUP BY or an
	// aggregate select list): each is evaluated over the historical
	// state and the hypothetical state, and the per-group comparisons
	// come back in WhatIfResponse.Aggregates.
	Queries []string `json:"queries,omitempty"`
}

// WhatIfResponse is the body of a successful POST /v1/whatif.
type WhatIfResponse struct {
	Delta delta.Set `json:"delta"`
	// Aggregates holds the attached aggregate-query reports, in query
	// order (absent when the request attached none).
	Aggregates []core.AggregateReport `json:"aggregates,omitempty"`
	// Stats is set for reenactment variants when requested.
	Stats *core.Stats `json:"stats,omitempty"`
	// NaiveStats is set for variant N when requested.
	NaiveStats *core.NaiveStats `json:"naive_stats,omitempty"`
}

// BatchRequest is the body of POST /v1/batch.
type BatchRequest struct {
	Scenarios []Scenario `json:"scenarios"`
	Variant   string     `json:"variant,omitempty"`
	Workers   int        `json:"workers,omitempty"`
	TimeoutMs int        `json:"timeout_ms,omitempty"`
	Stats     bool       `json:"stats,omitempty"`
	// MinVersion is the read-your-writes bound (see WhatIfRequest).
	MinVersion int `json:"min_version,omitempty"`
}

// BatchScenarioResult is one scenario's outcome on the wire. Exactly
// one of Delta and Error is meaningful.
type BatchScenarioResult struct {
	Scenario   int                    `json:"scenario"`
	Label      string                 `json:"label,omitempty"`
	Delta      delta.Set              `json:"delta,omitempty"`
	Aggregates []core.AggregateReport `json:"aggregates,omitempty"`
	Stats      *core.Stats            `json:"stats,omitempty"`
	Error      string                 `json:"error,omitempty"`
}

// BatchResponse is the body of a successful POST /v1/batch.
type BatchResponse struct {
	Results []BatchScenarioResult `json:"results"`
	Stats   *core.BatchStats      `json:"stats,omitempty"`
}

// AppendRequest is the body of POST /v1/history: new statements to
// commit to the end of the transactional history, as SQL text.
type AppendRequest struct {
	Statements []string `json:"statements"`
	// TimeoutMs tightens (never extends) the server's per-request
	// timeout.
	TimeoutMs int `json:"timeout_ms,omitempty"`
}

// DecodeStatements parses the SQL statements of an append request.
func DecodeStatements(stmts []string) ([]history.Statement, error) {
	if len(stmts) == 0 {
		return nil, fmt.Errorf("no statements")
	}
	out := make([]history.Statement, len(stmts))
	for i, text := range stmts {
		st, err := sql.ParseStatement(text)
		if err != nil {
			return nil, fmt.Errorf("statement %d: %w", i+1, err)
		}
		out[i] = st
	}
	return out, nil
}

// AppendResponse is the body of a successful POST /v1/history.
type AppendResponse struct {
	// Version is the history length after the append.
	Version int `json:"version"`
	// Appended is how many statements this request committed.
	Appended int `json:"appended"`
	// Durable reports whether the statements were committed to a
	// write-ahead log before this response (false for a memory-only
	// server).
	Durable bool `json:"durable"`
}

// HistoryResponse is the body of GET /v1/history. The unpaged form
// (no since/limit query parameters) returns the whole history and
// omits the paging fields, byte-identical to the pre-paging wire
// format.
type HistoryResponse struct {
	// Version is the number of applied statements in the whole history,
	// not just this page.
	Version int `json:"version"`
	// Statements renders the returned window in order; in the unpaged
	// form 1-based positions on the wire refer to this list directly,
	// in the paged form position = since + index + 1.
	Statements []string `json:"statements"`
	// Since echoes the paged request's offset (paged responses only).
	Since int `json:"since,omitempty"`
	// More reports that statements beyond this page exist (paged
	// responses only).
	More bool `json:"more,omitempty"`
}

// StatusResponse is the body of GET /v1/status: the identity and
// replication position of one server, cheap enough for health polls.
type StatusResponse struct {
	// Role is the process role: "single", "leader", "replica", or
	// "router".
	Role string `json:"role"`
	// Version is the server's applied history length — on a replica,
	// how far replication has caught up.
	Version int `json:"version"`
	// Durable reports whether appends commit to a WAL first.
	Durable bool `json:"durable"`
	// ReadOnly reports whether POST /v1/history is rejected here.
	ReadOnly bool `json:"read_only"`
	// Replication is present on replicas: the follower's stream state.
	Replication *ReplicationStatus `json:"replication,omitempty"`
}

// ReplicationStatus describes a follower's WAL stream position.
type ReplicationStatus struct {
	// LeaderURL is the leader this follower streams from.
	LeaderURL string `json:"leader_url"`
	// Connected reports a live stream; a disconnected follower is
	// retrying with backoff.
	Connected bool `json:"connected"`
	// AppliedVersion is the follower's history length; LeaderVersion is
	// the newest leader version the follower has observed; Lag is their
	// difference (≥ 0).
	AppliedVersion int `json:"applied_version"`
	LeaderVersion  int `json:"leader_version"`
	Lag            int `json:"lag"`
	// RecordsApplied counts statements applied off the stream since the
	// process started; Reconnects counts stream re-establishments after
	// the initial connect.
	RecordsApplied int64 `json:"records_applied_total"`
	Reconnects     int64 `json:"reconnects_total"`
	// LastError is the most recent stream failure, if any.
	LastError string `json:"last_error,omitempty"`
}

// ReplicationReporter feeds a follower's stream state into /v1/status
// and /metrics. internal/replica's follower implements it.
type ReplicationReporter interface {
	ReplicationStatus() ReplicationStatus
}

// ErrorResponse is the body of every non-2xx response, with one
// exception: a batch cut short by its deadline returns 504 with a
// BatchResponse carrying the partial results (per-scenario errors
// identify what was cancelled) — clients should decode /v1/batch
// bodies as BatchResponse whenever "results" is present.
type ErrorResponse struct {
	Error string `json:"error"`
}
