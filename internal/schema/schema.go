// Package schema defines relation schemas and tuples. A tuple is an
// immutable-by-convention slice of values matching its schema's arity.
package schema

import (
	"fmt"
	"strings"

	"github.com/mahif/mahif/internal/types"
)

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Type types.Kind
}

// Schema is an ordered list of named, typed columns for a relation.
type Schema struct {
	Relation string
	Columns  []Column
}

// New builds a schema for relation name rel from (name, kind) pairs.
func New(rel string, cols ...Column) *Schema {
	return &Schema{Relation: rel, Columns: cols}
}

// Col is a convenience constructor for a Column.
func Col(name string, t types.Kind) Column { return Column{Name: name, Type: t} }

// Arity returns the number of columns.
func (s *Schema) Arity() int { return len(s.Columns) }

// ColIndex returns the position of the named column, or -1.
// Lookup is case-insensitive, matching SQL identifier semantics.
func (s *Schema) ColIndex(name string) int {
	for i, c := range s.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// ColNames returns the column names in order.
func (s *Schema) ColNames() []string {
	out := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		out[i] = c.Name
	}
	return out
}

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() *Schema {
	cols := make([]Column, len(s.Columns))
	copy(cols, s.Columns)
	return &Schema{Relation: s.Relation, Columns: cols}
}

// Equal reports whether two schemas have the same column names and types
// (relation name is ignored, so reenactment output schemas compare equal
// to their base relation).
func (s *Schema) Equal(o *Schema) bool {
	if len(s.Columns) != len(o.Columns) {
		return false
	}
	for i := range s.Columns {
		if !strings.EqualFold(s.Columns[i].Name, o.Columns[i].Name) || s.Columns[i].Type != o.Columns[i].Type {
			return false
		}
	}
	return true
}

// String renders the schema as R(A int, B string, ...).
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteString(s.Relation)
	b.WriteByte('(')
	for i, c := range s.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", c.Name, c.Type)
	}
	b.WriteByte(')')
	return b.String()
}

// Tuple is one row: a value per schema column.
type Tuple []types.Value

// NewTuple builds a tuple from values.
func NewTuple(vs ...types.Value) Tuple { return Tuple(vs) }

// Clone returns a copy of the tuple that shares no backing storage.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Equal reports value-wise equality of two tuples.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if !t[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// Key returns a canonical string encoding of the tuple usable as a map
// key (for delta computation and duplicate detection).
func (t Tuple) Key() string {
	var b strings.Builder
	for i, v := range t {
		if i > 0 {
			b.WriteByte('|')
		}
		// Prefix with the kind so 1 (int), 1.0 (float) and '1' (string)
		// stay distinct, but normalize int/float that compare equal.
		switch v.Kind() {
		case types.KindNull:
			b.WriteString("n:")
		case types.KindInt, types.KindFloat:
			fmt.Fprintf(&b, "f:%v", v.AsFloat())
		case types.KindString:
			fmt.Fprintf(&b, "s:%s", v.AsString())
		case types.KindBool:
			fmt.Fprintf(&b, "b:%v", v.AsBool())
		}
	}
	return b.String()
}

// String renders the tuple as (v1, v2, ...).
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}
