// Package schema defines relation schemas and tuples. A tuple is an
// immutable-by-convention slice of values matching its schema's arity.
package schema

import (
	"fmt"
	"math"
	"strings"

	"github.com/mahif/mahif/internal/types"
)

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Type types.Kind
}

// Schema is an ordered list of named, typed columns for a relation.
type Schema struct {
	Relation string
	Columns  []Column

	// byName maps lowercase column name → ordinal. Built once by New
	// and Clone so ColIndex is a map lookup instead of a case-folding
	// linear scan; nil for schemas built as raw struct literals, which
	// fall back to the scan.
	byName map[string]int
}

// New builds a schema for relation name rel from (name, kind) pairs.
func New(rel string, cols ...Column) *Schema {
	s := &Schema{Relation: rel, Columns: cols}
	s.buildIndex()
	return s
}

func (s *Schema) buildIndex() {
	s.byName = make(map[string]int, len(s.Columns))
	for i, c := range s.Columns {
		name := strings.ToLower(c.Name)
		if _, ok := s.byName[name]; !ok {
			s.byName[name] = i
		}
	}
}

// Col is a convenience constructor for a Column.
func Col(name string, t types.Kind) Column { return Column{Name: name, Type: t} }

// Arity returns the number of columns.
func (s *Schema) Arity() int { return len(s.Columns) }

// ColIndex returns the position of the named column, or -1.
// Lookup is case-insensitive, matching SQL identifier semantics.
func (s *Schema) ColIndex(name string) int {
	if s.byName != nil {
		if i, ok := s.byName[strings.ToLower(name)]; ok {
			return i
		}
		return -1
	}
	for i, c := range s.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// ColNames returns the column names in order.
func (s *Schema) ColNames() []string {
	out := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		out[i] = c.Name
	}
	return out
}

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() *Schema {
	cols := make([]Column, len(s.Columns))
	copy(cols, s.Columns)
	return New(s.Relation, cols...)
}

// Equal reports whether two schemas have the same column names and types
// (relation name is ignored, so reenactment output schemas compare equal
// to their base relation).
func (s *Schema) Equal(o *Schema) bool {
	if len(s.Columns) != len(o.Columns) {
		return false
	}
	for i := range s.Columns {
		if !strings.EqualFold(s.Columns[i].Name, o.Columns[i].Name) || s.Columns[i].Type != o.Columns[i].Type {
			return false
		}
	}
	return true
}

// String renders the schema as R(A int, B string, ...).
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteString(s.Relation)
	b.WriteByte('(')
	for i, c := range s.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", c.Name, c.Type)
	}
	b.WriteByte(')')
	return b.String()
}

// Tuple is one row: a value per schema column.
type Tuple []types.Value

// NewTuple builds a tuple from values.
func NewTuple(vs ...types.Value) Tuple { return Tuple(vs) }

// Clone returns a copy of the tuple that shares no backing storage.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Equal reports value-wise equality of two tuples.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if !t[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// Key returns a canonical string encoding of the tuple usable as a map
// key (for delta computation and duplicate detection).
func (t Tuple) Key() string {
	var b strings.Builder
	for i, v := range t {
		if i > 0 {
			b.WriteByte('|')
		}
		// Prefix with the kind so 1 (int), 1.0 (float) and '1' (string)
		// stay distinct, but normalize int/float that compare equal.
		switch v.Kind() {
		case types.KindNull:
			b.WriteString("n:")
		case types.KindInt, types.KindFloat:
			fmt.Fprintf(&b, "f:%v", v.AsFloat())
		case types.KindString:
			fmt.Fprintf(&b, "s:%s", v.AsString())
		case types.KindBool:
			fmt.Fprintf(&b, "b:%v", v.AsBool())
		}
	}
	return b.String()
}

// FNV-1a parameters (hash/fnv is avoided on this hot path: it would
// force a byte-slice conversion per value).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime64 }

func fnvUint64(h uint64, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(v>>(8*i)))
	}
	return h
}

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = fnvByte(h, s[i])
	}
	return h
}

// HashSeed is the FNV-1a offset basis, the starting accumulator for
// HashValue chains.
const HashSeed uint64 = fnvOffset64

// HashValue folds one typed value into an FNV-1a accumulator. Values
// that compare equal under types.Value.Equal hash equally (numerics are
// normalized to their float64 bit pattern, so 1 and 1.0 collide; kinds
// are tagged so 1, '1' and true stay distinct). The compiled executor
// uses it for join keys; Tuple.Hash chains it across a row.
func HashValue(h uint64, v types.Value) uint64 {
	switch v.Kind() {
	case types.KindNull:
		h = fnvByte(h, 'n')
	case types.KindInt, types.KindFloat:
		h = fnvByte(h, 'f')
		f := v.AsFloat()
		if f == 0 {
			f = 0 // canonicalize -0.0: it compares equal to +0.0
		}
		h = fnvUint64(h, math.Float64bits(f))
	case types.KindString:
		h = fnvByte(h, 's')
		h = fnvString(h, v.AsString())
	case types.KindBool:
		h = fnvByte(h, 'b')
		if v.AsBool() {
			h = fnvByte(h, 1)
		} else {
			h = fnvByte(h, 0)
		}
	}
	return h
}

// HashNull, HashNumeric, HashString, and HashBool fold one cell of a
// statically known kind into an FNV-1a accumulator, byte-for-byte
// identical to HashValue on the equivalent boxed value. They exist for
// the columnar executor lanes, which hash typed cells without boxing;
// int cells hash through HashNumeric(h, float64(i)) — the same
// widening HashValue applies — so 1 and 1.0 still collide.
func HashNull(h uint64) uint64 { return fnvByte(h, 'n') }

// HashNumeric folds a numeric cell (int lanes widen to float64 first,
// matching HashValue's normalization).
func HashNumeric(h uint64, f float64) uint64 {
	h = fnvByte(h, 'f')
	if f == 0 {
		f = 0 // canonicalize -0.0: it compares equal to +0.0
	}
	return fnvUint64(h, math.Float64bits(f))
}

// HashString folds a string cell.
func HashString(h uint64, s string) uint64 {
	h = fnvByte(h, 's')
	return fnvString(h, s)
}

// HashBool folds a boolean cell.
func HashBool(h uint64, b bool) uint64 {
	h = fnvByte(h, 'b')
	if b {
		return fnvByte(h, 1)
	}
	return fnvByte(h, 0)
}

// Hash returns an FNV-1a hash of the tuple over typed values. Its
// equivalence classes match Key(): tuples with equal keys hash equally.
// It is the index key for the hash-based multiset operations
// (difference, delta, bag equality), replacing the fmt-built string
// keys on those hot paths.
func (t Tuple) Hash() uint64 {
	h := HashSeed
	for _, v := range t {
		h = HashValue(h, v)
	}
	return h
}

// String renders the tuple as (v1, v2, ...).
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}
