package schema

import (
	"testing"
	"testing/quick"

	"github.com/mahif/mahif/internal/types"
)

func testSchema() *Schema {
	return New("orders",
		Col("id", types.KindInt),
		Col("customer", types.KindString),
		Col("price", types.KindFloat),
	)
}

func TestSchemaBasics(t *testing.T) {
	s := testSchema()
	if s.Arity() != 3 {
		t.Errorf("arity = %d", s.Arity())
	}
	if got := s.ColIndex("price"); got != 2 {
		t.Errorf("ColIndex(price) = %d", got)
	}
	if got := s.ColIndex("PRICE"); got != 2 {
		t.Errorf("case-insensitive ColIndex = %d", got)
	}
	if got := s.ColIndex("missing"); got != -1 {
		t.Errorf("ColIndex(missing) = %d", got)
	}
	names := s.ColNames()
	if len(names) != 3 || names[0] != "id" || names[2] != "price" {
		t.Errorf("ColNames = %v", names)
	}
}

func TestSchemaClone(t *testing.T) {
	s := testSchema()
	c := s.Clone()
	c.Columns[0].Name = "changed"
	if s.Columns[0].Name != "id" {
		t.Error("Clone shares column storage")
	}
	if !s.Equal(testSchema()) {
		t.Error("schema no longer equals its spec")
	}
}

func TestSchemaEqual(t *testing.T) {
	a := testSchema()
	b := testSchema()
	b.Relation = "other" // relation name is ignored
	if !a.Equal(b) {
		t.Error("schemas with same columns must be equal")
	}
	c := New("orders", Col("id", types.KindInt))
	if a.Equal(c) {
		t.Error("different arity compared equal")
	}
	d := New("orders", Col("id", types.KindFloat), Col("customer", types.KindString), Col("price", types.KindFloat))
	if a.Equal(d) {
		t.Error("different column type compared equal")
	}
}

func TestSchemaString(t *testing.T) {
	got := testSchema().String()
	want := "orders(id int, customer string, price float)"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestTupleCloneAndEqual(t *testing.T) {
	a := NewTuple(types.Int(1), types.String("x"))
	b := a.Clone()
	b[0] = types.Int(2)
	if a[0].AsInt() != 1 {
		t.Error("Clone shares storage")
	}
	if !a.Equal(NewTuple(types.Int(1), types.String("x"))) {
		t.Error("Equal failed on identical tuples")
	}
	if a.Equal(NewTuple(types.Int(1))) {
		t.Error("Equal ignored arity")
	}
	if a.Equal(b) {
		t.Error("Equal ignored value change")
	}
}

func TestTupleKeyDistinguishesKinds(t *testing.T) {
	cases := [][2]Tuple{
		{NewTuple(types.Int(1)), NewTuple(types.String("1"))},
		{NewTuple(types.Null()), NewTuple(types.Int(0))},
		{NewTuple(types.Bool(true)), NewTuple(types.String("true"))},
	}
	for _, c := range cases {
		if c[0].Key() == c[1].Key() {
			t.Errorf("keys collide: %s vs %s", c[0], c[1])
		}
	}
	// Int/float that compare equal share a key (delta treats them equal).
	if NewTuple(types.Int(1)).Key() != NewTuple(types.Float(1)).Key() {
		t.Error("1 and 1.0 must share a key")
	}
}

func TestTupleString(t *testing.T) {
	got := NewTuple(types.Int(1), types.String("a"), types.Null()).String()
	if got != "(1, 'a', NULL)" {
		t.Errorf("String() = %q", got)
	}
}

// Property: Key equality coincides with tuple equality for int tuples.
func TestTupleKeyProperty(t *testing.T) {
	f := func(a, b []int8) bool {
		ta := make(Tuple, len(a))
		for i, v := range a {
			ta[i] = types.Int(int64(v))
		}
		tb := make(Tuple, len(b))
		for i, v := range b {
			tb[i] = types.Int(int64(v))
		}
		return (ta.Key() == tb.Key()) == ta.Equal(tb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
