package workload

import (
	"fmt"

	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/history"
)

// ScenarioSpec is one derived what-if modification set. It mirrors
// core.Scenario without importing it (workload sits below core).
type ScenarioSpec struct {
	Label string
	Mods  []history.Modification
}

// ScenarioFamily derives n related what-if scenarios from the
// workload's own query, the shape an analyst's exploration takes:
// mostly variations of the modified update with shifted hypothetical
// thresholds, interleaved (when the workload has dependent updates)
// with replacements at dependent positions so the family time-travels
// to more than one history prefix.
func (w *Workload) ScenarioFamily(n int) []ScenarioSpec {
	base := w.Mods[0].(history.Replace)
	upd := base.Stmt.(*history.Update)
	sel := w.Dataset.SelAttr
	out := make([]ScenarioSpec, 0, n)
	for k := 0; len(out) < n; k++ {
		if k%4 == 3 && len(w.DependentPos) > 0 {
			pos := w.DependentPos[k%len(w.DependentPos)]
			orig := w.History[pos].(*history.Update)
			st := &history.Update{
				Rel:   orig.Rel,
				Set:   orig.Set,
				Where: expr.Ge(expr.Column(sel), expr.IntConst(int64(8800-25*k))),
			}
			out = append(out, ScenarioSpec{
				Label: fmt.Sprintf("dep%d", pos),
				Mods:  []history.Modification{history.Replace{Pos: pos, Stmt: st}},
			})
			continue
		}
		cut := int64(9100 - 30*k)
		st := &history.Update{
			Rel:   upd.Rel,
			Set:   upd.Set,
			Where: expr.Ge(expr.Column(sel), expr.IntConst(cut)),
		}
		out = append(out, ScenarioSpec{
			Label: fmt.Sprintf("cut%d", cut),
			Mods:  []history.Modification{history.Replace{Pos: base.Pos, Stmt: st}},
		})
	}
	return out
}
