// Package workload generates the synthetic datasets and parameterized
// transactional histories used by the experiment harness (§13.1–13.2).
// The three datasets mirror the paper's: a Chicago-taxi-trips-shaped
// table, the TPC-C stock relation, and a YCSB usertable. Histories are
// controlled by the paper's knobs:
//
//	U — number of updates, M — number of modifications,
//	D — percent of updates dependent on the modified update(s),
//	T — percent of tuples affected by each dependent update,
//	I/X — percent of insert/delete statements.
//
// Selection attributes are uniformly distributed over [0, SelRange), so
// a condition attr >= (1−T/100)·SelRange affects exactly ≈T% of tuples
// and thresholds are exact quantiles.
package workload

import (
	"fmt"
	"math/rand"

	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/storage"
	"github.com/mahif/mahif/internal/types"
)

// SelRange is the value range of the uniform selection attributes.
const SelRange = 10000

// Dataset bundles a generated relation with the metadata the history
// generator needs.
type Dataset struct {
	Name string
	Rel  *storage.Relation
	// SelAttr is the primary uniform selection attribute (conditions of
	// modified and dependent updates).
	SelAttr string
	// SelAttr2 is a second, independent uniform attribute (conditions
	// of independent updates).
	SelAttr2 string
	// Payload lists attributes that updates write.
	Payload []string
	// GroupBy is the compression grouping attribute.
	GroupBy string
	// NewRow generates one random tuple (for insert statements).
	NewRow func(r *rand.Rand, id int) schema.Tuple
}

var companies = []string{
	"Flash Cab", "Taxi Affiliation Services", "Yellow Cab", "Blue Diamond",
	"Chicago Carriage", "City Service", "Sun Taxi", "Medallion Leasing",
}

// Taxi generates a taxi-trips-shaped relation with rows tuples.
func Taxi(rows int, seed int64) *Dataset {
	s := schema.New("trips",
		schema.Col("trip_id", types.KindInt),
		schema.Col("company", types.KindString),
		schema.Col("pickup_area", types.KindInt),
		schema.Col("trip_seconds", types.KindInt),
		schema.Col("trip_miles", types.KindInt),
		schema.Col("fare", types.KindFloat),
		schema.Col("tips", types.KindFloat),
		schema.Col("tolls", types.KindFloat),
		schema.Col("extras", types.KindFloat),
		schema.Col("trip_total", types.KindFloat),
	)
	r := rand.New(rand.NewSource(seed))
	newRow := func(r *rand.Rand, id int) schema.Tuple {
		fare := float64(r.Intn(20000)) / 100
		tips := float64(r.Intn(2000)) / 100
		tolls := float64(r.Intn(500)) / 100
		extras := float64(r.Intn(1000)) / 100
		return schema.Tuple{
			types.Int(int64(id)),
			types.String(companies[r.Intn(len(companies))]),
			types.Int(int64(r.Intn(77))),
			types.Int(int64(r.Intn(SelRange))),
			types.Int(int64(r.Intn(SelRange))),
			types.Float(fare),
			types.Float(tips),
			types.Float(tolls),
			types.Float(extras),
			types.Float(fare + tips + tolls + extras),
		}
	}
	rel := storage.NewRelation(s)
	rel.Tuples = make([]schema.Tuple, 0, rows)
	for i := 0; i < rows; i++ {
		rel.Tuples = append(rel.Tuples, newRow(r, i))
	}
	return &Dataset{
		Name:     "taxi",
		Rel:      rel,
		SelAttr:  "trip_seconds",
		SelAttr2: "trip_miles",
		Payload:  []string{"tips", "extras", "trip_total"},
		GroupBy:  "company",
		NewRow:   newRow,
	}
}

// TPCC generates the TPC-C stock relation with rows tuples.
func TPCC(rows int, seed int64) *Dataset {
	s := schema.New("stock",
		schema.Col("s_i_id", types.KindInt),
		schema.Col("s_w_id", types.KindInt),
		schema.Col("s_quantity", types.KindInt),
		schema.Col("s_ytd", types.KindInt),
		schema.Col("s_order_cnt", types.KindInt),
		schema.Col("s_remote_cnt", types.KindInt),
	)
	r := rand.New(rand.NewSource(seed))
	newRow := func(r *rand.Rand, id int) schema.Tuple {
		return schema.Tuple{
			types.Int(int64(id)),
			types.Int(int64(r.Intn(100))),
			types.Int(int64(r.Intn(SelRange))),
			types.Int(int64(r.Intn(SelRange))),
			types.Int(int64(r.Intn(10))),
			types.Int(int64(r.Intn(10))),
		}
	}
	rel := storage.NewRelation(s)
	rel.Tuples = make([]schema.Tuple, 0, rows)
	for i := 0; i < rows; i++ {
		rel.Tuples = append(rel.Tuples, newRow(r, i))
	}
	return &Dataset{
		Name:     "tpcc",
		Rel:      rel,
		SelAttr:  "s_quantity",
		SelAttr2: "s_ytd",
		Payload:  []string{"s_order_cnt", "s_remote_cnt"},
		GroupBy:  "s_w_id",
		NewRow:   newRow,
	}
}

// YCSB generates a YCSB-usertable-shaped relation with rows tuples.
func YCSB(rows int, seed int64) *Dataset {
	s := schema.New("usertable",
		schema.Col("ycsb_key", types.KindInt),
		schema.Col("field0", types.KindInt),
		schema.Col("field1", types.KindInt),
		schema.Col("field2", types.KindInt),
		schema.Col("field3", types.KindInt),
		schema.Col("field4", types.KindInt),
	)
	r := rand.New(rand.NewSource(seed))
	newRow := func(r *rand.Rand, id int) schema.Tuple {
		return schema.Tuple{
			types.Int(int64(id)),
			types.Int(int64(r.Intn(SelRange))),
			types.Int(int64(r.Intn(SelRange))),
			types.Int(int64(r.Intn(SelRange))),
			types.Int(int64(r.Intn(SelRange))),
			types.Int(int64(r.Intn(SelRange))),
		}
	}
	rel := storage.NewRelation(s)
	rel.Tuples = make([]schema.Tuple, 0, rows)
	for i := 0; i < rows; i++ {
		rel.Tuples = append(rel.Tuples, newRow(r, i))
	}
	return &Dataset{
		Name:     "ycsb",
		Rel:      rel,
		SelAttr:  "field0",
		SelAttr2: "field1",
		Payload:  []string{"field2", "field3", "field4"},
		GroupBy:  "ycsb_key",
		NewRow:   newRow,
	}
}

// ByName returns the named dataset generator ("taxi", "tpcc", "ycsb").
func ByName(name string, rows int, seed int64) (*Dataset, error) {
	switch name {
	case "taxi":
		return Taxi(rows, seed), nil
	case "tpcc":
		return TPCC(rows, seed), nil
	case "ycsb":
		return YCSB(rows, seed), nil
	}
	return nil, fmt.Errorf("workload: unknown dataset %q (want taxi, tpcc, or ycsb)", name)
}

// Database wraps the dataset relation in a fresh database.
func (d *Dataset) Database() *storage.Database {
	db := storage.NewDatabase()
	db.AddRelation(d.Rel.Clone())
	return db
}

// PayloadKind returns the type of the i-th payload attribute.
func (d *Dataset) PayloadKind(i int) types.Kind {
	idx := d.Rel.Schema.ColIndex(d.Payload[i%len(d.Payload)])
	return d.Rel.Schema.Columns[idx].Type
}
