package workload

import (
	"fmt"
	"math/rand"

	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/history"
	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/storage"
	"github.com/mahif/mahif/internal/types"
)

// Config carries the experiment knobs of §13.2.
type Config struct {
	// Updates is U: the number of update statements in the history.
	Updates int
	// Mods is M: how many updates the what-if query modifies (≥1).
	Mods int
	// DependentPct is D: the percentage of updates whose condition
	// overlaps the modified updates' conditions (provably dependent).
	DependentPct int
	// AffectedPct is T: the percentage of tuples affected by the
	// modified and dependent updates. Use 0.5 for the paper's "T0"
	// (<1%).
	AffectedPct float64
	// InsertPct (I) and DeletePct (X) replace that percentage of
	// statements with inserts / deletes.
	InsertPct, DeletePct int
	// InsertRows is the batch size of generated INSERT statements
	// (default 10).
	InsertRows int
	// TouchConditionAttrs makes dependent updates also write the
	// selection attribute, forcing data-slicing push-down substitutions
	// (an ablation knob; off in the paper-shaped workloads).
	TouchConditionAttrs bool
	// Seed drives all randomness.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Updates <= 0 {
		c.Updates = 10
	}
	if c.Mods <= 0 {
		c.Mods = 1
	}
	if c.AffectedPct <= 0 {
		c.AffectedPct = 10
	}
	if c.InsertRows <= 0 {
		c.InsertRows = 10
	}
	return c
}

// Workload is a generated history plus the hypothetical modifications
// of the what-if query.
type Workload struct {
	Dataset *Dataset
	History history.History
	Mods    []history.Modification
	// DependentPos and IndependentPos classify update positions (for
	// test assertions about slicing quality).
	DependentPos, IndependentPos []int
}

// threshold returns the SelAttr cutoff that makes "attr >= cutoff"
// affect pct percent of tuples.
func threshold(pct float64) int64 {
	cut := int64(float64(SelRange) * (1 - pct/100))
	if cut < 0 {
		cut = 0
	}
	if cut > SelRange {
		cut = SelRange
	}
	return cut
}

// payloadBump builds "attr = attr + step" with a type-correct step.
func payloadBump(ds *Dataset, attr string, step int) history.SetClause {
	idx := ds.Rel.Schema.ColIndex(attr)
	var e expr.Expr
	if ds.Rel.Schema.Columns[idx].Type == types.KindFloat {
		e = expr.Add(expr.Column(attr), expr.FloatConst(float64(step)+0.5))
	} else {
		e = expr.Add(expr.Column(attr), expr.IntConst(int64(step)))
	}
	return history.SetClause{Col: attr, E: e}
}

// Generate builds a history with the paper's workload structure:
//
//   - M modified updates whose conditions select the top T% of SelAttr;
//     the hypothetical replacements raise the threshold so they affect
//     the top 0.8·T% (the delta is the 0.2·T% band in between).
//   - D% of the updates are dependent: their conditions select the same
//     top-T% SelAttr region, so a tuple affected by both a modified and
//     a dependent update exists (Def. 7 finds them dependent).
//   - The remaining updates are independent: they select a band of
//     SelAttr2 while requiring SelAttr below every modified threshold,
//     so the solver can prove disjointness from θ_u ∨ θ_u'.
//   - I% / X% of statement slots become inserts / low-selectivity
//     deletes in the independent region.
//
// Modified updates are evenly spaced across the first half of the
// history so multi-modification push-down costs resemble the paper's.
func Generate(ds *Dataset, cfg Config) (*Workload, error) {
	cfg = cfg.withDefaults()
	if cfg.Mods > cfg.Updates {
		return nil, fmt.Errorf("workload: M=%d exceeds U=%d", cfg.Mods, cfg.Updates)
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	rel := ds.Rel.Schema.Relation

	u := cfg.Updates
	nDep := cfg.DependentPct * u / 100
	if nDep > u-cfg.Mods {
		nDep = u - cfg.Mods
	}
	nIns := cfg.InsertPct * u / 100
	nDel := cfg.DeletePct * u / 100

	cut := threshold(cfg.AffectedPct)          // θ_u:  SelAttr >= cut  (T%)
	cutNew := threshold(cfg.AffectedPct * 0.8) // θ_u': SelAttr >= cutNew (0.8·T%)

	// Positions of the modified updates: evenly spaced over the first
	// half so later modifications exercise condition push-down.
	span := u / 2
	if span < cfg.Mods {
		span = cfg.Mods
	}
	modPos := make([]int, cfg.Mods)
	for j := range modPos {
		modPos[j] = j * span / cfg.Mods
	}
	isMod := map[int]bool{}
	for _, p := range modPos {
		isMod[p] = true
	}

	// Choose dependent positions among the rest.
	rest := make([]int, 0, u)
	for i := 0; i < u; i++ {
		if !isMod[i] {
			rest = append(rest, i)
		}
	}
	r.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })
	isDep := map[int]bool{}
	for _, p := range rest[:nDep] {
		isDep[p] = true
	}

	w := &Workload{Dataset: ds}
	sel, sel2 := ds.SelAttr, ds.SelAttr2
	for i := 0; i < u; i++ {
		switch {
		case isMod[i]:
			j := len(w.Mods)
			st := &history.Update{
				Rel:   rel,
				Set:   []history.SetClause{payloadBump(ds, ds.Payload[j%len(ds.Payload)], j+1)},
				Where: expr.Ge(expr.Column(sel), expr.IntConst(cut)),
			}
			newSt := &history.Update{
				Rel:   rel,
				Set:   st.Set,
				Where: expr.Ge(expr.Column(sel), expr.IntConst(cutNew)),
			}
			w.History = append(w.History, st)
			w.Mods = append(w.Mods, history.Replace{Pos: i, Stmt: newSt})
		case isDep[i]:
			set := []history.SetClause{payloadBump(ds, ds.Payload[i%len(ds.Payload)], i%7+1)}
			if cfg.TouchConditionAttrs {
				set = append(set, history.SetClause{
					Col: sel2,
					E:   expr.Add(expr.Column(sel2), expr.IntConst(1)),
				})
			}
			w.History = append(w.History, &history.Update{
				Rel:   rel,
				Set:   set,
				Where: expr.Ge(expr.Column(sel), expr.IntConst(cut)),
			})
			w.DependentPos = append(w.DependentPos, i)
		default:
			// Independent: a SelAttr2 band, explicitly below every
			// modified threshold on SelAttr so disjointness is provable.
			bandWidth := int64(float64(SelRange) * cfg.AffectedPct / 100)
			if bandWidth < 1 {
				bandWidth = 1
			}
			lo := int64(r.Intn(SelRange))
			if lo+bandWidth > SelRange {
				lo = SelRange - bandWidth
			}
			minCut := cut
			if cutNew < minCut {
				minCut = cutNew
			}
			cond := expr.AndOf(
				expr.Lt(expr.Column(sel), expr.IntConst(minCut)),
				expr.Ge(expr.Column(sel2), expr.IntConst(lo)),
				expr.Lt(expr.Column(sel2), expr.IntConst(lo+bandWidth)),
			)
			w.History = append(w.History, &history.Update{
				Rel:   rel,
				Set:   []history.SetClause{payloadBump(ds, ds.Payload[i%len(ds.Payload)], i%5+1)},
				Where: cond,
			})
			w.IndependentPos = append(w.IndependentPos, i)
		}
	}

	// Replace independent slots with inserts/deletes as requested.
	replaceable := append([]int(nil), w.IndependentPos...)
	r.Shuffle(len(replaceable), func(i, j int) { replaceable[i], replaceable[j] = replaceable[j], replaceable[i] })
	used := 0
	nextID := ds.Rel.Len() + 1000000
	for k := 0; k < nIns && used < len(replaceable); k++ {
		pos := replaceable[used]
		used++
		rows := make([]schema.Tuple, cfg.InsertRows)
		for ri := range rows {
			rows[ri] = ds.NewRow(r, nextID)
			nextID++
		}
		w.History[pos] = &history.InsertValues{Rel: rel, Rows: rows}
		w.IndependentPos = remove(w.IndependentPos, pos)
	}
	for k := 0; k < nDel && used < len(replaceable); k++ {
		pos := replaceable[used]
		used++
		// Deletes hit a narrow band (≈0.05%) in the independent region
		// so the data does not drain away over long histories.
		lo := int64(r.Intn(SelRange / 2))
		cond := expr.AndOf(
			expr.Lt(expr.Column(sel), expr.IntConst(min64(cut, cutNew))),
			expr.Ge(expr.Column(sel2), expr.IntConst(lo)),
			expr.Lt(expr.Column(sel2), expr.IntConst(lo+5)),
		)
		w.History[pos] = &history.Delete{Rel: rel, Where: cond}
		w.IndependentPos = remove(w.IndependentPos, pos)
	}
	return w, nil
}

func remove(xs []int, v int) []int {
	out := xs[:0]
	for _, x := range xs {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Load builds a versioned database from the dataset and executes the
// workload's history over it, returning the store ready for what-if
// processing (the history becomes the store's redo log).
func (w *Workload) Load() (*storage.VersionedDatabase, error) {
	vdb := storage.NewVersioned(w.Dataset.Database())
	for _, st := range w.History {
		if err := vdb.Apply(st); err != nil {
			return nil, err
		}
	}
	return vdb, nil
}
