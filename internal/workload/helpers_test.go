package workload

import (
	"math/rand"

	"github.com/mahif/mahif/internal/types"
)

func randFor(name string) *rand.Rand {
	seed := int64(0)
	for _, c := range name {
		seed = seed*31 + int64(c)
	}
	return rand.New(rand.NewSource(seed))
}

func intVal(v int64) types.Value { return types.Int(v) }
