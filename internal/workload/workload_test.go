package workload

import (
	"testing"

	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/history"
	"github.com/mahif/mahif/internal/schema"
)

func TestDatasetsShape(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func(int, int64) *Dataset
	}{
		{"taxi", Taxi}, {"tpcc", TPCC}, {"ycsb", YCSB},
	} {
		ds := tc.mk(500, 1)
		if ds.Rel.Len() != 500 {
			t.Errorf("%s: %d rows", tc.name, ds.Rel.Len())
		}
		if ds.Rel.Schema.ColIndex(ds.SelAttr) < 0 {
			t.Errorf("%s: SelAttr %q missing", tc.name, ds.SelAttr)
		}
		if ds.Rel.Schema.ColIndex(ds.SelAttr2) < 0 {
			t.Errorf("%s: SelAttr2 %q missing", tc.name, ds.SelAttr2)
		}
		for _, p := range ds.Payload {
			if ds.Rel.Schema.ColIndex(p) < 0 {
				t.Errorf("%s: payload %q missing", tc.name, p)
			}
		}
		if ds.Rel.Schema.ColIndex(ds.GroupBy) < 0 {
			t.Errorf("%s: group-by %q missing", tc.name, ds.GroupBy)
		}
		row := ds.NewRow(randFor(tc.name), 123)
		if len(row) != ds.Rel.Schema.Arity() {
			t.Errorf("%s: NewRow arity %d", tc.name, len(row))
		}
	}
}

func TestDatasetDeterminism(t *testing.T) {
	a := Taxi(100, 7)
	b := Taxi(100, 7)
	for i := range a.Rel.Tuples {
		if !a.Rel.Tuples[i].Equal(b.Rel.Tuples[i]) {
			t.Fatalf("row %d differs across same-seed generations", i)
		}
	}
	c := Taxi(100, 8)
	same := true
	for i := range a.Rel.Tuples {
		if !a.Rel.Tuples[i].Equal(c.Rel.Tuples[i]) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"taxi", "tpcc", "ycsb"} {
		if _, err := ByName(name, 10, 1); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("nope", 10, 1); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestSelectivityOfThreshold(t *testing.T) {
	// attr >= threshold(T) must affect ≈T% of a large uniform dataset.
	ds := Taxi(20000, 3)
	idx := ds.Rel.Schema.ColIndex(ds.SelAttr)
	for _, tPct := range []float64{0.5, 10, 25, 80} {
		cut := threshold(tPct)
		n := 0
		for _, tup := range ds.Rel.Tuples {
			if tup[idx].AsInt() >= cut {
				n++
			}
		}
		got := 100 * float64(n) / float64(ds.Rel.Len())
		if got < tPct*0.8-0.2 || got > tPct*1.2+0.2 {
			t.Errorf("T=%v: measured selectivity %.2f%%", tPct, got)
		}
	}
}

func TestGenerateCounts(t *testing.T) {
	ds := Taxi(500, 5)
	w, err := Generate(ds, Config{
		Updates: 40, Mods: 2, DependentPct: 25, AffectedPct: 10,
		InsertPct: 10, DeletePct: 10, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.History) != 40 {
		t.Fatalf("history length %d", len(w.History))
	}
	if len(w.Mods) != 2 {
		t.Fatalf("mods %d", len(w.Mods))
	}
	var nIns, nDel, nUpd int
	for _, st := range w.History {
		switch st.(type) {
		case *history.InsertValues:
			nIns++
		case *history.Delete:
			nDel++
		case *history.Update:
			nUpd++
		}
	}
	if nIns != 4 || nDel != 4 {
		t.Errorf("inserts=%d deletes=%d, want 4/4", nIns, nDel)
	}
	// 2 modified + 10 dependent survive as updates (dependent count is
	// 25% of 40 = 10); some independents were replaced.
	if nUpd != 32 {
		t.Errorf("updates=%d, want 32", nUpd)
	}
	if len(w.DependentPos) != 10 {
		t.Errorf("dependent positions = %d, want 10", len(w.DependentPos))
	}
}

func TestGenerateModsTargetUpdates(t *testing.T) {
	ds := TPCC(300, 5)
	w, err := Generate(ds, Config{Updates: 10, Mods: 3, DependentPct: 20, AffectedPct: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range w.Mods {
		r, ok := m.(history.Replace)
		if !ok {
			t.Fatalf("modification %T, want Replace", m)
		}
		if _, ok := w.History[r.Pos].(*history.Update); !ok {
			t.Errorf("modification targets %T at %d", w.History[r.Pos], r.Pos)
		}
		// The replacement must differ from the original.
		if w.History[r.Pos].String() == r.Stmt.String() {
			t.Errorf("replacement identical to original at %d", r.Pos)
		}
	}
}

// TestIndependentDisjointness: independent updates must be value-
// disjoint from the modified updates' conditions — the property program
// slicing exploits.
func TestIndependentDisjointness(t *testing.T) {
	ds := YCSB(400, 11)
	w, err := Generate(ds, Config{Updates: 20, Mods: 1, DependentPct: 20, AffectedPct: 15, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	mod := w.Mods[0].(history.Replace)
	origCond := w.History[mod.Pos].(*history.Update).Where
	newCond := mod.Stmt.(*history.Update).Where
	for _, pos := range w.IndependentPos {
		u := w.History[pos].(*history.Update)
		// Exhaustively check disjointness on the sel-attr grid.
		for sel := int64(0); sel < SelRange; sel += 97 {
			for sel2 := int64(0); sel2 < SelRange; sel2 += 97 {
				tup := make(schema.Tuple, ds.Rel.Schema.Arity())
				copy(tup, ds.Rel.Tuples[0])
				tup[ds.Rel.Schema.ColIndex(ds.SelAttr)] = intVal(sel)
				tup[ds.Rel.Schema.ColIndex(ds.SelAttr2)] = intVal(sel2)
				indep, err := expr.Satisfied(u.Where, ds.Rel.Schema, tup)
				if err != nil {
					t.Fatal(err)
				}
				if !indep {
					continue
				}
				o, _ := expr.Satisfied(origCond, ds.Rel.Schema, tup)
				n, _ := expr.Satisfied(newCond, ds.Rel.Schema, tup)
				if o || n {
					t.Fatalf("independent update %d overlaps the modification at sel=%d sel2=%d", pos, sel, sel2)
				}
			}
		}
	}
}

// TestDependentOverlap: every dependent update's condition must overlap
// the modified condition somewhere.
func TestDependentOverlap(t *testing.T) {
	ds := Taxi(400, 15)
	w, err := Generate(ds, Config{Updates: 10, Mods: 1, DependentPct: 50, AffectedPct: 20, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	mod := w.Mods[0].(history.Replace)
	origCond := w.History[mod.Pos].(*history.Update).Where
	selIdx := ds.Rel.Schema.ColIndex(ds.SelAttr)
	for _, pos := range w.DependentPos {
		u := w.History[pos].(*history.Update)
		overlap := false
		for sel := int64(0); sel < SelRange && !overlap; sel += 13 {
			tup := make(schema.Tuple, ds.Rel.Schema.Arity())
			copy(tup, ds.Rel.Tuples[0])
			tup[selIdx] = intVal(sel)
			a, _ := expr.Satisfied(u.Where, ds.Rel.Schema, tup)
			b, _ := expr.Satisfied(origCond, ds.Rel.Schema, tup)
			overlap = a && b
		}
		if !overlap {
			t.Errorf("dependent update at %d never overlaps the modified condition", pos)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	ds := Taxi(50, 1)
	if _, err := Generate(ds, Config{Updates: 2, Mods: 5}); err == nil {
		t.Error("M > U accepted")
	}
}

func TestLoadExecutesHistory(t *testing.T) {
	ds := TPCC(200, 19)
	w, err := Generate(ds, Config{Updates: 5, Mods: 1, DependentPct: 20, AffectedPct: 10, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	vdb, err := w.Load()
	if err != nil {
		t.Fatal(err)
	}
	if vdb.NumVersions() != 5 {
		t.Errorf("versions = %d, want 5", vdb.NumVersions())
	}
	// The base snapshot must equal the dataset.
	base, err := vdb.Version(0)
	if err != nil {
		t.Fatal(err)
	}
	rel, _ := base.Relation("stock")
	if !rel.EqualAsBag(ds.Rel) {
		t.Error("version 0 differs from the dataset")
	}
}
