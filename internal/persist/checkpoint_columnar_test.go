package persist

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"math/rand"
	"os"
	"testing"

	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/storage"
	"github.com/mahif/mahif/internal/types"
)

// gnarlyBase builds a database that exercises every codec lane: typed
// columns with and without NULLs, a column whose cells deviate from
// the declared kind (boxed lane), bool columns (always boxed),
// integers straddling the 2^53 float-precision boundary, int64
// extremes, negative zero, an all-NULL column, an empty relation, and
// a zero-column corner.
func gnarlyBase() *storage.Database {
	db := storage.NewDatabase()

	m := storage.NewRelation(schema.New("measurements",
		schema.Col("id", types.KindInt),
		schema.Col("v", types.KindFloat),
		schema.Col("tag", types.KindString),
		schema.Col("flag", types.KindBool),
		schema.Col("mixed", types.KindInt),
		schema.Col("void", types.KindString),
	))
	ints := []int64{
		0, 1, -1, math.MaxInt64, math.MinInt64,
		1 << 53, 1<<53 + 1, 1<<53 - 1, -(1 << 53), -(1<<53 + 1),
	}
	floats := []float64{
		0, math.Copysign(0, -1), 1.5, -2.25, math.MaxFloat64,
		math.SmallestNonzeroFloat64, 1e308, -1e-308, 9007199254740993, 3,
	}
	for i := 0; i < len(ints); i++ {
		mixed := types.Value(types.Int(int64(i)))
		if i%3 == 1 {
			mixed = types.Float(float64(i) + 0.5) // deviates: forces boxed lane
		}
		row := schema.Tuple{
			types.Int(ints[i]),
			types.Float(floats[i]),
			types.String(fmt.Sprintf("s%d\x00é", i)),
			types.Bool(i%2 == 0),
			mixed,
			types.Null(),
		}
		if i%4 == 2 { // NULL-holes in otherwise typed columns
			row[0] = types.Null()
			row[1] = types.Null()
			row[2] = types.Null()
		}
		m.Add(row)
	}
	db.AddRelation(m)

	empty := storage.NewRelation(schema.New("empty_rel",
		schema.Col("a", types.KindInt),
		schema.Col("b", types.KindString),
	))
	db.AddRelation(empty)

	db.AddRelation(storage.NewRelation(schema.New("no_cols")))
	return db
}

func TestColumnarCheckpointRoundTrip(t *testing.T) {
	db := gnarlyBase()
	payload, err := encodeDatabaseColumnar(db)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := decodeDatabaseColumnar(payload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.String() != db.String() {
		t.Fatalf("decoded database differs:\n got %s\nwant %s", got.String(), db.String())
	}
	// Byte-verified: the decoded database re-encodes to the identical
	// payload (NULL cells carry deterministic zero placeholders).
	again, err := encodeDatabaseColumnar(got)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(payload, again) {
		t.Fatalf("re-encode differs: %d vs %d bytes", len(payload), len(again))
	}
}

// TestColumnarMatchesJSONCodec is the cross-codec property: for random
// databases, the binary codec and the JSON codec decode to identical
// states, and the binary payload is never larger on this numeric-heavy
// shape.
func TestColumnarMatchesJSONCodec(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		db := randomDatabase(rng)
		bp, err := encodeDatabaseColumnar(db)
		if err != nil {
			t.Fatalf("trial %d: binary encode: %v", trial, err)
		}
		jp, err := encodeDatabase(db)
		if err != nil {
			t.Fatalf("trial %d: json encode: %v", trial, err)
		}
		fromBin, err := decodeDatabaseColumnar(bp)
		if err != nil {
			t.Fatalf("trial %d: binary decode: %v", trial, err)
		}
		fromJSON, err := decodeDatabase(jp)
		if err != nil {
			t.Fatalf("trial %d: json decode: %v", trial, err)
		}
		if fromBin.String() != fromJSON.String() {
			t.Fatalf("trial %d: codecs disagree:\n bin %s\njson %s", trial, fromBin.String(), fromJSON.String())
		}
		if fromBin.String() != db.String() {
			t.Fatalf("trial %d: binary round-trip drifted", trial)
		}
	}
}

func randomDatabase(rng *rand.Rand) *storage.Database {
	db := storage.NewDatabase()
	nrels := 1 + rng.Intn(3)
	for ri := 0; ri < nrels; ri++ {
		kinds := []types.Kind{types.KindInt, types.KindFloat, types.KindString, types.KindBool}
		ncols := 1 + rng.Intn(5)
		cols := make([]schema.Column, ncols)
		for c := range cols {
			cols[c] = schema.Col(fmt.Sprintf("c%d", c), kinds[rng.Intn(len(kinds))])
		}
		rel := storage.NewRelation(schema.New(fmt.Sprintf("r%d", ri), cols...))
		rows := rng.Intn(40)
		for i := 0; i < rows; i++ {
			row := make(schema.Tuple, ncols)
			for c := range row {
				row[c] = randomCell(rng, cols[c].Type)
			}
			rel.Add(row)
		}
		db.AddRelation(rel)
	}
	return db
}

func randomCell(rng *rand.Rand, declared types.Kind) types.Value {
	r := rng.Intn(10)
	switch {
	case r == 0:
		return types.Null()
	case r == 1: // deviate from the declared kind to force the boxed lane
		switch declared {
		case types.KindInt:
			return types.String("oops")
		default:
			return types.Int(rng.Int63())
		}
	}
	switch declared {
	case types.KindInt:
		return types.Int(rng.Int63() - rng.Int63())
	case types.KindFloat:
		return types.Float(math.Float64frombits(rng.Uint64() &^ (0x7FF << 52))) // finite
	case types.KindString:
		return types.String(fmt.Sprintf("v%x", rng.Uint32()))
	default:
		return types.Bool(rng.Intn(2) == 0)
	}
}

// TestLoadCheckpointReadsJSONFormat proves recovery still accepts the
// format-1 JSON checkpoints written before the columnar codec: a
// checkpoint file is assembled the way the old writer did, and
// loadCheckpoint must rebuild the same database it now writes as
// format 2.
func TestLoadCheckpointReadsJSONFormat(t *testing.T) {
	db := testBase()
	payload, err := encodeDatabase(db)
	if err != nil {
		t.Fatalf("json encode: %v", err)
	}
	buf := append([]byte(nil), checkpointMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, checkpointFormatJSON)
	buf = binary.LittleEndian.AppendUint64(buf, 42)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))

	path := checkpointPath(t.TempDir(), 42)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	version, got, err := loadCheckpoint(path)
	if err != nil {
		t.Fatalf("loadCheckpoint(json): %v", err)
	}
	if version != 42 {
		t.Fatalf("version = %d, want 42", version)
	}
	if got.String() != db.String() {
		t.Fatalf("json-format checkpoint decoded wrong state")
	}
}

// TestColumnarDecodeCorruptionDegradesToError drives truncations and
// byte flips through the binary decoder: every damage must surface as
// ErrCorrupt (or a decode error), never a panic or a huge allocation.
func TestColumnarDecodeCorruptionDegradesToError(t *testing.T) {
	payload, err := encodeDatabaseColumnar(gnarlyBase())
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(payload); cut += 7 {
		if _, err := decodeDatabaseColumnar(payload[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		mut := append([]byte(nil), payload...)
		pos := rng.Intn(len(mut))
		mut[pos] ^= byte(1 + rng.Intn(255))
		db, err := decodeDatabaseColumnar(mut)
		// A flip in cell content may decode to a different valid
		// database; structural damage must error, and either way the
		// decoder must not panic (the test harness would catch it).
		_ = db
		_ = err
	}
	// Corrupted row counts must be rejected before allocation.
	huge := binary.LittleEndian.AppendUint32(nil, 1)
	huge = appendStr(huge, "r")
	huge = binary.LittleEndian.AppendUint32(huge, 1)
	huge = appendStr(huge, "c")
	huge = appendStr(huge, "int")
	huge = binary.LittleEndian.AppendUint64(huge, 1<<62)
	if _, err := decodeDatabaseColumnar(huge); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("huge row count: err = %v, want ErrCorrupt", err)
	}
}

// TestCheckpointFileRoundTripColumnar covers the full file path: write
// through writeCheckpoint (format 2 on disk), read through
// loadCheckpoint.
func TestCheckpointFileRoundTripColumnar(t *testing.T) {
	dir := t.TempDir()
	db := gnarlyBase()
	n, err := writeCheckpoint(dir, 7, db, true)
	if err != nil {
		t.Fatalf("writeCheckpoint: %v", err)
	}
	path := checkpointPath(dir, 7)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(raw)) != n {
		t.Fatalf("reported %d bytes, file has %d", n, len(raw))
	}
	if format := binary.LittleEndian.Uint32(raw[8:12]); format != checkpointFormatColumnar {
		t.Fatalf("on-disk format = %d, want %d", format, checkpointFormatColumnar)
	}
	version, got, err := loadCheckpoint(path)
	if err != nil {
		t.Fatalf("loadCheckpoint: %v", err)
	}
	if version != 7 || got.String() != db.String() {
		t.Fatalf("file round-trip drifted (version %d)", version)
	}
}
