package persist

import (
	"testing"

	"github.com/mahif/mahif/internal/workload"
)

func TestWorkloadStatementsEncodable(t *testing.T) {
	ds := workload.Taxi(200, 1)
	w, err := workload.Generate(ds, workload.Config{
		Updates: 60, Mods: 2, DependentPct: 30, AffectedPct: 10,
		InsertPct: 15, DeletePct: 10, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range w.History {
		if _, err := EncodeStatement(st); err != nil {
			t.Fatalf("statement %d: %v", i, err)
		}
	}
}
