package persist

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"

	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/storage"
	"github.com/mahif/mahif/internal/types"
)

// Checkpoint file layout:
//
//	[8B magic "MAHIFCK1"][4B format][8B version][8B payload len]
//	[payload: database snapshot][4B CRC-32C of payload]
//
// Two payload formats exist. Format 1 is the original JSON snapshot
// (reusing the wire encoding of types.Value, which round-trips
// int/float/bool/string/NULL bit-exactly). Format 2 is the binary
// columnar snapshot of checkpoint_columnar.go — typed pages with null
// bitmaps, a fraction of the bytes for numeric-heavy relations. New
// checkpoints are written as format 2; recovery accepts both, so
// checkpoints taken before the codec change keep working.
const (
	checkpointFormatJSON     = 1
	checkpointFormatColumnar = 2
)

// dbJSON is the checkpoint payload: relations in registration order so
// the rebuilt database iterates deterministically.
type dbJSON struct {
	Relations []relJSON `json:"relations"`
}

type relJSON struct {
	Name    string          `json:"name"`
	Columns []colJSON       `json:"columns"`
	Tuples  [][]types.Value `json:"tuples"`
}

type colJSON struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// encodeDatabase renders db as the checkpoint JSON payload.
func encodeDatabase(db *storage.Database) ([]byte, error) {
	out := dbJSON{}
	for _, name := range db.RelationNames() {
		rel, err := db.Relation(name)
		if err != nil {
			return nil, err
		}
		rj := relJSON{
			Name:   rel.Schema.Relation,
			Tuples: make([][]types.Value, len(rel.Tuples)),
		}
		for _, c := range rel.Schema.Columns {
			rj.Columns = append(rj.Columns, colJSON{Name: c.Name, Type: c.Type.String()})
		}
		for i, t := range rel.Tuples {
			rj.Tuples[i] = t
		}
		out.Relations = append(out.Relations, rj)
	}
	return json.Marshal(out)
}

// decodeDatabase rebuilds a database from checkpoint JSON.
func decodeDatabase(payload []byte) (*storage.Database, error) {
	var in dbJSON
	if err := json.Unmarshal(payload, &in); err != nil {
		return nil, fmt.Errorf("%w: checkpoint payload: %v", ErrCorrupt, err)
	}
	db := storage.NewDatabase()
	for _, rj := range in.Relations {
		cols := make([]schema.Column, len(rj.Columns))
		for i, cj := range rj.Columns {
			kind, err := types.ParseKind(cj.Type)
			if err != nil {
				return nil, fmt.Errorf("%w: relation %s: %v", ErrCorrupt, rj.Name, err)
			}
			cols[i] = schema.Col(cj.Name, kind)
		}
		rel := storage.NewRelation(schema.New(rj.Name, cols...))
		for _, row := range rj.Tuples {
			if len(row) != len(cols) {
				return nil, fmt.Errorf("%w: relation %s: tuple arity %d, schema arity %d",
					ErrCorrupt, rj.Name, len(row), len(cols))
			}
			rel.Add(schema.Tuple(row))
		}
		db.AddRelation(rel)
	}
	return db, nil
}

// writeCheckpoint atomically writes the state after the first version
// statements: temp file, fsync, rename, directory fsync. A crash at
// any point leaves either no checkpoint or a complete one; recovery
// deletes stray temp files.
func writeCheckpoint(dir string, version int, db *storage.Database, sync bool) (int64, error) {
	payload, err := encodeDatabaseColumnar(db)
	if err != nil {
		return 0, err
	}
	buf := make([]byte, 0, 8+4+8+8+len(payload)+4)
	buf = append(buf, checkpointMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, checkpointFormatColumnar)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(version))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))

	final := checkpointPath(dir, version)
	tmp := final + tmpSuffix
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if sync {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(tmp)
			return 0, err
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if sync {
		if err := syncDir(dir); err != nil {
			return 0, err
		}
	}
	return int64(len(buf)), nil
}

// DecodeCheckpoint validates a raw checkpoint image (the full file
// bytes, header and trailer included) and rebuilds the database it
// materializes, returning its version. Damage is reported as
// ErrCorrupt. Exported for replicas, which bootstrap from checkpoint
// images fetched over HTTP instead of files.
func DecodeCheckpoint(raw []byte) (int, *storage.Database, error) {
	const hdr = 8 + 4 + 8 + 8
	if len(raw) < hdr+4 {
		return 0, nil, fmt.Errorf("%w: checkpoint truncated (%d bytes)", ErrCorrupt, len(raw))
	}
	if string(raw[:8]) != checkpointMagic {
		return 0, nil, fmt.Errorf("%w: checkpoint: bad magic", ErrCorrupt)
	}
	format := binary.LittleEndian.Uint32(raw[8:12])
	if format != checkpointFormatJSON && format != checkpointFormatColumnar {
		return 0, nil, fmt.Errorf("%w: checkpoint: unsupported format %d", ErrCorrupt, format)
	}
	version := int(binary.LittleEndian.Uint64(raw[12:20]))
	plen := binary.LittleEndian.Uint64(raw[20:28])
	// Bound plen before any arithmetic: a corrupted length field must
	// not wrap the sum below (or index past) the file size — corrupt
	// checkpoints degrade to ErrCorrupt, never to a panic.
	if plen > uint64(len(raw)) || uint64(len(raw)) != hdr+plen+4 {
		return 0, nil, fmt.Errorf("%w: checkpoint: length mismatch", ErrCorrupt)
	}
	payload := raw[hdr : hdr+int(plen)]
	want := binary.LittleEndian.Uint32(raw[hdr+int(plen):])
	if crc32.Checksum(payload, castagnoli) != want {
		return 0, nil, fmt.Errorf("%w: checkpoint: checksum mismatch", ErrCorrupt)
	}
	var db *storage.Database
	var err error
	if format == checkpointFormatColumnar {
		db, err = decodeDatabaseColumnar(payload)
	} else {
		db, err = decodeDatabase(payload)
	}
	if err != nil {
		return 0, nil, err
	}
	return version, db, nil
}

// loadCheckpoint reads and validates one checkpoint file, returning
// the version it materializes and the rebuilt database. Damage is
// reported as ErrCorrupt; the caller may fall back to an earlier
// checkpoint.
func loadCheckpoint(path string) (int, *storage.Database, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, err
	}
	version, db, err := DecodeCheckpoint(raw)
	if err != nil {
		return 0, nil, fmt.Errorf("checkpoint %s: %w", path, err)
	}
	return version, db, nil
}
