package persist

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/storage"
	"github.com/mahif/mahif/internal/types"
)

// Format-2 checkpoint payload: the database rendered column-wise, one
// typed page per column. Compared to the JSON payload (format 1) this
// writes int cells as zigzag varints (small magnitudes — the common
// case — cost one or two bytes, where fixed 8-byte cells would lose to
// JSON's short decimal literals), float cells as raw IEEE-754 bits,
// NULL positions as a packed bitmap instead of per-cell tokens, and
// skips all quoting — fewer bytes and none of the encode/decode
// allocation churn. Layout (fixed-width integers little-endian):
//
//	[u32 relation count]
//	per relation:
//	  [str name][u32 column count]
//	  per column: [str name][str type]
//	  [u64 row count]
//	  per column (schema order): page
//
// A page is [1B lane tag][null bitmap][cells]:
//
//	lane 'i': bitmap, then row-count × zigzag varint (int64)
//	lane 'f': bitmap, then row-count × u64 (IEEE-754 bits)
//	lane 's': bitmap, then row-count × str
//	lane 'b': no bitmap; row-count × boxed cell
//	          ('n' | 'i' u64 | 'f' u64 | 's' str | 't' | 'F')
//
// The bitmap is [1B has] and, when has == 1, ceil(rows/8) packed bytes
// (bit r&7 of byte r>>3 set ⇒ cell r is NULL; its lane payload is a
// zero placeholder). str is [u32 len][bytes]. Typed pages come straight
// from storage.BuildColumnar, so a column whose cells deviate from the
// declared kind (or a bool column) lands on the boxed lane — every
// value the JSON codec could carry round-trips here too, bit-exactly.

const (
	laneInt    = 'i'
	laneFloat  = 'f'
	laneString = 's'
	laneBoxed  = 'b'

	boxNull   = 'n'
	boxInt    = 'i'
	boxFloat  = 'f'
	boxString = 's'
	boxTrue   = 't'
	boxFalse  = 'F'
)

func appendStr(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

// encodeDatabaseColumnar renders db as the format-2 payload.
func encodeDatabaseColumnar(db *storage.Database) ([]byte, error) {
	names := db.RelationNames()
	buf := binary.LittleEndian.AppendUint32(nil, uint32(len(names)))
	for _, name := range names {
		rel, err := db.Relation(name)
		if err != nil {
			return nil, err
		}
		view := rel.Columnar()
		if len(rel.Schema.Columns) == 0 && view.Rows > 0 {
			// No column pages would carry the row count, so the decoder
			// could not bound it; such relations do not occur in practice.
			return nil, fmt.Errorf("persist: relation %s has %d rows but no columns", name, view.Rows)
		}
		buf = appendStr(buf, rel.Schema.Relation)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rel.Schema.Columns)))
		for _, c := range rel.Schema.Columns {
			buf = appendStr(buf, c.Name)
			buf = appendStr(buf, c.Type.String())
		}
		buf = binary.LittleEndian.AppendUint64(buf, uint64(view.Rows))
		for i := range view.Cols {
			buf = appendColPage(buf, &view.Cols[i], view.Rows)
		}
	}
	return buf, nil
}

func appendNullBitmap(buf []byte, nulls []bool, rows int) []byte {
	has := false
	for _, n := range nulls {
		if n {
			has = true
			break
		}
	}
	if !has {
		return append(buf, 0)
	}
	buf = append(buf, 1)
	packed := make([]byte, (rows+7)/8)
	for r := 0; r < rows; r++ {
		if nulls[r] {
			packed[r>>3] |= 1 << (r & 7)
		}
	}
	return append(buf, packed...)
}

func appendColPage(buf []byte, c *storage.ColVec, rows int) []byte {
	switch c.Kind {
	case types.KindInt:
		buf = append(buf, laneInt)
		buf = appendNullBitmap(buf, c.Nulls, rows)
		for r := 0; r < rows; r++ {
			v := c.Ints[r]
			if c.Nulls != nil && c.Nulls[r] {
				v = 0 // placeholder: NULL payloads must encode deterministically
			}
			buf = binary.AppendVarint(buf, v)
		}
	case types.KindFloat:
		buf = append(buf, laneFloat)
		buf = appendNullBitmap(buf, c.Nulls, rows)
		for r := 0; r < rows; r++ {
			var bits uint64
			if c.Nulls == nil || !c.Nulls[r] {
				bits = math.Float64bits(c.Floats[r])
			}
			buf = binary.LittleEndian.AppendUint64(buf, bits)
		}
	case types.KindString:
		buf = append(buf, laneString)
		buf = appendNullBitmap(buf, c.Nulls, rows)
		for r := 0; r < rows; r++ {
			s := c.Strs[r]
			if c.Nulls != nil && c.Nulls[r] {
				s = ""
			}
			buf = appendStr(buf, s)
		}
	default:
		buf = append(buf, laneBoxed)
		for r := 0; r < rows; r++ {
			buf = appendBoxedCell(buf, c.Vals[r])
		}
	}
	return buf
}

func appendBoxedCell(buf []byte, v types.Value) []byte {
	switch v.Kind() {
	case types.KindInt:
		buf = append(buf, boxInt)
		return binary.LittleEndian.AppendUint64(buf, uint64(v.AsInt()))
	case types.KindFloat:
		buf = append(buf, boxFloat)
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.AsFloat()))
	case types.KindString:
		buf = append(buf, boxString)
		return appendStr(buf, v.AsString())
	case types.KindBool:
		if v.AsBool() {
			return append(buf, boxTrue)
		}
		return append(buf, boxFalse)
	}
	return append(buf, boxNull)
}

// pageReader walks the binary payload with bounds checks; every
// overrun degrades to ErrCorrupt, never an index panic.
type pageReader struct {
	b   []byte
	off int
}

func (r *pageReader) fail(what string) error {
	return fmt.Errorf("%w: columnar checkpoint: truncated %s at offset %d", ErrCorrupt, what, r.off)
}

func (r *pageReader) u8(what string) (byte, error) {
	if r.off+1 > len(r.b) {
		return 0, r.fail(what)
	}
	v := r.b[r.off]
	r.off++
	return v, nil
}

func (r *pageReader) u32(what string) (uint32, error) {
	if r.off+4 > len(r.b) {
		return 0, r.fail(what)
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, nil
}

func (r *pageReader) u64(what string) (uint64, error) {
	if r.off+8 > len(r.b) {
		return 0, r.fail(what)
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v, nil
}

// varint reads one zigzag-encoded int64. Overlong and overflowing
// encodings report as corruption, not as a wrapped value.
func (r *pageReader) varint(what string) (int64, error) {
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		return 0, r.fail(what)
	}
	r.off += n
	return v, nil
}

func (r *pageReader) bytes(n int, what string) ([]byte, error) {
	if n < 0 || r.off+n > len(r.b) || r.off+n < r.off {
		return nil, r.fail(what)
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v, nil
}

func (r *pageReader) str(what string) (string, error) {
	n, err := r.u32(what)
	if err != nil {
		return "", err
	}
	raw, err := r.bytes(int(n), what)
	if err != nil {
		return "", err
	}
	return string(raw), nil
}

// remaining bounds allocation sizes: a corrupted row count cannot ask
// for more cells than bytes left in the payload.
func (r *pageReader) remaining() int { return len(r.b) - r.off }

// decodeDatabaseColumnar rebuilds a database from the format-2 payload.
func decodeDatabaseColumnar(payload []byte) (*storage.Database, error) {
	r := &pageReader{b: payload}
	nrels, err := r.u32("relation count")
	if err != nil {
		return nil, err
	}
	db := storage.NewDatabase()
	for range nrels {
		name, err := r.str("relation name")
		if err != nil {
			return nil, err
		}
		ncols, err := r.u32("column count")
		if err != nil {
			return nil, err
		}
		if int(ncols) > r.remaining() {
			return nil, r.fail("column count")
		}
		cols := make([]schema.Column, ncols)
		for i := range cols {
			cname, err := r.str("column name")
			if err != nil {
				return nil, err
			}
			ctype, err := r.str("column type")
			if err != nil {
				return nil, err
			}
			kind, kerr := types.ParseKind(ctype)
			if kerr != nil {
				return nil, fmt.Errorf("%w: relation %s: %v", ErrCorrupt, name, kerr)
			}
			cols[i] = schema.Col(cname, kind)
		}
		rows64, err := r.u64("row count")
		if err != nil {
			return nil, err
		}
		// Every row costs at least one byte per column page, so a sane
		// row count never exceeds the bytes left; a zero-column
		// relation encodes no page bytes at all, so its row count must
		// be zero (the encoder enforces the same). Both checks run
		// before any row-count-sized allocation.
		if ncols == 0 && rows64 != 0 {
			return nil, r.fail("row count for zero-column relation")
		}
		if rows64 > uint64(r.remaining()) {
			return nil, r.fail("row count")
		}
		rows := int(rows64)
		view := &storage.ColumnarView{
			Schema: schema.New(name, cols...),
			Rows:   rows,
			Cols:   make([]storage.ColVec, ncols),
		}
		for i := range view.Cols {
			if err := r.readColPage(&view.Cols[i], rows); err != nil {
				return nil, fmt.Errorf("relation %s column %d: %w", name, i, err)
			}
		}
		db.AddRelation(view.Relation())
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("%w: columnar checkpoint: %d trailing bytes", ErrCorrupt, r.remaining())
	}
	return db, nil
}

func (r *pageReader) readNullBitmap(rows int) ([]bool, error) {
	has, err := r.u8("null bitmap flag")
	if err != nil {
		return nil, err
	}
	if has == 0 {
		return nil, nil
	}
	packed, err := r.bytes((rows+7)/8, "null bitmap")
	if err != nil {
		return nil, err
	}
	nulls := make([]bool, rows)
	for i := range nulls {
		nulls[i] = packed[i>>3]&(1<<(i&7)) != 0
	}
	return nulls, nil
}

func (r *pageReader) readColPage(c *storage.ColVec, rows int) error {
	lane, err := r.u8("lane tag")
	if err != nil {
		return err
	}
	switch lane {
	case laneInt:
		nulls, err := r.readNullBitmap(rows)
		if err != nil {
			return err
		}
		if rows > r.remaining() { // a varint cell costs ≥ 1 byte
			return r.fail("int page")
		}
		c.Kind = types.KindInt
		c.Nulls = nulls
		c.Ints = make([]int64, rows)
		for i := range c.Ints {
			v, err := r.varint("int cell")
			if err != nil {
				return err
			}
			c.Ints[i] = v
		}
	case laneFloat:
		nulls, err := r.readNullBitmap(rows)
		if err != nil {
			return err
		}
		if rows > r.remaining()/8 {
			return r.fail("float page")
		}
		c.Kind = types.KindFloat
		c.Nulls = nulls
		c.Floats = make([]float64, rows)
		for i := range c.Floats {
			v, _ := r.u64("float cell")
			c.Floats[i] = math.Float64frombits(v)
		}
	case laneString:
		nulls, err := r.readNullBitmap(rows)
		if err != nil {
			return err
		}
		if rows > r.remaining()/4 {
			return r.fail("string page")
		}
		c.Kind = types.KindString
		c.Nulls = nulls
		c.Strs = make([]string, rows)
		for i := range c.Strs {
			s, err := r.str("string cell")
			if err != nil {
				return err
			}
			c.Strs[i] = s
		}
	case laneBoxed:
		if rows > r.remaining() {
			return r.fail("boxed page")
		}
		c.Kind = types.KindNull
		c.Vals = make([]types.Value, rows)
		for i := range c.Vals {
			v, err := r.readBoxedCell()
			if err != nil {
				return err
			}
			c.Vals[i] = v
		}
	default:
		return fmt.Errorf("%w: columnar checkpoint: unknown lane tag %q", ErrCorrupt, lane)
	}
	return nil
}

func (r *pageReader) readBoxedCell() (types.Value, error) {
	tag, err := r.u8("boxed cell tag")
	if err != nil {
		return types.Null(), err
	}
	switch tag {
	case boxNull:
		return types.Null(), nil
	case boxInt:
		v, err := r.u64("boxed int")
		if err != nil {
			return types.Null(), err
		}
		return types.Int(int64(v)), nil
	case boxFloat:
		v, err := r.u64("boxed float")
		if err != nil {
			return types.Null(), err
		}
		return types.Float(math.Float64frombits(v)), nil
	case boxString:
		s, err := r.str("boxed string")
		if err != nil {
			return types.Null(), err
		}
		return types.String(s), nil
	case boxTrue:
		return types.Bool(true), nil
	case boxFalse:
		return types.Bool(false), nil
	}
	return types.Null(), fmt.Errorf("%w: columnar checkpoint: unknown boxed tag %q", ErrCorrupt, tag)
}
