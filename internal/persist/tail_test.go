package persist

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"

	"github.com/mahif/mahif/internal/history"
	"github.com/mahif/mahif/internal/sql"
)

// renderAll renders statements the way the WAL encodes them.
func renderAll(t *testing.T, stmts []history.Statement) []string {
	t.Helper()
	out := make([]string, len(stmts))
	for i, st := range stmts {
		text, err := sql.RenderStatement(st)
		if err != nil {
			t.Fatalf("render: %v", err)
		}
		out[i] = text
	}
	return out
}

// TestTailFollowConcurrent is the tail-follow property test: a
// follower streaming the WAL concurrently with a writer — across
// segment rotations, failed-apply rollbacks that truncate and rewrite
// the very bytes an unbounded reader would prefetch, and torn writes
// injected past the commit boundary (the partial-write crash
// signature) — must deliver exactly the committed statements, in
// order, and never observe a torn or rolled-back record as corruption.
func TestTailFollowConcurrent(t *testing.T) {
	for trial := 0; trial < 4; trial++ {
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(0xFEED + int64(trial)))
			// Tiny segments force many rotations; NoSync keeps the test
			// fast (durability is not what is being pinned here).
			s, dir := mustCreate(t, Options{SegmentBytes: 512, CheckpointEvery: 17, NoSync: true})
			defer s.Close()

			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()

			type rec struct {
				seq     uint64
				payload string
			}
			recs := make(chan rec, 1024)
			followErr := make(chan error, 1)
			go func() {
				tr, err := s.TailFrom(1)
				if err != nil {
					followErr <- err
					return
				}
				defer tr.Close()
				for {
					seq, payload, err := tr.Next(ctx)
					if err != nil {
						followErr <- err
						return
					}
					recs <- rec{seq, string(payload)}
				}
			}()

			var committed []history.Statement
			const appends = 120
			for i := 0; i < appends; i++ {
				switch rng.Intn(6) {
				case 0:
					// A statement that parses but fails to apply: the
					// record is written, then rolled back off the log.
					bad := sql.MustParseStatement("UPDATE nosuchrel SET x = 1 WHERE x = 2")
					if _, err := s.Append(ctx, []history.Statement{bad}); err == nil {
						t.Fatalf("append of failing statement unexpectedly succeeded")
					}
				case 1:
					// Torn write past the commit boundary: garbage bytes a
					// crashed writer could leave behind. The store's next
					// append overwrites them at its own cursor; the
					// follower must never read them.
					f, err := os.OpenFile(segmentPath(dir, s.seg.firstSeq), os.O_WRONLY|os.O_APPEND, 0)
					if err != nil {
						t.Fatalf("open active segment: %v", err)
					}
					junk := make([]byte, 1+rng.Intn(64))
					rng.Read(junk)
					if _, err := f.Write(junk); err != nil {
						t.Fatalf("inject garbage: %v", err)
					}
					f.Close()
				default:
					n := 1 + rng.Intn(3)
					batch := make([]history.Statement, n)
					for j := range batch {
						batch[j] = randomStatement(rng)
					}
					if _, err := s.Append(ctx, batch); err != nil {
						t.Fatalf("append: %v", err)
					}
					committed = append(committed, batch...)
				}
			}

			want := renderAll(t, committed)
			for i, text := range want {
				select {
				case r := <-recs:
					if r.seq != uint64(i+1) {
						t.Fatalf("record %d: seq %d, want %d", i, r.seq, i+1)
					}
					if r.payload != text {
						t.Fatalf("record %d: payload %q, want %q", i, r.payload, text)
					}
				case err := <-followErr:
					t.Fatalf("follower died after %d/%d records: %v", i, len(want), err)
				case <-ctx.Done():
					t.Fatalf("timed out after %d/%d records", i, len(want))
				}
			}
			// The follower must now be blocked, not have over-read.
			select {
			case r := <-recs:
				t.Fatalf("follower read past the committed tip: seq %d", r.seq)
			case err := <-followErr:
				t.Fatalf("follower died after the tip: %v", err)
			case <-time.After(50 * time.Millisecond):
			}
		})
	}
}

// TestTailFromMidHistory pins the positioned open: a reader starting
// mid-history skips exactly the records before its start seq, and one
// starting past the next seq is rejected.
func TestTailFromMidHistory(t *testing.T) {
	s, _ := mustCreate(t, Options{SegmentBytes: 256, NoSync: true})
	defer s.Close()
	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))
	var stmts []history.Statement
	for i := 0; i < 20; i++ {
		st := randomStatement(rng)
		if _, err := s.Append(ctx, []history.Statement{st}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		stmts = append(stmts, st)
	}
	want := renderAll(t, stmts)

	tr, err := s.TailFrom(10)
	if err != nil {
		t.Fatalf("TailFrom(10): %v", err)
	}
	defer tr.Close()
	for seq := uint64(10); seq <= 20; seq++ {
		got, payload, err := tr.Next(ctx)
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if got != seq || string(payload) != want[seq-1] {
			t.Fatalf("seq %d: got (%d, %q), want (%d, %q)", seq, got, payload, seq, want[seq-1])
		}
	}

	if _, err := s.TailFrom(22); err == nil {
		t.Fatalf("TailFrom beyond next seq succeeded")
	}

	// From exactly one past the tip: blocks until the next append.
	tr2, err := s.TailFrom(21)
	if err != nil {
		t.Fatalf("TailFrom(21): %v", err)
	}
	defer tr2.Close()
	next := sql.MustParseStatement("UPDATE orders SET price = price + 1.0 WHERE id >= 0")
	go func() {
		time.Sleep(20 * time.Millisecond)
		s.Append(ctx, []history.Statement{next})
	}()
	seq, payload, err := tr2.Next(ctx)
	if err != nil {
		t.Fatalf("Next at tip: %v", err)
	}
	text, _ := sql.RenderStatement(next)
	if seq != 21 || string(payload) != text {
		t.Fatalf("tip read: got (%d, %q), want (21, %q)", seq, payload, text)
	}
}

// TestTailNextHonorsContext pins that a blocked follower wakes on
// cancellation and on store close.
func TestTailNextHonorsContext(t *testing.T) {
	s, _ := mustCreate(t, Options{NoSync: true})
	defer s.Close()
	tr, err := s.TailFrom(1)
	if err != nil {
		t.Fatalf("TailFrom: %v", err)
	}
	defer tr.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, _, err := tr.Next(ctx); err == nil {
		t.Fatalf("Next returned without an append")
	} else if ctx.Err() == nil {
		t.Fatalf("Next failed before the deadline: %v", err)
	}
}
