package persist

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"github.com/mahif/mahif/internal/history"
	"github.com/mahif/mahif/internal/sql"
)

// TestGroupCommitConcurrentAppends hammers Append from many goroutines
// on a sync-enabled store: every statement must commit exactly once,
// every batch must be counted as either leading an fsync or coalescing
// onto one, and a reopen must recover the full history.
func TestGroupCommitConcurrentAppends(t *testing.T) {
	s, dir := mustCreate(t, Options{})
	const workers = 8
	const batches = 6
	var wg sync.WaitGroup
	errs := make(chan error, workers*batches)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				stmts := []history.Statement{
					sql.MustParseStatement(fmt.Sprintf(
						"INSERT INTO orders VALUES (%d, 1.5, 'g', true)", 1000+w*100+b)),
					sql.MustParseStatement(fmt.Sprintf(
						"UPDATE orders SET price = price + 1.0 WHERE id = %d", w)),
				}
				if _, err := s.Append(context.Background(), stmts); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("Append: %v", err)
	}

	const want = workers * batches * 2
	st := s.Stats()
	if st.Version != want {
		t.Fatalf("version = %d, want %d", st.Version, want)
	}
	if st.StatementsAppended != want {
		t.Fatalf("StatementsAppended = %d, want %d", st.StatementsAppended, want)
	}
	// Every batch either led an fsync or rode on one; both counters
	// together must account for every Append call.
	if got := st.GroupCommits + st.SyncsCoalesced; got != workers*batches {
		t.Fatalf("GroupCommits(%d) + SyncsCoalesced(%d) = %d, want %d",
			st.GroupCommits, st.SyncsCoalesced, got, workers*batches)
	}
	if st.GroupCommits < 1 {
		t.Fatalf("no batch led an fsync")
	}

	state := dbState(s.Database())
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer r.Close()
	if r.Version() != want {
		t.Fatalf("recovered version = %d, want %d", r.Version(), want)
	}
	if got := dbState(r.Database()); got != state {
		t.Fatalf("recovered state differs from live state")
	}
}

// TestGroupCommitSerialAppendCounts pins the counters' meaning in the
// uncontended case: a lone appender always leads its own fsync.
func TestGroupCommitSerialAppendCounts(t *testing.T) {
	s, _ := mustCreate(t, Options{})
	defer s.Close()
	for i := 0; i < 5; i++ {
		stmt := sql.MustParseStatement(fmt.Sprintf(
			"INSERT INTO orders VALUES (%d, 2.0, 's', false)", 500+i))
		if _, err := s.Append(context.Background(), []history.Statement{stmt}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	st := s.Stats()
	if st.GroupCommits != 5 || st.SyncsCoalesced != 0 {
		t.Fatalf("serial appends: GroupCommits = %d, SyncsCoalesced = %d, want 5, 0",
			st.GroupCommits, st.SyncsCoalesced)
	}
}
