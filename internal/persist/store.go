package persist

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"github.com/mahif/mahif/internal/history"
	"github.com/mahif/mahif/internal/sql"
	"github.com/mahif/mahif/internal/storage"
)

// Options tunes a Store.
type Options struct {
	// SegmentBytes rotates the active WAL segment once it exceeds this
	// size (default 4 MiB).
	SegmentBytes int64
	// CheckpointEvery writes a snapshot checkpoint automatically every
	// that many appended statements (0 = manual checkpoints only).
	CheckpointEvery int
	// RetainCheckpoints keeps that many newest checkpoint files besides
	// the base (default 3). The base checkpoint (version 0) is never
	// deleted; in-memory checkpoints already loaded stay available for
	// time travel regardless.
	RetainCheckpoints int
	// NoSync skips fsync on appends and checkpoints. Throughput mode
	// for benchmarks and bulk ingest: a crash can lose acknowledged
	// statements (recovery still yields a valid prefix).
	NoSync bool
	// Logf receives recovery warnings (torn-tail truncations, skipped
	// corrupt checkpoints). Nil discards them.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.RetainCheckpoints <= 0 {
		o.RetainCheckpoints = 3
	}
	return o
}

func (o Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// Stats counts a store's durability traffic since open (recovery-time
// figures live in RecoveryInfo).
type Stats struct {
	// Version is the durably committed history length.
	Version int
	// Appends and StatementsAppended count Append calls and the
	// statements they committed; AppendErrors counts statements
	// rejected (unencodable or failing to apply).
	Appends            int64
	StatementsAppended int64
	AppendErrors       int64
	// WALBytesWritten is the record bytes written this process.
	WALBytesWritten int64
	// Segments is the segment file count; Rotations counts segment
	// rolls this process.
	Segments  int
	Rotations int64
	// CheckpointsWritten counts checkpoints taken this process;
	// LastCheckpoint* describe the newest one on disk.
	CheckpointsWritten     int64
	LastCheckpointVersion  int
	LastCheckpointBytes    int64
	LastCheckpointDuration time.Duration
	// GroupCommits counts Append batches that led a WAL fsync;
	// SyncsCoalesced counts batches whose durability rode on another
	// batch's fsync instead of issuing their own. Under concurrent
	// appenders their ratio is the group-commit amplification.
	GroupCommits   int64
	SyncsCoalesced int64
}

// RecoveryInfo describes what Open found and did.
type RecoveryInfo struct {
	// Duration is the wall-clock cost of recovery (checkpoint load +
	// tail replay).
	Duration time.Duration
	// Statements is the recovered history length; ReplayedStatements
	// is how many had to be re-applied on top of CheckpointVersion.
	Statements         int
	CheckpointVersion  int
	ReplayedStatements int
	// Segments and CheckpointsLoaded count the files consumed.
	Segments          int
	CheckpointsLoaded int
	// TruncatedRecords/TruncatedBytes report the torn tail discarded,
	// if any.
	TruncatedRecords int
	TruncatedBytes   int64
}

// Store is a durable history store: a versioned in-memory database
// whose every statement is committed to a segmented WAL before it
// becomes visible, with snapshot checkpoints bounding recovery time.
// One Store owns its directory exclusively. Append is safe for
// concurrent use with readers of Database(); appends themselves are
// serialized.
type Store struct {
	dir  string
	opts Options

	mu       sync.Mutex
	vdb      *storage.VersionedDatabase
	seg      *activeSegment
	version  int
	closed   bool
	stats    Stats
	recovery RecoveryInfo

	// Commit position: commitSeg is the first-seq of the segment holding
	// the newest committed record and commitOff the byte boundary right
	// after it. Bytes below the boundary are immutable (a failed apply
	// only ever truncates at or past it), which is what lets a TailReader
	// stream a segment concurrently with appends without ever observing
	// a torn or rolled-back record. Guarded by mu.
	commitSeg uint64
	commitOff int64
	// verCh is closed and replaced whenever version advances, so WAL
	// followers can block on the next committed record without polling.
	// Guarded by mu; closed one final time by Close to release waiters.
	verCh chan struct{}

	// Group-commit state: gcSynced is the highest version known durable
	// (monotone); gcInFlight marks a leader mid-fsync. Appenders wait on
	// gcCond (created lazily) until their version is covered, so any
	// number of concurrent Append batches share one fsync.
	gcMu       sync.Mutex
	gcCond     *sync.Cond
	gcSynced   int
	gcInFlight bool
}

// Detect reports whether dir contains a store (its base checkpoint).
func Detect(dir string) bool {
	_, err := os.Stat(checkpointPath(dir, 0))
	return err == nil
}

// RemoveStore deletes every store file (segments, checkpoints, temp
// files) from dir, leaving the directory itself and any foreign files
// alone. Callers use it to roll back a failed first ingest so the
// directory can be initialized again; it must not be called on a store
// that is open.
func RemoveStore(dir string) error {
	segs, ckpts, err := listStore(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	for _, seq := range segs {
		if err := os.Remove(segmentPath(dir, seq)); err != nil {
			return err
		}
	}
	for _, v := range ckpts {
		if err := os.Remove(checkpointPath(dir, v)); err != nil {
			return err
		}
	}
	return nil
}

// Create initializes dir (created if missing, must not already hold a
// store) with base as the state before any history statement, writing
// the base checkpoint and an empty first segment.
func Create(dir string, base *storage.Database, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	segs, ckpts, err := listStore(dir)
	if err != nil {
		return nil, err
	}
	if len(segs) > 0 || len(ckpts) > 0 {
		return nil, fmt.Errorf("persist: %s already contains a store (use Open)", dir)
	}
	if _, err := writeCheckpoint(dir, 0, base, !opts.NoSync); err != nil {
		return nil, fmt.Errorf("persist: writing base checkpoint: %w", err)
	}
	seg, err := createSegment(dir, 1, !opts.NoSync)
	if err != nil {
		return nil, err
	}
	s := &Store{dir: dir, opts: opts, vdb: storage.NewVersioned(base), seg: seg}
	s.stats.Segments = 1
	s.commitSeg, s.commitOff = seg.firstSeq, seg.size
	s.verCh = make(chan struct{})
	return s, nil
}

// Open recovers the store in dir: it loads the newest valid checkpoint,
// replays the WAL tail on top of it, truncates a torn final record,
// and registers every loaded checkpoint with the versioned database so
// time travel starts warm.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	start := time.Now()
	segs, ckptVers, err := listStore(dir)
	if err != nil {
		return nil, err
	}
	s := &Store{dir: dir, opts: opts}

	// Checkpoints: the base is mandatory; later ones are best-effort
	// (a corrupt file falls back to the previous checkpoint, at worst
	// the base).
	var base *storage.Database
	checkpoints := map[int]*storage.Database{}
	for _, v := range ckptVers {
		ver, db, err := loadCheckpoint(checkpointPath(dir, v))
		if err != nil {
			if v == 0 {
				return nil, fmt.Errorf("persist: base checkpoint: %w", err)
			}
			opts.logf("persist: skipping checkpoint %d: %v", v, err)
			continue
		}
		if ver != v {
			return nil, fmt.Errorf("%w: checkpoint file %d claims version %d", ErrCorrupt, v, ver)
		}
		if v == 0 {
			base = db
		} else {
			checkpoints[v] = db
		}
		s.recovery.CheckpointsLoaded++
	}
	if base == nil {
		return nil, fmt.Errorf("%w: %s has no base checkpoint (version 0)", ErrCorrupt, dir)
	}

	// WAL scan: statements 1..T with strict seq continuity; a torn or
	// unreadable record is a truncatable tail only at the very end of
	// the last segment.
	log, lastSeg, lastSize, lastRecStart, err := s.scanSegments(segs)
	if err != nil {
		return nil, err
	}
	s.recovery.Segments = len(segs)
	s.recovery.Statements = len(log)
	s.version = len(log)

	// Choose the newest checkpoint not past the log tip and build the
	// current state from it. A checkpoint beyond the tip (possible when
	// the tail was torn below it, e.g. after NoSync ingest) describes
	// statements the log cannot prove, so it is unusable — drop it and
	// recover from an earlier one.
	best := 0
	for v := range checkpoints {
		if v > len(log) {
			opts.logf("persist: dropping checkpoint %d: ahead of the %d-statement log", v, len(log))
			delete(checkpoints, v)
			_ = os.Remove(checkpointPath(dir, v))
			s.recovery.CheckpointsLoaded--
			continue
		}
		if v > best {
			best = v
		}
	}
	s.recovery.CheckpointVersion = best
	cur := base
	if best > 0 {
		cur = checkpoints[best]
	}
	current := cur.Clone()
	// A recovery-private index set accelerates the replay loop the same
	// way the tip's maintained indexes accelerate live appends. current
	// is a private clone until RestoreVersioned takes ownership, so the
	// indexed path's in-place rewrites cannot be observed.
	rix := storage.NewIndexSet()
	for i := best; i < len(log); i++ {
		if err := storage.ApplyMutator(log[i], current, rix); err != nil {
			if i != len(log)-1 {
				return nil, fmt.Errorf("%w: statement %d (%s) fails to replay: %v", ErrCorrupt, i+1, log[i], err)
			}
			// A valid append never leaves an unappliable record behind —
			// this can only be a crash artifact from the append path's
			// abort window (the record was written, the apply failed, the
			// truncation never ran). Drop it like a torn tail.
			opts.logf("persist: dropping final statement %d (%s): fails to apply: %v", i+1, log[i], err)
			s.recovery.TruncatedRecords++
			s.recovery.TruncatedBytes += lastSize - lastRecStart
			if err := os.Truncate(segmentPath(dir, lastSeg), lastRecStart); err != nil {
				return nil, err
			}
			log = log[:len(log)-1]
			lastSize = lastRecStart
			break
		}
	}
	s.recovery.Statements = len(log)
	s.recovery.ReplayedStatements = len(log) - best
	s.version = len(log)

	mutators := make([]storage.Mutator, len(log))
	for i, st := range log {
		mutators[i] = st
	}
	s.vdb = storage.RestoreVersioned(base, mutators, checkpoints, current)

	// Reopen (or create) the active segment at the validated offset.
	if len(segs) == 0 {
		seg, err := createSegment(dir, uint64(s.version)+1, !opts.NoSync)
		if err != nil {
			return nil, err
		}
		s.seg = seg
		segs = []uint64{seg.firstSeq}
	} else {
		seg, err := openSegmentForAppend(segmentPath(dir, lastSeg), lastSeg, lastSize)
		if err != nil {
			return nil, err
		}
		s.seg = seg
	}
	s.stats.Segments = len(segs)
	s.commitSeg, s.commitOff = s.seg.firstSeq, s.seg.size
	s.verCh = make(chan struct{})
	// Report only checkpoints that survived validation (corrupt or
	// ahead-of-log ones were skipped or deleted above), so the auto-
	// checkpoint cadence and /metrics reflect what is actually on disk.
	for v := range checkpoints {
		if v > s.stats.LastCheckpointVersion {
			s.stats.LastCheckpointVersion = v
		}
	}
	s.recovery.Duration = time.Since(start)
	return s, nil
}

// scanSegments reads every WAL record in order, returning the decoded
// history, the first-seq of the last segment, the validated byte size
// of the last segment (the truncation point for a torn tail), and the
// offset at which its final accepted record begins (the truncation
// point if that record later fails to apply).
func (s *Store) scanSegments(segs []uint64) (log []history.Statement, lastSeg uint64, lastSize, lastRecStart int64, err error) {
	nextSeq := uint64(1)
	for si, firstSeq := range segs {
		last := si == len(segs)-1
		if firstSeq != nextSeq {
			return nil, 0, 0, 0, fmt.Errorf("%w: segment %d starts at seq %d, want %d",
				ErrCorrupt, firstSeq, firstSeq, nextSeq)
		}
		path := segmentPath(s.dir, firstSeq)
		f, err := os.Open(path)
		if err != nil {
			return nil, 0, 0, 0, err
		}
		hdrSeq, err := readSegmentHeader(f)
		if err != nil {
			f.Close()
			return nil, 0, 0, 0, fmt.Errorf("segment %s: %w", path, err)
		}
		if hdrSeq != firstSeq {
			f.Close()
			return nil, 0, 0, 0, fmt.Errorf("%w: segment %s header seq %d != name seq %d",
				ErrCorrupt, path, hdrSeq, firstSeq)
		}
		size := int64(segmentHeaderSize)
		recStart := size
		for {
			seq, payload, rerr := readRecord(f)
			if errors.Is(rerr, io.EOF) {
				break
			}
			if rerr != nil {
				if !last {
					f.Close()
					return nil, 0, 0, 0, fmt.Errorf("%w: unreadable record mid-log in segment %s", ErrCorrupt, path)
				}
				// The damaged record starts at `size`. It is a truncatable
				// torn tail only if nothing valid follows it — a complete
				// record past the damage means committed history would be
				// dropped, which is corruption, not a crash signature.
				raw, err := os.ReadFile(path)
				if err != nil {
					f.Close()
					return nil, 0, 0, 0, err
				}
				if !tailIsTruncatable(raw, size+1, nextSeq) {
					f.Close()
					return nil, 0, 0, 0, fmt.Errorf("%w: damaged record %d in %s is followed by valid records", ErrCorrupt, nextSeq, path)
				}
				end := int64(len(raw))
				s.recovery.TruncatedRecords++
				s.recovery.TruncatedBytes += end - size
				s.opts.logf("persist: truncating torn tail of %s (%d bytes)", path, end-size)
				if err := os.Truncate(path, size); err != nil {
					f.Close()
					return nil, 0, 0, 0, err
				}
				break
			}
			if seq != nextSeq {
				f.Close()
				return nil, 0, 0, 0, fmt.Errorf("%w: segment %s: record seq %d, want %d",
					ErrCorrupt, path, seq, nextSeq)
			}
			st, perr := sql.ParseStatement(string(payload))
			if perr != nil {
				if !last {
					f.Close()
					return nil, 0, 0, 0, fmt.Errorf("%w: unparseable statement %d mid-log: %v", ErrCorrupt, seq, perr)
				}
				raw, err := os.ReadFile(path)
				if err != nil {
					f.Close()
					return nil, 0, 0, 0, err
				}
				if !tailIsTruncatable(raw, size+recordSize(len(payload)), nextSeq+1) {
					f.Close()
					return nil, 0, 0, 0, fmt.Errorf("%w: unparseable statement %d in %s is followed by valid records", ErrCorrupt, seq, path)
				}
				s.recovery.TruncatedRecords++
				s.recovery.TruncatedBytes += recordSize(len(payload))
				s.opts.logf("persist: dropping unparseable final statement %d: %v", seq, perr)
				if err := os.Truncate(path, size); err != nil {
					f.Close()
					return nil, 0, 0, 0, err
				}
				break
			}
			log = append(log, st)
			recStart = size
			size += recordSize(len(payload))
			nextSeq++
		}
		f.Close()
		lastSeg, lastSize, lastRecStart = firstSeq, size, recStart
	}
	return log, lastSeg, lastSize, lastRecStart, nil
}

// Database returns the recovered versioned database. Reads through it
// are safe while appends are in flight.
func (s *Store) Database() *storage.VersionedDatabase { return s.vdb }

// Version returns the durably committed history length.
func (s *Store) Version() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version
}

// Stats snapshots the store counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Version = s.version
	return st
}

// RecoveryInfo reports what Open found (zero value for a Create'd
// store).
func (s *Store) RecoveryInfo() RecoveryInfo { return s.recovery }

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// EncodeStatement renders st as its WAL payload, verifying the SQL
// round-trips through the parser so recovery can always read it back.
// Statements built programmatically from constructs without a SQL
// rendering are rejected here, before any byte hits the log.
func EncodeStatement(st history.Statement) ([]byte, error) {
	text, err := sql.RenderStatement(st)
	if err != nil {
		return nil, fmt.Errorf("persist: statement is not WAL-encodable: %w", err)
	}
	if _, err := sql.ParseStatement(text); err != nil {
		return nil, fmt.Errorf("persist: statement %q is not WAL-encodable: %w", text, err)
	}
	return []byte(text), nil
}

// Append commits stmts to the history: each statement is written to
// the WAL, applied to the in-memory database, and becomes visible to
// readers immediately; the batch is fsynced once before Append
// returns (group commit), which is the durability point. A statement
// that fails to encode or apply aborts the batch: earlier statements
// stay committed, the failed statement's record is rolled back off the
// log, and the error is returned with the surviving version.
func (s *Store) Append(ctx context.Context, stmts []history.Statement) (int, error) {
	s.mu.Lock()
	if s.closed {
		defer s.mu.Unlock()
		return s.version, fmt.Errorf("persist: store is closed")
	}
	if len(stmts) == 0 {
		defer s.mu.Unlock()
		return s.version, fmt.Errorf("persist: empty append")
	}
	s.stats.Appends++
	// Phase 1, under the store mutex: write and apply the batch.
	// Concurrent batches serialize here, but the mutex is released
	// before the fsync — the expensive part — so their durability waits
	// overlap and one leader's fsync covers every record written before
	// it (group commit).
	//
	// Every exit that leaves new records behind still syncs before
	// returning: an aborted batch reports its earlier statements as
	// committed, and committed means durable. syncDominates marks the
	// abort reasons (context, unencodable statement) where a sync
	// failure is the graver fact and takes over the returned error;
	// after a write or apply failure the original error dominates.
	committed := 0
	var appendErr error
	syncDominates := false
	var scratch []byte
	for _, st := range stmts {
		if err := ctx.Err(); err != nil {
			appendErr, syncDominates = err, true
			break
		}
		payload, err := EncodeStatement(st)
		if err != nil {
			s.stats.AppendErrors++
			appendErr, syncDominates = err, true
			break
		}
		offset := s.seg.size
		scratch = appendRecord(scratch[:0], uint64(s.version)+1, payload)
		if err := s.seg.write(scratch); err != nil {
			// The write may have landed partially; roll the file back so
			// the log ends at a record boundary. Earlier records of this
			// batch still get their sync below.
			_ = s.seg.truncateTo(offset)
			appendErr = fmt.Errorf("persist: wal write: %w", err)
			break
		}
		if err := s.vdb.Apply(st); err != nil {
			// WAL-first means the record exists but the statement does
			// not: abort it so recovery replays exactly the committed
			// history.
			s.stats.AppendErrors++
			if terr := s.seg.truncateTo(offset); terr != nil {
				defer s.mu.Unlock()
				return s.version, fmt.Errorf("persist: %v; and failed to roll back its record: %w", err, terr)
			}
			appendErr = err
			break
		}
		committed++
		s.version++
		s.stats.StatementsAppended++
		s.stats.WALBytesWritten += recordSize(len(payload))
		s.commitOff = s.seg.size
	}
	if committed > 0 {
		// Wake WAL followers: the closed channel is the broadcast, the
		// fresh one arms the next advance.
		close(s.verCh)
		s.verCh = make(chan struct{})
	}
	version := s.version
	s.mu.Unlock()

	// Phase 2, outside the store mutex: make the batch durable.
	needSync := committed > 0 && !s.opts.NoSync
	var led bool
	var serr error
	if needSync {
		led, serr = s.waitDurable(version)
	}

	// Phase 3: stats and maintenance under a fresh lock. The rotation
	// and auto-checkpoint conditions are re-evaluated here — another
	// batch may have handled them meanwhile — and skipped entirely if
	// the store closed while we were syncing.
	s.mu.Lock()
	defer s.mu.Unlock()
	if needSync {
		if led {
			s.stats.GroupCommits++
		} else {
			s.stats.SyncsCoalesced++
		}
	}
	if serr != nil {
		serr = fmt.Errorf("persist: wal sync: %w", serr)
		if syncDominates || appendErr == nil {
			return version, serr
		}
	}
	if appendErr != nil {
		return version, appendErr
	}
	if s.closed {
		return version, nil
	}
	if err := s.maybeRotate(); err != nil {
		return version, err
	}
	if s.opts.CheckpointEvery > 0 && s.version-s.stats.LastCheckpointVersion >= s.opts.CheckpointEvery {
		if _, err := s.checkpointLocked(); err != nil {
			return version, fmt.Errorf("persist: auto checkpoint: %w", err)
		}
	}
	return version, nil
}

// waitDurable blocks until every record up to target is fsynced,
// electing one waiter as the sync leader: it captures the active
// segment and the tip version, fsyncs once, and wakes the cohort —
// every batch written before the fsync is covered by it. Records below
// the tip that live in already-rotated segments were synced by the
// rotation, so syncing the active segment suffices. led reports
// whether this call performed an fsync itself; a leader's sync failure
// is returned to the leader, and waiting followers retry as leaders so
// each append observes its own durability outcome.
func (s *Store) waitDurable(target int) (led bool, err error) {
	s.gcMu.Lock()
	defer s.gcMu.Unlock()
	if s.gcCond == nil {
		s.gcCond = sync.NewCond(&s.gcMu)
	}
	for s.gcSynced < target {
		if s.gcInFlight {
			s.gcCond.Wait()
			continue
		}
		s.gcInFlight = true
		led = true
		s.gcMu.Unlock()
		s.mu.Lock()
		seg := s.seg
		covers := s.version
		s.mu.Unlock()
		serr := seg.sync()
		s.gcMu.Lock()
		s.gcInFlight = false
		if serr == nil && covers > s.gcSynced {
			s.gcSynced = covers
		}
		s.gcCond.Broadcast()
		if serr != nil {
			return true, serr
		}
	}
	return led, nil
}

// maybeRotate rolls the active segment once it exceeds SegmentBytes.
func (s *Store) maybeRotate() error {
	if s.seg.size < s.opts.SegmentBytes {
		return nil
	}
	if err := s.seg.sync(); err != nil {
		return err
	}
	if err := s.seg.close(); err != nil {
		return err
	}
	seg, err := createSegment(s.dir, uint64(s.version)+1, !s.opts.NoSync)
	if err != nil {
		return err
	}
	s.seg = seg
	s.stats.Segments++
	s.stats.Rotations++
	s.commitSeg, s.commitOff = seg.firstSeq, seg.size
	return nil
}

// commitPos atomically reports the committed history length together
// with the byte boundary it corresponds to: the first-seq of the
// segment holding the newest committed record and the offset right
// after it. A reader that never crosses the boundary can only observe
// whole committed records.
func (s *Store) commitPos() (version int, seg uint64, off int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version, s.commitSeg, s.commitOff
}

// WaitVersion blocks until the committed history has reached at least
// target statements, ctx ends, or the store closes.
func (s *Store) WaitVersion(ctx context.Context, target int) error {
	for {
		s.mu.Lock()
		if s.version >= target {
			s.mu.Unlock()
			return nil
		}
		if s.closed {
			s.mu.Unlock()
			return fmt.Errorf("persist: store is closed")
		}
		ch := s.verCh
		s.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// CheckpointImage returns the raw on-disk bytes of a checkpoint file
// together with the version it materializes — the bootstrap payload a
// replica fetches before tailing the WAL. version < 0 selects the
// newest checkpoint; a checkpoint pruned between selection and read
// falls back to the base. The image is self-validating (the caller
// decodes it with DecodeCheckpoint).
func (s *Store) CheckpointImage(version int) ([]byte, int, error) {
	if version < 0 {
		s.mu.Lock()
		version = s.stats.LastCheckpointVersion
		s.mu.Unlock()
	}
	raw, err := os.ReadFile(checkpointPath(s.dir, version))
	if err != nil && version != 0 && os.IsNotExist(err) {
		version = 0
		raw, err = os.ReadFile(checkpointPath(s.dir, 0))
	}
	if err != nil {
		return nil, 0, err
	}
	return raw, version, nil
}

// CheckpointInfo describes one written checkpoint.
type CheckpointInfo struct {
	Version  int
	Bytes    int64
	Duration time.Duration
}

// Checkpoint writes a snapshot of the current state, registers it for
// time travel, and prunes old checkpoint files beyond the retention
// count (the base is always kept).
func (s *Store) Checkpoint() (CheckpointInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return CheckpointInfo{}, fmt.Errorf("persist: store is closed")
	}
	return s.checkpointLocked()
}

func (s *Store) checkpointLocked() (CheckpointInfo, error) {
	start := time.Now()
	ver, db := s.vdb.TipSnapshot()
	n, err := writeCheckpoint(s.dir, ver, db, !s.opts.NoSync)
	if err != nil {
		return CheckpointInfo{}, err
	}
	// The snapshot we just wrote also serves future time travel.
	if err := s.vdb.AddCheckpoint(ver, db); err != nil {
		return CheckpointInfo{}, err
	}
	info := CheckpointInfo{Version: ver, Bytes: n, Duration: time.Since(start)}
	s.stats.CheckpointsWritten++
	s.stats.LastCheckpointVersion = ver
	s.stats.LastCheckpointBytes = n
	s.stats.LastCheckpointDuration = info.Duration
	s.pruneCheckpoints()
	return info, nil
}

// pruneCheckpoints deletes checkpoint files beyond the newest
// RetainCheckpoints (version 0 is never deleted). Best effort: a
// failed delete is ignored; recovery tolerates any mix.
func (s *Store) pruneCheckpoints() {
	_, ckpts, err := listStore(s.dir)
	if err != nil {
		return
	}
	var nonBase []int
	for _, v := range ckpts {
		if v > 0 {
			nonBase = append(nonBase, v)
		}
	}
	for len(nonBase) > s.opts.RetainCheckpoints {
		_ = os.Remove(checkpointPath(s.dir, nonBase[0]))
		nonBase = nonBase[1:]
	}
}

// Close syncs and closes the active segment. The store cannot be used
// afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	close(s.verCh) // release WaitVersion waiters; they observe closed
	if !s.opts.NoSync {
		if err := s.seg.sync(); err != nil {
			s.seg.close()
			return err
		}
	}
	return s.seg.close()
}
